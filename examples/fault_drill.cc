/**
 * @file
 * Fault drill: a guided tour of the fault-injection / ABFT / recovery
 * stack. Walks one campaign end to end:
 *
 *   1. parse a campaign spec and echo its canonical form;
 *   2. inject accumulator faults into a functional-simulator matmul and
 *      let the Huang-Abraham checker detect, locate, and repair them;
 *   3. replay the campaign's link faults through the performance
 *      simulator's retry policy;
 *   4. kill an array and a system instance mid-run and watch the
 *      degraded-mode recovery re-shard the work;
 *   5. re-run the campaign from the same seed and verify the fault and
 *      recovery event log reproduces bit-for-bit.
 *
 * Build & run:  ./build/examples/fault_drill
 */

#include <iostream>

#include "accel/system.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "fault/fault_injector.hh"
#include "systolic/functional_sim.hh"

using namespace prose;

int
main()
{
    std::cout << "ProSE fault drill\n=================\n\n";

    // --- 1. The campaign spec ------------------------------------------
    const std::string spec_text =
        "seed=2022 acc_flip_rate=5e-4 flip_bits=16:31 "
        "stuck=M0:3:5:30:1 link_error_rate=8e-3 link_timeout_rate=1e-3 "
        "kill_array=E:0@1e-2 kill_instance=1@1e-2";
    const CampaignSpec spec = CampaignSpec::parse(spec_text);
    std::cout << "campaign: " << spec.describe() << "\n\n";

    // --- 2. Accumulator faults vs ABFT ---------------------------------
    std::cout << "--- ABFT on the functional simulator ---\n";
    Rng rng(7);
    Matrix a(96, 128), b(128, 96);
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);

    FunctionalSimulator clean;
    const Matrix reference = clean.dataflow1(a, b, 1.0f, nullptr);

    FaultInjector injector(spec);
    AbftOptions abft;
    abft.enabled = true;
    FunctionalSimulator sim;
    sim.setFaultInjector(&injector);
    sim.setAbft(abft);
    const Matrix repaired = sim.dataflow1(a, b, 1.0f, nullptr);

    const AbftStats &stats = sim.abftStats();
    std::cout << "injected events so far: " << injector.events().size()
              << " (transient flips + stuck bit-30 at M0 PE(3,5))\n"
              << "tiles checked " << stats.tilesChecked << ", flagged "
              << stats.tilesFlagged << ", located "
              << stats.locatedElements << ", corrected "
              << stats.correctedElements << "\n"
              << "max |repaired - reference| = "
              << Matrix::maxAbsDiff(reference, repaired)
              << "  (bf16 output precision)\n\n";

    // --- 3. Link faults vs the retry policy ----------------------------
    std::cout << "--- link-fault retry on the performance simulator ---\n";
    const ProseConfig config = ProseConfig::bestPerf();
    const BertShape shape{ 12, 768, 12, 3072, 8, 128 };
    const SimReport healthy = PerfSim(config).run(shape);

    SimOptions options;
    options.injector = &injector;
    PerfSim perf(config, TimingModel(config.partialInputBuffer),
                 HostModel{}, options);
    const SimReport faulted = perf.run(shape);
    std::cout << "transfer errors " << faulted.linkTransferErrors
              << ", timeouts " << faulted.linkTimeouts << ", retries "
              << faulted.taskRetries << ", abandoned "
              << faulted.abandonedTransfers << "\n"
              << "retry latency charged: " << faulted.retrySeconds * 1e3
              << " ms (makespan " << healthy.makespan * 1e3 << " -> "
              << faulted.makespan * 1e3 << " ms)\n\n";

    // --- 4. Array + instance kills -------------------------------------
    std::cout << "--- degraded-mode recovery at system scale ---\n";
    const ProseSystem system{ SystemConfig{} };
    const BertShape batch{ 12, 768, 12, 3072, 32, 128 };
    const SystemReport before = system.run(batch);
    FaultInjector sys_injector(spec);
    const SystemReport after = system.run(batch, &sys_injector);
    std::cout << "healthy makespan " << before.makespan * 1e3
              << " ms; degraded " << after.makespan * 1e3 << " ms\n"
              << "failed instances " << after.failedInstances
              << ", re-sharded inferences " << after.reshardedInferences
              << ", throughput retention " << after.throughputRetention
              << "\n\n";
    if (after.inferencesPerSecond() <= 0.0)
        fatal("degraded run lost all throughput");

    // --- 5. Determinism ------------------------------------------------
    std::cout << "--- deterministic replay ---\n";
    FaultInjector replay(spec);
    FunctionalSimulator sim2;
    sim2.setFaultInjector(&replay);
    sim2.setAbft(abft);
    sim2.dataflow1(a, b, 1.0f, nullptr);
    PerfSim perf2(config, TimingModel(config.partialInputBuffer),
                  HostModel{},
                  [&] {
                      SimOptions o;
                      o.injector = &replay;
                      return o;
                  }());
    perf2.run(shape);

    const bool identical =
        injector.eventLogText() == replay.eventLogText();
    std::cout << "event log replay identical: "
              << (identical ? "yes" : "NO") << " ("
              << replay.events().size() << " events)\n";
    if (!identical)
        fatal("fault campaign replay diverged");

    std::cout << "\nSame seed + same spec -> same faults, same "
                 "detections, same recovery.\n";
    return 0;
}
