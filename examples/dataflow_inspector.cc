/**
 * @file
 * Dataflow inspector: watch one tile travel the microarchitecture.
 *
 * Executes a fused Dataflow 2 (MatMul -> MulAdd -> GELU) on the
 * register-accurate cycle-stepped systolic array, printing the phase
 * boundaries, cycle counts, stalls under a throttled link, and a
 * bit-exact comparison against the reference math — then shows how a
 * whole Protein BERT layer maps onto dataflow tasks.
 *
 * Build & run:  ./build/examples/dataflow_inspector
 */

#include <iostream>

#include "common/random.hh"
#include "common/table.hh"
#include "numerics/lut.hh"
#include "systolic/systolic_array.hh"
#include "systolic/timing_model.hh"
#include "trace/dataflow.hh"

using namespace prose;

int
main()
{
    std::cout << "ProSE dataflow inspector\n========================\n\n";

    // --- One fused Dataflow 2 on a 16x16 G-Type array ------------------
    const std::size_t n = 16, k = 48;
    Rng rng(2022);
    Matrix a(n, k), b(k, n), bias(n, n);
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    bias.fillGaussian(rng, 0.0f, 1.0f);

    SystolicArray array(ArrayGeometry::gType(16));
    Table phases({ "phase", "mode", "cycles", "clock", "notes" });

    const std::uint64_t mm = array.matmulTile(a, b);
    phases.addRow({ "MatMul 16x48 x 48x16", "matmul",
                    std::to_string(mm), "1.6 GHz",
                    "k + 2n - 2 wavefronts, output-stationary" });
    const std::uint64_t mul = array.simdScalar(SimdOp::MulScalar, 1.0f);
    phases.addRow({ "MulAdd: MUL pass", "simd", std::to_string(mul),
                    "800 MHz", "broadcast scalar, left rotation" });
    const std::uint64_t addv = array.simdVector(SimdOp::AddVector, bias);
    phases.addRow({ "MulAdd: ADD pass", "simd", std::to_string(addv),
                    "800 MHz", "vector register streams one col/cycle" });
    const std::uint64_t gelu = array.simdSpecial(SimdOp::Gelu);
    phases.addRow({ "GELU", "simd", std::to_string(gelu), "800 MHz",
                    "two-level 4 KB LUT per SIMD ALU" });
    Matrix out;
    const std::uint64_t drain = array.drain(out);
    phases.addRow({ "drain", "simd", std::to_string(drain), "800 MHz",
                    "OUTPUT taps accumulator bits [31:16]" });
    phases.print(std::cout);

    // Bit-exact check against the reference numerics.
    const TwoLevelLut lut = TwoLevelLut::makeGelu();
    const Matrix mm_ref = matmulBf16(a, b);
    float worst = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const float scaled = quantizeBf16(
                truncateBf16(mm_ref(i, j)) * quantizeBf16(1.0f));
            const float biased = quantizeBf16(
                truncateBf16(scaled) + quantizeBf16(bias(i, j)));
            const float expected = truncateBf16(
                lut.lookup(truncateToBf16(biased)).toFloat());
            worst = std::max(worst, std::abs(out(i, j) - expected));
        }
    }
    std::cout << "\nbit-exact vs reference accelerator numerics: "
              << (worst == 0.0f ? "yes" : "NO") << "\n";
    std::cout << "elapsed on-array time: "
              << Table::fmt(array.elapsedSeconds() * 1e9, 1) << " ns, "
              << array.macCount() << " MACs, " << array.simdOpCount()
              << " SIMD ops\n\n";

    // --- The same dataflow under a starved link -------------------------
    SystolicArray starved(ArrayGeometry::gType(16), 0.5, 0.5);
    const std::uint64_t slow_mm = starved.matmulTile(a, b);
    std::cout << "under a half-rate link the same MatMul takes "
              << slow_mm << " cycles (" << starved.stallCycles()
              << " stalls) -- why the 8-deep stream buffers and lane "
                 "provisioning matter.\n\n";

    // --- A full layer's dataflow mapping --------------------------------
    std::cout << "Protein BERT layer -> dataflow mapping (Figure 7), "
                 "batch 1, 512 tokens:\n\n";
    const OpTrace trace =
        synthesizeBertTrace(BertShape{ 1, 768, 12, 3072, 1, 512 });
    const auto tasks = DataflowBuilder{}.build(trace);
    Table mapping({ "task", "type", "ops", "GFLOP", "stream-in(MB)" });
    for (const auto &task : tasks) {
        if (task.layer > 0)
            break; // just layer 0
        if (task.kind == DataflowKind::Host)
            continue;
        std::string ops;
        for (const auto &op : task.ops) {
            if (!ops.empty())
                ops += "->";
            ops += toString(op.kind);
        }
        const char *pool = task.kind == DataflowKind::Dataflow1   ? "M"
                           : task.kind == DataflowKind::Dataflow2 ? "G"
                                                                  : "E";
        mapping.addRow({ task.describe().substr(0, 28), pool, ops,
                         Table::fmt(task.flops() / 1e9, 2),
                         Table::fmt(task.streamBytesIn() / 1e6, 2) });
    }
    mapping.print(std::cout);
    return 0;
}
