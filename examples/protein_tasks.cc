/**
 * @file
 * The downstream tasks of Figure 2(b) beyond binding affinity:
 * fluorescence (regression) and stability (classification), both as
 * small heads on frozen Protein BERT features over synthetic ground
 * truths — the "downstream/fine-tuning" half of the protein-discovery
 * workflow.
 *
 * Build & run:  ./build/examples/protein_tasks
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "model/bert_model.hh"
#include "model/downstream.hh"
#include "model/tokenizer.hh"
#include "protein/amino_acid.hh"
#include "protein/fasta.hh"

using namespace prose;

namespace {

/** Hidden fluorescence model: aromatic content drives brightness. */
double
trueFluorescence(const std::string &protein)
{
    double score = 0.0;
    for (char residue : protein) {
        const AminoAcid &aa = aminoAcid(residue);
        score += 2.0 * aa.aromatic + 0.1 * aa.hydropathy;
    }
    return score / static_cast<double>(protein.size());
}

/** Hidden stability model: sufficient mean hydropathy (a folded
 *  hydrophobic core) keeps the protein in its native conformation. */
bool
trueStability(const std::string &protein)
{
    double hydropathy = 0.0;
    for (char residue : protein)
        hydropathy += aminoAcid(residue).hydropathy;
    return hydropathy / static_cast<double>(protein.size()) > -0.45;
}

Matrix
featuresFor(const BertModel &model,
            const std::vector<std::string> &proteins, std::size_t len)
{
    const AminoTokenizer tokenizer;
    std::vector<std::vector<std::uint32_t>> tokens;
    for (const auto &protein : proteins)
        tokens.push_back(tokenizer.encode(protein, len));
    return model.extractFeatures(tokens);
}

} // namespace

int
main()
{
    std::cout << "Protein BERT downstream tasks (Figure 2(b))\n"
              << "===========================================\n\n";

    Rng rng(40);
    const std::size_t protein_len = 64, train_n = 120, test_n = 60;
    std::vector<std::string> train_set, test_set;
    for (std::size_t i = 0; i < train_n; ++i)
        train_set.push_back(randomProtein(rng, protein_len));
    for (std::size_t i = 0; i < test_n; ++i)
        test_set.push_back(randomProtein(rng, protein_len));

    BertConfig config = BertConfig::tiny();
    config.maxSeqLen = 128;
    const BertModel model(config, 17);
    const Matrix x_train =
        featuresFor(model, train_set, protein_len + 2);
    const Matrix x_test = featuresFor(model, test_set, protein_len + 2);

    // --- Fluorescence regression ---------------------------------------
    std::vector<double> y_train, y_test;
    for (const auto &protein : train_set)
        y_train.push_back(trueFluorescence(protein));
    for (const auto &protein : test_set)
        y_test.push_back(trueFluorescence(protein));

    RegressionHead fluorescence;
    fluorescence.fit(x_train, y_train, 5.0);
    const double rho =
        spearman(fluorescence.predict(x_test), y_test);

    // --- Stability classification --------------------------------------
    std::vector<int> s_train, s_test;
    for (const auto &protein : train_set)
        s_train.push_back(trueStability(protein) ? 1 : 0);
    for (const auto &protein : test_set)
        s_test.push_back(trueStability(protein) ? 1 : 0);
    int positives = 0;
    for (int s : s_train)
        positives += s;

    LogisticHead stability;
    LogisticHead::FitOptions options;
    options.epochs = 2000;
    options.learningRate = 0.3;
    stability.fit(x_train, s_train, options);
    const double accuracy = stability.accuracy(x_test, s_test);
    const double base_rate =
        std::max(positives, static_cast<int>(train_n) - positives) /
        static_cast<double>(train_n);

    Table table({ "task", "head", "test metric", "value", "baseline" });
    table.addRow({ "fluorescence", "ridge regression", "Spearman rho",
                   Table::fmt(rho, 3), "0 (random)" });
    table.addRow({ "stability", "logistic", "accuracy",
                   Table::fmt(accuracy, 3),
                   Table::fmt(base_rate, 3) + " (majority)" });
    table.print(std::cout);

    std::cout << "\nBoth heads learn from frozen random-encoder "
                 "features — the modularity the paper\nhighlights: "
                 "swapping downstream models retargets the same "
                 "accelerated encoder.\n";
    return 0;
}
