/**
 * @file
 * Quickstart: the smallest end-to-end ProSE workflow.
 *
 *   1. Tokenize a protein sequence.
 *   2. Run it through a Protein BERT encoder (real math, accelerator
 *      bfloat16+LUT numerics), capturing the tensor-op trace.
 *   3. Group the trace into ProSE dataflows.
 *   4. Simulate the BestPerf accelerator executing those dataflows and
 *      report runtime, throughput, utilization, and power.
 *
 * Build & run:  ./build/examples/quickstart [protein-sequence]
 */

#include <iostream>
#include <string>

#include "accel/perf_sim.hh"
#include "common/table.hh"
#include "model/bert_model.hh"
#include "model/tokenizer.hh"
#include "power/power_model.hh"

using namespace prose;

int
main(int argc, char **argv)
{
    // A hemoglobin-beta fragment by default; pass your own sequence.
    std::string protein =
        "MVHLTPEEKSAVTALWGKVNVDEVGGEALGRLLVVYPWTQRFFESFGDLSTPDAVMGNPK"
        "VKAHGKKVLGAFSDGLAHLDNLKGTFATLSELHCDKLHVDPENFRLLGNVLVCVLAHHFG";
    if (argc > 1)
        protein = argv[1];

    std::cout << "ProSE quickstart\n================\n\n";
    std::cout << "protein (" << protein.size() << " residues): "
              << protein.substr(0, 60)
              << (protein.size() > 60 ? "..." : "") << "\n\n";

    // 1-2. Tokenize and run the encoder with full accelerator numerics.
    const AminoTokenizer tokenizer;
    const auto tokens = tokenizer.encode(protein);
    BertConfig config = BertConfig::tiny(); // laptop-sized real math
    config.maxSeqLen = 2048;
    const BertModel model(config, /*seed=*/42);

    OpTrace trace;
    const BertModel::Output out =
        model.forward({ tokens }, NumericsMode::Bf16Lut, &trace);
    std::cout << "encoder: " << config.layers << " layers, hidden "
              << config.hidden << " -> hidden states " << out.hidden.rows()
              << "x" << out.hidden.cols() << ", " << trace.size()
              << " tensor ops traced\n";

    // 3. Dataflow construction (Figure 6/7).
    const auto tasks = DataflowBuilder{}.build(trace);
    std::size_t df1 = 0, df2 = 0, df3 = 0, host = 0;
    for (const auto &task : tasks) {
        switch (task.kind) {
          case DataflowKind::Dataflow1:
            ++df1;
            break;
          case DataflowKind::Dataflow2:
            ++df2;
            break;
          case DataflowKind::Dataflow3:
            ++df3;
            break;
          case DataflowKind::Host:
            ++host;
            break;
        }
    }
    std::cout << "dataflows: " << df1 << "x DF1 (M-Type), " << df2
              << "x DF2 (G-Type), " << df3 << "x DF3 (E-Type), " << host
              << " host ops\n";
    std::cout << "accelerated FLOP fraction: "
              << Table::fmt(
                     100.0 * DataflowBuilder::acceleratedFraction(tasks),
                     1)
              << "%\n\n";

    // 4. Simulate the paper-scale accelerator on the paper-scale model.
    // The perf sim runs from a synthetic trace of the *full* BERT-base
    // encoder at this protein's length — identical op structure, real
    // Protein BERT dimensions.
    const ProseConfig accel = ProseConfig::bestPerf();
    const BertShape shape = BertConfig::proteinBertBase().shape(
        /*batch=*/32, tokens.size());
    const SimReport report = PerfSim(accel).run(shape);

    const PowerModel power;
    const double watts = power.systemPowerWatts(
        accel.groups, accel.partialInputBuffer, report.cpuDuty);

    Table table({ "metric", "value" });
    table.addRow({ "accelerator", accel.describe() });
    table.addRow({ "workload", "Protein BERT-base, batch 32, len " +
                                   std::to_string(tokens.size()) });
    table.addRow({ "makespan",
                   Table::fmt(report.makespan * 1e3, 2) + " ms" });
    table.addRow({ "throughput",
                   Table::fmt(report.inferencesPerSecond(), 1) +
                       " inferences/s" });
    table.addRow({ "M/G/E utilization",
                   Table::fmt(report.utilization(ArrayType::M), 2) + " / " +
                       Table::fmt(report.utilization(ArrayType::G), 2) +
                       " / " +
                       Table::fmt(report.utilization(ArrayType::E), 2) });
    table.addRow({ "link traffic",
                   Table::fmt(report.bytesIn / 1e9, 2) + " GB in, " +
                       Table::fmt(report.bytesOut / 1e9, 2) + " GB out" });
    table.addRow({ "system power", Table::fmt(watts, 1) + " W" });
    table.addRow({ "efficiency",
                   Table::fmt(report.inferencesPerSecond() / watts, 2) +
                       " inferences/s/W" });
    table.print(std::cout);
    return 0;
}
