/**
 * @file
 * prose_embed — FASTA in, feature vectors out. The front half of every
 * downstream workflow as a standalone tool: reads protein sequences
 * from a FASTA file (or synthesizes a demo proteome), batches them by
 * length bucket, extracts Protein BERT features, and writes one CSV row
 * per protein.
 *
 * Usage:
 *   prose_embed [input.fasta] [output.csv]
 *   prose_embed --demo [output.csv]     # synthesize 32 demo proteins
 */

#include <fstream>
#include <iostream>
#include <string>

#include "accel/batcher.hh"
#include "common/logging.hh"
#include "model/bert_model.hh"
#include "model/tokenizer.hh"
#include "protein/proteome.hh"

using namespace prose;

int
main(int argc, char **argv)
{
    std::vector<FastaRecord> records;
    std::string output_path = "features.csv";

    if (argc >= 2 && std::string(argv[1]) != "--demo") {
        records = readFastaFile(argv[1]);
        if (argc >= 3)
            output_path = argv[2];
    } else {
        Rng rng(7);
        ProteomeSpec spec;
        spec.maxLength = 120; // keep the demo's real math quick
        spec.logMu = 4.2;
        records = synthesizeProteome(rng, 32, spec);
        if (argc >= 3)
            output_path = argv[2];
        std::cout << "no FASTA given; synthesized " << records.size()
                  << " demo proteins\n";
    }
    if (records.empty())
        fatal("no sequences to embed");

    // Bucket by length so each batch is pad-efficient.
    std::vector<std::size_t> lengths;
    for (const auto &record : records)
        lengths.push_back(record.sequence.size());
    BatcherSpec batcher;
    batcher.buckets = { 64, 128, 256, 512, 1024, 2048 };
    const BatchPlan plan = planBatches(lengths, batcher);
    std::cout << "embedding " << records.size() << " proteins in "
              << plan.batches.size() << " length-bucketed batches ("
              << static_cast<int>(100 * plan.paddingOverhead())
              << "% padding)\n";

    // Feature extraction (tiny config: the demo runs real math).
    BertConfig config = BertConfig::tiny();
    config.maxSeqLen = 2048;
    const BertModel model(config, 123);
    const AminoTokenizer tokenizer;

    std::ofstream out(output_path);
    if (!out)
        fatal("cannot open ", output_path, " for writing");
    out << "id,length";
    for (std::uint64_t j = 0; j < config.hidden; ++j)
        out << ",f" << j;
    out << "\n";

    // Group records per bucket the same way the batcher did.
    for (const auto &record : records) {
        const std::uint64_t tokens = record.sequence.size() + 2;
        std::uint64_t bucket = batcher.buckets.back();
        for (std::uint64_t candidate : batcher.buckets) {
            if (tokens <= candidate) {
                bucket = candidate;
                break;
            }
        }
        const Matrix features = model.extractFeatures(
            { tokenizer.encode(record.sequence, bucket) });
        out << record.id << ',' << record.sequence.size();
        for (std::uint64_t j = 0; j < config.hidden; ++j)
            out << ',' << features(0, j);
        out << "\n";
    }
    std::cout << "wrote " << output_path << "\n";
    return 0;
}
