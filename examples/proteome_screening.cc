/**
 * @file
 * Proteome-scale screening: how a deployed discovery engine actually
 * ingests work. Generates a synthetic proteome with a realistic
 * (log-normal) length distribution, buckets it into fixed-length
 * batches, simulates the whole screen on a four-instance ProSE host,
 * and reports throughput, padding overhead, and the energy ledger —
 * versus naively padding everything to the maximum length.
 *
 * Build & run:  ./build/examples/proteome_screening [num-proteins]
 */

#include <cstdlib>
#include <iostream>

#include "accel/batcher.hh"
#include "accel/energy_report.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "protein/proteome.hh"

using namespace prose;

int
main(int argc, char **argv)
{
    std::size_t count = 2000;
    if (argc > 1) {
        std::uint64_t parsed = 0;
        if (!parseU64(argv[1], parsed) || parsed == 0)
            fatal("protein count must be a positive integer, got '",
                  argv[1], "'");
        count = parsed;
    }

    std::cout << "Proteome screening on ProSE\n"
              << "===========================\n\n";

    // 1. The workload: a synthetic proteome.
    Rng rng(2026);
    const auto proteome = synthesizeProteome(rng, count, ProteomeSpec{});
    const ProteomeStats stats = summarizeProteome(proteome);
    std::cout << "proteome: " << stats.count << " proteins, lengths "
              << stats.minLength << "-" << stats.maxLength << " (mean "
              << Table::fmt(stats.meanLength, 0) << ", median "
              << Table::fmt(stats.medianLength, 0) << "), "
              << Table::fmtInt(
                     static_cast<long long>(stats.totalResidues))
              << " residues total\n\n";

    // 2. Bucketed batching vs pad-to-max.
    std::vector<std::size_t> lengths;
    for (const auto &record : proteome)
        lengths.push_back(record.sequence.size());
    const BatchPlan bucketed = planBatches(lengths);

    BatcherSpec naive_spec;
    naive_spec.buckets = { 2048 };
    const BatchPlan naive = planBatches(lengths, naive_spec);

    const BertShape model{ 12, 768, 12, 3072, 1, 64 };
    const ProseConfig config = ProseConfig::bestPerf();
    const double bucketed_seconds =
        simulateBatchPlan(bucketed, config, model);
    const double naive_seconds = simulateBatchPlan(naive, config, model);

    Table plans({ "plan", "batches", "padding", "screen time(s)",
                  "proteins/s" });
    plans.addRow({ "length-bucketed",
                   std::to_string(bucketed.batches.size()),
                   Table::fmt(100.0 * bucketed.paddingOverhead(), 1) +
                       "%",
                   Table::fmt(bucketed_seconds, 2),
                   Table::fmt(count / bucketed_seconds, 0) });
    plans.addRow({ "pad-to-2048", std::to_string(naive.batches.size()),
                   Table::fmt(100.0 * naive.paddingOverhead(), 1) + "%",
                   Table::fmt(naive_seconds, 2),
                   Table::fmt(count / naive_seconds, 0) });
    plans.print(std::cout);
    std::cout << "\nbucketing speedup: "
              << Table::fmt(naive_seconds / bucketed_seconds, 2)
              << "x\n\n";

    // 3. Energy ledger for the dominant (512-token) bucket.
    const LengthBatch *big = nullptr;
    for (const auto &batch : bucketed.batches)
        if (batch.paddedLength == 512 &&
            (!big || batch.sequences > big->sequences))
            big = &batch;
    if (big) {
        BertShape shape = model;
        shape.batch = big->sequences;
        shape.seqLen = big->paddedLength;
        PerfSim sim(config);
        const SimReport report = sim.run(shape);
        const EnergyReport energy = buildEnergyReport(config, report);
        Table ledger({ "component", "energy (J)", "share" });
        const double total = energy.totalJoules();
        auto row = [&](const std::string &name, double joules) {
            ledger.addRow({ name, Table::fmt(joules, 3),
                            Table::fmt(100.0 * joules / total, 1) +
                                "%" });
        };
        row("M-Type arrays", energy.arrayBusyJoules[0] +
                                 energy.arrayIdleJoules[0]);
        row("G-Type arrays", energy.arrayBusyJoules[1] +
                                 energy.arrayIdleJoules[1]);
        row("E-Type arrays", energy.arrayBusyJoules[2] +
                                 energy.arrayIdleJoules[2]);
        row("host CPU", energy.cpuJoules);
        row("DRAM", energy.dramJoules);
        row("NVLink", energy.linkJoules);
        std::cout << "energy ledger for the largest 512-token batch ("
                  << big->sequences << " proteins, "
                  << Table::fmt(energy.joulesPerInference(report), 3)
                  << " J/inference):\n\n";
        ledger.print(std::cout);
    }
    return 0;
}
