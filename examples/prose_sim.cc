/**
 * @file
 * prose_sim — command-line driver for the performance simulator.
 *
 * Usage:
 *   prose_sim [options]
 *     --config NAME    bestPerf | mostEfficient | homogeneous |
 *                      bestPerfPlus | homogeneousPlus   (default bestPerf)
 *     --mix SPEC       custom mix, e.g. M64x2,G16x10,E16x22
 *     --lanes M,G,E    lane partition for --mix (default 3,1,2)
 *     --len N          input sequence length in tokens  (default 512)
 *     --batch N        sequences per run                (default 128)
 *     --threads N      software threads                 (default 32)
 *     --link GB/s      host link bandwidth              (default 270)
 *     --instances N    ProSE cards on the host          (default 1)
 *     --csv            emit one CSV row instead of the report
 *
 * Examples:
 *   prose_sim --len 1024 --batch 64
 *   prose_sim --config homogeneous --link 540
 *   for L in 128 256 512 1024 2048; do prose_sim --len $L --csv; done
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <type_traits>

#include "accel/mix_parse.hh"
#include "accel/system.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/table.hh"

using namespace prose;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--config NAME] [--len N] [--batch N] [--threads N]"
                 " [--link GB/s] [--instances N] [--csv]\n";
    std::exit(2);
}

/** Checked CLI numbers: "--len 12x" or "--link nan" is a usage error,
 *  not a silent zero (strtoull with a null end pointer never reports). */
template <typename T>
T
parseNumericArg(const std::string &flag, const std::string &text)
{
    bool ok = false;
    T out{};
    if constexpr (std::is_same_v<T, double>) {
        double v = 0.0;
        ok = parseFiniteDouble(text, v);
        out = v;
    } else if constexpr (std::is_same_v<T, std::uint32_t>) {
        std::uint32_t v = 0;
        ok = parseU32(text, v);
        out = v;
    } else {
        std::uint64_t v = 0;
        ok = parseU64(text, v);
        out = v;
    }
    if (!ok)
        fatal("bad value for ", flag, ": '", text, "'");
    return out;
}

ProseConfig
configByName(const std::string &name)
{
    if (name == "bestPerf")
        return ProseConfig::bestPerf();
    if (name == "mostEfficient")
        return ProseConfig::mostEfficient();
    if (name == "homogeneous")
        return ProseConfig::homogeneous();
    if (name == "bestPerfPlus")
        return ProseConfig::bestPerfPlus();
    if (name == "mostEfficientPlus")
        return ProseConfig::mostEfficientPlus();
    if (name == "homogeneousPlus")
        return ProseConfig::homogeneousPlus();
    fatal("unknown config '", name,
          "' (try bestPerf, mostEfficient, homogeneous, bestPerfPlus, "
          "mostEfficientPlus, homogeneousPlus)");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config_name = "bestPerf";
    std::string mix_spec, lane_spec = "3,1,2";
    std::uint64_t len = 512, batch = 128;
    std::uint32_t threads = 32, instances = 1;
    double link_gbps = 270.0;
    bool csv = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--config")
            config_name = value();
        else if (arg == "--mix")
            mix_spec = value();
        else if (arg == "--lanes")
            lane_spec = value();
        else if (arg == "--len")
            len = parseNumericArg<std::uint64_t>(arg, value());
        else if (arg == "--batch")
            batch = parseNumericArg<std::uint64_t>(arg, value());
        else if (arg == "--threads")
            threads = parseNumericArg<std::uint32_t>(arg, value());
        else if (arg == "--link")
            link_gbps = parseNumericArg<double>(arg, value());
        else if (arg == "--instances")
            instances = parseNumericArg<std::uint32_t>(arg, value());
        else if (arg == "--csv")
            csv = true;
        else if (arg == "--help" || arg == "-h")
            usage(argv[0]);
        else
            usage(argv[0]);
    }
    if (len == 0 || batch == 0 || threads == 0 || instances == 0 ||
        link_gbps <= 0.0) {
        fatal("all numeric options must be positive");
    }

    SystemConfig system_config;
    if (mix_spec.empty()) {
        system_config.instance = configByName(config_name);
        system_config.instance.link = LinkSpec::custom(link_gbps);
    } else {
        system_config.instance = configFromSpec(
            mix_spec, lane_spec, LinkSpec::custom(link_gbps));
        config_name = mix_spec;
    }
    system_config.instance.threads = threads;
    system_config.instanceCount = instances;

    const BertShape shape{ 12, 768, 12, 3072, batch, len };
    const ProseSystem system(system_config);
    const SystemReport report = system.run(shape);

    if (csv) {
        std::cout << config_name << ',' << len << ',' << batch << ','
                  << threads << ',' << link_gbps << ',' << instances
                  << ',' << report.makespan << ','
                  << report.inferencesPerSecond() << ','
                  << report.systemWatts << ',' << report.efficiency()
                  << '\n';
        return 0;
    }

    std::cout << "prose_sim\n=========\n\n";
    Table table({ "metric", "value" });
    table.addRow({ "instance", system_config.instance.describe() });
    table.addRow({ "instances", std::to_string(instances) });
    table.addRow({ "workload", "Protein BERT-base, batch " +
                                   std::to_string(batch) + ", len " +
                                   std::to_string(len) });
    table.addRow({ "makespan",
                   Table::fmt(report.makespan * 1e3, 2) + " ms" });
    table.addRow({ "throughput",
                   Table::fmt(report.inferencesPerSecond(), 1) +
                       " inf/s" });
    table.addRow({ "system power",
                   Table::fmt(report.systemWatts, 1) + " W" });
    table.addRow({ "efficiency",
                   Table::fmt(report.efficiency(), 2) + " inf/s/W" });
    table.addRow({ "host duty", Table::fmt(report.hostDuty, 3) });
    for (std::size_t i = 0; i < report.perInstance.size(); ++i) {
        const SimReport &inst = report.perInstance[i];
        table.addRow(
            { "instance " + std::to_string(i) + " util M/G/E",
              Table::fmt(inst.utilization(ArrayType::M), 2) + " / " +
                  Table::fmt(inst.utilization(ArrayType::G), 2) +
                  " / " +
                  Table::fmt(inst.utilization(ArrayType::E), 2) });
    }
    table.print(std::cout);
    return 0;
}
