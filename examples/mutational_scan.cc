/**
 * @file
 * Deep mutational scan of one protein: score every single-point mutant
 * with a learned fitness head, print the effect landscape (the heatmap
 * drug designers read), and estimate the accelerator cost of scanning a
 * real Fab-sized protein at production scale.
 *
 * Build & run:  ./build/examples/mutational_scan
 */

#include <algorithm>
#include <iostream>

#include "accel/perf_sim.hh"
#include "common/table.hh"
#include "model/tokenizer.hh"
#include "protein/amino_acid.hh"
#include "protein/binding.hh"
#include "model/mlm_head.hh"
#include "protein/mutation_scan.hh"

using namespace prose;

int
main()
{
    std::cout << "Deep mutational scan\n====================\n\n";

    // Train a fitness head on the binding benchmark's training family.
    BindingSpec spec;
    spec.fabLength = 48; // keep the real-math scan quick
    BindingBenchmark benchmark(spec);
    const BindingDataset train = benchmark.makeTrainSet(48);

    BertConfig config = BertConfig::tiny();
    config.maxSeqLen = 128;
    const BertModel model(config, 3);
    const AminoTokenizer tokenizer;
    std::vector<std::vector<std::uint32_t>> tokens;
    for (const auto &variant : train.variants)
        tokens.push_back(
            tokenizer.encode(variant, train.parent.size() + 2));
    RegressionHead head;
    head.fit(model.extractFeatures(tokens), train.affinities, 10.0);

    // Scan the wild type.
    const MutationScan scan =
        scanMutations(model, head, train.parent, 64);
    std::cout << "wild type (" << scan.wildType.size()
              << " residues): " << scan.wildType << "\n";
    std::cout << "scored " << scan.effects.size()
              << " single-point mutants\n\n";

    const MutationEffect &best = scan.best();
    const MutationEffect &worst = scan.worst();
    std::cout << "best substitution:  " << best.from << best.position + 1
              << best.to << "  (+" << Table::fmt(best.score, 3) << ")\n";
    std::cout << "worst substitution: " << worst.from
              << worst.position + 1 << worst.to << "  ("
              << Table::fmt(worst.score, 3) << ")\n\n";

    // Positional sensitivity profile: which sites matter. The paratope
    // positions of the hidden ground truth should rank high.
    const auto sensitivity = scan.positionSensitivity();
    std::vector<std::size_t> order(sensitivity.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return sensitivity[a] > sensitivity[b];
              });
    Table hot({ "rank", "position", "residue", "mean |effect|",
                "true paratope?" });
    const auto &paratope = benchmark.groundTruth().paratope();
    for (std::size_t r = 0; r < 8 && r < order.size(); ++r) {
        const std::size_t pos = order[r];
        const bool in_paratope =
            std::find(paratope.begin(), paratope.end(), pos) !=
            paratope.end();
        hot.addRow({ std::to_string(r + 1), std::to_string(pos + 1),
                     std::string(1, scan.wildType[pos]),
                     Table::fmt(sensitivity[pos], 3),
                     in_paratope ? "yes" : "no" });
    }
    hot.print(std::cout);

    // Zero-shot alternative (Meier et al., the paper's zero-shot
    // citation): no head training at all — score substitutions straight
    // from the masked-LM distribution at each position.
    const MlmHead mlm(model);
    std::cout << "\nzero-shot (masked-LM) scores at the hottest "
                 "position:\n";
    const std::size_t hot_pos = order[0];
    Table zs({ "substitution", "log p(to) - log p(wt)" });
    for (char to : { 'A', 'W', 'K', 'I' }) {
        if (to == scan.wildType[hot_pos])
            continue;
        zs.addRow({ std::string(1, scan.wildType[hot_pos]) +
                        std::to_string(hot_pos + 1) + to,
                    Table::fmt(
                        mlm.zeroShotScore(scan.wildType, hot_pos, to),
                        3) });
    }
    zs.print(std::cout);

    // Production cost: a 450-residue Fab has 8550 mutants; at 512
    // tokens each, what does the full scan cost on ProSE?
    const std::uint64_t mutants = 19ull * 450;
    const BertShape shape{ 12, 768, 12, 3072, 128, 512 };
    PerfSim sim(ProseConfig::bestPerf());
    const SimReport report = sim.run(shape);
    const double seconds =
        static_cast<double>(mutants) / report.inferencesPerSecond();
    std::cout << "\nproduction estimate: a full scan of a 450-residue "
                 "Fab (" << mutants << " mutants,\nProtein BERT-base at "
                 "512 tokens) takes ~"
              << Table::fmt(seconds, 1) << " s on one ProSE BestPerf "
              << "instance\n(" << Table::fmt(
                     report.inferencesPerSecond(), 0)
              << " inferences/s).\n";
    return 0;
}
