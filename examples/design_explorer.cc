/**
 * @file
 * Design-space explorer: size your own ProSE. Sweeps heterogeneous
 * array mixes under a PE budget for a chosen protein length, prints
 * the Pareto frontier, and recommends a configuration — the Section 4.2
 * methodology exposed as a tool.
 *
 * Build & run:  ./build/examples/design_explorer [pe-budget] [seq-len]
 *   e.g.        ./build/examples/design_explorer 16384 1024
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "dse/dse_engine.hh"

using namespace prose;

int
main(int argc, char **argv)
{
    std::uint64_t budget = 16384;
    std::uint64_t seq_len = 512;
    if (argc > 1 && (!parseU64(argv[1], budget) || budget == 0))
        fatal("PE budget must be a positive integer, got '", argv[1],
              "'");
    if (argc > 2 && (!parseU64(argv[2], seq_len) || seq_len == 0))
        fatal("sequence length must be a positive integer, got '",
              argv[2], "'");

    std::cout << "ProSE design explorer\n=====================\n\n"
              << "PE budget: " << budget << ", target length: " << seq_len
              << " tokens, link: NVLink 2.0 @ 90%\n\n";

    ConfigSpaceSpec spec;
    spec.peBudget = budget;
    spec.maxCount32 = 31;
    spec.maxCount16 = 63;

    DseWorkload workload;
    workload.shape = BertShape{ 12, 768, 12, 3072, 128, seq_len };
    const DseEngine engine(workload);
    const DseSelection selection = engine.explore(spec);

    // Print the power-Pareto frontier sorted by runtime.
    std::vector<std::size_t> front = selection.powerPareto;
    std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
        return selection.points[a].runtimeSeconds <
               selection.points[b].runtimeSeconds;
    });
    Table table({ "config", "lanes", "runtime-vs-A100", "inf/s",
                  "power(W)", "area(mm2)" });
    for (std::size_t idx : front) {
        const DsePoint &point = selection.points[idx];
        table.addRow({ point.config.name, point.config.lanes.describe(),
                       Table::fmt(point.runtimeVsA100, 3),
                       Table::fmt(point.inferencesPerSecond, 0),
                       Table::fmt(point.powerWatts, 2),
                       Table::fmt(point.areaMm2, 2) });
    }
    std::cout << "runtime-vs-power Pareto frontier (" << front.size()
              << " of " << selection.points.size() << " mixes):\n\n";
    table.print(std::cout);

    const DsePoint &best = selection.points[selection.bestPerf];
    const DsePoint &efficient =
        selection.points[selection.mostPowerEfficient];
    std::cout << "\nBestPerf:           " << best.config.describe()
              << "\nMostPowerEfficient: " << efficient.config.describe()
              << "\n\nRecommendation: " << efficient.config.name
              << " gives "
              << Table::fmt(best.runtimeSeconds /
                                efficient.runtimeSeconds * 100.0,
                            0)
              << "% of BestPerf's speed at "
              << Table::fmt(efficient.powerWatts / best.powerWatts * 100.0,
                            0)
              << "% of its power.\n";
    return 0;
}
