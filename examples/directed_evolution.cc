/**
 * @file
 * Machine-learning-guided directed evolution (the workflow of Yang,
 * Wu & Arnold 2019 that the paper cites as a target application):
 *
 *   repeat for G generations:
 *     1. mutate the current champion into a candidate pool
 *     2. score every candidate with the learned affinity model
 *        (Protein BERT features -> ridge regression)
 *     3. carry the best-predicted candidate forward
 *
 * The hidden ground-truth binding model plays the wet lab: it is only
 * consulted to (a) label the initial training set and (b) audit, after
 * the fact, whether the model-guided trajectory actually improved true
 * affinity.
 *
 * Build & run:  ./build/examples/directed_evolution
 */

#include <algorithm>
#include <iostream>

#include "common/table.hh"
#include "model/bert_model.hh"
#include "model/downstream.hh"
#include "model/tokenizer.hh"
#include "protein/binding.hh"

using namespace prose;

namespace {

/** Mutate `count` random positions of `parent` anywhere. */
std::string
mutateAnywhere(Rng &rng, const std::string &parent, std::size_t count)
{
    static const std::string residues = "ACDEFGHIKLMNPQRSTVWY";
    std::string variant = parent;
    std::size_t applied = 0;
    while (applied < count) {
        const std::size_t pos = rng.below(variant.size());
        const char replacement = residues[rng.below(residues.size())];
        if (variant[pos] == replacement)
            continue;
        variant[pos] = replacement;
        ++applied;
    }
    return variant;
}

Matrix
extract(const BertModel &model, const std::vector<std::string> &pool,
        std::size_t target_len)
{
    const AminoTokenizer tokenizer;
    std::vector<std::vector<std::uint32_t>> tokens;
    tokens.reserve(pool.size());
    for (const auto &sequence : pool)
        tokens.push_back(tokenizer.encode(sequence, target_len));
    return model.extractFeatures(tokens);
}

} // namespace

int
main()
{
    std::cout << "ML-guided directed evolution\n"
              << "============================\n\n";

    BindingSpec spec;
    spec.fabLength = 120;
    spec.seed = 0xd1f7;
    BindingBenchmark benchmark(spec);
    const BindingGroundTruth &lab = benchmark.groundTruth();

    // Train the affinity surrogate on the initial measured library.
    const BindingDataset library = benchmark.makeTrainSet(48);
    BertConfig config = BertConfig::tiny();
    config.maxSeqLen = 256;
    const BertModel model(config, 11);
    const std::size_t target_len = spec.fabLength + 2;

    RegressionHead surrogate;
    surrogate.fit(extract(model, library.variants, target_len),
                  library.affinities, 10.0);

    // Evolve.
    Rng rng(99);
    std::string champion = library.parent;
    double champion_true = lab.affinity(champion);
    const std::size_t generations = 6;
    const std::size_t pool_size = 24;

    Table table({ "generation", "pool best (predicted)",
                  "champion true affinity", "improved" });
    table.addRow({ "0 (wild type)", "-", Table::fmt(champion_true, 2),
                   "-" });
    for (std::size_t gen = 1; gen <= generations; ++gen) {
        std::vector<std::string> pool;
        for (std::size_t i = 0; i < pool_size; ++i)
            pool.push_back(mutateAnywhere(rng, champion, 2));

        const std::vector<double> predicted =
            surrogate.predict(extract(model, pool, target_len));
        const std::size_t best = static_cast<std::size_t>(
            std::max_element(predicted.begin(), predicted.end()) -
            predicted.begin());

        // Greedy hill climb on the surrogate; the wet lab (ground
        // truth) only audits the step.
        const double candidate_true = lab.affinity(pool[best]);
        const bool improved = candidate_true > champion_true;
        if (improved) {
            champion = pool[best];
            champion_true = candidate_true;
        }
        table.addRow({ std::to_string(gen),
                       Table::fmt(predicted[best], 2),
                       Table::fmt(champion_true, 2),
                       improved ? "yes" : "no (kept champion)" });
    }
    table.print(std::cout);

    const double wild_type_true = lab.affinity(library.parent);
    std::cout << "\ntrue affinity: wild type "
              << Table::fmt(wild_type_true, 2) << " -> evolved "
              << Table::fmt(champion_true, 2) << " ("
              << Table::fmt(champion_true - wild_type_true, 2)
              << " improvement, audited against the hidden ground "
                 "truth)\n";
    return 0;
}
