/**
 * @file
 * Antibody binding-affinity screening — the paper's motivating drug
 * discovery workflow (Section 2.2) end-to-end:
 *
 *   1. Generate a Herceptin-like antibody Fab family and an independent
 *      BH1-like family, both binding the same HER2-like epitope, with
 *      hidden ground-truth affinities standing in for the wet lab.
 *   2. Extract Protein BERT features for every variant.
 *   3. Fit a regularized (ridge) regression on the training family.
 *   4. Rank the test-family candidates by predicted affinity and report
 *      Spearman rank correlation against the (held-out) ground truth.
 *   5. Estimate what the screening campaign costs on ProSE vs an A100.
 *
 * Build & run:  ./build/examples/protein_binding
 */

#include <algorithm>
#include <iostream>
#include <numeric>

#include "accel/perf_sim.hh"
#include "baseline/platform.hh"
#include "common/table.hh"
#include "model/bert_model.hh"
#include "model/tokenizer.hh"
#include "numerics/linalg.hh"
#include "protein/binding.hh"

using namespace prose;

int
main()
{
    std::cout << "Antibody binding-affinity screening (Section 2.2)\n"
              << "==================================================\n\n";

    // 1. The two antibody families.
    BindingSpec spec;
    spec.fabLength = 160;
    BindingBenchmark benchmark(spec);
    const BindingDataset train = benchmark.makeTrainSet(39);
    const BindingDataset test = benchmark.makeTestSet(35);
    std::cout << "families: " << train.parentName << " ("
              << train.variants.size() << " variants, train) / "
              << test.parentName << " (" << test.variants.size()
              << " variants, independent test)\n";
    std::cout << "Fab length " << spec.fabLength << ", paratope "
              << benchmark.groundTruth().paratope().size()
              << " positions shared by both parents\n\n";

    // 2-4. Feature extraction + ridge + rank correlation.
    BertConfig config = BertConfig::tiny();
    config.maxSeqLen = 512;
    const BertModel model(config, 7);
    const BindingExperimentResult result =
        runBindingExperiment(model, train, test);
    std::cout << "train Spearman rho: "
              << Table::fmt(result.trainSpearman, 4) << "\n";
    std::cout << "test Spearman rho:  "
              << Table::fmt(result.testSpearman, 4)
              << "  (paper: 0.5161; >~0.5 is experimentally useful)\n\n";

    // Show the screening outcome: top-5 ranked candidates vs truth.
    const AminoTokenizer tokenizer;
    std::vector<std::vector<std::uint32_t>> tokens;
    for (const auto &variant : test.variants)
        tokens.push_back(
            tokenizer.encode(variant, test.parent.size() + 2));
    const Matrix features = model.extractFeatures(tokens);
    std::vector<std::vector<std::uint32_t>> train_tokens;
    for (const auto &variant : train.variants)
        train_tokens.push_back(
            tokenizer.encode(variant, train.parent.size() + 2));
    const RidgeModel ridge = ridgeFit(
        model.extractFeatures(train_tokens), train.affinities, 10.0);
    const std::vector<double> predicted = ridge.predictRows(features);

    std::vector<std::size_t> order(predicted.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return predicted[a] > predicted[b];
    });
    Table top({ "rank", "variant", "predicted", "ground truth" });
    for (std::size_t r = 0; r < 5; ++r) {
        const std::size_t idx = order[r];
        top.addRow({ std::to_string(r + 1),
                     test.parentName + "-" + std::to_string(idx),
                     Table::fmt(predicted[idx], 3),
                     Table::fmt(test.affinities[idx], 3) });
    }
    top.print(std::cout);

    // 5. What would a production-scale screen cost? 100k candidates at
    // Fab scale (~450 residues -> 512-token inputs) on ProSE vs A100.
    std::cout << "\nProduction screen estimate (100,000 Fab candidates, "
                 "Protein BERT-base):\n";
    const BertShape shape{ 12, 768, 12, 3072, 128, 512 };
    const ProseConfig accel = ProseConfig::bestPerf();
    const SimReport report = PerfSim(accel).run(shape);
    const double prose_rate = report.inferencesPerSecond();

    const auto a100 = makeA100();
    const double a100_rate =
        shape.batch /
        a100->costTrace(synthesizeBertTrace(shape)).acceleratedSeconds;

    Table cost({ "platform", "inf/s", "time for 100k", "energy (kJ)" });
    const PowerModel power;
    const double prose_watts = power.systemPowerWatts(
        accel.groups, accel.partialInputBuffer, report.cpuDuty);
    cost.addRow({ "ProSE BestPerf", Table::fmt(prose_rate, 0),
                  Table::fmt(100000.0 / prose_rate, 1) + " s",
                  Table::fmt(100000.0 / prose_rate * prose_watts / 1e3,
                             1) });
    cost.addRow({ "A100", Table::fmt(a100_rate, 0),
                  Table::fmt(100000.0 / a100_rate, 1) + " s",
                  Table::fmt(100000.0 / a100_rate * a100->watts() / 1e3,
                             1) });
    cost.print(std::cout);
    return 0;
}
