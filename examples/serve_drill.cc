/**
 * @file
 * Serve drill: a guided tour of the open-loop serving front end. Walks
 * the robustness story end to end:
 *
 *   1. build a serving spec — seeded Poisson arrivals at 70% of fleet
 *      capacity, latency SLO derived from the modeled batch service
 *      time — and echo what the stack will do;
 *   2. run the healthy baseline and read the report;
 *   3. kill one of the four instances mid-stream (arrival-indexed
 *      chaos campaign) and watch admission control, deadline-aware
 *      shedding, and retry-with-backoff keep the fleet inside its SLO;
 *   4. replay the chaos run and verify it is bit-identical;
 *   5. double the offered load and watch graceful degradation shed
 *      load instead of collapsing.
 *
 * Build & run:  ./build/examples/serve_drill
 */

#include <iostream>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "serve/serve_sim.hh"
#include "serve/service_model.hh"

using namespace prose;

int
main()
{
    std::cout << "ProSE serve drill\n=================\n\n";

    // --- 1. The serving spec -------------------------------------------
    ServeSpec spec;
    spec.model = BertShape{ 2, 256, 4, 1024, 1, 64 };
    spec.batcher.buckets = { 128, 256 };
    spec.batcher.maxBatch = 4;
    spec.instanceCount = 4;
    spec.arrivals.seed = 2022;
    spec.arrivals.count = 1200;
    spec.arrivals.minResidues = 126;
    spec.arrivals.maxResidues = 126;
    const ServiceModel model(spec.instance, spec.model,
                             spec.dispatchOverheadSeconds);
    const double batch_service =
        model.seconds(128, spec.batcher.maxBatch);
    spec.arrivals.ratePerSecond =
        0.7 * model.capacityPerSecond(128, spec.batcher.maxBatch,
                                      spec.instanceCount);
    spec.sloSeconds = 8.0 * batch_service;

    std::cout << "fleet: " << spec.instanceCount << " x "
              << spec.instance.name << "\n"
              << "stream: " << spec.arrivals.count
              << " Poisson arrivals at "
              << Table::fmt(spec.arrivals.ratePerSecond, 0)
              << "/s (70% of batched fleet capacity)\n"
              << "batch service (len 128 x " << spec.batcher.maxBatch
              << "): " << Table::fmt(batch_service * 1e3, 3)
              << " ms; per-request SLO: "
              << Table::fmt(spec.sloSeconds * 1e3, 3) << " ms\n\n";

    // --- 2. Healthy baseline -------------------------------------------
    std::cout << "--- healthy baseline ---\n";
    const ServeSim sim(spec);
    const ServeReport healthy = sim.run();
    std::cout << healthy.describe() << "\n";

    // --- 3. Chaos: kill one instance mid-stream ------------------------
    const std::string campaign_text =
        "kill_instance=1@#" + std::to_string(spec.arrivals.count / 2);
    std::cout << "--- chaos drill: " << campaign_text << " ---\n";
    const CampaignSpec campaign = CampaignSpec::parse(campaign_text);
    FaultInjector injector(campaign);
    const ServeReport chaos = sim.run(&injector);
    std::cout << chaos.describe() << "\n";

    const double retention = sloRetention(healthy, chaos);
    std::cout << "SLO retention (chaos goodput / healthy goodput): "
              << Table::fmt(retention, 3) << "\n\n";
    if (chaos.lost() != 0)
        fatal("chaos run lost ", chaos.lost(), " request(s)");
    if (retention < 0.9)
        fatal("fleet retained only ", Table::fmt(retention, 3),
              " of healthy goodput after one death (gate: 0.9)");

    // --- 4. Deterministic replay ---------------------------------------
    std::cout << "--- deterministic replay ---\n";
    FaultInjector replay_injector(campaign);
    const ServeReport replay = sim.run(&replay_injector);
    const bool identical = replay.describe() == chaos.describe();
    std::cout << "chaos replay identical: " << (identical ? "yes" : "NO")
              << "\n\n";
    if (!identical)
        fatal("serve chaos replay diverged");

    // --- 5. Graceful degradation under overload ------------------------
    std::cout << "--- overload: 2x capacity, bounded queue ---\n";
    ServeSpec overload = spec;
    overload.arrivals.ratePerSecond *= 2.0 / 0.7;
    overload.admission.maxQueueDepth = 64;
    overload.batcher.overloadDepth = 16;
    const ServeReport degraded = ServeSim(overload).run();
    std::cout << degraded.describe() << "\n";
    if (degraded.lost() != 0)
        fatal("overload run lost ", degraded.lost(), " request(s)");
    if (degraded.done == 0)
        fatal("overload collapsed goodput to zero");
    if (degraded.completedLate != 0)
        fatal("overload let ", degraded.completedLate,
              " request(s) finish past their deadline");

    std::cout << "Shed early, batch to the SLO, retry off the dead "
                 "instance: every request accounted for, goodput "
                 "intact.\n";
    return 0;
}
