/**
 * @file
 * Tokenizer vocab-text harness. Accepted vocabularies must round-trip
 * through vocabText() and honor the encode/decode contract on their
 * own alphabet.
 */

#include "fuzz_common.hh"
#include "model/tokenizer.hh"

using namespace prose;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size > fuzz::kMaxInputBytes)
        return 0;
    AminoTokenizer tokenizer;
    const bool accepted = fuzz::guardedParse([&] {
        tokenizer =
            AminoTokenizer::fromVocabText(fuzz::textFromBytes(data, size));
    });
    if (!accepted)
        return 0;

    const std::string &alphabet = tokenizer.alphabet();
    PROSE_ASSERT(!alphabet.empty(), "accepted vocab with no residues");
    PROSE_ASSERT(tokenizer.vocabSize() == 5 + alphabet.size(),
                 "vocabSize disagrees with the alphabet");

    // Canonical text round-trip.
    const AminoTokenizer again =
        AminoTokenizer::fromVocabText(tokenizer.vocabText());
    PROSE_ASSERT(again.alphabet() == alphabet,
                 "vocabText round-trip changed the alphabet");

    // Encoding the alphabet itself: [CLS] ids [SEP], decoded back as
    // '.' alphabet '.'.
    const std::vector<std::uint32_t> ids = tokenizer.encode(alphabet);
    PROSE_ASSERT(ids.size() == alphabet.size() + 2,
                 "encode added tokens beyond [CLS]/[SEP]");
    PROSE_ASSERT(tokenizer.decode(ids) == "." + alphabet + ".",
                 "decode(encode(alphabet)) diverged");
    for (char residue : alphabet)
        PROSE_ASSERT(tokenizer.isResidue(residue),
                     "alphabet member not recognized as residue");
    return 0;
}
