/**
 * @file
 * FASTA reader harness. Property beyond "no crash": any accepted input
 * must round-trip — writeFasta(readFasta(x)) re-parses to the identical
 * record list. This is the invariant that caught the original
 * '>'-swallowed-into-a-sequence bug.
 */

#include <sstream>

#include "fuzz_common.hh"
#include "protein/fasta.hh"

using namespace prose;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size > fuzz::kMaxInputBytes)
        return 0;
    std::vector<FastaRecord> records;
    const bool accepted = fuzz::guardedParse([&] {
        std::istringstream in(fuzz::textFromBytes(data, size));
        records = readFasta(in);
    });
    if (!accepted)
        return 0;

    std::ostringstream out;
    writeFasta(out, records);
    std::istringstream again(out.str());
    const std::vector<FastaRecord> reparsed = readFasta(again);
    PROSE_ASSERT(reparsed.size() == records.size(),
                 "FASTA round-trip changed the record count");
    for (std::size_t i = 0; i < records.size(); ++i) {
        PROSE_ASSERT(reparsed[i].id == records[i].id,
                     "FASTA round-trip changed a record id");
        PROSE_ASSERT(reparsed[i].comment == records[i].comment,
                     "FASTA round-trip changed a comment");
        PROSE_ASSERT(reparsed[i].sequence == records[i].sequence,
                     "FASTA round-trip changed a sequence");
    }
    return 0;
}
