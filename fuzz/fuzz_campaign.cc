/**
 * @file
 * Fault-campaign spec harness. parse() validates internally, so an
 * accepted spec must survive validate() and round-trip through its
 * canonical describe() form.
 */

#include "fault/campaign.hh"
#include "fuzz_common.hh"

using namespace prose;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size > fuzz::kMaxInputBytes)
        return 0;
    CampaignSpec spec;
    const bool accepted = fuzz::guardedParse([&] {
        spec = CampaignSpec::parse(fuzz::textFromBytes(data, size));
    });
    if (!accepted)
        return 0;

    spec.validate();
    const std::string canonical = spec.describe();
    const CampaignSpec again = CampaignSpec::parse(canonical);
    PROSE_ASSERT(again.describe() == canonical,
                 "campaign describe() is not a parse fixed point");
    return 0;
}
