/**
 * @file
 * Corpus-replay driver: gives every fuzz harness a plain main() so the
 * committed corpora run as deterministic ctest cases in the default
 * (GCC, no-fuzzer) build. Each argument is a corpus file or directory;
 * directories are walked non-recursively in sorted order so the replay
 * sequence is stable across filesystems.
 *
 * `--mutate N` additionally replays N deterministic xorshift mutants of
 * each seed — a poor man's fuzzer for local smoke exploration where
 * libFuzzer is unavailable. The mutation stream depends only on the
 * seed bytes and the iteration index, never on wall clock or ASLR.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

bool
readFileBytes(const fs::path &path, std::vector<std::uint8_t> &bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    return !in.bad();
}

std::uint64_t
xorshift(std::uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

/** Deterministic in-place mutation: a few byte flips/overwrites plus
 *  an occasional truncation, seeded by content hash and round. */
void
mutate(std::vector<std::uint8_t> &bytes, std::uint64_t round)
{
    std::uint64_t state = 0x9e3779b97f4a7c15ull ^ (round + 1);
    for (std::uint8_t b : bytes)
        state = state * 1099511628211ull + b;
    if (bytes.empty()) {
        bytes.push_back(static_cast<std::uint8_t>(xorshift(state)));
        return;
    }
    const std::uint64_t edits = 1 + xorshift(state) % 8;
    for (std::uint64_t e = 0; e < edits; ++e) {
        const std::size_t pos = xorshift(state) % bytes.size();
        switch (xorshift(state) % 3) {
          case 0:
            bytes[pos] ^= static_cast<std::uint8_t>(xorshift(state));
            break;
          case 1:
            bytes[pos] = static_cast<std::uint8_t>(xorshift(state));
            break;
          case 2:
            bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                         static_cast<std::uint8_t>(xorshift(state)));
            break;
        }
    }
    if (xorshift(state) % 4 == 0)
        bytes.resize(1 + xorshift(state) % bytes.size());
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t mutate_rounds = 0;
    std::vector<fs::path> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--mutate") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--mutate needs a count\n");
                return 2;
            }
            mutate_rounds = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
            continue;
        }
        const fs::path path(arg);
        std::error_code ec;
        if (fs::is_directory(path, ec)) {
            std::vector<fs::path> entries;
            for (const auto &entry : fs::directory_iterator(path))
                if (entry.is_regular_file())
                    entries.push_back(entry.path());
            std::sort(entries.begin(), entries.end());
            files.insert(files.end(), entries.begin(), entries.end());
        } else if (fs::is_regular_file(path, ec)) {
            files.push_back(path);
        } else {
            std::fprintf(stderr, "no such corpus input: %s\n",
                         arg.c_str());
            return 2;
        }
    }

    std::size_t executed = 0;
    for (const fs::path &file : files) {
        std::vector<std::uint8_t> bytes;
        if (!readFileBytes(file, bytes)) {
            std::fprintf(stderr, "cannot read corpus file: %s\n",
                         file.string().c_str());
            return 2;
        }
        LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
        ++executed;
        std::vector<std::uint8_t> mutant = bytes;
        for (std::size_t round = 0; round < mutate_rounds; ++round) {
            mutate(mutant, round);
            LLVMFuzzerTestOneInput(mutant.data(), mutant.size());
            ++executed;
        }
    }
    std::printf("replayed %zu input%s over %zu corpus file%s\n",
                executed, executed == 1 ? "" : "s", files.size(),
                files.size() == 1 ? "" : "s");
    return 0;
}
