/**
 * @file
 * Full-config assembly harness: configFromSpec must either reject
 * malformed mix/lane text with a clean fatal() or hand back a config
 * that passes validate() — text input must never be able to reach a
 * PROSE_ASSERT abort inside validate().
 */

#include "accel/link_model.hh"
#include "accel/mix_parse.hh"
#include "fuzz_common.hh"

using namespace prose;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size > fuzz::kMaxInputBytes)
        return 0;
    fuzz::FuzzInput input(data, size);
    const LinkSpec links[] = {
        LinkSpec::nvlink2At80(), LinkSpec::nvlink2At90(),
        LinkSpec::nvlink3At80(), LinkSpec::nvlink3At90(),
        LinkSpec::infinite(),
    };
    const LinkSpec link = input.pick(links);

    const std::string text = input.rest();
    const std::size_t split = text.find('\n');
    const std::string mix_text = text.substr(0, split);
    const std::string lane_text =
        split == std::string::npos ? "" : text.substr(split + 1);

    ProseConfig config;
    const bool accepted = fuzz::guardedParse(
        [&] { config = configFromSpec(mix_text, lane_text, link); });
    if (!accepted)
        return 0;

    // configFromSpec pre-validates, so this must be abort-free.
    config.validate();
    PROSE_ASSERT(config.totalPes() > 0, "accepted config with no PEs");
    std::uint64_t counted = 0;
    for (const ArrayGroupSpec &group : config.groups)
        counted += group.count;
    PROSE_ASSERT(config.instances().size() == counted,
                 "instances() disagrees with the group counts");
    return 0;
}
