/**
 * @file
 * Weights-checkpoint loader harness. The format is exact (magic,
 * version, dims, raw fp32), so any accepted buffer must re-serialize
 * to the identical bytes. Uses a mini config whose full checkpoint
 * (~30 KiB) fits under the harness input cap, so the fuzzer can reach
 * the accept path from the committed valid-checkpoint seed.
 */

#include <sstream>

#include "fuzz_common.hh"
#include "model/bert_config.hh"
#include "model/weights_io.hh"

using namespace prose;

namespace {

BertConfig
miniConfig()
{
    BertConfig config;
    config.hidden = 16;
    config.layers = 1;
    config.heads = 2;
    config.intermediate = 32;
    config.maxSeqLen = 16;
    return config;
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    static const BertConfig config = miniConfig();
    if (size > fuzz::kMaxInputBytes)
        return 0;
    const std::string bytes = fuzz::textFromBytes(data, size);
    BertWeights weights;
    const bool accepted = fuzz::guardedParse(
        [&] { weights = readWeightsBuffer(bytes, config); });
    if (!accepted)
        return 0;

    std::ostringstream out;
    writeWeights(out, config, weights);
    PROSE_ASSERT(out.str() == bytes,
                 "accepted checkpoint did not re-serialize bit-exactly");
    return 0;
}
