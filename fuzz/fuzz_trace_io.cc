/**
 * @file
 * Op-trace reader harness. Accepted traces must round-trip through
 * writeTrace: the re-parsed op list is field-identical and the second
 * serialization matches the first byte-for-byte.
 */

#include <sstream>

#include "fuzz_common.hh"
#include "trace/trace_io.hh"

using namespace prose;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size > fuzz::kMaxInputBytes)
        return 0;
    OpTrace trace;
    const bool accepted = fuzz::guardedParse([&] {
        std::istringstream in(fuzz::textFromBytes(data, size));
        trace = readTrace(in);
    });
    if (!accepted)
        return 0;

    std::ostringstream out;
    writeTrace(out, trace);
    std::istringstream again_in(out.str());
    const OpTrace again = readTrace(again_in);
    PROSE_ASSERT(again.ops().size() == trace.ops().size(),
                 "trace round-trip changed the op count");
    for (std::size_t i = 0; i < trace.ops().size(); ++i) {
        const Op &a = trace.ops()[i];
        const Op &b = again.ops()[i];
        PROSE_ASSERT(a.kind == b.kind && a.sublayer == b.sublayer &&
                         a.layer == b.layer && a.batch == b.batch &&
                         a.m == b.m && a.k == b.k && a.n == b.n &&
                         a.broadcast == b.broadcast,
                     "trace round-trip changed an op");
    }
    std::ostringstream out2;
    writeTrace(out2, again);
    PROSE_ASSERT(out2.str() == out.str(),
                 "trace serialization is not a fixed point");
    return 0;
}
