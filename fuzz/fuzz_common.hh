/**
 * @file
 * Shared plumbing for the fuzz harnesses. Every harness defines the
 * libFuzzer entry point `LLVMFuzzerTestOneInput` and compiles two ways:
 *
 *   - under PROSE_FUZZ (clang), linked with -fsanitize=fuzzer into a
 *     coverage-guided fuzzer binary;
 *   - always, linked with replay_main.cc into a plain executable that
 *     replays the committed corpus files deterministically as a ctest
 *     tier-1 test (no fuzzer, any compiler).
 *
 * Parsers reject malformed input with fatal(), which normally exits
 * the process. Harnesses wrap the parse in guardedParse(), which uses
 * ScopedFatalThrow to turn fatal() into a caught exception: a clean
 * rejection is a *pass*, while anything else — assertion abort, UB,
 * ASan report, uncaught exception — crashes the harness and becomes a
 * fuzzer finding.
 */

#ifndef PROSE_FUZZ_FUZZ_COMMON_HH
#define PROSE_FUZZ_FUZZ_COMMON_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace prose::fuzz {

/**
 * Hard cap on bytes a harness accepts per input. Keeps exploration in
 * the parser state machines instead of in O(bytes) buffer churn, and
 * bounds replay time for committed corpus files.
 */
constexpr std::size_t kMaxInputBytes = 64 * 1024;

/** The raw fuzz bytes as a string (text parsers take text). */
inline std::string
textFromBytes(const std::uint8_t *data, std::size_t size)
{
    return std::string(reinterpret_cast<const char *>(data), size);
}

/**
 * Run one parse attempt with fatal() demoted to a quiet exception.
 * Returns true if the parser accepted the input, false on a clean
 * fatal() rejection. Crashes (abort, sanitizer, other exceptions)
 * propagate — those are findings.
 */
template <typename Fn>
bool
guardedParse(Fn &&fn)
{
    ScopedFatalThrow guard;
    try {
        std::forward<Fn>(fn)();
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

/**
 * Structured decoder for structure-aware harnesses: consumes the fuzz
 * byte stream as a sequence of small decisions. Exhausted input yields
 * zeros, so every byte string — including the empty one — decodes to
 * a complete, valid tuple and the fuzzer never wastes executions on
 * "malformed" structure.
 */
class FuzzInput
{
  public:
    FuzzInput(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::size_t remaining() const { return size_ - pos_; }

    std::uint8_t u8()
    {
        if (pos_ >= size_)
            return 0;
        return data_[pos_++];
    }

    std::uint32_t u32()
    {
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
            value = (value << 8) | u8();
        return value;
    }

    /** Uniform-ish pick in [0, bound); bound must be > 0. */
    std::uint32_t below(std::uint32_t bound)
    {
        return u32() % bound;
    }

    /** Pick one element of a fixed table. */
    template <typename T, std::size_t N>
    const T &pick(const T (&table)[N])
    {
        return table[below(static_cast<std::uint32_t>(N))];
    }

    /** A small signed float in [-4, 4), quantized to 1/16 steps so
     *  accumulation stays far from overflow/inf. */
    float smallFloat()
    {
        return (static_cast<int>(u8()) - 128) / 32.0f;
    }

    /** The undecoded tail as text (for embedded free-form fields). */
    std::string rest()
    {
        std::string tail(reinterpret_cast<const char *>(data_ + pos_),
                         size_ - pos_);
        pos_ = size_;
        return tail;
    }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace prose::fuzz

#endif // PROSE_FUZZ_FUZZ_COMMON_HH
