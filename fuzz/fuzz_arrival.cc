/**
 * @file
 * Arrival-trace parser harness. Accepted traces must come out with
 * the documented invariants: strictly increasing timestamps, nonzero
 * lengths, non-negative times.
 */

#include <sstream>

#include "fuzz_common.hh"
#include "serve/arrival.hh"

using namespace prose;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size > fuzz::kMaxInputBytes)
        return 0;
    std::vector<TraceArrival> arrivals;
    const bool accepted = fuzz::guardedParse([&] {
        std::istringstream in(fuzz::textFromBytes(data, size));
        arrivals = parseArrivalTrace(in, "<fuzz>");
    });
    if (!accepted)
        return 0;

    PROSE_ASSERT(!arrivals.empty(), "accepted an empty arrival trace");
    double last_at = -1.0;
    for (const TraceArrival &arrival : arrivals) {
        PROSE_ASSERT(arrival.atSeconds >= 0.0,
                     "accepted a negative arrival time");
        PROSE_ASSERT(arrival.atSeconds > last_at,
                     "accepted non-increasing arrival timestamps");
        PROSE_ASSERT(arrival.residues > 0,
                     "accepted a zero-length request");
        last_at = arrival.atSeconds;
    }
    return 0;
}
