/**
 * @file
 * Mix/lane spec parser harness. Input is split at the first newline:
 * first line fuzzes parseMixSpec, the rest fuzzes parseLaneSpec.
 * Accepted mixes must obey the documented bounds (nonzero dims and
 * counts, no duplicate types).
 */

#include "accel/mix_parse.hh"
#include "fuzz_common.hh"

using namespace prose;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size > fuzz::kMaxInputBytes)
        return 0;
    const std::string text = fuzz::textFromBytes(data, size);
    const std::size_t split = text.find('\n');
    const std::string mix_text = text.substr(0, split);
    const std::string lane_text =
        split == std::string::npos ? "" : text.substr(split + 1);

    std::vector<ArrayGroupSpec> groups;
    if (fuzz::guardedParse([&] { groups = parseMixSpec(mix_text); })) {
        PROSE_ASSERT(!groups.empty(), "accepted mix spec with no groups");
        bool seen[3] = {};
        for (const ArrayGroupSpec &group : groups) {
            PROSE_ASSERT(group.geometry.dim > 0 &&
                             group.geometry.dim <= 4096,
                         "accepted out-of-bounds array dimension");
            PROSE_ASSERT(group.count > 0 && group.count <= 65536,
                         "accepted out-of-bounds array count");
            const auto type =
                static_cast<std::size_t>(group.geometry.type);
            PROSE_ASSERT(type < 3 && !seen[type],
                         "accepted duplicate array type");
            seen[type] = true;
        }
    }

    LanePartition lanes;
    if (fuzz::guardedParse([&] { lanes = parseLaneSpec(lane_text); }))
        PROSE_ASSERT(lanes.total() > 0, "accepted an empty lane split");
    return 0;
}
