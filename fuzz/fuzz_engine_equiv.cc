/**
 * @file
 * Structure-aware differential harness for the engine-equivalence
 * contract (docs/MICROARCHITECTURE.md §9): the cycle-stepped reference
 * walk, the diagonal-batched stepped engine, and the fast-forward
 * engine must agree bit-for-bit on accumulators, drains, and every
 * cycle/stall/MAC counter, across SIMD tiers, non-uniform fill
 * profiles, and fault campaigns.
 *
 * The fuzz bytes are decoded into a (geometry, supply rates, fill
 * profile, SIMD tier, fault campaign, op sequence) tuple via FuzzInput
 * — every byte string is a valid tuple, so the fuzzer spends its
 * entire budget searching the equivalence property, not fighting a
 * parser. Any divergence aborts via PROSE_ASSERT and becomes a
 * reproducible corpus entry.
 */

#include <cstring>
#include <optional>
#include <vector>

#include "fault/fault_injector.hh"
#include "fuzz_common.hh"
#include "numerics/kernels/kernel_dispatch.hh"
#include "numerics/matrix.hh"
#include "systolic/fsim_mode.hh"
#include "systolic/systolic_array.hh"

using namespace prose;

namespace {

/** Which engine a run drives; Reference is stepped with diagonal
 *  batching off (the scalar wavefront walk). */
enum class Engine
{
    Reference,
    SteppedBatched,
    Fast,
    Validate,
};

/** The decoded scenario, shared verbatim by every engine run. */
struct Scenario
{
    std::uint32_t dim = 4;
    double aRate = 1e18;
    double bRate = 1e18;
    std::vector<double> fillProfile; ///< empty = uniform
    std::optional<CampaignSpec> campaign;
    kernels::SimdTier tier = kernels::SimdTier::Scalar;

    struct Step
    {
        std::uint32_t kind = 0; ///< 0 matmul, 1..4 SIMD, 5 drain
        std::uint32_t rows = 1, cols = 1, k = 1;
        float scalar = 0.0f;
        std::vector<float> plane; ///< matmul/vector operand data
    };
    std::vector<Step> steps;
};

Scenario
decodeScenario(fuzz::FuzzInput &input)
{
    Scenario s;
    const std::uint32_t dims[] = { 4, 5, 8, 12, 16 };
    s.dim = input.pick(dims);

    const double rates[] = { 1e18, 2.5, 1.0, 0.75, 0.5, 0.25 };
    s.aRate = input.pick(rates);
    s.bRate = input.pick(rates);

    // Optional bursty fill profile (forces the stepped engine on the
    // fast array, which is exactly the fallback path under test).
    if (input.u8() % 4 == 0) {
        const std::size_t len = 1 + input.below(4);
        for (std::size_t i = 0; i < len; ++i)
            s.fillProfile.push_back(input.below(3)); // 0, 1, or 2/tick
        // An all-zero period is rejected by the simulator (it can
        // never make progress); keep the scenario valid while still
        // covering burst patterns with idle ticks.
        bool any = false;
        for (double r : s.fillProfile)
            any = any || r > 0.0;
        if (!any)
            s.fillProfile.front() = 1.0;
    }

    // Optional deterministic fault campaign. Injection forces stepped
    // everywhere; the property narrows to batched-vs-reference plus an
    // identical event log.
    if (input.u8() % 4 == 0) {
        CampaignSpec spec;
        spec.seed = 1 + input.below(1 << 20);
        const double rates_flip[] = { 0.001, 0.01, 0.05, 0.2 };
        spec.accFlipRate = input.pick(rates_flip);
        s.campaign = spec;
    }

    const kernels::SimdTier tiers[] = {
        kernels::SimdTier::Scalar,
        kernels::SimdTier::Avx2,
        kernels::SimdTier::Avx512,
    };
    kernels::SimdTier tier = input.pick(tiers);
    while (!kernels::simdTierAvailable(tier))
        tier = static_cast<kernels::SimdTier>(
            static_cast<int>(tier) - 1);
    s.tier = tier;

    const std::size_t steps = 1 + input.below(10);
    for (std::size_t i = 0; i < steps; ++i) {
        Scenario::Step step;
        step.kind = input.below(6);
        if (step.kind == 0) {
            step.rows = 1 + input.below(s.dim);
            step.cols = 1 + input.below(s.dim);
            step.k = 1 + input.below(12);
            step.plane.resize(step.rows * step.k + step.k * step.cols);
            for (float &v : step.plane)
                v = input.smallFloat();
        } else if (step.kind == 1 || step.kind == 2) {
            step.scalar = input.smallFloat();
        } else if (step.kind == 3) {
            step.scalar = input.u8() % 2 ? 1.0f : 0.0f; // op selector
            step.plane.resize(s.dim * s.dim);
            for (float &v : step.plane)
                v = input.smallFloat();
        } else if (step.kind == 4) {
            step.scalar = input.u8() % 2 ? 1.0f : 0.0f; // Gelu vs Exp
        }
        s.steps.push_back(std::move(step));
    }
    return s;
}

/** Everything observable after replaying a scenario on one engine. */
struct RunResult
{
    std::vector<Matrix> drains;
    Matrix finalAcc;
    std::uint64_t matmulCycles = 0;
    std::uint64_t simdCycles = 0;
    std::uint64_t stallCycles = 0;
    std::uint64_t macCount = 0;
    std::uint64_t simdOpCount = 0;
    std::uint64_t aStalls = 0;
    std::uint64_t bStalls = 0;
    std::uint64_t aConsumed = 0;
    std::uint64_t bConsumed = 0;
    std::string faultLog;
};

RunResult
runScenario(const Scenario &s, Engine engine)
{
    ArrayGeometry geom = ArrayGeometry::gType(s.dim);
    geom.hasExp = true; // both LUT kinds live on one array
    SystolicArray array(geom, s.aRate, s.bRate);
    switch (engine) {
      case Engine::Reference:
        array.setMode(FsimMode::Stepped);
        array.setDiagonalBatching(false);
        break;
      case Engine::SteppedBatched:
        array.setMode(FsimMode::Stepped);
        break;
      case Engine::Fast:
        array.setMode(FsimMode::Fast);
        break;
      case Engine::Validate:
        array.setMode(FsimMode::Validate);
        break;
    }
    if (!s.fillProfile.empty())
        array.aBuffer().setFillProfile(s.fillProfile);

    std::optional<FaultInjector> injector;
    if (s.campaign) {
        injector.emplace(*s.campaign);
        array.setFaultInjector(&*injector, "G0");
    }

    RunResult result;
    bool live = false;
    for (const Scenario::Step &step : s.steps) {
        // Non-matmul ops need a live tile; skip them identically on
        // every engine when nothing is live.
        if (step.kind != 0 && !live)
            continue;
        switch (step.kind) {
          case 0: {
            Matrix a(step.rows, step.k);
            Matrix b(step.k, step.cols);
            std::size_t at = 0;
            for (std::size_t i = 0; i < step.rows; ++i)
                for (std::size_t j = 0; j < step.k; ++j)
                    a(i, j) = step.plane[at++];
            for (std::size_t i = 0; i < step.k; ++i)
                for (std::size_t j = 0; j < step.cols; ++j)
                    b(i, j) = step.plane[at++];
            array.matmulTile(a, b);
            live = true;
            break;
          }
          case 1:
            array.simdScalar(SimdOp::MulScalar, step.scalar);
            break;
          case 2:
            array.simdScalar(SimdOp::AddScalar, step.scalar);
            break;
          case 3: {
            Matrix operand(s.dim, s.dim);
            std::size_t at = 0;
            for (std::size_t i = 0; i < s.dim; ++i)
                for (std::size_t j = 0; j < s.dim; ++j)
                    operand(i, j) = step.plane[at++];
            array.simdVector(step.scalar != 0.0f ? SimdOp::MulVector
                                                 : SimdOp::AddVector,
                             operand);
            break;
          }
          case 4:
            array.simdSpecial(step.scalar != 0.0f ? SimdOp::Gelu
                                                  : SimdOp::Exp);
            break;
          case 5: {
            Matrix out;
            array.drain(out);
            result.drains.push_back(std::move(out));
            live = false;
            break;
          }
        }
    }
    if (live)
        result.finalAcc = array.accumulators();
    result.matmulCycles = array.matmulCycles();
    result.simdCycles = array.simdCycles();
    result.stallCycles = array.stallCycles();
    result.macCount = array.macCount();
    result.simdOpCount = array.simdOpCount();
    result.aStalls = array.aBuffer().stallCycles();
    result.bStalls = array.bBuffer().stallCycles();
    result.aConsumed = array.aBuffer().consumed();
    result.bConsumed = array.bBuffer().consumed();
    if (injector)
        result.faultLog = injector->eventLogText();
    return result;
}

void
assertBitIdentical(const Matrix &a, const Matrix &b, const char *what)
{
    PROSE_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "engine divergence (shape): ", what);
    PROSE_ASSERT(std::memcmp(a.data(), b.data(),
                             a.rows() * a.cols() * sizeof(float)) == 0,
                 "engine divergence (bits): ", what);
}

void
assertRunsAgree(const RunResult &a, const RunResult &b, const char *who)
{
    PROSE_ASSERT(a.drains.size() == b.drains.size(),
                 "engine divergence (drain count): ", who);
    for (std::size_t d = 0; d < a.drains.size(); ++d)
        assertBitIdentical(a.drains[d], b.drains[d], who);
    assertBitIdentical(a.finalAcc, b.finalAcc, who);
    PROSE_ASSERT(a.matmulCycles == b.matmulCycles,
                 "engine divergence (matmul cycles): ", who);
    PROSE_ASSERT(a.simdCycles == b.simdCycles,
                 "engine divergence (simd cycles): ", who);
    PROSE_ASSERT(a.stallCycles == b.stallCycles,
                 "engine divergence (stall cycles): ", who);
    PROSE_ASSERT(a.macCount == b.macCount,
                 "engine divergence (mac count): ", who);
    PROSE_ASSERT(a.simdOpCount == b.simdOpCount,
                 "engine divergence (simd ops): ", who);
    PROSE_ASSERT(a.aStalls == b.aStalls && a.bStalls == b.bStalls,
                 "engine divergence (buffer stalls): ", who);
    PROSE_ASSERT(a.aConsumed == b.aConsumed &&
                     a.bConsumed == b.bConsumed,
                 "engine divergence (buffer consumption): ", who);
    PROSE_ASSERT(a.faultLog == b.faultLog,
                 "engine divergence (fault event log): ", who);
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size > fuzz::kMaxInputBytes)
        return 0;
    fuzz::FuzzInput input(data, size);
    const Scenario scenario = decodeScenario(input);

    kernels::setActiveSimdTier(scenario.tier);
    const RunResult reference = runScenario(scenario, Engine::Reference);
    assertRunsAgree(reference,
                    runScenario(scenario, Engine::SteppedBatched),
                    "stepped+batched vs reference");
    assertRunsAgree(reference, runScenario(scenario, Engine::Fast),
                    "fast vs reference");
    assertRunsAgree(reference, runScenario(scenario, Engine::Validate),
                    "validate vs reference");
    kernels::setActiveSimdTier(kernels::bestSimdTier());
    return 0;
}
