/** @file Tests for weight initialization. */

#include <gtest/gtest.h>

#include <cmath>

#include "model/weights.hh"

namespace prose {
namespace {

TEST(Weights, ShapesMatchConfig)
{
    const BertConfig config = BertConfig::tiny();
    const BertWeights w = BertWeights::initialize(config, 1);
    EXPECT_EQ(w.tokenEmbedding.rows(), config.vocabSize);
    EXPECT_EQ(w.tokenEmbedding.cols(), config.hidden);
    EXPECT_EQ(w.positionEmbedding.rows(), config.maxSeqLen);
    ASSERT_EQ(w.layers.size(), config.layers);
    EXPECT_EQ(w.layers[0].wq.rows(), config.hidden);
    EXPECT_EQ(w.layers[0].w1.cols(), config.intermediate);
    EXPECT_EQ(w.layers[0].w2.rows(), config.intermediate);
    EXPECT_EQ(w.layers[0].b1.size(), config.intermediate);
}

TEST(Weights, DeterministicFromSeed)
{
    const BertConfig config = BertConfig::tiny();
    const BertWeights a = BertWeights::initialize(config, 42);
    const BertWeights b = BertWeights::initialize(config, 42);
    EXPECT_EQ(Matrix::maxAbsDiff(a.layers[1].wo, b.layers[1].wo), 0.0f);
    EXPECT_EQ(Matrix::maxAbsDiff(a.tokenEmbedding, b.tokenEmbedding),
              0.0f);
}

TEST(Weights, DifferentSeedsDiffer)
{
    const BertConfig config = BertConfig::tiny();
    const BertWeights a = BertWeights::initialize(config, 1);
    const BertWeights b = BertWeights::initialize(config, 2);
    EXPECT_GT(Matrix::maxAbsDiff(a.layers[0].wq, b.layers[0].wq), 0.0f);
}

TEST(Weights, LayerNormInitializedToIdentity)
{
    const BertConfig config = BertConfig::tiny();
    const BertWeights w = BertWeights::initialize(config, 3);
    for (float g : w.layers[0].lnAttnGamma)
        EXPECT_EQ(g, 1.0f);
    for (float b : w.layers[0].lnOutBeta)
        EXPECT_EQ(b, 0.0f);
}

TEST(Weights, ParameterCountMatchesAnalytic)
{
    const BertConfig c = BertConfig::tiny();
    const BertWeights w = BertWeights::initialize(c, 4);
    const std::size_t h = c.hidden, f = c.intermediate;
    const std::size_t per_layer = 4 * h * h + 4 * h // qkvo + biases
                                  + 2 * h           // ln attn
                                  + h * f + f       // w1 + b1
                                  + f * h + h       // w2 + b2
                                  + 2 * h;          // ln out
    const std::size_t expected = c.vocabSize * h + c.maxSeqLen * h +
                                 2 * h + c.layers * per_layer +
                                 h * h + h; // pooler
    EXPECT_EQ(w.parameterCount(), expected);
}

TEST(Weights, BertBaseParameterCountNearEightyMillion)
{
    // BERT-base-ish magnitude sanity (vocab here is tiny so the total
    // sits near 86M from the encoder stack alone).
    const BertConfig c = BertConfig::proteinBertBase();
    const BertWeights w = BertWeights::initialize(c, 5);
    EXPECT_GT(w.parameterCount(), 80'000'000u);
    EXPECT_LT(w.parameterCount(), 95'000'000u);
}

TEST(Weights, InitStddevRoughlyRespected)
{
    const BertConfig config = BertConfig::tiny();
    const BertWeights w = BertWeights::initialize(config, 6);
    double sum_sq = 0.0;
    const Matrix &m = w.layers[0].wq;
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            sum_sq += static_cast<double>(m(i, j)) * m(i, j);
    const double stddev =
        std::sqrt(sum_sq / static_cast<double>(m.size()));
    EXPECT_NEAR(stddev, config.initStddev, 0.005);
}

} // namespace
} // namespace prose
