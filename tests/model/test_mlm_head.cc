/** @file Tests for the masked-LM head and zero-shot scoring. */

#include <gtest/gtest.h>

#include <cmath>

#include "model/mlm_head.hh"
#include "model/tokenizer.hh"

namespace prose {
namespace {

class MlmHeadTest : public ::testing::Test
{
  protected:
    MlmHeadTest() : model_(BertConfig::tiny(), 42), head_(model_) {}
    BertModel model_;
    MlmHead head_;
};

TEST_F(MlmHeadTest, LogProbabilitiesNormalize)
{
    const AminoTokenizer tok;
    const auto tokens = tok.encode("MEYQACDW");
    const auto log_probs = head_.logProbabilities(tokens, 3);
    ASSERT_EQ(log_probs.size(), model_.config().vocabSize);
    double total = 0.0;
    for (double lp : log_probs) {
        EXPECT_LE(lp, 0.0);
        total += std::exp(lp);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(MlmHeadTest, Deterministic)
{
    const AminoTokenizer tok;
    const auto tokens = tok.encode("ACDEFGHIKL");
    const auto a = head_.logProbabilities(tokens, 5);
    const auto b = head_.logProbabilities(tokens, 5);
    EXPECT_EQ(a, b);
}

TEST_F(MlmHeadTest, MaskingMattersForTheDistribution)
{
    // Two different contexts around the same masked position give
    // different distributions (the encoder attends to neighbors).
    const AminoTokenizer tok;
    const auto a =
        head_.logProbabilities(tok.encode("AAAAWAAAA"), 5);
    const auto b =
        head_.logProbabilities(tok.encode("WWWWAWWWW"), 5);
    double diff = 0.0;
    for (std::size_t v = 0; v < a.size(); ++v)
        diff = std::max(diff, std::fabs(a[v] - b[v]));
    EXPECT_GT(diff, 1e-3);
}

TEST_F(MlmHeadTest, ZeroShotScoreAntisymmetricConsistency)
{
    // score(from -> to) at a position equals -(score of the reverse
    // substitution evaluated on the same masked distribution); with
    // the same wild type both read the same distribution, so
    // score(to) - score(to2) = lp(to) - lp(to2).
    const std::string wild = "MEYQACDWKL";
    const double to_w = head_.zeroShotScore(wild, 4, 'W');
    const double to_g = head_.zeroShotScore(wild, 4, 'G');
    const AminoTokenizer tok;
    const auto lps =
        head_.logProbabilities(tok.encode(wild), 5);
    EXPECT_NEAR(to_w - to_g,
                lps[tok.residueId('W')] - lps[tok.residueId('G')],
                1e-9);
}

TEST_F(MlmHeadTest, SelfSubstitutionScoresZero)
{
    const std::string wild = "MEYQACDWKL";
    EXPECT_DOUBLE_EQ(head_.zeroShotScore(wild, 2, wild[2]), 0.0);
}

TEST_F(MlmHeadTest, PseudoLogLikelihoodIsNegativeAndAdditive)
{
    const double pll = head_.pseudoLogLikelihood("MEYQA");
    EXPECT_LT(pll, 0.0);
    // |PLL| per residue is bounded by log(vocab) on average only for a
    // uniform model; sanity-bound it loosely.
    EXPECT_GT(pll, -5.0 * std::log(31.0) * 4.0);
}

TEST_F(MlmHeadTest, WorksInAcceleratorNumerics)
{
    const AminoTokenizer tok;
    const auto tokens = tok.encode("ACDEFG");
    const auto fp32 = head_.logProbabilities(tokens, 2,
                                             NumericsMode::Fp32);
    const auto lut = head_.logProbabilities(tokens, 2,
                                            NumericsMode::Bf16Lut);
    // Distributions must agree to bf16 tolerance.
    for (std::size_t v = 0; v < fp32.size(); ++v)
        EXPECT_NEAR(std::exp(fp32[v]), std::exp(lut[v]), 0.05);
}

TEST_F(MlmHeadTest, OutOfRangePanics)
{
    const AminoTokenizer tok;
    const auto tokens = tok.encode("ACD");
    EXPECT_DEATH(head_.logProbabilities(tokens, 99), "out of range");
    EXPECT_DEATH(head_.zeroShotScore("ACD", 3, 'W'), "out of range");
}

} // namespace
} // namespace prose
