/** @file Tests for BertConfig presets and invariants. */

#include <gtest/gtest.h>

#include "model/bert_config.hh"

namespace prose {
namespace {

TEST(BertConfig, ProteinBertBaseMatchesPaperShape)
{
    const BertConfig config = BertConfig::proteinBertBase();
    EXPECT_EQ(config.hidden, 768u);
    EXPECT_EQ(config.layers, 12u);
    EXPECT_EQ(config.heads, 12u);
    EXPECT_EQ(config.intermediate, 3072u);
    EXPECT_EQ(config.headDim(), 64u);
    EXPECT_GE(config.maxSeqLen, 2048u); // protein lengths reach 2000+
    config.validate();
}

TEST(BertConfig, TinyKeepsStructure)
{
    const BertConfig config = BertConfig::tiny();
    EXPECT_EQ(config.hidden % config.heads, 0u);
    EXPECT_EQ(config.intermediate, 4 * config.hidden);
    config.validate();
}

TEST(BertConfig, ShapeViewCarriesDims)
{
    const BertConfig config = BertConfig::proteinBertBase();
    const BertShape shape = config.shape(128, 512);
    EXPECT_EQ(shape.batch, 128u);
    EXPECT_EQ(shape.seqLen, 512u);
    EXPECT_EQ(shape.hidden, 768u);
    EXPECT_EQ(shape.layers, 12u);
    EXPECT_EQ(shape.intermediate, 3072u);
}

TEST(BertConfigDeathTest, HeadsMustDivideHidden)
{
    BertConfig config = BertConfig::tiny();
    config.heads = 3;
    EXPECT_DEATH(config.validate(), "divide");
}

TEST(BertConfigDeathTest, OverlongSequenceRejected)
{
    const BertConfig config = BertConfig::tiny();
    EXPECT_DEATH(config.shape(1, config.maxSeqLen + 1), "maxSeqLen");
}

} // namespace
} // namespace prose
