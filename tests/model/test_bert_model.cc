/** @file Tests for the BERT encoder forward pass and its numerics modes. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.hh"
#include "model/bert_model.hh"
#include "model/tokenizer.hh"

namespace prose {
namespace {

std::vector<std::vector<std::uint32_t>>
encodeBatch(const std::vector<std::string> &proteins, std::size_t len)
{
    AminoTokenizer tok;
    std::vector<std::vector<std::uint32_t>> batch;
    for (const auto &p : proteins)
        batch.push_back(tok.encode(p, len));
    return batch;
}

class BertModelTest : public ::testing::Test
{
  protected:
    BertModelTest() : model_(BertConfig::tiny(), 42) {}
    BertModel model_;
};

TEST_F(BertModelTest, OutputShapes)
{
    const auto batch = encodeBatch({ "MEYQACD", "WWWWWWW" }, 16);
    const auto out = model_.forward(batch);
    EXPECT_EQ(out.hidden.rows(), 2u * 16u);
    EXPECT_EQ(out.hidden.cols(), model_.config().hidden);
    EXPECT_EQ(out.pooled.rows(), 2u);
    EXPECT_EQ(out.pooled.cols(), model_.config().hidden);
}

TEST_F(BertModelTest, DeterministicForward)
{
    const auto batch = encodeBatch({ "ACDEFGHIKL" }, 16);
    const auto a = model_.forward(batch);
    const auto b = model_.forward(batch);
    EXPECT_EQ(Matrix::maxAbsDiff(a.hidden, b.hidden), 0.0f);
}

TEST_F(BertModelTest, OutputIsLayerNormalized)
{
    // The encoder ends in a LayerNorm with unit gain/zero bias, so each
    // hidden row has ~zero mean and ~unit variance.
    const auto batch = encodeBatch({ "MEYQ" }, 8);
    const auto out = model_.forward(batch);
    const std::size_t h = model_.config().hidden;
    for (std::size_t r = 0; r < out.hidden.rows(); ++r) {
        double sum = 0.0, sum_sq = 0.0;
        for (std::size_t j = 0; j < h; ++j) {
            sum += out.hidden(r, j);
            sum_sq += static_cast<double>(out.hidden(r, j)) *
                      out.hidden(r, j);
        }
        EXPECT_NEAR(sum / h, 0.0, 1e-3);
        EXPECT_NEAR(sum_sq / h, 1.0, 1e-2);
    }
}

TEST_F(BertModelTest, DifferentSequencesGiveDifferentOutputs)
{
    const auto out = model_.forward(
        encodeBatch({ "AAAAAAAA", "WWWWWWWW" }, 12));
    float diff = 0.0f;
    for (std::size_t j = 0; j < model_.config().hidden; ++j)
        diff = std::max(diff, std::fabs(out.pooled(0, j) -
                                        out.pooled(1, j)));
    EXPECT_GT(diff, 0.01f);
}

TEST_F(BertModelTest, PooledValuesInTanhRange)
{
    const auto out = model_.forward(encodeBatch({ "MEYQACD" }, 12));
    for (std::size_t j = 0; j < model_.config().hidden; ++j) {
        EXPECT_GE(out.pooled(0, j), -1.0f);
        EXPECT_LE(out.pooled(0, j), 1.0f);
    }
}

TEST_F(BertModelTest, Bf16CloseToFp32)
{
    const auto batch = encodeBatch({ "ACDEFGHIKLMNPQRSTVWY" }, 24);
    const auto fp32 = model_.forward(batch, NumericsMode::Fp32);
    const auto bf16 = model_.forward(batch, NumericsMode::Bf16);
    // LayerNorm keeps activations ~N(0,1); bf16 error accumulates but
    // must stay small relative to that scale.
    EXPECT_LT(Matrix::maxAbsDiff(fp32.hidden, bf16.hidden), 0.25f);
    EXPECT_GT(Matrix::maxAbsDiff(fp32.hidden, bf16.hidden), 0.0f);
}

TEST_F(BertModelTest, LutModeCloseToBf16)
{
    // The full accelerator numerics (LUT GELU/Exp) track the plain bf16
    // path closely — the paper's "preserve all 16 bits" requirement.
    const auto batch = encodeBatch({ "MEYQACDWKLMN" }, 16);
    const auto bf16 = model_.forward(batch, NumericsMode::Bf16);
    const auto lut = model_.forward(batch, NumericsMode::Bf16Lut);
    EXPECT_LT(Matrix::maxAbsDiff(bf16.hidden, lut.hidden), 0.25f);
}

TEST_F(BertModelTest, TraceMatchesSynthesizer)
{
    // The instrumented forward must emit exactly the op stream the
    // shape-level synthesizer predicts — this is what lets the perf
    // simulator run from synthetic traces.
    const auto batch = encodeBatch({ "MEYQACD", "ACDEFGH", "WYWYWYW" },
                                   16);
    OpTrace traced;
    model_.forward(batch, NumericsMode::Fp32, &traced);

    const BertShape shape = model_.config().shape(3, 16);
    const OpTrace synthetic = synthesizeBertTrace(shape);

    ASSERT_EQ(traced.size(), synthetic.size());
    for (std::size_t i = 0; i < traced.size(); ++i) {
        const Op &a = traced.at(i);
        const Op &b = synthetic.at(i);
        EXPECT_EQ(a.kind, b.kind) << "op " << i << ": " << a.describe()
                                  << " vs " << b.describe();
        EXPECT_EQ(a.sublayer, b.sublayer) << "op " << i;
        EXPECT_EQ(a.layer, b.layer) << "op " << i;
        EXPECT_EQ(a.batch, b.batch) << "op " << i;
        EXPECT_EQ(a.m, b.m) << "op " << i;
        EXPECT_EQ(a.k, b.k) << "op " << i;
        EXPECT_EQ(a.n, b.n) << "op " << i;
        EXPECT_EQ(a.broadcast, b.broadcast) << "op " << i;
    }
}

TEST_F(BertModelTest, FeatureExtractionIgnoresPadding)
{
    // Same protein, different padding -> identical mean-pooled features
    // is NOT expected (attention sees PAD), but the pooling itself must
    // exclude PAD rows: compare against manual mean over non-PAD rows.
    AminoTokenizer tok;
    const std::string protein = "MEYQAC";
    const auto tokens = tok.encode(protein, 12);
    const Matrix features = model_.extractFeatures({ tokens });
    const auto out = model_.forward({ tokens });

    const std::size_t h = model_.config().hidden;
    std::vector<double> manual(h, 0.0);
    std::size_t counted = 0;
    for (std::size_t t = 0; t < tokens.size(); ++t) {
        if (tokens[t] == kPadToken)
            continue;
        ++counted;
        for (std::size_t j = 0; j < h; ++j)
            manual[j] += out.hidden(t, j);
    }
    for (std::size_t j = 0; j < h; ++j)
        EXPECT_NEAR(features(0, j), manual[j] / counted, 1e-5);
}

TEST_F(BertModelTest, PaddingMaskMakesOutputsPaddingInvariant)
{
    // With PAD keys masked out of attention, the hidden states of the
    // real tokens must not depend on how much padding follows them.
    AminoTokenizer tok;
    const std::string protein = "MEYQACDWKL";
    const auto short_pad = tok.encode(protein, 14);
    const auto long_pad = tok.encode(protein, 24);
    const auto out_short = model_.forward({ short_pad });
    const auto out_long = model_.forward({ long_pad });

    const std::size_t h = model_.config().hidden;
    float worst = 0.0f;
    for (std::size_t t = 0; t < 12; ++t) // CLS + 10 residues + SEP
        for (std::size_t j = 0; j < h; ++j)
            worst = std::max(worst,
                             std::fabs(out_short.hidden(t, j) -
                                       out_long.hidden(t, j)));
    EXPECT_LT(worst, 1e-5f);
}

TEST_F(BertModelTest, PaddingMaskAppliesInAcceleratorNumerics)
{
    // The bf16+LUT path masks through the Exp LUT's saturate path;
    // padding invariance must hold there too (bf16 tolerance).
    AminoTokenizer tok;
    const std::string protein = "MEYQACDWKL";
    const auto a = model_.forward({ tok.encode(protein, 14) },
                                  NumericsMode::Bf16Lut);
    const auto b = model_.forward({ tok.encode(protein, 20) },
                                  NumericsMode::Bf16Lut);
    const std::size_t h = model_.config().hidden;
    float worst = 0.0f;
    for (std::size_t t = 0; t < 12; ++t)
        for (std::size_t j = 0; j < h; ++j)
            worst = std::max(worst, std::fabs(a.hidden(t, j) -
                                              b.hidden(t, j)));
    EXPECT_LT(worst, 0.05f);
}

TEST(BertModelDeathTest, RaggedBatchPanics)
{
    BertModel model(BertConfig::tiny(), 7);
    AminoTokenizer tok;
    const std::vector<std::vector<std::uint32_t>> ragged{
        tok.encode("ACD", 8), tok.encode("ACD", 10)
    };
    EXPECT_DEATH(model.forward(ragged), "ragged");
}

TEST(BertModelDeathTest, EmptyBatchPanics)
{
    BertModel model(BertConfig::tiny(), 7);
    EXPECT_DEATH(model.forward({}), "empty batch");
}

TEST(BertModelWeightCache, SetWeightsInvalidatesBf16Cache)
{
    const BertConfig config = BertConfig::tiny();
    BertModel a(config, 1);
    const BertModel b(config, 2);
    const auto batch = encodeBatch({ "MKVLAA" }, 12);

    const auto before = a.forward(batch, NumericsMode::Bf16);
    const std::uint64_t v0 = a.weightCacheVersion();

    a.setWeights(b.weights());
    EXPECT_GT(a.weightCacheVersion(), v0);

    // With the cache rebuilt, model a must now produce b's outputs
    // bit-for-bit in the cached-bf16 numerics path.
    const auto swapped = a.forward(batch, NumericsMode::Bf16);
    const auto want = b.forward(batch, NumericsMode::Bf16);
    EXPECT_EQ(Matrix::maxAbsDiff(swapped.hidden, want.hidden), 0.0f);
    EXPECT_EQ(Matrix::maxAbsDiff(swapped.pooled, want.pooled), 0.0f);
    EXPECT_NE(Matrix::maxAbsDiff(swapped.hidden, before.hidden), 0.0f);
}

TEST(BertModelPooled, ForwardBitIdenticalSerialVsPooled)
{
    ThreadPool pool(4);
    const BertModel model(BertConfig::tiny(), 11);
    const auto batch = encodeBatch({ "ACDEFGHIKL", "MNPQRSTVWY" }, 16);
    for (const NumericsMode mode :
         { NumericsMode::Fp32, NumericsMode::Bf16, NumericsMode::Bf16Lut }) {
        BertModel::Output serial;
        {
            ThreadPool::SerialGuard guard;
            serial = model.forward(batch, mode);
        }
        ThreadPool::setGlobalOverride(&pool);
        const auto pooled = model.forward(batch, mode);
        ThreadPool::setGlobalOverride(nullptr);
        EXPECT_EQ(Matrix::maxAbsDiff(serial.hidden, pooled.hidden), 0.0f)
            << "mode " << static_cast<int>(mode);
        EXPECT_EQ(Matrix::maxAbsDiff(serial.pooled, pooled.pooled), 0.0f)
            << "mode " << static_cast<int>(mode);
    }
}

} // namespace
} // namespace prose
