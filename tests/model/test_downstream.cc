/** @file Tests for the downstream task heads. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/stats.hh"
#include "model/downstream.hh"

namespace prose {
namespace {

TEST(RegressionHead, FitsLinearTarget)
{
    Rng rng(1);
    Matrix x(100, 4);
    x.fillGaussian(rng, 0.0f, 1.0f);
    std::vector<double> y(100);
    for (std::size_t i = 0; i < 100; ++i)
        y[i] = 3.0 * x(i, 0) - x(i, 2) + 0.5;

    RegressionHead head;
    EXPECT_FALSE(head.fitted());
    head.fit(x, y, 1e-4);
    EXPECT_TRUE(head.fitted());
    const auto predictions = head.predict(x);
    EXPECT_GT(pearson(predictions, y), 0.999);
}

TEST(RegressionHeadDeathTest, PredictBeforeFitPanics)
{
    RegressionHead head;
    Matrix x(2, 2, 1.0f);
    EXPECT_DEATH(head.predict(x), "before fit");
}

TEST(LogisticHead, SeparatesLinearlySeparableData)
{
    Rng rng(2);
    Matrix x(200, 3);
    std::vector<int> labels(200);
    for (std::size_t i = 0; i < 200; ++i) {
        const int label = static_cast<int>(i % 2);
        labels[i] = label;
        // Two well-separated Gaussian blobs.
        for (std::size_t j = 0; j < 3; ++j)
            x(i, j) = static_cast<float>(
                rng.gaussian(label ? 2.0 : -2.0, 0.5));
    }
    LogisticHead head;
    head.fit(x, labels);
    EXPECT_GT(head.accuracy(x, labels), 0.98);
}

TEST(LogisticHead, ProbabilitiesInUnitInterval)
{
    Rng rng(3);
    Matrix x(60, 2);
    std::vector<int> labels(60);
    for (std::size_t i = 0; i < 60; ++i) {
        labels[i] = static_cast<int>(rng.below(2));
        x(i, 0) = static_cast<float>(rng.gaussian(labels[i], 1.0));
        x(i, 1) = static_cast<float>(rng.gaussian());
    }
    LogisticHead head;
    head.fit(x, labels);
    for (double p : head.predictProbability(x)) {
        EXPECT_GT(p, 0.0);
        EXPECT_LT(p, 1.0);
    }
}

TEST(LogisticHead, NoisyOverlapGivesIntermediateAccuracy)
{
    Rng rng(4);
    Matrix x(400, 2);
    std::vector<int> labels(400);
    for (std::size_t i = 0; i < 400; ++i) {
        labels[i] = static_cast<int>(i % 2);
        // Overlapping blobs: Bayes accuracy ~69% at separation 1 sigma.
        x(i, 0) = static_cast<float>(
            rng.gaussian(labels[i] ? 0.5 : -0.5, 1.0));
        x(i, 1) = static_cast<float>(rng.gaussian());
    }
    LogisticHead head;
    head.fit(x, labels);
    const double acc = head.accuracy(x, labels);
    EXPECT_GT(acc, 0.6);
    EXPECT_LT(acc, 0.85);
}

TEST(LogisticHead, ConstantFeatureHandled)
{
    Rng rng(5);
    Matrix x(50, 2);
    std::vector<int> labels(50);
    for (std::size_t i = 0; i < 50; ++i) {
        labels[i] = static_cast<int>(i % 2);
        x(i, 0) = static_cast<float>(rng.gaussian(labels[i] * 4.0, 0.5));
        x(i, 1) = 7.0f; // constant column must not produce NaNs
    }
    LogisticHead head;
    head.fit(x, labels);
    EXPECT_GT(head.accuracy(x, labels), 0.95);
}

TEST(LogisticHeadDeathTest, BadLabelsPanic)
{
    Matrix x(4, 1, 1.0f);
    LogisticHead head;
    EXPECT_DEATH(head.fit(x, { 0, 1, 2, 0 }), "0/1");
}

TEST(LogisticHeadDeathTest, PredictBeforeFitPanics)
{
    LogisticHead head;
    Matrix x(1, 1, 0.0f);
    EXPECT_DEATH(head.predictProbability(x), "before fit");
}

} // namespace
} // namespace prose
