/** @file Tests for the amino-acid tokenizer. */

#include <gtest/gtest.h>

#include "model/tokenizer.hh"

namespace prose {
namespace {

TEST(Tokenizer, VocabCoversSpecialsAndAlphabet)
{
    AminoTokenizer tok;
    EXPECT_EQ(tok.vocabSize(), 31u); // 5 specials + 26 residue codes
    EXPECT_EQ(tok.alphabet().size(), 26u);
}

TEST(Tokenizer, EncodeWrapsWithClsSep)
{
    AminoTokenizer tok;
    const auto ids = tok.encode("MEYQ");
    ASSERT_EQ(ids.size(), 6u);
    EXPECT_EQ(ids.front(), kClsToken);
    EXPECT_EQ(ids.back(), kSepToken);
}

TEST(Tokenizer, ResidueIdsAreStableAndDistinct)
{
    AminoTokenizer tok;
    const auto a = tok.residueId('A');
    const auto c = tok.residueId('C');
    EXPECT_NE(a, c);
    EXPECT_GE(a, 5u);
    EXPECT_EQ(tok.residueId('A'), a); // stable
}

TEST(Tokenizer, LowercaseAccepted)
{
    AminoTokenizer tok;
    EXPECT_EQ(tok.residueId('m'), tok.residueId('M'));
}

TEST(Tokenizer, UnknownCharacterMapsToUnk)
{
    AminoTokenizer tok;
    EXPECT_EQ(tok.residueId('*'), kUnkToken);
    EXPECT_EQ(tok.residueId('1'), kUnkToken);
}

TEST(Tokenizer, PaddingToTargetLength)
{
    AminoTokenizer tok;
    const auto ids = tok.encode("ACD", 10);
    ASSERT_EQ(ids.size(), 10u);
    EXPECT_EQ(ids[0], kClsToken);
    EXPECT_EQ(ids[4], kSepToken);
    for (std::size_t i = 5; i < 10; ++i)
        EXPECT_EQ(ids[i], kPadToken);
}

TEST(Tokenizer, TruncationKeepsSep)
{
    AminoTokenizer tok;
    const auto ids = tok.encode("ACDEFGHIKL", 6);
    ASSERT_EQ(ids.size(), 6u);
    EXPECT_EQ(ids.front(), kClsToken);
    EXPECT_EQ(ids.back(), kSepToken);
}

TEST(Tokenizer, RoundTripDecode)
{
    AminoTokenizer tok;
    const std::string protein = "MEYQACDW";
    const auto ids = tok.encode(protein);
    const std::string decoded = tok.decode(ids);
    EXPECT_EQ(decoded, "." + protein + ".");
}

TEST(Tokenizer, IsResidue)
{
    AminoTokenizer tok;
    EXPECT_TRUE(tok.isResidue('W'));
    EXPECT_TRUE(tok.isResidue('X')); // extended code
    EXPECT_FALSE(tok.isResidue('#'));
}

TEST(Tokenizer, AllResidueIdsWithinVocab)
{
    AminoTokenizer tok;
    for (char residue : tok.alphabet())
        EXPECT_LT(tok.residueId(residue), tok.vocabSize());
}

// --- vocab-text loading (the fuzzed parser surface) -------------------

TEST(TokenizerVocab, CanonicalTextRoundTrips)
{
    const AminoTokenizer tok;
    const AminoTokenizer again =
        AminoTokenizer::fromVocabText(tok.vocabText());
    EXPECT_EQ(again.alphabet(), tok.alphabet());
    EXPECT_EQ(again.vocabSize(), tok.vocabSize());
}

TEST(TokenizerVocab, CustomAlphabetCommentsAndLowercase)
{
    const AminoTokenizer tok = AminoTokenizer::fromVocabText(
        "# reduced alphabet\n"
        "[PAD]\n[UNK]\n[CLS]\n[SEP]\n[MASK]\n"
        "\n"
        "m\nK\n");
    EXPECT_EQ(tok.alphabet(), "MK");
    EXPECT_EQ(tok.vocabSize(), 7u);
    EXPECT_EQ(tok.residueId('M'), 5u);
    EXPECT_EQ(tok.residueId('k'), 6u);
    EXPECT_EQ(tok.residueId('A'), kUnkToken);
}

TEST(TokenizerVocabDeathTest, MalformedVocabIsFatal)
{
    EXPECT_EXIT(AminoTokenizer::fromVocabText("[PAD]\n[UNK]\n[CLS]\n"),
                testing::ExitedWithCode(1),
                "ends before the five special tokens");
    EXPECT_EXIT(AminoTokenizer::fromVocabText(
                    "[UNK]\n[PAD]\n[CLS]\n[SEP]\n[MASK]\nA\n"),
                testing::ExitedWithCode(1), "expected special token");
    EXPECT_EXIT(AminoTokenizer::fromVocabText(
                    "[PAD]\n[UNK]\n[CLS]\n[SEP]\n[MASK]\nA\nA\n"),
                testing::ExitedWithCode(1), "duplicate residue");
    EXPECT_EXIT(AminoTokenizer::fromVocabText(
                    "[PAD]\n[UNK]\n[CLS]\n[SEP]\n[MASK]\nAB\n"),
                testing::ExitedWithCode(1), "single letters");
    EXPECT_EXIT(AminoTokenizer::fromVocabText(
                    "[PAD]\n[UNK]\n[CLS]\n[SEP]\n[MASK]\n"),
                testing::ExitedWithCode(1), "no residue entries");
}

} // namespace
} // namespace prose
