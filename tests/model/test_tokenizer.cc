/** @file Tests for the amino-acid tokenizer. */

#include <gtest/gtest.h>

#include "model/tokenizer.hh"

namespace prose {
namespace {

TEST(Tokenizer, VocabCoversSpecialsAndAlphabet)
{
    AminoTokenizer tok;
    EXPECT_EQ(tok.vocabSize(), 31u); // 5 specials + 26 residue codes
    EXPECT_EQ(tok.alphabet().size(), 26u);
}

TEST(Tokenizer, EncodeWrapsWithClsSep)
{
    AminoTokenizer tok;
    const auto ids = tok.encode("MEYQ");
    ASSERT_EQ(ids.size(), 6u);
    EXPECT_EQ(ids.front(), kClsToken);
    EXPECT_EQ(ids.back(), kSepToken);
}

TEST(Tokenizer, ResidueIdsAreStableAndDistinct)
{
    AminoTokenizer tok;
    const auto a = tok.residueId('A');
    const auto c = tok.residueId('C');
    EXPECT_NE(a, c);
    EXPECT_GE(a, 5u);
    EXPECT_EQ(tok.residueId('A'), a); // stable
}

TEST(Tokenizer, LowercaseAccepted)
{
    AminoTokenizer tok;
    EXPECT_EQ(tok.residueId('m'), tok.residueId('M'));
}

TEST(Tokenizer, UnknownCharacterMapsToUnk)
{
    AminoTokenizer tok;
    EXPECT_EQ(tok.residueId('*'), kUnkToken);
    EXPECT_EQ(tok.residueId('1'), kUnkToken);
}

TEST(Tokenizer, PaddingToTargetLength)
{
    AminoTokenizer tok;
    const auto ids = tok.encode("ACD", 10);
    ASSERT_EQ(ids.size(), 10u);
    EXPECT_EQ(ids[0], kClsToken);
    EXPECT_EQ(ids[4], kSepToken);
    for (std::size_t i = 5; i < 10; ++i)
        EXPECT_EQ(ids[i], kPadToken);
}

TEST(Tokenizer, TruncationKeepsSep)
{
    AminoTokenizer tok;
    const auto ids = tok.encode("ACDEFGHIKL", 6);
    ASSERT_EQ(ids.size(), 6u);
    EXPECT_EQ(ids.front(), kClsToken);
    EXPECT_EQ(ids.back(), kSepToken);
}

TEST(Tokenizer, RoundTripDecode)
{
    AminoTokenizer tok;
    const std::string protein = "MEYQACDW";
    const auto ids = tok.encode(protein);
    const std::string decoded = tok.decode(ids);
    EXPECT_EQ(decoded, "." + protein + ".");
}

TEST(Tokenizer, IsResidue)
{
    AminoTokenizer tok;
    EXPECT_TRUE(tok.isResidue('W'));
    EXPECT_TRUE(tok.isResidue('X')); // extended code
    EXPECT_FALSE(tok.isResidue('#'));
}

TEST(Tokenizer, AllResidueIdsWithinVocab)
{
    AminoTokenizer tok;
    for (char residue : tok.alphabet())
        EXPECT_LT(tok.residueId(residue), tok.vocabSize());
}

} // namespace
} // namespace prose
