/** @file Tests for the binary weights checkpoint format. */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "model/bert_model.hh"
#include "model/tokenizer.hh"
#include "model/weights_io.hh"

namespace prose {
namespace {

TEST(WeightsIo, RoundTripBitExact)
{
    const BertConfig config = BertConfig::tiny();
    const BertWeights original = BertWeights::initialize(config, 77);
    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeWeights(stream, config, original);
    const BertWeights loaded = readWeights(stream, config);

    EXPECT_EQ(Matrix::maxAbsDiff(loaded.tokenEmbedding,
                                 original.tokenEmbedding),
              0.0f);
    EXPECT_EQ(Matrix::maxAbsDiff(loaded.poolerW, original.poolerW),
              0.0f);
    ASSERT_EQ(loaded.layers.size(), original.layers.size());
    for (std::size_t l = 0; l < loaded.layers.size(); ++l) {
        EXPECT_EQ(Matrix::maxAbsDiff(loaded.layers[l].wq,
                                     original.layers[l].wq),
                  0.0f);
        EXPECT_EQ(Matrix::maxAbsDiff(loaded.layers[l].w2,
                                     original.layers[l].w2),
                  0.0f);
        EXPECT_EQ(loaded.layers[l].b1, original.layers[l].b1);
        EXPECT_EQ(loaded.layers[l].lnOutGamma,
                  original.layers[l].lnOutGamma);
    }
    EXPECT_EQ(loaded.parameterCount(), original.parameterCount());
}

TEST(WeightsIo, LoadedModelComputesIdenticalOutputs)
{
    const BertConfig config = BertConfig::tiny();
    const BertModel original(config, 99);
    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeWeights(stream, config, original.weights());
    const BertModel restored(config, readWeights(stream, config));

    AminoTokenizer tok;
    const auto batch = std::vector<std::vector<std::uint32_t>>{
        tok.encode("MEYQACDWKL", 16)
    };
    const Matrix a = original.forward(batch).hidden;
    const Matrix b = restored.forward(batch).hidden;
    EXPECT_EQ(Matrix::maxAbsDiff(a, b), 0.0f);
}

TEST(WeightsIo, FileRoundTrip)
{
    const BertConfig config = BertConfig::tiny();
    const BertWeights original = BertWeights::initialize(config, 5);
    const std::string path =
        testing::TempDir() + "/prose_weights_test.bin";
    writeWeightsFile(path, config, original);
    const BertWeights loaded = readWeightsFile(path, config);
    EXPECT_EQ(Matrix::maxAbsDiff(loaded.layers[0].wo,
                                 original.layers[0].wo),
              0.0f);
}

TEST(WeightsIoDeathTest, GarbageMagicIsFatal)
{
    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    stream << "NOPE garbage";
    EXPECT_EXIT(readWeights(stream, BertConfig::tiny()),
                testing::ExitedWithCode(1), "not a ProSE");
}

TEST(WeightsIoDeathTest, DimensionMismatchIsFatal)
{
    const BertConfig config = BertConfig::tiny();
    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeWeights(stream, config, BertWeights::initialize(config, 1));

    BertConfig other = config;
    other.hidden *= 2;
    other.intermediate *= 2;
    EXPECT_EXIT(readWeights(stream, other), testing::ExitedWithCode(1),
                "does not match");
}

TEST(WeightsIoDeathTest, TruncatedStreamIsFatal)
{
    const BertConfig config = BertConfig::tiny();
    std::stringstream stream(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeWeights(stream, config, BertWeights::initialize(config, 1));
    // Chop off the tail.
    std::string data = stream.str();
    data.resize(data.size() / 2);
    std::stringstream chopped(data, std::ios::in | std::ios::binary);
    EXPECT_EXIT(readWeights(chopped, config),
                testing::ExitedWithCode(1), "truncated");
}

TEST(WeightsIoDeathTest, TrailingBytesInFileAreFatal)
{
    const BertConfig config = BertConfig::tiny();
    const std::string path =
        testing::TempDir() + "/prose_weights_trailing.bin";
    writeWeightsFile(path, config, BertWeights::initialize(config, 1));
    {
        std::ofstream append(path, std::ios::binary | std::ios::app);
        append << "junk";
    }
    EXPECT_EXIT(readWeightsFile(path, config), testing::ExitedWithCode(1),
                "trailing bytes");
}

// readWeightsBuffer is the fuzzing entry point: same checks as the
// file loader, including the trailing-junk rejection.
TEST(WeightsIo, BufferRoundTripBitExact)
{
    const BertConfig config = BertConfig::tiny();
    const BertWeights original = BertWeights::initialize(config, 5);
    std::ostringstream out;
    writeWeights(out, config, original);
    const BertWeights loaded = readWeightsBuffer(out.str(), config);
    std::ostringstream again;
    writeWeights(again, config, loaded);
    EXPECT_EQ(again.str(), out.str());
}

TEST(WeightsIoDeathTest, BufferTrailingBytesAreFatal)
{
    const BertConfig config = BertConfig::tiny();
    std::ostringstream out;
    writeWeights(out, config, BertWeights::initialize(config, 5));
    EXPECT_EXIT(readWeightsBuffer(out.str() + "x", config),
                testing::ExitedWithCode(1), "trailing bytes");
}

TEST(WeightsIoDeathTest, BufferTruncationAndGarbageAreFatal)
{
    const BertConfig config = BertConfig::tiny();
    EXPECT_EXIT(readWeightsBuffer("", config),
                testing::ExitedWithCode(1), "not a ProSE weights");
    EXPECT_EXIT(readWeightsBuffer("PRSW", config),
                testing::ExitedWithCode(1), "truncated");
}

TEST(WeightsIoDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(readWeightsFile("/no/such/weights.bin",
                                BertConfig::tiny()),
                testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace prose
