/** @file Tests for the Figure 11/12 global-vs-local dataflow counts. */

#include <gtest/gtest.h>

#include "baseline/tpu_dataflow.hh"

namespace prose {
namespace {

TEST(TpuDataflow, MatMulProseNeedsNoIntermediateStorage)
{
    const DataflowTrip tpu = tpuMatMulTrip(256, 768, 768);
    const DataflowTrip prose = proseMatMulTrip(256, 768, 768, 64);
    EXPECT_GT(tpu.unifiedBufferBytes, 0u);
    EXPECT_EQ(prose.unifiedBufferBytes, 0u);
    EXPECT_GT(tpu.weightBytes, 0u);
    EXPECT_EQ(prose.weightBytes, 0u);
}

TEST(TpuDataflow, MatMulProseIsOneLocalTrip)
{
    const DataflowTrip prose = proseMatMulTrip(256, 768, 768, 64);
    EXPECT_EQ(prose.trips, 1u);
    // TPU accumulates across ceil(768/128) = 6 k-tiles through the UB.
    EXPECT_EQ(tpuMatMulTrip(256, 768, 768).trips, 6u);
}

TEST(TpuDataflow, PaperToyExampleStepCounts)
{
    // Figure 11's toy: 4x4 matrices on a 2x2 array. TPU: 8 ops for
    // step 1, repeating 4-8 thereafter; ProSE: 4 ops per step.
    const DataflowTrip prose = proseMatMulTrip(4, 4, 4, 2);
    EXPECT_EQ(prose.steps, 4u * 4u); // 4 output tiles x 4 ops
    const DataflowTrip tpu = tpuMatMulTrip(4, 4, 4, 2);
    EXPECT_GT(tpu.steps, prose.steps);
}

TEST(TpuDataflow, MulAddTripCounts)
{
    // Figure 12: TPU needs two-to-three global trips; ProSE one local.
    const DataflowTrip tpu = tpuMulAddTrip(512, 768);
    const DataflowTrip prose = proseMulAddTrip(512, 768, 64);
    EXPECT_EQ(tpu.trips, 3u);
    EXPECT_EQ(prose.trips, 1u);
    EXPECT_GT(tpu.unifiedBufferBytes, 0u);
    EXPECT_EQ(prose.unifiedBufferBytes, 0u);
}

TEST(TpuDataflow, MulAddHostTrafficComparable)
{
    // Both stream A, B in and C out; the difference is the UB churn.
    const DataflowTrip tpu = tpuMulAddTrip(512, 768);
    const DataflowTrip prose = proseMulAddTrip(512, 768, 64);
    EXPECT_EQ(prose.hostStreamBytes, 3u * 512 * 768 * 2);
    EXPECT_EQ(tpu.hostStreamBytes, prose.hostStreamBytes);
}

TEST(TpuDataflow, MovementEnergyFavorsProse)
{
    // The Figure 19 story: eliminating the Unified Buffer removes the
    // dominant data-movement energy for elementwise sequences.
    const DataflowTrip tpu = tpuMulAddTrip(65536, 768);
    const DataflowTrip prose = proseMulAddTrip(65536, 768, 64);
    EXPECT_GT(tpu.movementEnergyJoules(),
              1.5 * prose.movementEnergyJoules());
}

TEST(TpuDataflow, PartialBufferCutsProseTraffic)
{
    const DataflowTrip with_buffer =
        proseMatMulTrip(65536, 768, 768, 64, true);
    const DataflowTrip without =
        proseMatMulTrip(65536, 768, 768, 64, false);
    // B restreams once per tile row (1024 rows at m=65536) without the
    // buffer: ~7x the stream-once traffic at these shapes.
    EXPECT_GT(without.hostStreamBytes, 5 * with_buffer.hostStreamBytes);
}

TEST(TpuDataflow, UbTrafficGrowsWithKTiles)
{
    // More k accumulation passes = more partial round trips.
    const DataflowTrip shallow = tpuMatMulTrip(512, 128, 512);
    const DataflowTrip deep = tpuMatMulTrip(512, 1024, 512);
    EXPECT_GT(deep.unifiedBufferBytes, 4 * shallow.unifiedBufferBytes);
}

TEST(TpuDataflowDeathTest, EmptyShapesPanic)
{
    EXPECT_DEATH(tpuMatMulTrip(0, 4, 4), "empty");
    EXPECT_DEATH(proseMulAddTrip(4, 0, 2), "empty");
}

} // namespace
} // namespace prose
