/** @file Tests for the cross-platform comparison harness. */

#include <gtest/gtest.h>

#include "baseline/comparison.hh"

namespace prose {
namespace {

ComparisonReport
compare(std::uint64_t batch = 8, std::uint64_t len = 256)
{
    return comparePlatforms(ProseConfig::bestPerf(),
                            BertShape{ 12, 768, 12, 3072, batch, len });
}

TEST(Comparison, HasAllThreeBaselines)
{
    const ComparisonReport report = compare();
    ASSERT_EQ(report.baselines.size(), 3u);
    EXPECT_NO_FATAL_FAILURE(report.baseline("A100"));
    EXPECT_NO_FATAL_FAILURE(report.baseline("TPUv2"));
    EXPECT_NO_FATAL_FAILURE(report.baseline("TPUv3"));
}

TEST(Comparison, ProseRowIsSelfRelative)
{
    const ComparisonReport report = compare();
    EXPECT_DOUBLE_EQ(report.prose.proseSpeedup, 1.0);
    EXPECT_DOUBLE_EQ(report.prose.proseEfficiencyGain, 1.0);
    EXPECT_GT(report.prose.watts, 10.0);
    EXPECT_LT(report.prose.watts, 80.0);
}

TEST(Comparison, RatiosInternallyConsistent)
{
    const ComparisonReport report = compare();
    for (const auto &row : report.baselines) {
        EXPECT_NEAR(row.proseSpeedup,
                    row.seconds / report.prose.seconds, 1e-9);
        EXPECT_NEAR(row.proseEfficiencyGain,
                    report.prose.efficiency / row.efficiency,
                    row.proseEfficiencyGain * 1e-9);
        EXPECT_NEAR(row.inferencesPerSecond * row.seconds,
                    static_cast<double>(report.shape.batch), 1e-6);
    }
}

TEST(Comparison, ProseWinsAtProteinLengths)
{
    const ComparisonReport report = compare(8, 512);
    for (const auto &row : report.baselines) {
        EXPECT_GT(row.proseSpeedup, 1.0) << row.name;
        EXPECT_GT(row.proseEfficiencyGain, 10.0) << row.name;
    }
}

TEST(Comparison, TpuV2IsTheWorstBaseline)
{
    const ComparisonReport report = compare(8, 512);
    EXPECT_GT(report.baseline("TPUv2").proseEfficiencyGain,
              report.baseline("TPUv3").proseEfficiencyGain);
    EXPECT_GT(report.baseline("TPUv3").proseEfficiencyGain,
              report.baseline("A100").proseEfficiencyGain);
}

TEST(ComparisonDeathTest, UnknownBaselineIsFatal)
{
    const ComparisonReport report = compare();
    EXPECT_EXIT(report.baseline("H100"), testing::ExitedWithCode(1),
                "no baseline");
}

} // namespace
} // namespace prose
