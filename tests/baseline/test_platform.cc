/** @file Tests for the A100/TPU baseline roofline models. */

#include <gtest/gtest.h>

#include "baseline/platform.hh"
#include "trace/dataflow.hh"

namespace prose {
namespace {

OpTrace
paperTrace(std::uint64_t batch, std::uint64_t len)
{
    return synthesizeBertTrace(BertShape{ 12, 768, 12, 3072, batch, len });
}

TEST(Platform, NamesAndPower)
{
    EXPECT_EQ(makeA100()->name(), "A100");
    EXPECT_EQ(makeTpuV2()->name(), "TPUv2");
    EXPECT_EQ(makeTpuV3()->name(), "TPUv3");
    // Paper power figures: A100 measured 395 W; TPUv2 = 4 x 280 W.
    EXPECT_DOUBLE_EQ(makeA100()->watts(), 395.0);
    EXPECT_DOUBLE_EQ(makeTpuV2()->watts(), 1120.0);
    EXPECT_GT(makeTpuV3()->watts(), makeTpuV2()->watts());
}

TEST(Platform, TraceCostPositiveAndDecomposed)
{
    const auto a100 = makeA100();
    const PlatformResult result = a100->costTrace(paperTrace(8, 512));
    EXPECT_GT(result.totalSeconds, 0.0);
    EXPECT_GT(result.acceleratedSeconds, 0.0);
    EXPECT_LT(result.acceleratedSeconds, result.totalSeconds);
    double sum = 0.0;
    for (const auto &[category, seconds] : result.categorySeconds)
        sum += seconds;
    EXPECT_NEAR(sum, result.totalSeconds, 1e-9);
}

TEST(Platform, MatmulShareFallsWithLength)
{
    // Figure 3: matmul % decreases as input length grows while softmax
    // and elementwise shares grow.
    const auto a100 = makeA100();
    const auto short_frac =
        a100->costTrace(paperTrace(64, 64)).categoryFractions();
    const auto long_frac =
        a100->costTrace(paperTrace(4, 1024)).categoryFractions();
    EXPECT_GT(short_frac.at(OpCategory::MatMul),
              long_frac.at(OpCategory::MatMul));
    EXPECT_LT(short_frac.at(OpCategory::Softmax),
              long_frac.at(OpCategory::Softmax));
}

TEST(Platform, MatmulsDominateAtAllLengths)
{
    // Figure 3: matmul + BMM stay 35-52% of runtime across lengths.
    const auto a100 = makeA100();
    for (std::uint64_t len : { 64u, 256u, 512u, 1024u }) {
        const auto fractions =
            a100->costTrace(paperTrace(4, len)).categoryFractions();
        const double mm = fractions.at(OpCategory::MatMul) +
                          fractions.at(OpCategory::BatchedMatMul);
        EXPECT_GT(mm, 0.25) << "len=" << len;
        EXPECT_LT(mm, 0.70) << "len=" << len;
    }
}

TEST(Platform, EfficiencyCollapsesWithLength)
{
    // Figure 1: inferences/s/W falls steeply as length grows.
    const auto a100 = makeA100();
    auto eff = [&](std::uint64_t len, std::uint64_t batch) {
        const PlatformResult r = a100->costTrace(paperTrace(batch, len));
        const double inf_per_s = batch / r.totalSeconds;
        return inf_per_s / a100->watts();
    };
    EXPECT_GT(eff(32, 64), 10.0 * eff(512, 8));
}

TEST(Platform, A100AroundOneInferencePerSecondPerWattAt512)
{
    // Figure 1 footnote: at 512 tokens the A100 sits near/below
    // 1 inf/s/W.
    const auto a100 = makeA100();
    const PlatformResult r = a100->costTrace(paperTrace(16, 512));
    const double eff = (16.0 / r.totalSeconds) / a100->watts();
    EXPECT_LT(eff, 1.0);
    EXPECT_GT(eff, 0.05);
}

TEST(Platform, TpuV3FasterThanTpuV2)
{
    const OpTrace trace = paperTrace(8, 512);
    EXPECT_LT(makeTpuV3()->costTrace(trace).totalSeconds,
              makeTpuV2()->costTrace(trace).totalSeconds);
}

TEST(Platform, TpusPayHeavyGeluPenalty)
{
    // No GELU unit on the TPU: a 10+ MulAdd approximation chain
    // (Section 3.2) makes GELU's share much larger than on the GPU.
    const OpTrace trace = paperTrace(8, 512);
    const auto gpu = makeA100()->costTrace(trace).categoryFractions();
    const auto tpu = makeTpuV3()->costTrace(trace).categoryFractions();
    EXPECT_GT(tpu.at(OpCategory::Gelu), 2.0 * gpu.at(OpCategory::Gelu));
}

TEST(Platform, OpSecondsMonotoneInSize)
{
    const auto a100 = makeA100();
    Op small;
    small.kind = OpKind::MatMul;
    small.m = 128;
    small.k = 768;
    small.n = 768;
    Op big = small;
    big.m = 1024;
    EXPECT_GT(a100->opSeconds(big), a100->opSeconds(small));
}

TEST(Platform, OverheadDominatesTinyOps)
{
    const auto a100 = makeA100();
    Op tiny;
    tiny.kind = OpKind::MulAdd;
    tiny.m = 1;
    tiny.n = 1;
    EXPECT_GE(a100->opSeconds(tiny), 8e-6);
}

} // namespace
} // namespace prose
