/** @file Tests for the configuration-level power/area/energy model. */

#include <gtest/gtest.h>

#include "power/power_model.hh"

namespace prose {
namespace {

std::vector<ArrayGroupSpec>
bestPerfGroups()
{
    return { { ArrayGeometry::mType(64), 2 },
             { ArrayGeometry::gType(16), 10 },
             { ArrayGeometry::eType(16), 22 } };
}

TEST(PowerModel, BestPerfArrayPowerNearTable4)
{
    // Table 4 lists BestPerf at 12994 mW; summing Table 2 rows (no
    // input buffers) gives 13.38 W — within a few percent of the
    // paper's figure (which nets out some shared infrastructure).
    const PowerModel model;
    const double watts = model.arrayPowerWatts(bestPerfGroups(), false);
    EXPECT_NEAR(watts, 12.994, 0.6);
}

TEST(PowerModel, BestPerfAreaNearTable4)
{
    // Table 4: 12.75 mm^2 (with the input buffers the DSE selects).
    const PowerModel model;
    const double mm2 = model.arrayAreaMm2(bestPerfGroups(), true);
    EXPECT_NEAR(mm2, 12.75, 0.7);
}

TEST(PowerModel, BufferedConfigCostsMore)
{
    const PowerModel model;
    EXPECT_GT(model.arrayPowerWatts(bestPerfGroups(), true),
              model.arrayPowerWatts(bestPerfGroups(), false));
    EXPECT_GT(model.arrayAreaMm2(bestPerfGroups(), true),
              model.arrayAreaMm2(bestPerfGroups(), false));
}

TEST(PowerModel, SystemPowerAddsDutyCycledHost)
{
    const PowerModel model;
    const double arrays = model.arrayPowerWatts(bestPerfGroups(), false);
    // The paper's measured operating point: CPU busy 21.4% of the time
    // at 50.21 W plus 6.23 W DRAM.
    const double system =
        model.systemPowerWatts(bestPerfGroups(), false, 0.214);
    EXPECT_NEAR(system - arrays, 0.214 * 50.21 + 6.23, 1e-9);
}

TEST(PowerModel, IdleHostStillBurnsDram)
{
    const PowerModel model;
    const double system =
        model.systemPowerWatts(bestPerfGroups(), false, 0.0);
    EXPECT_NEAR(system,
                model.arrayPowerWatts(bestPerfGroups(), false) + 6.23,
                1e-9);
}

TEST(PowerModel, EnergyIsPowerTimesTime)
{
    const PowerModel model;
    const double watts =
        model.systemPowerWatts(bestPerfGroups(), false, 0.2);
    EXPECT_DOUBLE_EQ(
        model.energyJoules(bestPerfGroups(), false, 0.2, 3.0),
        watts * 3.0);
}

TEST(PowerModel, EfficiencyMetric)
{
    EXPECT_DOUBLE_EQ(PowerModel::efficiency(500.0, 50.0), 10.0);
}

TEST(PowerModel, WholeProseIsTinyFractionOfA100)
{
    // The paper's headline: all of ProSE is a few percent of an A100's
    // power and area budget.
    const PowerModel model;
    EXPECT_LT(model.arrayPowerWatts(bestPerfGroups(), true) /
                  kA100PowerWatts,
              0.05);
    EXPECT_LT(model.arrayAreaMm2(bestPerfGroups(), true) / kA100AreaMm2,
              0.02);
}

TEST(PowerModelDeathTest, BadDutyPanics)
{
    const PowerModel model;
    EXPECT_DEATH(model.systemPowerWatts(bestPerfGroups(), false, 1.5),
                 "duty");
}

} // namespace
} // namespace prose
