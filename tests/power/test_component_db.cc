/** @file Tests for the Table 2 component library. */

#include <gtest/gtest.h>

#include "power/component_db.hh"

namespace prose {
namespace {

TEST(ComponentDb, HasAllTenTable2Rows)
{
    EXPECT_EQ(ComponentDb::instance().components().size(), 10u);
}

TEST(ComponentDb, LookupByGeometry)
{
    const ComponentDb &db = ComponentDb::instance();
    const ComponentSpec &m64 = db.lookup(ArrayGeometry::mType(64));
    EXPECT_DOUBLE_EQ(m64.frequencyMhz, 1626.1);
    EXPECT_DOUBLE_EQ(m64.powerMw, 2552.1);
    EXPECT_DOUBLE_EQ(m64.areaInBufMm2, 2.908);

    const ComponentSpec &e16 = db.lookup(ArrayGeometry::eType(16));
    EXPECT_DOUBLE_EQ(e16.frequencyMhz, 925.2);
    EXPECT_DOUBLE_EQ(e16.powerInBufMw, 279.5);

    const ComponentSpec &g32 = db.lookup(ArrayGeometry::gType(32));
    EXPECT_DOUBLE_EQ(g32.powerMw, 808.4);
}

TEST(ComponentDb, PlainArraysAreFasterThanLutArrays)
{
    // Table 2: the special-function LUT sets the critical path, nearly
    // halving the clock.
    const ComponentDb &db = ComponentDb::instance();
    for (std::uint32_t dim : { 16u, 32u, 64u }) {
        const double plain = db.lookup(dim, false, false).frequencyMhz;
        const double gelu = db.lookup(dim, true, false).frequencyMhz;
        const double exp = db.lookup(dim, false, true).frequencyMhz;
        EXPECT_GT(plain, 1.5 * gelu);
        EXPECT_GT(plain, 1.5 * exp);
    }
}

TEST(ComponentDb, MatmulCapableArraysMeetDoublePumpTarget)
{
    // The slowest matmul-capable array (1626.1 MHz) supports the
    // 1.6 GHz double-pumped clock; the slowest SIMD/LUT array
    // (858.1 MHz) supports 800 MHz.
    const ComponentDb &db = ComponentDb::instance();
    for (const auto &spec : db.components()) {
        if (!spec.hasGelu && !spec.hasExp)
            EXPECT_GE(spec.frequencyMhz, 1600.0);
        else
            EXPECT_GE(spec.frequencyMhz, 800.0);
    }
}

TEST(ComponentDb, InputBufferAddsPowerAndArea)
{
    for (const auto &spec : ComponentDb::instance().components()) {
        EXPECT_GT(spec.powerInBufMw, spec.powerMw);
        EXPECT_GT(spec.areaInBufMm2, spec.areaMm2);
    }
}

TEST(ComponentDb, PercentA100MatchesPaperRounding)
{
    // 16x16 +InBuf: 268.6 mW of 400 W ~ 0.07%; 0.213 mm^2 of 826 ~
    // 0.03%.
    const ComponentSpec &spec =
        ComponentDb::instance().lookup(16, false, false);
    EXPECT_NEAR(spec.percentA100Power(true), 0.067, 0.005);
    EXPECT_NEAR(spec.percentA100Area(true), 0.026, 0.005);
}

TEST(ComponentDb, PowerAndAreaHelpers)
{
    const ComponentDb &db = ComponentDb::instance();
    EXPECT_DOUBLE_EQ(db.arrayPowerWatts(ArrayGeometry::mType(64), false),
                     2.5521);
    EXPECT_DOUBLE_EQ(db.arrayAreaMm2(ArrayGeometry::gType(32), true),
                     0.779);
}

TEST(ComponentDb, PowerScalesSuperlinearlyWithDim)
{
    // 64x64 has 16x the PEs of 16x16 and roughly 10x the power —
    // sublinear per-PE cost at larger arrays (shared control).
    const ComponentDb &db = ComponentDb::instance();
    const double p16 = db.lookup(16, false, false).powerMw;
    const double p64 = db.lookup(64, false, false).powerMw;
    EXPECT_GT(p64, 8.0 * p16);
    EXPECT_LT(p64, 16.0 * p16);
}

TEST(ComponentDbDeathTest, UnknownComponentIsFatal)
{
    EXPECT_EXIT(ComponentDb::instance().lookup(128, false, false),
                testing::ExitedWithCode(1), "no Table 2 component");
}

} // namespace
} // namespace prose
