/** @file Integration tests: real model forward -> trace -> dataflows ->
 *  cycle-stepped execution vs the fast performance model. */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/perf_sim.hh"
#include "model/bert_model.hh"
#include "model/tokenizer.hh"
#include "protein/fasta.hh"
#include "systolic/systolic_array.hh"
#include "systolic/timing_model.hh"

namespace prose {
namespace {

TEST(EndToEnd, RealForwardDrivesThePerfSim)
{
    // Run actual math through the tiny model, capture the trace, and
    // feed the exact same trace through the DES — the full Figure 15
    // pipeline minus Chisel.
    const BertConfig config = BertConfig::tiny();
    const BertModel model(config, 42);
    AminoTokenizer tok;
    Rng rng(9);
    std::vector<std::vector<std::uint32_t>> batch;
    for (int i = 0; i < 4; ++i)
        batch.push_back(tok.encode(randomProtein(rng, 30), 32));

    OpTrace trace;
    model.forward(batch, NumericsMode::Bf16, &trace);
    ASSERT_FALSE(trace.empty());

    const auto tasks = DataflowBuilder{}.build(trace);
    PerfSim sim(ProseConfig::bestPerf());
    const SimReport report = sim.runTasks({ tasks });
    EXPECT_GT(report.makespan, 0.0);
    EXPECT_NEAR(report.totalFlops, trace.totalFlops(), 1.0);
}

TEST(EndToEnd, FusedDataflow1OnTheCycleSteppedArray)
{
    // Execute a full (tiled) Dataflow 1 on the register-accurate array
    // and compare against the reference math with hardware numerics:
    // C = (A x B) + bias, intermediates never leaving the accumulators.
    Rng rng(3);
    const std::size_t m = 20, k = 33, n = 14, s = 8;
    Matrix a(m, k), b(k, n), bias_row(1, n);
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    bias_row.fillGaussian(rng, 0.0f, 1.0f);

    SystolicArray array(ArrayGeometry::mType(s));
    Matrix result(m, n);
    for (std::size_t tm = 0; tm < m; tm += s) {
        const std::size_t rows = std::min(s, m - tm);
        for (std::size_t tn = 0; tn < n; tn += s) {
            const std::size_t cols = std::min(s, n - tn);
            // One output tile: full-k accumulation, then fused MulAdd.
            Matrix a_tile(rows, k), b_tile(k, cols);
            for (std::size_t i = 0; i < rows; ++i)
                for (std::size_t j = 0; j < k; ++j)
                    a_tile(i, j) = a(tm + i, j);
            for (std::size_t i = 0; i < k; ++i)
                for (std::size_t j = 0; j < cols; ++j)
                    b_tile(i, j) = b(i, tn + j);
            array.matmulTile(a_tile, b_tile);

            Matrix bias_tile(rows, cols);
            for (std::size_t i = 0; i < rows; ++i)
                for (std::size_t j = 0; j < cols; ++j)
                    bias_tile(i, j) = bias_row(0, tn + j);
            array.simdScalar(SimdOp::MulScalar, 1.0f);
            array.simdVector(SimdOp::AddVector, bias_tile);

            Matrix out;
            array.drain(out);
            for (std::size_t i = 0; i < rows; ++i)
                for (std::size_t j = 0; j < cols; ++j)
                    result(tm + i, tn + j) = out(i, j);
        }
    }

    // Reference with the same numerics.
    const Matrix mm = matmulBf16(a, b);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const float scaled = quantizeBf16(
                truncateBf16(mm(i, j)) * quantizeBf16(1.0f));
            const float expected = quantizeBf16(
                truncateBf16(scaled) + quantizeBf16(bias_row(0, j)));
            EXPECT_EQ(result(i, j), truncateBf16(expected))
                << i << "," << j;
        }
    }
}

TEST(EndToEnd, TimingModelPredictsCycleSteppedTotals)
{
    // Sum of per-tile cycle counts from the closed form equals the
    // cycle-stepped array's counters over a whole tiled matmul.
    Rng rng(4);
    const std::size_t m = 23, k = 17, n = 19, s = 8;
    Matrix a(m, k), b(k, n);
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);

    SystolicArray array(ArrayGeometry::mType(s));
    for (std::size_t tm = 0; tm < m; tm += s) {
        const std::size_t rows = std::min(s, m - tm);
        for (std::size_t tn = 0; tn < n; tn += s) {
            const std::size_t cols = std::min(s, n - tn);
            Matrix a_tile(rows, k), b_tile(k, cols);
            for (std::size_t i = 0; i < rows; ++i)
                for (std::size_t j = 0; j < k; ++j)
                    a_tile(i, j) = a(tm + i, j);
            for (std::size_t i = 0; i < k; ++i)
                for (std::size_t j = 0; j < cols; ++j)
                    b_tile(i, j) = b(i, tn + j);
            array.matmulTile(a_tile, b_tile);
            array.clearAccumulators();
        }
    }
    EXPECT_EQ(array.matmulCycles(),
              TimingModel::matmulCycles(m, k, n, s));
}

TEST(EndToEnd, AcceleratorNumericsPreserveModelAgreement)
{
    // Whole-model check: Bf16Lut (full accelerator numerics) hidden
    // states correlate overwhelmingly with fp32 hidden states.
    const BertModel model(BertConfig::tiny(), 11);
    AminoTokenizer tok;
    const auto batch = std::vector<std::vector<std::uint32_t>>{
        tok.encode("MEYQACDWKLMNPQRS", 20)
    };
    const Matrix fp32 = model.forward(batch, NumericsMode::Fp32).hidden;
    const Matrix lut =
        model.forward(batch, NumericsMode::Bf16Lut).hidden;

    double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
    for (std::size_t i = 0; i < fp32.rows(); ++i) {
        for (std::size_t j = 0; j < fp32.cols(); ++j) {
            dot += static_cast<double>(fp32(i, j)) * lut(i, j);
            norm_a += static_cast<double>(fp32(i, j)) * fp32(i, j);
            norm_b += static_cast<double>(lut(i, j)) * lut(i, j);
        }
    }
    const double cosine = dot / std::sqrt(norm_a * norm_b);
    EXPECT_GT(cosine, 0.99);
}

} // namespace
} // namespace prose
