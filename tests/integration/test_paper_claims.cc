/** @file Paper-shape assertions: the qualitative claims of the
 *  evaluation section must hold in our reproduction. */

#include <gtest/gtest.h>

#include "accel/perf_sim.hh"
#include "baseline/platform.hh"
#include "power/power_model.hh"

namespace prose {
namespace {

/** The paper's operating point scaled to a test-affordable batch. */
BertShape
operatingPoint(std::uint64_t batch = 16)
{
    return BertShape{ 12, 768, 12, 3072, batch, 512 };
}

double
proseSeconds(const ProseConfig &config, const BertShape &shape)
{
    return PerfSim(config).run(shape).makespan;
}

TEST(PaperClaims, ProseBeatsA100AtTheOperatingPoint)
{
    // Figure 18: BestPerf achieves 3.9-4.7x over one A100 with NVLink
    // 2.0; we assert the shape (a healthy >2x win) rather than the
    // absolute calibration.
    const BertShape shape = operatingPoint();
    const double prose = proseSeconds(ProseConfig::bestPerf(), shape);
    const double a100 =
        makeA100()->costTrace(synthesizeBertTrace(shape))
            .acceleratedSeconds;
    EXPECT_GT(a100 / prose, 2.0);
    EXPECT_LT(a100 / prose, 12.0);
}

TEST(PaperClaims, ProseBeatsTpuV3)
{
    // Figure 18 right: 3.1-3.8x over TPUv3 at NVLink 2.0 bandwidths.
    const BertShape shape = operatingPoint();
    const double prose = proseSeconds(ProseConfig::bestPerf(), shape);
    const double tpu =
        makeTpuV3()->costTrace(synthesizeBertTrace(shape))
            .acceleratedSeconds;
    EXPECT_GT(tpu / prose, 1.5);
    EXPECT_LT(tpu / prose, 12.0);
}

TEST(PaperClaims, PowerEfficiencyGapIsOrdersOfMagnitude)
{
    // Figure 19 / Figure 1: one to two orders of magnitude better
    // inferences/s/W than the A100, two-plus over TPUs.
    const BertShape shape = operatingPoint();
    const SimReport report = PerfSim(ProseConfig::bestPerf()).run(shape);
    const PowerModel power;
    const double prose_watts = power.systemPowerWatts(
        ProseConfig::bestPerf().groups, true, report.cpuDuty);
    const double prose_eff =
        report.inferencesPerSecond() / prose_watts;

    const auto a100 = makeA100();
    const PlatformResult a100_result =
        a100->costTrace(synthesizeBertTrace(shape));
    const double a100_eff =
        (shape.batch / a100_result.acceleratedSeconds) / a100->watts();

    const auto tpu3 = makeTpuV3();
    const PlatformResult tpu_result =
        tpu3->costTrace(synthesizeBertTrace(shape));
    const double tpu_eff =
        (shape.batch / tpu_result.acceleratedSeconds) / tpu3->watts();

    EXPECT_GT(prose_eff / a100_eff, 10.0);  // paper: up to 48x
    EXPECT_GT(prose_eff / tpu_eff, 50.0);   // paper: up to 173x
}

TEST(PaperClaims, HeterogeneousAdvantageGrowsWithLength)
{
    // Figure 4: heterogeneous and homogeneous are close at short
    // lengths; the gap opens past ~300 tokens.
    auto ratio_at = [&](std::uint64_t len) {
        const BertShape shape{ 12, 768, 12, 3072, 8, len };
        const double hetero =
            proseSeconds(ProseConfig::bestPerf(), shape);
        const double homo =
            proseSeconds(ProseConfig::fourBy64Homogeneous(), shape);
        return homo / hetero;
    };
    const double short_gap = ratio_at(64);
    const double long_gap = ratio_at(1024);
    EXPECT_GT(long_gap, short_gap);
    EXPECT_GT(long_gap, 1.1);
}

TEST(PaperClaims, RuntimeGrowsSuperlinearlyWithLength)
{
    // Section 2.1: compute grows quadratically in length for the
    // attention ops; end-to-end runtime at fixed token *budget* still
    // rises with length.
    const std::uint64_t tokens = 8 * 512;
    auto seconds_at = [&](std::uint64_t len) {
        const BertShape shape{ 12, 768, 12, 3072, tokens / len, len };
        return proseSeconds(ProseConfig::bestPerf(), shape);
    };
    EXPECT_GT(seconds_at(2048), seconds_at(256) * 1.3);
}

TEST(PaperClaims, BandwidthSweepPlateaus)
{
    // Figure 20: performance rises with bandwidth then saturates as
    // the design becomes compute-bound.
    const BertShape shape = operatingPoint(8);
    std::vector<double> throughput;
    for (double gbps : { 45.0, 135.0, 270.0, 540.0, 100000.0 }) {
        ProseConfig config = ProseConfig::bestPerf();
        config.link = LinkSpec::custom(gbps);
        throughput.push_back(1.0 / proseSeconds(config, shape));
    }
    // Monotone non-decreasing...
    for (std::size_t i = 1; i < throughput.size(); ++i)
        EXPECT_GE(throughput[i], throughput[i - 1] * 0.999);
    // ...with early gains large and late gains small (saturation).
    const double early_gain = throughput[2] / throughput[0];
    const double late_gain = throughput[4] / throughput[3];
    EXPECT_GT(early_gain, 1.3);
    EXPECT_LT(late_gain, 1.3);
}

TEST(PaperClaims, HomogeneousStarvedOfSimdThroughput)
{
    // Section 4.3: homogeneous designs lack SIMD ALUs / special
    // function throughput (fewer, larger arrays -> fewer SIMD columns),
    // so even infinite bandwidth does not save them.
    BertShape shape = operatingPoint(8);
    shape.seqLen = 1024; // past the Figure 4 crossover
    ProseConfig homo = ProseConfig::homogeneous();
    homo.link = LinkSpec::infinite();
    ProseConfig hetero = ProseConfig::bestPerf();
    hetero.link = LinkSpec::infinite();
    EXPECT_LT(proseSeconds(hetero, shape), proseSeconds(homo, shape));
}

TEST(PaperClaims, ThreadScalingShapeOfFigure8)
{
    // 1 -> 2 -> 4 -> 32 threads: throughput improves, with diminishing
    // returns as contention rises.
    const BertShape shape = operatingPoint(32);
    std::vector<double> makespans;
    for (std::uint32_t threads : { 1u, 2u, 4u, 32u }) {
        ProseConfig config = ProseConfig::bestPerf();
        config.threads = threads;
        makespans.push_back(proseSeconds(config, shape));
    }
    EXPECT_LT(makespans[1], makespans[0]);
    EXPECT_LT(makespans[2], makespans[1]);
    EXPECT_LE(makespans[3], makespans[2] * 1.001);
}

TEST(PaperClaims, ProseArraysAreTinyNextToA100)
{
    // Table 2's rightmost columns: each array is well under 1% of an
    // A100's power and area; even a full instance stays in single
    // percents.
    const PowerModel power;
    const double watts =
        power.arrayPowerWatts(ProseConfig::bestPerf().groups, true);
    const double mm2 =
        power.arrayAreaMm2(ProseConfig::bestPerf().groups, true);
    EXPECT_LT(watts / kA100PowerWatts, 0.05);
    EXPECT_LT(mm2 / kA100AreaMm2, 0.02);
}

} // namespace
} // namespace prose
