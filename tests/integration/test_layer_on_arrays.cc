/** @file The strongest functional check in the repo: one full Protein
 *  BERT encoder layer executed ENTIRELY on the cycle-stepped systolic
 *  arrays (Q/K/V/output projections as Dataflow 1, attention as
 *  Dataflow 3, the feed-forward as Dataflow 2 + Dataflow 1) with host
 *  LayerNorms, compared against the model's own layer-wise forward. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "model/bert_model.hh"
#include "systolic/functional_sim.hh"

namespace prose {
namespace {

/** Column slice helper for head splitting. */
Matrix
headSlice(const Matrix &x, std::size_t head, std::size_t dk)
{
    return sliceCols(x, head * dk, dk);
}

/** Broadcast a bias vector into a 1 x n row matrix. */
Matrix
biasRow(const std::vector<float> &bias)
{
    Matrix row(1, bias.size());
    for (std::size_t j = 0; j < bias.size(); ++j)
        row(0, j) = bias[j];
    return row;
}

TEST(LayerOnArrays, EncoderLayerMatchesModelWithinTolerance)
{
    // Small but structurally complete layer: hidden 32, 2 heads, 12
    // tokens, intermediate 128.
    BertConfig config = BertConfig::tiny();
    config.hidden = 32;
    config.heads = 2;
    config.intermediate = 128;
    config.layers = 1;
    config.maxSeqLen = 64;
    const BertModel model(config, 2024);
    const LayerWeights &lw = model.weights().layers[0];

    const std::uint64_t seq_len = 12;
    const std::uint64_t dk = config.headDim();
    Rng rng(55);
    Matrix x(seq_len, config.hidden);
    x.fillGaussian(rng, 0.0f, 1.0f);
    x.quantizeBf16InPlace(); // inputs arrive as bf16, like embeddings

    // --- Reference: the model's own layer in full accelerator mode ---
    const Matrix expected = model.runEncoderLayer(
        x, 0, 1, seq_len, NumericsMode::Bf16Lut);

    // --- Accelerator: every dataflow on the cycle-stepped arrays ----
    FunctionalSimulator sim(ArrayGeometry::mType(8),
                            ArrayGeometry::gType(8),
                            ArrayGeometry::eType(8));

    // Dataflow 1 x3: Q/K/V projections with broadcast bias.
    const Matrix bq = biasRow(lw.bq), bk = biasRow(lw.bk),
                 bv = biasRow(lw.bv);
    const Matrix q = sim.dataflow1(x, lw.wq, 1.0f, &bq);
    const Matrix k = sim.dataflow1(x, lw.wk, 1.0f, &bk);
    const Matrix v = sim.dataflow1(x, lw.wv, 1.0f, &bv);

    // Dataflow 3 per head, concatenated back.
    std::vector<Matrix> qs, ks, vs;
    for (std::size_t head = 0; head < config.heads; ++head) {
        qs.push_back(headSlice(q, head, dk));
        ks.push_back(headSlice(k, head, dk));
        vs.push_back(headSlice(v, head, dk));
    }
    const float inv_scale = 1.0f / std::sqrt(static_cast<float>(dk));
    const std::vector<Matrix> heads =
        sim.dataflow3(qs, ks, vs, inv_scale);
    const Matrix context = hconcat(heads);

    // Dataflow 1: attention output projection + bias, then a residual
    // MulAdd (modeled here as a second ADD pass via dataflow1 on an
    // identity-free path: add the residual on the host side like the
    // second MulAdd of the fused task).
    const Matrix bo = biasRow(lw.bo);
    Matrix attn = sim.dataflow1(context, lw.wo, 1.0f, &bo);
    for (std::size_t i = 0; i < attn.rows(); ++i)
        for (std::size_t j = 0; j < attn.cols(); ++j)
            attn(i, j) = quantizeBf16(attn(i, j) + x(i, j));

    // Host LayerNorm (an Other-class op in the paper's mapping).
    Matrix normed = layerNorm(attn, lw.lnAttnGamma, lw.lnAttnBeta,
                              config.layerNormEps);
    normed.quantizeBf16InPlace();

    // Dataflow 2: intermediate projection + bias + GELU on G-Type.
    const Matrix b1 = biasRow(lw.b1);
    const Matrix inter = sim.dataflow2(normed, lw.w1, 1.0f, &b1);

    // Dataflow 1: output projection + bias; residual; LayerNorm.
    const Matrix b2 = biasRow(lw.b2);
    Matrix out = sim.dataflow1(inter, lw.w2, 1.0f, &b2);
    for (std::size_t i = 0; i < out.rows(); ++i)
        for (std::size_t j = 0; j < out.cols(); ++j)
            out(i, j) = quantizeBf16(out(i, j) + normed(i, j));
    Matrix result = layerNorm(out, lw.lnOutGamma, lw.lnOutBeta,
                              config.layerNormEps);
    result.quantizeBf16InPlace();

    // --- Compare ------------------------------------------------------
    // The two paths differ only in rounding details (the model
    // round-to-nearests after each op; the arrays' OUTPUT port
    // truncates), so agreement must be tight on LayerNorm-scaled
    // activations but not bit-exact.
    ASSERT_TRUE(result.sameShape(expected));
    EXPECT_LT(Matrix::maxAbsDiff(result, expected), 0.12f);

    // Cosine similarity as a global agreement check.
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t i = 0; i < result.rows(); ++i) {
        for (std::size_t j = 0; j < result.cols(); ++j) {
            dot += static_cast<double>(result(i, j)) * expected(i, j);
            na += static_cast<double>(result(i, j)) * result(i, j);
            nb += static_cast<double>(expected(i, j)) * expected(i, j);
        }
    }
    EXPECT_GT(dot / std::sqrt(na * nb), 0.999);

    // And the arrays did real work.
    EXPECT_GT(sim.macCount(), 0u);
    EXPECT_GT(sim.matmulCycles(), 0u);
}

} // namespace
} // namespace prose
