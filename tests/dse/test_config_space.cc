/** @file Tests for the Table 3 configuration-space enumeration. */

#include <gtest/gtest.h>

#include <set>

#include "dse/config_space.hh"

namespace prose {
namespace {

TEST(ConfigSpace, EveryMixMeetsTheBudgetExactly)
{
    ConfigSpaceSpec spec;
    for (const auto &mix : enumerateMixes(spec))
        EXPECT_EQ(mix.totalPes(), spec.peBudget) << mix.name;
}

TEST(ConfigSpace, EveryMixHasAllThreeTypes)
{
    for (const auto &mix : enumerateMixes(ConfigSpaceSpec{})) {
        EXPECT_GE(mix.arrayCount(ArrayType::M), 1u);
        EXPECT_GE(mix.arrayCount(ArrayType::G), 1u);
        EXPECT_GE(mix.arrayCount(ArrayType::E), 1u);
    }
}

TEST(ConfigSpace, CountsRespectTable3Bounds)
{
    ConfigSpaceSpec spec;
    for (const auto &mix : enumerateMixes(spec)) {
        for (const auto &group : mix.groups) {
            if (group.geometry.type == ArrayType::M) {
                EXPECT_EQ(group.geometry.dim, 64u);
                EXPECT_LE(group.count, spec.maxMCount);
            } else if (group.geometry.dim == 32) {
                EXPECT_LE(group.count, spec.maxCount32);
            } else {
                EXPECT_EQ(group.geometry.dim, 16u);
                EXPECT_LE(group.count, spec.maxCount16);
            }
        }
    }
}

TEST(ConfigSpace, SizeComparableToPaper)
{
    // The paper explored 238 configurations after pruning; our
    // enumeration (mixes x the ~10 lane splits the engine sweeps) is in
    // the same regime. The mix count alone should land in the dozens.
    const auto mixes = enumerateMixes(ConfigSpaceSpec{});
    EXPECT_GE(mixes.size(), 40u);
    EXPECT_LE(mixes.size(), 400u);
}

TEST(ConfigSpace, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &mix : enumerateMixes(ConfigSpaceSpec{}))
        EXPECT_TRUE(names.insert(mix.name).second) << mix.name;
}

TEST(ConfigSpace, ContainsThePaperSelections)
{
    // BestPerf (2 M64, 10 G16, 22 E16) and MostEfficient (2 M64, 3 G32,
    // 20 E16) must be reachable points of the space.
    bool best_perf = false, most_efficient = false;
    for (const auto &mix : enumerateMixes(ConfigSpaceSpec{})) {
        if (mix.name == "M64x2-G16x10-E16x22")
            best_perf = true;
        if (mix.name == "M64x2-G32x3-E16x20")
            most_efficient = true;
    }
    EXPECT_TRUE(best_perf);
    EXPECT_TRUE(most_efficient);
}

TEST(ConfigSpace, BudgetSweepChangesSize)
{
    ConfigSpaceSpec small;
    small.peBudget = 8192;
    ConfigSpaceSpec large;
    large.peBudget = 24576;
    EXPECT_FALSE(enumerateMixes(small).empty());
    EXPECT_FALSE(enumerateMixes(large).empty());
}

TEST(ConfigSpace, StreamingAndCompressionAxesMultiplyTheSpace)
{
    const std::size_t base = enumerateMixes(ConfigSpaceSpec{}).size();

    ConfigSpaceSpec spec;
    StreamSpec serialized;
    serialized.mode = StreamMode::Serialized;
    spec.streamingSweep = { StreamSpec{}, serialized };
    spec.compressionSweep = { LinkCompression::None,
                              LinkCompression::ZeroRun,
                              LinkCompression::Delta };
    const auto mixes = enumerateMixes(spec);
    EXPECT_EQ(mixes.size(), base * 6);

    // Crossed names stay unique and carry the axis tags; the knobs
    // actually land on the configs.
    std::set<std::string> names;
    std::set<LinkCompression> codecs;
    for (const auto &mix : mixes) {
        EXPECT_TRUE(names.insert(mix.name).second) << mix.name;
        codecs.insert(mix.link.compression);
        mix.validate();
    }
    EXPECT_EQ(codecs.size(), 3u);
    EXPECT_NE(mixes.front().name.find("double-buffered"),
              std::string::npos);
}

TEST(ConfigSpace, DefaultSweepKeepsLegacyNames)
{
    // Singleton streaming/compression sweeps must not grow names, so
    // existing explorations and mix-parse round trips stay stable.
    for (const auto &mix : enumerateMixes(ConfigSpaceSpec{})) {
        EXPECT_EQ(mix.name.find("double-buffered"), std::string::npos);
        EXPECT_EQ(mix.name.find("zero-run"), std::string::npos);
        break;
    }
}

TEST(ConfigSpace, PropagatesLinkAndThreads)
{
    ConfigSpaceSpec spec;
    spec.link = LinkSpec::nvlink3At90();
    spec.threads = 16;
    for (const auto &mix : enumerateMixes(spec)) {
        EXPECT_EQ(mix.link.lanes, 12u);
        EXPECT_EQ(mix.threads, 16u);
        break;
    }
}

} // namespace
} // namespace prose
