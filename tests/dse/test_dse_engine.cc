/** @file Tests for the DSE engine: evaluation, lane sweep, Pareto. */

#include <gtest/gtest.h>

#include <algorithm>

#include "dse/dse_engine.hh"

namespace prose {
namespace {

/** A small workload so DSE tests stay fast. */
DseWorkload
testWorkload()
{
    DseWorkload workload;
    workload.shape = BertShape{ 2, 768, 12, 3072, 8, 256 };
    return workload;
}

TEST(Pareto, SimpleFront)
{
    // Points: (1,5) (2,2) (3,1) (3,3) (4,4). Dominated: (3,3), (4,4).
    const auto front = paretoFront({ 1, 2, 3, 3, 4 }, { 5, 2, 1, 3, 4 });
    EXPECT_EQ(front, (std::vector<std::size_t>{ 0, 1, 2 }));
}

TEST(Pareto, AllIncomparableSurvive)
{
    const auto front = paretoFront({ 1, 2, 3 }, { 3, 2, 1 });
    EXPECT_EQ(front.size(), 3u);
}

TEST(Pareto, DuplicatesBothSurvive)
{
    const auto front = paretoFront({ 1, 1 }, { 2, 2 });
    EXPECT_EQ(front.size(), 2u);
}

TEST(DseEngine, A100NormalizerIsPositive)
{
    const DseEngine engine(testWorkload());
    EXPECT_GT(engine.a100Seconds(), 0.0);
}

TEST(DseEngine, EvaluateFillsAllFields)
{
    const DseEngine engine(testWorkload());
    const DsePoint point = engine.evaluate(ProseConfig::bestPerf());
    EXPECT_GT(point.runtimeSeconds, 0.0);
    EXPECT_GT(point.runtimeVsA100, 0.0);
    EXPECT_GT(point.powerWatts, 5.0);
    EXPECT_LT(point.powerWatts, 30.0);
    EXPECT_GT(point.areaMm2, 5.0);
    EXPECT_GT(point.inferencesPerSecond, 0.0);
}

TEST(DseEngine, LaneSweepAtLeastAsGoodAsDefault)
{
    const DseEngine engine(testWorkload());
    const ProseConfig mix = ProseConfig::bestPerf();
    const DsePoint fixed = engine.evaluate(mix);
    const DsePoint swept = engine.evaluateBestLanes(mix);
    EXPECT_LE(swept.runtimeSeconds, fixed.runtimeSeconds * 1.0001);
}

TEST(DseEngine, ExploreSelectsConsistentIndices)
{
    ConfigSpaceSpec spec;
    spec.peBudget = 16384;
    const DseEngine engine(testWorkload());
    const DseSelection selection = engine.explore(spec);
    ASSERT_FALSE(selection.points.empty());

    // BestPerf really is the fastest point.
    for (const auto &point : selection.points)
        EXPECT_GE(point.runtimeSeconds,
                  selection.points[selection.bestPerf].runtimeSeconds);

    // Pareto indices are valid and include the selections.
    auto contains = [](const std::vector<std::size_t> &v,
                       std::size_t x) {
        return std::find(v.begin(), v.end(), x) != v.end();
    };
    EXPECT_TRUE(
        contains(selection.powerPareto, selection.mostPowerEfficient));
    EXPECT_TRUE(
        contains(selection.areaPareto, selection.mostAreaEfficient));
    // The fastest point is on both fronts by construction.
    EXPECT_TRUE(contains(selection.powerPareto, selection.bestPerf));
    EXPECT_TRUE(contains(selection.areaPareto, selection.bestPerf));
}

TEST(DseEngine, ParetoPointsAreUndominated)
{
    ConfigSpaceSpec spec;
    const DseEngine engine(testWorkload());
    const DseSelection selection = engine.explore(spec);
    for (std::size_t idx : selection.powerPareto) {
        for (const auto &other : selection.points) {
            const auto &point = selection.points[idx];
            const bool dominates =
                other.runtimeSeconds <= point.runtimeSeconds &&
                other.powerWatts <= point.powerWatts &&
                (other.runtimeSeconds < point.runtimeSeconds ||
                 other.powerWatts < point.powerWatts);
            EXPECT_FALSE(dominates);
        }
    }
}

TEST(DseEngine, ValidateGroundsTheTimingModelInAllEngineModes)
{
    const DseEngine engine(testWorkload());
    for (FsimMode mode :
         { FsimMode::Fast, FsimMode::Stepped, FsimMode::Validate }) {
        const DseValidationReport report =
            engine.validate(ProseConfig::bestPerf(), mode);
        EXPECT_TRUE(report.ok) << toString(mode);
        EXPECT_EQ(report.mode, mode);
        EXPECT_EQ(report.fsimMatmulCycles, report.modelMatmulCycles)
            << toString(mode);
        EXPECT_EQ(report.macCount, report.expectedMacCount)
            << toString(mode);
        EXPECT_EQ(report.maxAbsError, 0.0f) << toString(mode);
        EXPECT_GT(report.macCount, 0u);
    }
}

TEST(DseEngine, ValidateAgreesAcrossConfigurations)
{
    // The probes are sized off each config's geometries, so distinct
    // configs exercise distinct tile shapes; counters must match the
    // closed forms regardless.
    const DseEngine engine(testWorkload());
    const DseValidationReport fast =
        engine.validate(ProseConfig::mostEfficient(), FsimMode::Fast);
    const DseValidationReport stepped =
        engine.validate(ProseConfig::mostEfficient(), FsimMode::Stepped);
    EXPECT_TRUE(fast.ok);
    EXPECT_TRUE(stepped.ok);
    EXPECT_EQ(fast.fsimMatmulCycles, stepped.fsimMatmulCycles);
    EXPECT_EQ(fast.macCount, stepped.macCount);
}

TEST(DseEngineDeathTest, ImpossibleBudgetPanics)
{
    // 4096 PEs cannot fit one M-Type 64x64 plus G and E arrays.
    ConfigSpaceSpec spec;
    spec.peBudget = 4096;
    const DseEngine engine(testWorkload());
    EXPECT_DEATH(engine.explore(spec), "empty configuration space");
}

} // namespace
} // namespace prose
