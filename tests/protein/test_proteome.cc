/** @file Tests for synthetic proteome generation. */

#include <gtest/gtest.h>

#include <cmath>

#include "protein/amino_acid.hh"
#include "protein/proteome.hh"

namespace prose {
namespace {

TEST(Proteome, LengthsWithinBounds)
{
    Rng rng(1);
    const ProteomeSpec spec;
    for (int i = 0; i < 2000; ++i) {
        const std::size_t length = sampleProteinLength(rng, spec);
        EXPECT_GE(length, spec.minLength);
        EXPECT_LE(length, spec.maxLength);
    }
}

TEST(Proteome, MedianNearEukaryoticTypical)
{
    Rng rng(2);
    const ProteomeSpec spec;
    std::vector<double> lengths;
    for (int i = 0; i < 5000; ++i)
        lengths.push_back(
            static_cast<double>(sampleProteinLength(rng, spec)));
    std::sort(lengths.begin(), lengths.end());
    const double median = lengths[lengths.size() / 2];
    // exp(5.8) ~ 330; the paper's "majority of protein sequences are
    // 300-2000+ tokens".
    EXPECT_GT(median, 250.0);
    EXPECT_LT(median, 420.0);
}

TEST(Proteome, HeavyTailPresent)
{
    Rng rng(3);
    const ProteomeSpec spec;
    std::size_t over_800 = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        over_800 += sampleProteinLength(rng, spec) > 800 ? 1 : 0;
    // A real proteome has a few percent of very long proteins.
    EXPECT_GT(over_800, n / 100);
    EXPECT_LT(over_800, n / 4);
}

TEST(Proteome, SynthesizeProducesValidRecords)
{
    Rng rng(4);
    const auto records = synthesizeProteome(rng, 50, ProteomeSpec{});
    ASSERT_EQ(records.size(), 50u);
    for (const auto &record : records) {
        EXPECT_FALSE(record.id.empty());
        EXPECT_FALSE(record.sequence.empty());
        for (char residue : record.sequence)
            EXPECT_TRUE(isCanonical(residue));
    }
}

TEST(Proteome, SummaryMatchesRecords)
{
    Rng rng(5);
    const auto records = synthesizeProteome(rng, 200, ProteomeSpec{});
    const ProteomeStats stats = summarizeProteome(records);
    EXPECT_EQ(stats.count, 200u);
    EXPECT_LE(stats.minLength, stats.maxLength);
    EXPECT_GE(stats.meanLength, static_cast<double>(stats.minLength));
    EXPECT_LE(stats.meanLength, static_cast<double>(stats.maxLength));
    std::uint64_t total = 0;
    for (const auto &record : records)
        total += record.sequence.size();
    EXPECT_EQ(stats.totalResidues, total);
}

TEST(Proteome, Deterministic)
{
    Rng a(6), b(6);
    const auto ra = synthesizeProteome(a, 10, ProteomeSpec{});
    const auto rb = synthesizeProteome(b, 10, ProteomeSpec{});
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(ra[i].sequence, rb[i].sequence);
}

TEST(Proteome, DegenerateSpecClampsInsteadOfSpinning)
{
    Rng rng(7);
    ProteomeSpec narrow;
    narrow.logMu = 20.0; // e^20 residues: always above maxLength
    narrow.minLength = 100;
    narrow.maxLength = 200;
    const std::size_t length = sampleProteinLength(rng, narrow);
    EXPECT_GE(length, narrow.minLength);
    EXPECT_LE(length, narrow.maxLength);
}

TEST(ProteomeDeathTest, EmptySummaryPanics)
{
    EXPECT_DEATH(summarizeProteome({}), "empty");
}

} // namespace
} // namespace prose
