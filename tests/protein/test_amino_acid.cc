/** @file Tests for amino-acid property tables. */

#include <gtest/gtest.h>

#include "protein/amino_acid.hh"

namespace prose {
namespace {

TEST(AminoAcid, TwentyCanonicalResidues)
{
    EXPECT_EQ(canonicalResidues().size(), 20u);
}

TEST(AminoAcid, KnownProperties)
{
    // Isoleucine is the most hydrophobic on the Kyte-Doolittle scale.
    EXPECT_DOUBLE_EQ(aminoAcid('I').hydropathy, 4.5);
    // Arginine the least.
    EXPECT_DOUBLE_EQ(aminoAcid('R').hydropathy, -4.5);
    // Charges at pH 7.
    EXPECT_DOUBLE_EQ(aminoAcid('K').charge, 1.0);
    EXPECT_DOUBLE_EQ(aminoAcid('D').charge, -1.0);
    EXPECT_DOUBLE_EQ(aminoAcid('G').charge, 0.0);
}

TEST(AminoAcid, AromaticsFlagged)
{
    for (char code : { 'F', 'W', 'Y', 'H' })
        EXPECT_EQ(aminoAcid(code).aromatic, 1.0) << code;
    for (char code : { 'A', 'K', 'S' })
        EXPECT_EQ(aminoAcid(code).aromatic, 0.0) << code;
}

TEST(AminoAcid, TryptophanIsLargest)
{
    for (char code : canonicalResidues())
        EXPECT_LE(aminoAcid(code).volume, aminoAcid('W').volume);
}

TEST(AminoAcid, GlycineIsSmallest)
{
    for (char code : canonicalResidues())
        EXPECT_GE(aminoAcid(code).volume, aminoAcid('G').volume);
}

TEST(AminoAcid, UnknownCodeGetsNeutralDefaults)
{
    const AminoAcid &unknown = aminoAcid('Z');
    EXPECT_EQ(unknown.code, 'X');
    EXPECT_EQ(unknown.hydropathy, 0.0);
    EXPECT_FALSE(isCanonical('Z'));
    EXPECT_FALSE(isCanonical('1'));
}

TEST(AminoAcid, CanonicalPredicate)
{
    for (char code : canonicalResidues())
        EXPECT_TRUE(isCanonical(code)) << code;
}

} // namespace
} // namespace prose
