/** @file Tests for deep mutational scanning. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"
#include "protein/amino_acid.hh"
#include "protein/fasta.hh"
#include "model/tokenizer.hh"
#include "protein/mutation_scan.hh"

namespace prose {
namespace {

/** A tiny model + head trained on a known biophysical signal. */
struct Fixture
{
    Fixture()
        : model(makeConfig(), 33)
    {
        Rng rng(8);
        std::vector<std::string> proteins;
        std::vector<double> targets;
        const AminoTokenizer tokenizer;
        std::vector<std::vector<std::uint32_t>> tokens;
        for (int i = 0; i < 80; ++i) {
            const std::string protein = randomProtein(rng, kLen);
            double hydropathy = 0.0;
            for (char residue : protein)
                hydropathy += aminoAcid(residue).hydropathy;
            proteins.push_back(protein);
            targets.push_back(hydropathy / kLen);
            tokens.push_back(tokenizer.encode(protein, kLen + 2));
        }
        head.fit(model.extractFeatures(tokens), targets, 5.0);
    }

    static BertConfig
    makeConfig()
    {
        BertConfig config = BertConfig::tiny();
        config.maxSeqLen = 64;
        return config;
    }

    static constexpr std::size_t kLen = 18;
    BertModel model;
    RegressionHead head;
};

Fixture &
fixture()
{
    static Fixture instance;
    return instance;
}

TEST(MutationScan, EnumeratesAllSubstitutions)
{
    Fixture &f = fixture();
    const std::string wild = "ACDEFGHIKL";
    const MutationScan scan = scanMutations(f.model, f.head, wild, 32);
    EXPECT_EQ(scan.effects.size(), 19u * wild.size());
    // No self-substitutions.
    for (const auto &effect : scan.effects)
        EXPECT_NE(effect.from, effect.to);
}

TEST(MutationScan, EffectsAreHeadDeltas)
{
    Fixture &f = fixture();
    const std::string wild = "ACDEFG";
    const MutationScan scan = scanMutations(f.model, f.head, wild, 16);

    // Recompute one mutant's score by hand.
    const AminoTokenizer tokenizer;
    std::string mutant = wild;
    mutant[2] = 'W';
    const double mutant_score =
        f.head
            .predict(f.model.extractFeatures(
                { tokenizer.encode(mutant, wild.size() + 2) }))
            .front();
    EXPECT_NEAR(scan.effectAt(2, 'W'),
                mutant_score - scan.wildTypeScore, 1e-9);
}

TEST(MutationScan, BatchSizeDoesNotChangeResults)
{
    Fixture &f = fixture();
    const std::string wild = "MEYQAC";
    const MutationScan small = scanMutations(f.model, f.head, wild, 3);
    const MutationScan large = scanMutations(f.model, f.head, wild, 64);
    ASSERT_EQ(small.effects.size(), large.effects.size());
    for (std::size_t i = 0; i < small.effects.size(); ++i)
        EXPECT_NEAR(small.effects[i].score, large.effects[i].score,
                    1e-9);
}

TEST(MutationScan, RecoversHydropathyDirection)
{
    // The head was trained on mean hydropathy, so substituting a very
    // hydrophobic residue (I, +4.5) for a very hydrophilic one
    // (R, -4.5) should score positive, and vice versa.
    Fixture &f = fixture();
    const std::string wild = "RRRRRRIIIIII";
    const MutationScan scan = scanMutations(f.model, f.head, wild, 64);
    // R -> I at an R site vs I -> R at an I site.
    EXPECT_GT(scan.effectAt(0, 'I'), scan.effectAt(6, 'R'));
}

TEST(MutationScan, PredictedEffectsCorrelateWithTruth)
{
    Fixture &f = fixture();
    Rng rng(21);
    const std::string wild = randomProtein(rng, Fixture::kLen);
    const MutationScan scan = scanMutations(f.model, f.head, wild, 64);

    std::vector<double> predicted, truth;
    for (const auto &effect : scan.effects) {
        predicted.push_back(effect.score);
        truth.push_back((aminoAcid(effect.to).hydropathy -
                         aminoAcid(effect.from).hydropathy) /
                        static_cast<double>(wild.size()));
    }
    EXPECT_GT(spearman(predicted, truth), 0.5);
}

TEST(MutationScan, BestAndWorstAreExtremes)
{
    Fixture &f = fixture();
    const std::string wild = "ACDEFG";
    const MutationScan scan = scanMutations(f.model, f.head, wild, 64);
    for (const auto &effect : scan.effects) {
        EXPECT_LE(effect.score, scan.best().score);
        EXPECT_GE(effect.score, scan.worst().score);
    }
}

TEST(MutationScan, PositionSensitivityCoversEveryPosition)
{
    Fixture &f = fixture();
    const std::string wild = "ACDEFGHI";
    const MutationScan scan = scanMutations(f.model, f.head, wild, 64);
    const auto sensitivity = scan.positionSensitivity();
    ASSERT_EQ(sensitivity.size(), wild.size());
    for (double s : sensitivity)
        EXPECT_GT(s, 0.0);
}

TEST(MutationScanDeathTest, RejectsNonCanonicalWildType)
{
    Fixture &f = fixture();
    EXPECT_DEATH(scanMutations(f.model, f.head, "ACDX1"),
                 "non-canonical");
}

} // namespace
} // namespace prose
