/** @file Tests for FASTA I/O and synthetic protein generation. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "protein/amino_acid.hh"
#include "protein/fasta.hh"

namespace prose {
namespace {

TEST(Fasta, ParsesTwoRecords)
{
    std::istringstream in(">seq1 first protein\nMEYQ\nACDW\n"
                          ">seq2\nKKKK\n");
    const auto records = readFasta(in);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].id, "seq1");
    EXPECT_EQ(records[0].comment, "first protein");
    EXPECT_EQ(records[0].sequence, "MEYQACDW");
    EXPECT_EQ(records[1].id, "seq2");
    EXPECT_EQ(records[1].comment, "");
    EXPECT_EQ(records[1].sequence, "KKKK");
}

TEST(Fasta, UppercasesAndSkipsBlankLines)
{
    std::istringstream in(">x\n\nmeyq\n\nacd\n");
    const auto records = readFasta(in);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].sequence, "MEYQACD");
}

TEST(Fasta, EmptyInputGivesNoRecords)
{
    std::istringstream in("");
    EXPECT_TRUE(readFasta(in).empty());
}

TEST(Fasta, RoundTripThroughWriter)
{
    std::vector<FastaRecord> records{
        { "a", "note", std::string(130, 'M') },
        { "b", "", "ACD" },
    };
    std::ostringstream out;
    writeFasta(out, records);
    std::istringstream in(out.str());
    const auto parsed = readFasta(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].sequence, records[0].sequence);
    EXPECT_EQ(parsed[0].comment, "note");
    EXPECT_EQ(parsed[1].sequence, "ACD");
}

TEST(Fasta, WriterWrapsAtSixtyColumns)
{
    std::vector<FastaRecord> records{ { "a", "", std::string(90, 'A') } };
    std::ostringstream out;
    writeFasta(out, records);
    std::istringstream lines(out.str());
    std::string line;
    std::getline(lines, line); // header
    std::getline(lines, line);
    EXPECT_EQ(line.size(), 60u);
    std::getline(lines, line);
    EXPECT_EQ(line.size(), 30u);
}

// Fuzzing regression (see tests/fuzz/corpus/fasta): the reader used to
// swallow arbitrary non-residue bytes. A '>' absorbed into a sequence
// lands at a line start once the 60-column writer re-wraps it, and the
// round-tripped file parsed as a DIFFERENT record list.
TEST(FastaDeathTest, NonResidueBytesInSequenceAreFatal)
{
    std::istringstream gt(">A\nMK>V\n");
    EXPECT_EXIT(readFasta(gt), testing::ExitedWithCode(1),
                "invalid character '>' in sequence of FASTA record 'A'");
    std::istringstream digit(">A\nMK7V\n");
    EXPECT_EXIT(readFasta(digit), testing::ExitedWithCode(1),
                "invalid character");
}

TEST(Fasta, StopAndGapCharactersAreStillAccepted)
{
    std::istringstream in(">A\nMSTAR-GAP*\n");
    const auto records = readFasta(in);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].sequence, "MSTAR-GAP*");
}

TEST(FastaDeathTest, SequenceBeforeHeaderIsFatal)
{
    std::istringstream in("MEYQ\n");
    EXPECT_EXIT(readFasta(in), testing::ExitedWithCode(1), "header");
}

TEST(FastaDeathTest, HeaderOnlyRecordIsFatal)
{
    std::istringstream in(">lonely-header\n");
    EXPECT_EXIT(readFasta(in), testing::ExitedWithCode(1), "no sequence");
}

TEST(FastaDeathTest, HeaderOnlyRecordInTheMiddleIsFatal)
{
    std::istringstream in(">a\nMEYQ\n>empty\n>b\nACD\n");
    EXPECT_EXIT(readFasta(in), testing::ExitedWithCode(1), "no sequence");
}

TEST(FastaDeathTest, EmptyRecordIdIsFatal)
{
    std::istringstream in("> comment only\nMEYQ\n");
    EXPECT_EXIT(readFasta(in), testing::ExitedWithCode(1), "empty record id");
}

TEST(FastaDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(readFastaFile("/no/such/proteins.fasta"),
                testing::ExitedWithCode(1), "cannot open FASTA");
}

TEST(RandomProtein, LengthAndAlphabet)
{
    Rng rng(1);
    const std::string protein = randomProtein(rng, 500);
    EXPECT_EQ(protein.size(), 500u);
    for (char residue : protein)
        EXPECT_TRUE(isCanonical(residue)) << residue;
}

TEST(RandomProtein, CompositionRoughlyNatural)
{
    // Leucine should be the most common residue, tryptophan rare.
    Rng rng(2);
    const std::string protein = randomProtein(rng, 50000);
    auto count = [&](char code) {
        return std::count(protein.begin(), protein.end(), code);
    };
    EXPECT_GT(count('L'), count('W') * 4);
    EXPECT_GT(count('A'), count('C') * 2);
}

TEST(RandomProtein, Deterministic)
{
    Rng a(3), b(3);
    EXPECT_EQ(randomProtein(a, 100), randomProtein(b, 100));
}

} // namespace
} // namespace prose
