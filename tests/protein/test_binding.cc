/** @file Tests for the Section 2.2 binding-affinity experiment. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "protein/binding.hh"

namespace prose {
namespace {

BindingSpec
smallSpec()
{
    BindingSpec spec;
    spec.fabLength = 96; // keep forward passes fast in unit tests
    spec.seed = 0x5eed;
    return spec;
}

TEST(BindingGroundTruth, ParatopeSitesDistinctAndInRange)
{
    Rng rng(1);
    const BindingSpec spec = smallSpec();
    const BindingGroundTruth truth(spec, rng);
    std::set<std::size_t> unique(truth.paratope().begin(),
                                 truth.paratope().end());
    EXPECT_EQ(unique.size(), spec.paratopeSites);
    for (std::size_t pos : truth.paratope())
        EXPECT_LT(pos, spec.fabLength);
}

TEST(BindingGroundTruth, AffinityIgnoresNonParatopeMutations)
{
    Rng rng(2);
    const BindingSpec spec = smallSpec();
    const BindingGroundTruth truth(spec, rng);
    Rng seq_rng(3);
    std::string sequence(spec.fabLength, 'A');
    const double base = truth.affinity(sequence);
    // Mutate a position outside the paratope.
    for (std::size_t pos = 0; pos < spec.fabLength; ++pos) {
        const auto &sites = truth.paratope();
        if (std::find(sites.begin(), sites.end(), pos) != sites.end())
            continue;
        sequence[pos] = 'W';
        EXPECT_DOUBLE_EQ(truth.affinity(sequence), base);
        break;
    }
}

TEST(BindingGroundTruth, AffinityChangesWithParatopeMutation)
{
    Rng rng(4);
    const BindingSpec spec = smallSpec();
    const BindingGroundTruth truth(spec, rng);
    std::string sequence(spec.fabLength, 'A');
    const double base = truth.affinity(sequence);
    std::string mutated = sequence;
    mutated[truth.paratope().front()] = 'R'; // charged residue
    EXPECT_NE(truth.affinity(mutated), base);
}

TEST(BindingBenchmark, FamiliesShareLengthDifferInFramework)
{
    BindingBenchmark bench(smallSpec());
    const BindingDataset train = bench.makeTrainSet(10);
    const BindingDataset test = bench.makeTestSet(10);
    EXPECT_EQ(train.parent.size(), test.parent.size());
    EXPECT_NE(train.parent, test.parent);
    // The two parents agree on every paratope position.
    for (std::size_t pos : bench.groundTruth().paratope())
        EXPECT_EQ(train.parent[pos], test.parent[pos]);
}

TEST(BindingBenchmark, VariantsDifferFromParentOnlyAtParatope)
{
    BindingBenchmark bench(smallSpec());
    const BindingDataset train = bench.makeTrainSet(5);
    const auto &sites = bench.groundTruth().paratope();
    for (const auto &variant : train.variants) {
        ASSERT_EQ(variant.size(), train.parent.size());
        for (std::size_t pos = 0; pos < variant.size(); ++pos) {
            if (variant[pos] != train.parent[pos]) {
                EXPECT_NE(std::find(sites.begin(), sites.end(), pos),
                          sites.end())
                    << "non-paratope mutation at " << pos;
            }
        }
    }
}

TEST(BindingBenchmark, DatasetSizesMatchPaper)
{
    BindingBenchmark bench(smallSpec());
    EXPECT_EQ(bench.makeTrainSet(39).variants.size(), 39u);
    EXPECT_EQ(bench.makeTestSet(35).variants.size(), 35u);
}

TEST(BindingBenchmark, AffinitiesVary)
{
    BindingBenchmark bench(smallSpec());
    const BindingDataset train = bench.makeTrainSet(20);
    const double lo =
        *std::min_element(train.affinities.begin(),
                          train.affinities.end());
    const double hi =
        *std::max_element(train.affinities.begin(),
                          train.affinities.end());
    EXPECT_GT(hi - lo, 1.0);
}

TEST(BindingExperiment, RankCorrelationNearPaperValue)
{
    // The paper reports 0.5161 test rank correlation ("near or above
    // 0.5 suffices for experimental validity"). With our synthetic
    // ground truth and random-feature BERT the workflow must land in
    // the same usable band.
    BindingBenchmark bench(smallSpec());
    const BindingDataset train = bench.makeTrainSet(39);
    const BindingDataset test = bench.makeTestSet(35);
    const BertModel model(BertConfig::tiny(), 42);
    const BindingExperimentResult result =
        runBindingExperiment(model, train, test);

    EXPECT_GT(result.trainSpearman, 0.7); // in-sample fit is strong
    EXPECT_GT(result.testSpearman, 0.35); // transfer is the hard part
    EXPECT_LE(result.testSpearman, 1.0);
    EXPECT_EQ(result.trainCount, 39u);
    EXPECT_EQ(result.testCount, 35u);
}

TEST(BindingExperiment, DeterministicGivenSeeds)
{
    BindingBenchmark bench_a(smallSpec());
    BindingBenchmark bench_b(smallSpec());
    const BertModel model(BertConfig::tiny(), 7);
    const auto result_a = runBindingExperiment(
        model, bench_a.makeTrainSet(12), bench_a.makeTestSet(12));
    const auto result_b = runBindingExperiment(
        model, bench_b.makeTrainSet(12), bench_b.makeTestSet(12));
    EXPECT_DOUBLE_EQ(result_a.testSpearman, result_b.testSpearman);
}

} // namespace
} // namespace prose
