/**
 * @file
 * Tests for fault recovery across the stack: PerfSim link retries and
 * array failover, ProseSystem degraded-instance re-sharding, and the
 * guarantee that a disabled injector is bit-identical to no injector.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "accel/system.hh"
#include "common/random.hh"
#include "systolic/functional_sim.hh"

namespace prose {
namespace {

const BertShape kSmallShape{ 2, 256, 4, 1024, 4, 64 };

SimReport
runWith(const ProseConfig &config, SimOptions options,
        const BertShape &shape = kSmallShape)
{
    PerfSim sim(config, TimingModel(config.partialInputBuffer),
                HostModel{}, options);
    return sim.run(shape);
}

TEST(FaultRecovery, NullInjectorIsBitIdenticalInPerfSim)
{
    const ProseConfig config = ProseConfig::bestPerf();
    const SimReport plain = PerfSim(config).run(kSmallShape);
    const SimReport with_null = runWith(config, SimOptions{});
    EXPECT_EQ(plain.makespan, with_null.makespan);
    EXPECT_EQ(plain.taskCount, with_null.taskCount);
    EXPECT_EQ(with_null.linkTransferErrors, 0u);
    EXPECT_EQ(with_null.linkTimeouts, 0u);
    EXPECT_EQ(with_null.taskRetries, 0u);
    EXPECT_EQ(with_null.abandonedTransfers, 0u);
    EXPECT_EQ(with_null.retrySeconds, 0.0);
    EXPECT_EQ(with_null.deadArrays[0], 0u);
}

TEST(FaultRecovery, DisabledInjectionIsBitIdenticalInFunctionalSim)
{
    Rng rng(3);
    Matrix a(40, 64), b(64, 40);
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);

    FunctionalSimulator plain;
    const Matrix reference = plain.dataflow2(a, b, 0.5f, nullptr);

    FunctionalSimulator configured;
    configured.setFaultInjector(nullptr);
    configured.setAbft(AbftOptions{}); // enabled = false
    const Matrix out = configured.dataflow2(a, b, 0.5f, nullptr);
    EXPECT_EQ(Matrix::maxAbsDiff(reference, out), 0.0f);
    EXPECT_EQ(configured.abftStats().tilesChecked, 0u);
}

TEST(FaultRecovery, AbftRepairsInjectedFlipsEndToEnd)
{
    Rng rng(4);
    Matrix a(96, 128), b(128, 96);
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);

    FunctionalSimulator clean;
    const Matrix reference = clean.dataflow1(a, b, 1.0f, nullptr);

    CampaignSpec spec;
    spec.seed = 9;
    spec.accFlipRate = 5e-4;

    // Unprotected: the flips reach the output.
    FaultInjector raw_injector(spec);
    FunctionalSimulator unprotected;
    unprotected.setFaultInjector(&raw_injector);
    const Matrix corrupted = unprotected.dataflow1(a, b, 1.0f, nullptr);
    ASSERT_FALSE(raw_injector.events().empty());
    EXPECT_GT(Matrix::maxAbsDiff(reference, corrupted), 0.0f);

    // Protected: every located flip is repaired before the drain, so
    // the output returns to (at worst) one bf16 output ulp.
    FaultInjector injector(spec);
    AbftOptions abft;
    abft.enabled = true;
    FunctionalSimulator protectedSim;
    protectedSim.setFaultInjector(&injector);
    protectedSim.setAbft(abft);
    const Matrix repaired = protectedSim.dataflow1(a, b, 1.0f, nullptr);
    EXPECT_LE(Matrix::maxAbsDiff(reference, repaired), 0.25f);
    EXPECT_GT(protectedSim.abftStats().tilesFlagged, 0u);
    EXPECT_GT(protectedSim.abftStats().correctedElements, 0u);
}

TEST(FaultRecovery, RetryChargesLatencyAndCounts)
{
    const ProseConfig config = ProseConfig::bestPerf();
    const SimReport healthy = PerfSim(config).run(kSmallShape);

    CampaignSpec spec;
    spec.seed = 1;
    spec.linkErrorRate = 1.0;
    FaultInjector injector(spec);
    SimOptions options;
    options.injector = &injector;
    options.retry.maxAttempts = 2;
    const SimReport report = runWith(config, options);

    EXPECT_GT(report.taskRetries, 0u);
    EXPECT_GT(report.abandonedTransfers, 0u);
    // With every attempt faulting, each error is answered by either a
    // retry or an abandonment.
    EXPECT_EQ(report.linkTransferErrors,
              report.taskRetries + report.abandonedTransfers);
    EXPECT_GT(report.retrySeconds, 0.0);
    EXPECT_GT(report.makespan, healthy.makespan);
}

TEST(FaultRecovery, TimeoutsChargeDetectionCost)
{
    const ProseConfig config = ProseConfig::bestPerf();
    const SimReport healthy = PerfSim(config).run(kSmallShape);

    CampaignSpec spec;
    spec.seed = 1;
    spec.linkTimeoutRate = 1.0;
    FaultInjector injector(spec);
    SimOptions options;
    options.injector = &injector;
    const SimReport report = runWith(config, options);

    EXPECT_GT(report.linkTimeouts, 0u);
    EXPECT_EQ(report.linkTransferErrors, 0u);
    EXPECT_GT(report.retrySeconds, 0.0);
    EXPECT_GT(report.makespan, healthy.makespan);
}

TEST(FaultRecovery, RetryPolicyBacksOffExponentially)
{
    RetryPolicy policy;
    policy.backoffSeconds = 10e-6;
    policy.backoffFactor = 2.0;
    EXPECT_DOUBLE_EQ(policy.delayFor(0), 10e-6);
    EXPECT_DOUBLE_EQ(policy.delayFor(1), 20e-6);
    EXPECT_DOUBLE_EQ(policy.delayFor(3), 80e-6);
}

TEST(FaultRecovery, ArrayFailoverDegradesButCompletes)
{
    const ProseConfig config = ProseConfig::bestPerf(); // 2 M arrays
    const SimReport healthy = PerfSim(config).run(kSmallShape);

    CampaignSpec spec;
    spec.arrayKills = { ArrayKill{ 'M', 0, 0.0 } };
    FaultInjector injector(spec);
    SimOptions options;
    options.injector = &injector;
    const SimReport report = runWith(config, options);

    EXPECT_EQ(report.deadArrays[0], 1u);
    EXPECT_GT(report.makespan, healthy.makespan);
    EXPECT_GT(report.inferencesPerSecond(), 0.0);
    EXPECT_EQ(report.taskCount, healthy.taskCount);
}

TEST(FaultRecoveryDeathTest, KillingEveryArrayOfATypeIsFatal)
{
    const ProseConfig config = ProseConfig::bestPerf();
    CampaignSpec spec;
    spec.arrayKills = { ArrayKill{ 'M', 0, 0.0 },
                        ArrayKill{ 'M', 1, 0.0 } };
    FaultInjector injector(spec);
    SimOptions options;
    options.injector = &injector;
    EXPECT_EXIT(runWith(config, options), testing::ExitedWithCode(1),
                "nothing left to fail over");
}

TEST(FaultRecovery, SystemNullInjectorIsBitIdentical)
{
    const ProseSystem system{ SystemConfig{} };
    const BertShape shape{ 2, 256, 4, 1024, 8, 64 };
    const SystemReport plain = system.run(shape);
    const SystemReport with_null = system.run(shape, nullptr);
    EXPECT_EQ(plain.makespan, with_null.makespan);
    EXPECT_EQ(plain.systemWatts, with_null.systemWatts);
    EXPECT_EQ(with_null.failedInstances, 0u);
    EXPECT_EQ(with_null.reshardedInferences, 0u);
    EXPECT_DOUBLE_EQ(with_null.throughputRetention, 1.0);
}

TEST(FaultRecovery, InstanceDeathReshardsOntoSurvivors)
{
    const ProseSystem system{ SystemConfig{} };
    const BertShape shape{ 2, 256, 4, 1024, 16, 64 };
    const SystemReport healthy = system.run(shape);

    CampaignSpec spec;
    spec.instanceKills = { InstanceKill{ 1, healthy.makespan * 0.3 } };
    FaultInjector injector(spec);
    const SystemReport report = system.run(shape, &injector);

    EXPECT_EQ(report.failedInstances, 1u);
    EXPECT_GT(report.reshardedInferences, 0u);
    EXPECT_GT(report.reshardSeconds, 0.0);
    EXPECT_GT(report.makespan, healthy.makespan);
    EXPECT_LT(report.throughputRetention, 1.0);
    EXPECT_GT(report.throughputRetention, 0.0);
    EXPECT_GT(report.inferencesPerSecond(), 0.0);
    // The survivors' recovery wave shows up as extra per-instance runs.
    EXPECT_GT(report.perInstance.size(), healthy.perInstance.size());
}

TEST(FaultRecovery, ReshardedTailCompletionTimesLandAfterTheDeath)
{
    // Regression for the per-inference completion times under a kill:
    // every inference must get a completion stamp, the last one must be
    // the (degraded) makespan, and the recovery wave's stamps must all
    // land at or after the moment of death.
    const ProseSystem system{ SystemConfig{} };
    const BertShape shape{ 2, 256, 4, 1024, 16, 64 };
    const SystemReport healthy = system.run(shape);
    ASSERT_EQ(healthy.completionSeconds.size(), healthy.inferences);

    const double death = healthy.makespan * 0.3;
    CampaignSpec spec;
    spec.instanceKills = { InstanceKill{ 1, death } };
    FaultInjector injector(spec);
    const SystemReport report = system.run(shape, &injector);

    ASSERT_EQ(report.completionSeconds.size(), report.inferences);
    double last = 0.0;
    std::size_t after_death = 0;
    for (const double end : report.completionSeconds) {
        EXPECT_GT(end, 0.0);
        EXPECT_LE(end, report.makespan);
        last = std::max(last, end);
        if (end > death)
            ++after_death;
    }
    EXPECT_DOUBLE_EQ(last, report.makespan);
    // The resharded work (and only slightly less than a full wave of
    // it) completes in the degraded tail past the death.
    EXPECT_GE(after_death, report.reshardedInferences);
    EXPECT_GT(report.makespan, healthy.makespan);
}

TEST(FaultRecoveryDeathTest, KillingEveryInstanceIsFatal)
{
    const ProseSystem system{ SystemConfig{} };
    CampaignSpec spec;
    for (std::uint32_t i = 0; i < 4; ++i)
        spec.instanceKills.push_back(InstanceKill{ i, 0.0 });
    FaultInjector injector(spec);
    const BertShape shape{ 2, 256, 4, 1024, 8, 64 };
    EXPECT_EXIT(system.run(shape, &injector), testing::ExitedWithCode(1),
                "nothing left to re-shard");
}

TEST(FaultRecovery, CampaignReplayReproducesSystemRun)
{
    const ProseSystem system{ SystemConfig{} };
    const BertShape shape{ 2, 256, 4, 1024, 8, 64 };
    const CampaignSpec spec = CampaignSpec::parse(
        "seed=42 link_error_rate=0.05 link_timeout_rate=0.01 "
        "kill_array=E:0@1e-4 kill_instance=2@1e-3");

    FaultInjector first(spec), second(spec);
    const SystemReport a = system.run(shape, &first);
    const SystemReport b = system.run(shape, &second);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.taskRetries, b.taskRetries);
    EXPECT_EQ(a.reshardedInferences, b.reshardedInferences);
    EXPECT_EQ(first.eventLogText(), second.eventLogText());
    EXPECT_FALSE(first.eventLogText().empty());
}

} // namespace
} // namespace prose
