/** @file Tests for the schedule post-mortem analysis. */

#include <gtest/gtest.h>

#include "accel/schedule_analysis.hh"

namespace prose {
namespace {

SimReport
recordedRun(std::uint32_t threads, std::uint64_t batch = 8)
{
    SimOptions options;
    options.recordSchedule = true;
    ProseConfig config = ProseConfig::bestPerf();
    config.threads = threads;
    PerfSim sim(config, TimingModel{}, HostModel{}, options);
    return sim.run(BertShape{ 2, 768, 12, 3072, batch, 128 });
}

TEST(ScheduleAnalysis, BusyMatchesReportTallies)
{
    const SimReport report = recordedRun(4);
    const ScheduleAnalysis analysis = analyzeSchedule(report);
    // Pool busy seconds from the Gantt equal the simulator's per-type
    // tallies divided by the instance counts (the report multiplies by
    // pool size).
    for (std::size_t idx = 0; idx < 3; ++idx) {
        const double expected =
            report.typeBusySeconds[idx] / report.typeCounts[idx];
        EXPECT_NEAR(analysis.poolBusySeconds[idx], expected,
                    1e-12 + expected * 1e-9);
    }
}

TEST(ScheduleAnalysis, BusyPlusIdleSpansMakespan)
{
    const SimReport report = recordedRun(4);
    const ScheduleAnalysis analysis = analyzeSchedule(report);
    for (std::size_t idx = 0; idx < 3; ++idx) {
        EXPECT_NEAR(analysis.poolBusySeconds[idx] +
                        analysis.poolIdleSeconds[idx],
                    analysis.makespan, analysis.makespan * 1e-6);
    }
}

TEST(ScheduleAnalysis, SingleThreadHasLargeBubbles)
{
    // One thread leaves every pool idle while the others work — the
    // Figure 8 single-thread picture.
    const ScheduleAnalysis one = analyzeSchedule(recordedRun(1));
    const ScheduleAnalysis many = analyzeSchedule(recordedRun(8));
    EXPECT_GT(one.poolIdleFraction(ArrayType::E), 0.5);
    EXPECT_GT(one.poolIdleFraction(ArrayType::E),
              many.poolIdleFraction(ArrayType::E));
}

TEST(ScheduleAnalysis, KindBreakdownCoversAllKinds)
{
    const ScheduleAnalysis analysis = analyzeSchedule(recordedRun(2));
    EXPECT_GT(analysis.kindCounts.at(DataflowKind::Dataflow1), 0u);
    EXPECT_GT(analysis.kindCounts.at(DataflowKind::Dataflow2), 0u);
    EXPECT_GT(analysis.kindCounts.at(DataflowKind::Dataflow3), 0u);
    EXPECT_GT(analysis.kindCounts.at(DataflowKind::Host), 0u);
    for (const auto &[kind, seconds] : analysis.kindSeconds)
        EXPECT_GT(seconds, 0.0) << toString(kind);
}

TEST(ScheduleAnalysis, CriticalPathWithinMakespan)
{
    const ScheduleAnalysis analysis = analyzeSchedule(recordedRun(4));
    EXPECT_GT(analysis.criticalPathSeconds, 0.0);
    EXPECT_LE(analysis.criticalPathSeconds,
              analysis.makespan * (1.0 + 1e-9));
}

TEST(ScheduleAnalysis, BubbleFractionBounded)
{
    const ScheduleAnalysis analysis = analyzeSchedule(recordedRun(4));
    EXPECT_GE(analysis.meanBubbleFraction(), 0.0);
    EXPECT_LE(analysis.meanBubbleFraction(), 1.0);
}

TEST(ScheduleAnalysisDeathTest, NeedsARecordedSchedule)
{
    PerfSim sim(ProseConfig::bestPerf());
    const SimReport report =
        sim.run(BertShape{ 2, 768, 12, 3072, 2, 64 });
    EXPECT_DEATH(analyzeSchedule(report), "recorded schedule");
}

} // namespace
} // namespace prose
