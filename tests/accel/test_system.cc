/** @file Tests for the multi-instance (Grace-style) system model. */

#include <gtest/gtest.h>

#include "accel/system.hh"

namespace prose {
namespace {

BertShape
workload(std::uint64_t batch = 32)
{
    return BertShape{ 2, 768, 12, 3072, batch, 256 };
}

TEST(ProseSystem, DefaultIsFourInstances)
{
    // Section 3.2: four NVLinks, one ProSE instance each.
    const ProseSystem system;
    EXPECT_EQ(system.config().instanceCount, 4u);
}

TEST(ProseSystem, RunProducesAggregates)
{
    const ProseSystem system;
    const SystemReport report = system.run(workload());
    EXPECT_GT(report.makespan, 0.0);
    EXPECT_EQ(report.inferences, 32u);
    EXPECT_EQ(report.perInstance.size(), 4u);
    EXPECT_GT(report.systemWatts, 10.0);
    EXPECT_GT(report.inferencesPerSecond(), 0.0);
    EXPECT_GT(report.efficiency(), 0.0);
}

TEST(ProseSystem, BatchShardsEvenly)
{
    const ProseSystem system;
    const SystemReport report = system.run(workload(34));
    std::uint64_t total = 0;
    for (const auto &instance : report.perInstance)
        total += instance.inferences;
    EXPECT_EQ(total, 34u);
}

TEST(ProseSystem, MakespanIsSlowestInstance)
{
    const ProseSystem system;
    const SystemReport report = system.run(workload());
    double slowest = 0.0;
    for (const auto &instance : report.perInstance)
        slowest = std::max(slowest, instance.makespan);
    EXPECT_DOUBLE_EQ(report.makespan, slowest);
}

TEST(ProseSystem, CompletionTimesCoverTheBatchAndEndAtMakespan)
{
    const ProseSystem system;
    const SystemReport report = system.run(workload(34));
    ASSERT_EQ(report.completionSeconds.size(), report.inferences);
    double last = 0.0;
    for (const double end : report.completionSeconds) {
        EXPECT_GT(end, 0.0);
        EXPECT_LE(end, report.makespan);
        last = std::max(last, end);
    }
    EXPECT_DOUBLE_EQ(last, report.makespan);
}

TEST(ProseSystem, FourInstancesBeatOne)
{
    SystemConfig one;
    one.instanceCount = 1;
    SystemConfig four;
    four.instanceCount = 4;
    const SystemReport r1 = ProseSystem(one).run(workload(64));
    const SystemReport r4 = ProseSystem(four).run(workload(64));
    EXPECT_LT(r4.makespan, r1.makespan);
    // Throughput scaling is sub-linear: the shared host CPU and the
    // smaller per-instance batches take their cut.
    EXPECT_GT(r1.makespan / r4.makespan, 1.5);
    EXPECT_LT(r1.makespan / r4.makespan, 4.5);
}

TEST(ProseSystem, PowerScalesWithInstances)
{
    SystemConfig one;
    one.instanceCount = 1;
    SystemConfig four;
    four.instanceCount = 4;
    const SystemReport r1 = ProseSystem(one).run(workload(64));
    const SystemReport r4 = ProseSystem(four).run(workload(64));
    EXPECT_GT(r4.systemWatts, 2.0 * r1.systemWatts);
}

TEST(ProseSystem, SmallBatchUsesFewerInstances)
{
    const ProseSystem system;
    const SystemReport report = system.run(workload(2));
    EXPECT_EQ(report.perInstance.size(), 2u);
    EXPECT_EQ(report.inferences, 2u);
}

TEST(ProseSystem, HostDutyBounded)
{
    const ProseSystem system;
    const SystemReport report = system.run(workload());
    EXPECT_GE(report.hostDuty, 0.0);
    EXPECT_LE(report.hostDuty, 1.0);
}

TEST(ProseSystemDeathTest, ZeroInstancesRejected)
{
    SystemConfig config;
    config.instanceCount = 0;
    EXPECT_DEATH(ProseSystem{ config }, "at least one instance");
}

} // namespace
} // namespace prose
