/** @file Tests for the analytic roofline (Figure 20, derived). */

#include <gtest/gtest.h>

#include "accel/roofline.hh"

namespace prose {
namespace {

BertShape
shape(std::uint64_t batch = 16)
{
    return BertShape{ 12, 768, 12, 3072, batch, 512 };
}

TEST(Roofline, PoolsCoverAllTypes)
{
    const RooflineAnalysis analysis =
        analyzeRoofline(ProseConfig::bestPerf(), shape());
    for (const PoolRoofline &pool : analysis.pools) {
        EXPECT_GT(pool.computeSeconds, 0.0);
        EXPECT_GT(pool.streamBytes, 0u);
        EXPECT_GT(pool.laneShare, 0.0);
    }
}

TEST(Roofline, LaneSharesSumToOne)
{
    const RooflineAnalysis analysis =
        analyzeRoofline(ProseConfig::bestPerf(), shape());
    double total = 0.0;
    for (const PoolRoofline &pool : analysis.pools)
        total += pool.laneShare;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Roofline, BoundingPoolHasLargestCompute)
{
    const RooflineAnalysis analysis =
        analyzeRoofline(ProseConfig::bestPerf(), shape());
    const PoolRoofline &bound = analysis.boundingPool();
    for (const PoolRoofline &pool : analysis.pools)
        EXPECT_LE(pool.computeSeconds, bound.computeSeconds);
}

TEST(Roofline, PredictsDesSaturation)
{
    // At twice the analytic saturation bandwidth, the DES makespan must
    // be within a few percent of its infinite-bandwidth value; at a
    // fifth of it, clearly slower.
    const ProseConfig base = ProseConfig::bestPerf();
    const RooflineAnalysis analysis = analyzeRoofline(base, shape());
    const double knee = analysis.saturationBandwidth();
    ASSERT_GT(knee, 0.0);

    auto makespan_at = [&](double bytes_per_second) {
        ProseConfig config = base;
        config.link = LinkSpec::custom(bytes_per_second / 1e9);
        return PerfSim(config).run(shape()).makespan;
    };
    ProseConfig infinite = base;
    infinite.link = LinkSpec::infinite();
    const double floor = PerfSim(infinite).run(shape()).makespan;

    EXPECT_LT(makespan_at(2.0 * knee), floor * 1.10);
    EXPECT_GT(makespan_at(0.2 * knee), floor * 1.25);
}

TEST(Roofline, ComputeTracksInfiniteBandwidthMakespan)
{
    // The bounding pool's compute time lower-bounds (and with good
    // overlap approximates) the infinite-bandwidth makespan.
    const ProseConfig base = ProseConfig::bestPerf();
    const RooflineAnalysis analysis = analyzeRoofline(base, shape());
    ProseConfig infinite = base;
    infinite.link = LinkSpec::infinite();
    const double makespan = PerfSim(infinite).run(shape()).makespan;
    EXPECT_LT(analysis.boundingPool().computeSeconds, makespan * 1.02);
    EXPECT_GT(analysis.boundingPool().computeSeconds, makespan * 0.3);
}

TEST(Roofline, MoreLanesLowerTheKnee)
{
    ProseConfig few = ProseConfig::bestPerf();
    few.lanes = LanePartition{ 1, 1, 4 };
    ProseConfig many = ProseConfig::bestPerf();
    many.lanes = LanePartition{ 4, 1, 1 };
    const auto a = analyzeRoofline(few, shape());
    const auto b = analyzeRoofline(many, shape());
    // The M pool's knee shrinks when it owns more lanes.
    EXPECT_GT(a.pools[0].kneeBandwidth(), b.pools[0].kneeBandwidth());
}

TEST(Roofline, CompressionMovesTheWallLeft)
{
    // On-link compression shrinks wire traffic, so every pool's knee
    // (and the whole design's saturation bandwidth) drops; the logical
    // streamBytes stay what the dataflows demand.
    const ProseConfig raw = ProseConfig::bestPerf();
    ProseConfig compressed = raw;
    compressed.link.compression = LinkCompression::ZeroRun;
    const RooflineAnalysis a = analyzeRoofline(raw, shape());
    const RooflineAnalysis b = analyzeRoofline(compressed, shape());
    for (std::size_t i = 0; i < a.pools.size(); ++i) {
        EXPECT_EQ(a.pools[i].streamBytes, b.pools[i].streamBytes);
        EXPECT_EQ(a.pools[i].wireStreamBytes, a.pools[i].streamBytes);
        EXPECT_LT(b.pools[i].wireStreamBytes,
                  b.pools[i].streamBytes);
        EXPECT_GT(a.pools[i].kneeBandwidth(),
                  b.pools[i].kneeBandwidth());
    }
    EXPECT_GT(a.saturationBandwidth(), b.saturationBandwidth());
}

TEST(Roofline, LinkBoundPredicateBracketsTheKnee)
{
    const RooflineAnalysis analysis =
        analyzeRoofline(ProseConfig::bestPerf(), shape());
    const double knee = analysis.saturationBandwidth();
    EXPECT_TRUE(analysis.linkBoundAt(knee * 0.5));
    EXPECT_FALSE(analysis.linkBoundAt(knee * 2.0));
}

} // namespace
} // namespace prose
