/** @file Tests for the host-CPU time model. */

#include <gtest/gtest.h>

#include "accel/host_model.hh"

namespace prose {
namespace {

TEST(HostModel, SoftmaxScalesLinearlyInElements)
{
    const HostModel host;
    const double one = host.softmaxSeconds(1'000'000);
    const double ten = host.softmaxSeconds(10'000'000);
    const double overhead = host.spec().taskOverheadSeconds;
    EXPECT_NEAR((ten - overhead) / (one - overhead), 10.0, 1e-9);
}

TEST(HostModel, SoftmaxIncludesFixedOverhead)
{
    const HostModel host;
    EXPECT_GE(host.softmaxSeconds(0), host.spec().taskOverheadSeconds);
}

TEST(HostModel, LayerNormCostsMorePassesThanTranspose)
{
    const HostModel host;
    Op ln;
    ln.kind = OpKind::LayerNorm;
    ln.m = 1024;
    ln.n = 768;
    Op tr = ln;
    tr.kind = OpKind::Transpose;
    EXPECT_GT(host.hostOpSeconds(ln), host.hostOpSeconds(tr));
}

TEST(HostModel, SlotThroughputDividesAggregate)
{
    HostSpec spec;
    spec.elemThroughput = 32e9;
    spec.slots = 16;
    EXPECT_DOUBLE_EQ(spec.slotThroughput(), 2e9);
}

TEST(HostModel, RealisticSoftmaxMagnitude)
{
    // One layer of len-512 batch-128 attention: 1536 matrices of
    // 512x512 exp results. Split across 32 threads, each thread's
    // share must take well under the ~5 ms a layer's compute takes —
    // the paper's claim that streaming softmax batches efficiently.
    const HostModel host;
    const std::uint64_t per_thread_elems = 48ull * 512 * 512;
    EXPECT_LT(host.softmaxSeconds(per_thread_elems), 0.005);
}

TEST(HostModel, SoftmaxGangSpeedsUpBatches)
{
    HostSpec slow;
    slow.softmaxGang = 1;
    HostSpec fast;
    fast.softmaxGang = 8;
    EXPECT_GT(HostModel(slow).softmaxSeconds(1'000'000),
              HostModel(fast).softmaxSeconds(1'000'000));
}

TEST(HostModelDeathTest, ZeroThroughputRejected)
{
    HostSpec spec;
    spec.elemThroughput = 0.0;
    EXPECT_DEATH(HostModel{ spec }, "positive");
}

} // namespace
} // namespace prose
