/** @file Tests for the length-bucketed batcher. */

#include <gtest/gtest.h>

#include "accel/batcher.hh"

namespace prose {
namespace {

TEST(Batcher, EverySequenceLandsInOneBatch)
{
    const std::vector<std::size_t> lengths{ 30, 100, 100, 500, 1800,
                                            62,  510, 511 };
    const BatchPlan plan = planBatches(lengths);
    EXPECT_EQ(plan.totalSequences, lengths.size());
    std::uint64_t sequences = 0;
    for (const auto &batch : plan.batches)
        sequences += batch.sequences;
    EXPECT_EQ(sequences, lengths.size());
}

TEST(Batcher, BucketsChosenTightly)
{
    // 100 residues + CLS/SEP = 102 tokens -> the 128 bucket.
    const BatchPlan plan = planBatches({ 100 });
    ASSERT_EQ(plan.batches.size(), 1u);
    EXPECT_EQ(plan.batches[0].paddedLength, 128u);
    EXPECT_EQ(plan.batches[0].realTokens, 102u);
    EXPECT_EQ(plan.batches[0].padTokens(), 26u);
}

TEST(Batcher, ExactFitHasNoPadding)
{
    const BatchPlan plan = planBatches({ 62, 62 }); // 64 tokens each
    ASSERT_EQ(plan.batches.size(), 1u);
    EXPECT_EQ(plan.batches[0].padTokens(), 0u);
    EXPECT_DOUBLE_EQ(plan.paddingOverhead(), 0.0);
}

TEST(Batcher, OverlongSequencesTruncateToLastBucket)
{
    const BatchPlan plan = planBatches({ 5000 });
    ASSERT_EQ(plan.batches.size(), 1u);
    EXPECT_EQ(plan.batches[0].paddedLength, 2048u);
    EXPECT_EQ(plan.batches[0].realTokens, 2048u);
}

TEST(Batcher, MaxBatchSplitsLargeGroups)
{
    BatcherSpec spec;
    spec.maxBatch = 3;
    const std::vector<std::size_t> lengths(10, 100);
    const BatchPlan plan = planBatches(lengths, spec);
    EXPECT_EQ(plan.batches.size(), 4u); // 3+3+3+1
    EXPECT_EQ(plan.batches.back().sequences, 1u);
}

TEST(Batcher, PaddingOverheadMatchesHandComputation)
{
    // One 30-residue (32 tokens) and one 62-residue (64 tokens) protein
    // both land in the 64 bucket: 128 padded, 96 real.
    const BatchPlan plan = planBatches({ 30, 62 });
    ASSERT_EQ(plan.batches.size(), 1u);
    EXPECT_EQ(plan.paddedTokens, 128u);
    EXPECT_EQ(plan.realTokens, 96u);
    EXPECT_NEAR(plan.paddingOverhead(), 0.25, 1e-12);
}

TEST(Batcher, BucketingBeatsMaxLengthPadding)
{
    // A realistic length mixture: bucketing should waste far fewer
    // tokens than padding everything to the longest sequence.
    std::vector<std::size_t> lengths;
    for (int i = 0; i < 50; ++i)
        lengths.push_back(80 + (i * 13) % 400);
    lengths.push_back(1900); // one giant protein
    const BatchPlan plan = planBatches(lengths);

    std::uint64_t real = 0;
    for (std::size_t residues : lengths)
        real += residues + 2;
    const std::uint64_t max_pad = 2048ull * lengths.size();
    const double naive_overhead =
        1.0 - static_cast<double>(real) / max_pad;
    EXPECT_LT(plan.paddingOverhead(), 0.5 * naive_overhead);
}

TEST(Batcher, SimulatePlanRunsEveryBatch)
{
    const BatchPlan plan = planBatches({ 50, 50, 400, 1000 });
    const BertShape model{ 2, 768, 12, 3072, 1, 64 };
    const double seconds =
        simulateBatchPlan(plan, ProseConfig::bestPerf(), model);
    EXPECT_GT(seconds, 0.0);

    // Must exceed the largest single-batch time (batches serialize).
    PerfSim sim(ProseConfig::bestPerf());
    BertShape biggest = model;
    biggest.batch = 1;
    biggest.seqLen = 1024;
    EXPECT_GT(seconds, sim.run(biggest).makespan * 0.999);
}

TEST(BatcherDeathTest, BadSpecsPanic)
{
    BatcherSpec no_buckets;
    no_buckets.buckets.clear();
    EXPECT_DEATH(planBatches({ 10 }, no_buckets), "buckets");

    BatcherSpec unsorted;
    unsorted.buckets = { 128, 64 };
    EXPECT_DEATH(planBatches({ 10 }, unsorted), "increasing");

    BatcherSpec zero_batch;
    zero_batch.maxBatch = 0;
    EXPECT_DEATH(planBatches({ 10 }, zero_batch), "maxBatch");
}

} // namespace
} // namespace prose
