/** @file Tests for the per-run energy ledger. */

#include <gtest/gtest.h>

#include "accel/energy_report.hh"

namespace prose {
namespace {

std::pair<ProseConfig, SimReport>
run(std::uint64_t batch = 8)
{
    const ProseConfig config = ProseConfig::bestPerf();
    PerfSim sim(config);
    return { config, sim.run(BertShape{ 2, 768, 12, 3072, batch, 256 }) };
}

TEST(EnergyReport, AllComponentsPositive)
{
    const auto [config, report] = run();
    const EnergyReport energy = buildEnergyReport(config, report);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_GT(energy.arrayBusyJoules[i], 0.0) << i;
        EXPECT_GE(energy.arrayIdleJoules[i], 0.0) << i;
    }
    EXPECT_GE(energy.cpuJoules, 0.0);
    EXPECT_GT(energy.dramJoules, 0.0);
    EXPECT_GT(energy.linkJoules, 0.0);
    EXPECT_GT(energy.totalJoules(), 0.0);
}

TEST(EnergyReport, MeanWattsWithinSystemEnvelope)
{
    // The ledger's mean power must sit between the idle floor and the
    // all-busy ceiling of the configuration.
    const auto [config, report] = run();
    const EnergySpec spec;
    const EnergyReport energy = buildEnergyReport(config, report, spec);
    const PowerModel power;
    const double all_busy = power.systemPowerWatts(
        config.groups, config.partialInputBuffer, 1.0);
    const double mean = energy.meanWatts(report);
    EXPECT_LT(mean, all_busy * 1.3); // link adder can exceed slightly
    EXPECT_GT(mean,
              power.arrayPowerWatts(config.groups, true) *
                  spec.idlePowerFraction);
}

TEST(EnergyReport, JoulesPerInferenceConsistent)
{
    const auto [config, report] = run(16);
    const EnergyReport energy = buildEnergyReport(config, report);
    EXPECT_NEAR(energy.joulesPerInference(report) * 16,
                energy.totalJoules(), 1e-9);
}

TEST(EnergyReport, IdleFractionKnobScalesIdleEnergy)
{
    const auto [config, report] = run();
    EnergySpec cold;
    cold.idlePowerFraction = 0.0;
    EnergySpec hot;
    hot.idlePowerFraction = 1.0;
    const EnergyReport e_cold = buildEnergyReport(config, report, cold);
    const EnergyReport e_hot = buildEnergyReport(config, report, hot);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(e_cold.arrayIdleJoules[i], 0.0);
        EXPECT_GT(e_hot.arrayIdleJoules[i],
                  e_cold.arrayIdleJoules[i]);
    }
    EXPECT_DOUBLE_EQ(e_cold.arrayBusyJoules[0],
                     e_hot.arrayBusyJoules[0]);
}

TEST(EnergyReport, LinkEnergyTracksTraffic)
{
    const auto [config, report] = run();
    EnergySpec spec;
    const EnergyReport energy = buildEnergyReport(config, report, spec);
    EXPECT_DOUBLE_EQ(energy.linkJoules,
                     (report.bytesIn + report.bytesOut) *
                         spec.linkJoulesPerByte);
}

TEST(EnergyReport, BusierRunBurnsMoreArrayEnergy)
{
    const auto [config, small] = run(4);
    const auto [config2, large] = run(32);
    const EnergyReport e_small = buildEnergyReport(config, small);
    const EnergyReport e_large = buildEnergyReport(config2, large);
    double busy_small = 0.0, busy_large = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
        busy_small += e_small.arrayBusyJoules[i];
        busy_large += e_large.arrayBusyJoules[i];
    }
    EXPECT_GT(busy_large, busy_small);
}

} // namespace
} // namespace prose
