/** @file Tests for mix/lane spec parsing. */

#include <gtest/gtest.h>

#include "accel/mix_parse.hh"

namespace prose {
namespace {

TEST(MixParse, ParsesPaperBestPerf)
{
    const auto groups = parseMixSpec("M64x2,G16x10,E16x22");
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0].geometry.type, ArrayType::M);
    EXPECT_EQ(groups[0].geometry.dim, 64u);
    EXPECT_EQ(groups[0].count, 2u);
    EXPECT_TRUE(groups[1].geometry.hasGelu);
    EXPECT_EQ(groups[1].count, 10u);
    EXPECT_TRUE(groups[2].geometry.hasExp);
    EXPECT_EQ(groups[2].count, 22u);
}

TEST(MixParse, AcceptsWhitespaceAndCase)
{
    const auto groups = parseMixSpec(" m64X1 , g32x3 , e16x4 ");
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[1].geometry.dim, 32u);
}

TEST(MixParse, LaneSpec)
{
    const LanePartition lanes = parseLaneSpec("3,1,2");
    EXPECT_EQ(lanes.mLanes, 3u);
    EXPECT_EQ(lanes.gLanes, 1u);
    EXPECT_EQ(lanes.eLanes, 2u);
}

TEST(MixParse, ConfigFromSpecValidates)
{
    const ProseConfig config = configFromSpec(
        "M64x2,G16x10,E16x22", "3,1,2", LinkSpec::nvlink2At90());
    EXPECT_EQ(config.totalPes(), 16384u);
    EXPECT_EQ(config.name, "M64x2,G16x10,E16x22");
}

TEST(MixParseDeathTest, MalformedGroupIsFatal)
{
    EXPECT_EXIT(parseMixSpec("M64-2"), testing::ExitedWithCode(1),
                "must look like");
    EXPECT_EXIT(parseMixSpec("Q64x2,G16x1,E16x1"),
                testing::ExitedWithCode(1), "unknown array type");
    EXPECT_EXIT(parseMixSpec("M64x0,G16x1,E16x1"),
                testing::ExitedWithCode(1), "zero count");
    EXPECT_EXIT(parseMixSpec("M64xtwo"), testing::ExitedWithCode(1),
                "not an in-range number");
    EXPECT_EXIT(parseMixSpec(""), testing::ExitedWithCode(1), "empty");
}

TEST(MixParseDeathTest, ZeroDimensionIsFatal)
{
    EXPECT_EXIT(parseMixSpec("M0x2,G16x1,E16x1"),
                testing::ExitedWithCode(1), "zero array dimension");
}

TEST(MixParseDeathTest, OverflowingCountIsCleanError)
{
    // A digit string past 32 bits must be a fatal() diagnostic, not an
    // uncaught std::out_of_range from the parser internals.
    EXPECT_EXIT(parseMixSpec("M64x99999999999999999999"),
                testing::ExitedWithCode(1), "not an in-range number");
    EXPECT_EXIT(parseMixSpec("M4294967296x2"),
                testing::ExitedWithCode(1), "not an in-range number");
    EXPECT_EXIT(parseLaneSpec("3,99999999999999999999,3"),
                testing::ExitedWithCode(1), "not an in-range number");
}

// Fuzzing regressions (see tests/fuzz/corpus/mix_parse): dimensions and
// counts used to be unbounded, so "M99999x99999" survived parsing and
// only died OOM-allocating the instance list downstream.
TEST(MixParseDeathTest, SanityBoundsRejectHugeDimsAndCounts)
{
    EXPECT_EXIT(parseMixSpec("M8192x1,G16x1,E16x1"),
                testing::ExitedWithCode(1), "sanity bound");
    EXPECT_EXIT(parseMixSpec("M64x1,G16x1,E16x99999"),
                testing::ExitedWithCode(1), "sanity bound");
}

TEST(MixParse, BoundaryDimAndCountStillParse)
{
    const auto groups = parseMixSpec("M4096x1,G16x1,E16x65536");
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0].geometry.dim, 4096u);
    EXPECT_EQ(groups[2].count, 65536u);
}

// configFromSpec assembles text input into a config; a malformed spec
// must die in fatal() (user error, exit 1) before it can ever reach
// ProseConfig::validate()'s PROSE_ASSERT (simulator bug, abort).
TEST(MixParseDeathTest, ConfigFromSpecRejectsLaneMismatchCleanly)
{
    EXPECT_EXIT(configFromSpec("M64x2,G16x1,E16x1", "9,9,9",
                               LinkSpec::nvlink2At90()),
                testing::ExitedWithCode(1), "lane");
}

TEST(MixParseDeathTest, ConfigFromSpecRejectsMissingTypeCleanly)
{
    EXPECT_EXIT(configFromSpec("G16x4,E16x4", "3,1,2",
                               LinkSpec::nvlink2At90()),
                testing::ExitedWithCode(1), "at least one array");
}

TEST(MixParseDeathTest, DuplicateTypeIsFatal)
{
    EXPECT_EXIT(parseMixSpec("M64x1,M64x1,G16x1,E16x1"),
                testing::ExitedWithCode(1), "appears twice");
}

TEST(MixParseDeathTest, BadLaneSpecIsFatal)
{
    EXPECT_EXIT(parseLaneSpec("3,1"), testing::ExitedWithCode(1),
                "three numbers");
    EXPECT_EXIT(parseLaneSpec("3,0,3"), testing::ExitedWithCode(1),
                "at least one lane");
}

} // namespace
} // namespace prose
