/** @file Tests for the NVLink model and lane partitions. */

#include <gtest/gtest.h>

#include "accel/link_model.hh"

namespace prose {
namespace {

TEST(LinkSpec, PaperBandwidthPoints)
{
    EXPECT_DOUBLE_EQ(LinkSpec::nvlink2At80().totalBytesPerSecond, 240e9);
    EXPECT_DOUBLE_EQ(LinkSpec::nvlink2At90().totalBytesPerSecond, 270e9);
    EXPECT_DOUBLE_EQ(LinkSpec::nvlink3At80().totalBytesPerSecond, 480e9);
    EXPECT_DOUBLE_EQ(LinkSpec::nvlink3At90().totalBytesPerSecond, 540e9);
    EXPECT_GT(LinkSpec::infinite().totalBytesPerSecond, 1e15);
}

TEST(LinkSpec, Nvlink2HasSixLanes)
{
    // Section 4.2: 6 x 45 GB/s lanes at 90%.
    const LinkSpec link = LinkSpec::nvlink2At90();
    EXPECT_EQ(link.lanes, 6u);
    EXPECT_DOUBLE_EQ(link.laneBytesPerSecond(), 45e9);
}

TEST(LinkSpec, PaperSweepHasFivePoints)
{
    const auto sweep = LinkSpec::paperSweep();
    ASSERT_EQ(sweep.size(), 5u);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GT(sweep[i].totalBytesPerSecond,
                  sweep[i - 1].totalBytesPerSecond);
}

TEST(LinkSpec, CustomBandwidth)
{
    const LinkSpec link = LinkSpec::custom(360.0);
    EXPECT_DOUBLE_EQ(link.totalBytesPerSecond, 360e9);
}

TEST(LinkSpec, CustomKeepsNvlink2LaneGranularity)
{
    // custom() models "the same physical link, different achievable
    // rate": the NVLink 2.0 lane count, so per-lane bandwidth scales
    // with the total and partitions stay comparable across a sweep.
    const LinkSpec link = LinkSpec::custom(360.0);
    EXPECT_EQ(link.lanes, 6u);
    EXPECT_DOUBLE_EQ(link.laneBytesPerSecond(), 60e9);
    EXPECT_FALSE(link.isInfinite());
    EXPECT_TRUE(LinkSpec::infinite().isInfinite());
}

TEST(LinkSpec, ValidateAcceptsFactories)
{
    for (const LinkSpec &link : LinkSpec::paperSweep())
        link.validate(); // must not panic
}

TEST(LinkSpecDeathTest, ValidateRejectsBadSpecs)
{
    LinkSpec no_lanes = LinkSpec::nvlink2At80();
    no_lanes.lanes = 0;
    EXPECT_DEATH(no_lanes.validate(), "at least one lane");

    LinkSpec bad_fraction = LinkSpec::nvlink2At80();
    bad_fraction.zeroFraction = 1.5;
    EXPECT_DEATH(bad_fraction.validate(), "zeroFraction");
}

TEST(StreamSpec, DescribeNamesTheModeAndDepth)
{
    StreamSpec spec;
    EXPECT_EQ(spec.describe(), "double-bufferedx2");
    spec.mode = StreamMode::Serialized;
    EXPECT_EQ(spec.describe(), "serialized");
    spec.mode = StreamMode::Ideal;
    EXPECT_EQ(spec.describe(), "ideal");
}

TEST(StreamSpecDeathTest, ValidateRejectsShallowDoubleBuffer)
{
    StreamSpec spec;
    spec.bufferDepth = 1;
    EXPECT_DEATH(spec.validate(), "two buffers");
    spec.bufferDepth = 0;
    EXPECT_DEATH(spec.validate(), "depth");
}

TEST(LinkCompression, NoneIsPassthrough)
{
    const LinkSpec link = LinkSpec::nvlink2At80();
    EXPECT_DOUBLE_EQ(link.compressionRatio(), 1.0);
    EXPECT_EQ(link.wireBytes(0), 0u);
    EXPECT_EQ(link.wireBytes(1 << 20), std::uint64_t{ 1 } << 20);
}

TEST(LinkCompression, WireBytesShrinkAndNeverExpand)
{
    for (const LinkCompression codec :
         { LinkCompression::ZeroRun, LinkCompression::Delta }) {
        LinkSpec link = LinkSpec::nvlink2At80();
        link.compression = codec;
        const double ratio = link.compressionRatio();
        EXPECT_GT(ratio, 0.0);
        EXPECT_LE(ratio, 1.0);
        // Representative payloads, including tiny ones where ceil
        // rounding could otherwise expand the frame.
        for (const std::uint64_t logical :
             { std::uint64_t{ 1 }, std::uint64_t{ 2 },
               std::uint64_t{ 4096 }, std::uint64_t{ 1 } << 24 }) {
            const std::uint64_t wire = link.wireBytes(logical);
            EXPECT_LE(wire, logical);
            EXPECT_GT(wire, 0u);
        }
        EXPECT_EQ(link.wireBytes(0), 0u);
    }
}

TEST(LinkCompression, RatiosFollowTheWorkloadStatistics)
{
    // More zeros -> smaller ZeroRun ratio; more high-byte hits ->
    // smaller Delta ratio. All-miss workloads degrade to passthrough
    // (the clamp), never expansion.
    LinkSpec zero = LinkSpec::nvlink2At80();
    zero.compression = LinkCompression::ZeroRun;
    zero.zeroFraction = 0.0;
    EXPECT_DOUBLE_EQ(zero.compressionRatio(), 1.0);
    const double at25 =
        (zero.zeroFraction = 0.25, zero.compressionRatio());
    const double at75 =
        (zero.zeroFraction = 0.75, zero.compressionRatio());
    EXPECT_LT(at75, at25);
    EXPECT_LT(at25, 1.0);

    LinkSpec delta = LinkSpec::nvlink2At80();
    delta.compression = LinkCompression::Delta;
    delta.deltaHitFraction = 0.0;
    EXPECT_DOUBLE_EQ(delta.compressionRatio(), 1.0);
    delta.deltaHitFraction = 1.0;
    // All hits: half the payload plus the block headers.
    EXPECT_NEAR(delta.compressionRatio(), 0.5 + 1.0 / 128.0, 1e-12);
}

TEST(LanePartition, BandwidthSplitsByLaneCount)
{
    const LinkSpec link = LinkSpec::nvlink2At90();
    const LanePartition lanes{ 3, 1, 2 };
    EXPECT_DOUBLE_EQ(lanes.bandwidthFor(ArrayType::M, link), 135e9);
    EXPECT_DOUBLE_EQ(lanes.bandwidthFor(ArrayType::G, link), 45e9);
    EXPECT_DOUBLE_EQ(lanes.bandwidthFor(ArrayType::E, link), 90e9);
}

TEST(LanePartition, TotalsAndAccessors)
{
    const LanePartition lanes{ 2, 2, 2 };
    EXPECT_EQ(lanes.total(), 6u);
    EXPECT_EQ(lanes.lanesFor(ArrayType::M), 2u);
    EXPECT_EQ(lanes.lanesFor(ArrayType::E), 2u);
}

TEST(LanePartition, EnumerateCoversAllPositiveSplits)
{
    const auto options = LanePartition::enumerate(6);
    // Compositions of 6 into 3 positive parts: C(5,2) = 10.
    EXPECT_EQ(options.size(), 10u);
    for (const auto &option : options) {
        EXPECT_EQ(option.total(), 6u);
        EXPECT_GE(option.mLanes, 1u);
        EXPECT_GE(option.gLanes, 1u);
        EXPECT_GE(option.eLanes, 1u);
    }
}

TEST(LanePartition, EnumerateTwelveLanes)
{
    // C(11,2) = 55 compositions for the NVLink 3.0 lane count.
    EXPECT_EQ(LanePartition::enumerate(12).size(), 55u);
}

TEST(LanePartition, EnumerateThreeLanesIsTheSingleton)
{
    // Three lanes leave exactly one way to feed every type.
    const auto options = LanePartition::enumerate(3);
    ASSERT_EQ(options.size(), 1u);
    EXPECT_EQ(options[0].mLanes, 1u);
    EXPECT_EQ(options[0].gLanes, 1u);
    EXPECT_EQ(options[0].eLanes, 1u);
}

TEST(LanePartitionDeathTest, EnumerateRejectsStarvedLinks)
{
    // Fewer than three lanes cannot feed all three array types; a
    // one-lane link must be rejected, not silently enumerate nothing.
    EXPECT_DEATH(LanePartition::enumerate(1), "at least one lane");
    EXPECT_DEATH(LanePartition::enumerate(0), "at least one lane");
}

TEST(LanePartitionDeathTest, MismatchedPartitionPanics)
{
    const LinkSpec link = LinkSpec::nvlink2At90();
    const LanePartition lanes{ 2, 2, 3 }; // 7 lanes on a 6-lane link
    EXPECT_DEATH(lanes.bandwidthFor(ArrayType::M, link), "cover");
}

} // namespace
} // namespace prose
