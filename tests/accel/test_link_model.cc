/** @file Tests for the NVLink model and lane partitions. */

#include <gtest/gtest.h>

#include "accel/link_model.hh"

namespace prose {
namespace {

TEST(LinkSpec, PaperBandwidthPoints)
{
    EXPECT_DOUBLE_EQ(LinkSpec::nvlink2At80().totalBytesPerSecond, 240e9);
    EXPECT_DOUBLE_EQ(LinkSpec::nvlink2At90().totalBytesPerSecond, 270e9);
    EXPECT_DOUBLE_EQ(LinkSpec::nvlink3At80().totalBytesPerSecond, 480e9);
    EXPECT_DOUBLE_EQ(LinkSpec::nvlink3At90().totalBytesPerSecond, 540e9);
    EXPECT_GT(LinkSpec::infinite().totalBytesPerSecond, 1e15);
}

TEST(LinkSpec, Nvlink2HasSixLanes)
{
    // Section 4.2: 6 x 45 GB/s lanes at 90%.
    const LinkSpec link = LinkSpec::nvlink2At90();
    EXPECT_EQ(link.lanes, 6u);
    EXPECT_DOUBLE_EQ(link.laneBytesPerSecond(), 45e9);
}

TEST(LinkSpec, PaperSweepHasFivePoints)
{
    const auto sweep = LinkSpec::paperSweep();
    ASSERT_EQ(sweep.size(), 5u);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GT(sweep[i].totalBytesPerSecond,
                  sweep[i - 1].totalBytesPerSecond);
}

TEST(LinkSpec, CustomBandwidth)
{
    const LinkSpec link = LinkSpec::custom(360.0);
    EXPECT_DOUBLE_EQ(link.totalBytesPerSecond, 360e9);
}

TEST(LanePartition, BandwidthSplitsByLaneCount)
{
    const LinkSpec link = LinkSpec::nvlink2At90();
    const LanePartition lanes{ 3, 1, 2 };
    EXPECT_DOUBLE_EQ(lanes.bandwidthFor(ArrayType::M, link), 135e9);
    EXPECT_DOUBLE_EQ(lanes.bandwidthFor(ArrayType::G, link), 45e9);
    EXPECT_DOUBLE_EQ(lanes.bandwidthFor(ArrayType::E, link), 90e9);
}

TEST(LanePartition, TotalsAndAccessors)
{
    const LanePartition lanes{ 2, 2, 2 };
    EXPECT_EQ(lanes.total(), 6u);
    EXPECT_EQ(lanes.lanesFor(ArrayType::M), 2u);
    EXPECT_EQ(lanes.lanesFor(ArrayType::E), 2u);
}

TEST(LanePartition, EnumerateCoversAllPositiveSplits)
{
    const auto options = LanePartition::enumerate(6);
    // Compositions of 6 into 3 positive parts: C(5,2) = 10.
    EXPECT_EQ(options.size(), 10u);
    for (const auto &option : options) {
        EXPECT_EQ(option.total(), 6u);
        EXPECT_GE(option.mLanes, 1u);
        EXPECT_GE(option.gLanes, 1u);
        EXPECT_GE(option.eLanes, 1u);
    }
}

TEST(LanePartition, EnumerateTwelveLanes)
{
    // C(11,2) = 55 compositions for the NVLink 3.0 lane count.
    EXPECT_EQ(LanePartition::enumerate(12).size(), 55u);
}

TEST(LanePartitionDeathTest, MismatchedPartitionPanics)
{
    const LinkSpec link = LinkSpec::nvlink2At90();
    const LanePartition lanes{ 2, 2, 3 }; // 7 lanes on a 6-lane link
    EXPECT_DEATH(lanes.bandwidthFor(ArrayType::M, link), "cover");
}

} // namespace
} // namespace prose
