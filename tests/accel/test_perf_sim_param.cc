/** @file Parameterized DES invariant sweeps: every named configuration
 *  crossed with every workload length must satisfy the simulator's
 *  conservation and sanity properties. */

#include <gtest/gtest.h>

#include <tuple>

#include "accel/perf_sim.hh"

namespace prose {
namespace {

using SweepParam = std::tuple<std::string, std::uint64_t>;

ProseConfig
configByName(const std::string &name)
{
    if (name == "bestPerf")
        return ProseConfig::bestPerf();
    if (name == "mostEfficient")
        return ProseConfig::mostEfficient();
    if (name == "homogeneous")
        return ProseConfig::homogeneous();
    if (name == "bestPerfPlus")
        return ProseConfig::bestPerfPlus();
    return ProseConfig::homogeneousPlus();
}

class PerfSimSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    SimReport
    runOnce() const
    {
        const auto &[name, len] = GetParam();
        PerfSim sim(configByName(name));
        return sim.run(BertShape{ 2, 768, 12, 3072, 8, len });
    }
};

TEST_P(PerfSimSweep, MakespanPositiveAndFinite)
{
    const SimReport report = runOnce();
    EXPECT_GT(report.makespan, 0.0);
    EXPECT_LT(report.makespan, 60.0); // nothing takes a minute here
}

TEST_P(PerfSimSweep, UtilizationWithinBounds)
{
    const SimReport report = runOnce();
    for (ArrayType type : { ArrayType::M, ArrayType::G, ArrayType::E }) {
        EXPECT_GE(report.utilization(type), 0.0);
        EXPECT_LE(report.utilization(type), 1.0 + 1e-9);
    }
}

TEST_P(PerfSimSweep, TrafficAndWorkNonZero)
{
    const SimReport report = runOnce();
    EXPECT_GT(report.bytesIn, 0u);
    EXPECT_GT(report.bytesOut, 0u);
    EXPECT_GT(report.totalFlops, 0.0);
    EXPECT_GT(report.hostBusySeconds, 0.0);
}

TEST_P(PerfSimSweep, FlopsMatchTraceExactly)
{
    const auto &[name, len] = GetParam();
    const SimReport report = runOnce();
    const BertShape shape{ 2, 768, 12, 3072, 8, len };
    // The per-thread batch split preserves total FLOPs exactly because
    // every op's work is linear in the batch dimension.
    const double expected = synthesizeBertTrace(shape).totalFlops();
    EXPECT_NEAR(report.totalFlops, expected, expected * 1e-12);
}

TEST_P(PerfSimSweep, InfiniteBandwidthNeverSlower)
{
    const auto &[name, len] = GetParam();
    ProseConfig finite = configByName(name);
    ProseConfig infinite = configByName(name);
    infinite.link = LinkSpec::infinite();
    const BertShape shape{ 2, 768, 12, 3072, 8, len };
    const double t_finite = PerfSim(finite).run(shape).makespan;
    const double t_infinite = PerfSim(infinite).run(shape).makespan;
    EXPECT_LE(t_infinite, t_finite * 1.0001);
}

TEST_P(PerfSimSweep, AchievedFlopsBelowConfiguredPeak)
{
    const auto &[name, len] = GetParam();
    const SimReport report = runOnce();
    const ProseConfig config = configByName(name);
    // Peak: every PE doing one MAC (2 FLOPs) per matmul-clock cycle.
    const double peak = static_cast<double>(config.totalPes()) * 2.0 *
                        ghz(1.6);
    EXPECT_LT(report.achievedFlops(), peak);
}

TEST_P(PerfSimSweep, RuntimeMonotoneInLength)
{
    const auto &[name, len] = GetParam();
    if (len >= 1024)
        GTEST_SKIP();
    const ProseConfig config = configByName(name);
    const BertShape shape{ 2, 768, 12, 3072, 8, len };
    BertShape longer = shape;
    longer.seqLen = len * 2;
    EXPECT_LT(PerfSim(config).run(shape).makespan,
              PerfSim(config).run(longer).makespan);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsByLength, PerfSimSweep,
    ::testing::Combine(::testing::Values("bestPerf", "mostEfficient",
                                         "homogeneous", "bestPerfPlus",
                                         "homogeneousPlus"),
                       ::testing::Values(64u, 256u, 1024u)),
    [](const auto &param_info) {
        return std::get<0>(param_info.param) + "_len" +
               std::to_string(std::get<1>(param_info.param));
    });

} // namespace
} // namespace prose
