/** @file Tests for the ASCII Gantt renderer. */

#include <gtest/gtest.h>

#include "accel/gantt.hh"

namespace prose {
namespace {

SimReport
recordedRun(std::uint32_t threads = 2)
{
    SimOptions options;
    options.recordSchedule = true;
    ProseConfig config = ProseConfig::bestPerf();
    config.threads = threads;
    PerfSim sim(config, TimingModel{}, HostModel{}, options);
    return sim.run(BertShape{ 2, 768, 12, 3072, threads, 64 });
}

TEST(Gantt, RendersOneRowPerThread)
{
    const SimReport report = recordedRun(3);
    const std::string text = ganttString(report);
    EXPECT_NE(text.find("thread 0"), std::string::npos);
    EXPECT_NE(text.find("thread 1"), std::string::npos);
    EXPECT_NE(text.find("thread 2"), std::string::npos);
    EXPECT_NE(text.find("legend"), std::string::npos);
}

TEST(Gantt, ContainsAllActivitySymbols)
{
    const std::string text = ganttString(recordedRun(2));
    for (char symbol : { '1', '2', '3', 'h' })
        EXPECT_NE(text.find(symbol), std::string::npos) << symbol;
}

TEST(Gantt, RowsHaveRequestedWidth)
{
    GanttOptions options;
    options.columns = 40;
    const std::string text = ganttString(recordedRun(1), options);
    // Each row is |<columns>|; check the bar width.
    const auto bar_start = text.find('|');
    ASSERT_NE(bar_start, std::string::npos);
    const auto bar_end = text.find('|', bar_start + 1);
    ASSERT_NE(bar_end, std::string::npos);
    EXPECT_EQ(bar_end - bar_start - 1, 40u);
}

TEST(Gantt, PerPoolRowsNamed)
{
    GanttOptions options;
    options.perPool = true;
    const std::string text = ganttString(recordedRun(2), options);
    EXPECT_NE(text.find("pool M"), std::string::npos);
    EXPECT_NE(text.find("pool G"), std::string::npos);
    EXPECT_NE(text.find("pool E"), std::string::npos);
    EXPECT_EQ(text.find("thread"), std::string::npos);
}

TEST(Gantt, MaxRowsClipsOutput)
{
    GanttOptions options;
    options.maxRows = 2;
    const std::string text = ganttString(recordedRun(4), options);
    EXPECT_NE(text.find("more rows"), std::string::npos);
}

TEST(GanttDeathTest, NeedsARecordedSchedule)
{
    PerfSim sim(ProseConfig::bestPerf());
    const SimReport report =
        sim.run(BertShape{ 2, 768, 12, 3072, 2, 64 });
    EXPECT_DEATH(ganttString(report), "recorded schedule");
}

} // namespace
} // namespace prose
