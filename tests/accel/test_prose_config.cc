/** @file Tests for the Table 4 named configurations. */

#include <gtest/gtest.h>

#include "accel/prose_config.hh"

namespace prose {
namespace {

TEST(ProseConfig, BestPerfMatchesTable4)
{
    const ProseConfig config = ProseConfig::bestPerf();
    EXPECT_EQ(config.totalPes(), 16384u);
    EXPECT_EQ(config.arrayCount(ArrayType::M), 2u);
    EXPECT_EQ(config.arrayCount(ArrayType::G), 10u);
    EXPECT_EQ(config.arrayCount(ArrayType::E), 22u);
}

TEST(ProseConfig, MostEfficientMatchesTable4)
{
    const ProseConfig config = ProseConfig::mostEfficient();
    EXPECT_EQ(config.totalPes(), 16384u);
    EXPECT_EQ(config.arrayCount(ArrayType::G), 3u);
    EXPECT_EQ(config.arrayCount(ArrayType::E), 20u);
}

TEST(ProseConfig, PlusConfigsHave20kPes)
{
    EXPECT_EQ(ProseConfig::bestPerfPlus().totalPes(), 20480u);
    EXPECT_EQ(ProseConfig::mostEfficientPlus().totalPes(), 20480u);
    EXPECT_EQ(ProseConfig::homogeneousPlus().totalPes(), 20480u);
}

TEST(ProseConfig, HomogeneousUses64x64Only)
{
    const ProseConfig config = ProseConfig::homogeneous();
    EXPECT_EQ(config.totalPes(), 16384u);
    for (const auto &group : config.groups)
        EXPECT_EQ(group.geometry.dim, 64u);
}

TEST(ProseConfig, InstancesFlattenGroups)
{
    const ProseConfig config = ProseConfig::bestPerf();
    const auto instances = config.instances();
    EXPECT_EQ(instances.size(), 34u); // 2 + 10 + 22
    EXPECT_EQ(instances.front().type, ArrayType::M);
    EXPECT_EQ(instances.back().type, ArrayType::E);
}

TEST(ProseConfig, DefaultThreadsIs32)
{
    // Section 3.1: "Through experimentation, we chose 32 threads."
    EXPECT_EQ(ProseConfig::bestPerf().threads, 32u);
}

TEST(ProseConfig, DescribeListsEverything)
{
    const std::string text = ProseConfig::mostEfficient().describe();
    EXPECT_NE(text.find("MostEfficient"), std::string::npos);
    EXPECT_NE(text.find("16384 PEs"), std::string::npos);
    EXPECT_NE(text.find("32 threads"), std::string::npos);
}

TEST(ProseConfig, TypeCapabilitiesConsistent)
{
    for (const ProseConfig &config :
         { ProseConfig::bestPerf(), ProseConfig::mostEfficient(),
           ProseConfig::homogeneous(), ProseConfig::bestPerfPlus(),
           ProseConfig::homogeneousPlus() }) {
        for (const auto &group : config.groups) {
            switch (group.geometry.type) {
              case ArrayType::M:
                EXPECT_FALSE(group.geometry.hasGelu);
                EXPECT_FALSE(group.geometry.hasExp);
                break;
              case ArrayType::G:
                EXPECT_TRUE(group.geometry.hasGelu);
                break;
              case ArrayType::E:
                EXPECT_TRUE(group.geometry.hasExp);
                break;
            }
        }
    }
}

TEST(ProseConfigDeathTest, MissingTypePanics)
{
    ProseConfig config = ProseConfig::bestPerf();
    config.groups.erase(config.groups.begin()); // drop the M group
    EXPECT_DEATH(config.validate(), "every array type");
}

TEST(ProseConfigDeathTest, LanesMustCoverLink)
{
    ProseConfig config = ProseConfig::bestPerf();
    config.lanes = LanePartition{ 1, 1, 1 };
    EXPECT_DEATH(config.validate(), "lane partition");
}

} // namespace
} // namespace prose
