/** @file Tests for the discrete-event performance simulator. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "accel/perf_sim.hh"

namespace prose {
namespace {

BertShape
smallShape(std::uint64_t batch = 8, std::uint64_t len = 128)
{
    return BertShape{ 2, 768, 12, 3072, batch, len };
}

TEST(PerfSim, ProducesPositiveMakespan)
{
    PerfSim sim(ProseConfig::bestPerf());
    const SimReport report = sim.run(smallShape());
    EXPECT_GT(report.makespan, 0.0);
    EXPECT_GT(report.taskCount, 0u);
    EXPECT_GT(report.totalFlops, 0.0);
    EXPECT_EQ(report.inferences, 8u);
}

TEST(PerfSim, PerInferenceEndTimesCoverTheBatch)
{
    PerfSim sim(ProseConfig::bestPerf());
    const SimReport report = sim.run(smallShape(7));
    ASSERT_EQ(report.inferenceEndSeconds.size(), report.inferences);
    ASSERT_FALSE(report.threadFinishSeconds.empty());
    const double slowest = *std::max_element(
        report.threadFinishSeconds.begin(),
        report.threadFinishSeconds.end());
    EXPECT_DOUBLE_EQ(slowest, report.makespan);
    double last = 0.0;
    for (const double end : report.inferenceEndSeconds) {
        EXPECT_GT(end, 0.0);
        EXPECT_LE(end, report.makespan);
        last = std::max(last, end);
    }
    EXPECT_DOUBLE_EQ(last, report.makespan);
}

TEST(PerfSim, DeterministicAcrossRuns)
{
    PerfSim sim(ProseConfig::bestPerf());
    const SimReport a = sim.run(smallShape());
    const SimReport b = sim.run(smallShape());
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.bytesIn, b.bytesIn);
}

TEST(PerfSim, MoreBandwidthNeverSlower)
{
    ProseConfig slow = ProseConfig::bestPerf();
    slow.link = LinkSpec::nvlink2At80();
    ProseConfig fast = ProseConfig::bestPerf();
    fast.link = LinkSpec::nvlink3At90();
    fast.lanes = LanePartition{ 6, 2, 4 }; // 12-lane link
    const SimReport s = PerfSim(slow).run(smallShape());
    const SimReport f = PerfSim(fast).run(smallShape());
    EXPECT_LE(f.makespan, s.makespan * 1.0001);
}

TEST(PerfSim, InfiniteBandwidthIsComputeBound)
{
    ProseConfig config = ProseConfig::bestPerf();
    config.link = LinkSpec::infinite();
    const SimReport report = PerfSim(config).run(smallShape());
    EXPECT_GT(report.makespan, 0.0);
    // Utilization of the busiest type should be meaningful once the
    // link is out of the picture.
    const double best_util =
        std::max({ report.utilization(ArrayType::M),
                   report.utilization(ArrayType::G),
                   report.utilization(ArrayType::E) });
    EXPECT_GT(best_util, 0.2);
}

TEST(PerfSim, MultithreadingImprovesThroughput)
{
    // Figure 8: more threads -> fewer data-dependency bubbles.
    ProseConfig one = ProseConfig::bestPerf();
    one.threads = 1;
    ProseConfig many = ProseConfig::bestPerf();
    many.threads = 32;
    const BertShape shape = smallShape(32, 128);
    const double t1 = PerfSim(one).run(shape).makespan;
    const double t32 = PerfSim(many).run(shape).makespan;
    EXPECT_LT(t32, t1 * 0.7);
}

TEST(PerfSim, UtilizationBounded)
{
    PerfSim sim(ProseConfig::mostEfficient());
    const SimReport report = sim.run(smallShape());
    for (ArrayType type : { ArrayType::M, ArrayType::G, ArrayType::E }) {
        EXPECT_GE(report.utilization(type), 0.0);
        EXPECT_LE(report.utilization(type), 1.0);
    }
    EXPECT_GE(report.cpuDuty, 0.0);
    EXPECT_LE(report.cpuDuty, 1.0);
}

TEST(PerfSim, BytesMatchTaskAccounting)
{
    // Conservation: simulator traffic equals the per-task sums.
    const BertShape shape = smallShape(4, 64);
    ProseConfig config = ProseConfig::bestPerf();
    config.threads = 4;
    PerfSim sim(config);
    const SimReport report = sim.run(shape);

    TimingModel timing(config.partialInputBuffer);
    std::uint64_t bytes_in = 0, bytes_out = 0;
    DataflowBuilder builder;
    for (int t = 0; t < 4; ++t) {
        BertShape slice = shape;
        slice.batch = 1;
        for (const auto &task :
             builder.build(synthesizeBertTrace(slice))) {
            if (task.kind == DataflowKind::Host)
                continue;
            ArrayGeometry geom = ArrayGeometry::mType(64);
            if (task.kind == DataflowKind::Dataflow2)
                geom = ArrayGeometry::gType(16);
            if (task.kind == DataflowKind::Dataflow3)
                geom = ArrayGeometry::eType(16);
            const TaskCost cost = timing.costTask(task, geom);
            bytes_in += cost.bytesIn;
            bytes_out += cost.bytesOut;
        }
    }
    EXPECT_EQ(report.bytesIn, bytes_in);
    EXPECT_EQ(report.bytesOut, bytes_out);
}

TEST(PerfSim, ScheduleRecordsWhenRequested)
{
    SimOptions options;
    options.recordSchedule = true;
    PerfSim sim(ProseConfig::bestPerf(), TimingModel{}, HostModel{},
                options);
    const SimReport report = sim.run(smallShape(2, 32));
    ASSERT_EQ(report.schedule.size(), report.taskCount);
    for (const auto &item : report.schedule) {
        EXPECT_GE(item.end, item.start);
        if (item.kind != DataflowKind::Host)
            EXPECT_GE(item.arrayIndex, 0);
        else
            EXPECT_EQ(item.arrayIndex, -1);
    }
}

TEST(PerfSim, TasksOnOneThreadNeverOverlap)
{
    SimOptions options;
    options.recordSchedule = true;
    ProseConfig config = ProseConfig::bestPerf();
    config.threads = 4;
    PerfSim sim(config, TimingModel{}, HostModel{}, options);
    const SimReport report = sim.run(smallShape(4, 64));

    std::map<std::uint32_t, double> last_end;
    std::map<std::uint32_t, std::vector<ScheduledItem>> per_thread;
    for (const auto &item : report.schedule)
        per_thread[item.thread].push_back(item);
    for (auto &[thread, items] : per_thread) {
        std::sort(items.begin(), items.end(),
                  [](const auto &a, const auto &b) {
                      return a.start < b.start;
                  });
        for (std::size_t i = 1; i < items.size(); ++i)
            EXPECT_GE(items[i].start, items[i - 1].end - 1e-12);
    }
}

TEST(PerfSim, PoolsNeverDoubleBooked)
{
    SimOptions options;
    options.recordSchedule = true;
    PerfSim sim(ProseConfig::mostEfficient(), TimingModel{}, HostModel{},
                options);
    const SimReport report = sim.run(smallShape(8, 64));

    std::map<int, std::vector<ScheduledItem>> per_pool;
    for (const auto &item : report.schedule)
        if (item.arrayIndex >= 0)
            per_pool[item.arrayIndex].push_back(item);
    for (auto &[pool, items] : per_pool) {
        std::sort(items.begin(), items.end(),
                  [](const auto &a, const auto &b) {
                      return a.start < b.start;
                  });
        // The pool frees at poolEnd (a Dataflow 3's host-softmax tail
        // only blocks its issuing thread, not the pool).
        for (std::size_t i = 1; i < items.size(); ++i)
            EXPECT_GE(items[i].start, items[i - 1].poolEnd - 1e-12);
    }
}

TEST(PerfSim, DataflowsLandOnTheirTypes)
{
    SimOptions options;
    options.recordSchedule = true;
    const ProseConfig config = ProseConfig::bestPerf();
    PerfSim sim(config, TimingModel{}, HostModel{}, options);
    const SimReport report = sim.run(smallShape(2, 32));
    for (const auto &item : report.schedule) {
        if (item.arrayIndex < 0)
            continue;
        EXPECT_EQ(static_cast<std::size_t>(item.arrayIndex),
                  typeIndex(arrayTypeFor(item.kind)));
    }
}

TEST(PerfSim, BatchSmallerThanThreadsStillRuns)
{
    ProseConfig config = ProseConfig::bestPerf();
    config.threads = 32;
    const SimReport report = PerfSim(config).run(smallShape(3, 32));
    EXPECT_EQ(report.inferences, 3u);
    EXPECT_GT(report.makespan, 0.0);
}

TEST(PerfSim, ConfigDrivesTheTrafficModel)
{
    // PerfSim(config) must honor partialInputBuffer: without the reuse
    // buffer the operand restreams make the run slower and move more
    // bytes.
    ProseConfig with_buffer = ProseConfig::bestPerf();
    ProseConfig without = with_buffer;
    without.partialInputBuffer = false;
    const BertShape shape = smallShape(8, 256);
    const SimReport a = PerfSim(with_buffer).run(shape);
    const SimReport b = PerfSim(without).run(shape);
    EXPECT_GT(b.bytesIn, a.bytesIn);
    EXPECT_GT(b.makespan, a.makespan);
}

TEST(PerfSim, IoLockContentionSlowsManyThreads)
{
    // The Section 3.1 trade-off: more threads contend on the per-type
    // I/O buffer mutex; a pathologically slow lock must hurt.
    const BertShape shape = smallShape(32, 128);
    ProseConfig config = ProseConfig::bestPerf();
    config.threads = 32;
    SimOptions fast;
    fast.ioLockSeconds = 0.0;
    SimOptions slow;
    slow.ioLockSeconds = 500e-6;
    const double t_fast =
        PerfSim(config, TimingModel{}, HostModel{}, fast)
            .run(shape)
            .makespan;
    const double t_slow =
        PerfSim(config, TimingModel{}, HostModel{}, slow)
            .run(shape)
            .makespan;
    EXPECT_GT(t_slow, t_fast * 1.2);
}

TEST(PerfSim, DecoderWorkloadRuns)
{
    // The translation extension: a 6-layer decoder stack over a
    // 512-token encoder memory.
    DecoderShape shape;
    shape.layers = 2;
    shape.batch = 8;
    shape.targetLen = 64;
    shape.sourceLen = 256;
    PerfSim sim(ProseConfig::bestPerf());
    const SimReport report = sim.runDecoder(shape);
    EXPECT_GT(report.makespan, 0.0);
    EXPECT_EQ(report.inferences, 8u);
    const double expected = synthesizeDecoderTrace(shape).totalFlops();
    EXPECT_NEAR(report.totalFlops, expected, expected * 1e-12);
}

TEST(PerfSim, DecoderCrossAttentionCostsGrowWithMemory)
{
    DecoderShape small;
    small.layers = 2;
    small.batch = 8;
    small.targetLen = 64;
    small.sourceLen = 128;
    DecoderShape large = small;
    large.sourceLen = 1024;
    PerfSim sim(ProseConfig::bestPerf());
    EXPECT_LT(sim.runDecoder(small).makespan,
              sim.runDecoder(large).makespan);
}

/** Run one shape under both schedulers and demand identical reports. */
void
expectSchedulersAgree(const ProseConfig &config, const BertShape &shape,
                      FaultInjector *heap_injector = nullptr,
                      FaultInjector *ref_injector = nullptr)
{
    SimOptions heap_options;
    heap_options.recordSchedule = true;
    heap_options.injector = heap_injector;
    SimOptions ref_options;
    ref_options.recordSchedule = true;
    ref_options.referenceScheduler = true;
    ref_options.injector = ref_injector;

    const SimReport heap_report =
        PerfSim(config, TimingModel{}, HostModel{}, heap_options)
            .run(shape);
    const SimReport ref_report =
        PerfSim(config, TimingModel{}, HostModel{}, ref_options)
            .run(shape);

    EXPECT_EQ(heap_report.makespan, ref_report.makespan);
    EXPECT_EQ(heap_report.taskCount, ref_report.taskCount);
    EXPECT_EQ(heap_report.bytesIn, ref_report.bytesIn);
    EXPECT_EQ(heap_report.bytesOut, ref_report.bytesOut);
    EXPECT_EQ(heap_report.hostBusySeconds, ref_report.hostBusySeconds);
    for (std::size_t idx = 0; idx < 3; ++idx)
        EXPECT_EQ(heap_report.typeBusySeconds[idx],
                  ref_report.typeBusySeconds[idx]);

    // Identical dispatch order, not just identical totals.
    ASSERT_EQ(heap_report.schedule.size(), ref_report.schedule.size());
    for (std::size_t i = 0; i < heap_report.schedule.size(); ++i) {
        const ScheduledItem &h = heap_report.schedule[i];
        const ScheduledItem &r = ref_report.schedule[i];
        EXPECT_EQ(h.thread, r.thread) << "item " << i;
        EXPECT_EQ(h.kind, r.kind) << "item " << i;
        EXPECT_EQ(h.arrayIndex, r.arrayIndex) << "item " << i;
        EXPECT_EQ(h.start, r.start) << "item " << i;
        EXPECT_EQ(h.end, r.end) << "item " << i;
    }
}

TEST(PerfSim, EventQueueMatchesReferenceScheduler)
{
    for (const BertShape &shape :
         { smallShape(4, 64), smallShape(32, 128), smallShape(7, 256) }) {
        expectSchedulersAgree(ProseConfig::bestPerf(), shape);
        expectSchedulersAgree(ProseConfig::mostEfficient(), shape);
    }
}

TEST(PerfSim, EventQueueMatchesReferenceUnderLinkFaults)
{
    // The injector draws once per dispatched accelerator task, so
    // identical dispatch order implies an identical fault sequence.
    CampaignSpec spec;
    spec.seed = 5;
    spec.linkErrorRate = 0.05;
    spec.linkTimeoutRate = 0.02;
    FaultInjector heap_injector(spec);
    FaultInjector ref_injector(spec);
    expectSchedulersAgree(ProseConfig::bestPerf(), smallShape(16, 128),
                          &heap_injector, &ref_injector);
    EXPECT_EQ(heap_injector.eventLogText(), ref_injector.eventLogText());
}

TEST(PerfSim, HeterogeneousBeatsHomogeneousAtLongLengths)
{
    // Figure 4's core claim at a batch the tests can afford. Past the
    // crossover (well beyond 300 tokens) the homogeneous design's lack
    // of SIMD lanes on the attention path dominates.
    const BertShape shape{ 12, 768, 12, 3072, 8, 1024 };
    const double hetero =
        PerfSim(ProseConfig::bestPerf()).run(shape).makespan;
    const double homo =
        PerfSim(ProseConfig::fourBy64Homogeneous()).run(shape).makespan;
    EXPECT_LT(hetero, homo);
}

} // namespace
} // namespace prose
