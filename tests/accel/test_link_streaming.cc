/**
 * @file
 * Tests for the PerfSim link streaming model (StreamMode, on-link
 * compression, multi-tenant shared-link contention): the mode
 * ordering, the infinite-link bit-exactness contract, the
 * bandwidth-wall acceptance point, and the determinism/conservation
 * properties of runShared(). See docs/LINK_MODEL.md.
 */

#include <gtest/gtest.h>

#include "accel/perf_sim.hh"
#include "accel/prose_config.hh"

namespace prose {
namespace {

/** BestPerf on a finite, link-bound interconnect. */
ProseConfig
linkBoundConfig(StreamMode mode = StreamMode::DoubleBuffered)
{
    ProseConfig config = ProseConfig::bestPerf();
    config.link = LinkSpec::nvlink2At80();
    config.streaming.mode = mode;
    return config;
}

/** One BERT-base layer at batch 8: link-bound on NVLink2-80. */
BertShape
linkBoundShape()
{
    return BertShape{ 1, 768, 12, 3072, 8, 512 };
}

/**
 * Exact equality of everything a SimReport records (doubles compared
 * bit-for-bit via ==; schedules compared element-wise). The streaming
 * and tenancy refactors promise bit-exact reproduction in several
 * directions, so approximate comparison would hide real drift.
 */
void
expectReportsIdentical(const SimReport &a, const SimReport &b)
{
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.bytesIn, b.bytesIn);
    EXPECT_EQ(a.bytesOut, b.bytesOut);
    EXPECT_EQ(a.hostBusySeconds, b.hostBusySeconds);
    EXPECT_EQ(a.cpuDuty, b.cpuDuty);
    EXPECT_EQ(a.totalFlops, b.totalFlops);
    EXPECT_EQ(a.taskCount, b.taskCount);
    EXPECT_EQ(a.inferences, b.inferences);
    EXPECT_EQ(a.typeBusySeconds, b.typeBusySeconds);
    EXPECT_EQ(a.typeCounts, b.typeCounts);
    EXPECT_EQ(a.wireBytesIn, b.wireBytesIn);
    EXPECT_EQ(a.wireBytesOut, b.wireBytesOut);
    EXPECT_EQ(a.fillSeconds, b.fillSeconds);
    EXPECT_EQ(a.drainSeconds, b.drainSeconds);
    EXPECT_EQ(a.linkWaitSeconds, b.linkWaitSeconds);
    EXPECT_EQ(a.prefetchStallSeconds, b.prefetchStallSeconds);
    EXPECT_EQ(a.threadFinishSeconds, b.threadFinishSeconds);
    EXPECT_EQ(a.inferenceEndSeconds, b.inferenceEndSeconds);
    EXPECT_EQ(a.retrySeconds, b.retrySeconds);
    EXPECT_EQ(a.taskRetries, b.taskRetries);
}

TEST(LinkStreaming, ModesOrderSerializedDoubleBufferedIdeal)
{
    const BertShape shape = linkBoundShape();
    const double serialized =
        PerfSim(linkBoundConfig(StreamMode::Serialized))
            .run(shape)
            .makespan;
    const double buffered =
        PerfSim(linkBoundConfig(StreamMode::DoubleBuffered))
            .run(shape)
            .makespan;
    const double ideal =
        PerfSim(linkBoundConfig(StreamMode::Ideal)).run(shape).makespan;
    EXPECT_GT(serialized, buffered);
    EXPECT_GE(buffered, ideal);
    EXPECT_GT(ideal, 0.0);
}

TEST(LinkStreaming, DoubleBufferingBreaksTheWallByTwentyPercent)
{
    // The PR's acceptance point: on a link-bound shape (one BERT-base
    // layer, batch 8, NVLink2 at 80%), overlapping transfers with
    // compute must cut modeled latency by at least 20% over fully
    // serialized transfers.
    const BertShape shape = linkBoundShape();
    const double serialized =
        PerfSim(linkBoundConfig(StreamMode::Serialized))
            .run(shape)
            .makespan;
    const double buffered =
        PerfSim(linkBoundConfig(StreamMode::DoubleBuffered))
            .run(shape)
            .makespan;
    EXPECT_GE(serialized / buffered, 1.20)
        << "serialized " << serialized << "s vs double-buffered "
        << buffered << "s";
}

TEST(LinkStreaming, InfiniteLinkIsBitExactAcrossModesAndCodecs)
{
    // On the infinite link every stream time is exactly zero, so all
    // three modes (and every codec) must collapse to the identical
    // compute-bound schedule — this is what keeps the legacy
    // infinite-bandwidth sweep points bit-exact after the refactor.
    const BertShape shape{ 2, 768, 12, 3072, 4, 256 };
    ProseConfig reference = ProseConfig::bestPerf();
    reference.link = LinkSpec::infinite();
    reference.streaming.mode = StreamMode::Ideal;
    const SimReport baseline = PerfSim(reference).run(shape);
    EXPECT_EQ(baseline.fillSeconds, 0.0);
    EXPECT_EQ(baseline.drainSeconds, 0.0);

    for (const LinkCompression codec :
         { LinkCompression::None, LinkCompression::ZeroRun,
           LinkCompression::Delta }) {
        // A codec still changes the wire-byte *accounting*, but with
        // zero stream time it must not move the schedule by a single
        // ulp relative to the uncompressed reference.
        ProseConfig ideal = reference;
        ideal.link.compression = codec;
        const SimReport expected = PerfSim(ideal).run(shape);
        EXPECT_EQ(expected.makespan, baseline.makespan);
        EXPECT_EQ(expected.threadFinishSeconds,
                  baseline.threadFinishSeconds);
        EXPECT_EQ(expected.typeBusySeconds, baseline.typeBusySeconds);
        for (const StreamMode mode :
             { StreamMode::Serialized, StreamMode::DoubleBuffered,
               StreamMode::Ideal }) {
            ProseConfig config = ideal;
            config.streaming.mode = mode;
            expectReportsIdentical(expected,
                                   PerfSim(config).run(shape));
        }
    }
}

TEST(LinkStreaming, MakespanMonotoneInBandwidth)
{
    const BertShape shape = linkBoundShape();
    for (const StreamMode mode :
         { StreamMode::Serialized, StreamMode::DoubleBuffered,
           StreamMode::Ideal }) {
        double prev = 1e300;
        for (const double gbps : { 45.0, 90.0, 240.0, 480.0 }) {
            ProseConfig config = linkBoundConfig(mode);
            config.link = LinkSpec::custom(gbps);
            const double makespan = PerfSim(config).run(shape).makespan;
            EXPECT_LE(makespan, prev + 1e-12)
                << toString(mode) << " at " << gbps << " GB/s";
            prev = makespan;
        }
    }
}

TEST(LinkStreaming, CompressionShrinksWireBytesOnly)
{
    const BertShape shape = linkBoundShape();
    const SimReport raw =
        PerfSim(linkBoundConfig()).run(shape);
    EXPECT_EQ(raw.wireBytesIn, raw.bytesIn);
    EXPECT_EQ(raw.wireBytesOut, raw.bytesOut);

    ProseConfig compressed = linkBoundConfig();
    compressed.link.compression = LinkCompression::ZeroRun;
    const SimReport zr = PerfSim(compressed).run(shape);
    // Logical traffic is untouched (the codec is modeled, never
    // functional); only the wire shrinks, and the run gets faster.
    EXPECT_EQ(zr.bytesIn, raw.bytesIn);
    EXPECT_EQ(zr.bytesOut, raw.bytesOut);
    EXPECT_LT(zr.wireBytesIn, raw.wireBytesIn);
    EXPECT_LT(zr.wireBytesOut, raw.wireBytesOut);
    EXPECT_LT(zr.makespan, raw.makespan);
}

TEST(LinkStreaming, SingleTenantRunSharedIsBitExact)
{
    const BertShape shape = linkBoundShape();
    const PerfSim sim(linkBoundConfig());
    const SimReport solo = sim.run(shape);

    std::vector<SimReport> locals;
    const SimReport shared = sim.runShared({ shape }, &locals);
    ASSERT_EQ(locals.size(), 1u);
    EXPECT_EQ(shared.tenantCount, 1u);
    // One tenant never waits on itself, so the shared-channel
    // scheduler must reproduce run() exactly, wait accounting and all.
    EXPECT_EQ(shared.linkWaitSeconds, 0.0);
    expectReportsIdentical(solo, shared);
    expectReportsIdentical(solo, locals[0]);
}

TEST(LinkStreaming, SharedRunsAreDeterministic)
{
    const std::vector<BertShape> tenants{
        linkBoundShape(), BertShape{ 1, 768, 12, 3072, 4, 256 },
        linkBoundShape()
    };
    const PerfSim sim(linkBoundConfig());
    std::vector<SimReport> locals_a, locals_b;
    const SimReport a = sim.runShared(tenants, &locals_a);
    const SimReport b = sim.runShared(tenants, &locals_b);
    expectReportsIdentical(a, b);
    ASSERT_EQ(locals_a.size(), locals_b.size());
    for (std::size_t i = 0; i < locals_a.size(); ++i)
        expectReportsIdentical(locals_a[i], locals_b[i]);
}

TEST(LinkStreaming, ContentionChargesLinkWaitAndSlowsTenants)
{
    const BertShape shape = linkBoundShape();
    const PerfSim sim(linkBoundConfig());
    const SimReport solo = sim.run(shape);

    std::vector<SimReport> locals;
    const SimReport shared = sim.runShared({ shape, shape }, &locals);
    ASSERT_EQ(locals.size(), 2u);
    EXPECT_EQ(shared.tenantCount, 2u);
    // Two identical link-bound tenants must collide on the shared
    // channels: positive arbitration wait, and nobody finishes faster
    // than it would alone (compute is private; only the link couples
    // them).
    EXPECT_GT(shared.linkWaitSeconds, 0.0);
    EXPECT_GE(shared.makespan, solo.makespan);
    for (const SimReport &local : locals) {
        EXPECT_GE(local.makespan, solo.makespan);
        EXPECT_EQ(local.bytesIn, solo.bytesIn);
        EXPECT_EQ(local.bytesOut, solo.bytesOut);
        EXPECT_EQ(local.inferences, solo.inferences);
    }
    // Conservation: the combined report aggregates the tenants.
    EXPECT_EQ(shared.inferences, 2 * solo.inferences);
    EXPECT_EQ(shared.bytesIn, 2 * solo.bytesIn);
    EXPECT_EQ(shared.bytesOut, 2 * solo.bytesOut);
    EXPECT_EQ(shared.taskCount, 2 * solo.taskCount);
}

TEST(LinkStreaming, DeeperPrefetchQueuesHideMoreArbitration)
{
    // Buffer depth bounds the arbitration jitter the prefetcher can
    // absorb, so under contention a deeper queue never stalls the
    // arrays longer than a shallower one.
    const std::vector<BertShape> tenants{ linkBoundShape(),
                                          linkBoundShape() };
    double prev_stall = -1.0;
    for (const std::uint32_t depth : { 2u, 4u }) {
        ProseConfig config = linkBoundConfig();
        config.streaming.bufferDepth = depth;
        const SimReport report = PerfSim(config).runShared(tenants);
        if (prev_stall >= 0.0)
            EXPECT_LE(report.prefetchStallSeconds, prev_stall + 1e-12);
        prev_stall = report.prefetchStallSeconds;
    }
}

TEST(LinkStreaming, SchedulersAgreeOnSharedRuns)
{
    // The lazy min-heap scheduler and the reference linear scan must
    // produce identical schedules for the contention model too, not
    // just for single-tenant runs.
    const std::vector<BertShape> tenants{
        linkBoundShape(), BertShape{ 1, 768, 12, 3072, 4, 256 }
    };
    ProseConfig config = linkBoundConfig();
    SimOptions reference;
    reference.referenceScheduler = true;
    const SimReport heap = PerfSim(config).runShared(tenants);
    const SimReport scan =
        PerfSim(config, TimingModel{ config.partialInputBuffer },
                HostModel{}, reference)
            .runShared(tenants);
    expectReportsIdentical(heap, scan);
}

} // namespace
} // namespace prose
