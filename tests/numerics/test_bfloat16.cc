/** @file Tests for the software bfloat16 type. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/random.hh"
#include "numerics/bfloat16.hh"

namespace prose {
namespace {

TEST(Bfloat16, ZeroDefault)
{
    Bfloat16 z;
    EXPECT_TRUE(z.isZero());
    EXPECT_EQ(z.toFloat(), 0.0f);
}

TEST(Bfloat16, ExactSmallIntegers)
{
    for (int i = -256; i <= 256; ++i) {
        const Bfloat16 v(static_cast<float>(i));
        EXPECT_EQ(v.toFloat(), static_cast<float>(i)) << "i=" << i;
    }
}

TEST(Bfloat16, RoundTripIsIdentityOnAllBf16Values)
{
    // Property: widening then re-rounding any bf16 value is lossless.
    for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
        const Bfloat16 v = Bfloat16::fromBits(
            static_cast<std::uint16_t>(bits));
        if (v.isNan())
            continue; // NaN payload may be quieted
        const Bfloat16 round_trip(v.toFloat());
        EXPECT_EQ(round_trip.bits(), v.bits()) << "bits=" << bits;
    }
}

TEST(Bfloat16, RoundToNearest)
{
    // 1.0 has bits 0x3f80. The next bf16 up is 1.0078125 (0x3f81).
    // 1.003 is closer to 1.0; 1.006 is closer to 1.0078125.
    EXPECT_EQ(Bfloat16(1.003f).toFloat(), 1.0f);
    EXPECT_NEAR(Bfloat16(1.006f).toFloat(), 1.0078125f, 1e-7);
}

TEST(Bfloat16, TiesGoToEven)
{
    // Exactly halfway between 1.0 (mantissa 0x00, even) and 1.0078125
    // (mantissa 0x01, odd): 1.00390625 -> rounds down to even.
    EXPECT_EQ(Bfloat16(1.00390625f).toFloat(), 1.0f);
    // Halfway between 1.0078125 (odd) and 1.015625 (0x02, even):
    // 1.01171875 -> rounds up to even.
    EXPECT_NEAR(Bfloat16(1.01171875f).toFloat(), 1.015625f, 1e-7);
}

TEST(Bfloat16, FieldAccessors)
{
    // -1.5 = sign 1, exponent 0 (biased 127), mantissa 0x40.
    const Bfloat16 v(-1.5f);
    EXPECT_EQ(v.signBit(), 1);
    EXPECT_EQ(v.exponent(), 0);
    EXPECT_EQ(v.biasedExponent(), 127);
    EXPECT_EQ(v.mantissa(), 0x40);
}

TEST(Bfloat16, ExponentOfPowersOfTwo)
{
    EXPECT_EQ(Bfloat16(1.0f).exponent(), 0);
    EXPECT_EQ(Bfloat16(2.0f).exponent(), 1);
    EXPECT_EQ(Bfloat16(0.5f).exponent(), -1);
    EXPECT_EQ(Bfloat16(16.0f).exponent(), 4);
    EXPECT_EQ(Bfloat16(0.0625f).exponent(), -4);
}

TEST(Bfloat16, InfinityHandling)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_TRUE(Bfloat16(inf).isInf());
    EXPECT_TRUE(Bfloat16(-inf).isInf());
    EXPECT_EQ(Bfloat16(inf).toFloat(), inf);
    // Overflow on rounding saturates to infinity like IEEE RNE.
    EXPECT_TRUE(Bfloat16(3.4e38f).isInf());
}

TEST(Bfloat16, NanPreserved)
{
    const Bfloat16 nan(std::numeric_limits<float>::quiet_NaN());
    EXPECT_TRUE(nan.isNan());
    EXPECT_TRUE(std::isnan(nan.toFloat()));
    EXPECT_FALSE(nan == nan);
}

TEST(Bfloat16, NegationFlipsSignBitOnly)
{
    const Bfloat16 v(2.5f);
    const Bfloat16 neg = -v;
    EXPECT_EQ(neg.toFloat(), -2.5f);
    EXPECT_EQ(neg.bits() ^ v.bits(), 0x8000);
}

TEST(Bfloat16, ArithmeticMatchesFloatThenRound)
{
    Rng rng(77);
    for (int i = 0; i < 2000; ++i) {
        const float a = static_cast<float>(rng.uniform(-100.0, 100.0));
        const float b = static_cast<float>(rng.uniform(-100.0, 100.0));
        const Bfloat16 qa(a), qb(b);
        EXPECT_EQ((qa * qb).bits(),
                  Bfloat16(qa.toFloat() * qb.toFloat()).bits());
        EXPECT_EQ((qa + qb).bits(),
                  Bfloat16(qa.toFloat() + qb.toFloat()).bits());
        EXPECT_EQ((qa - qb).bits(),
                  Bfloat16(qa.toFloat() - qb.toFloat()).bits());
    }
}

TEST(Bfloat16, RelativeErrorBounded)
{
    // 7 mantissa bits -> relative error <= 2^-8 for normal values.
    Rng rng(88);
    for (int i = 0; i < 5000; ++i) {
        const float x = static_cast<float>(
            rng.uniform(1e-3, 1e3) * (rng.uniform() < 0.5 ? -1.0 : 1.0));
        const float q = quantizeBf16(x);
        EXPECT_LE(std::fabs(q - x) / std::fabs(x), 1.0f / 256.0f)
            << "x=" << x;
    }
}

TEST(Bfloat16, ZerosCompareEqual)
{
    EXPECT_TRUE(Bfloat16(0.0f) == Bfloat16(-0.0f));
}

TEST(Bfloat16, OrderingViaLess)
{
    EXPECT_TRUE(Bfloat16(1.0f) < Bfloat16(2.0f));
    EXPECT_FALSE(Bfloat16(2.0f) < Bfloat16(1.0f));
    EXPECT_TRUE(Bfloat16(-3.0f) < Bfloat16(-2.0f));
}

TEST(Bfloat16, TruncationDropsLowBitsExactly)
{
    // 1.0 + 2^-20 truncates to exactly 1.0 (the low fp32 bits vanish).
    const float x = 1.0f + std::ldexp(1.0f, -20);
    EXPECT_EQ(truncateBf16(x), 1.0f);
    // Truncation never rounds up: pick a value just below the next
    // representable bf16 and check it truncates down.
    const float just_below = std::nextafter(1.0078125f, 0.0f);
    EXPECT_EQ(truncateBf16(just_below), 1.0f);
    // Rounding, in contrast, goes up.
    EXPECT_NEAR(quantizeBf16(just_below), 1.0078125f, 1e-7);
}

TEST(Bfloat16, TruncationIsIdentityOnBf16Values)
{
    for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
        const Bfloat16 v = Bfloat16::fromBits(
            static_cast<std::uint16_t>(bits));
        if (v.isNan())
            continue;
        EXPECT_EQ(truncateToBf16(v.toFloat()).bits(), v.bits());
    }
}

TEST(Bfloat16, StreamInsertionPrintsValue)
{
    std::ostringstream os;
    os << Bfloat16(1.5f);
    EXPECT_EQ(os.str(), "1.5");
}

TEST(Bfloat16, FlipFloatBitIsItsOwnInverse)
{
    const float value = 3.14159f;
    for (std::uint32_t bit = 0; bit < 32; ++bit) {
        const float flipped = flipFloatBit(value, bit);
        EXPECT_NE(std::memcmp(&flipped, &value, sizeof(float)), 0);
        const float back = flipFloatBit(flipped, bit);
        EXPECT_EQ(std::memcmp(&back, &value, sizeof(float)), 0);
    }
}

TEST(Bfloat16, FlipFloatBitHitsTheExpectedField)
{
    // Sign bit negates; clearing the exponent LSB of 1.0 halves it.
    EXPECT_EQ(flipFloatBit(2.5f, 31), -2.5f);
    EXPECT_EQ(flipFloatBit(1.0f, 23), 0.5f);
    // Mantissa bit 22 of 1.0 adds 2^-1.
    EXPECT_EQ(flipFloatBit(1.0f, 22), 1.5f);
}

TEST(Bfloat16, SetFloatBitForcesAndIsIdempotent)
{
    const float forced = setFloatBit(1.0f, 22, true);
    EXPECT_EQ(forced, 1.5f);
    EXPECT_EQ(setFloatBit(forced, 22, true), forced);
    EXPECT_EQ(setFloatBit(forced, 22, false), 1.0f);
    EXPECT_EQ(setFloatBit(1.0f, 22, false), 1.0f);
}

TEST(Bfloat16, FlipBf16BitMatchesFloatBitSixteenUp)
{
    // Bf16 bit b corresponds to fp32 bit b + 16.
    const Bfloat16 value(1.0f);
    for (std::uint32_t bit = 0; bit < 16; ++bit) {
        const Bfloat16 flipped = flipBf16Bit(value, bit);
        const float viaFloat = flipFloatBit(value.toFloat(), bit + 16);
        EXPECT_EQ(flipped.toFloat(), quantizeBf16(viaFloat))
            << "bit " << bit;
        EXPECT_EQ(flipBf16Bit(flipped, bit).bits(), value.bits());
    }
}

} // namespace
} // namespace prose
