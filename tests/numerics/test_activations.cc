/** @file Tests for reference activation functions. */

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/activations.hh"

namespace prose {
namespace {

TEST(Activations, GeluTanhAtZero)
{
    EXPECT_FLOAT_EQ(geluTanh(0.0f), 0.0f);
}

TEST(Activations, GeluTanhKnownPoint)
{
    // GELU(1) ~ 0.8412 (tanh approximation ~ 0.84119).
    EXPECT_NEAR(geluTanh(1.0f), 0.84119f, 1e-4);
    EXPECT_NEAR(geluTanh(-1.0f), -0.15881f, 1e-4);
}

TEST(Activations, GeluTanhAsymptotes)
{
    EXPECT_NEAR(geluTanh(10.0f), 10.0f, 1e-4);
    EXPECT_NEAR(geluTanh(-10.0f), 0.0f, 1e-4);
}

TEST(Activations, GeluTanhCloseToErfForm)
{
    for (float x = -6.0f; x <= 6.0f; x += 0.01f)
        EXPECT_NEAR(geluTanh(x), geluErf(x), 4e-3) << "x=" << x;
}

TEST(Activations, GeluErfMatchesDefinition)
{
    for (float x : { -2.0f, -0.5f, 0.3f, 1.7f }) {
        const float phi = 0.5f * (1.0f + std::erf(x / std::sqrt(2.0f)));
        EXPECT_NEAR(geluErf(x), x * phi, 1e-6);
    }
}

TEST(Activations, GeluMonotoneAboveMinimum)
{
    // GELU is monotonically increasing for x > ~-0.75.
    float prev = geluTanh(-0.7f);
    for (float x = -0.69f; x <= 5.0f; x += 0.01f) {
        const float cur = geluTanh(x);
        EXPECT_GE(cur, prev - 1e-6f);
        prev = cur;
    }
}

TEST(Activations, ExpRefMatchesStd)
{
    for (float x : { -5.0f, -1.0f, 0.0f, 1.0f, 3.0f })
        EXPECT_FLOAT_EQ(expRef(x), std::exp(x));
}

TEST(Activations, SigmoidRangeAndSymmetry)
{
    EXPECT_FLOAT_EQ(sigmoid(0.0f), 0.5f);
    // Beyond |x| ~ 17 the float result rounds to exactly 1, so the
    // strict bound is only meaningful in the interior.
    for (float x = -16.0f; x <= 16.0f; x += 0.5f) {
        const float s = sigmoid(x);
        EXPECT_GT(s, 0.0f);
        EXPECT_LT(s, 1.0f);
        EXPECT_NEAR(s + sigmoid(-x), 1.0f, 1e-6);
    }
}

TEST(Activations, SigmoidStableAtExtremes)
{
    EXPECT_NEAR(sigmoid(100.0f), 1.0f, 1e-6);
    EXPECT_NEAR(sigmoid(-100.0f), 0.0f, 1e-6);
}

} // namespace
} // namespace prose
