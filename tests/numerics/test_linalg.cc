/** @file Tests for Cholesky and ridge regression. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "common/stats.hh"
#include "numerics/linalg.hh"

namespace prose {
namespace {

TEST(Cholesky, FactorOfIdentity)
{
    Matrix eye(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        eye(i, i) = 1.0f;
    ASSERT_TRUE(choleskyFactor(eye));
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_FLOAT_EQ(eye(i, j), i == j ? 1.0f : 0.0f);
}

TEST(Cholesky, ReconstructsSpdMatrix)
{
    // Build SPD A = B B^T + I and check L L^T == A.
    Rng rng(1);
    Matrix b(5, 5);
    b.fillGaussian(rng, 0.0f, 1.0f);
    Matrix a = matmul(b, transpose(b));
    for (std::size_t i = 0; i < 5; ++i)
        a(i, i) += 1.0f;
    Matrix l = a;
    ASSERT_TRUE(choleskyFactor(l));
    const Matrix rebuilt = matmul(l, transpose(l));
    EXPECT_LT(Matrix::maxAbsDiff(rebuilt, a), 1e-3f);
}

TEST(Cholesky, RejectsIndefinite)
{
    Matrix a(2, 2);
    a(0, 0) = 1.0f;
    a(0, 1) = a(1, 0) = 2.0f;
    a(1, 1) = 1.0f; // eigenvalues 3 and -1
    EXPECT_FALSE(choleskyFactor(a));
}

TEST(Cholesky, SolveRecoversKnownVector)
{
    Rng rng(2);
    Matrix b(6, 6);
    b.fillGaussian(rng, 0.0f, 1.0f);
    Matrix a = matmul(b, transpose(b));
    for (std::size_t i = 0; i < 6; ++i)
        a(i, i) += 2.0f;

    std::vector<double> x_true{ 1, -2, 3, 0.5, -0.25, 4 };
    std::vector<double> rhs(6, 0.0);
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            rhs[i] += static_cast<double>(a(i, j)) * x_true[j];

    Matrix l = a;
    ASSERT_TRUE(choleskyFactor(l));
    const auto x = choleskySolve(l, rhs);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-3);
}

TEST(Ridge, RecoversLinearModelWithSmallPenalty)
{
    Rng rng(3);
    const std::size_t n = 200, d = 5;
    Matrix x(n, d);
    x.fillGaussian(rng, 0.0f, 1.0f);
    const std::vector<double> w_true{ 2.0, -1.0, 0.5, 0.0, 3.0 };
    std::vector<double> y(n, 1.5); // intercept 1.5
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < d; ++j)
            y[i] += w_true[j] * x(i, j);

    const RidgeModel model = ridgeFit(x, y, 1e-6);
    for (std::size_t j = 0; j < d; ++j)
        EXPECT_NEAR(model.weights[j], w_true[j], 1e-2);
    EXPECT_NEAR(model.intercept, 1.5, 1e-2);
}

TEST(Ridge, PenaltyShrinksWeights)
{
    Rng rng(4);
    const std::size_t n = 50, d = 3;
    Matrix x(n, d);
    x.fillGaussian(rng, 0.0f, 1.0f);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i)
        y[i] = 4.0 * x(i, 0) + rng.gaussian(0.0, 0.1);

    const RidgeModel weak = ridgeFit(x, y, 0.001);
    const RidgeModel strong = ridgeFit(x, y, 1000.0);
    EXPECT_GT(std::fabs(weak.weights[0]), std::fabs(strong.weights[0]));
    EXPECT_LT(std::fabs(strong.weights[0]), 1.0);
}

TEST(Ridge, PredictRowsMatchesPredict)
{
    Rng rng(5);
    Matrix x(10, 4);
    x.fillGaussian(rng, 0.0f, 1.0f);
    std::vector<double> y(10);
    for (std::size_t i = 0; i < 10; ++i)
        y[i] = x(i, 1) - x(i, 3);
    const RidgeModel model = ridgeFit(x, y, 0.5);

    const auto batch = model.predictRows(x);
    for (std::size_t i = 0; i < 10; ++i) {
        std::vector<double> row;
        for (std::size_t j = 0; j < 4; ++j)
            row.push_back(x(i, j));
        EXPECT_NEAR(batch[i], model.predict(row), 1e-9);
    }
}

TEST(Ridge, HandlesMoreFeaturesThanSamples)
{
    // The penalty keeps the normal equations SPD even when d > n.
    Rng rng(6);
    Matrix x(8, 20);
    x.fillGaussian(rng, 0.0f, 1.0f);
    std::vector<double> y(8);
    for (std::size_t i = 0; i < 8; ++i)
        y[i] = x(i, 0);
    const RidgeModel model = ridgeFit(x, y, 1.0);
    EXPECT_EQ(model.weights.size(), 20u);
    // In-sample predictions should correlate strongly with targets.
    EXPECT_GT(pearson(model.predictRows(x), y), 0.9);
}

TEST(Ridge, NoisyDataStillRankCorrelates)
{
    Rng rng(7);
    const std::size_t n = 60, d = 6;
    Matrix x(n, d);
    x.fillGaussian(rng, 0.0f, 1.0f);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i)
        y[i] = 2.0 * x(i, 2) + rng.gaussian(0.0, 0.5);
    const RidgeModel model = ridgeFit(x, y, 1.0);
    EXPECT_GT(spearman(model.predictRows(x), y), 0.8);
}

TEST(RidgeDeathTest, NonPositivePenaltyPanics)
{
    Matrix x(4, 2, 1.0f);
    std::vector<double> y{ 1, 2, 3, 4 };
    EXPECT_DEATH(ridgeFit(x, y, 0.0), "positive penalty");
}

TEST(Ridge, IllScaledFeaturesRecoverWeights)
{
    // Feature scales spanning six orders of magnitude: accumulating the
    // Gram matrix through float storage loses enough precision here
    // that the recovered weights drift visibly; the double-precision
    // accumulation keeps them tight.
    Rng rng(404);
    const std::size_t n = 4000;
    const double scales[3] = { 1e3, 1.0, 1e-3 };
    const double true_w[3] = { 0.5, -2.0, 40.0 };
    Matrix x(n, 3);
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double target = 3.0;
        for (std::size_t j = 0; j < 3; ++j) {
            const double xij = rng.gaussian() * scales[j];
            x(i, j) = static_cast<float>(xij);
            // Build y from the float-rounded feature the fit sees.
            target += true_w[j] * static_cast<double>(x(i, j));
        }
        y[i] = target;
    }
    const RidgeModel model = ridgeFit(x, y, 1e-8);
    ASSERT_EQ(model.weights.size(), 3u);
    for (std::size_t j = 0; j < 3; ++j)
        EXPECT_NEAR(model.weights[j] * scales[j],
                    true_w[j] * scales[j],
                    5e-3 * std::abs(true_w[j]) * scales[j])
            << "feature " << j;
    EXPECT_NEAR(model.intercept, 3.0, 0.05);
}

} // namespace
} // namespace prose
