/** @file Tests for the real host-side kernels (softmax divide, layer
 *  norm) including their row-parallel execution. */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "common/random.hh"
#include "numerics/bfloat16.hh"
#include "numerics/host_kernels.hh"

namespace prose {
namespace {

Matrix
positiveMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            m(i, j) = static_cast<float>(rng.uniform(0.01, 3.0));
    return m;
}

TEST(HostKernels, SoftmaxRowsSumToOne)
{
    Rng rng(1);
    Matrix exp_values = positiveMatrix(rng, 12, 33);
    hostSoftmaxDivide(exp_values);
    for (std::size_t i = 0; i < exp_values.rows(); ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < exp_values.cols(); ++j)
            sum += exp_values(i, j);
        EXPECT_NEAR(sum, 1.0, 0.02); // bf16 re-quantization slack
    }
}

TEST(HostKernels, SoftmaxResultsAreBf16)
{
    Rng rng(2);
    Matrix exp_values = positiveMatrix(rng, 4, 16);
    hostSoftmaxDivide(exp_values);
    for (std::size_t i = 0; i < exp_values.rows(); ++i)
        for (std::size_t j = 0; j < exp_values.cols(); ++j)
            EXPECT_EQ(exp_values(i, j), quantizeBf16(exp_values(i, j)));
}

TEST(HostKernels, SoftmaxParallelMatchesSerial)
{
    Rng rng(3);
    const Matrix original = positiveMatrix(rng, 64, 40);
    Matrix serial = original;
    Matrix parallel = original;
    hostSoftmaxDivide(serial, 1);
    hostSoftmaxDivide(parallel, 8);
    EXPECT_EQ(Matrix::maxAbsDiff(serial, parallel), 0.0f);
}

TEST(HostKernels, LayerNormMatchesReference)
{
    Rng rng(4);
    Matrix activations(10, 48);
    activations.fillGaussian(rng, 0.5f, 2.0f);
    std::vector<float> gamma(48), beta(48);
    for (std::size_t j = 0; j < 48; ++j) {
        gamma[j] = static_cast<float>(rng.uniform(0.5, 1.5));
        beta[j] = static_cast<float>(rng.gaussian());
    }

    const Matrix reference =
        layerNorm(activations, gamma, beta, 1e-12f);
    Matrix in_place = activations;
    hostLayerNorm(in_place, gamma, beta, 1e-12f, 4);
    // The host kernel re-quantizes to bf16; compare at that resolution.
    for (std::size_t i = 0; i < in_place.rows(); ++i)
        for (std::size_t j = 0; j < in_place.cols(); ++j)
            EXPECT_NEAR(in_place(i, j), reference(i, j),
                        std::fabs(reference(i, j)) / 128.0f + 1e-3f);
}

TEST(HostKernels, LayerNormParallelMatchesSerial)
{
    Rng rng(5);
    Matrix a(40, 32);
    a.fillGaussian(rng, 0.0f, 1.0f);
    std::vector<float> gamma(32, 1.0f), beta(32, 0.0f);
    Matrix serial = a, parallel = a;
    hostLayerNorm(serial, gamma, beta, 1e-12f, 1);
    hostLayerNorm(parallel, gamma, beta, 1e-12f, 6);
    EXPECT_EQ(Matrix::maxAbsDiff(serial, parallel), 0.0f);
}

TEST(HostKernels, ParallelRowsVisitsEveryRowOnce)
{
    std::vector<std::atomic<int>> visits(257);
    for (auto &v : visits)
        v = 0;
    parallelRows(visits.size(), 7,
                 [&](std::size_t row) { ++visits[row]; });
    for (const auto &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(HostKernels, SmallWorkloadsStaySerial)
{
    // Fewer rows than 2x workers: runs inline (no thread overhead).
    int calls = 0;
    parallelRows(3, 8, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 3);
}

TEST(HostKernelsDeathTest, ZeroSoftmaxRowPanics)
{
    Matrix zeros(2, 4, 0.0f);
    EXPECT_DEATH(hostSoftmaxDivide(zeros), "summed to zero");
}

TEST(HostKernelsDeathTest, LayerNormArityPanics)
{
    Matrix a(2, 4, 1.0f);
    std::vector<float> wrong(3, 1.0f);
    EXPECT_DEATH(hostLayerNorm(a, wrong, wrong, 1e-12f), "arity");
}

} // namespace
} // namespace prose
