/**
 * @file
 * The SIMD kernel layer's bit-exactness contract: every compiled tier
 * must produce results bit-identical to the scalar reference for every
 * kernel, on randomized shapes (vector-width tails included), strides,
 * and special values (+-0, +-Inf, NaN payloads, denormals). The
 * denormal cases pin the AVX512-BF16 hardware-convert path, whose raw
 * instruction is DAZ and must fall back to the emulation per chunk.
 *
 * Also covered: PROSE_SIMD spec parsing (strict and lenient flavors)
 * and the pool-dispatch threshold observability counter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "numerics/bfloat16.hh"
#include "numerics/float_bits.hh"
#include "numerics/kernels/kernel_dispatch.hh"
#include "numerics/matrix.hh"

namespace prose {
namespace {

using kernels::KernelSet;
using kernels::SimdTier;

std::vector<SimdTier>
availableTiers()
{
    std::vector<SimdTier> tiers;
    for (SimdTier tier :
         { SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512 }) {
        if (kernels::simdTierAvailable(tier))
            tiers.push_back(tier);
    }
    return tiers;
}

/** Draw a float mixing normals with the special values the bf16
 *  conversions branch on. */
float
specialValue(Rng &rng)
{
    const double pick = rng.uniform(0.0, 1.0);
    if (pick < 0.70)
        return static_cast<float>(rng.gaussian(0.0, 4.0));
    if (pick < 0.76)
        return 0.0f;
    if (pick < 0.80)
        return -0.0f;
    if (pick < 0.84)
        return std::numeric_limits<float>::infinity();
    if (pick < 0.88)
        return -std::numeric_limits<float>::infinity();
    if (pick < 0.92)
        return std::numeric_limits<float>::quiet_NaN();
    if (pick < 0.96) {
        // Denormal fp32 (the AVX512-BF16 DAZ hazard).
        return static_cast<float>(rng.uniform(0.0, 1.0)) * 1e-41f;
    }
    // Values straddling the bf16 rounding boundary.
    return 1.0f + static_cast<float>(rng.uniform(0.0, 1.0)) * 0x1p-8f;
}

std::vector<float>
specialVector(Rng &rng, std::size_t n)
{
    std::vector<float> v(n);
    for (float &x : v)
        x = specialValue(rng);
    return v;
}

std::vector<std::uint16_t>
quantize(const std::vector<float> &v)
{
    std::vector<std::uint16_t> bits(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        bits[i] = Bfloat16::roundFromFloat(v[i]);
    return bits;
}

/**
 * Strict bit equality, except that any NaN matches any NaN: IEEE 754
 * leaves payload selection to the operation (x86 propagates the first
 * NaN *source operand*, and for the scalar tier that order is whatever
 * the compiler emitted), so payload bits are explicitly outside the
 * cross-tier contract. Where the reference makes a NaN, every tier
 * must make a NaN — which NaN is unspecified.
 */
::testing::AssertionResult
bitsIdentical(const std::vector<float> &a, const std::vector<float> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure() << "size mismatch";
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::isnan(a[i]) && std::isnan(b[i]))
            continue;
        if (!bitsEqual(a[i], b[i])) {
            return ::testing::AssertionFailure()
                   << "element " << i << ": " << a[i] << " vs " << b[i]
                   << " (bits " << std::hex << floatBits(a[i]) << " vs "
                   << floatBits(b[i]) << ")";
        }
    }
    return ::testing::AssertionSuccess();
}

/** Shapes chosen to cover full vector chunks, sub-width tails, and the
 *  1-element degenerate case for 8/16-lane kernels. */
constexpr std::size_t kLengths[] = { 1, 2, 7, 8, 9, 15, 16, 17,
                                     31, 33, 64, 100, 257 };

TEST(KernelDispatch, RowKernelsBitIdenticalAcrossTiers)
{
    const KernelSet &ref = kernels::kernelsForTier(SimdTier::Scalar);
    for (SimdTier tier : availableTiers()) {
        const KernelSet &ks = kernels::kernelsForTier(tier);
        Rng rng(1234);
        for (std::size_t n : kLengths) {
            const std::vector<float> src = specialVector(rng, n);
            const std::vector<float> acc0 = specialVector(rng, n);
            const std::vector<std::uint16_t> bits = quantize(src);
            const float av = specialValue(rng);

            // macRowF32
            std::vector<float> got = acc0, want = acc0;
            ks.macRowF32(got.data(), src.data(), av, n);
            ref.macRowF32(want.data(), src.data(), av, n);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " macRowF32 n=" << n;

            // macRowBf16
            got = acc0;
            want = acc0;
            ks.macRowBf16(got.data(), bits.data(), av, n);
            ref.macRowBf16(want.data(), bits.data(), av, n);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " macRowBf16 n=" << n;

            // mulAccRowF32 (the diagonal-batched wavefront sweep)
            const std::vector<float> src2 = specialVector(rng, n);
            got = acc0;
            want = acc0;
            ks.mulAccRowF32(got.data(), src.data(), src2.data(), n);
            ref.mulAccRowF32(want.data(), src.data(), src2.data(), n);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " mulAccRowF32 n=" << n;

            // quantizeBitsRow
            std::vector<std::uint16_t> qgot(n), qwant(n);
            ks.quantizeBitsRow(qgot.data(), src.data(), n);
            ref.quantizeBitsRow(qwant.data(), src.data(), n);
            EXPECT_EQ(qgot, qwant) << ks.name << " quantizeBitsRow n=" << n;

            // widenRow
            got.assign(n, 0.0f);
            want.assign(n, 0.0f);
            ks.widenRow(got.data(), bits.data(), n);
            ref.widenRow(want.data(), bits.data(), n);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " widenRow n=" << n;

            // quantizeRoundtripRow (out-of-place and in-place)
            got.assign(n, 0.0f);
            want.assign(n, 0.0f);
            ks.quantizeRoundtripRow(got.data(), src.data(), n);
            ref.quantizeRoundtripRow(want.data(), src.data(), n);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " quantizeRoundtripRow n=" << n;
            std::vector<float> inplace = src;
            ks.quantizeRoundtripRow(inplace.data(), inplace.data(), n);
            EXPECT_TRUE(bitsIdentical(inplace, want))
                << ks.name << " quantizeRoundtripRow in-place n=" << n;

            // truncateRow
            got.assign(n, 0.0f);
            want.assign(n, 0.0f);
            ks.truncateRow(got.data(), src.data(), n);
            ref.truncateRow(want.data(), src.data(), n);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " truncateRow n=" << n;

            // SIMD-unit rows (scalar operand pre-quantized per contract)
            const float q = quantizeBf16(av);
            got = acc0;
            want = acc0;
            ks.simdMulScalarRow(got.data(), q, n);
            ref.simdMulScalarRow(want.data(), q, n);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " simdMulScalarRow n=" << n;

            got = acc0;
            want = acc0;
            ks.simdAddScalarRow(got.data(), q, n);
            ref.simdAddScalarRow(want.data(), q, n);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " simdAddScalarRow n=" << n;

            got = acc0;
            want = acc0;
            ks.simdMulVectorRow(got.data(), src.data(), n);
            ref.simdMulVectorRow(want.data(), src.data(), n);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " simdMulVectorRow n=" << n;

            got = acc0;
            want = acc0;
            ks.simdAddVectorRow(got.data(), src.data(), n);
            ref.simdAddVectorRow(want.data(), src.data(), n);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " simdAddVectorRow n=" << n;

            // scaleQuantizeRow
            got = src;
            want = src;
            ks.scaleQuantizeRow(got.data(), av, n);
            ref.scaleQuantizeRow(want.data(), av, n);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " scaleQuantizeRow n=" << n;
        }
    }
}

TEST(KernelDispatch, GemmTileBitIdenticalAcrossTiersWithStrides)
{
    const KernelSet &ref = kernels::kernelsForTier(SimdTier::Scalar);
    struct Shape
    {
        std::size_t rows, cols, depth;
    };
    // Tails below/above the 8/16/32/64-lane block widths, plus strided
    // views (stride > cols) as the fsim tile loop produces them.
    const Shape shapes[] = { { 1, 1, 1 },    { 3, 5, 7 },
                             { 4, 16, 8 },   { 5, 17, 9 },
                             { 8, 33, 16 },  { 2, 64, 12 },
                             { 3, 65, 5 },   { 6, 128, 10 },
                             { 7, 100, 23 } };
    for (SimdTier tier : availableTiers()) {
        const KernelSet &ks = kernels::kernelsForTier(tier);
        Rng rng(99);
        for (const Shape &s : shapes) {
            const std::size_t aStride = s.depth + 3;
            const std::size_t bStride = s.cols + 5;
            const std::size_t cStride = s.cols + 2;
            std::vector<std::uint16_t> a =
                quantize(specialVector(rng, s.rows * aStride));
            std::vector<std::uint16_t> b =
                quantize(specialVector(rng, s.depth * bStride));
            const std::vector<float> c0 =
                specialVector(rng, s.rows * cStride);

            std::vector<float> got = c0, want = c0;
            ks.gemmTileBf16(got.data(), cStride, a.data(), aStride,
                            b.data(), bStride, s.rows, s.cols, s.depth);
            ref.gemmTileBf16(want.data(), cStride, a.data(), aStride,
                             b.data(), bStride, s.rows, s.cols, s.depth);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " gemmTileBf16 " << s.rows << "x" << s.cols
                << "x" << s.depth;
        }
    }
}

TEST(KernelDispatch, GemmTileF32BitIdenticalAcrossTiersWithStrides)
{
    const KernelSet &ref = kernels::kernelsForTier(SimdTier::Scalar);
    struct Shape
    {
        std::size_t rows, cols, depth;
    };
    // Odd row counts exercise the register-blocked kernels' remainder
    // row; tails below/above the 8/16/32/64-lane block widths and
    // strided views exercise the column tails.
    const Shape shapes[] = { { 1, 1, 1 },    { 3, 5, 7 },
                             { 4, 16, 8 },   { 5, 17, 9 },
                             { 8, 33, 16 },  { 2, 64, 12 },
                             { 3, 65, 5 },   { 6, 128, 10 },
                             { 7, 100, 23 } };
    for (SimdTier tier : availableTiers()) {
        const KernelSet &ks = kernels::kernelsForTier(tier);
        Rng rng(1234);
        for (const Shape &s : shapes) {
            const std::size_t aStride = s.depth + 3;
            const std::size_t bStride = s.cols + 5;
            const std::size_t cStride = s.cols + 2;
            const std::vector<float> a =
                specialVector(rng, s.rows * aStride);
            const std::vector<float> b =
                specialVector(rng, s.depth * bStride);
            const std::vector<float> c0 =
                specialVector(rng, s.rows * cStride);

            std::vector<float> got = c0, want = c0;
            ks.gemmTileF32(got.data(), cStride, a.data(), aStride,
                           b.data(), bStride, s.rows, s.cols, s.depth);
            ref.gemmTileF32(want.data(), cStride, a.data(), aStride,
                            b.data(), bStride, s.rows, s.cols, s.depth);
            EXPECT_TRUE(bitsIdentical(got, want))
                << ks.name << " gemmTileF32 " << s.rows << "x" << s.cols
                << "x" << s.depth;
        }
    }
}

TEST(KernelDispatch, LutRowBitIdenticalAcrossTiers)
{
    // Exhaustive over the index domain: a flat activation table is
    // addressed by the high 16 bits of each accumulator, so feed every
    // one of the 65536 bf16 bit patterns through every tier (plus tail
    // lengths below the gather width) and demand the exact table entry
    // the scalar reference picks. Low-half bits are set nonzero to pin
    // that they never leak into the index.
    const KernelSet &ref = kernels::kernelsForTier(SimdTier::Scalar);
    std::vector<std::uint32_t> table(65536);
    for (std::size_t i = 0; i < table.size(); ++i)
        table[i] = static_cast<std::uint32_t>(i) * 2654435761u;
    std::vector<float> inputs(65536);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const std::uint32_t bits =
            (static_cast<std::uint32_t>(i) << 16) | 0x1234u;
        std::memcpy(&inputs[i], &bits, sizeof(float));
    }
    auto rawBits = [](const std::vector<float> &v) {
        std::vector<std::uint32_t> bits(v.size());
        std::memcpy(bits.data(), v.data(),
                    v.size() * sizeof(std::uint32_t));
        return bits;
    };
    for (SimdTier tier : availableTiers()) {
        const KernelSet &ks = kernels::kernelsForTier(tier);
        std::vector<float> got = inputs, want = inputs;
        ks.lutRow(got.data(), table.data(), got.size());
        ref.lutRow(want.data(), table.data(), want.size());
        EXPECT_EQ(rawBits(got), rawBits(want))
            << ks.name << " lutRow exhaustive";
        for (std::size_t n : kLengths) {
            got.assign(inputs.begin(),
                       inputs.begin() + static_cast<std::ptrdiff_t>(n));
            want = got;
            ks.lutRow(got.data(), table.data(), n);
            ref.lutRow(want.data(), table.data(), n);
            EXPECT_EQ(rawBits(got), rawBits(want))
                << ks.name << " lutRow n=" << n;
        }
    }
}

TEST(KernelDispatch, GemmTileDoesNotSkipZeroTimesInf)
{
    // The stepped engine MACs every valid element, so 0 * Inf must
    // produce NaN in every tier — no zero-skip shortcuts.
    for (SimdTier tier : availableTiers()) {
        const KernelSet &ks = kernels::kernelsForTier(tier);
        const std::uint16_t zero = Bfloat16::roundFromFloat(0.0f);
        const std::uint16_t inf = Bfloat16::roundFromFloat(
            std::numeric_limits<float>::infinity());
        std::vector<float> acc(1, 0.0f);
        ks.gemmTileBf16(acc.data(), 1, &zero, 1, &inf, 1, 1, 1, 1);
        EXPECT_TRUE(std::isnan(acc[0]))
            << ks.name << ": 0 * Inf must be NaN";

        const float fzero = 0.0f;
        const float finf = std::numeric_limits<float>::infinity();
        acc[0] = 0.0f;
        ks.gemmTileF32(acc.data(), 1, &fzero, 1, &finf, 1, 1, 1, 1);
        EXPECT_TRUE(std::isnan(acc[0]))
            << ks.name << ": fp32 0 * Inf must be NaN";
    }
}

TEST(KernelDispatch, ActiveTierSwitchAndRestore)
{
    const SimdTier original = kernels::activeSimdTier();
    for (SimdTier tier : availableTiers()) {
        kernels::setActiveSimdTier(tier);
        EXPECT_EQ(kernels::activeSimdTier(), tier);
        EXPECT_STREQ(kernels::activeKernels().name,
                     kernels::toString(tier));
    }
    kernels::setActiveSimdTier(original);
    EXPECT_EQ(kernels::activeSimdTier(), original);
}

TEST(KernelDispatch, MatmulBf16BitIdenticalAcrossTiers)
{
    // End-to-end: the full bf16 matmul (arena + bits plane + pooled
    // kernels) must agree bit-for-bit across every available tier.
    const SimdTier original = kernels::activeSimdTier();
    Rng rng(7);
    Matrix a(13, 37);
    Matrix b(37, 21);
    a.fillGaussian(rng, 0.0f, 2.0f);
    b.fillGaussian(rng, 0.0f, 2.0f);

    kernels::setActiveSimdTier(SimdTier::Scalar);
    const Matrix want = matmulBf16(a, b);
    for (SimdTier tier : availableTiers()) {
        kernels::setActiveSimdTier(tier);
        const Matrix got = matmulBf16(a, b);
        EXPECT_EQ(Matrix::maxAbsDiff(got, want), 0.0f)
            << "tier " << kernels::toString(tier);
    }
    kernels::setActiveSimdTier(original);
}

TEST(KernelDispatch, MatmulF32BitIdenticalAcrossTiers)
{
    // End-to-end over the rewired fp32 tiled matmul (kKBlock/kJBlock
    // blocking on top of gemmTileF32), including a non-finite B entry
    // so the no-zero-skip contract is exercised through the public API.
    const SimdTier original = kernels::activeSimdTier();
    Rng rng(21);
    Matrix a(13, 37);
    Matrix b(37, 21);
    a.fillGaussian(rng, 0.0f, 2.0f);
    b.fillGaussian(rng, 0.0f, 2.0f);
    a.at(2, 3) = 0.0f;
    b.at(3, 4) = std::numeric_limits<float>::infinity();

    kernels::setActiveSimdTier(SimdTier::Scalar);
    const Matrix want = matmul(a, b);
    for (SimdTier tier : availableTiers()) {
        kernels::setActiveSimdTier(tier);
        const Matrix got = matmul(a, b);
        const float *gp = got.data();
        const float *wp = want.data();
        bool same = got.size() == want.size();
        for (std::size_t i = 0; same && i < got.size(); ++i) {
            if (std::isnan(gp[i]) && std::isnan(wp[i]))
                continue;
            same = bitsEqual(gp[i], wp[i]);
        }
        EXPECT_TRUE(same) << "tier " << kernels::toString(tier);
    }
    kernels::setActiveSimdTier(original);
}

TEST(KernelDispatchSpec, StrictParseAcceptsKnownTiers)
{
    EXPECT_EQ(kernels::parseSimdTier("scalar"), SimdTier::Scalar);
    EXPECT_EQ(kernels::parseSimdTier("avx2"), SimdTier::Avx2);
    EXPECT_EQ(kernels::parseSimdTier("avx512"), SimdTier::Avx512);
    EXPECT_EQ(kernels::parseSimdTier("auto"), kernels::bestSimdTier());
}

using KernelDispatchSpecDeathTest = ::testing::Test;

TEST(KernelDispatchSpecDeathTest, StrictParseRejectsUnknownTier)
{
    EXPECT_DEATH(kernels::parseSimdTier("sse9"), "unknown SIMD tier");
    EXPECT_DEATH(kernels::parseSimdTier(""), "unknown SIMD tier");
}

TEST(KernelDispatchSpec, LenientSpecFallsBackToAuto)
{
    EXPECT_EQ(kernels::simdTierFromSpec(nullptr),
              kernels::bestSimdTier());
    EXPECT_EQ(kernels::simdTierFromSpec(""), kernels::bestSimdTier());
    EXPECT_EQ(kernels::simdTierFromSpec("auto"),
              kernels::bestSimdTier());
    // Unknown names warn (not fatal) and fall back — environment input
    // must never kill a run.
    EXPECT_EQ(kernels::simdTierFromSpec("turbo9000"),
              kernels::bestSimdTier());
    EXPECT_EQ(kernels::simdTierFromSpec("scalar"), SimdTier::Scalar);
}

TEST(KernelDispatchSpec, TierNamesRoundTrip)
{
    for (SimdTier tier :
         { SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512 })
        EXPECT_EQ(kernels::parseSimdTier(kernels::toString(tier)), tier);
}

TEST(KernelDispatchSpec, ScalarAlwaysAvailable)
{
    EXPECT_TRUE(kernels::simdTierAvailable(SimdTier::Scalar));
    // bestSimdTier must itself be runnable.
    EXPECT_TRUE(kernels::simdTierAvailable(kernels::bestSimdTier()));
}

TEST(MatmulPoolThreshold, SmallShapesStaySerialLargeShapesDispatch)
{
    // Threshold semantics are observable through the pool's dispatch
    // counter: a 128x768x768 GEMM (75.5M MACs, under the 2^25-per-lane
    // floor on 4 lanes — the bench shape whose pooled twin recorded a
    // loss to serial) must run inline, a 640^3 one (262M MACs, ~65.5M
    // per lane) must fan out when lanes are available. (512^3 would sit
    // exactly on the 4-lane boundary — 134,217,728 == 4 * 2^25 — so the
    // dispatching shape is chosen comfortably above it.)
    ThreadPool pool(4);
    ThreadPool::setGlobalOverride(&pool);

    Rng rng(11);
    Matrix small_a(128, 768), small_b(768, 768);
    small_a.fillGaussian(rng, 0.0f, 1.0f);
    small_b.fillGaussian(rng, 0.0f, 1.0f);
    const std::uint64_t before_small = ThreadPool::dispatchCount();
    matmul(small_a, small_b);
    EXPECT_EQ(ThreadPool::dispatchCount(), before_small)
        << "128x768x768 is below the per-lane MAC floor and must not "
           "pay pool dispatch";

    Matrix big_a(640, 640), big_b(640, 640);
    big_a.fillGaussian(rng, 0.0f, 1.0f);
    big_b.fillGaussian(rng, 0.0f, 1.0f);
    const std::uint64_t before_big = ThreadPool::dispatchCount();
    matmul(big_a, big_b);
    EXPECT_GT(ThreadPool::dispatchCount(), before_big)
        << "640^3 clears the per-lane MAC floor on 4 lanes and must "
           "fan out";

    ThreadPool::setGlobalOverride(nullptr);
}

TEST(MatmulPoolThreshold, SerialPoolNeverDispatches)
{
    // With one lane the threshold is moot: nothing may reach the pool.
    ThreadPool pool(1);
    ThreadPool::setGlobalOverride(&pool);
    Rng rng(12);
    Matrix a(256, 256), b(256, 256);
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    const std::uint64_t before = ThreadPool::dispatchCount();
    matmul(a, b);
    matmulBf16(a, b);
    EXPECT_EQ(ThreadPool::dispatchCount(), before);
    ThreadPool::setGlobalOverride(nullptr);
}

} // namespace
} // namespace prose
