/** @file Tests for the matrix container and tensor-op vocabulary. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "numerics/activations.hh"
#include "numerics/bfloat16.hh"
#include "numerics/matrix.hh"

namespace prose {
namespace {

Matrix
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix m(rows, cols);
    m.fillGaussian(rng, 0.0f, 1.0f);
    return m;
}

TEST(Matrix, ConstructZeroFilled)
{
    Matrix m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_EQ(m(i, j), 0.0f);
}

TEST(Matrix, FillConstructor)
{
    Matrix m(2, 2, 7.5f);
    EXPECT_EQ(m(1, 1), 7.5f);
}

TEST(Matrix, RowPointerMatchesIndexing)
{
    Matrix m(2, 3);
    m(1, 2) = 9.0f;
    EXPECT_EQ(m.row(1)[2], 9.0f);
}

TEST(MatrixDeathTest, OutOfRangePanics)
{
    Matrix m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "out of range");
}

TEST(Matmul, IdentityIsNeutral)
{
    Rng rng(1);
    Matrix a = randomMatrix(rng, 5, 5);
    Matrix eye(5, 5);
    for (std::size_t i = 0; i < 5; ++i)
        eye(i, i) = 1.0f;
    EXPECT_LT(Matrix::maxAbsDiff(matmul(a, eye), a), 1e-6f);
    EXPECT_LT(Matrix::maxAbsDiff(matmul(eye, a), a), 1e-6f);
}

TEST(Matmul, KnownSmallProduct)
{
    Matrix a(2, 3);
    Matrix b(3, 2);
    float va = 1.0f;
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            a(i, j) = va++;
    float vb = 1.0f;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            b(i, j) = vb++;
    const Matrix c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 22.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 28.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 49.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 64.0f);
}

TEST(Matmul, AssociatesWithTranspose)
{
    // (A B)^T == B^T A^T.
    Rng rng(2);
    const Matrix a = randomMatrix(rng, 4, 6);
    const Matrix b = randomMatrix(rng, 6, 3);
    const Matrix lhs = transpose(matmul(a, b));
    const Matrix rhs = matmul(transpose(b), transpose(a));
    EXPECT_LT(Matrix::maxAbsDiff(lhs, rhs), 1e-4f);
}

TEST(MatmulDeathTest, InnerDimMismatchPanics)
{
    Matrix a(2, 3), b(4, 2);
    EXPECT_DEATH(matmul(a, b), "inner-dim");
}

TEST(MatmulBf16, MatchesQuantizedReference)
{
    Rng rng(3);
    Matrix a = randomMatrix(rng, 7, 9);
    Matrix b = randomMatrix(rng, 9, 5);
    Matrix aq = a, bq = b;
    aq.quantizeBf16InPlace();
    bq.quantizeBf16InPlace();
    EXPECT_EQ(Matrix::maxAbsDiff(matmulBf16(a, b), matmul(aq, bq)), 0.0f);
}

TEST(MatmulBf16, CloseToFp32ForModestMagnitudes)
{
    Rng rng(4);
    const Matrix a = randomMatrix(rng, 16, 32);
    const Matrix b = randomMatrix(rng, 32, 16);
    const float diff = Matrix::maxAbsDiff(matmulBf16(a, b), matmul(a, b));
    // Error ~ k * |a| * |b| * 2^-8: with k=32 and unit-normal entries,
    // well under 0.5.
    EXPECT_LT(diff, 0.5f);
    EXPECT_GT(diff, 0.0f); // quantization is actually happening
}

TEST(MulAdd, ScalesAndAdds)
{
    Matrix a(2, 2, 1.0f), b(2, 2, 10.0f);
    const Matrix c = mulAdd(2.0f, a, 0.5f, b);
    EXPECT_FLOAT_EQ(c(0, 0), 7.0f);
}

TEST(MatDiv, ReciprocalMultiplication)
{
    Matrix a(2, 2, 8.0f);
    const Matrix c = matDiv(a, 4.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 2.0f);
}

TEST(MatDivDeathTest, DivideByZeroPanics)
{
    Matrix a(1, 1, 1.0f);
    EXPECT_DEATH(matDiv(a, 0.0f), "zero");
}

TEST(Transpose, Involution)
{
    Rng rng(5);
    const Matrix a = randomMatrix(rng, 3, 7);
    EXPECT_EQ(Matrix::maxAbsDiff(transpose(transpose(a)), a), 0.0f);
}

TEST(RowSoftmax, RowsSumToOne)
{
    Rng rng(6);
    const Matrix a = randomMatrix(rng, 10, 20);
    const Matrix p = rowSoftmax(a);
    for (std::size_t i = 0; i < p.rows(); ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < p.cols(); ++j) {
            EXPECT_GT(p(i, j), 0.0f);
            sum += p(i, j);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(RowSoftmax, StableUnderLargeInputs)
{
    Matrix a(1, 3);
    a(0, 0) = 1000.0f;
    a(0, 1) = 999.0f;
    a(0, 2) = 998.0f;
    const Matrix p = rowSoftmax(a);
    EXPECT_FALSE(std::isnan(p(0, 0)));
    EXPECT_GT(p(0, 0), p(0, 1));
    EXPECT_GT(p(0, 1), p(0, 2));
}

TEST(RowSoftmax, ShiftInvariant)
{
    Rng rng(7);
    Matrix a = randomMatrix(rng, 4, 8);
    Matrix shifted = a;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            shifted(i, j) += 5.0f;
    EXPECT_LT(Matrix::maxAbsDiff(rowSoftmax(a), rowSoftmax(shifted)),
              1e-5f);
}

TEST(LayerNorm, NormalizesRows)
{
    Rng rng(8);
    const Matrix a = randomMatrix(rng, 6, 64);
    std::vector<float> gamma(64, 1.0f), beta(64, 0.0f);
    const Matrix out = layerNorm(a, gamma, beta);
    for (std::size_t i = 0; i < out.rows(); ++i) {
        double sum = 0.0, sum_sq = 0.0;
        for (std::size_t j = 0; j < out.cols(); ++j) {
            sum += out(i, j);
            sum_sq += static_cast<double>(out(i, j)) * out(i, j);
        }
        EXPECT_NEAR(sum / 64.0, 0.0, 1e-4);
        EXPECT_NEAR(sum_sq / 64.0, 1.0, 1e-3);
    }
}

TEST(LayerNorm, GainAndBiasApplied)
{
    Matrix a(1, 4);
    a(0, 0) = 1.0f;
    a(0, 1) = 2.0f;
    a(0, 2) = 3.0f;
    a(0, 3) = 4.0f;
    std::vector<float> gamma(4, 2.0f), beta(4, 10.0f);
    const Matrix out = layerNorm(a, gamma, beta);
    // Mean of outputs should be the bias (gain scales zero-mean data).
    double sum = 0.0;
    for (std::size_t j = 0; j < 4; ++j)
        sum += out(0, j);
    EXPECT_NEAR(sum / 4.0, 10.0, 1e-4);
}

TEST(Bmm, BatchedMatchesLooped)
{
    Rng rng(9);
    std::vector<Matrix> as, bs;
    for (int i = 0; i < 4; ++i) {
        as.push_back(randomMatrix(rng, 3, 5));
        bs.push_back(randomMatrix(rng, 5, 2));
    }
    const auto cs = bmm(as, bs);
    ASSERT_EQ(cs.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(Matrix::maxAbsDiff(cs[i], matmul(as[i], bs[i])), 0.0f);
}

TEST(SliceAndConcat, RoundTrip)
{
    Rng rng(10);
    const Matrix a = randomMatrix(rng, 4, 12);
    const Matrix left = sliceCols(a, 0, 5);
    const Matrix right = sliceCols(a, 5, 7);
    EXPECT_EQ(Matrix::maxAbsDiff(hconcat({ left, right }), a), 0.0f);
}

TEST(SliceRows, ExtractsBlock)
{
    Rng rng(11);
    const Matrix a = randomMatrix(rng, 8, 3);
    const Matrix mid = sliceRows(a, 2, 4);
    EXPECT_EQ(mid.rows(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_EQ(mid(i, j), a(i + 2, j));
}

TEST(Map, AppliesFunction)
{
    Matrix a(2, 2, 4.0f);
    const Matrix out = map(a, [](float x) { return x * x; });
    EXPECT_FLOAT_EQ(out(0, 0), 16.0f);
}

TEST(FrobeniusNorm, KnownValue)
{
    Matrix a(1, 2);
    a(0, 0) = 3.0f;
    a(0, 1) = 4.0f;
    EXPECT_FLOAT_EQ(a.frobeniusNorm(), 5.0f);
}

TEST(QuantizeBf16InPlace, EveryElementRepresentable)
{
    Rng rng(12);
    Matrix a = randomMatrix(rng, 5, 5);
    a.quantizeBf16InPlace();
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 5; ++j)
            EXPECT_EQ(a(i, j), quantizeBf16(a(i, j)));
}

// --- Pooled/tiled kernel bit-exactness --------------------------------

/** Textbook i-k-j matmul: the accumulation-order reference the tiled
 *  kernel promises to reproduce bit-for-bit. */
Matrix
naiveMatmul(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t k = 0; k < a.cols(); ++k)
            for (std::size_t j = 0; j < b.cols(); ++j)
                c(i, j) += a(i, k) * b(k, j);
    return c;
}

struct GemmShape
{
    std::size_t m, k, n;
};

// Odd/even and tile-straddling shapes (kernel blocks: k=128, j=256).
const GemmShape kShapes[] = {
    { 1, 1, 1 },     { 3, 5, 2 },      { 64, 64, 64 },
    { 65, 129, 33 }, { 127, 128, 257 }, { 130, 300, 70 },
};

TEST(MatmulPooled, BitIdenticalToNaiveSerial)
{
    ThreadPool pool(4);
    ThreadPool::setGlobalOverride(&pool);
    Rng rng(21);
    for (const GemmShape &s : kShapes) {
        const Matrix a = randomMatrix(rng, s.m, s.k);
        const Matrix b = randomMatrix(rng, s.k, s.n);
        EXPECT_EQ(Matrix::maxAbsDiff(matmul(a, b), naiveMatmul(a, b)),
                  0.0f)
            << s.m << "x" << s.k << "x" << s.n;
    }
    ThreadPool::setGlobalOverride(nullptr);
}

TEST(MatmulPooled, SerialGuardMatchesPooledBitwise)
{
    ThreadPool pool(4);
    ThreadPool::setGlobalOverride(&pool);
    Rng rng(22);
    const Matrix a = randomMatrix(rng, 130, 300);
    const Matrix b = randomMatrix(rng, 300, 70);
    const Matrix pooled = matmul(a, b);
    Matrix serial;
    {
        ThreadPool::SerialGuard guard;
        serial = matmul(a, b);
    }
    EXPECT_EQ(Matrix::maxAbsDiff(pooled, serial), 0.0f);
    ThreadPool::setGlobalOverride(nullptr);
}

TEST(MatmulPooled, Bf16BitIdenticalAcrossPoolSizes)
{
    Rng rng(23);
    for (const GemmShape &s : kShapes) {
        const Matrix a = randomMatrix(rng, s.m, s.k);
        const Matrix b = randomMatrix(rng, s.k, s.n);
        Matrix aq = a, bq = b;
        aq.quantizeBf16InPlace();
        bq.quantizeBf16InPlace();
        const Matrix want = naiveMatmul(aq, bq);
        Matrix serial;
        {
            ThreadPool::SerialGuard guard;
            serial = matmulBf16(a, b);
        }
        ThreadPool pool(3);
        ThreadPool::setGlobalOverride(&pool);
        const Matrix pooled = matmulBf16(a, b);
        ThreadPool::setGlobalOverride(nullptr);
        EXPECT_EQ(Matrix::maxAbsDiff(serial, want), 0.0f);
        EXPECT_EQ(Matrix::maxAbsDiff(pooled, want), 0.0f);
    }
}

TEST(MatmulPooled, BmmMatchesPerElementMatmul)
{
    ThreadPool pool(4);
    ThreadPool::setGlobalOverride(&pool);
    Rng rng(24);
    std::vector<Matrix> as, bs;
    for (int i = 0; i < 5; ++i) {
        as.push_back(randomMatrix(rng, 9, 13));
        bs.push_back(randomMatrix(rng, 13, 7));
    }
    const std::vector<Matrix> cs = bmm(as, bs);
    ASSERT_EQ(cs.size(), as.size());
    for (std::size_t i = 0; i < as.size(); ++i)
        EXPECT_EQ(Matrix::maxAbsDiff(cs[i], naiveMatmul(as[i], bs[i])),
                  0.0f);
    ThreadPool::setGlobalOverride(nullptr);
}

// --- Non-finite propagation (the aik == 0 skip regression) ------------

TEST(Matmul, ZeroTimesInfInBProducesNaN)
{
    Matrix a(1, 2);
    a(0, 0) = 0.0f;
    a(0, 1) = 1.0f;
    Matrix b(2, 1);
    b(0, 0) = std::numeric_limits<float>::infinity();
    b(1, 0) = 1.0f;
    // 0 * Inf must poison the accumulator; the old zero-skip fast path
    // dropped the term and returned 1.0.
    EXPECT_TRUE(std::isnan(matmul(a, b)(0, 0)));
}

TEST(Matmul, NaNInBPropagatesThroughZeroRow)
{
    Matrix a(2, 2); // all zeros
    Matrix b(2, 2);
    b(1, 1) = std::numeric_limits<float>::quiet_NaN();
    const Matrix c = matmul(a, b);
    EXPECT_TRUE(std::isnan(c(0, 1)));
    EXPECT_TRUE(std::isnan(c(1, 1)));
    EXPECT_EQ(c(0, 0), 0.0f);
}

TEST(Matmul, SparseFiniteInputsStayBitExact)
{
    // With an all-finite B the zero-skip fast path must stay
    // bit-identical to the unskipped reference.
    Rng rng(25);
    Matrix a = randomMatrix(rng, 33, 65);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            if (rng.uniform() < 0.7)
                a(i, j) = (rng.uniform() < 0.5) ? 0.0f : -0.0f;
    const Matrix b = randomMatrix(rng, 65, 17);
    EXPECT_EQ(Matrix::maxAbsDiff(matmul(a, b), naiveMatmul(a, b)), 0.0f);
}

// --- QuantizedOperand weight cache ------------------------------------

TEST(QuantizedOperand, MatchesPerCallQuantizationBitwise)
{
    Rng rng(26);
    const Matrix a = randomMatrix(rng, 19, 31);
    const Matrix w = randomMatrix(rng, 31, 11);
    const QuantizedOperand cached(w);
    EXPECT_EQ(cached.version(), 1u);
    EXPECT_EQ(Matrix::maxAbsDiff(matmulBf16(a, cached), matmulBf16(a, w)),
              0.0f);
}

TEST(QuantizedOperand, UpdateTracksMutatedWeights)
{
    Rng rng(27);
    const Matrix a = randomMatrix(rng, 6, 8);
    Matrix w = randomMatrix(rng, 8, 4);
    QuantizedOperand cached(w);
    const std::uint64_t v1 = cached.version();

    w(3, 2) += 64.0f; // well outside bf16 rounding noise
    cached.update(w);
    EXPECT_GT(cached.version(), v1);
    EXPECT_EQ(Matrix::maxAbsDiff(matmulBf16(a, cached), matmulBf16(a, w)),
              0.0f);
}

TEST(QuantizedOperand, DefaultIsEmpty)
{
    QuantizedOperand op;
    EXPECT_TRUE(op.empty());
    EXPECT_EQ(op.version(), 0u);
    Rng rng(28);
    const Matrix w = randomMatrix(rng, 3, 3);
    op.update(w);
    EXPECT_FALSE(op.empty());
    EXPECT_EQ(op.version(), 1u);
}

} // namespace
} // namespace prose
