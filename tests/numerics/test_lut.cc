/** @file Tests for the two-level special-function lookup tables
 *  (Figures 13/14: truncation windows, storage budgets, accuracy). */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "numerics/activations.hh"
#include "numerics/bfloat16.hh"
#include "numerics/lut.hh"

namespace prose {
namespace {

TEST(GeluLut, StorageIsExactlyFourKilobytes)
{
    // 8 exponents x 2 signs x 128 mantissas x 2 bytes = 4 KiB (paper).
    const TwoLevelLut lut = TwoLevelLut::makeGelu();
    EXPECT_EQ(lut.storageBytes(), 4096u);
    EXPECT_EQ(lut.segmentCount(), 16u);
}

TEST(ExpLut, StorageIsExactlySixKilobytes)
{
    // 12 exponents x 2 signs x 128 mantissas x 2 bytes = 6 KiB (paper).
    const TwoLevelLut lut = TwoLevelLut::makeExp();
    EXPECT_EQ(lut.storageBytes(), 6144u);
    EXPECT_EQ(lut.segmentCount(), 24u);
}

TEST(GeluLut, ExactInWindow)
{
    // Inside the window the LUT stores the correctly-rounded bf16 GELU,
    // so it is bit-exact against round(geluTanh(x)).
    const TwoLevelLut lut = TwoLevelLut::makeGelu();
    for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
        const Bfloat16 x = Bfloat16::fromBits(
            static_cast<std::uint16_t>(bits));
        if (x.isNan() || x.isZero() || x.isInf() ||
            x.biasedExponent() == 0) {
            continue;
        }
        if (x.exponent() < -4 || x.exponent() > 3)
            continue;
        EXPECT_EQ(lut.lookup(x).bits(),
                  Bfloat16(geluTanh(x.toFloat())).bits())
            << "x=" << x.toFloat();
    }
}

TEST(GeluLut, BelowWindowIsZero)
{
    const TwoLevelLut lut = TwoLevelLut::makeGelu();
    // |x| < 2^-4: approximated as 0 (Figure 13).
    EXPECT_EQ(lut.lookupFloat(0.03f), 0.0f);
    EXPECT_EQ(lut.lookupFloat(-0.03f), 0.0f);
    EXPECT_EQ(lut.lookupFloat(0.0f), 0.0f);
}

TEST(GeluLut, AboveWindowIsLinearOrZero)
{
    const TwoLevelLut lut = TwoLevelLut::makeGelu();
    // Large positive: GELU(x) ~ x. Large negative: ~ 0.
    EXPECT_FLOAT_EQ(lut.lookupFloat(20.0f), quantizeBf16(20.0f));
    EXPECT_FLOAT_EQ(lut.lookupFloat(100.0f), quantizeBf16(100.0f));
    EXPECT_EQ(lut.lookupFloat(-20.0f), 0.0f);
}

TEST(GeluLut, AbsoluteErrorSmallEverywhere)
{
    // End-to-end accuracy over the range activations actually occupy.
    const TwoLevelLut lut = TwoLevelLut::makeGelu();
    float worst = 0.0f;
    for (float x = -8.0f; x <= 8.0f; x += 1.0f / 128.0f) {
        const float err = std::fabs(lut.lookupFloat(x) - geluTanh(x));
        worst = std::max(worst, err);
    }
    // bf16 has ~2 decimal digits; the window keeps error near one ULP
    // of the output magnitude.
    EXPECT_LT(worst, 0.04f);
}

TEST(ExpLut, ExactInWindow)
{
    const TwoLevelLut lut = TwoLevelLut::makeExp();
    for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
        const Bfloat16 x = Bfloat16::fromBits(
            static_cast<std::uint16_t>(bits));
        if (x.isNan() || x.isZero() || x.isInf() ||
            x.biasedExponent() == 0) {
            continue;
        }
        if (x.exponent() < -6 || x.exponent() > 5)
            continue;
        EXPECT_EQ(lut.lookup(x).bits(),
                  Bfloat16(std::exp(x.toFloat())).bits())
            << "x=" << x.toFloat();
    }
}

TEST(ExpLut, BelowWindowIsOne)
{
    const TwoLevelLut lut = TwoLevelLut::makeExp();
    // |x| < 2^-6: exp(x) ~ 1 (Figure 14).
    EXPECT_FLOAT_EQ(lut.lookupFloat(0.001f), 1.0f);
    EXPECT_FLOAT_EQ(lut.lookupFloat(-0.001f), 1.0f);
    EXPECT_FLOAT_EQ(lut.lookupFloat(0.0f), 1.0f);
}

TEST(ExpLut, AboveWindowSaturates)
{
    const TwoLevelLut lut = TwoLevelLut::makeExp();
    // Large negative input flushes to zero; large positive clamps to
    // the largest finite bf16 rather than producing infinity.
    EXPECT_EQ(lut.lookupFloat(-100.0f), 0.0f);
    const float max_bf16 = Bfloat16::fromBits(0x7f7f).toFloat();
    EXPECT_FLOAT_EQ(lut.lookupFloat(100.0f), max_bf16);
}

TEST(ExpLut, RelativeErrorInSoftmaxRange)
{
    // Softmax scores land roughly in [-30, 10]; relative error there
    // must stay near bf16 resolution for model accuracy (Section 3.2).
    const TwoLevelLut lut = TwoLevelLut::makeExp();
    for (float x = -30.0f; x <= 10.0f; x += 0.037f) {
        const float ref = std::exp(quantizeBf16(x));
        const float got = lut.lookupFloat(x);
        if (ref < 1e-30f)
            continue;
        EXPECT_LT(std::fabs(got - ref) / ref, 0.02f) << "x=" << x;
    }
}

TEST(Lut, NanPropagates)
{
    const TwoLevelLut lut = TwoLevelLut::makeExp();
    const Bfloat16 nan = Bfloat16::fromBits(0x7fc0);
    EXPECT_TRUE(lut.lookup(nan).isNan());
}

TEST(Lut, DenormalsTakeBelowWindowPath)
{
    const TwoLevelLut gelu = TwoLevelLut::makeGelu();
    const TwoLevelLut exp = TwoLevelLut::makeExp();
    const Bfloat16 denormal = Bfloat16::fromBits(0x0001);
    EXPECT_EQ(gelu.lookup(denormal).toFloat(), 0.0f);
    EXPECT_EQ(exp.lookup(denormal).toFloat(), 1.0f);
}

TEST(Lut, InfinityTakesAboveWindowPath)
{
    const TwoLevelLut gelu = TwoLevelLut::makeGelu();
    const Bfloat16 pos_inf = Bfloat16::fromBits(0x7f80);
    const Bfloat16 neg_inf = Bfloat16::fromBits(0xff80);
    EXPECT_TRUE(gelu.lookup(pos_inf).isInf());
    EXPECT_EQ(gelu.lookup(neg_inf).toFloat(), 0.0f);
}

TEST(Lut, FlattenMatchesLookupExhaustively)
{
    // The flat gather table the fast SIMD wavefront uses must agree
    // with the hardware-faithful two-level lookup on every one of the
    // 65536 bf16 input patterns (NaNs, denormals, and both window
    // boundaries included) — bit-for-bit on the widened fp32 output.
    for (const TwoLevelLut &lut :
         { TwoLevelLut::makeGelu(), TwoLevelLut::makeExp() }) {
        const std::vector<std::uint32_t> flat = lut.flattenToFloatBits();
        ASSERT_EQ(flat.size(), 65536u);
        for (std::uint32_t bits = 0; bits < 65536u; ++bits) {
            const float want =
                lut.lookup(Bfloat16::fromBits(
                               static_cast<std::uint16_t>(bits)))
                    .toFloat();
            std::uint32_t want_bits;
            std::memcpy(&want_bits, &want, sizeof(want_bits));
            ASSERT_EQ(flat[bits], want_bits) << "pattern " << bits;
        }
    }
}

TEST(Lut, OneLookupTouchesSingleSegment)
{
    // Structural sanity: window bounds are honored by segmentCount and
    // the exponent accessors.
    const TwoLevelLut lut = TwoLevelLut::makeGelu();
    EXPECT_EQ(lut.exponentLow(), -4);
    EXPECT_EQ(lut.exponentHigh(), 3);
    EXPECT_EQ(lut.name(), "GELU");
}

} // namespace
} // namespace prose
