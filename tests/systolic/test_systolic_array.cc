/** @file Tests for the cycle-stepped systolic array in matmul mode. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "numerics/bfloat16.hh"
#include "numerics/matrix.hh"
#include "systolic/systolic_array.hh"

namespace prose {
namespace {

Matrix
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix m(rows, cols);
    m.fillGaussian(rng, 0.0f, 1.0f);
    return m;
}

/** Reference: what the fp32 accumulators should hold. */
Matrix
accumulatorReference(const Matrix &a, const Matrix &b)
{
    return matmulBf16(a, b);
}

TEST(SystolicMatmul, FullTileBitExact)
{
    Rng rng(1);
    SystolicArray array(ArrayGeometry::mType(8));
    const Matrix a = randomMatrix(rng, 8, 12);
    const Matrix b = randomMatrix(rng, 12, 8);
    array.matmulTile(a, b);
    EXPECT_EQ(Matrix::maxAbsDiff(array.accumulators(),
                                 accumulatorReference(a, b)),
              0.0f);
}

TEST(SystolicMatmul, PartialTileBitExact)
{
    Rng rng(2);
    SystolicArray array(ArrayGeometry::mType(8));
    const Matrix a = randomMatrix(rng, 5, 9);
    const Matrix b = randomMatrix(rng, 9, 3);
    array.matmulTile(a, b);
    EXPECT_EQ(Matrix::maxAbsDiff(array.accumulators(),
                                 accumulatorReference(a, b)),
              0.0f);
}

TEST(SystolicMatmul, RandomShapesProperty)
{
    // Property: for random tile shapes on random array sizes, the
    // cycle-stepped accumulators equal the bf16 reference bit-for-bit.
    Rng rng(3);
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t n = 2 + rng.below(15);
        const std::size_t rows = 1 + rng.below(n);
        const std::size_t cols = 1 + rng.below(n);
        const std::size_t k = 1 + rng.below(40);
        SystolicArray array(
            ArrayGeometry::mType(static_cast<std::uint32_t>(n)));
        const Matrix a = randomMatrix(rng, rows, k);
        const Matrix b = randomMatrix(rng, k, cols);
        array.matmulTile(a, b);
        EXPECT_EQ(Matrix::maxAbsDiff(array.accumulators(),
                                     accumulatorReference(a, b)),
                  0.0f)
            << "n=" << n << " rows=" << rows << " cols=" << cols
            << " k=" << k;
    }
}

TEST(SystolicMatmul, OutputStationaryAccumulationAcrossKTiles)
{
    // Split the k dimension into two tile passes; accumulators must hold
    // the sum — the defining property of the output-stationary design.
    Rng rng(4);
    SystolicArray array(ArrayGeometry::mType(6));
    const Matrix a = randomMatrix(rng, 6, 20);
    const Matrix b = randomMatrix(rng, 20, 6);

    const Matrix a1 = sliceCols(a, 0, 10);
    const Matrix a2 = sliceCols(a, 10, 10);
    const Matrix b1 = sliceRows(b, 0, 10);
    const Matrix b2 = sliceRows(b, 10, 10);
    array.matmulTile(a1, b1);
    array.matmulTile(a2, b2);

    // The array accumulates per-PE in increasing-k order, which is
    // exactly the reference matmul's summation order over the full k —
    // so the comparison is bit-exact against the unsplit product.
    const Matrix expected = accumulatorReference(a, b);
    EXPECT_EQ(Matrix::maxAbsDiff(array.accumulators(), expected), 0.0f);
}

TEST(SystolicMatmul, CycleCountMatchesClosedForm)
{
    // Unstalled wavefront count is k + rows + cols - 2.
    Rng rng(5);
    for (int trial = 0; trial < 15; ++trial) {
        const std::size_t n = 2 + rng.below(10);
        const std::size_t rows = 1 + rng.below(n);
        const std::size_t cols = 1 + rng.below(n);
        const std::size_t k = 1 + rng.below(30);
        SystolicArray array(
            ArrayGeometry::mType(static_cast<std::uint32_t>(n)));
        const std::uint64_t cycles = array.matmulTile(
            randomMatrix(rng, rows, k), randomMatrix(rng, k, cols));
        EXPECT_EQ(cycles, k + rows + cols - 2);
        EXPECT_EQ(array.stallCycles(), 0u);
    }
}

TEST(SystolicMatmul, MacCountEqualsUsefulWork)
{
    Rng rng(6);
    SystolicArray array(ArrayGeometry::mType(4));
    array.matmulTile(randomMatrix(rng, 3, 7), randomMatrix(rng, 7, 4));
    EXPECT_EQ(array.macCount(), 3u * 7u * 4u);
}

TEST(SystolicMatmul, StallsWhenSupplyStarved)
{
    // Supply at half an entry per cycle: the array must stall roughly
    // every other cycle while injections are active.
    Rng rng(7);
    SystolicArray slow(ArrayGeometry::mType(4), 0.5, 0.5);
    const Matrix a = randomMatrix(rng, 4, 16);
    const Matrix b = randomMatrix(rng, 16, 4);
    const std::uint64_t cycles = slow.matmulTile(a, b);
    EXPECT_GT(slow.stallCycles(), 0u);
    EXPECT_GT(cycles, 16u + 4 + 4 - 2);
    // Correctness is unaffected by stalling.
    EXPECT_EQ(Matrix::maxAbsDiff(slow.accumulators(),
                                 accumulatorReference(a, b)),
              0.0f);
}

TEST(SystolicMatmul, AmpleSupplyNeverStalls)
{
    Rng rng(8);
    SystolicArray fast(ArrayGeometry::mType(4), 2.0, 2.0);
    fast.matmulTile(randomMatrix(rng, 4, 32), randomMatrix(rng, 32, 4));
    EXPECT_EQ(fast.stallCycles(), 0u);
}

TEST(SystolicMatmul, ClearResetsState)
{
    Rng rng(9);
    SystolicArray array(ArrayGeometry::mType(4));
    array.matmulTile(randomMatrix(rng, 4, 4), randomMatrix(rng, 4, 4));
    array.clearAccumulators();
    const Matrix a = randomMatrix(rng, 2, 6);
    const Matrix b = randomMatrix(rng, 6, 3);
    array.matmulTile(a, b);
    EXPECT_EQ(Matrix::maxAbsDiff(array.accumulators(),
                                 accumulatorReference(a, b)),
              0.0f);
}

TEST(SystolicMatmul, ElapsedTimeUsesMatmulClock)
{
    Rng rng(10);
    ArrayGeometry geom = ArrayGeometry::mType(4);
    SystolicArray array(geom);
    const std::uint64_t cycles =
        array.matmulTile(randomMatrix(rng, 4, 8), randomMatrix(rng, 8, 4));
    EXPECT_DOUBLE_EQ(array.elapsedSeconds(),
                     static_cast<double>(cycles) / geom.matmulClockHz);
}

TEST(SystolicMatmulDeathTest, OversizedTilePanics)
{
    Rng rng(11);
    SystolicArray array(ArrayGeometry::mType(4));
    EXPECT_DEATH(array.matmulTile(randomMatrix(rng, 5, 4),
                                  randomMatrix(rng, 4, 4)),
                 "exceeds");
}

TEST(SystolicMatmulDeathTest, InnerDimMismatchPanics)
{
    Rng rng(12);
    SystolicArray array(ArrayGeometry::mType(4));
    EXPECT_DEATH(array.matmulTile(randomMatrix(rng, 4, 5),
                                  randomMatrix(rng, 6, 4)),
                 "mismatch");
}

} // namespace
} // namespace prose
