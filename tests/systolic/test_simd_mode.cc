/** @file Tests for simd mode: left rotation, SIMD ALU ops, LUT passes,
 *  drain semantics (Figures 5(c) and 12). */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "numerics/activations.hh"
#include "numerics/bfloat16.hh"
#include "numerics/lut.hh"
#include "numerics/matrix.hh"
#include "systolic/systolic_array.hh"

namespace prose {
namespace {

Matrix
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix m(rows, cols);
    m.fillGaussian(rng, 0.0f, 1.0f);
    return m;
}

/** Load a product into the accumulators and return its reference. */
Matrix
loadTile(SystolicArray &array, Rng &rng, std::size_t rows,
         std::size_t cols, std::size_t k)
{
    const Matrix a = randomMatrix(rng, rows, k);
    const Matrix b = randomMatrix(rng, k, cols);
    array.matmulTile(a, b);
    return matmulBf16(a, b);
}

/** Expected accumulator contents after one scalar/vector ALU pass. */
Matrix
aluReference(const Matrix &acc, SimdOp op, float scalar,
             const Matrix *operand)
{
    Matrix out(acc.rows(), acc.cols());
    for (std::size_t i = 0; i < acc.rows(); ++i) {
        for (std::size_t j = 0; j < acc.cols(); ++j) {
            const float x = truncateBf16(acc(i, j));
            float rhs = scalar;
            if (operand)
                rhs = (*operand)(i, j);
            switch (op) {
              case SimdOp::MulScalar:
              case SimdOp::MulVector:
                out(i, j) = quantizeBf16(x * quantizeBf16(rhs));
                break;
              case SimdOp::AddScalar:
              case SimdOp::AddVector:
                out(i, j) = quantizeBf16(x + quantizeBf16(rhs));
                break;
              default:
                out(i, j) = x;
            }
        }
    }
    return out;
}

TEST(SimdMode, MulScalarRotationPreservesLayout)
{
    Rng rng(1);
    SystolicArray array(ArrayGeometry::mType(6));
    const Matrix acc = loadTile(array, rng, 6, 6, 10);
    const std::uint64_t cycles = array.simdScalar(SimdOp::MulScalar, 2.5f);
    // One rotation pass = live-column count cycles.
    EXPECT_EQ(cycles, 6u);
    EXPECT_EQ(Matrix::maxAbsDiff(
                  array.accumulators(),
                  aluReference(acc, SimdOp::MulScalar, 2.5f, nullptr)),
              0.0f);
}

TEST(SimdMode, AddScalar)
{
    Rng rng(2);
    SystolicArray array(ArrayGeometry::mType(5));
    const Matrix acc = loadTile(array, rng, 5, 5, 7);
    array.simdScalar(SimdOp::AddScalar, -1.25f);
    EXPECT_EQ(Matrix::maxAbsDiff(
                  array.accumulators(),
                  aluReference(acc, SimdOp::AddScalar, -1.25f, nullptr)),
              0.0f);
}

TEST(SimdMode, AddVectorStreamsColumnsInOriginalOrder)
{
    Rng rng(3);
    SystolicArray array(ArrayGeometry::mType(6));
    const Matrix acc = loadTile(array, rng, 6, 6, 9);
    const Matrix operand = randomMatrix(rng, 6, 6);
    array.simdVector(SimdOp::AddVector, operand);
    EXPECT_EQ(Matrix::maxAbsDiff(
                  array.accumulators(),
                  aluReference(acc, SimdOp::AddVector, 0.0f, &operand)),
              0.0f);
}

TEST(SimdMode, MulAddSequenceMatchesPaperPrimitive)
{
    // MulAdd C = alpha*A + B as the hardware performs it: a MUL pass
    // with the broadcast scalar, then an ADD pass with the streamed
    // vector operand (Figure 12(b)).
    Rng rng(4);
    SystolicArray array(ArrayGeometry::mType(4));
    const Matrix acc = loadTile(array, rng, 4, 4, 6);
    const Matrix b = randomMatrix(rng, 4, 4);
    array.simdScalar(SimdOp::MulScalar, 0.5f);
    array.simdVector(SimdOp::AddVector, b);

    Matrix expected(4, 4);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) {
            const float scaled = quantizeBf16(
                truncateBf16(acc(i, j)) * quantizeBf16(0.5f));
            expected(i, j) = quantizeBf16(truncateBf16(scaled) +
                                          quantizeBf16(b(i, j)));
        }
    EXPECT_EQ(Matrix::maxAbsDiff(array.accumulators(), expected), 0.0f);
}

TEST(SimdMode, PartialTileRotatesOnlyLiveRegion)
{
    Rng rng(5);
    SystolicArray array(ArrayGeometry::mType(8));
    const Matrix acc = loadTile(array, rng, 3, 5, 6);
    const std::uint64_t cycles = array.simdScalar(SimdOp::MulScalar, 3.0f);
    EXPECT_EQ(cycles, 5u); // live columns, not the full array width
    EXPECT_EQ(Matrix::maxAbsDiff(
                  array.accumulators(),
                  aluReference(acc, SimdOp::MulScalar, 3.0f, nullptr)),
              0.0f);
}

TEST(SimdMode, GeluPassMatchesLut)
{
    Rng rng(6);
    SystolicArray array(ArrayGeometry::gType(6));
    const Matrix acc = loadTile(array, rng, 6, 6, 8);
    array.simdSpecial(SimdOp::Gelu);

    const TwoLevelLut lut = TwoLevelLut::makeGelu();
    const Matrix got = array.accumulators();
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            EXPECT_EQ(got(i, j),
                      lut.lookup(truncateToBf16(acc(i, j))).toFloat());
}

TEST(SimdMode, ExpPassMatchesLut)
{
    Rng rng(7);
    SystolicArray array(ArrayGeometry::eType(5));
    const Matrix acc = loadTile(array, rng, 5, 5, 4);
    array.simdSpecial(SimdOp::Exp);

    const TwoLevelLut lut = TwoLevelLut::makeExp();
    const Matrix got = array.accumulators();
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 5; ++j)
            EXPECT_EQ(got(i, j),
                      lut.lookup(truncateToBf16(acc(i, j))).toFloat());
}

TEST(SimdModeDeathTest, GeluOnMTypePanics)
{
    Rng rng(8);
    SystolicArray array(ArrayGeometry::mType(4));
    loadTile(array, rng, 4, 4, 4);
    EXPECT_DEATH(array.simdSpecial(SimdOp::Gelu), "without GELU");
}

TEST(SimdModeDeathTest, ExpOnGTypePanics)
{
    Rng rng(9);
    SystolicArray array(ArrayGeometry::gType(4));
    loadTile(array, rng, 4, 4, 4);
    EXPECT_DEATH(array.simdSpecial(SimdOp::Exp), "without Exp");
}

TEST(SimdModeDeathTest, SimdWithoutLiveTilePanics)
{
    SystolicArray array(ArrayGeometry::mType(4));
    EXPECT_DEATH(array.simdScalar(SimdOp::MulScalar, 1.0f), "no live");
}

TEST(SimdMode, DrainReturnsTruncatedTileAndClears)
{
    Rng rng(10);
    SystolicArray array(ArrayGeometry::mType(6));
    const Matrix acc = loadTile(array, rng, 4, 6, 11);
    Matrix out;
    const std::uint64_t cycles = array.drain(out);
    EXPECT_EQ(cycles, 6u);
    ASSERT_EQ(out.rows(), 4u);
    ASSERT_EQ(out.cols(), 6u);
    // The OUTPUT port taps accumulator bits [31:16]: truncation.
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            EXPECT_EQ(out(i, j), truncateBf16(acc(i, j)));
    // Accumulators are cleared; a fresh tile starts from zero.
    const Matrix fresh = loadTile(array, rng, 2, 2, 3);
    EXPECT_EQ(Matrix::maxAbsDiff(array.accumulators(), fresh), 0.0f);
}

TEST(SimdMode, FusedDataflowKeepsIntermediateInAccumulators)
{
    // End-to-end Dataflow 2 on one tile: MatMul -> MulAdd -> GELU ->
    // drain, never touching external storage between stages.
    Rng rng(11);
    SystolicArray array(ArrayGeometry::gType(4));
    const Matrix a = randomMatrix(rng, 4, 8);
    const Matrix b = randomMatrix(rng, 8, 4);
    const Matrix bias = randomMatrix(rng, 4, 4);

    array.matmulTile(a, b);
    array.simdScalar(SimdOp::MulScalar, 1.0f);
    array.simdVector(SimdOp::AddVector, bias);
    array.simdSpecial(SimdOp::Gelu);
    Matrix out;
    array.drain(out);

    const TwoLevelLut lut = TwoLevelLut::makeGelu();
    const Matrix mm = matmulBf16(a, b);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            const float scaled = quantizeBf16(
                truncateBf16(mm(i, j)) * quantizeBf16(1.0f));
            const float biased = quantizeBf16(
                truncateBf16(scaled) + quantizeBf16(bias(i, j)));
            const float gelu =
                lut.lookup(truncateToBf16(biased)).toFloat();
            EXPECT_EQ(out(i, j), truncateBf16(gelu)) << i << "," << j;
        }
    }
}

TEST(SimdMode, VectorPassStallsUnderStarvedSupply)
{
    Rng rng(12);
    SystolicArray array(ArrayGeometry::mType(4), 0.25, 1e18);
    const Matrix a = randomMatrix(rng, 4, 4);
    const Matrix b = randomMatrix(rng, 4, 4);
    array.matmulTile(a, b); // will stall but complete
    const std::uint64_t before = array.stallCycles();
    const Matrix operand = randomMatrix(rng, 4, 4);
    const std::uint64_t cycles =
        array.simdVector(SimdOp::AddVector, operand);
    EXPECT_GT(cycles, 4u);
    EXPECT_GT(array.stallCycles(), before);
}

} // namespace
} // namespace prose
