/** @file Tests validating the closed-form timing model against the
 *  cycle-stepped systolic array, plus dataflow-task costing. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "systolic/systolic_array.hh"
#include "systolic/timing_model.hh"

namespace prose {
namespace {

Matrix
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix m(rows, cols);
    m.fillGaussian(rng, 0.0f, 1.0f);
    return m;
}

TEST(TimingModel, TileFormulaMatchesCycleSteppedModel)
{
    // Property: the closed-form tile cycle count equals what the
    // register-accurate model actually takes, across random shapes.
    Rng rng(1);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 2 + rng.below(12);
        const std::size_t rows = 1 + rng.below(n);
        const std::size_t cols = 1 + rng.below(n);
        const std::size_t k = 1 + rng.below(50);
        SystolicArray array(
            ArrayGeometry::mType(static_cast<std::uint32_t>(n)));
        const std::uint64_t measured = array.matmulTile(
            randomMatrix(rng, rows, k), randomMatrix(rng, k, cols));
        EXPECT_EQ(measured,
                  TimingModel::tileMatmulCycles(rows, cols, k));
    }
}

TEST(TimingModel, FullMatmulEqualsTileEnumeration)
{
    // Closed form vs explicit tile-by-tile summation.
    for (std::uint64_t m : { 1u, 7u, 64u, 100u }) {
        for (std::uint64_t n : { 1u, 5u, 64u, 96u }) {
            for (std::uint64_t k : { 1u, 16u, 77u }) {
                const std::uint64_t s = 16;
                std::uint64_t expected = 0;
                for (std::uint64_t tm = 0; tm < m; tm += s) {
                    const std::uint64_t rows = std::min(s, m - tm);
                    for (std::uint64_t tn = 0; tn < n; tn += s) {
                        const std::uint64_t cols = std::min(s, n - tn);
                        expected += TimingModel::tileMatmulCycles(
                            rows, cols, k);
                    }
                }
                EXPECT_EQ(TimingModel::matmulCycles(m, k, n, s),
                          expected)
                    << m << "x" << k << "x" << n;
            }
        }
    }
}

TEST(TimingModel, SimdPassMatchesCycleSteppedModel)
{
    Rng rng(2);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 2 + rng.below(10);
        SystolicArray array(
            ArrayGeometry::mType(static_cast<std::uint32_t>(n)));
        array.matmulTile(randomMatrix(rng, n, 4),
                         randomMatrix(rng, 4, n));
        const std::uint64_t cycles =
            array.simdScalar(SimdOp::MulScalar, 2.0f);
        // One full-array tile -> one tile row -> n cycles per pass.
        EXPECT_EQ(cycles, TimingModel::simdPassCycles(n, n, n));
    }
}

TEST(TimingModel, SimdPassCyclesScalesWithTileRows)
{
    // m x n elementwise on size s: ceil(m/s) tile rows, n cycles each.
    EXPECT_EQ(TimingModel::simdPassCycles(64, 768, 64), 768u);
    EXPECT_EQ(TimingModel::simdPassCycles(128, 768, 64), 2u * 768u);
    EXPECT_EQ(TimingModel::simdPassCycles(100, 768, 64), 2u * 768u);
}

DataflowTask
makeDf1(std::uint64_t m, std::uint64_t k, std::uint64_t n)
{
    OpTrace trace;
    trace.record(OpKind::MatMul, Sublayer::Attention, 0, 1, m, k, n);
    trace.record(OpKind::MulAdd, Sublayer::Attention, 0, 1, m, 0, n,
                 true);
    return DataflowBuilder{}.build(trace).front();
}

TEST(TimingModel, Dataflow1Cost)
{
    const TimingModel timing(true);
    const ArrayGeometry geom = ArrayGeometry::mType(64);
    const TaskCost cost = timing.costTask(makeDf1(128, 768, 768), geom);

    EXPECT_EQ(cost.matmulCycles,
              TimingModel::matmulCycles(128, 768, 768, 64));
    // Drain (1 pass) + MulAdd (2 passes).
    EXPECT_EQ(cost.simdCycles,
              3 * TimingModel::simdPassCycles(128, 768, 64));
    // A + B + bias vector, all bf16.
    EXPECT_EQ(cost.bytesIn,
              (128u * 768 + 768 * 768 + 768) * 2);
    EXPECT_EQ(cost.bytesOut, 128u * 768 * 2);
    EXPECT_EQ(cost.hostSoftmaxElems, 0u);
    EXPECT_GT(cost.flops, 0.0);
}

TEST(TimingModel, NoBufferAddsRestreamTraffic)
{
    const TimingModel with_buffer(true);
    const TimingModel without(false);
    const ArrayGeometry geom = ArrayGeometry::mType(64);
    const DataflowTask task = makeDf1(6400, 768, 768);
    const std::uint64_t with_bytes =
        with_buffer.costTask(task, geom).bytesIn;
    const std::uint64_t without_bytes =
        without.costTask(task, geom).bytesIn;
    EXPECT_GT(without_bytes, with_bytes);
    // Restream = min((Tn-1)*m*k, (Tm-1)*k*n) * 2 bytes.
    const std::uint64_t tm = (6400 + 63) / 64, tn = 12;
    const std::uint64_t expected_extra =
        2 * std::min((tn - 1) * 6400ull * 768, (tm - 1) * 768ull * 768);
    EXPECT_EQ(without_bytes - with_bytes, expected_extra);
}

TEST(TimingModel, Dataflow3CountsHostSoftmaxAndBatch)
{
    OpTrace trace;
    const std::uint64_t bh = 8, l = 64, dk = 16;
    trace.record(OpKind::Bmm, Sublayer::Attention, 0, bh, l, dk, l);
    trace.record(OpKind::MatDiv, Sublayer::Attention, 0, bh, l, 0, l);
    trace.record(OpKind::Exp, Sublayer::Attention, 0, bh, l, 0, l);
    trace.record(OpKind::SoftmaxHost, Sublayer::Attention, 0, bh, l, 0,
                 l);
    trace.record(OpKind::Bmm, Sublayer::Attention, 0, bh, l, l, dk);
    const auto task = DataflowBuilder{}.build(trace).front();

    const TimingModel timing(true);
    const ArrayGeometry geom = ArrayGeometry::eType(16);
    const TaskCost cost = timing.costTask(task, geom);

    EXPECT_EQ(cost.hostSoftmaxElems, bh * l * l);
    const std::uint64_t bmm1 =
        bh * TimingModel::matmulCycles(l, dk, l, 16);
    const std::uint64_t bmm2 =
        bh * TimingModel::matmulCycles(l, l, dk, 16);
    EXPECT_EQ(cost.matmulCycles, bmm1 + bmm2);
    // SIMD: drain after each BMM + MatDiv + Exp passes.
    const std::uint64_t pass1 =
        bh * TimingModel::simdPassCycles(l, l, 16);
    const std::uint64_t pass2 =
        bh * TimingModel::simdPassCycles(l, dk, 16);
    EXPECT_EQ(cost.simdCycles, 3 * pass1 + pass2);
}

TEST(TimingModel, HostTaskIsFreeOnTheAccelerator)
{
    OpTrace trace;
    trace.record(OpKind::LayerNorm, Sublayer::Output, 0, 1, 64, 0, 64);
    const auto task = DataflowBuilder{}.build(trace).front();
    const TaskCost cost =
        TimingModel(true).costTask(task, ArrayGeometry::mType(64));
    EXPECT_EQ(cost.matmulCycles, 0u);
    EXPECT_EQ(cost.simdCycles, 0u);
    EXPECT_EQ(cost.bytesIn, 0u);
}

TEST(TimingModel, ComputeSecondsUsesBothClocks)
{
    TaskCost cost;
    cost.matmulCycles = 1600;
    cost.simdCycles = 800;
    const ArrayGeometry geom = ArrayGeometry::mType(64);
    EXPECT_DOUBLE_EQ(cost.computeSeconds(geom),
                     1600.0 / 1.6e9 + 800.0 / 800e6);
}

TEST(TimingModel, SmallerArraysNeedMoreCyclesForBigMatmuls)
{
    // The homogeneous-vs-heterogeneous tension: a 16x16 array takes far
    // more cycles than a 64x64 on a large matmul...
    EXPECT_GT(TimingModel::matmulCycles(4096, 768, 768, 16),
              TimingModel::matmulCycles(4096, 768, 768, 64));
    // ...but achieves far better PE utilization on a tiny one: the
    // 64x64 array burns 4096 PE-slots per cycle on a 16-wide tile.
    auto utilization = [](std::uint64_t m, std::uint64_t k,
                          std::uint64_t n, std::uint64_t s) {
        const double macs = static_cast<double>(m) * k * n;
        const double slots =
            static_cast<double>(TimingModel::matmulCycles(m, k, n, s)) *
            s * s;
        return macs / slots;
    };
    EXPECT_GT(utilization(16, 64, 16, 16),
              4.0 * utilization(16, 64, 16, 64));
}

TEST(TimingModelDeathTest, GeluOnPlainArrayPanics)
{
    OpTrace trace;
    trace.record(OpKind::MatMul, Sublayer::Intermediate, 0, 1, 8, 8, 8);
    trace.record(OpKind::MulAdd, Sublayer::Intermediate, 0, 1, 8, 0, 8,
                 true);
    trace.record(OpKind::Gelu, Sublayer::Intermediate, 0, 1, 8, 0, 8);
    const auto task = DataflowBuilder{}.build(trace).front();
    EXPECT_DEATH(
        TimingModel(true).costTask(task, ArrayGeometry::mType(64)),
        "without GELU");
}

} // namespace
} // namespace prose
