/** @file Tests for link provisioning / Little's-Law buffer sizing,
 *  cross-checked against the cycle-stepped stall behavior. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "systolic/provisioning.hh"
#include "systolic/systolic_array.hh"

namespace prose {
namespace {

TEST(Provisioning, StallFreeBandwidthFormula)
{
    // 64x64 at 1.6 GHz: 2 edges x 64 elems x 2 B x 1.6e9 = 409.6 GB/s.
    const ArrayGeometry m64 = ArrayGeometry::mType(64);
    EXPECT_NEAR(stallFreeBandwidth(m64), 409.6e9, 1e6);
    // 16x16 needs a quarter of that.
    EXPECT_NEAR(stallFreeBandwidth(ArrayGeometry::eType(16)), 102.4e9,
                1e6);
}

TEST(Provisioning, SupplyRateInvertsBandwidth)
{
    const ArrayGeometry geom = ArrayGeometry::mType(32);
    // Exactly the stall-free share -> 1 entry/cycle per edge.
    EXPECT_NEAR(supplyRatePerEdge(geom, stallFreeBandwidth(geom)), 1.0,
                1e-12);
    // Half the share -> half the rate.
    EXPECT_NEAR(
        supplyRatePerEdge(geom, stallFreeBandwidth(geom) / 2.0), 0.5,
        1e-12);
}

TEST(Provisioning, CycleSteppedModelAgreesWithTheFormula)
{
    // Property: feeding the array at supplyRatePerEdge(share) stalls
    // iff the share is below stallFreeBandwidth.
    Rng rng(3);
    const ArrayGeometry geom = ArrayGeometry::mType(8);
    Matrix a(8, 64), b(64, 8);
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);

    const double ample =
        supplyRatePerEdge(geom, 1.2 * stallFreeBandwidth(geom));
    SystolicArray fed(geom, ample, ample);
    fed.matmulTile(a, b);
    EXPECT_EQ(fed.stallCycles(), 0u);

    const double starved =
        supplyRatePerEdge(geom, 0.6 * stallFreeBandwidth(geom));
    SystolicArray hungry(geom, starved, starved);
    hungry.matmulTile(a, b);
    EXPECT_GT(hungry.stallCycles(), 0u);
}

TEST(Provisioning, LittlesLawDepthMatchesPaperBuffers)
{
    // An NVLink-class hop is a few nanoseconds of wire+SerDes jitter;
    // at 1.6 GHz, 5 ns of in-flight supply is exactly 8 entries — the
    // paper's 8-deep buffers.
    const ArrayGeometry geom = ArrayGeometry::mType(64);
    EXPECT_EQ(littlesLawDepth(geom, 5e-9), 8u);
    EXPECT_LE(littlesLawDepth(geom, 4.9e-9), 8u);
    EXPECT_GT(littlesLawDepth(geom, 20e-9), 8u);
}

TEST(Provisioning, ZeroLatencyNeedsNoBuffer)
{
    EXPECT_EQ(littlesLawDepth(ArrayGeometry::mType(16), 0.0), 0u);
}

TEST(ProvisioningDeathTest, NonPositiveShareRejected)
{
    EXPECT_DEATH(supplyRatePerEdge(ArrayGeometry::mType(16), 0.0),
                 "non-positive");
}

} // namespace
} // namespace prose
