/** @file Cross-validation of the diagonal-batched stepped matmul engine
 *  against the scalar PE walk it replaces: randomized op sequences,
 *  exhaustive edge shapes, mixed-tile live regions, and supply-limited
 *  streams must agree bit-for-bit in register file, counters, and
 *  stream-buffer state. Fault campaigns must take the scalar walk only
 *  when the injector is armed for the array's accumulator site, and the
 *  deterministic replay (event log: cycle order, PE coordinates, bit
 *  positions) must be byte-identical whether batching is enabled or
 *  not. */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.hh"
#include "fault/fault_injector.hh"
#include "numerics/matrix.hh"
#include "systolic/fsim_mode.hh"
#include "systolic/systolic_array.hh"

namespace prose {
namespace {

Matrix
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols, float scale)
{
    Matrix m(rows, cols);
    m.fillGaussian(rng, 0.0f, scale);
    return m;
}

bool
bitEqual(float x, float y)
{
    return std::memcmp(&x, &y, sizeof(float)) == 0;
}

void
expectBitIdentical(const Matrix &a, const Matrix &b, const char *what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            ASSERT_TRUE(bitEqual(a(i, j), b(i, j)))
                << what << " (" << i << "," << j << "): " << a(i, j)
                << " vs " << b(i, j);
}

/** Everything observable after an op sequence. */
struct SequenceResult
{
    std::vector<Matrix> drains;
    Matrix finalAcc;
    std::uint64_t matmulCycles = 0;
    std::uint64_t simdCycles = 0;
    std::uint64_t stallCycles = 0;
    std::uint64_t macCount = 0;
    std::uint64_t simdOpCount = 0;
    double aOccupancy = 0.0;
    double bOccupancy = 0.0;
    std::uint64_t aStalls = 0;
    std::uint64_t bStalls = 0;
    std::uint64_t aConsumed = 0;
    std::uint64_t bConsumed = 0;
};

void
captureStats(const SystolicArray &array, SequenceResult &result)
{
    result.matmulCycles = array.matmulCycles();
    result.simdCycles = array.simdCycles();
    result.stallCycles = array.stallCycles();
    result.macCount = array.macCount();
    result.simdOpCount = array.simdOpCount();
    result.aOccupancy = array.aBuffer().occupancy();
    result.bOccupancy = array.bBuffer().occupancy();
    result.aStalls = array.aBuffer().stallCycles();
    result.bStalls = array.bBuffer().stallCycles();
    result.aConsumed = array.aBuffer().consumed();
    result.bConsumed = array.bBuffer().consumed();
}

/**
 * Replay a seed-determined random op sequence on one stepped-mode array
 * with diagonal batching on or off. The rng draws are identical across
 * the two configurations, so both see the same geometry, rates, shapes,
 * data, and op mix; matmuls are deliberately over-weighted relative to
 * the fast-forward sequences because the matmul path is the only one
 * batching touches.
 */
SequenceResult
runRandomSequence(bool batching, std::uint64_t seed, bool ideal_rates)
{
    Rng rng(seed);
    const std::size_t dim = 4 + rng.below(13); // 4..16
    ArrayGeometry geom = ArrayGeometry::gType(dim);
    geom.hasExp = true;
    const double a_rate = ideal_rates ? 1e18 : rng.uniform(0.2, 2.5);
    const double b_rate = ideal_rates ? 1e18 : rng.uniform(0.2, 2.5);
    SystolicArray array(geom, a_rate, b_rate);
    array.setMode(FsimMode::Stepped);
    array.setDiagonalBatching(batching);

    SequenceResult result;
    bool live = false;
    const std::size_t ops = 12;
    for (std::size_t op = 0; op < ops; ++op) {
        // 0..2 are all matmul so most of the sequence exercises the
        // batched sweep; the rest interleave SIMD passes and drains to
        // prove the batched tiles leave the same architectural state
        // behind for them.
        const std::uint64_t kind = live ? rng.below(7) : 0;
        switch (kind) {
          case 0:
          case 1:
          case 2: { // matmul (accumulates into any live tile)
            const std::size_t rows = 1 + rng.below(dim);
            const std::size_t cols = 1 + rng.below(dim);
            const std::size_t k = 1 + rng.below(24);
            const float scale =
                static_cast<float>(rng.uniform(0.2, 4.0));
            const Matrix a = randomMatrix(rng, rows, k, scale);
            const Matrix b = randomMatrix(rng, k, cols, scale);
            array.matmulTile(a, b);
            live = true;
            break;
          }
          case 3:
            array.simdScalar(SimdOp::MulScalar,
                             static_cast<float>(rng.uniform(-2.0, 2.0)));
            break;
          case 4: {
            const SimdOp op_kind =
                rng.below(2) ? SimdOp::MulVector : SimdOp::AddVector;
            array.simdVector(op_kind,
                             randomMatrix(rng, dim, dim, 1.0f));
            break;
          }
          case 5:
            array.simdSpecial(rng.below(2) ? SimdOp::Gelu : SimdOp::Exp);
            break;
          case 6: {
            Matrix out;
            array.drain(out);
            result.drains.push_back(std::move(out));
            live = false;
            break;
          }
        }
    }
    if (live)
        result.finalAcc = array.accumulators();
    captureStats(array, result);
    return result;
}

void
expectSequencesAgree(const SequenceResult &batched,
                     const SequenceResult &scalar)
{
    ASSERT_EQ(batched.drains.size(), scalar.drains.size());
    for (std::size_t d = 0; d < batched.drains.size(); ++d)
        expectBitIdentical(batched.drains[d], scalar.drains[d], "drain");
    expectBitIdentical(batched.finalAcc, scalar.finalAcc,
                       "accumulators");
    EXPECT_EQ(batched.matmulCycles, scalar.matmulCycles);
    EXPECT_EQ(batched.simdCycles, scalar.simdCycles);
    EXPECT_EQ(batched.stallCycles, scalar.stallCycles);
    EXPECT_EQ(batched.macCount, scalar.macCount);
    EXPECT_EQ(batched.simdOpCount, scalar.simdOpCount);
    EXPECT_EQ(batched.aStalls, scalar.aStalls);
    EXPECT_EQ(batched.bStalls, scalar.bStalls);
    EXPECT_EQ(batched.aConsumed, scalar.aConsumed);
    EXPECT_EQ(batched.bConsumed, scalar.bConsumed);
    EXPECT_TRUE(std::memcmp(&batched.aOccupancy, &scalar.aOccupancy,
                            sizeof(double)) == 0)
        << batched.aOccupancy << " vs " << scalar.aOccupancy;
    EXPECT_TRUE(std::memcmp(&batched.bOccupancy, &scalar.bOccupancy,
                            sizeof(double)) == 0)
        << batched.bOccupancy << " vs " << scalar.bOccupancy;
}

TEST(DiagonalBatching, MatchesScalarWalkOnRandomSequencesIdealSupply)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        SCOPED_TRACE(seed);
        expectSequencesAgree(runRandomSequence(true, seed, true),
                             runRandomSequence(false, seed, true));
    }
}

TEST(DiagonalBatching, MatchesScalarWalkOnRandomSequencesFractionalSupply)
{
    bool saw_stalls = false;
    for (std::uint64_t seed = 100; seed <= 112; ++seed) {
        SCOPED_TRACE(seed);
        const SequenceResult batched =
            runRandomSequence(true, seed, false);
        expectSequencesAgree(batched,
                             runRandomSequence(false, seed, false));
        saw_stalls = saw_stalls || batched.stallCycles > 0;
    }
    // The sweep must actually exercise the gate-replay elision (the
    // non-closed-form branch of fastForwardMatmulGating).
    EXPECT_TRUE(saw_stalls);
}

/**
 * Exhaustive sweep of the degenerate wavefront geometries: single-row /
 * single-column tiles (every diagonal has length 1), full-dim tiles
 * (the center diagonal spans the whole array), and depth-1 products
 * (one MAC per accumulator). Each shape is checked in isolation so a
 * failure names the exact (rows, cols, k) triple.
 */
TEST(DiagonalBatching, EdgeShapeSweepMatchesScalarWalk)
{
    const std::size_t dim = 8;
    const std::size_t extents[] = { 1, 2, 3, dim - 1, dim };
    const std::size_t depths[] = { 1, 2, 5, 33 };
    Rng rng(2024);
    for (const std::size_t rows : extents) {
        for (const std::size_t cols : extents) {
            for (const std::size_t k : depths) {
                SCOPED_TRACE(testing::Message()
                             << rows << "x" << k << " * " << k << "x"
                             << cols);
                const Matrix a = randomMatrix(rng, rows, k, 2.0f);
                const Matrix b = randomMatrix(rng, k, cols, 2.0f);

                SystolicArray batched(ArrayGeometry::mType(dim));
                batched.setMode(FsimMode::Stepped);
                SystolicArray scalar(ArrayGeometry::mType(dim));
                scalar.setMode(FsimMode::Stepped);
                scalar.setDiagonalBatching(false);

                const std::uint64_t bc = batched.matmulTile(a, b);
                const std::uint64_t sc = scalar.matmulTile(a, b);
                EXPECT_EQ(bc, sc);
                expectBitIdentical(batched.accumulators(),
                                   scalar.accumulators(), "acc");
                EXPECT_EQ(batched.macCount(), scalar.macCount());
                EXPECT_EQ(batched.matmulCycles(),
                          scalar.matmulCycles());
            }
        }
    }
}

/**
 * Mixed tile sizes: the live region is the bounding-box union of every
 * tile since the last drain (docs/MICROARCHITECTURE.md, "Live-region
 * semantics"), and the batched path must grow it — and accumulate into
 * partially-stale unions — exactly like the scalar walk.
 */
TEST(DiagonalBatching, LiveRegionBoundingBoxUnionMatchesScalarWalk)
{
    Rng rng(11);
    SystolicArray batched(ArrayGeometry::mType(8));
    batched.setMode(FsimMode::Stepped);
    SystolicArray scalar(ArrayGeometry::mType(8));
    scalar.setMode(FsimMode::Stepped);
    scalar.setDiagonalBatching(false);

    // Wide-then-tall, tall-then-wide, then a strict-subset tile: every
    // union transition the bounding box can make.
    const std::size_t shapes[][3] = {
        { 5, 3, 4 }, { 2, 7, 6 }, { 1, 4, 2 }, { 8, 2, 8 }, { 3, 9, 3 }
    };
    for (const auto &shape : shapes) {
        const Matrix a = randomMatrix(rng, shape[0], shape[1], 1.0f);
        const Matrix b = randomMatrix(rng, shape[1], shape[2], 1.0f);
        batched.matmulTile(a, b);
        scalar.matmulTile(a, b);
        expectBitIdentical(batched.accumulators(), scalar.accumulators(),
                           "union acc");
    }
    Matrix batched_out, scalar_out;
    EXPECT_EQ(batched.drain(batched_out), scalar.drain(scalar_out));
    expectBitIdentical(batched_out, scalar_out, "union drain");
}

TEST(DiagonalBatchingFallback, NonUniformFillProfileTakesScalarWalk)
{
    Rng rng(3);
    const Matrix a = randomMatrix(rng, 6, 9, 1.0f);
    const Matrix b = randomMatrix(rng, 9, 5, 1.0f);

    // Bursty host: nothing on even fill ticks, two entries on odd. A
    // non-uniform profile forces the per-tile scalar walk whether or
    // not batching is requested, so both arrays must agree — and stall.
    SystolicArray batched(ArrayGeometry::mType(8), 1.0, 1.0);
    batched.setMode(FsimMode::Stepped);
    batched.aBuffer().setFillProfile({ 0.0, 2.0 });
    SystolicArray scalar(ArrayGeometry::mType(8), 1.0, 1.0);
    scalar.setMode(FsimMode::Stepped);
    scalar.setDiagonalBatching(false);
    scalar.aBuffer().setFillProfile({ 0.0, 2.0 });

    EXPECT_EQ(batched.matmulTile(a, b), scalar.matmulTile(a, b));
    expectBitIdentical(batched.accumulators(), scalar.accumulators(),
                       "profile acc");
    EXPECT_EQ(batched.stallCycles(), scalar.stallCycles());
    EXPECT_GT(batched.stallCycles(), 0u);
}

/**
 * Fault-campaign replay: an injector armed for this array's accumulator
 * site (accFlipRate > 0) forces the scalar walk, and the resulting
 * corruption — which cycle order the tiles are visited in, which PE
 * coordinates and bit positions flip — must be byte-identical in the
 * deterministic event log whether diagonal batching was requested or
 * not.
 */
TEST(DiagonalBatchingFallback, ArmedInjectorReplayIsByteIdentical)
{
    CampaignSpec spec;
    spec.seed = 77;
    spec.accFlipRate = 0.05;
    FaultInjector batched_injector(spec);
    FaultInjector scalar_injector(spec);
    EXPECT_TRUE(batched_injector.armsAccumulators("M0"));

    Rng rng(5);
    SystolicArray batched(ArrayGeometry::mType(8));
    batched.setMode(FsimMode::Stepped);
    batched.setFaultInjector(&batched_injector, "M0");
    SystolicArray scalar(ArrayGeometry::mType(8));
    scalar.setMode(FsimMode::Stepped);
    scalar.setDiagonalBatching(false);
    scalar.setFaultInjector(&scalar_injector, "M0");

    for (int tile = 0; tile < 4; ++tile) {
        const Matrix a = randomMatrix(rng, 7, 6, 1.0f);
        const Matrix b = randomMatrix(rng, 6, 8, 1.0f);
        batched.matmulTile(a, b);
        scalar.matmulTile(a, b);
        expectBitIdentical(batched.accumulators(), scalar.accumulators(),
                           "fault acc");
    }
    EXPECT_EQ(batched_injector.eventLogText(),
              scalar_injector.eventLogText());
    EXPECT_FALSE(batched_injector.events().empty());
}

/**
 * An attached injector whose campaign cannot touch this array's
 * accumulators — stuck bits pinned to a different site, link/kill-only
 * campaigns — leaves the diagonal-batched path eligible. The injector's
 * RNG must not advance (byte-identical logs with a batching-off run
 * prove it), and results must match the scalar walk exactly.
 */
TEST(DiagonalBatchingFallback, UnarmedSiteKeepsBatchingAndReplay)
{
    CampaignSpec spec;
    spec.seed = 31;
    spec.linkErrorRate = 0.5; // never sampled by the systolic array
    StuckBitFault stuck;
    stuck.site = "M0";
    stuck.row = 2;
    stuck.col = 3;
    stuck.bit = 30;
    stuck.stuckHigh = true;
    spec.stuckBits.push_back(stuck);

    FaultInjector batched_injector(spec);
    FaultInjector scalar_injector(spec);
    // The campaign arms M0 accumulators but not E0's.
    EXPECT_TRUE(batched_injector.armsAccumulators("M0"));
    EXPECT_FALSE(batched_injector.armsAccumulators("E0"));

    Rng rng(13);
    SystolicArray batched(ArrayGeometry::mType(8));
    batched.setMode(FsimMode::Stepped);
    batched.setFaultInjector(&batched_injector, "E0");
    SystolicArray scalar(ArrayGeometry::mType(8));
    scalar.setMode(FsimMode::Stepped);
    scalar.setDiagonalBatching(false);
    scalar.setFaultInjector(&scalar_injector, "E0");

    for (int tile = 0; tile < 3; ++tile) {
        const Matrix a = randomMatrix(rng, 6, 5, 1.0f);
        const Matrix b = randomMatrix(rng, 5, 7, 1.0f);
        batched.matmulTile(a, b);
        scalar.matmulTile(a, b);
    }
    expectBitIdentical(batched.accumulators(), scalar.accumulators(),
                       "unarmed acc");
    EXPECT_EQ(batched.matmulCycles(), scalar.matmulCycles());
    EXPECT_EQ(batched.macCount(), scalar.macCount());
    // No accumulator events at E0, and no divergence in whatever the
    // log holds.
    EXPECT_EQ(batched_injector.eventLogText(),
              scalar_injector.eventLogText());
}

/**
 * The same stuck-bit campaign attached at its armed site must force the
 * scalar walk and pin the bit on the exact same PE in both
 * configurations — the site-armed branch of the fallback predicate.
 */
TEST(DiagonalBatchingFallback, StuckBitAtArmedSiteReplaysIdentically)
{
    CampaignSpec spec;
    spec.seed = 31;
    StuckBitFault stuck;
    stuck.site = "M0";
    stuck.row = 2;
    stuck.col = 3;
    stuck.bit = 30;
    stuck.stuckHigh = true;
    spec.stuckBits.push_back(stuck);

    FaultInjector batched_injector(spec);
    FaultInjector scalar_injector(spec);

    Rng rng(13);
    const Matrix a = randomMatrix(rng, 6, 5, 1.0f);
    const Matrix b = randomMatrix(rng, 5, 7, 1.0f);

    SystolicArray batched(ArrayGeometry::mType(8));
    batched.setMode(FsimMode::Stepped);
    batched.setFaultInjector(&batched_injector, "M0");
    SystolicArray scalar(ArrayGeometry::mType(8));
    scalar.setMode(FsimMode::Stepped);
    scalar.setDiagonalBatching(false);
    scalar.setFaultInjector(&scalar_injector, "M0");

    batched.matmulTile(a, b);
    scalar.matmulTile(a, b);
    expectBitIdentical(batched.accumulators(), scalar.accumulators(),
                       "stuck acc");
    EXPECT_EQ(batched_injector.eventLogText(),
              scalar_injector.eventLogText());
    // The stuck bit really fired on the armed site.
    EXPECT_FALSE(batched_injector.events().empty());
}

/**
 * Validate mode cross-checks the fast engine against the (batched)
 * stepped engine inside dispatch() and panics on divergence; its
 * results must still equal a batching-off stepped run, closing the
 * triangle fast == batched == scalar walk.
 */
TEST(DiagonalBatching, ValidateModeClosesTheEngineTriangle)
{
    for (std::uint64_t seed = 200; seed <= 204; ++seed) {
        SCOPED_TRACE(seed);
        Rng rng(seed);
        const std::size_t dim = 4 + rng.below(13);
        const Matrix a = randomMatrix(rng, 1 + rng.below(dim),
                                      1 + rng.below(24), 1.0f);
        const Matrix b = randomMatrix(rng, a.cols(),
                                      1 + rng.below(dim), 1.0f);

        SystolicArray validate(ArrayGeometry::mType(dim));
        validate.setMode(FsimMode::Validate);
        SystolicArray scalar(ArrayGeometry::mType(dim));
        scalar.setMode(FsimMode::Stepped);
        scalar.setDiagonalBatching(false);

        EXPECT_EQ(validate.matmulTile(a, b), scalar.matmulTile(a, b));
        expectBitIdentical(validate.accumulators(),
                           scalar.accumulators(), "validate acc");
        EXPECT_EQ(validate.matmulCycles(), scalar.matmulCycles());
        EXPECT_EQ(validate.macCount(), scalar.macCount());
    }
}

TEST(DiagonalBatching, ToggleIsObservable)
{
    SystolicArray array(ArrayGeometry::mType(8));
    EXPECT_TRUE(array.diagonalBatching());
    array.setDiagonalBatching(false);
    EXPECT_FALSE(array.diagonalBatching());
    array.setDiagonalBatching(true);
    EXPECT_TRUE(array.diagonalBatching());
}

} // namespace
} // namespace prose
