/** @file Tests for array geometry descriptors. */

#include <gtest/gtest.h>

#include "systolic/array_config.hh"

namespace prose {
namespace {

TEST(ArrayGeometry, TypeFactoriesSetCapabilities)
{
    const ArrayGeometry m = ArrayGeometry::mType();
    EXPECT_EQ(m.type, ArrayType::M);
    EXPECT_EQ(m.dim, 64u);
    EXPECT_FALSE(m.hasGelu);
    EXPECT_FALSE(m.hasExp);

    const ArrayGeometry g = ArrayGeometry::gType();
    EXPECT_EQ(g.type, ArrayType::G);
    EXPECT_TRUE(g.hasGelu);
    EXPECT_FALSE(g.hasExp);

    const ArrayGeometry e = ArrayGeometry::eType();
    EXPECT_EQ(e.type, ArrayType::E);
    EXPECT_TRUE(e.hasExp);
    EXPECT_FALSE(e.hasGelu);
}

TEST(ArrayGeometry, PeCount)
{
    EXPECT_EQ(ArrayGeometry::mType(64).peCount(), 4096u);
    EXPECT_EQ(ArrayGeometry::gType(32).peCount(), 1024u);
    EXPECT_EQ(ArrayGeometry::eType(16).peCount(), 256u);
}

TEST(ArrayGeometry, PaperClocks)
{
    // Section 4.1: matmul double-pumped at 1.6 GHz, SIMD at 800 MHz.
    const ArrayGeometry g = ArrayGeometry::gType(32);
    EXPECT_DOUBLE_EQ(g.matmulClockHz, 1.6e9);
    EXPECT_DOUBLE_EQ(g.simdClockHz, 800e6);
}

TEST(ArrayGeometry, DefaultBufferDepthIsEight)
{
    EXPECT_EQ(ArrayGeometry::eType(16).bufferDepth, 8u);
}

TEST(ArrayGeometry, DescribeMentionsTypeAndLuts)
{
    EXPECT_EQ(ArrayGeometry::mType(64).describe(), "M-Type 64x64");
    EXPECT_EQ(ArrayGeometry::gType(32).describe(),
              "G-Type 32x32 +GELU");
    EXPECT_EQ(ArrayGeometry::eType(16).describe(), "E-Type 16x16 +Exp");
}

TEST(ArrayType, ToString)
{
    EXPECT_STREQ(toString(ArrayType::M), "M");
    EXPECT_STREQ(toString(ArrayType::G), "G");
    EXPECT_STREQ(toString(ArrayType::E), "E");
}

} // namespace
} // namespace prose
