/** @file Tests for the functional dataflow simulator (the Verilog-sim
 *  stand-in): whole dataflows with real data on cycle-stepped arrays. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "numerics/activations.hh"
#include "numerics/bfloat16.hh"
#include "numerics/lut.hh"
#include "systolic/functional_sim.hh"
#include "systolic/timing_model.hh"

namespace prose {
namespace {

Matrix
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols,
             float stddev = 1.0f)
{
    Matrix m(rows, cols);
    m.fillGaussian(rng, 0.0f, stddev);
    return m;
}

/** Small arrays keep the cycle-stepped runs fast. */
FunctionalSimulator
makeSim()
{
    return FunctionalSimulator(ArrayGeometry::mType(8),
                               ArrayGeometry::gType(8),
                               ArrayGeometry::eType(8));
}

TEST(FunctionalSim, Dataflow1MatchesReferenceNumerics)
{
    Rng rng(1);
    const Matrix a = randomMatrix(rng, 19, 23);
    const Matrix b = randomMatrix(rng, 23, 13);
    Matrix bias(1, 13);
    bias.fillGaussian(rng, 0.0f, 1.0f);

    FunctionalSimulator sim = makeSim();
    const Matrix got = sim.dataflow1(a, b, 2.0f, &bias);

    const Matrix mm = matmulBf16(a, b);
    for (std::size_t i = 0; i < got.rows(); ++i) {
        for (std::size_t j = 0; j < got.cols(); ++j) {
            const float scaled = quantizeBf16(
                truncateBf16(mm(i, j)) * quantizeBf16(2.0f));
            const float sum = quantizeBf16(truncateBf16(scaled) +
                                           quantizeBf16(bias(0, j)));
            EXPECT_EQ(got(i, j), truncateBf16(sum)) << i << "," << j;
        }
    }
}

TEST(FunctionalSim, Dataflow1FullMatrixResidual)
{
    Rng rng(2);
    const Matrix a = randomMatrix(rng, 10, 6);
    const Matrix b = randomMatrix(rng, 6, 10);
    const Matrix residual = randomMatrix(rng, 10, 10);

    FunctionalSimulator sim = makeSim();
    const Matrix got = sim.dataflow1(a, b, 1.0f, &residual);
    const Matrix mm = matmulBf16(a, b);
    for (std::size_t i = 0; i < 10; ++i)
        for (std::size_t j = 0; j < 10; ++j) {
            const float scaled = quantizeBf16(
                truncateBf16(mm(i, j)) * quantizeBf16(1.0f));
            const float sum = quantizeBf16(
                truncateBf16(scaled) + quantizeBf16(residual(i, j)));
            EXPECT_EQ(got(i, j), truncateBf16(sum));
        }
}

TEST(FunctionalSim, Dataflow1WithoutAddend)
{
    Rng rng(3);
    const Matrix a = randomMatrix(rng, 9, 5);
    const Matrix b = randomMatrix(rng, 5, 7);
    FunctionalSimulator sim = makeSim();
    const Matrix got = sim.dataflow1(a, b, 1.0f, nullptr);
    const Matrix mm = matmulBf16(a, b);
    for (std::size_t i = 0; i < got.rows(); ++i)
        for (std::size_t j = 0; j < got.cols(); ++j)
            EXPECT_EQ(got(i, j), truncateBf16(mm(i, j)));
}

TEST(FunctionalSim, Dataflow2AppliesGeluLut)
{
    Rng rng(4);
    const Matrix a = randomMatrix(rng, 12, 9);
    const Matrix b = randomMatrix(rng, 9, 11);
    Matrix bias(1, 11);
    bias.fillGaussian(rng, 0.0f, 0.5f);

    FunctionalSimulator sim = makeSim();
    const Matrix got = sim.dataflow2(a, b, 1.0f, &bias);

    const TwoLevelLut lut = TwoLevelLut::makeGelu();
    const Matrix mm = matmulBf16(a, b);
    for (std::size_t i = 0; i < got.rows(); ++i) {
        for (std::size_t j = 0; j < got.cols(); ++j) {
            const float scaled = quantizeBf16(
                truncateBf16(mm(i, j)) * quantizeBf16(1.0f));
            const float sum = quantizeBf16(truncateBf16(scaled) +
                                           quantizeBf16(bias(0, j)));
            const float gelu =
                lut.lookup(truncateToBf16(sum)).toFloat();
            EXPECT_EQ(got(i, j), truncateBf16(gelu));
        }
    }
}

TEST(FunctionalSim, Dataflow3ProducesValidAttention)
{
    // Q, K, V with small magnitudes so Exp stays well-conditioned.
    Rng rng(5);
    const std::size_t len = 12, dk = 8;
    std::vector<Matrix> q, k, v;
    for (int b = 0; b < 3; ++b) {
        q.push_back(randomMatrix(rng, len, dk, 0.5f));
        k.push_back(randomMatrix(rng, len, dk, 0.5f));
        v.push_back(randomMatrix(rng, len, dk, 0.5f));
    }
    const float inv_scale = 1.0f / std::sqrt(static_cast<float>(dk));

    FunctionalSimulator sim = makeSim();
    const std::vector<Matrix> ctx = sim.dataflow3(q, k, v, inv_scale);
    ASSERT_EQ(ctx.size(), 3u);

    // Compare against the fp32 attention reference; hardware numerics
    // introduce bf16-scale error only.
    for (std::size_t b = 0; b < 3; ++b) {
        Matrix scores = matmul(q[b], transpose(k[b]));
        scores = scale(scores, inv_scale);
        const Matrix expected = matmul(rowSoftmax(scores), v[b]);
        EXPECT_EQ(ctx[b].rows(), len);
        EXPECT_EQ(ctx[b].cols(), dk);
        EXPECT_LT(Matrix::maxAbsDiff(ctx[b], expected), 0.06f)
            << "batch " << b;
    }
}

TEST(FunctionalSim, Dataflow3ProbabilitiesImplicitlyNormalized)
{
    // Constant V exposes the softmax normalization: context rows must
    // equal the constant (each row of P sums to ~1).
    Rng rng(6);
    const std::size_t len = 10, dk = 8;
    const Matrix q = randomMatrix(rng, len, dk, 0.5f);
    const Matrix k = randomMatrix(rng, len, dk, 0.5f);
    Matrix v(len, dk, 3.0f);

    FunctionalSimulator sim = makeSim();
    const auto ctx = sim.dataflow3({ q }, { k }, { v }, 0.35f);
    for (std::size_t i = 0; i < len; ++i)
        for (std::size_t j = 0; j < dk; ++j)
            EXPECT_NEAR(ctx[0](i, j), 3.0f, 0.1f);
}

TEST(FunctionalSim, StatisticsAccumulateAcrossArrays)
{
    Rng rng(7);
    FunctionalSimulator sim = makeSim();
    sim.dataflow1(randomMatrix(rng, 8, 8), randomMatrix(rng, 8, 8),
                  1.0f, nullptr);
    const std::uint64_t after_df1 = sim.matmulCycles();
    EXPECT_GT(after_df1, 0u);
    sim.dataflow2(randomMatrix(rng, 8, 8), randomMatrix(rng, 8, 8),
                  1.0f, nullptr);
    EXPECT_GT(sim.matmulCycles(), after_df1);
    EXPECT_GT(sim.simdCycles(), 0u);
    EXPECT_GT(sim.macCount(), 0u);
    EXPECT_GT(sim.elapsedSeconds(), 0.0);
}

TEST(FunctionalSim, MatchesTimingModelCycleCounts)
{
    // The functional simulator's matmul cycles over a tiled product
    // equal the closed-form model (drain/SIMD handled separately).
    Rng rng(8);
    const std::size_t m = 21, k = 15, n = 17;
    FunctionalSimulator sim(ArrayGeometry::mType(8),
                            ArrayGeometry::gType(8),
                            ArrayGeometry::eType(8));
    sim.dataflow1(randomMatrix(rng, m, k), randomMatrix(rng, k, n),
                  1.0f, nullptr);
    EXPECT_EQ(sim.mArray().matmulCycles(),
              TimingModel::matmulCycles(m, k, n, 8));
}

TEST(FunctionalSim, FullDataflow1CyclesMatchTimingModel)
{
    // The DES prices a Dataflow 1 as matmul cycles + 3 SIMD passes
    // (MUL, ADD, drain); the functional simulator must spend exactly
    // that executing one.
    Rng rng(10);
    const std::size_t m = 21, k = 15, n = 17, s = 8;
    FunctionalSimulator sim(ArrayGeometry::mType(8),
                            ArrayGeometry::gType(8),
                            ArrayGeometry::eType(8));
    Matrix bias(1, n);
    bias.fillGaussian(rng, 0.0f, 1.0f);
    sim.dataflow1(randomMatrix(rng, m, k), randomMatrix(rng, k, n),
                  1.0f, &bias);
    EXPECT_EQ(sim.mArray().matmulCycles(),
              TimingModel::matmulCycles(m, k, n, s));
    EXPECT_EQ(sim.mArray().simdCycles(),
              3 * TimingModel::simdPassCycles(m, n, s));
}

TEST(FunctionalSim, FullDataflow2CyclesMatchTimingModel)
{
    // Dataflow 2 adds the GELU pass: 4 SIMD passes total.
    Rng rng(11);
    const std::size_t m = 13, k = 9, n = 19, s = 8;
    FunctionalSimulator sim(ArrayGeometry::mType(8),
                            ArrayGeometry::gType(8),
                            ArrayGeometry::eType(8));
    Matrix bias(1, n);
    bias.fillGaussian(rng, 0.0f, 1.0f);
    sim.dataflow2(randomMatrix(rng, m, k), randomMatrix(rng, k, n),
                  1.0f, &bias);
    EXPECT_EQ(sim.gArray().matmulCycles(),
              TimingModel::matmulCycles(m, k, n, s));
    EXPECT_EQ(sim.gArray().simdCycles(),
              4 * TimingModel::simdPassCycles(m, n, s));
}

TEST(FunctionalSimDeathTest, MismatchedBatchPanics)
{
    Rng rng(9);
    FunctionalSimulator sim = makeSim();
    std::vector<Matrix> q{ randomMatrix(rng, 4, 4) };
    std::vector<Matrix> k{ randomMatrix(rng, 4, 4),
                           randomMatrix(rng, 4, 4) };
    std::vector<Matrix> v{ randomMatrix(rng, 4, 4) };
    EXPECT_DEATH(sim.dataflow3(q, k, v, 1.0f), "batch mismatch");
}

TEST(FunctionalSim, Dataflow3BatchParallelMatchesSerial)
{
    // A multi-element batch takes the clone-array fan-out; running each
    // element alone (batch 1 stays on the serial path) must give the
    // same matrices bit-for-bit AND the same cycle/MAC accounting.
    ThreadPool pool(4);
    ThreadPool::setGlobalOverride(&pool);
    Rng rng(31);
    std::vector<Matrix> q, k, v;
    for (int b = 0; b < 4; ++b) {
        q.push_back(randomMatrix(rng, 9, 6, 0.3f));
        k.push_back(randomMatrix(rng, 9, 6, 0.3f));
        v.push_back(randomMatrix(rng, 9, 6, 0.3f));
    }

    FunctionalSimulator batched = makeSim();
    const std::vector<Matrix> ctx = batched.dataflow3(q, k, v, 0.4f);
    ThreadPool::setGlobalOverride(nullptr);

    FunctionalSimulator serial = makeSim();
    ASSERT_EQ(ctx.size(), q.size());
    for (std::size_t b = 0; b < q.size(); ++b) {
        const auto one =
            serial.dataflow3({ q[b] }, { k[b] }, { v[b] }, 0.4f);
        EXPECT_EQ(Matrix::maxAbsDiff(ctx[b], one[0]), 0.0f) << "batch " << b;
    }
    EXPECT_EQ(batched.matmulCycles(), serial.matmulCycles());
    EXPECT_EQ(batched.simdCycles(), serial.simdCycles());
    EXPECT_EQ(batched.macCount(), serial.macCount());
}

} // namespace
} // namespace prose
