/** @file Tests for the 8-deep streaming buffer (Little's Law sizing). */

#include <gtest/gtest.h>

#include "systolic/stream_buffer.hh"

namespace prose {
namespace {

TEST(StreamBuffer, SufficientRateNeverStalls)
{
    StreamBuffer buffer(8, 1.0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(buffer.tick());
    EXPECT_EQ(buffer.stallCycles(), 0u);
    EXPECT_EQ(buffer.consumed(), 1000u);
}

TEST(StreamBuffer, OversupplyCapsAtDepth)
{
    StreamBuffer buffer(8, 100.0);
    buffer.tickNoConsume();
    EXPECT_LE(buffer.occupancy(), 8.0);
}

TEST(StreamBuffer, HalfRateStallsHalfTheTime)
{
    StreamBuffer buffer(8, 0.5);
    std::uint64_t consumed = 0;
    for (int i = 0; i < 1000; ++i)
        consumed += buffer.tick() ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(consumed), 500.0, 10.0);
    EXPECT_NEAR(static_cast<double>(buffer.stallCycles()), 500.0, 10.0);
}

TEST(StreamBuffer, FractionalRateAccumulates)
{
    // 0.25 entries/cycle -> one consumption every 4 cycles.
    StreamBuffer buffer(8, 0.25);
    std::uint64_t consumed = 0;
    for (int i = 0; i < 400; ++i)
        consumed += buffer.tick() ? 1 : 0;
    EXPECT_EQ(consumed, 100u);
}

TEST(StreamBuffer, PrefillAbsorbsBurst)
{
    // Little's Law: a full 8-deep buffer rides out 8 cycles of a
    // starved link before the array stalls.
    StreamBuffer buffer(8, 0.01);
    buffer.fill();
    int before_stall = 0;
    while (buffer.tick())
        ++before_stall;
    EXPECT_EQ(before_stall, 8);
}

TEST(StreamBuffer, ResetClearsEverything)
{
    StreamBuffer buffer(8, 0.5);
    for (int i = 0; i < 100; ++i)
        buffer.tick();
    buffer.reset();
    EXPECT_EQ(buffer.occupancy(), 0.0);
    EXPECT_EQ(buffer.stallCycles(), 0u);
    EXPECT_EQ(buffer.consumed(), 0u);
}

TEST(StreamBuffer, SplitPhaseApi)
{
    StreamBuffer buffer(4, 1.0);
    buffer.fillTick();
    ASSERT_TRUE(buffer.available());
    buffer.consume();
    EXPECT_EQ(buffer.consumed(), 1u);
    EXPECT_FALSE(buffer.available());
    buffer.noteStall();
    EXPECT_EQ(buffer.stallCycles(), 1u);
}

TEST(StreamBuffer, FillProfileCyclesThroughRates)
{
    StreamBuffer buffer(8, 1.0);
    EXPECT_TRUE(buffer.uniformFill());
    buffer.setFillProfile({ 0.0, 2.0 });
    EXPECT_FALSE(buffer.uniformFill());
    EXPECT_FALSE(buffer.idealSupply());

    buffer.fillTick(); // rate 0.0
    EXPECT_FALSE(buffer.available());
    buffer.fillTick(); // rate 2.0
    EXPECT_EQ(buffer.occupancy(), 2.0);
    EXPECT_EQ(buffer.fillTicks(), 2u);

    buffer.setFillProfile({});
    EXPECT_TRUE(buffer.uniformFill());
}

TEST(StreamBuffer, StateSnapshotRoundTrips)
{
    StreamBuffer buffer(8, 0.7);
    for (int i = 0; i < 9; ++i)
        buffer.tick();
    const StreamBuffer::State saved = buffer.state();
    for (int i = 0; i < 5; ++i)
        buffer.tick();
    buffer.restore(saved);
    EXPECT_EQ(buffer.occupancy(), saved.occupancy);
    EXPECT_EQ(buffer.stallCycles(), saved.stalls);
    EXPECT_EQ(buffer.consumed(), saved.consumed);
    EXPECT_EQ(buffer.fillTicks(), saved.fillTicks);
}

TEST(StreamBuffer, FastForwardIdealMatchesTickedRecurrence)
{
    // An ideal-supply buffer clamps to capacity on every fill tick, so
    // the closed form must land on the exact same state as ticking.
    StreamBuffer ticked(8, 1e18);
    StreamBuffer jumped(8, 1e18);
    ASSERT_TRUE(ticked.idealSupply());

    const std::uint64_t cycles = 37, consumes = 21;
    for (std::uint64_t c = 0; c < cycles; ++c) {
        ticked.fillTick();
        if (c < consumes)
            ticked.consume();
    }
    jumped.fastForwardIdeal(cycles, consumes);
    EXPECT_EQ(jumped.occupancy(), ticked.occupancy());
    EXPECT_EQ(jumped.consumed(), ticked.consumed());
    EXPECT_EQ(jumped.fillTicks(), ticked.fillTicks());

    // Consuming on the final cycle leaves depth - 1 instead of depth.
    StreamBuffer ticked_full(8, 1e18);
    StreamBuffer jumped_full(8, 1e18);
    for (std::uint64_t c = 0; c < cycles; ++c) {
        ticked_full.fillTick();
        ticked_full.consume();
    }
    jumped_full.fastForwardIdeal(cycles, cycles);
    EXPECT_EQ(jumped_full.occupancy(), ticked_full.occupancy());
    EXPECT_EQ(jumped_full.consumed(), ticked_full.consumed());
}

TEST(StreamBufferDeathTest, ConsumeEmptyPanics)
{
    StreamBuffer buffer(4, 0.1);
    EXPECT_DEATH(buffer.consume(), "empty");
}

TEST(StreamBufferDeathTest, ZeroDepthRejected)
{
    EXPECT_DEATH(StreamBuffer(0, 1.0), "depth");
}

// Fuzzing regression (fuzz_engine_equiv, corpus seed
// seed_zero_fill_profile): a fill profile whose whole period is zero
// never delivers an element, so tick() never succeeds and the stepped
// engine livelocks. The buffer must reject it up front.
TEST(StreamBufferDeathTest, AllZeroFillProfileRejected)
{
    StreamBuffer buffer(4, 1.0);
    EXPECT_DEATH(buffer.setFillProfile({ 0.0 }),
                 "supplies nothing over its period");
    EXPECT_DEATH(buffer.setFillProfile({ 0.0, 0.0, 0.0 }),
                 "supplies nothing over its period");
}

TEST(StreamBuffer, BurstProfileWithIdleTicksStillAccepted)
{
    StreamBuffer buffer(4, 1.0);
    buffer.setFillProfile({ 0.0, 2.0 }); // idle tick, then a burst
    EXPECT_FALSE(buffer.tick());         // nothing arrived yet
    EXPECT_TRUE(buffer.tick());          // burst delivers
    buffer.setFillProfile({});           // back to uniform supply
    EXPECT_TRUE(buffer.uniformFill());
}

} // namespace
} // namespace prose
