/** @file Cross-validation of the fast-forward execution engine against
 *  the cycle-stepped reference: randomized geometries, tile shapes,
 *  supply rates, and op mixes must agree bit-for-bit in register file,
 *  cycle/stall/MAC counters, and stream-buffer state; fault injection,
 *  ABFT, and non-uniform fill profiles must force the stepped engine
 *  without perturbing the deterministic replay contract. Also pins down
 *  the live-region (bounding-box union) semantics with mixed tile
 *  sizes. */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.hh"
#include "fault/fault_injector.hh"
#include "numerics/bfloat16.hh"
#include "numerics/matrix.hh"
#include "systolic/fsim_mode.hh"
#include "systolic/functional_sim.hh"
#include "systolic/systolic_array.hh"

namespace prose {
namespace {

Matrix
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols, float scale)
{
    Matrix m(rows, cols);
    m.fillGaussian(rng, 0.0f, scale);
    return m;
}

bool
bitEqual(float x, float y)
{
    return std::memcmp(&x, &y, sizeof(float)) == 0;
}

void
expectBitIdentical(const Matrix &a, const Matrix &b, const char *what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            ASSERT_TRUE(bitEqual(a(i, j), b(i, j)))
                << what << " (" << i << "," << j << "): " << a(i, j)
                << " vs " << b(i, j);
}

/** Everything observable after an op sequence. */
struct SequenceResult
{
    std::vector<Matrix> drains;
    Matrix finalAcc;
    std::uint64_t matmulCycles = 0;
    std::uint64_t simdCycles = 0;
    std::uint64_t stallCycles = 0;
    std::uint64_t macCount = 0;
    std::uint64_t simdOpCount = 0;
    double aOccupancy = 0.0;
    double bOccupancy = 0.0;
    std::uint64_t aStalls = 0;
    std::uint64_t bStalls = 0;
    std::uint64_t aConsumed = 0;
    std::uint64_t bConsumed = 0;
};

/**
 * Replay a seed-determined random op sequence on one array. The rng
 * draws are identical across modes, so two calls with the same seed see
 * the same geometry, rates, shapes, data, and op mix.
 */
SequenceResult
runRandomSequence(FsimMode mode, std::uint64_t seed, bool ideal_rates)
{
    Rng rng(seed);
    const std::size_t dim = 4 + rng.below(13); // 4..16
    ArrayGeometry geom = ArrayGeometry::gType(dim);
    geom.hasExp = true; // exercise both LUT kinds on one array
    const double a_rate = ideal_rates ? 1e18 : rng.uniform(0.2, 2.5);
    const double b_rate = ideal_rates ? 1e18 : rng.uniform(0.2, 2.5);
    SystolicArray array(geom, a_rate, b_rate);
    array.setMode(mode);

    SequenceResult result;
    bool live = false;
    const std::size_t ops = 12;
    for (std::size_t op = 0; op < ops; ++op) {
        const std::uint64_t kind = live ? rng.below(6) : 0;
        switch (kind) {
          case 0: { // matmul (accumulates into any live tile)
            const std::size_t rows = 1 + rng.below(dim);
            const std::size_t cols = 1 + rng.below(dim);
            const std::size_t k = 1 + rng.below(24);
            const float scale =
                static_cast<float>(rng.uniform(0.2, 4.0));
            const Matrix a = randomMatrix(rng, rows, k, scale);
            const Matrix b = randomMatrix(rng, k, cols, scale);
            array.matmulTile(a, b);
            live = true;
            break;
          }
          case 1:
            array.simdScalar(SimdOp::MulScalar,
                             static_cast<float>(rng.uniform(-2.0, 2.0)));
            break;
          case 2:
            array.simdScalar(SimdOp::AddScalar,
                             static_cast<float>(rng.uniform(-2.0, 2.0)));
            break;
          case 3: {
            const SimdOp op_kind =
                rng.below(2) ? SimdOp::MulVector : SimdOp::AddVector;
            array.simdVector(op_kind,
                             randomMatrix(rng, dim, dim, 1.0f));
            break;
          }
          case 4:
            array.simdSpecial(rng.below(2) ? SimdOp::Gelu : SimdOp::Exp);
            break;
          case 5: {
            Matrix out;
            array.drain(out);
            result.drains.push_back(std::move(out));
            live = false;
            break;
          }
        }
    }
    if (live)
        result.finalAcc = array.accumulators();
    result.matmulCycles = array.matmulCycles();
    result.simdCycles = array.simdCycles();
    result.stallCycles = array.stallCycles();
    result.macCount = array.macCount();
    result.simdOpCount = array.simdOpCount();
    result.aOccupancy = array.aBuffer().occupancy();
    result.bOccupancy = array.bBuffer().occupancy();
    result.aStalls = array.aBuffer().stallCycles();
    result.bStalls = array.bBuffer().stallCycles();
    result.aConsumed = array.aBuffer().consumed();
    result.bConsumed = array.bBuffer().consumed();
    return result;
}

void
expectSequencesAgree(const SequenceResult &fast,
                     const SequenceResult &stepped)
{
    ASSERT_EQ(fast.drains.size(), stepped.drains.size());
    for (std::size_t d = 0; d < fast.drains.size(); ++d)
        expectBitIdentical(fast.drains[d], stepped.drains[d], "drain");
    expectBitIdentical(fast.finalAcc, stepped.finalAcc, "accumulators");
    EXPECT_EQ(fast.matmulCycles, stepped.matmulCycles);
    EXPECT_EQ(fast.simdCycles, stepped.simdCycles);
    EXPECT_EQ(fast.stallCycles, stepped.stallCycles);
    EXPECT_EQ(fast.macCount, stepped.macCount);
    EXPECT_EQ(fast.simdOpCount, stepped.simdOpCount);
    EXPECT_EQ(fast.aStalls, stepped.aStalls);
    EXPECT_EQ(fast.bStalls, stepped.bStalls);
    EXPECT_EQ(fast.aConsumed, stepped.aConsumed);
    EXPECT_EQ(fast.bConsumed, stepped.bConsumed);
    EXPECT_TRUE(std::memcmp(&fast.aOccupancy, &stepped.aOccupancy,
                            sizeof(double)) == 0)
        << fast.aOccupancy << " vs " << stepped.aOccupancy;
    EXPECT_TRUE(std::memcmp(&fast.bOccupancy, &stepped.bOccupancy,
                            sizeof(double)) == 0)
        << fast.bOccupancy << " vs " << stepped.bOccupancy;
}

TEST(FastForward, MatchesSteppedOnRandomSequencesIdealSupply)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        SCOPED_TRACE(seed);
        expectSequencesAgree(
            runRandomSequence(FsimMode::Fast, seed, true),
            runRandomSequence(FsimMode::Stepped, seed, true));
    }
}

TEST(FastForward, MatchesSteppedOnRandomSequencesFractionalSupply)
{
    bool saw_stalls = false;
    for (std::uint64_t seed = 100; seed <= 112; ++seed) {
        SCOPED_TRACE(seed);
        const SequenceResult fast =
            runRandomSequence(FsimMode::Fast, seed, false);
        expectSequencesAgree(
            fast, runRandomSequence(FsimMode::Stepped, seed, false));
        saw_stalls = saw_stalls || fast.stallCycles > 0;
    }
    // The sweep must actually exercise the stall-gating replay.
    EXPECT_TRUE(saw_stalls);
}

TEST(FastForward, ValidateModeRunsBothEnginesAndAgrees)
{
    // Validate panics on any engine divergence; it must also produce
    // exactly the stepped results.
    for (std::uint64_t seed = 200; seed <= 206; ++seed) {
        SCOPED_TRACE(seed);
        expectSequencesAgree(
            runRandomSequence(FsimMode::Validate, seed, true),
            runRandomSequence(FsimMode::Stepped, seed, true));
        expectSequencesAgree(
            runRandomSequence(FsimMode::Validate, seed, false),
            runRandomSequence(FsimMode::Stepped, seed, false));
    }
}

TEST(FastForward, AlphaAndAddendVariantsThroughFunctionalSim)
{
    Rng rng(42);
    const Matrix a = randomMatrix(rng, 37, 29, 1.0f);
    const Matrix b = randomMatrix(rng, 29, 41, 1.0f);
    const Matrix bias = randomMatrix(rng, 1, 41, 1.0f);
    const Matrix residual = randomMatrix(rng, 37, 41, 1.0f);
    const float alphas[] = { 1.0f, 0.125f, -1.75f };
    const Matrix *addends[] = { nullptr, &bias, &residual };

    for (const float alpha : alphas) {
        for (const Matrix *addend : addends) {
            FunctionalSimulator fast_sim(ArrayGeometry::mType(16),
                                         ArrayGeometry::gType(16),
                                         ArrayGeometry::eType(16));
            FunctionalSimulator stepped_sim(ArrayGeometry::mType(16),
                                            ArrayGeometry::gType(16),
                                            ArrayGeometry::eType(16));
            fast_sim.setMode(FsimMode::Fast);
            stepped_sim.setMode(FsimMode::Stepped);
            expectBitIdentical(fast_sim.dataflow1(a, b, alpha, addend),
                               stepped_sim.dataflow1(a, b, alpha, addend),
                               "dataflow1");
            expectBitIdentical(fast_sim.dataflow2(a, b, alpha, addend),
                               stepped_sim.dataflow2(a, b, alpha, addend),
                               "dataflow2");
            EXPECT_EQ(fast_sim.matmulCycles(),
                      stepped_sim.matmulCycles());
            EXPECT_EQ(fast_sim.simdCycles(), stepped_sim.simdCycles());
            EXPECT_EQ(fast_sim.macCount(), stepped_sim.macCount());
        }
    }
}

TEST(FastForward, Dataflow3BatchParallelClonesInheritTheEngine)
{
    Rng rng(7);
    std::vector<Matrix> q, k, v;
    for (int batch = 0; batch < 4; ++batch) {
        q.push_back(randomMatrix(rng, 20, 12, 1.0f));
        k.push_back(randomMatrix(rng, 20, 12, 1.0f));
        v.push_back(randomMatrix(rng, 20, 12, 1.0f));
    }
    FunctionalSimulator fast_sim;
    FunctionalSimulator stepped_sim;
    fast_sim.setMode(FsimMode::Fast);
    stepped_sim.setMode(FsimMode::Stepped);
    const std::vector<Matrix> fast_ctx =
        fast_sim.dataflow3(q, k, v, 0.288675f);
    const std::vector<Matrix> stepped_ctx =
        stepped_sim.dataflow3(q, k, v, 0.288675f);
    ASSERT_EQ(fast_ctx.size(), stepped_ctx.size());
    for (std::size_t batch = 0; batch < fast_ctx.size(); ++batch)
        expectBitIdentical(fast_ctx[batch], stepped_ctx[batch],
                           "dataflow3 context");
    EXPECT_EQ(fast_sim.matmulCycles(), stepped_sim.matmulCycles());
    EXPECT_EQ(fast_sim.simdCycles(), stepped_sim.simdCycles());
    EXPECT_EQ(fast_sim.macCount(), stepped_sim.macCount());
}

/**
 * Live-region semantics (see docs/MICROARCHITECTURE.md): the live
 * region is the bounding-box UNION of all tiles since the last
 * drain/clear, because a smaller tile leaves the larger tile's stale
 * accumulators physically in place and the rotation/OUTPUT sweeps must
 * cover them.
 */
TEST(LiveRegion, MixedTileSizesKeepTheBoundingBoxUnion)
{
    Rng rng(11);
    SystolicArray array(ArrayGeometry::mType(8));
    array.setMode(FsimMode::Validate);

    const Matrix a1 = randomMatrix(rng, 5, 3, 1.0f);
    const Matrix b1 = randomMatrix(rng, 3, 4, 1.0f);
    array.matmulTile(a1, b1);
    EXPECT_EQ(array.accumulators().rows(), 5u);
    EXPECT_EQ(array.accumulators().cols(), 4u);

    // A smaller tile does NOT shrink the live region...
    const Matrix a2 = randomMatrix(rng, 2, 7, 1.0f);
    const Matrix b2 = randomMatrix(rng, 7, 6, 1.0f);
    array.matmulTile(a2, b2);
    const Matrix acc = array.accumulators();
    ASSERT_EQ(acc.rows(), 5u);
    ASSERT_EQ(acc.cols(), 6u);

    // ...and the union holds both products, zero elsewhere.
    const Matrix p1 = matmulBf16(a1, b1);
    const Matrix p2 = matmulBf16(a2, b2);
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 6; ++j) {
            float expected = 0.0f;
            if (i < p1.rows() && j < p1.cols())
                expected += p1(i, j);
            if (i < p2.rows() && j < p2.cols())
                expected += p2(i, j);
            ASSERT_TRUE(bitEqual(acc(i, j), expected))
                << i << "," << j;
        }
    }

    // SIMD passes and the OUTPUT port sweep the whole union: one cycle
    // per live column.
    EXPECT_EQ(array.simdScalar(SimdOp::MulScalar, 1.0f), 6u);
    Matrix out;
    EXPECT_EQ(array.drain(out), 6u);
    EXPECT_EQ(out.rows(), 5u);
    EXPECT_EQ(out.cols(), 6u);

    // drain() clears the region, so a following small tile starts a
    // fresh bounding box.
    array.matmulTile(a2, b2);
    EXPECT_EQ(array.accumulators().rows(), 2u);
    EXPECT_EQ(array.accumulators().cols(), 6u);
}

TEST(FastForwardFallback, NonUniformFillProfileForcesStepped)
{
    Rng rng(3);
    const Matrix a = randomMatrix(rng, 6, 9, 1.0f);
    const Matrix b = randomMatrix(rng, 9, 5, 1.0f);

    SystolicArray fast_array(ArrayGeometry::mType(8), 1.0, 1.0);
    fast_array.setMode(FsimMode::Fast);
    EXPECT_EQ(fast_array.effectiveMode(), FsimMode::Fast);
    // Bursty host: nothing on even fill ticks, two entries on odd.
    fast_array.aBuffer().setFillProfile({ 0.0, 2.0 });
    EXPECT_EQ(fast_array.effectiveMode(), FsimMode::Stepped);

    SystolicArray stepped_array(ArrayGeometry::mType(8), 1.0, 1.0);
    stepped_array.setMode(FsimMode::Stepped);
    stepped_array.aBuffer().setFillProfile({ 0.0, 2.0 });

    EXPECT_EQ(fast_array.matmulTile(a, b),
              stepped_array.matmulTile(a, b));
    expectBitIdentical(fast_array.accumulators(),
                       stepped_array.accumulators(), "profile acc");
    EXPECT_EQ(fast_array.stallCycles(), stepped_array.stallCycles());
    EXPECT_GT(fast_array.stallCycles(), 0u);

    // Restoring the uniform profile restores fast-forward eligibility.
    fast_array.aBuffer().setFillProfile({});
    EXPECT_EQ(fast_array.effectiveMode(), FsimMode::Fast);
}

TEST(FastForwardFallback, InjectorForcesSteppedWithUnchangedReplay)
{
    CampaignSpec spec;
    spec.seed = 77;
    spec.accFlipRate = 0.05;
    FaultInjector fast_injector(spec);
    FaultInjector stepped_injector(spec);

    Rng rng(5);
    SystolicArray fast_array(ArrayGeometry::mType(8));
    fast_array.setMode(FsimMode::Fast);
    fast_array.setFaultInjector(&fast_injector, "M0");
    EXPECT_EQ(fast_array.effectiveMode(), FsimMode::Stepped);

    // Validate would run both engines and advance the injector RNG
    // twice, so it too must collapse to a single stepped run.
    SystolicArray validate_array(ArrayGeometry::mType(8));
    validate_array.setMode(FsimMode::Validate);
    FaultInjector validate_injector(spec);
    validate_array.setFaultInjector(&validate_injector, "M0");
    EXPECT_EQ(validate_array.effectiveMode(), FsimMode::Stepped);

    SystolicArray stepped_array(ArrayGeometry::mType(8));
    stepped_array.setMode(FsimMode::Stepped);
    stepped_array.setFaultInjector(&stepped_injector, "M0");

    for (int tile = 0; tile < 3; ++tile) {
        const Matrix a = randomMatrix(rng, 7, 6, 1.0f);
        const Matrix b = randomMatrix(rng, 6, 8, 1.0f);
        fast_array.matmulTile(a, b);
        validate_array.matmulTile(a, b);
        stepped_array.matmulTile(a, b);
    }
    // Bit-identical corruption and an identical deterministic log.
    expectBitIdentical(fast_array.accumulators(),
                       stepped_array.accumulators(), "fault acc");
    expectBitIdentical(validate_array.accumulators(),
                       stepped_array.accumulators(), "fault acc (val)");
    EXPECT_EQ(fast_injector.eventLogText(),
              stepped_injector.eventLogText());
    EXPECT_EQ(validate_injector.eventLogText(),
              stepped_injector.eventLogText());
    EXPECT_FALSE(fast_injector.events().empty());

    // Detaching the injector restores the requested engine.
    fast_array.setFaultInjector(nullptr, "");
    EXPECT_EQ(fast_array.effectiveMode(), FsimMode::Fast);
}

TEST(FastForwardFallback, AbftRunsSteppedWithUnchangedDetection)
{
    CampaignSpec spec;
    spec.seed = 123;
    spec.accFlipRate = 0.01;
    FaultInjector fast_injector(spec);
    FaultInjector stepped_injector(spec);

    Rng rng(9);
    const Matrix a = randomMatrix(rng, 40, 24, 1.0f);
    const Matrix b = randomMatrix(rng, 24, 36, 1.0f);

    AbftOptions abft;
    abft.enabled = true;
    abft.correct = true;

    FunctionalSimulator fast_sim;
    fast_sim.setMode(FsimMode::Fast);
    fast_sim.setAbft(abft);
    fast_sim.setFaultInjector(&fast_injector);
    // ABFT observes accumulators mid-dataflow: the whole simulator
    // falls back to the stepped engine.
    EXPECT_EQ(fast_sim.mArray().mode(), FsimMode::Stepped);

    FunctionalSimulator stepped_sim;
    stepped_sim.setMode(FsimMode::Stepped);
    stepped_sim.setAbft(abft);
    stepped_sim.setFaultInjector(&stepped_injector);

    expectBitIdentical(fast_sim.dataflow1(a, b, 1.0f, nullptr),
                       stepped_sim.dataflow1(a, b, 1.0f, nullptr),
                       "abft dataflow1");
    const AbftStats &fs = fast_sim.abftStats();
    const AbftStats &ss = stepped_sim.abftStats();
    EXPECT_EQ(fs.tilesChecked, ss.tilesChecked);
    EXPECT_EQ(fs.tilesFlagged, ss.tilesFlagged);
    EXPECT_EQ(fs.locatedElements, ss.locatedElements);
    EXPECT_EQ(fs.correctedElements, ss.correctedElements);
    EXPECT_GT(fs.tilesFlagged, 0u);
    EXPECT_EQ(fast_injector.eventLogText(),
              stepped_injector.eventLogText());
}

TEST(FsimModeTest, ParseAndToStringRoundTrip)
{
    EXPECT_EQ(parseFsimMode("fast"), FsimMode::Fast);
    EXPECT_EQ(parseFsimMode("stepped"), FsimMode::Stepped);
    EXPECT_EQ(parseFsimMode("validate"), FsimMode::Validate);
    EXPECT_STREQ(toString(FsimMode::Fast), "fast");
    EXPECT_STREQ(toString(FsimMode::Stepped), "stepped");
    EXPECT_STREQ(toString(FsimMode::Validate), "validate");
    EXPECT_EXIT(parseFsimMode("bogus"),
                ::testing::ExitedWithCode(1),
                "unknown functional-sim mode");
}

} // namespace
} // namespace prose
