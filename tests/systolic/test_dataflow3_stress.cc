/**
 * @file
 * Contention stress for the dataflow3 batch fan-out: clone arrays run
 * batch elements in parallel and absorbStats folds their counters back
 * into the architectural array. Under TSan this exercises the
 * clone/absorb lifecycle for races; everywhere it pins the contract
 * that batch-parallel results AND statistics are bit-identical to the
 * serial loop.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "numerics/float_bits.hh"
#include "systolic/functional_sim.hh"

namespace prose {
namespace {

std::vector<Matrix>
randomBatch(Rng &rng, std::size_t batch, std::size_t rows,
            std::size_t cols)
{
    std::vector<Matrix> out;
    out.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        Matrix m(rows, cols);
        m.fillGaussian(rng, 0.0f, 1.0f);
        out.push_back(std::move(m));
    }
    return out;
}

struct SimCounters
{
    std::uint64_t matmul, simd, macs;
};

SimCounters
counters(const FunctionalSimulator &sim)
{
    return { sim.matmulCycles(), sim.simdCycles(), sim.macCount() };
}

// One serial reference pass vs repeated parallel passes on a shared
// 4-lane pool, with a batch big enough that several clones are in
// flight at once. Outputs and folded counters must match bit for bit
// on every repetition.
TEST(Dataflow3Stress, BatchParallelBitIdenticalUnderContention)
{
    const std::size_t kBatch = 8;
    Rng rng(7);
    const auto q = randomBatch(rng, kBatch, 9, 6);
    const auto k = randomBatch(rng, kBatch, 9, 6);
    const auto v = randomBatch(rng, kBatch, 9, 6);

    FunctionalSimulator serial_sim(ArrayGeometry::mType(8),
                                   ArrayGeometry::gType(8),
                                   ArrayGeometry::eType(8));
    std::vector<Matrix> want;
    SimCounters want_counters{};
    {
        ThreadPool::SerialGuard guard;
        want = serial_sim.dataflow3(q, k, v, 0.5f);
        want_counters = counters(serial_sim);
    }

    ThreadPool pool(4);
    ThreadPool::setGlobalOverride(&pool);
    for (int rep = 0; rep < 4; ++rep) {
        FunctionalSimulator sim(ArrayGeometry::mType(8),
                                ArrayGeometry::gType(8),
                                ArrayGeometry::eType(8));
        const std::vector<Matrix> got = sim.dataflow3(q, k, v, 0.5f);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t b = 0; b < got.size(); ++b) {
            ASSERT_EQ(got[b].rows(), want[b].rows());
            ASSERT_EQ(got[b].cols(), want[b].cols());
            for (std::size_t i = 0; i < got[b].rows(); ++i)
                for (std::size_t j = 0; j < got[b].cols(); ++j)
                    ASSERT_TRUE(
                        bitsEqual(got[b](i, j), want[b](i, j)))
                        << "rep " << rep << " batch " << b << " ("
                        << i << "," << j << ")";
        }
        const SimCounters got_counters = counters(sim);
        EXPECT_EQ(got_counters.matmul, want_counters.matmul);
        EXPECT_EQ(got_counters.simd, want_counters.simd);
        EXPECT_EQ(got_counters.macs, want_counters.macs);
    }
    ThreadPool::setGlobalOverride(nullptr);
}

// Two simulators sharing the pool from two submitter threads: clone
// fan-outs from independent simulators must not interfere (each
// absorbs only its own clones' counters).
TEST(Dataflow3Stress, IndependentSimulatorsShareThePool)
{
    const std::size_t kBatch = 6;
    Rng rng(11);
    const auto q = randomBatch(rng, kBatch, 7, 5);
    const auto k = randomBatch(rng, kBatch, 7, 5);
    const auto v = randomBatch(rng, kBatch, 7, 5);

    FunctionalSimulator ref_sim(ArrayGeometry::mType(8),
                                ArrayGeometry::gType(8),
                                ArrayGeometry::eType(8));
    std::vector<Matrix> want;
    SimCounters want_counters{};
    {
        ThreadPool::SerialGuard guard;
        want = ref_sim.dataflow3(q, k, v, 1.0f);
        want_counters = counters(ref_sim);
    }

    ThreadPool pool(4);
    ThreadPool::setGlobalOverride(&pool);
    std::vector<SimCounters> results(2);
    std::vector<std::thread> drivers;
    std::atomic<int> mismatches{ 0 };
    for (int t = 0; t < 2; ++t) {
        drivers.emplace_back([&, t] {
            FunctionalSimulator sim(ArrayGeometry::mType(8),
                                    ArrayGeometry::gType(8),
                                    ArrayGeometry::eType(8));
            const auto got = sim.dataflow3(q, k, v, 1.0f);
            for (std::size_t b = 0; b < got.size(); ++b)
                for (std::size_t i = 0; i < got[b].rows(); ++i)
                    for (std::size_t j = 0; j < got[b].cols(); ++j)
                        if (!bitsEqual(got[b](i, j), want[b](i, j)))
                            mismatches.fetch_add(1);
            results[t] = counters(sim);
        });
    }
    for (auto &t : drivers)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    for (const SimCounters &c : results) {
        EXPECT_EQ(c.matmul, want_counters.matmul);
        EXPECT_EQ(c.simd, want_counters.simd);
        EXPECT_EQ(c.macs, want_counters.macs);
    }
    ThreadPool::setGlobalOverride(nullptr);
}

} // namespace
} // namespace prose
