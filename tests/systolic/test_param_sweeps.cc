/** @file Parameterized property sweeps over systolic array geometries:
 *  every invariant must hold for every array size the DSE can pick. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "numerics/bfloat16.hh"
#include "systolic/systolic_array.hh"
#include "systolic/timing_model.hh"

namespace prose {
namespace {

class ArrayDimSweep : public ::testing::TestWithParam<std::uint32_t>
{
  protected:
    Matrix
    randomMatrix(std::size_t rows, std::size_t cols)
    {
        Matrix m(rows, cols);
        m.fillGaussian(rng_, 0.0f, 1.0f);
        return m;
    }

    Rng rng_{ 0xabcdef };
};

TEST_P(ArrayDimSweep, MatmulBitExactAtFullTile)
{
    const std::uint32_t dim = GetParam();
    SystolicArray array(ArrayGeometry::mType(dim));
    const Matrix a = randomMatrix(dim, 3 * dim + 1);
    const Matrix b = randomMatrix(3 * dim + 1, dim);
    array.matmulTile(a, b);
    EXPECT_EQ(Matrix::maxAbsDiff(array.accumulators(), matmulBf16(a, b)),
              0.0f);
}

TEST_P(ArrayDimSweep, MatmulBitExactAtRaggedTile)
{
    const std::uint32_t dim = GetParam();
    if (dim < 2)
        GTEST_SKIP();
    SystolicArray array(ArrayGeometry::mType(dim));
    const Matrix a = randomMatrix(dim - 1, 2 * dim + 3);
    const Matrix b = randomMatrix(2 * dim + 3, dim / 2 + 1);
    array.matmulTile(a, b);
    EXPECT_EQ(Matrix::maxAbsDiff(array.accumulators(), matmulBf16(a, b)),
              0.0f);
}

TEST_P(ArrayDimSweep, CycleFormulaHolds)
{
    const std::uint32_t dim = GetParam();
    SystolicArray array(ArrayGeometry::mType(dim));
    const std::size_t k = 2 * dim + 5;
    const std::uint64_t cycles =
        array.matmulTile(randomMatrix(dim, k), randomMatrix(k, dim));
    EXPECT_EQ(cycles, TimingModel::tileMatmulCycles(dim, dim, k));
}

TEST_P(ArrayDimSweep, SimdPassTakesLiveColumnCycles)
{
    const std::uint32_t dim = GetParam();
    SystolicArray array(ArrayGeometry::mType(dim));
    array.matmulTile(randomMatrix(dim, 4), randomMatrix(4, dim));
    EXPECT_EQ(array.simdScalar(SimdOp::AddScalar, 1.0f), dim);
}

TEST_P(ArrayDimSweep, MulAddEquivalentAcrossSizes)
{
    // The same fused MulAdd computed on arrays of different sizes must
    // produce identical bits (the numerics are size-independent).
    const std::uint32_t dim = GetParam();
    const std::size_t m = 12, k = 9, n = 10;
    Rng rng(77);
    Matrix a(m, k), b(k, n), addend(m, n);
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    addend.fillGaussian(rng, 0.0f, 1.0f);

    auto run = [&](std::uint32_t s) {
        SystolicArray array(ArrayGeometry::mType(s));
        Matrix out(m, n);
        for (std::size_t tm = 0; tm < m; tm += s) {
            const std::size_t rows = std::min<std::size_t>(s, m - tm);
            for (std::size_t tn = 0; tn < n; tn += s) {
                const std::size_t cols =
                    std::min<std::size_t>(s, n - tn);
                Matrix a_tile(rows, k), b_tile(k, cols),
                    add_tile(rows, cols);
                for (std::size_t i = 0; i < rows; ++i)
                    for (std::size_t j = 0; j < k; ++j)
                        a_tile(i, j) = a(tm + i, j);
                for (std::size_t i = 0; i < k; ++i)
                    for (std::size_t j = 0; j < cols; ++j)
                        b_tile(i, j) = b(i, tn + j);
                for (std::size_t i = 0; i < rows; ++i)
                    for (std::size_t j = 0; j < cols; ++j)
                        add_tile(i, j) = addend(tm + i, tn + j);
                array.matmulTile(a_tile, b_tile);
                array.simdScalar(SimdOp::MulScalar, 0.5f);
                array.simdVector(SimdOp::AddVector, add_tile);
                Matrix tile_out;
                array.drain(tile_out);
                for (std::size_t i = 0; i < rows; ++i)
                    for (std::size_t j = 0; j < cols; ++j)
                        out(tm + i, tn + j) = tile_out(i, j);
            }
        }
        return out;
    };

    const Matrix reference = run(16);
    const Matrix got = run(dim);
    EXPECT_EQ(Matrix::maxAbsDiff(got, reference), 0.0f)
        << "dim=" << dim;
}

TEST_P(ArrayDimSweep, StallingNeverChangesResults)
{
    const std::uint32_t dim = GetParam();
    const Matrix a = randomMatrix(dim, dim + 7);
    const Matrix b = randomMatrix(dim + 7, dim);

    SystolicArray fast(ArrayGeometry::mType(dim));
    SystolicArray slow(ArrayGeometry::mType(dim), 0.3, 0.7);
    fast.matmulTile(a, b);
    slow.matmulTile(a, b);
    EXPECT_EQ(Matrix::maxAbsDiff(fast.accumulators(),
                                 slow.accumulators()),
              0.0f);
    EXPECT_GT(slow.stallCycles(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ArrayDimSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u, 11u, 16u),
                         [](const auto &param_info) {
                             return "dim" + std::to_string(param_info.param);
                         });

/** Sweep the SIMD special functions across LUT-equipped sizes. */
class LutArraySweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(LutArraySweep, GeluAndExpPassesRunOnTheirTypes)
{
    const std::uint32_t dim = GetParam();
    Rng rng(5);
    Matrix a(dim, 4), b(4, dim);
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);

    SystolicArray g(ArrayGeometry::gType(dim));
    g.matmulTile(a, b);
    EXPECT_EQ(g.simdSpecial(SimdOp::Gelu), dim);

    SystolicArray e(ArrayGeometry::eType(dim));
    e.matmulTile(a, b);
    EXPECT_EQ(e.simdSpecial(SimdOp::Exp), dim);
}

INSTANTIATE_TEST_SUITE_P(LutGeometries, LutArraySweep,
                         ::testing::Values(4u, 16u, 32u),
                         [](const auto &param_info) {
                             return "dim" + std::to_string(param_info.param);
                         });

} // namespace
} // namespace prose
