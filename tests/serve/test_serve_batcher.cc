/** @file Tests for the SLO-aware dynamic batcher, including the
 *  mandated edge cases: empty-bucket flush, a single oversize request
 *  that cannot meet its SLO, a deadline expiring inside a formed batch,
 *  and the retry-after-shed interaction. */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "serve/serve_batcher.hh"

namespace prose {
namespace {

class ServeBatcherTest : public ::testing::Test
{
  protected:
    ServeBatcherTest()
        : model_(ProseConfig::bestPerf(),
                 BertShape{ 1, 256, 4, 1024, 1, 64 })
    {
    }

    ServeBatcherSpec
    spec(std::uint64_t max_batch = 2) const
    {
        ServeBatcherSpec s;
        s.buckets = { 128, 256 };
        s.maxBatch = max_batch;
        return s;
    }

    /** Arena slot in ADMITTED state, ready for enqueue. */
    RequestId
    admitted(RequestArena &arena, std::uint64_t residues,
             double deadline, std::uint32_t priority = 0)
    {
        Request request;
        request.id = static_cast<RequestId>(arena.size());
        request.arrivalSeconds = 0.0;
        request.residues = residues;
        request.priority = priority;
        request.deadlineSeconds = deadline;
        transition(request, RequestState::Admitted, 0.0);
        arena.push_back(request);
        return request.id;
    }

    ServiceModel model_;
};

TEST_F(ServeBatcherTest, EmptyBucketFlushIsCleanNoOp)
{
    ServeBatcher batcher(spec(), model_);
    RequestArena arena;
    ClosedBatch batch;
    EXPECT_FALSE(batcher.close(arena, 0.0, batch, /*force=*/true));
    EXPECT_FALSE(batcher.close(arena, 0.0, batch, /*force=*/false));
    EXPECT_EQ(batcher.queued(), 0u);
    EXPECT_EQ(batcher.shedVictim(arena), kNoRequest);
    EXPECT_TRUE(
        std::isinf(batcher.nextCloseSeconds(arena)));
}

TEST_F(ServeBatcherTest, SingleOversizeRequestTimesOutAtClose)
{
    // A request whose solo service time already exceeds its SLO window
    // can never be served; the batcher must close immediately (its
    // latest safe close time is in the past) and time it out rather
    // than burn accelerator time.
    ServeBatcher batcher(spec(), model_);
    RequestArena arena;
    const double service = model_.seconds(128, 1);
    const RequestId id = admitted(arena, 126, 0.5 * service);
    batcher.enqueue(arena, id);
    EXPECT_LE(batcher.nextCloseSeconds(arena), 0.0);
    ClosedBatch batch;
    ASSERT_TRUE(batcher.close(arena, 0.0, batch));
    EXPECT_TRUE(batch.members.empty());
    ASSERT_EQ(batch.expired.size(), 1u);
    EXPECT_EQ(batch.expired[0], id);
    EXPECT_EQ(arena[id].state, RequestState::TimedOut);
    EXPECT_DOUBLE_EQ(batch.serviceSeconds, 0.0);
    EXPECT_EQ(batcher.queued(), 0u);
}

TEST_F(ServeBatcherTest, DeadlineExpiredInsideFormedBatch)
{
    // Both requests fit the bucket; the batch becomes full and closes,
    // but by then one member's deadline is no longer reachable with the
    // formed batch's service time. It must be dropped pre-dispatch and
    // the batch re-costed for the survivors.
    ServeBatcher batcher(spec(2), model_);
    RequestArena arena;
    const double pair_service = model_.seconds(128, 2);
    const RequestId healthy = admitted(arena, 126, 100.0);
    const RequestId doomed =
        admitted(arena, 126, 0.9 * pair_service);
    batcher.enqueue(arena, healthy);
    batcher.enqueue(arena, doomed);
    ClosedBatch batch;
    ASSERT_TRUE(batcher.close(arena, 0.0, batch)); // full bucket
    ASSERT_EQ(batch.members.size(), 1u);
    EXPECT_EQ(batch.members[0], healthy);
    ASSERT_EQ(batch.expired.size(), 1u);
    EXPECT_EQ(batch.expired[0], doomed);
    EXPECT_EQ(arena[doomed].state, RequestState::TimedOut);
    EXPECT_EQ(arena[healthy].state, RequestState::Batched);
    // Survivor batch re-costed at its real size.
    EXPECT_DOUBLE_EQ(batch.serviceSeconds, model_.seconds(128, 1));
}

TEST_F(ServeBatcherTest, RetryAfterShedInteraction)
{
    // Overload shedding and a retry landing in the same bucket: the
    // shed victim is the oldest request, the retried request (already
    // on attempt 2) joins the queue like any other admission, and the
    // next close serves what is left — nothing references the shed
    // request again.
    ServeBatcher batcher(spec(2), model_);
    RequestArena arena;
    const RequestId oldest = admitted(arena, 126, 100.0);
    const RequestId younger = admitted(arena, 126, 100.0);
    batcher.enqueue(arena, oldest);
    batcher.enqueue(arena, younger);

    const std::int32_t victim = batcher.shedVictim(arena);
    ASSERT_EQ(victim, static_cast<std::int32_t>(oldest));
    batcher.remove(arena, oldest);
    transition(arena[oldest], RequestState::Shed, 1.0);
    EXPECT_EQ(batcher.queued(), 1u);

    // A retried request re-enters admission and lands in the bucket.
    Request retried;
    retried.id = static_cast<RequestId>(arena.size());
    retried.residues = 126;
    retried.deadlineSeconds = 100.0;
    transition(retried, RequestState::Admitted, 1.0);
    transition(retried, RequestState::Batched, 1.0);
    transition(retried, RequestState::Running, 1.0);
    transition(retried, RequestState::Retried, 1.5);
    transition(retried, RequestState::Queued, 2.0);
    transition(retried, RequestState::Admitted, 2.0);
    arena.push_back(retried);
    batcher.enqueue(arena, retried.id);

    ClosedBatch batch;
    ASSERT_TRUE(batcher.close(arena, 2.0, batch)); // full again
    ASSERT_EQ(batch.members.size(), 2u);
    EXPECT_EQ(batch.members[0], younger);
    EXPECT_EQ(batch.members[1], retried.id);
    EXPECT_TRUE(batch.expired.empty());
    EXPECT_EQ(arena[retried.id].attempts, 1u);
    EXPECT_EQ(arena[oldest].state, RequestState::Shed);
}

TEST_F(ServeBatcherTest, FullBucketBeatsUrgentBucket)
{
    ServeBatcher batcher(spec(2), model_);
    RequestArena arena;
    // Bucket 256 is urgent (tight deadline) but bucket 128 is full.
    const RequestId tight = admitted(arena, 200, model_.seconds(256, 1));
    const RequestId a = admitted(arena, 126, 100.0);
    const RequestId b = admitted(arena, 126, 100.0);
    batcher.enqueue(arena, tight);
    batcher.enqueue(arena, a);
    batcher.enqueue(arena, b);
    ClosedBatch batch;
    ASSERT_TRUE(batcher.close(arena, 0.0, batch));
    EXPECT_EQ(batch.paddedLength, 128u);
    ASSERT_EQ(batch.members.size(), 2u);
    EXPECT_EQ(batcher.queued(), 1u);
}

TEST_F(ServeBatcherTest, OverloadHalvesEffectiveMaxBatch)
{
    ServeBatcherSpec s = spec(4);
    s.overloadDepth = 2;
    ServeBatcher batcher(s, model_);
    RequestArena arena;
    for (int i = 0; i < 3; ++i)
        batcher.enqueue(arena, admitted(arena, 126, 100.0));
    EXPECT_EQ(batcher.effectiveMaxBatch(), 2u); // 3 queued > depth 2
    ClosedBatch batch;
    ASSERT_TRUE(batcher.close(arena, 0.0, batch));
    EXPECT_EQ(batch.members.size(), 2u); // degraded batch bound
    EXPECT_EQ(batcher.effectiveMaxBatch(), 4u); // back under the mark
}

TEST_F(ServeBatcherTest, HigherPriorityJoinsBatchFirst)
{
    ServeBatcher batcher(spec(1), model_);
    RequestArena arena;
    const RequestId bulk = admitted(arena, 126, 100.0, 0);
    const RequestId urgent = admitted(arena, 126, 100.0, 3);
    batcher.enqueue(arena, bulk);
    batcher.enqueue(arena, urgent);
    ClosedBatch batch;
    ASSERT_TRUE(batcher.close(arena, 0.0, batch));
    ASSERT_EQ(batch.members.size(), 1u);
    EXPECT_EQ(batch.members[0], urgent);
}

TEST_F(ServeBatcherTest, NextCloseTracksOldestDeadline)
{
    ServeBatcher batcher(spec(8), model_);
    RequestArena arena;
    const RequestId id = admitted(arena, 126, 1.0);
    batcher.enqueue(arena, id);
    const double expected = 1.0 - model_.seconds(128, 1);
    EXPECT_DOUBLE_EQ(batcher.nextCloseSeconds(arena), expected);
}

TEST_F(ServeBatcherTest, ServiceModelMemoizes)
{
    const double first = model_.seconds(128, 2);
    const std::size_t cached = model_.cachedShapes();
    EXPECT_DOUBLE_EQ(model_.seconds(128, 2), first);
    EXPECT_EQ(model_.cachedShapes(), cached);
    EXPECT_GT(model_.capacityPerSecond(128, 2, 4), 0.0);
}

TEST_F(ServeBatcherTest, DeathOnBadSpecOrState)
{
    ServeBatcherSpec empty;
    empty.buckets.clear();
    EXPECT_EXIT(empty.validate(), testing::ExitedWithCode(1),
                "no length buckets");
    ServeBatcherSpec unsorted;
    unsorted.buckets = { 128, 128 };
    EXPECT_EXIT(unsorted.validate(), testing::ExitedWithCode(1),
                "strictly increasing");
    ServeBatcherSpec zero;
    zero.maxBatch = 0;
    EXPECT_EXIT(zero.validate(), testing::ExitedWithCode(1),
                "zero max batch");

    ServeBatcher batcher(spec(), model_);
    RequestArena arena(1);
    arena[0].residues = 126; // still QUEUED
    EXPECT_DEATH(batcher.enqueue(arena, 0),
                 "batcher enqueue of a QUEUED request");
}

} // namespace
} // namespace prose
