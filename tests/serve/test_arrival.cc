/** @file Tests for arrival generation and the hardened trace loader. */

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "serve/arrival.hh"

namespace prose {
namespace {

ArrivalSpec
poisson(std::uint64_t count = 2000, double rate = 1000.0)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Poisson;
    spec.seed = 42;
    spec.ratePerSecond = rate;
    spec.count = count;
    return spec;
}

TEST(Arrivals, PoissonStreamShape)
{
    const auto requests = generateArrivals(poisson(), 0.05);
    ASSERT_EQ(requests.size(), 2000u);
    double prev = -1.0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(requests[i].id, i);
        EXPECT_GT(requests[i].arrivalSeconds, prev);
        EXPECT_EQ(requests[i].state, RequestState::Queued);
        EXPECT_DOUBLE_EQ(requests[i].deadlineSeconds,
                         requests[i].arrivalSeconds + 0.05);
        prev = requests[i].arrivalSeconds;
    }
    // 2000 arrivals at 1000/s should take about 2 seconds.
    EXPECT_NEAR(requests.back().arrivalSeconds, 2.0, 0.4);
}

TEST(Arrivals, SameSeedIsBitIdentical)
{
    const auto a = generateArrivals(poisson(), 0.05);
    const auto b = generateArrivals(poisson(), 0.05);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
        EXPECT_EQ(a[i].residues, b[i].residues);
    }
    ArrivalSpec other = poisson();
    other.seed = 43;
    const auto c = generateArrivals(other, 0.05);
    EXPECT_NE(a[10].arrivalSeconds, c[10].arrivalSeconds);
}

TEST(Arrivals, LengthsStayInBounds)
{
    ArrivalSpec spec = poisson(500);
    spec.minResidues = 60;
    spec.maxResidues = 300;
    bool saw_spread = false;
    const auto requests = generateArrivals(spec, 0.05);
    for (const Request &request : requests) {
        EXPECT_GE(request.residues, 60u);
        EXPECT_LE(request.residues, 300u);
        if (request.residues != requests.front().residues)
            saw_spread = true;
    }
    EXPECT_TRUE(saw_spread);
}

TEST(Arrivals, BurstyKeepsLongRunMeanRate)
{
    ArrivalSpec spec = poisson(20000);
    spec.kind = ArrivalKind::Bursty;
    const auto requests = generateArrivals(spec, 0.05);
    const double span = requests.back().arrivalSeconds;
    const double mean_rate = static_cast<double>(requests.size()) / span;
    // The burst multiplier reshapes the process but the thinning
    // normalization keeps the long-run mean at ratePerSecond.
    EXPECT_NEAR(mean_rate, 1000.0, 60.0);
}

TEST(Arrivals, DiurnalModulatesDensity)
{
    ArrivalSpec spec = poisson(20000);
    spec.kind = ArrivalKind::Diurnal;
    spec.diurnalPeriodSeconds = 10.0;
    spec.diurnalAmplitude = 0.8;
    const auto requests = generateArrivals(spec, 0.05);
    // First half-period (rising sine) must be denser than the second.
    std::uint64_t first = 0, second = 0;
    for (const Request &request : requests) {
        const double phase = std::fmod(request.arrivalSeconds, 10.0);
        (phase < 5.0 ? first : second) += 1;
    }
    EXPECT_GT(static_cast<double>(first),
              1.5 * static_cast<double>(second));
}

TEST(Arrivals, TraceKindHonorsRecords)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Trace;
    spec.trace = {
        TraceArrival{ 0.0, 100, 0, 0.0 },
        TraceArrival{ 0.5, 200, 2, 0.25 },
    };
    const auto requests = generateArrivals(spec, 0.05);
    ASSERT_EQ(requests.size(), 2u);
    EXPECT_DOUBLE_EQ(requests[0].deadlineSeconds, 0.05);
    EXPECT_EQ(requests[1].priority, 2u);
    EXPECT_DOUBLE_EQ(requests[1].deadlineSeconds, 0.75);
}

TEST(ArrivalsDeathTest, SpecValidation)
{
    ArrivalSpec negative = poisson();
    negative.ratePerSecond = -5.0;
    EXPECT_EXIT(negative.validate(), testing::ExitedWithCode(1),
                "rate must be a positive");
    ArrivalSpec nan_rate = poisson();
    nan_rate.ratePerSecond = std::nan("");
    EXPECT_EXIT(nan_rate.validate(), testing::ExitedWithCode(1),
                "rate must be a positive");
    ArrivalSpec none = poisson(0);
    EXPECT_EXIT(none.validate(), testing::ExitedWithCode(1),
                "zero requests");
    ArrivalSpec zero_len = poisson();
    zero_len.minResidues = 0;
    EXPECT_EXIT(zero_len.validate(), testing::ExitedWithCode(1),
                "zero-length");
    ArrivalSpec inverted = poisson();
    inverted.minResidues = 100;
    inverted.maxResidues = 50;
    EXPECT_EXIT(inverted.validate(), testing::ExitedWithCode(1),
                "bounds inverted");
    ArrivalSpec burst = poisson();
    burst.kind = ArrivalKind::Bursty;
    burst.burstFraction = 1.5;
    EXPECT_EXIT(burst.validate(), testing::ExitedWithCode(1),
                "burst fraction");
    ArrivalSpec empty_trace;
    empty_trace.kind = ArrivalKind::Trace;
    EXPECT_EXIT(empty_trace.validate(), testing::ExitedWithCode(1),
                "empty trace");
    ArrivalSpec dead_burst = poisson();
    dead_burst.kind = ArrivalKind::Bursty;
    dead_burst.burstPeriodSeconds = 0.0;
    EXPECT_EXIT(dead_burst.validate(), testing::ExitedWithCode(1),
                "burst period must be positive");
    ArrivalSpec weak_burst = poisson();
    weak_burst.kind = ArrivalKind::Bursty;
    weak_burst.burstMultiplier = 0.5;
    EXPECT_EXIT(weak_burst.validate(), testing::ExitedWithCode(1),
                "burst multiplier must be >= 1");
    ArrivalSpec dead_diurnal = poisson();
    dead_diurnal.kind = ArrivalKind::Diurnal;
    dead_diurnal.diurnalPeriodSeconds = -1.0;
    EXPECT_EXIT(dead_diurnal.validate(), testing::ExitedWithCode(1),
                "diurnal period must be positive");
    ArrivalSpec wild_diurnal = poisson();
    wild_diurnal.kind = ArrivalKind::Diurnal;
    wild_diurnal.diurnalAmplitude = 1.0;
    EXPECT_EXIT(wild_diurnal.validate(), testing::ExitedWithCode(1),
                "diurnal amplitude");
}

TEST(ArrivalsDeathTest, DefaultSloMustBePositive)
{
    EXPECT_EXIT(generateArrivals(poisson(), 0.0),
                testing::ExitedWithCode(1),
                "default SLO must be positive");
    EXPECT_EXIT(generateArrivals(poisson(),
                                 std::numeric_limits<double>::infinity()),
                testing::ExitedWithCode(1),
                "default SLO must be positive");
}

TEST(Arrivals, KindNamesAreStable)
{
    EXPECT_STREQ(toString(ArrivalKind::Poisson), "poisson");
    EXPECT_STREQ(toString(ArrivalKind::Bursty), "bursty");
    EXPECT_STREQ(toString(ArrivalKind::Diurnal), "diurnal");
    EXPECT_STREQ(toString(ArrivalKind::Trace), "trace");
}

std::vector<TraceArrival>
parseText(const std::string &text)
{
    std::istringstream in(text);
    return parseArrivalTrace(in, "<test>");
}

TEST(ArrivalTrace, ParsesRecordsAndComments)
{
    const auto trace = parseText("# replayed drill\n"
                                 "at=0.0 len=126\n"
                                 "\n"
                                 "at=0.25 len=300 prio=2 slo=0.1\n");
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_DOUBLE_EQ(trace[0].atSeconds, 0.0);
    EXPECT_EQ(trace[0].residues, 126u);
    EXPECT_EQ(trace[1].priority, 2u);
    EXPECT_DOUBLE_EQ(trace[1].sloSeconds, 0.1);
}

TEST(ArrivalTraceDeathTest, MalformedInputIsLineNumbered)
{
    EXPECT_EXIT(parseText("at=0 len=126\nat=-1 len=5\n"),
                testing::ExitedWithCode(1),
                "<test>:2: negative arrival time");
    EXPECT_EXIT(parseText("at=0 len=0\n"), testing::ExitedWithCode(1),
                "<test>:1: zero-length request");
    EXPECT_EXIT(parseText("at=0 len=126\nat=0 len=126\n"),
                testing::ExitedWithCode(1),
                "duplicate arrival timestamp");
    EXPECT_EXIT(parseText("at=1 len=126\nat=0.5 len=126\n"),
                testing::ExitedWithCode(1), "non-decreasing");
    EXPECT_EXIT(parseText("at=0 len=126 color=red\n"),
                testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(parseText("at=0\n"), testing::ExitedWithCode(1),
                "both at= and len=");
    EXPECT_EXIT(parseText("at=zero len=126\n"),
                testing::ExitedWithCode(1), "bad number");
    EXPECT_EXIT(parseText("at=0 len=-4\n"), testing::ExitedWithCode(1),
                "bad non-negative integer");
    EXPECT_EXIT(parseText("at=0 len=99999999999999999999999\n"),
                testing::ExitedWithCode(1),
                "bad non-negative integer for len");
    EXPECT_EXIT(parseText("at=0 len=126 slo=0\n"),
                testing::ExitedWithCode(1), "slo must be positive");
    EXPECT_EXIT(parseText("garbage\n"), testing::ExitedWithCode(1),
                "token without '='");
    EXPECT_EXIT(parseText("# only a comment\n"),
                testing::ExitedWithCode(1), "empty arrival trace");
}

// Fuzzing regressions (see tests/fuzz/corpus/arrival): priorities are
// uint32_t, and the old code parsed 64 bits then truncated, so
// prio=4294967297 silently became priority 1.
TEST(ArrivalTraceDeathTest, PriorityPast32BitsIsRejectedNotTruncated)
{
    EXPECT_EXIT(parseText("at=0 len=126 prio=4294967297\n"),
                testing::ExitedWithCode(1), "does not fit 32 bits");
    EXPECT_EXIT(parseText("at=0 len=126 prio=-1\n"),
                testing::ExitedWithCode(1), "bad non-negative integer");
}

TEST(ArrivalTrace, PriorityAtUint32MaxStillParses)
{
    const auto trace = parseText("at=0 len=126 prio=4294967295\n");
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0].priority, 4294967295u);
}

TEST(ArrivalTraceDeathTest, NanTimestampsAreRejected)
{
    EXPECT_EXIT(parseText("at=nan len=126\n"),
                testing::ExitedWithCode(1), "bad number");
    EXPECT_EXIT(parseText("at=0 len=126 slo=inf\n"),
                testing::ExitedWithCode(1), "bad number");
}

TEST(ArrivalTraceDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(loadArrivalTrace("/nonexistent/trace.txt"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(ArrivalTrace, LoadsFromFile)
{
    const std::string path =
        testing::TempDir() + "/prose_arrival_test.txt";
    {
        std::ofstream out(path);
        out << "# two-record trace\n"
               "at=0.0 len=126\n"
               "at=0.5 len=251 prio=2 slo=0.2\n";
    }
    const auto trace = loadArrivalTrace(path);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[1].residues, 251u);
    EXPECT_EQ(trace[1].priority, 2u);
}

} // namespace
} // namespace prose
