/** @file The chaos drill acceptance tests: instance kills mid-stream at
 *  70% utilization must keep SLO retention >= 0.9 with zero lost
 *  requests, deterministically. */

#include <gtest/gtest.h>

#include "serve/serve_sim.hh"

namespace prose {
namespace {

/** The drill workload: 4 instances at 70% of full-batch capacity. */
ServeSpec
drillSpec(std::uint64_t count = 1000)
{
    ServeSpec spec;
    spec.model = BertShape{ 1, 256, 4, 1024, 1, 64 };
    spec.batcher.buckets = { 128, 256 };
    spec.batcher.maxBatch = 4;
    spec.batcher.overloadDepth = 64;
    spec.admission.maxQueueDepth = 256;
    spec.instanceCount = 4;
    spec.arrivals.seed = 11;
    spec.arrivals.count = count;
    spec.arrivals.minResidues = 126;
    spec.arrivals.maxResidues = 126;
    const ServiceModel model(spec.instance, spec.model,
                             spec.dispatchOverheadSeconds);
    spec.arrivals.ratePerSecond =
        0.7 * model.capacityPerSecond(128, spec.batcher.maxBatch,
                                      spec.instanceCount);
    spec.sloSeconds = 8.0 * model.seconds(128, spec.batcher.maxBatch);
    return spec;
}

TEST(ServeChaos, ArrivalIndexedKillKeepsSloRetention)
{
    // The acceptance drill: one of four instances dies when request
    // #500 of 1000 arrives. The fleet sheds/retries around the death
    // and must keep at least 90% of healthy goodput, with every request
    // accounted for.
    const ServeSim sim(drillSpec());
    const ServeReport healthy = sim.run();
    ASSERT_EQ(healthy.lost(), 0u);
    ASSERT_EQ(healthy.done, healthy.offered);

    FaultInjector injector(
        CampaignSpec::parse("kill_instance=1@#500"));
    const ServeReport chaos = sim.run(&injector);

    EXPECT_EQ(chaos.instancesKilled, 1u);
    EXPECT_EQ(chaos.lost(), 0u);
    EXPECT_EQ(chaos.offered,
              chaos.done + chaos.timedOut + chaos.shed);
    EXPECT_GE(sloRetention(healthy, chaos), 0.9);
    // The death is visible in the accounting, not hidden.
    EXPECT_LT(chaos.done, healthy.done + 1);
    EXPECT_GT(chaos.p99Seconds, 0.0);
}

TEST(ServeChaos, ChaosReplayIsBitIdentical)
{
    const ServeSim sim(drillSpec(600));
    FaultInjector first(CampaignSpec::parse("kill_instance=1@#300"));
    FaultInjector second(CampaignSpec::parse("kill_instance=1@#300"));
    const ServeReport a = sim.run(&first);
    const ServeReport b = sim.run(&second);
    EXPECT_EQ(a.describe(), b.describe());
    ASSERT_EQ(a.latencies.size(), b.latencies.size());
    for (std::size_t i = 0; i < a.latencies.size(); ++i)
        EXPECT_EQ(a.latencies[i], b.latencies[i]);
}

TEST(ServeChaos, MidBatchKillRetriesInFlightWork)
{
    // A timed kill placed inside the busy window forces in-flight
    // members of the dead instance through the RETRIED path.
    ServeSpec spec = drillSpec(600);
    const ServeSim sim(spec);
    const ServeReport healthy = sim.run();
    CampaignSpec campaign;
    campaign.instanceKills = {
        InstanceKill{ 0, healthy.horizonSeconds * 0.4 }
    };
    FaultInjector injector(campaign);
    const ServeReport chaos = sim.run(&injector);
    EXPECT_EQ(chaos.instancesKilled, 1u);
    EXPECT_GT(chaos.retries, 0u);
    EXPECT_EQ(chaos.lost(), 0u);
    EXPECT_GE(sloRetention(healthy, chaos), 0.9);
}

TEST(ServeChaos, KillingEveryInstanceStillConserves)
{
    // Unlike the closed-loop system model (which fatals when nothing is
    // left to re-shard onto), the serving layer must account a total
    // outage honestly: every request terminal, none lost.
    ServeSpec spec = drillSpec(200);
    spec.instanceCount = 2;
    CampaignSpec campaign;
    campaign.instanceKills = { InstanceKill{ 0, 0.0 },
                               InstanceKill{ 1, 0.0 } };
    FaultInjector injector(campaign);
    const ServeReport report = ServeSim(spec).run(&injector);
    EXPECT_EQ(report.instancesKilled, 2u);
    EXPECT_EQ(report.done, 0u);
    EXPECT_EQ(report.lost(), 0u);
    EXPECT_EQ(report.offered, report.timedOut + report.shed);
}

TEST(ServeChaos, RetryBudgetExhaustionSheds)
{
    // Kill instances in a cascade so retried work keeps landing on a
    // doomed fleet member; with one attempt allowed, the first death
    // spends the budget and the request is shed, not retried forever.
    ServeSpec spec = drillSpec(400);
    spec.retry.maxAttempts = 1;
    const ServeSim sim(spec);
    const ServeReport healthy = sim.run();
    CampaignSpec campaign;
    campaign.instanceKills = {
        InstanceKill{ 0, healthy.horizonSeconds * 0.3 }
    };
    FaultInjector injector(campaign);
    const ServeReport chaos = sim.run(&injector);
    EXPECT_EQ(chaos.retries, 0u);
    EXPECT_GT(chaos.shedRetryBudget, 0u);
    EXPECT_EQ(chaos.lost(), 0u);
}

TEST(ServeChaos, ArrivalIndexPastStreamNeverFires)
{
    ServeSpec spec = drillSpec(100);
    FaultInjector injector(
        CampaignSpec::parse("kill_instance=2@#100000"));
    const ServeReport report = ServeSim(spec).run(&injector);
    EXPECT_EQ(report.instancesKilled, 0u);
    EXPECT_EQ(report.done, report.offered);
}

} // namespace
} // namespace prose
