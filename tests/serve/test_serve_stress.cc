/** @file Serving-layer stress: a long bursty stream with overload and
 *  chaos, run under the sanitizer presets via the regular suite. The
 *  assertions are the conservation law and replay determinism — the
 *  properties that must survive any scheduling pressure. */

#include <gtest/gtest.h>

#include "serve/serve_sim.hh"

namespace prose {
namespace {

TEST(ServeStress, BurstyOverloadedChaoticStreamConserves)
{
    ServeSpec spec;
    spec.model = BertShape{ 1, 256, 4, 1024, 1, 64 };
    spec.batcher.buckets = { 128, 256, 512 };
    spec.batcher.maxBatch = 4;
    spec.batcher.overloadDepth = 24;
    spec.admission.maxQueueDepth = 48;
    spec.instanceCount = 3;
    spec.arrivals.kind = ArrivalKind::Bursty;
    spec.arrivals.seed = 1234;
    spec.arrivals.count = 4000;
    spec.arrivals.minResidues = 60;
    spec.arrivals.maxResidues = 420;
    spec.arrivals.burstMultiplier = 6.0;
    const ServiceModel model(spec.instance, spec.model,
                             spec.dispatchOverheadSeconds);
    // Mean load just under capacity; bursts push far beyond it.
    spec.arrivals.ratePerSecond =
        0.9 * model.capacityPerSecond(512, spec.batcher.maxBatch,
                                      spec.instanceCount);
    spec.arrivals.burstPeriodSeconds =
        200.0 / spec.arrivals.ratePerSecond;
    spec.sloSeconds = 10.0 * model.seconds(512, spec.batcher.maxBatch);

    const ServeSim sim(spec);
    FaultInjector first(CampaignSpec::parse(
        "kill_instance=2@#1500"));
    const ServeReport a = sim.run(&first);
    EXPECT_EQ(a.offered, 4000u);
    EXPECT_EQ(a.lost(), 0u);
    EXPECT_EQ(a.offered, a.done + a.timedOut + a.shed);
    EXPECT_GT(a.done, 0u);
    EXPECT_EQ(a.instancesKilled, 1u);

    FaultInjector second(CampaignSpec::parse(
        "kill_instance=2@#1500"));
    const ServeReport b = sim.run(&second);
    EXPECT_EQ(a.describe(), b.describe());
}

} // namespace
} // namespace prose
