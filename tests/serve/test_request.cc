/** @file Tests for the per-request lifecycle state machine. */

#include <gtest/gtest.h>

#include "serve/request.hh"

namespace prose {
namespace {

TEST(RequestLifecycle, HappyPathTimestamps)
{
    Request request;
    request.id = 7;
    request.arrivalSeconds = 1.0;
    transition(request, RequestState::Admitted, 1.5);
    transition(request, RequestState::Batched, 2.0);
    transition(request, RequestState::Running, 2.5);
    transition(request, RequestState::Done, 3.25);
    EXPECT_EQ(request.state, RequestState::Done);
    EXPECT_DOUBLE_EQ(request.admittedSeconds, 1.5);
    EXPECT_DOUBLE_EQ(request.batchedSeconds, 2.0);
    EXPECT_DOUBLE_EQ(request.startedSeconds, 2.5);
    EXPECT_DOUBLE_EQ(request.finishedSeconds, 3.25);
    EXPECT_EQ(request.attempts, 1u);
    EXPECT_DOUBLE_EQ(request.latencySeconds(), 2.25);
}

TEST(RequestLifecycle, RetryLoopCountsAttempts)
{
    Request request;
    transition(request, RequestState::Admitted, 0.0);
    transition(request, RequestState::Batched, 0.0);
    transition(request, RequestState::Running, 0.0);
    transition(request, RequestState::Retried, 1.0);
    transition(request, RequestState::Queued, 2.0);
    transition(request, RequestState::Admitted, 2.0);
    transition(request, RequestState::Batched, 2.5);
    transition(request, RequestState::Running, 2.5);
    transition(request, RequestState::Done, 3.0);
    EXPECT_EQ(request.attempts, 2u);
}

TEST(RequestLifecycle, LegalityTable)
{
    // The full edge set of the lifecycle diagram.
    const auto ok = [](RequestState a, RequestState b) {
        return transitionAllowed(a, b);
    };
    EXPECT_TRUE(ok(RequestState::Queued, RequestState::Admitted));
    EXPECT_TRUE(ok(RequestState::Queued, RequestState::Shed));
    EXPECT_TRUE(ok(RequestState::Queued, RequestState::TimedOut));
    EXPECT_TRUE(ok(RequestState::Admitted, RequestState::Batched));
    EXPECT_TRUE(ok(RequestState::Admitted, RequestState::Shed));
    EXPECT_TRUE(ok(RequestState::Admitted, RequestState::TimedOut));
    EXPECT_TRUE(ok(RequestState::Batched, RequestState::Running));
    EXPECT_TRUE(ok(RequestState::Batched, RequestState::TimedOut));
    EXPECT_TRUE(ok(RequestState::Running, RequestState::Done));
    EXPECT_TRUE(ok(RequestState::Running, RequestState::TimedOut));
    EXPECT_TRUE(ok(RequestState::Running, RequestState::Retried));
    EXPECT_TRUE(ok(RequestState::Retried, RequestState::Queued));
    EXPECT_TRUE(ok(RequestState::Retried, RequestState::Shed));
    EXPECT_TRUE(ok(RequestState::Retried, RequestState::TimedOut));

    // A few of the edges that must NOT exist.
    EXPECT_FALSE(ok(RequestState::Queued, RequestState::Running));
    EXPECT_FALSE(ok(RequestState::Queued, RequestState::Batched));
    EXPECT_FALSE(ok(RequestState::Admitted, RequestState::Running));
    EXPECT_FALSE(ok(RequestState::Batched, RequestState::Shed));
    EXPECT_FALSE(ok(RequestState::Running, RequestState::Shed));
    EXPECT_FALSE(ok(RequestState::Retried, RequestState::Running));
}

TEST(RequestLifecycle, TerminalStatesHaveNoExits)
{
    const RequestState terminals[] = { RequestState::Done,
                                       RequestState::TimedOut,
                                       RequestState::Shed };
    const RequestState all[] = {
        RequestState::Queued,   RequestState::Admitted,
        RequestState::Batched,  RequestState::Running,
        RequestState::Done,     RequestState::TimedOut,
        RequestState::Shed,     RequestState::Retried,
    };
    for (const RequestState from : terminals) {
        EXPECT_TRUE(isTerminal(from));
        for (const RequestState to : all)
            EXPECT_FALSE(transitionAllowed(from, to));
    }
    EXPECT_FALSE(isTerminal(RequestState::Queued));
    EXPECT_FALSE(isTerminal(RequestState::Running));
    EXPECT_FALSE(isTerminal(RequestState::Retried));
}

TEST(RequestLifecycle, StateNames)
{
    EXPECT_STREQ(toString(RequestState::Queued), "QUEUED");
    EXPECT_STREQ(toString(RequestState::TimedOut), "TIMED_OUT");
    EXPECT_STREQ(toString(RequestState::Retried), "RETRIED");
}

TEST(RequestLifecycleDeathTest, IllegalEdgePanics)
{
    Request request;
    EXPECT_DEATH(transition(request, RequestState::Running, 0.0),
                 "illegal request lifecycle edge");
    Request done;
    transition(done, RequestState::Shed, 0.0);
    EXPECT_DEATH(transition(done, RequestState::Admitted, 1.0),
                 "illegal request lifecycle edge");
}

} // namespace
} // namespace prose
