/** @file Tests for admission control, the retry policy, and the
 *  open-loop serving simulator under healthy (chaos-free) load. */

#include <gtest/gtest.h>

#include "serve/serve_sim.hh"

namespace prose {
namespace {

/** Small model + modest stream so the suite stays fast. */
ServeSpec
smallSpec(std::uint64_t count = 400)
{
    ServeSpec spec;
    spec.model = BertShape{ 1, 256, 4, 1024, 1, 64 };
    spec.batcher.buckets = { 128, 256 };
    spec.batcher.maxBatch = 4;
    spec.arrivals.seed = 7;
    spec.arrivals.count = count;
    spec.arrivals.minResidues = 126;
    spec.arrivals.maxResidues = 126;

    // Derive load and SLO from the modeled service time so the test
    // does not bake in platform-specific latency constants.
    const ServiceModel model(spec.instance, spec.model,
                             spec.dispatchOverheadSeconds);
    spec.arrivals.ratePerSecond =
        0.5 * model.capacityPerSecond(128, spec.batcher.maxBatch,
                                      spec.instanceCount);
    spec.sloSeconds = 6.0 * model.seconds(128, spec.batcher.maxBatch);
    return spec;
}

TEST(Admission, DecisionTable)
{
    AdmissionSpec spec;
    spec.maxQueueDepth = 4;
    Request request;
    request.deadlineSeconds = 1.0;
    // Reachable deadline, room in the queue.
    EXPECT_EQ(admit(spec, request, 0.0, 2, 0.5),
              AdmissionDecision::Admit);
    // Hopeless deadline: even a solo dispatch lands late.
    EXPECT_EQ(admit(spec, request, 0.8, 2, 0.5),
              AdmissionDecision::ShedSelf);
    // Full queue: evict the oldest instead of the newcomer.
    EXPECT_EQ(admit(spec, request, 0.0, 4, 0.5),
              AdmissionDecision::ShedOldest);
    // Unbounded queue never sheds for depth.
    spec.maxQueueDepth = 0;
    EXPECT_EQ(admit(spec, request, 0.0, 50000, 0.5),
              AdmissionDecision::Admit);
    // Deadline awareness can be disabled.
    spec.deadlineAware = false;
    EXPECT_EQ(admit(spec, request, 0.8, 2, 0.5),
              AdmissionDecision::Admit);
    EXPECT_STREQ(toString(AdmissionDecision::ShedOldest), "shed-oldest");
}

TEST(ServeRetrySpec, BackoffGrowsAndJitterIsDeterministic)
{
    ServeRetrySpec retry;
    retry.backoffSeconds = 1e-4;
    retry.backoffFactor = 2.0;
    retry.jitterFraction = 0.5;
    const double first = retry.delayFor(0, 42, 7);
    const double second = retry.delayFor(1, 42, 7);
    EXPECT_GE(first, 1e-4);
    EXPECT_LE(first, 1.5e-4);
    EXPECT_GT(second, first); // exponential growth dominates jitter
    // Same (seed, id, retry) -> same jitter; different id -> different.
    EXPECT_DOUBLE_EQ(retry.delayFor(0, 42, 7), first);
    EXPECT_NE(retry.delayFor(0, 42, 8), first);
    retry.jitterFraction = 0.0;
    EXPECT_DOUBLE_EQ(retry.delayFor(2, 42, 7), 4e-4);
}

TEST(ServeRetrySpecDeathTest, Validation)
{
    ServeRetrySpec zero;
    zero.maxAttempts = 0;
    EXPECT_EXIT(zero.validate(), testing::ExitedWithCode(1),
                "max_attempts");
    ServeRetrySpec shrink;
    shrink.backoffFactor = 0.5;
    EXPECT_EXIT(shrink.validate(), testing::ExitedWithCode(1),
                "backoff factor");
    ServeRetrySpec jitter;
    jitter.jitterFraction = 2.0;
    EXPECT_EXIT(jitter.validate(), testing::ExitedWithCode(1),
                "jitter");
}

TEST(ServeSpecDeathTest, Validation)
{
    ServeSpec slo = smallSpec();
    slo.sloSeconds = 0.0;
    EXPECT_EXIT(ServeSim{ slo }, testing::ExitedWithCode(1),
                "SLO must be");
    ServeSpec none = smallSpec();
    none.instanceCount = 0;
    EXPECT_EXIT(ServeSim{ none }, testing::ExitedWithCode(1),
                "zero instances");
}

TEST(ServeSim, HealthyRunServesEverythingInSlo)
{
    const ServeSim sim(smallSpec());
    const ServeReport report = sim.run();
    EXPECT_EQ(report.offered, 400u);
    EXPECT_EQ(report.done, 400u);
    EXPECT_EQ(report.timedOut, 0u);
    EXPECT_EQ(report.shed, 0u);
    EXPECT_EQ(report.lost(), 0u);
    EXPECT_EQ(report.retries, 0u);
    EXPECT_EQ(report.instancesKilled, 0u);
    EXPECT_DOUBLE_EQ(report.sloAttainment, 1.0);
    EXPECT_GT(report.batches, 0u);
    EXPECT_GT(report.goodputPerSecond, 0.0);
    EXPECT_EQ(report.latencies.size(), 400u);
    EXPECT_GT(report.p50Seconds, 0.0);
    EXPECT_LE(report.p50Seconds, report.p99Seconds);
    EXPECT_LE(report.p99Seconds, report.p999Seconds);
    EXPECT_GT(report.meanBatchFill, 0.0);
    EXPECT_LE(report.meanBatchFill, 1.0);
}

TEST(ServeSim, ReplayIsBitIdentical)
{
    const ServeSim sim(smallSpec());
    const ServeReport a = sim.run();
    const ServeReport b = sim.run();
    EXPECT_EQ(a.describe(), b.describe());
    ASSERT_EQ(a.latencies.size(), b.latencies.size());
    for (std::size_t i = 0; i < a.latencies.size(); ++i)
        EXPECT_EQ(a.latencies[i], b.latencies[i]);
    // A null injector reproduces the chaos-free run exactly.
    const ServeReport c = sim.run(nullptr);
    EXPECT_EQ(a.describe(), c.describe());
}

TEST(ServeSim, SharedLinkTenancySlowsServiceNotThroughputAccounting)
{
    // Two tenants per host: each dispatch is served at the contended
    // rate from PerfSim::runShared, so latency can only move up, the
    // request accounting must still conserve, and the whole thing
    // stays deterministic (the service model memoizes shared points
    // like solo ones).
    ServeSpec solo = smallSpec();
    ServeSpec shared = smallSpec();
    shared.linkTenantsPerHost = 2;
    const ServeReport solo_report = ServeSim(solo).run();
    const ServeSim shared_sim(shared);
    const ServeReport a = shared_sim.run();
    EXPECT_EQ(a.offered, solo_report.offered);
    EXPECT_EQ(a.lost(), 0u);
    EXPECT_GE(a.p50Seconds, solo_report.p50Seconds);
    EXPECT_GE(a.linkWaitSeconds, 0.0);
    EXPECT_EQ(solo_report.linkWaitSeconds, 0.0);

    const ServeReport b = shared_sim.run();
    EXPECT_EQ(a.describe(), b.describe());
}

TEST(ServeSpecDeathTest, RejectsZeroLinkTenants)
{
    ServeSpec spec = smallSpec();
    spec.linkTenantsPerHost = 0;
    EXPECT_DEATH(spec.validate(), "tenant");
}

TEST(ServeSim, OverloadShedsInsteadOfCollapsing)
{
    ServeSpec spec = smallSpec(600);
    const ServiceModel model(spec.instance, spec.model,
                             spec.dispatchOverheadSeconds);
    // Offer 3x sustainable load with a short bounded queue.
    spec.arrivals.ratePerSecond =
        3.0 * model.capacityPerSecond(128, spec.batcher.maxBatch,
                                      spec.instanceCount);
    spec.admission.maxQueueDepth = 16;
    spec.batcher.overloadDepth = 8;
    const ServeReport report = ServeSim(spec).run();
    EXPECT_EQ(report.lost(), 0u);
    EXPECT_GT(report.shed, 0u);   // load shedding engaged
    EXPECT_GT(report.done, 0u);   // but goodput survived
    EXPECT_LE(report.maxQueueDepthSeen, 16u);
    // Everything that completed still met its deadline.
    EXPECT_EQ(report.completedLate, 0u);
    for (const double latency : report.latencies)
        EXPECT_LE(latency, spec.sloSeconds + 1e-12);
}

TEST(ServeSim, DeadlineAwareAdmissionShedsHopelessRequests)
{
    ServeSpec spec = smallSpec(100);
    // An SLO tighter than one solo dispatch: every request is hopeless
    // at admission; the front end must reject all of them crisply.
    const ServiceModel model(spec.instance, spec.model,
                             spec.dispatchOverheadSeconds);
    spec.sloSeconds = 0.5 * model.seconds(128, 1);
    const ServeReport report = ServeSim(spec).run();
    EXPECT_EQ(report.done, 0u);
    EXPECT_EQ(report.shedAdmission, 100u);
    EXPECT_EQ(report.lost(), 0u);
    EXPECT_EQ(report.batches, 0u);
}

TEST(ServeSim, TraceArrivalsDriveTheFrontEnd)
{
    ServeSpec spec = smallSpec();
    const ServiceModel model(spec.instance, spec.model,
                             spec.dispatchOverheadSeconds);
    const double service = model.seconds(128, 1);
    spec.arrivals.kind = ArrivalKind::Trace;
    spec.arrivals.trace = {
        TraceArrival{ 0.0, 126, 0, 0.0 },
        TraceArrival{ 10.0 * service, 126, 1, 0.0 },
        TraceArrival{ 20.0 * service, 126, 0, 0.0 },
    };
    const ServeReport report = ServeSim(spec).run();
    EXPECT_EQ(report.offered, 3u);
    EXPECT_EQ(report.done, 3u);
    // Widely spaced arrivals cannot batch together.
    EXPECT_EQ(report.batches, 3u);
}

TEST(ServeSim, DescribeCarriesTheHeadlineNumbers)
{
    const ServeReport report = ServeSim(smallSpec(50)).run();
    const std::string text = report.describe();
    EXPECT_NE(text.find("offered=50"), std::string::npos);
    EXPECT_NE(text.find("lost=0"), std::string::npos);
    EXPECT_NE(text.find("goodput:"), std::string::npos);
    EXPECT_NE(text.find("p99="), std::string::npos);
}

} // namespace
} // namespace prose
