/** @file Tests for the intrusive request FIFO / priority queues. */

#include <gtest/gtest.h>

#include "serve/queue.hh"

namespace prose {
namespace {

RequestArena
arenaOf(std::size_t n)
{
    RequestArena arena(n);
    for (std::size_t i = 0; i < n; ++i) {
        arena[i].id = static_cast<RequestId>(i);
        arena[i].arrivalSeconds = static_cast<double>(i);
    }
    return arena;
}

TEST(RequestFifo, FifoOrder)
{
    RequestArena arena = arenaOf(3);
    RequestFifo fifo;
    EXPECT_TRUE(fifo.empty());
    fifo.pushBack(arena, 0);
    fifo.pushBack(arena, 1);
    fifo.pushBack(arena, 2);
    EXPECT_EQ(fifo.size(), 3u);
    EXPECT_EQ(fifo.front(), 0);
    EXPECT_EQ(fifo.popFront(arena), 0u);
    EXPECT_EQ(fifo.popFront(arena), 1u);
    EXPECT_EQ(fifo.popFront(arena), 2u);
    EXPECT_TRUE(fifo.empty());
}

TEST(RequestFifo, RemoveFromMiddleAndEnds)
{
    RequestArena arena = arenaOf(4);
    RequestFifo fifo;
    for (RequestId id = 0; id < 4; ++id)
        fifo.pushBack(arena, id);
    fifo.remove(arena, 1); // middle
    fifo.remove(arena, 3); // tail
    EXPECT_EQ(fifo.size(), 2u);
    EXPECT_EQ(fifo.popFront(arena), 0u);
    EXPECT_EQ(fifo.popFront(arena), 2u);
    // Removed requests are fully unlinked and can be re-queued.
    fifo.pushBack(arena, 1);
    EXPECT_EQ(fifo.front(), 1);
}

TEST(RequestFifo, ReuseAfterPop)
{
    RequestArena arena = arenaOf(2);
    RequestFifo fifo;
    fifo.pushBack(arena, 0);
    EXPECT_EQ(fifo.popFront(arena), 0u);
    fifo.pushBack(arena, 0); // a popped request can come back
    EXPECT_EQ(fifo.size(), 1u);
}

TEST(RequestFifoDeathTest, DoubleEnqueuePanics)
{
    RequestArena arena = arenaOf(2);
    RequestFifo fifo;
    fifo.pushBack(arena, 0);
    EXPECT_DEATH(fifo.pushBack(arena, 0), "already queued");
}

TEST(RequestFifoDeathTest, PopEmptyPanics)
{
    RequestArena arena = arenaOf(1);
    RequestFifo fifo;
    EXPECT_DEATH(fifo.popFront(arena), "empty queue");
}

TEST(RequestFifoDeathTest, RemoveUnlinkedPanics)
{
    RequestArena arena = arenaOf(2);
    RequestFifo fifo;
    fifo.pushBack(arena, 0);
    EXPECT_DEATH(fifo.remove(arena, 1), "not in this queue");
}

TEST(PriorityRequestQueue, HighestBandPopsFirst)
{
    RequestArena arena = arenaOf(4);
    arena[0].priority = 0;
    arena[1].priority = 2;
    arena[2].priority = 1;
    arena[3].priority = 2;
    PriorityRequestQueue queue;
    for (RequestId id = 0; id < 4; ++id)
        queue.push(arena, id);
    EXPECT_EQ(queue.size(), 4u);
    EXPECT_EQ(queue.front(), 1);
    EXPECT_EQ(queue.pop(arena), 1u); // band 2, oldest
    EXPECT_EQ(queue.pop(arena), 3u); // band 2, next
    EXPECT_EQ(queue.pop(arena), 2u); // band 1
    EXPECT_EQ(queue.pop(arena), 0u); // band 0
    EXPECT_TRUE(queue.empty());
}

TEST(PriorityRequestQueue, ShedVictimIsOldestOfLowestBand)
{
    RequestArena arena = arenaOf(4);
    arena[0].priority = 3;
    arena[1].priority = 1;
    arena[2].priority = 1;
    arena[3].priority = 0;
    PriorityRequestQueue queue;
    for (RequestId id = 0; id < 3; ++id)
        queue.push(arena, id);
    // Lowest band present is 1; its oldest member is request 1.
    EXPECT_EQ(queue.shedVictim(), 1);
    queue.push(arena, 3); // band 0 now populated
    EXPECT_EQ(queue.shedVictim(), 3);
    queue.remove(arena, 3);
    EXPECT_EQ(queue.shedVictim(), 1);
}

TEST(PriorityRequestQueue, HighPrioritiesClampToTopBand)
{
    RequestArena arena = arenaOf(2);
    arena[0].priority = PriorityRequestQueue::kBands - 1;
    arena[1].priority = 99; // clamps to the top band
    PriorityRequestQueue queue;
    queue.push(arena, 0);
    queue.push(arena, 1);
    // Same band: FIFO within it.
    EXPECT_EQ(queue.pop(arena), 0u);
    EXPECT_EQ(queue.pop(arena), 1u);
}

TEST(PriorityRequestQueueDeathTest, PopEmptyPanics)
{
    RequestArena arena = arenaOf(1);
    PriorityRequestQueue queue;
    EXPECT_DEATH(queue.pop(arena), "empty priority queue");
}

} // namespace
} // namespace prose
