/** @file Tests for op records: flops, traffic, categories. */

#include <gtest/gtest.h>

#include "trace/op.hh"

namespace prose {
namespace {

Op
makeOp(OpKind kind, std::uint64_t batch, std::uint64_t m, std::uint64_t k,
       std::uint64_t n)
{
    Op op;
    op.kind = kind;
    op.batch = batch;
    op.m = m;
    op.k = k;
    op.n = n;
    return op;
}

TEST(Op, MatmulFlops)
{
    const Op op = makeOp(OpKind::MatMul, 1, 10, 20, 30);
    EXPECT_DOUBLE_EQ(op.flops(), 2.0 * 10 * 20 * 30);
}

TEST(Op, BmmFlopsScaleWithBatch)
{
    const Op op = makeOp(OpKind::Bmm, 8, 4, 4, 4);
    EXPECT_DOUBLE_EQ(op.flops(), 8.0 * 2 * 4 * 4 * 4);
}

TEST(Op, ElementwiseFlops)
{
    EXPECT_DOUBLE_EQ(makeOp(OpKind::MulAdd, 1, 10, 0, 10).flops(), 300.0);
    EXPECT_DOUBLE_EQ(makeOp(OpKind::MatDiv, 1, 10, 0, 10).flops(), 100.0);
    EXPECT_DOUBLE_EQ(makeOp(OpKind::Gelu, 1, 10, 0, 10).flops(), 100.0);
    EXPECT_DOUBLE_EQ(makeOp(OpKind::Transpose, 1, 10, 0, 10).flops(), 0.0);
}

TEST(Op, MatmulBytes)
{
    const Op op = makeOp(OpKind::MatMul, 1, 8, 16, 4);
    EXPECT_EQ(op.bytesIn(2), (8 * 16 + 16 * 4) * 2u);
    EXPECT_EQ(op.bytesOut(2), 8 * 4 * 2u);
}

TEST(Op, OutputElems)
{
    EXPECT_EQ(makeOp(OpKind::Bmm, 3, 5, 7, 2).outputElems(), 30u);
    EXPECT_EQ(makeOp(OpKind::Exp, 2, 4, 0, 4).outputElems(), 32u);
}

TEST(Op, CategoriesMatchFigure3Buckets)
{
    EXPECT_EQ(makeOp(OpKind::MatMul, 1, 1, 1, 1).category(),
              OpCategory::MatMul);
    EXPECT_EQ(makeOp(OpKind::Bmm, 1, 1, 1, 1).category(),
              OpCategory::BatchedMatMul);
    EXPECT_EQ(makeOp(OpKind::Exp, 1, 1, 0, 1).category(),
              OpCategory::Softmax);
    EXPECT_EQ(makeOp(OpKind::SoftmaxHost, 1, 1, 0, 1).category(),
              OpCategory::Softmax);
    EXPECT_EQ(makeOp(OpKind::Gelu, 1, 1, 0, 1).category(),
              OpCategory::Gelu);
    EXPECT_EQ(makeOp(OpKind::MulAdd, 1, 1, 0, 1).category(),
              OpCategory::MatAdd);
    EXPECT_EQ(makeOp(OpKind::MatDiv, 1, 1, 0, 1).category(),
              OpCategory::MatDiv);
    EXPECT_EQ(makeOp(OpKind::LayerNorm, 1, 1, 0, 1).category(),
              OpCategory::Other);
    EXPECT_EQ(makeOp(OpKind::Transpose, 1, 1, 0, 1).category(),
              OpCategory::Other);
    EXPECT_EQ(makeOp(OpKind::Embed, 1, 1, 0, 1).category(),
              OpCategory::Other);
}

TEST(Op, DescribeMentionsKindAndShape)
{
    Op op = makeOp(OpKind::MatMul, 1, 64, 768, 768);
    op.sublayer = Sublayer::Attention;
    op.layer = 3;
    const std::string text = op.describe();
    EXPECT_NE(text.find("MatMul"), std::string::npos);
    EXPECT_NE(text.find("64x768x768"), std::string::npos);
    EXPECT_NE(text.find("L3"), std::string::npos);
}

TEST(Op, ToStringCoversAllEnums)
{
    EXPECT_STREQ(toString(OpKind::SoftmaxHost), "SoftmaxHost");
    EXPECT_STREQ(toString(Sublayer::Intermediate), "Intermediate");
    EXPECT_STREQ(toString(OpCategory::BatchedMatMul), "Batched Mat Mul");
    EXPECT_STREQ(toString(OpCategory::MatMul), "Matrix Multiply");
    EXPECT_STREQ(toString(OpCategory::Softmax), "Softmax");
    EXPECT_STREQ(toString(OpCategory::Gelu), "GELU");
    EXPECT_STREQ(toString(OpCategory::MatAdd), "Matrix Add");
    EXPECT_STREQ(toString(OpCategory::MatDiv), "Matrix Div");
    EXPECT_STREQ(toString(OpCategory::Other), "Other");
}

TEST(Op, ElementwiseBytesIn)
{
    // MulAdd streams two operand planes; the single-plane elementwise
    // ops and the embedding gather stream one.
    EXPECT_EQ(makeOp(OpKind::MulAdd, 2, 8, 0, 4).bytesIn(4),
              2u * 2 * 8 * 4 * 4);
    EXPECT_EQ(makeOp(OpKind::MatDiv, 2, 8, 0, 4).bytesIn(4),
              2u * 8 * 4 * 4);
    EXPECT_EQ(makeOp(OpKind::Transpose, 1, 8, 0, 4).bytesIn(2),
              8u * 4 * 2);
    EXPECT_EQ(makeOp(OpKind::Embed, 1, 16, 0, 64).bytesIn(4),
              16u * 64 * 4);
}

TEST(Op, DescribeBatchedAndElementwiseShapes)
{
    Op bmm = makeOp(OpKind::Bmm, 12, 128, 64, 128);
    bmm.sublayer = Sublayer::Attention;
    const std::string bmm_text = bmm.describe();
    EXPECT_NE(bmm_text.find("b=12"), std::string::npos);
    EXPECT_NE(bmm_text.find("128x64x128"), std::string::npos);

    Op norm = makeOp(OpKind::LayerNorm, 4, 128, 0, 768);
    norm.sublayer = Sublayer::Output;
    const std::string norm_text = norm.describe();
    EXPECT_NE(norm_text.find("b=4"), std::string::npos);
    EXPECT_NE(norm_text.find("128x768"), std::string::npos);
    EXPECT_EQ(norm_text.find("128x0x768"), std::string::npos);
}

} // namespace
} // namespace prose
