/** @file Tests for op records: flops, traffic, categories. */

#include <gtest/gtest.h>

#include "trace/op.hh"

namespace prose {
namespace {

Op
makeOp(OpKind kind, std::uint64_t batch, std::uint64_t m, std::uint64_t k,
       std::uint64_t n)
{
    Op op;
    op.kind = kind;
    op.batch = batch;
    op.m = m;
    op.k = k;
    op.n = n;
    return op;
}

TEST(Op, MatmulFlops)
{
    const Op op = makeOp(OpKind::MatMul, 1, 10, 20, 30);
    EXPECT_DOUBLE_EQ(op.flops(), 2.0 * 10 * 20 * 30);
}

TEST(Op, BmmFlopsScaleWithBatch)
{
    const Op op = makeOp(OpKind::Bmm, 8, 4, 4, 4);
    EXPECT_DOUBLE_EQ(op.flops(), 8.0 * 2 * 4 * 4 * 4);
}

TEST(Op, ElementwiseFlops)
{
    EXPECT_DOUBLE_EQ(makeOp(OpKind::MulAdd, 1, 10, 0, 10).flops(), 300.0);
    EXPECT_DOUBLE_EQ(makeOp(OpKind::MatDiv, 1, 10, 0, 10).flops(), 100.0);
    EXPECT_DOUBLE_EQ(makeOp(OpKind::Gelu, 1, 10, 0, 10).flops(), 100.0);
    EXPECT_DOUBLE_EQ(makeOp(OpKind::Transpose, 1, 10, 0, 10).flops(), 0.0);
}

TEST(Op, MatmulBytes)
{
    const Op op = makeOp(OpKind::MatMul, 1, 8, 16, 4);
    EXPECT_EQ(op.bytesIn(2), (8 * 16 + 16 * 4) * 2u);
    EXPECT_EQ(op.bytesOut(2), 8 * 4 * 2u);
}

TEST(Op, OutputElems)
{
    EXPECT_EQ(makeOp(OpKind::Bmm, 3, 5, 7, 2).outputElems(), 30u);
    EXPECT_EQ(makeOp(OpKind::Exp, 2, 4, 0, 4).outputElems(), 32u);
}

TEST(Op, CategoriesMatchFigure3Buckets)
{
    EXPECT_EQ(makeOp(OpKind::MatMul, 1, 1, 1, 1).category(),
              OpCategory::MatMul);
    EXPECT_EQ(makeOp(OpKind::Bmm, 1, 1, 1, 1).category(),
              OpCategory::BatchedMatMul);
    EXPECT_EQ(makeOp(OpKind::Exp, 1, 1, 0, 1).category(),
              OpCategory::Softmax);
    EXPECT_EQ(makeOp(OpKind::SoftmaxHost, 1, 1, 0, 1).category(),
              OpCategory::Softmax);
    EXPECT_EQ(makeOp(OpKind::Gelu, 1, 1, 0, 1).category(),
              OpCategory::Gelu);
    EXPECT_EQ(makeOp(OpKind::MulAdd, 1, 1, 0, 1).category(),
              OpCategory::MatAdd);
    EXPECT_EQ(makeOp(OpKind::MatDiv, 1, 1, 0, 1).category(),
              OpCategory::MatDiv);
    EXPECT_EQ(makeOp(OpKind::LayerNorm, 1, 1, 0, 1).category(),
              OpCategory::Other);
    EXPECT_EQ(makeOp(OpKind::Transpose, 1, 1, 0, 1).category(),
              OpCategory::Other);
    EXPECT_EQ(makeOp(OpKind::Embed, 1, 1, 0, 1).category(),
              OpCategory::Other);
}

TEST(Op, DescribeMentionsKindAndShape)
{
    Op op = makeOp(OpKind::MatMul, 1, 64, 768, 768);
    op.sublayer = Sublayer::Attention;
    op.layer = 3;
    const std::string text = op.describe();
    EXPECT_NE(text.find("MatMul"), std::string::npos);
    EXPECT_NE(text.find("64x768x768"), std::string::npos);
    EXPECT_NE(text.find("L3"), std::string::npos);
}

TEST(Op, ToStringCoversAllEnums)
{
    EXPECT_STREQ(toString(OpKind::SoftmaxHost), "SoftmaxHost");
    EXPECT_STREQ(toString(Sublayer::Intermediate), "Intermediate");
    EXPECT_STREQ(toString(OpCategory::BatchedMatMul), "Batched Mat Mul");
}

} // namespace
} // namespace prose
