/** @file Tests for the decoder-stack trace synthesis (the paper's
 *  translation-model generality path). */

#include <gtest/gtest.h>

#include <map>

#include "trace/dataflow.hh"

namespace prose {
namespace {

DecoderShape
tinyDecoder()
{
    DecoderShape shape;
    shape.layers = 2;
    shape.hidden = 64;
    shape.heads = 8; // dk = 8, distinct from every sequence length
    shape.intermediate = 256;
    shape.batch = 3;
    shape.targetLen = 16;
    shape.sourceLen = 48;
    return shape;
}

TEST(DecoderTrace, OpCountMatchesAnalyticFormula)
{
    // Per attention block: Q (3 ops) + K,V (2x3) + 5 core + transpose +
    // 4 output = 19; two blocks + FFN (3 + 4) = 45 per layer; + 2
    // embedding ops.
    const DecoderShape shape = tinyDecoder();
    const OpTrace trace = synthesizeDecoderTrace(shape);
    EXPECT_EQ(trace.size(), 2 + shape.layers * (2 * 19 + 7));
}

TEST(DecoderTrace, GrammarParsesIntoDataflows)
{
    const auto tasks =
        DataflowBuilder{}.build(synthesizeDecoderTrace(tinyDecoder()));
    std::map<DataflowKind, std::size_t> counts;
    for (const auto &task : tasks)
        ++counts[task.kind];
    // Per layer: 4x DF1 per attention block (Q, K, V, out) x2 blocks +
    // 1x DF2 + 1x DF1 (FFN down) = 9 DF1, 1 DF2, 2 DF3.
    const DecoderShape shape = tinyDecoder();
    EXPECT_EQ(counts[DataflowKind::Dataflow1], 9 * shape.layers);
    EXPECT_EQ(counts[DataflowKind::Dataflow2], 1 * shape.layers);
    EXPECT_EQ(counts[DataflowKind::Dataflow3], 2 * shape.layers);
}

TEST(DecoderTrace, CrossAttentionShapesUseSourceLength)
{
    const DecoderShape shape = tinyDecoder();
    const OpTrace trace = synthesizeDecoderTrace(shape);
    bool saw_cross_scores = false;
    for (const auto &op : trace.ops()) {
        if (op.kind != OpKind::Bmm)
            continue;
        if (op.n == shape.sourceLen) {
            EXPECT_EQ(op.m, shape.targetLen);
            EXPECT_EQ(op.k, shape.hidden / shape.heads);
            saw_cross_scores = true;
        }
    }
    EXPECT_TRUE(saw_cross_scores);
}

TEST(DecoderTrace, SelfAttentionShapesUseTargetLength)
{
    const DecoderShape shape = tinyDecoder();
    const OpTrace trace = synthesizeDecoderTrace(shape);
    std::size_t self_scores = 0;
    for (const auto &op : trace.ops()) {
        if (op.kind == OpKind::Bmm && op.m == shape.targetLen &&
            op.n == shape.targetLen) {
            ++self_scores;
        }
    }
    EXPECT_EQ(self_scores, shape.layers); // one per layer
}

TEST(DecoderTrace, KvProjectionsSizedToMemory)
{
    // Cross-attention K/V projections consume the encoder memory:
    // (batch * sourceLen) x hidden x hidden matmuls must appear.
    const DecoderShape shape = tinyDecoder();
    const OpTrace trace = synthesizeDecoderTrace(shape);
    std::size_t memory_matmuls = 0;
    for (const auto &op : trace.ops())
        if (op.kind == OpKind::MatMul &&
            op.m == shape.batch * shape.sourceLen)
            ++memory_matmuls;
    // Two per layer for the cross block... plus two per layer for the
    // self block only when targetLen == sourceLen (it does not here).
    EXPECT_EQ(memory_matmuls, 2 * shape.layers);
}

TEST(DecoderTrace, AcceleratedFractionStaysHigh)
{
    const auto tasks =
        DataflowBuilder{}.build(synthesizeDecoderTrace(tinyDecoder()));
    EXPECT_GT(DataflowBuilder::acceleratedFraction(tasks), 0.8);
}

TEST(DecoderTrace, FlopsScaleWithBothLengths)
{
    DecoderShape base = tinyDecoder();
    DecoderShape longer_target = base;
    longer_target.targetLen *= 2;
    DecoderShape longer_source = base;
    longer_source.sourceLen *= 2;
    const double f_base = synthesizeDecoderTrace(base).totalFlops();
    EXPECT_GT(synthesizeDecoderTrace(longer_target).totalFlops(),
              1.5 * f_base);
    EXPECT_GT(synthesizeDecoderTrace(longer_source).totalFlops(),
              1.2 * f_base);
}

} // namespace
} // namespace prose
