/** @file Property tests over randomly generated (grammar-valid) op
 *  traces: the dataflow builder, trace serialization, and task costing
 *  must hold for arbitrary workloads, not just BERT's. */

#include <gtest/gtest.h>

#include <sstream>

#include "accel/perf_sim.hh"
#include "common/random.hh"
#include "systolic/timing_model.hh"
#include "trace/trace_io.hh"

namespace prose {
namespace {

/** Emit one random grammar-valid accelerated sequence. */
void
emitRandomTask(Rng &rng, OpTrace &trace, int layer)
{
    auto dim = [&] { return 1 + rng.below(300); };
    switch (rng.below(3)) {
      case 0: { // Dataflow 1: MatMul + 1..3 MulAdds
        const std::uint64_t m = dim(), k = dim(), n = dim();
        trace.record(OpKind::MatMul, Sublayer::Attention, layer, 1, m,
                     k, n);
        const std::uint64_t muladds = 1 + rng.below(3);
        for (std::uint64_t i = 0; i < muladds; ++i)
            trace.record(OpKind::MulAdd, Sublayer::Attention, layer, 1,
                         m, 0, n, rng.below(2) == 0);
        break;
      }
      case 1: { // Dataflow 2
        const std::uint64_t m = dim(), k = dim(), n = dim();
        trace.record(OpKind::MatMul, Sublayer::Intermediate, layer, 1,
                     m, k, n);
        trace.record(OpKind::MulAdd, Sublayer::Intermediate, layer, 1,
                     m, 0, n, true);
        trace.record(OpKind::Gelu, Sublayer::Intermediate, layer, 1, m,
                     0, n);
        break;
      }
      default: { // Dataflow 3
        const std::uint64_t b = 1 + rng.below(16);
        const std::uint64_t l = dim(), dk = 1 + rng.below(64);
        trace.record(OpKind::Bmm, Sublayer::Attention, layer, b, l, dk,
                     l);
        trace.record(OpKind::MatDiv, Sublayer::Attention, layer, b, l,
                     0, l);
        trace.record(OpKind::Exp, Sublayer::Attention, layer, b, l, 0,
                     l);
        trace.record(OpKind::SoftmaxHost, Sublayer::Attention, layer, b,
                     l, 0, l);
        trace.record(OpKind::Bmm, Sublayer::Attention, layer, b, l, l,
                     dk);
        break;
      }
    }
}

OpTrace
randomTrace(Rng &rng, std::size_t tasks)
{
    OpTrace trace;
    for (std::size_t i = 0; i < tasks; ++i) {
        if (rng.below(4) == 0)
            trace.record(OpKind::LayerNorm, Sublayer::Output,
                         static_cast<int>(i), 1, 1 + rng.below(500), 0,
                         1 + rng.below(500));
        emitRandomTask(rng, trace, static_cast<int>(i));
    }
    return trace;
}

TEST(RandomTraces, BuilderAlwaysParsesGrammarValidTraces)
{
    Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        const OpTrace trace = randomTrace(rng, 1 + rng.below(20));
        const auto tasks = DataflowBuilder{}.build(trace);
        // Tasks partition the trace: op counts must match.
        std::size_t ops = 0;
        for (const auto &task : tasks)
            ops += task.ops.size();
        EXPECT_EQ(ops, trace.size());
    }
}

TEST(RandomTraces, SerializationRoundTripsArbitraryTraces)
{
    Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        const OpTrace trace = randomTrace(rng, 1 + rng.below(15));
        std::ostringstream out;
        writeTrace(out, trace);
        std::istringstream in(out.str());
        const OpTrace parsed = readTrace(in);
        ASSERT_EQ(parsed.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i) {
            EXPECT_EQ(parsed.at(i).kind, trace.at(i).kind);
            EXPECT_EQ(parsed.at(i).m, trace.at(i).m);
            EXPECT_EQ(parsed.at(i).broadcast, trace.at(i).broadcast);
        }
    }
}

TEST(RandomTraces, TaskCostsAreSaneForArbitraryShapes)
{
    Rng rng(3);
    const TimingModel timing(true);
    const ArrayGeometry geoms[3] = { ArrayGeometry::mType(64),
                                     ArrayGeometry::gType(16),
                                     ArrayGeometry::eType(16) };
    for (int trial = 0; trial < 30; ++trial) {
        const OpTrace trace = randomTrace(rng, 1 + rng.below(10));
        for (const auto &task : DataflowBuilder{}.build(trace)) {
            if (task.kind == DataflowKind::Host)
                continue;
            const ArrayGeometry &geom =
                geoms[typeIndex(arrayTypeFor(task.kind))];
            const TaskCost cost = timing.costTask(task, geom);
            EXPECT_GT(cost.matmulCycles, 0u);
            EXPECT_GT(cost.simdCycles, 0u);
            EXPECT_GT(cost.bytesIn, 0u);
            EXPECT_GT(cost.bytesOut, 0u);
            EXPECT_GT(cost.flops, 0.0);
            // Useful MACs never exceed cycle capacity.
            const double macs = cost.flops / 2.0;
            EXPECT_LE(macs, static_cast<double>(cost.matmulCycles) *
                                geom.peCount() * 1.0001);
        }
    }
}

TEST(RandomTraces, PerfSimSchedulesArbitraryThreadLoads)
{
    Rng rng(4);
    std::vector<std::vector<DataflowTask>> threads;
    DataflowBuilder builder;
    for (int t = 0; t < 5; ++t)
        threads.push_back(
            builder.build(randomTrace(rng, 1 + rng.below(8))));
    PerfSim sim(ProseConfig::bestPerf());
    const SimReport report = sim.runTasks(threads);
    EXPECT_GT(report.makespan, 0.0);
    EXPECT_GT(report.taskCount, 0u);
}

} // namespace
} // namespace prose
