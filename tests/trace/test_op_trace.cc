/** @file Tests for the op-trace recorder and its aggregates. */

#include <gtest/gtest.h>

#include "trace/op_trace.hh"

namespace prose {
namespace {

TEST(OpTrace, RecordAndQuery)
{
    OpTrace trace;
    EXPECT_TRUE(trace.empty());
    trace.record(OpKind::MatMul, Sublayer::Attention, 0, 1, 4, 4, 4);
    trace.record(OpKind::Gelu, Sublayer::Intermediate, 0, 1, 4, 0, 4);
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.at(0).kind, OpKind::MatMul);
    EXPECT_EQ(trace.at(1).sublayer, Sublayer::Intermediate);
}

TEST(OpTrace, TotalFlopsSums)
{
    OpTrace trace;
    trace.record(OpKind::MatMul, Sublayer::Attention, 0, 1, 2, 3, 4);
    trace.record(OpKind::MatMul, Sublayer::Attention, 0, 1, 2, 3, 4);
    EXPECT_DOUBLE_EQ(trace.totalFlops(), 2 * 2.0 * 2 * 3 * 4);
}

TEST(OpTrace, FlopsByCategorySplits)
{
    OpTrace trace;
    trace.record(OpKind::MatMul, Sublayer::Attention, 0, 1, 2, 2, 2);
    trace.record(OpKind::Bmm, Sublayer::Attention, 0, 4, 2, 2, 2);
    const auto by_cat = trace.flopsByCategory();
    EXPECT_DOUBLE_EQ(by_cat.at(OpCategory::MatMul), 16.0);
    EXPECT_DOUBLE_EQ(by_cat.at(OpCategory::BatchedMatMul), 64.0);
}

TEST(OpTrace, CountByKind)
{
    OpTrace trace;
    trace.record(OpKind::Exp, Sublayer::Attention, 0, 1, 2, 0, 2);
    trace.record(OpKind::Exp, Sublayer::Attention, 1, 1, 2, 0, 2);
    trace.record(OpKind::Gelu, Sublayer::Intermediate, 0, 1, 2, 0, 2);
    const auto counts = trace.countByKind();
    EXPECT_EQ(counts.at(OpKind::Exp), 2u);
    EXPECT_EQ(counts.at(OpKind::Gelu), 1u);
}

TEST(OpTrace, LayerOpsFilter)
{
    OpTrace trace;
    trace.record(OpKind::MatMul, Sublayer::Attention, 0, 1, 2, 2, 2);
    trace.record(OpKind::MatMul, Sublayer::Attention, 1, 1, 2, 2, 2);
    trace.record(OpKind::Embed, Sublayer::Embedding, -1, 1, 2, 0, 2);
    EXPECT_EQ(trace.layerOps(0).size(), 1u);
    EXPECT_EQ(trace.layerOps(1).size(), 1u);
    EXPECT_EQ(trace.layerOps(-1).size(), 1u);
}

TEST(OpTrace, BroadcastFlagRecorded)
{
    OpTrace trace;
    trace.record(OpKind::MulAdd, Sublayer::Attention, 0, 1, 8, 0, 8,
                 true);
    trace.record(OpKind::MulAdd, Sublayer::Attention, 0, 1, 8, 0, 8);
    EXPECT_TRUE(trace.at(0).broadcast);
    EXPECT_FALSE(trace.at(1).broadcast);
}

} // namespace
} // namespace prose
