/** @file Tests for op-trace serialization. */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/dataflow.hh"
#include "trace/trace_io.hh"

namespace prose {
namespace {

TEST(TraceIo, RoundTripPreservesEveryField)
{
    const OpTrace original =
        synthesizeBertTrace(BertShape{ 2, 64, 4, 256, 3, 16 });
    std::ostringstream out;
    writeTrace(out, original);
    std::istringstream in(out.str());
    const OpTrace parsed = readTrace(in);

    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        const Op &a = original.at(i);
        const Op &b = parsed.at(i);
        EXPECT_EQ(a.kind, b.kind) << i;
        EXPECT_EQ(a.sublayer, b.sublayer) << i;
        EXPECT_EQ(a.layer, b.layer) << i;
        EXPECT_EQ(a.batch, b.batch) << i;
        EXPECT_EQ(a.m, b.m) << i;
        EXPECT_EQ(a.k, b.k) << i;
        EXPECT_EQ(a.n, b.n) << i;
        EXPECT_EQ(a.broadcast, b.broadcast) << i;
    }
}

TEST(TraceIo, CommentsAndBlanksIgnored)
{
    std::istringstream in(
        "# a comment\n"
        "\n"
        "MatMul Attention 0 1 8 16 4 0\n"
        "  # indented comment\n"
        "MulAdd Attention 0 1 8 0 4 1\n");
    const OpTrace trace = readTrace(in);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.at(0).kind, OpKind::MatMul);
    EXPECT_TRUE(trace.at(1).broadcast);
}

TEST(TraceIo, ParsedTraceBuildsDataflows)
{
    // A serialized trace must remain consumable by the whole pipeline.
    const OpTrace original =
        synthesizeBertTrace(BertShape{ 1, 64, 4, 256, 1, 8 });
    std::ostringstream out;
    writeTrace(out, original);
    std::istringstream in(out.str());
    const auto tasks = DataflowBuilder{}.build(readTrace(in));
    EXPECT_EQ(tasks.size(), DataflowBuilder{}.build(original).size());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    OpTrace empty;
    std::ostringstream out;
    writeTrace(out, empty);
    std::istringstream in(out.str());
    EXPECT_TRUE(readTrace(in).empty());
}

TEST(TraceIo, EnumParsersCoverAllValues)
{
    for (const char *name :
         { "MatMul", "BMM", "MulAdd", "MatDiv", "Exp", "SoftmaxHost",
           "GELU", "LayerNorm", "Embed", "Transpose" }) {
        EXPECT_STREQ(toString(opKindFromString(name)), name);
    }
    for (const char *name : { "Embedding", "Attention", "Intermediate",
                              "Output", "Downstream" }) {
        EXPECT_STREQ(toString(sublayerFromString(name)), name);
    }
}

TEST(TraceIoDeathTest, UnknownKindIsFatal)
{
    std::istringstream in("Conv2D Attention 0 1 8 16 4 0\n");
    EXPECT_EXIT(readTrace(in), testing::ExitedWithCode(1),
                "unknown op kind");
}

TEST(TraceIoDeathTest, MalformedLineIsFatal)
{
    std::istringstream in("MatMul Attention 0 1\n");
    EXPECT_EXIT(readTrace(in), testing::ExitedWithCode(1), "malformed");
}

TEST(TraceIoDeathTest, TrailingFieldsAreFatal)
{
    std::istringstream in("MatMul Attention 0 1 8 16 4 0 surprise\n");
    EXPECT_EXIT(readTrace(in), testing::ExitedWithCode(1),
                "want 8 fields, got 9");
}

// Fuzzing regressions (see tests/fuzz/corpus/trace_io): istream >>
// into uint64_t sign-wraps "-1" to 2^64-1 with no failbit, and there
// was no upper bound on dimensions, so a hostile trace could claim an
// 18-quintillion-row matmul and die OOM in whichever consumer sized
// buffers from it.
TEST(TraceIoDeathTest, NegativeDimensionsAreRejectedNotWrapped)
{
    std::istringstream in("MatMul Attention 0 -1 8 16 4 0\n");
    EXPECT_EXIT(readTrace(in), testing::ExitedWithCode(1),
                "bad batch '-1' on trace line 1");
}

TEST(TraceIoDeathTest, DimensionsPastTheSanityBoundAreRejected)
{
    std::istringstream in("MatMul Attention 0 1 8589934592 16 4 0\n");
    EXPECT_EXIT(readTrace(in), testing::ExitedWithCode(1),
                "sanity bound");
    std::istringstream overflow(
        "MatMul Attention 0 1 99999999999999999999 16 4 0\n");
    EXPECT_EXIT(readTrace(overflow), testing::ExitedWithCode(1),
                "bad m");
}

TEST(TraceIoDeathTest, BroadcastMustBeZeroOrOne)
{
    std::istringstream in("MatMul Attention 0 1 8 16 4 2\n");
    EXPECT_EXIT(readTrace(in), testing::ExitedWithCode(1),
                "bad broadcast flag");
}

TEST(TraceIo, NegativeOneLayerIsTheOnlySignedField)
{
    std::istringstream in("Embed Embedding -1 1 128 1 64 0\n");
    const OpTrace trace = readTrace(in);
    ASSERT_EQ(trace.ops().size(), 1u);
    EXPECT_EQ(trace.ops()[0].layer, -1);

    std::istringstream minus_two("Embed Embedding -2 1 128 1 64 0\n");
    EXPECT_EXIT(readTrace(minus_two), testing::ExitedWithCode(1),
                "bad layer");
}

TEST(TraceIoDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(readTraceFile("/nonexistent/prose.trace"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIo, FileRoundTrip)
{
    const OpTrace original =
        synthesizeBertTrace(BertShape{ 1, 64, 4, 256, 1, 8 });
    const std::string path = testing::TempDir() + "/prose_trace_test.txt";
    writeTraceFile(path, original);
    const OpTrace parsed = readTraceFile(path);
    EXPECT_EQ(parsed.size(), original.size());
}

} // namespace
} // namespace prose
