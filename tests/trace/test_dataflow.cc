/** @file Tests for dataflow construction and the synthetic BERT trace. */

#include <gtest/gtest.h>

#include <map>

#include "trace/dataflow.hh"

namespace prose {
namespace {

BertShape
tinyShape()
{
    return BertShape{ 2, 64, 4, 256, 3, 16 };
}

TEST(SynthesizeTrace, OpCountMatchesAnalyticFormula)
{
    // Per layer: 3x(MatMul, MulAdd, Transpose) + 5 attention-core ops +
    // Transpose + (MatMul, 2 MulAdd, LayerNorm) + (MatMul, MulAdd, Gelu)
    // + (MatMul, 2 MulAdd, LayerNorm) = 26 ops; plus 2 embedding ops.
    const BertShape shape = tinyShape();
    const OpTrace trace = synthesizeBertTrace(shape);
    EXPECT_EQ(trace.size(), 2 + shape.layers * 26);
}

TEST(SynthesizeTrace, ShapesUseFlattenedTokens)
{
    const BertShape shape = tinyShape();
    const OpTrace trace = synthesizeBertTrace(shape);
    // First MatMul is the Q projection: (batch*len) x hidden x hidden.
    for (const auto &op : trace.ops()) {
        if (op.kind == OpKind::MatMul) {
            EXPECT_EQ(op.m, shape.batch * shape.seqLen);
            EXPECT_EQ(op.k, shape.hidden);
            EXPECT_EQ(op.n, shape.hidden);
            break;
        }
    }
}

TEST(SynthesizeTrace, BmmShapesMatchAttention)
{
    // Use a length != head dim so the two BMM shapes are unambiguous.
    BertShape shape = tinyShape();
    shape.seqLen = 32;
    const OpTrace trace = synthesizeBertTrace(shape);
    const std::uint64_t dk = shape.hidden / shape.heads;
    bool saw_scores = false, saw_context = false;
    for (const auto &op : trace.ops()) {
        if (op.kind != OpKind::Bmm)
            continue;
        EXPECT_EQ(op.batch, shape.batch * shape.heads);
        if (op.k == dk) {
            EXPECT_EQ(op.m, shape.seqLen);
            EXPECT_EQ(op.n, shape.seqLen);
            saw_scores = true;
        } else {
            EXPECT_EQ(op.k, shape.seqLen);
            EXPECT_EQ(op.n, dk);
            saw_context = true;
        }
    }
    EXPECT_TRUE(saw_scores);
    EXPECT_TRUE(saw_context);
}

TEST(DataflowBuilder, GroupsPerFigure7)
{
    // Per layer: 4x DF1 (Q, K, V, attention output) + 1x DF3 + 1x DF2
    // (intermediate) + 1x DF1 (output) -> 5 DF1, 1 DF2, 1 DF3.
    const BertShape shape = tinyShape();
    const auto tasks =
        DataflowBuilder{}.build(synthesizeBertTrace(shape));

    std::map<DataflowKind, std::size_t> counts;
    for (const auto &task : tasks)
        ++counts[task.kind];
    EXPECT_EQ(counts[DataflowKind::Dataflow1], 5 * shape.layers);
    EXPECT_EQ(counts[DataflowKind::Dataflow2], 1 * shape.layers);
    EXPECT_EQ(counts[DataflowKind::Dataflow3], 1 * shape.layers);
}

TEST(DataflowBuilder, Dataflow3HasThePaperSequence)
{
    const auto tasks =
        DataflowBuilder{}.build(synthesizeBertTrace(tinyShape()));
    for (const auto &task : tasks) {
        if (task.kind != DataflowKind::Dataflow3)
            continue;
        ASSERT_EQ(task.ops.size(), 5u);
        EXPECT_EQ(task.ops[0].kind, OpKind::Bmm);
        EXPECT_EQ(task.ops[1].kind, OpKind::MatDiv);
        EXPECT_EQ(task.ops[2].kind, OpKind::Exp);
        EXPECT_EQ(task.ops[3].kind, OpKind::SoftmaxHost);
        EXPECT_EQ(task.ops[4].kind, OpKind::Bmm);
    }
}

TEST(DataflowBuilder, Dataflow2EndsWithGelu)
{
    const auto tasks =
        DataflowBuilder{}.build(synthesizeBertTrace(tinyShape()));
    for (const auto &task : tasks) {
        if (task.kind != DataflowKind::Dataflow2)
            continue;
        EXPECT_EQ(task.ops.front().kind, OpKind::MatMul);
        EXPECT_EQ(task.ops.back().kind, OpKind::Gelu);
        EXPECT_EQ(task.sublayer, Sublayer::Intermediate);
    }
}

TEST(DataflowBuilder, HostTasksAreSingleOps)
{
    const auto tasks =
        DataflowBuilder{}.build(synthesizeBertTrace(tinyShape()));
    for (const auto &task : tasks) {
        if (task.kind != DataflowKind::Host)
            continue;
        ASSERT_EQ(task.ops.size(), 1u);
        const OpKind kind = task.ops[0].kind;
        EXPECT_TRUE(kind == OpKind::LayerNorm || kind == OpKind::Embed ||
                    kind == OpKind::Transpose);
    }
}

TEST(DataflowBuilder, AcceleratedFractionNearNinetyPercent)
{
    // The paper: Dataflows 1-3 capture ~90% of operations (80-95%).
    const BertShape shape{ 12, 768, 12, 3072, 4, 512 };
    const auto tasks =
        DataflowBuilder{}.build(synthesizeBertTrace(shape));
    const double fraction = DataflowBuilder::acceleratedFraction(tasks);
    EXPECT_GT(fraction, 0.80);
    EXPECT_LE(fraction, 1.0);
}

TEST(DataflowTask, StreamBytesCountOperandsOnce)
{
    // DF1 over MatMul(m,k,n) + broadcast MulAdd: A + B + bias in, m*n
    // out, all bf16.
    OpTrace trace;
    trace.record(OpKind::MatMul, Sublayer::Attention, 0, 1, 8, 16, 4);
    trace.record(OpKind::MulAdd, Sublayer::Attention, 0, 1, 8, 0, 4,
                 true);
    const auto tasks = DataflowBuilder{}.build(trace);
    ASSERT_EQ(tasks.size(), 1u);
    EXPECT_EQ(tasks[0].kind, DataflowKind::Dataflow1);
    EXPECT_EQ(tasks[0].streamBytesIn(),
              (8 * 16 + 16 * 4) * 2u + 4 * 2u);
    EXPECT_EQ(tasks[0].streamBytesOut(), 8 * 4 * 2u);
}

TEST(DataflowTask, Dataflow3OutputIncludesExpRoundTrip)
{
    const auto tasks =
        DataflowBuilder{}.build(synthesizeBertTrace(tinyShape()));
    for (const auto &task : tasks) {
        if (task.kind != DataflowKind::Dataflow3)
            continue;
        const Op &exp_op = task.ops[2];
        const Op &ctx = task.ops[4];
        EXPECT_EQ(task.streamBytesOut(),
                  exp_op.bytesOut(2) + ctx.bytesOut(2));
        break;
    }
}

TEST(DataflowTask, DescribeListsOps)
{
    const auto tasks =
        DataflowBuilder{}.build(synthesizeBertTrace(tinyShape()));
    const std::string text = tasks.front().describe();
    EXPECT_FALSE(text.empty());
}

TEST(DataflowBuilderDeathTest, DanglingMatMulPanics)
{
    OpTrace trace;
    trace.record(OpKind::MatMul, Sublayer::Attention, 0, 1, 4, 4, 4);
    EXPECT_DEATH(DataflowBuilder{}.build(trace), "without a fused");
}

TEST(DataflowBuilderDeathTest, BrokenDataflow3Panics)
{
    OpTrace trace;
    trace.record(OpKind::Bmm, Sublayer::Attention, 0, 2, 4, 4, 4);
    trace.record(OpKind::Gelu, Sublayer::Attention, 0, 1, 4, 0, 4);
    EXPECT_DEATH(DataflowBuilder{}.build(trace), "Dataflow 3");
}

} // namespace
} // namespace prose
