/** @file Tests for the Huang-Abraham ABFT checker. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "fault/abft.hh"
#include "fault/fault_injector.hh"
#include "numerics/bfloat16.hh"

namespace prose {
namespace {

/**
 * The accumulator contents the array produces: bf16 x bf16 products
 * (exact in fp32) accumulated sequentially in fp32 along k.
 */
Matrix
arrayAccumulate(const Matrix &a, const Matrix &b)
{
    Matrix acc(a.rows(), b.cols(), 0.0f);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < b.cols(); ++c) {
            float sum = 0.0f;
            for (std::size_t kk = 0; kk < a.cols(); ++kk)
                sum += quantizeBf16(a(r, kk)) * quantizeBf16(b(kk, c));
            acc(r, c) = sum;
        }
    }
    return acc;
}

struct Workload
{
    Matrix a, b, acc;
};

Workload
makeWorkload(Rng &rng, std::size_t m, std::size_t k, std::size_t n)
{
    Workload w;
    w.a = Matrix(m, k);
    w.b = Matrix(k, n);
    w.a.fillGaussian(rng, 0.0f, 1.0f);
    w.b.fillGaussian(rng, 0.0f, 1.0f);
    w.acc = arrayAccumulate(w.a, w.b);
    return w;
}

AbftChecker
enabledChecker(bool correct = true)
{
    AbftOptions options;
    options.enabled = true;
    options.correct = correct;
    return AbftChecker(options);
}

TEST(Abft, CleanTileIsNotFlagged)
{
    Rng rng(1);
    Workload w = makeWorkload(rng, 64, 512, 64);
    AbftChecker checker = enabledChecker();
    const AbftTileResult result = checker.checkTile(w.a, w.b, w.acc);
    EXPECT_FALSE(result.flagged);
    EXPECT_TRUE(result.suspectRows.empty());
    EXPECT_TRUE(result.suspectCols.empty());
    EXPECT_EQ(checker.stats().tilesChecked, 1u);
    EXPECT_EQ(checker.stats().tilesFlagged, 0u);
}

TEST(Abft, SingleFlipIsLocatedAndCorrected)
{
    Rng rng(2);
    Workload w = makeWorkload(rng, 48, 256, 48);
    const float original = w.acc(17, 31);
    w.acc(17, 31) = flipFloatBit(original, 24);

    AbftChecker checker = enabledChecker();
    const AbftTileResult result = checker.checkTile(w.a, w.b, w.acc);
    EXPECT_TRUE(result.flagged);
    ASSERT_EQ(result.located.size(), 1u);
    EXPECT_EQ(result.located[0].first, 17u);
    EXPECT_EQ(result.located[0].second, 31u);
    ASSERT_EQ(result.corrected.size(), 1u);
    EXPECT_NEAR(w.acc(17, 31), original, 0.05f);
    EXPECT_EQ(checker.stats().locatedElements, 1u);
    EXPECT_EQ(checker.stats().correctedElements, 1u);
    EXPECT_EQ(checker.stats().unlocatedTiles, 0u);
}

TEST(Abft, LocateWithoutCorrectLeavesTheCellAlone)
{
    Rng rng(3);
    Workload w = makeWorkload(rng, 32, 128, 32);
    const float flipped = flipFloatBit(w.acc(4, 7), 28);
    w.acc(4, 7) = flipped;

    AbftChecker checker = enabledChecker(/*correct=*/false);
    const AbftTileResult result = checker.checkTile(w.a, w.b, w.acc);
    ASSERT_EQ(result.located.size(), 1u);
    EXPECT_TRUE(result.corrected.empty());
    EXPECT_EQ(w.acc(4, 7), flipped);
}

TEST(Abft, InfCellIsLocatedAndRepaired)
{
    Rng rng(4);
    Workload w = makeWorkload(rng, 32, 128, 32);
    const float original = w.acc(9, 9);
    w.acc(9, 9) = std::numeric_limits<float>::infinity();

    AbftChecker checker = enabledChecker();
    const AbftTileResult result = checker.checkTile(w.a, w.b, w.acc);
    ASSERT_EQ(result.located.size(), 1u);
    EXPECT_EQ(result.located[0], (std::pair<std::size_t, std::size_t>{
                                     9u, 9u }));
    EXPECT_TRUE(std::isfinite(w.acc(9, 9)));
    EXPECT_NEAR(w.acc(9, 9), original, 0.05f);
}

TEST(Abft, TwoFlipsInDistinctRowsAndColsBothLocated)
{
    Rng rng(5);
    Workload w = makeWorkload(rng, 48, 192, 48);
    const float orig_a = w.acc(3, 40);
    const float orig_b = w.acc(30, 6);
    w.acc(3, 40) = flipFloatBit(orig_a, 26);
    w.acc(30, 6) = flipFloatBit(orig_b, 29);

    AbftChecker checker = enabledChecker();
    const AbftTileResult result = checker.checkTile(w.a, w.b, w.acc);
    ASSERT_EQ(result.located.size(), 2u);
    EXPECT_EQ(result.corrected.size(), 2u);
    EXPECT_NEAR(w.acc(3, 40), orig_a, 0.05f);
    EXPECT_NEAR(w.acc(30, 6), orig_b, 0.05f);
    EXPECT_EQ(checker.stats().ambiguousElements, 0u);
}

TEST(Abft, SameRowFlipsStayAmbiguousAndUncorrected)
{
    Rng rng(6);
    Workload w = makeWorkload(rng, 32, 128, 32);
    w.acc(12, 3) = flipFloatBit(w.acc(12, 3), 27);
    w.acc(12, 20) = flipFloatBit(w.acc(12, 20), 27);

    AbftChecker checker = enabledChecker();
    const AbftTileResult result = checker.checkTile(w.a, w.b, w.acc);
    EXPECT_TRUE(result.flagged);
    EXPECT_TRUE(result.corrected.empty());
    EXPECT_GT(checker.stats().ambiguousElements, 0u);
}

TEST(Abft, CoverageOfVisibleFlipsIsAtLeast99Percent)
{
    // The ISSUE acceptance bar: over a seeded campaign of single-bit
    // flips in the architecturally visible window [16, 31], at least
    // 99% must be detected AND located to the exact accumulator.
    Rng rng(2022);
    const int trials = 250;
    int located = 0;
    for (int t = 0; t < trials; ++t) {
        Workload w = makeWorkload(rng, 48, 256, 48);
        const std::size_t r = rng.below(48);
        const std::size_t c = rng.below(48);
        const std::uint32_t bit =
            16 + static_cast<std::uint32_t>(rng.below(16));
        w.acc(r, c) = flipFloatBit(w.acc(r, c), bit);

        AbftChecker checker = enabledChecker();
        const AbftTileResult result = checker.checkTile(w.a, w.b, w.acc);
        if (result.located.size() == 1 && result.located[0].first == r &&
            result.located[0].second == c)
            ++located;
    }
    EXPECT_GE(located, static_cast<int>(trials * 0.99))
        << "located only " << located << "/" << trials;
}

TEST(Abft, StatsAccumulateAcrossTilesAndReset)
{
    Rng rng(8);
    AbftChecker checker = enabledChecker();
    for (int t = 0; t < 3; ++t) {
        Workload w = makeWorkload(rng, 16, 64, 16);
        w.acc(1, 2) = flipFloatBit(w.acc(1, 2), 30);
        checker.checkTile(w.a, w.b, w.acc);
    }
    EXPECT_EQ(checker.stats().tilesChecked, 3u);
    EXPECT_EQ(checker.stats().tilesFlagged, 3u);
    EXPECT_EQ(checker.stats().locatedElements, 3u);
    EXPECT_DOUBLE_EQ(checker.stats().locateRate(), 1.0);
    checker.resetStats();
    EXPECT_EQ(checker.stats().tilesChecked, 0u);
}

} // namespace
} // namespace prose
