/** @file Tests for the fault-campaign spec: parse, describe, validate. */

#include <gtest/gtest.h>

#include <limits>

#include "fault/campaign.hh"

namespace prose {
namespace {

TEST(CampaignSpec, DefaultsAreFaultFree)
{
    const CampaignSpec spec;
    EXPECT_EQ(spec.accFlipRate, 0.0);
    EXPECT_EQ(spec.linkErrorRate, 0.0);
    EXPECT_EQ(spec.linkTimeoutRate, 0.0);
    EXPECT_TRUE(spec.stuckBits.empty());
    EXPECT_TRUE(spec.arrayKills.empty());
    EXPECT_TRUE(spec.instanceKills.empty());
    EXPECT_EQ(spec.flipBitLow, 16u);
    EXPECT_EQ(spec.flipBitHigh, 31u);
    spec.validate(); // must not die
}

TEST(CampaignSpec, ParsesEveryToken)
{
    const CampaignSpec spec = CampaignSpec::parse(
        "seed=42 acc_flip_rate=1e-4 flip_bits=20:30 "
        "stuck=M0:3:5:30:1 stuck=G0:0:0:24:0 "
        "link_error_rate=1e-3 link_timeout_rate=1e-4 "
        "kill_array=E:0@2e-3 kill_instance=1@5e-3");
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_DOUBLE_EQ(spec.accFlipRate, 1e-4);
    EXPECT_EQ(spec.flipBitLow, 20u);
    EXPECT_EQ(spec.flipBitHigh, 30u);
    ASSERT_EQ(spec.stuckBits.size(), 2u);
    EXPECT_EQ(spec.stuckBits[0].site, "M0");
    EXPECT_EQ(spec.stuckBits[0].row, 3u);
    EXPECT_EQ(spec.stuckBits[0].col, 5u);
    EXPECT_EQ(spec.stuckBits[0].bit, 30u);
    EXPECT_TRUE(spec.stuckBits[0].stuckHigh);
    EXPECT_FALSE(spec.stuckBits[1].stuckHigh);
    EXPECT_DOUBLE_EQ(spec.linkErrorRate, 1e-3);
    EXPECT_DOUBLE_EQ(spec.linkTimeoutRate, 1e-4);
    ASSERT_EQ(spec.arrayKills.size(), 1u);
    EXPECT_EQ(spec.arrayKills[0].typeCode, 'E');
    EXPECT_EQ(spec.arrayKills[0].index, 0u);
    EXPECT_DOUBLE_EQ(spec.arrayKills[0].atSeconds, 2e-3);
    ASSERT_EQ(spec.instanceKills.size(), 1u);
    EXPECT_EQ(spec.instanceKills[0].instance, 1u);
    EXPECT_DOUBLE_EQ(spec.instanceKills[0].atSeconds, 5e-3);
}

TEST(CampaignSpec, ParsesArrivalIndexedInstanceKill)
{
    const CampaignSpec spec =
        CampaignSpec::parse("kill_instance=1@#500");
    ASSERT_EQ(spec.instanceKills.size(), 1u);
    EXPECT_EQ(spec.instanceKills[0].instance, 1u);
    EXPECT_EQ(spec.instanceKills[0].atArrival, 500);
    EXPECT_LT(spec.instanceKills[0].atSeconds, 0.0);
    spec.validate(); // arrival-indexed form is complete on its own
    EXPECT_NE(spec.describe().find("kill_instance=1@#500"),
              std::string::npos);
}

TEST(CampaignSpec, ArrivalIndexedKillDescribeRoundTrips)
{
    const CampaignSpec spec = CampaignSpec::parse(
        "seed=3 kill_instance=0@#42 kill_instance=2@0.01");
    const std::string canonical = spec.describe();
    const CampaignSpec reparsed = CampaignSpec::parse(canonical);
    EXPECT_EQ(reparsed.describe(), canonical);
    ASSERT_EQ(reparsed.instanceKills.size(), 2u);
    EXPECT_EQ(reparsed.instanceKills[0].atArrival, 42);
    EXPECT_DOUBLE_EQ(reparsed.instanceKills[1].atSeconds, 0.01);
}

TEST(CampaignSpec, DescribeRoundTrips)
{
    const CampaignSpec spec = CampaignSpec::parse(
        "seed=7 acc_flip_rate=0.001 stuck=E0:1:2:28:1 "
        "link_error_rate=0.01 kill_array=M:1@0.004 kill_instance=2@0.01");
    const std::string canonical = spec.describe();
    const CampaignSpec reparsed = CampaignSpec::parse(canonical);
    EXPECT_EQ(reparsed.describe(), canonical);
}

TEST(CampaignSpec, EmptyTextIsDefaultSpec)
{
    const CampaignSpec spec = CampaignSpec::parse("");
    EXPECT_EQ(spec.describe(), CampaignSpec{}.describe());
}

TEST(CampaignSpecDeathTest, UnknownKeyIsFatal)
{
    EXPECT_EXIT(CampaignSpec::parse("frobnicate=1"),
                testing::ExitedWithCode(1), "unknown key");
}

TEST(CampaignSpecDeathTest, MalformedTokenIsFatal)
{
    EXPECT_EXIT(CampaignSpec::parse("acc_flip_rate"),
                testing::ExitedWithCode(1), "token without");
    EXPECT_EXIT(CampaignSpec::parse("seed=banana"),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(CampaignSpec::parse("stuck=M0:1:2"),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(CampaignSpec::parse("kill_array=E0@1e-3"),
                testing::ExitedWithCode(1), "");
}

TEST(CampaignSpecDeathTest, ValidateRejectsBadRatesAndWindows)
{
    CampaignSpec rate;
    rate.accFlipRate = 1.5;
    EXPECT_EXIT(rate.validate(), testing::ExitedWithCode(1), "rate");

    CampaignSpec window;
    window.flipBitLow = 20;
    window.flipBitHigh = 33;
    EXPECT_EXIT(window.validate(), testing::ExitedWithCode(1), "bit");

    CampaignSpec inverted;
    inverted.flipBitLow = 30;
    inverted.flipBitHigh = 20;
    EXPECT_EXIT(inverted.validate(), testing::ExitedWithCode(1), "bit");

    CampaignSpec kill;
    kill.arrayKills.push_back(ArrayKill{ 'X', 0, 1e-3 });
    EXPECT_EXIT(kill.validate(), testing::ExitedWithCode(1), "type");
}

// Regressions from the parser fuzzing pass: every one of these used to
// slip through strtod/strtoull leniency (see tests/fuzz/corpus/campaign).
TEST(CampaignSpecDeathTest, NanAndInfRatesAreRejected)
{
    // nan compares false to every bound, so (rate < 0 || rate > 1)
    // never fired and a NaN rate reached the injector RNG.
    EXPECT_EXIT(CampaignSpec::parse("acc_flip_rate=nan"),
                testing::ExitedWithCode(1), "bad");
    EXPECT_EXIT(CampaignSpec::parse("acc_flip_rate=inf"),
                testing::ExitedWithCode(1), "bad");
    EXPECT_EXIT(CampaignSpec::parse("link_error_rate=-nan"),
                testing::ExitedWithCode(1), "bad");
}

TEST(CampaignSpecDeathTest, NegativeAndOverflowingSeedsAreRejected)
{
    // strtoull silently wrapped "-5" to 2^64-5 and clamped overflow.
    EXPECT_EXIT(CampaignSpec::parse("seed=-5"),
                testing::ExitedWithCode(1), "bad");
    EXPECT_EXIT(CampaignSpec::parse("seed=99999999999999999999"),
                testing::ExitedWithCode(1), "bad");
}

TEST(CampaignSpecDeathTest, CellCoordinatesPast32BitsAreRejected)
{
    // These fields are uint32_t; the old code parsed 64 bits and let
    // the assignment truncate (4294967297 became row 1).
    EXPECT_EXIT(CampaignSpec::parse("stuck=M0:4294967297:0:30:1"),
                testing::ExitedWithCode(1), "bad");
    EXPECT_EXIT(CampaignSpec::parse("flip_bits=16:4294967296"),
                testing::ExitedWithCode(1), "bad");
    EXPECT_EXIT(CampaignSpec::parse("kill_array=E:4294967296@1e-3"),
                testing::ExitedWithCode(1), "bad");
    EXPECT_EXIT(CampaignSpec::parse("kill_instance=4294967296@1e-3"),
                testing::ExitedWithCode(1), "bad");
}

TEST(CampaignSpecDeathTest, HugeArrivalIndexIsRejectedNotWrapped)
{
    // The arrival index is stored in an int64 whose -1 means "unset";
    // 2^63 would have aliased onto negative sentinels.
    EXPECT_EXIT(
        CampaignSpec::parse("kill_instance=1@#9223372036854775808"),
        testing::ExitedWithCode(1), "out of range");
}

TEST(CampaignSpec, ArrivalIndexAtInt64MaxStillParses)
{
    const CampaignSpec spec =
        CampaignSpec::parse("kill_instance=1@#9223372036854775807");
    ASSERT_EQ(spec.instanceKills.size(), 1u);
    EXPECT_EQ(spec.instanceKills[0].atArrival,
              std::numeric_limits<std::int64_t>::max());
}

TEST(CampaignSpecDeathTest, InstanceKillNeedsExactlyOneTrigger)
{
    EXPECT_EXIT(CampaignSpec::parse("kill_instance=1"),
                testing::ExitedWithCode(1), "suffix");

    CampaignSpec neither;
    neither.instanceKills.push_back(InstanceKill{ 0, -1.0 });
    EXPECT_EXIT(neither.validate(), testing::ExitedWithCode(1),
                "exactly one of");

    CampaignSpec both;
    InstanceKill kill{ 0, 1e-3 };
    kill.atArrival = 10;
    both.instanceKills.push_back(kill);
    EXPECT_EXIT(both.validate(), testing::ExitedWithCode(1),
                "exactly one of");
}

TEST(FaultEvent, DescribeNamesKindSiteAndCell)
{
    FaultEvent event;
    event.seq = 3;
    event.kind = FaultKind::AccTransientFlip;
    event.site = "M0";
    event.row = 4;
    event.col = 9;
    event.bit = 27;
    const std::string line = event.describe();
    EXPECT_NE(line.find("AccTransientFlip"), std::string::npos);
    EXPECT_NE(line.find("M0"), std::string::npos);
    EXPECT_NE(line.find("27"), std::string::npos);
}

TEST(FaultKindNames, AllDistinct)
{
    EXPECT_STREQ(toString(FaultKind::AccTransientFlip),
                 "AccTransientFlip");
    EXPECT_STRNE(toString(FaultKind::LinkTransferError),
                 toString(FaultKind::LinkTimeout));
    EXPECT_STRNE(toString(FaultKind::ArrayKill),
                 toString(FaultKind::InstanceKill));
}

} // namespace
} // namespace prose
