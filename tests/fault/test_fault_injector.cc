/** @file Tests for the seeded deterministic fault injector. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "fault/fault_injector.hh"
#include "numerics/bfloat16.hh"

namespace prose {
namespace {

std::vector<float>
rampAccumulators(std::size_t stride)
{
    std::vector<float> acc(stride * stride);
    for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = static_cast<float>(i) * 0.5f + 1.0f;
    return acc;
}

TEST(FaultInjector, FaultFreeSpecTouchesNothing)
{
    FaultInjector injector{ CampaignSpec{} };
    std::vector<float> acc = rampAccumulators(16);
    const std::vector<float> before = acc;
    EXPECT_EQ(injector.corruptAccumulators("M0", acc.data(), 16, 16, 16),
              0u);
    EXPECT_EQ(std::memcmp(acc.data(), before.data(),
                          acc.size() * sizeof(float)),
              0);
    EXPECT_TRUE(injector.events().empty());
    EXPECT_FALSE(injector.sampleLinkTransfer('M').faulty());
    EXPECT_EQ(injector.deadArrays('M', 1e9), 0u);
    EXPECT_TRUE(std::isinf(injector.instanceKillSeconds(0)));
}

TEST(FaultInjector, RateOneFlipsEveryLiveCell)
{
    CampaignSpec spec;
    spec.seed = 5;
    spec.accFlipRate = 1.0;
    spec.flipBitLow = 30;
    spec.flipBitHigh = 30;
    FaultInjector injector(spec);
    std::vector<float> acc = rampAccumulators(8);
    const std::vector<float> before = acc;
    EXPECT_EQ(injector.corruptAccumulators("M0", acc.data(), 8, 4, 4),
              16u);
    for (std::size_t r = 0; r < 8; ++r) {
        for (std::size_t c = 0; c < 8; ++c) {
            const bool live = r < 4 && c < 4;
            EXPECT_EQ(acc[r * 8 + c] != before[r * 8 + c], live)
                << "r=" << r << " c=" << c;
        }
    }
    ASSERT_EQ(injector.events().size(), 16u);
    for (const FaultEvent &event : injector.events()) {
        EXPECT_EQ(event.kind, FaultKind::AccTransientFlip);
        EXPECT_EQ(event.bit, 30u);
        EXPECT_LT(event.row, 4u);
        EXPECT_LT(event.col, 4u);
    }
}

TEST(FaultInjector, FlipBitsStayInsideTheWindow)
{
    CampaignSpec spec;
    spec.seed = 11;
    spec.accFlipRate = 1.0;
    spec.flipBitLow = 18;
    spec.flipBitHigh = 23;
    FaultInjector injector(spec);
    std::vector<float> acc = rampAccumulators(16);
    injector.corruptAccumulators("E0", acc.data(), 16, 16, 16);
    bool saw_low = false, saw_high = false;
    for (const FaultEvent &event : injector.events()) {
        EXPECT_GE(event.bit, 18u);
        EXPECT_LE(event.bit, 23u);
        saw_low = saw_low || event.bit == 18u;
        saw_high = saw_high || event.bit == 23u;
    }
    EXPECT_TRUE(saw_low);
    EXPECT_TRUE(saw_high);
}

TEST(FaultInjector, StuckBitForcesAndLogsOnlyOnChange)
{
    CampaignSpec spec;
    spec.stuckBits.push_back(StuckBitFault{ "G0", 2, 3, 30, true });
    FaultInjector injector(spec);
    // 1.0f = 0x3f800000 has bit 30 clear; forcing it high lands on
    // 0x7f800000 = +Inf, the classic stuck-exponent failure.
    std::vector<float> acc(64, 1.0f);
    EXPECT_EQ(injector.corruptAccumulators("G0", acc.data(), 8, 8, 8),
              1u);
    EXPECT_NE(acc[2 * 8 + 3], 1.0f);
    ASSERT_EQ(injector.events().size(), 1u);
    EXPECT_EQ(injector.events()[0].kind, FaultKind::AccStuckBit);

    // Re-applying to the already-stuck value must not log again.
    EXPECT_EQ(injector.corruptAccumulators("G0", acc.data(), 8, 8, 8),
              0u);
    EXPECT_EQ(injector.events().size(), 1u);

    // Wrong site: untouched.
    std::vector<float> other(64, 1.0f);
    EXPECT_EQ(injector.corruptAccumulators("M0", other.data(), 8, 8, 8),
              0u);
    EXPECT_EQ(other[2 * 8 + 3], 1.0f);
}

TEST(FaultInjector, LinkRatesDriveOutcomes)
{
    CampaignSpec always_error;
    always_error.linkErrorRate = 1.0;
    FaultInjector error_injector(always_error);
    const FaultInjector::LinkOutcome error =
        error_injector.sampleLinkTransfer('M');
    EXPECT_TRUE(error.error);
    EXPECT_FALSE(error.timeout);

    CampaignSpec always_timeout;
    always_timeout.linkTimeoutRate = 1.0;
    FaultInjector timeout_injector(always_timeout);
    const FaultInjector::LinkOutcome timeout =
        timeout_injector.sampleLinkTransfer('E');
    EXPECT_FALSE(timeout.error);
    EXPECT_TRUE(timeout.timeout);
    ASSERT_EQ(timeout_injector.events().size(), 1u);
    EXPECT_EQ(timeout_injector.events()[0].kind, FaultKind::LinkTimeout);
    EXPECT_EQ(timeout_injector.events()[0].site, "link:E");
}

TEST(FaultInjector, LinkSamplingKeepsRngStreamAligned)
{
    // Two campaigns, identical but for the link rates: after the same
    // number of link draws, the accumulator flips must land on the same
    // cells and bits.
    CampaignSpec quiet;
    quiet.seed = 99;
    quiet.accFlipRate = 0.05;
    CampaignSpec noisy = quiet;
    noisy.linkErrorRate = 0.7;
    noisy.linkTimeoutRate = 0.2;

    FaultInjector a(quiet), b(noisy);
    for (int i = 0; i < 37; ++i) {
        a.sampleLinkTransfer('M');
        b.sampleLinkTransfer('M');
    }
    std::vector<float> acc_a = rampAccumulators(32);
    std::vector<float> acc_b = rampAccumulators(32);
    a.corruptAccumulators("M0", acc_a.data(), 32, 32, 32);
    b.corruptAccumulators("M0", acc_b.data(), 32, 32, 32);
    EXPECT_EQ(std::memcmp(acc_a.data(), acc_b.data(),
                          acc_a.size() * sizeof(float)),
              0);
}

TEST(FaultInjector, KillScheduleIsTimeDependent)
{
    CampaignSpec spec;
    spec.arrayKills = { ArrayKill{ 'M', 0, 2e-3 },
                        ArrayKill{ 'M', 1, 4e-3 },
                        ArrayKill{ 'E', 0, 1e-3 } };
    spec.instanceKills = { InstanceKill{ 2, 5e-3 } };
    FaultInjector injector(spec);
    EXPECT_EQ(injector.deadArrays('M', 0.0), 0u);
    EXPECT_EQ(injector.deadArrays('M', 2e-3), 1u);
    EXPECT_EQ(injector.deadArrays('M', 1.0), 2u);
    EXPECT_EQ(injector.deadArrays('E', 1.5e-3), 1u);
    EXPECT_EQ(injector.deadArrays('G', 1.0), 0u);
    EXPECT_DOUBLE_EQ(injector.instanceKillSeconds(2), 5e-3);
    EXPECT_TRUE(std::isinf(injector.instanceKillSeconds(0)));
    // Scheduled kills are logged up front.
    EXPECT_EQ(injector.events().size(), 4u);
}

TEST(FaultInjector, ArrivalIndexedKillsAreSeparateFromTimedOnes)
{
    CampaignSpec spec = CampaignSpec::parse(
        "kill_instance=1@#500 kill_instance=2@5e-3");
    FaultInjector injector(spec);
    // Arrival-indexed kills are invisible to the timed query (a
    // closed-loop simulator must not fire them)...
    EXPECT_TRUE(std::isinf(injector.instanceKillSeconds(1)));
    EXPECT_DOUBLE_EQ(injector.instanceKillSeconds(2), 5e-3);
    // ...and vice versa: the arrival query only sees indexed kills.
    EXPECT_EQ(injector.instanceKillArrival(1), 500u);
    EXPECT_EQ(injector.instanceKillArrival(2),
              FaultInjector::kNoArrivalKill);
    EXPECT_EQ(injector.instanceKillArrival(0),
              FaultInjector::kNoArrivalKill);
    // Both scheduled kills are logged up front with addressable sites.
    ASSERT_EQ(injector.events().size(), 2u);
    bool saw_indexed = false;
    for (const FaultEvent &event : injector.events()) {
        EXPECT_EQ(event.kind, FaultKind::InstanceKill);
        saw_indexed =
            saw_indexed || event.site.find('#') != std::string::npos;
    }
    EXPECT_TRUE(saw_indexed);
}

TEST(FaultInjector, EarliestArrivalKillWins)
{
    CampaignSpec spec = CampaignSpec::parse(
        "kill_instance=0@#900 kill_instance=0@#40");
    FaultInjector injector(spec);
    EXPECT_EQ(injector.instanceKillArrival(0), 40u);
}

TEST(FaultInjector, ReplayIsBitIdentical)
{
    CampaignSpec spec = CampaignSpec::parse(
        "seed=42 acc_flip_rate=0.01 link_error_rate=0.1 "
        "link_timeout_rate=0.05 stuck=M0:1:1:29:1 kill_array=G:0@1e-3");

    const auto drive = [&](FaultInjector &injector) {
        std::vector<float> acc = rampAccumulators(32);
        for (int round = 0; round < 5; ++round) {
            injector.corruptAccumulators("M0", acc.data(), 32, 32, 32);
            injector.sampleLinkTransfer('M');
            injector.sampleLinkTransfer('E');
        }
        return injector.eventLogText();
    };

    FaultInjector first(spec), second(spec);
    const std::string log = drive(first);
    EXPECT_FALSE(log.empty());
    EXPECT_EQ(log, drive(second));

    // reset() replays the same campaign from scratch.
    first.reset();
    EXPECT_EQ(drive(first), log);
}

TEST(FaultInjector, EventLogCarriesSequenceNumbers)
{
    CampaignSpec spec;
    spec.accFlipRate = 1.0;
    spec.flipBitLow = spec.flipBitHigh = 24;
    FaultInjector injector(spec);
    std::vector<float> acc = rampAccumulators(4);
    injector.corruptAccumulators("M0", acc.data(), 4, 2, 2);
    ASSERT_EQ(injector.events().size(), 4u);
    for (std::size_t i = 0; i < injector.events().size(); ++i)
        EXPECT_EQ(injector.events()[i].seq, i);
}

} // namespace
} // namespace prose
