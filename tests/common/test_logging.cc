/** @file Tests for the logging helpers (non-fatal paths + death tests). */

#include <gtest/gtest.h>

#include <regex>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace prose {
namespace {

TEST(Logging, ConcatJoinsHeterogeneousArgs)
{
    EXPECT_EQ(detail::concat("x=", 3, " y=", 2.5), "x=3 y=2.5");
}

TEST(Logging, ConcatEmpty)
{
    EXPECT_EQ(detail::concat(), "");
}

TEST(Logging, InformAndWarnDoNotTerminate)
{
    inform("informational message from tests");
    warn("warning message from tests");
    SUCCEED();
}

TEST(Logging, QuietSuppressesInform)
{
    testing::internal::CaptureStderr();
    setQuiet(true);
    inform("should be suppressed");
    setQuiet(false);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("suppressed"), std::string::npos);
}

TEST(Logging, WarnStillPrintsWhenQuiet)
{
    testing::internal::CaptureStderr();
    setQuiet(true);
    warn("warn-under-quiet");
    setQuiet(false);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn-under-quiet"), std::string::npos);
}

TEST(Logging, ConcurrentWarnsDoNotInterleave)
{
    constexpr int kThreads = 8;
    constexpr int kLines = 50;
    testing::internal::CaptureStderr();
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([t] {
                for (int i = 0; i < kLines; ++i)
                    warn("msg-", t, "-", i);
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }
    const std::string err = testing::internal::GetCapturedStderr();

    // Every captured line must be exactly one whole message: a single
    // mutex-guarded write per line means no interleaved fragments.
    const std::regex whole_line("warn: msg-[0-7]-[0-9]+");
    std::size_t lines = 0, start = 0;
    while (start < err.size()) {
        std::size_t end = err.find('\n', start);
        if (end == std::string::npos)
            end = err.size();
        const std::string line = err.substr(start, end - start);
        EXPECT_TRUE(std::regex_match(line, whole_line))
            << "interleaved log line: '" << line << "'";
        ++lines;
        start = end + 1;
    }
    EXPECT_EQ(lines, static_cast<std::size_t>(kThreads * kLines));
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom"), "boom");
}

TEST(LoggingDeathTest, AssertMacroAborts)
{
    EXPECT_DEATH(PROSE_ASSERT(1 == 2, "math broke"), "math broke");
}

TEST(LoggingDeathTest, AssertMacroPassesThrough)
{
    PROSE_ASSERT(1 == 1, "never shown");
    SUCCEED();
}

TEST(LoggingDeathTest, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

TEST(ScopedFatalThrowTest, FatalThrowsQuietlyWhileGuardIsAlive)
{
    ScopedFatalThrow guard;
    EXPECT_THROW(fatal("rejected: ", 42), FatalError);
    try {
        fatal("rejected: ", 42);
    } catch (const FatalError &error) {
        EXPECT_STREQ(error.what(), "rejected: 42");
    }
}

TEST(ScopedFatalThrowTest, GuardsNestAndRestore)
{
    {
        ScopedFatalThrow outer;
        {
            ScopedFatalThrow inner;
            EXPECT_THROW(fatal("inner"), FatalError);
        }
        // Destroying the inner guard must not disarm the outer one.
        EXPECT_THROW(fatal("outer"), FatalError);
    }
}

TEST(ScopedFatalThrowTest, GuardIsThreadLocal)
{
    ScopedFatalThrow guard;
    bool other_thread_threw = false;
    std::thread probe([&] {
        // This thread has no guard: fatal() here would exit the whole
        // process, so only verify the flag via a nested guard.
        ScopedFatalThrow local;
        try {
            fatal("thread-local");
        } catch (const FatalError &) {
            other_thread_threw = true;
        }
    });
    probe.join();
    EXPECT_TRUE(other_thread_threw);
    EXPECT_THROW(fatal("still armed"), FatalError);
}

TEST(ScopedFatalThrowDeathTest, PanicStillAbortsUnderTheGuard)
{
    // The guard only demotes fatal() (user error); panic() is a
    // simulator bug and must stay un-catchable.
    ScopedFatalThrow guard;
    EXPECT_DEATH(panic("engine divergence"), "engine divergence");
}

} // namespace
} // namespace prose
