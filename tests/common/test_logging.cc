/** @file Tests for the logging helpers (non-fatal paths + death tests). */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace prose {
namespace {

TEST(Logging, ConcatJoinsHeterogeneousArgs)
{
    EXPECT_EQ(detail::concat("x=", 3, " y=", 2.5), "x=3 y=2.5");
}

TEST(Logging, ConcatEmpty)
{
    EXPECT_EQ(detail::concat(), "");
}

TEST(Logging, InformAndWarnDoNotTerminate)
{
    inform("informational message from tests");
    warn("warning message from tests");
    SUCCEED();
}

TEST(Logging, QuietSuppressesInform)
{
    testing::internal::CaptureStderr();
    setQuiet(true);
    inform("should be suppressed");
    setQuiet(false);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("suppressed"), std::string::npos);
}

TEST(Logging, WarnStillPrintsWhenQuiet)
{
    testing::internal::CaptureStderr();
    setQuiet(true);
    warn("warn-under-quiet");
    setQuiet(false);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn-under-quiet"), std::string::npos);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom"), "boom");
}

TEST(LoggingDeathTest, AssertMacroAborts)
{
    EXPECT_DEATH(PROSE_ASSERT(1 == 2, "math broke"), "math broke");
}

TEST(LoggingDeathTest, AssertMacroPassesThrough)
{
    PROSE_ASSERT(1 == 1, "never shown");
    SUCCEED();
}

TEST(LoggingDeathTest, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

} // namespace
} // namespace prose
