/**
 * @file
 * Tests for the prose::compute thread pool: coverage, determinism,
 * reentrancy, serial forcing, exception propagation, and the
 * PROSE_THREADS spec parser.
 */

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"

namespace prose {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    for (std::size_t n : { 0ul, 1ul, 2ul, 3ul, 17ul, 64ul, 1000ul }) {
        std::vector<std::atomic<int>> hits(n);
        for (auto &h : hits)
            h.store(0);
        pool.parallelFor(n, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
}

TEST(ThreadPool, ChunksArePartitionOfRange)
{
    ThreadPool pool(3);
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    pool.parallelFor(101, [&](std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(m);
        ranges.emplace_back(lo, hi);
    });
    std::size_t covered = 0;
    std::set<std::size_t> starts;
    for (const auto &[lo, hi] : ranges) {
        EXPECT_LT(lo, hi);
        EXPECT_TRUE(starts.insert(lo).second);
        covered += hi - lo;
    }
    EXPECT_EQ(covered, 101u);
}

TEST(ThreadPool, MaxChunksBoundsConcurrency)
{
    ThreadPool pool(8);
    std::mutex m;
    std::size_t calls = 0;
    pool.parallelFor(1000, 2, [&](std::size_t, std::size_t) {
        std::lock_guard<std::mutex> lock(m);
        ++calls;
    });
    EXPECT_LE(calls, 2u);
    EXPECT_GE(calls, 1u);
}

TEST(ThreadPool, SameSumForAnyPoolSize)
{
    // The pool only partitions the index space; a chunk-local
    // reduction folded in chunk order is identical for any lane count
    // because chunk boundaries depend only on n and chunk count.
    auto run = [](ThreadPool &pool) {
        std::vector<double> vals(997);
        for (std::size_t i = 0; i < vals.size(); ++i)
            vals[i] = 1.0 / static_cast<double>(i + 1);
        std::mutex m;
        std::vector<std::pair<std::size_t, double>> partials;
        pool.parallelFor(vals.size(), [&](std::size_t lo, std::size_t hi) {
            double acc = 0.0;
            for (std::size_t i = lo; i < hi; ++i)
                acc += vals[i];
            std::lock_guard<std::mutex> lock(m);
            partials.emplace_back(lo, acc);
        });
        std::sort(partials.begin(), partials.end());
        double total = 0.0;
        for (const auto &[lo, acc] : partials)
            total += acc;
        return total;
    };
    ThreadPool serial(1), quad(4);
    // Chunk count differs (1 vs 16), so the folded sums may differ in
    // rounding; rerunning the same pool must be bit-stable though.
    EXPECT_EQ(run(quad), run(quad));
    EXPECT_EQ(run(serial), run(serial));
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> inner_total{ 0 };
    pool.parallelFor(8, [&](std::size_t lo, std::size_t hi) {
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        const std::thread::id outer = std::this_thread::get_id();
        for (std::size_t i = lo; i < hi; ++i) {
            pool.parallelFor(10, [&](std::size_t ilo, std::size_t ihi) {
                // Inline: same thread, one chunk spanning the range.
                EXPECT_EQ(std::this_thread::get_id(), outer);
                EXPECT_EQ(ilo, 0u);
                EXPECT_EQ(ihi, 10u);
                inner_total.fetch_add(static_cast<int>(ihi - ilo));
            });
        }
    });
    EXPECT_EQ(inner_total.load(), 80);
}

TEST(ThreadPool, SerialGuardForcesInline)
{
    ThreadPool pool(4);
    ThreadPool::SerialGuard guard;
    EXPECT_TRUE(ThreadPool::inParallelRegion());
    std::set<std::thread::id> threads;
    pool.parallelFor(64, [&](std::size_t lo, std::size_t hi) {
        threads.insert(std::this_thread::get_id());
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 64u);
    });
    EXPECT_EQ(threads.size(), 1u);
    EXPECT_EQ(*threads.begin(), std::this_thread::get_id());
}

TEST(ThreadPool, ConcurrentSubmittersAllComplete)
{
    ThreadPool pool(4);
    std::atomic<int> total{ 0 };
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&] {
            for (int rep = 0; rep < 25; ++rep)
                pool.parallelFor(40, [&](std::size_t lo, std::size_t hi) {
                    total.fetch_add(static_cast<int>(hi - lo));
                });
        });
    }
    for (auto &t : submitters)
        t.join();
    EXPECT_EQ(total.load(), 4 * 25 * 40);
}

TEST(ThreadPool, ExceptionPropagatesToSubmitter)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](std::size_t lo, std::size_t) {
                             if (lo == 0)
                                 throw std::runtime_error("chunk failed");
                         }),
        std::runtime_error);
    // The pool survives and accepts further work.
    std::atomic<int> count{ 0 };
    pool.parallelFor(10, [&](std::size_t lo, std::size_t hi) {
        count.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, GlobalOverrideRedirectsGlobal)
{
    ThreadPool pool(3);
    ThreadPool::setGlobalOverride(&pool);
    EXPECT_EQ(&ThreadPool::global(), &pool);
    ThreadPool::setGlobalOverride(nullptr);
    EXPECT_NE(&ThreadPool::global(), &pool);
}

TEST(ThreadPool, ParseThreadsSpec)
{
    EXPECT_EQ(ThreadPool::parseThreadsSpec(nullptr, 6), 6u);
    EXPECT_EQ(ThreadPool::parseThreadsSpec("", 6), 6u);
    EXPECT_EQ(ThreadPool::parseThreadsSpec("1", 6), 1u);
    EXPECT_EQ(ThreadPool::parseThreadsSpec("16", 6), 16u);
    EXPECT_EQ(ThreadPool::parseThreadsSpec("0", 6), 6u);
    EXPECT_EQ(ThreadPool::parseThreadsSpec("-3", 6), 6u);
    EXPECT_EQ(ThreadPool::parseThreadsSpec("banana", 6), 6u);
    EXPECT_EQ(ThreadPool::parseThreadsSpec("8x", 6), 6u);
    EXPECT_EQ(ThreadPool::parseThreadsSpec("99999", 6), 6u);
    // Fallback itself is clamped to a sane floor.
    EXPECT_GE(ThreadPool::parseThreadsSpec(nullptr, 0), 1u);
}

TEST(ThreadPool, ZeroAndOneIndexRunInline)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t lo, std::size_t hi) {
        ++calls;
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 1u);
    });
    EXPECT_EQ(calls, 1);
}

} // namespace
} // namespace prose
