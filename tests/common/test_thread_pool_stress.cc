/**
 * @file
 * Stress tests for the thread pool, written for the TSan build: they
 * hammer the interleavings the race detector needs to see — pool
 * teardown racing worker wakeup, reentrant submission, exception
 * unwind with SerialGuards on the stack, and stats merging under
 * contention. Each scenario is also a functional regression test in
 * uninstrumented builds, so they run in tier-1 everywhere.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/annotate.hh"
#include "common/thread_pool.hh"
#include "numerics/float_bits.hh"
#include "numerics/matrix.hh"

namespace prose {
namespace {

// Construct, immediately use, and destroy pools in a tight loop: the
// destructor's stop_ handshake must not race the workers' first (or
// last) pass through the wake_ predicate.
TEST(ThreadPoolStress, RapidCreateUseDestroy)
{
    for (int iter = 0; iter < 50; ++iter) {
        ThreadPool pool(4);
        std::atomic<int> sum{ 0 };
        pool.parallelFor(64, [&](std::size_t lo, std::size_t hi) {
            sum.fetch_add(static_cast<int>(hi - lo));
        });
        ASSERT_EQ(sum.load(), 64);
        // Destructor runs with workers possibly still inside their
        // post-job bookkeeping.
    }
}

// Destruction with work still queued behind the submit mutex: several
// submitter threads compete for the pool, then the pool dies right
// after the last submitter finishes. The destructor must drain
// cleanly even though workers were woken moments earlier.
TEST(ThreadPoolStress, DestructionRightAfterContendedSubmits)
{
    for (int iter = 0; iter < 10; ++iter) {
        std::atomic<int> total{ 0 };
        {
            ThreadPool pool(4);
            std::vector<std::thread> submitters;
            for (int t = 0; t < 3; ++t) {
                submitters.emplace_back([&] {
                    for (int rep = 0; rep < 5; ++rep) {
                        pool.parallelFor(
                            100, [&](std::size_t lo, std::size_t hi) {
                                total.fetch_add(
                                    static_cast<int>(hi - lo));
                            });
                    }
                });
            }
            for (auto &t : submitters)
                t.join();
        }
        ASSERT_EQ(total.load(), 3 * 5 * 100);
    }
}

// Reentrancy hammer: every chunk of the outer loop issues nested
// parallelFors (which must inline) while other threads submit their
// own outer loops through the same pool.
TEST(ThreadPoolStress, ReentrantSubmissionFromManyThreads)
{
    ThreadPool pool(4);
    std::atomic<std::int64_t> total{ 0 };
    std::vector<std::thread> drivers;
    for (int t = 0; t < 4; ++t) {
        drivers.emplace_back([&] {
            for (int rep = 0; rep < 20; ++rep) {
                pool.parallelFor(16, [&](std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) {
                        pool.parallelFor(
                            8, [&](std::size_t ilo, std::size_t ihi) {
                                total.fetch_add(
                                    static_cast<std::int64_t>(ihi - ilo));
                            });
                    }
                });
            }
        });
    }
    for (auto &t : drivers)
        t.join();
    EXPECT_EQ(total.load(), 4 * 20 * 16 * 8);
}

// Exceptions racing from several chunks at once: exactly one must win
// the rethrow, the rest are swallowed, and the pool must stay usable.
TEST(ThreadPoolStress, ConcurrentThrowsFirstOneWins)
{
    ThreadPool pool(4);
    for (int iter = 0; iter < 25; ++iter) {
        try {
            pool.parallelFor(64, [&](std::size_t, std::size_t) {
                throw std::runtime_error("chunk bomb");
            });
            FAIL() << "parallelFor swallowed every exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "chunk bomb");
        }
    }
    std::atomic<int> ok{ 0 };
    pool.parallelFor(32, [&](std::size_t lo, std::size_t hi) {
        ok.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(ok.load(), 32);
}

// A SerialGuard living inside a chunk body when an exception unwinds
// through it must restore the thread's region state: afterwards the
// same thread can run parallel work again (not forced inline).
TEST(ThreadPoolStress, SerialGuardUnwindsCleanlyThroughExceptions)
{
    ThreadPool pool(4);
    for (int iter = 0; iter < 25; ++iter) {
        EXPECT_FALSE(ThreadPool::inParallelRegion());
        try {
            ThreadPool::SerialGuard outer;
            pool.parallelFor(8, [&](std::size_t lo, std::size_t) {
                ThreadPool::SerialGuard inner;
                if (lo == 0)
                    throw std::logic_error("unwind through guards");
            });
        } catch (const std::logic_error &) {
        }
        EXPECT_FALSE(ThreadPool::inParallelRegion());
    }
    // The pool still fans out (chunk-count probe): with the guards
    // gone, a large loop is split into more than one chunk.
    std::mutex m;
    int calls = 0;
    pool.parallelFor(1000, [&](std::size_t, std::size_t) {
        const std::lock_guard<std::mutex> lock(m);
        ++calls;
    });
    EXPECT_GT(calls, 1);
}

// Stats-merge pattern under contention, as the systolic clone fan-out
// uses it: chunk-local accumulators folded under a mutex must lose
// nothing, regardless of interleaving.
TEST(ThreadPoolStress, ChunkLocalMergeLosesNothing)
{
    ThreadPool pool(4);
    for (int iter = 0; iter < 20; ++iter) {
        std::mutex m;
        std::uint64_t macs = 0, cycles = 0;
        pool.parallelFor(500, [&](std::size_t lo, std::size_t hi) {
            std::uint64_t local_macs = 0, local_cycles = 0;
            for (std::size_t i = lo; i < hi; ++i) {
                local_macs += i;
                local_cycles += 2 * i + 1;
            }
            const std::lock_guard<std::mutex> lock(m);
            macs += local_macs;
            cycles += local_cycles;
        });
        EXPECT_EQ(macs, 500ull * 499 / 2);
        EXPECT_EQ(cycles, 500ull * 500);
    }
}

// The bit-identical contract, end to end through a real kernel: the
// pooled tiled matmul must produce byte-identical output for 1 lane
// (SerialGuard) and N lanes, on the same pool, repeatedly.
TEST(ThreadPoolStress, MatmulBitIdenticalSerialVsParallel)
{
    ThreadPool pool(4);
    ThreadPool::setGlobalOverride(&pool);
    Matrix a(37, 53), b(53, 29);
    std::uint32_t state = 0x9e3779b9u;
    auto next = [&state] {
        state = state * 1664525u + 1013904223u;
        return static_cast<float>(static_cast<int>(state >> 16) - 32768) /
               4096.0f;
    };
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            a(i, j) = next();
    for (std::size_t i = 0; i < b.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j)
            b(i, j) = next();

    Matrix serial(1, 1);
    {
        ThreadPool::SerialGuard guard;
        serial = matmul(a, b);
    }
    for (int rep = 0; rep < 8; ++rep) {
        const Matrix parallel = matmul(a, b);
        ASSERT_EQ(parallel.rows(), serial.rows());
        ASSERT_EQ(parallel.cols(), serial.cols());
        for (std::size_t i = 0; i < serial.rows(); ++i)
            for (std::size_t j = 0; j < serial.cols(); ++j)
                ASSERT_TRUE(bitsEqual(parallel(i, j), serial(i, j)))
                    << "rep " << rep << " at (" << i << "," << j << ")";
    }
    ThreadPool::setGlobalOverride(nullptr);
}

// The annotate.hh shims must be callable in every build flavor: under
// TSan they add happens-before edges (extra sync is always sound);
// elsewhere they compile to nothing. A pure happens-before/after pair
// on a token the test owns is side-effect-free either way.
TEST(ThreadPoolStress, AnnotationShimsAreCallable)
{
    static_assert(PROSE_TSAN_ENABLED == 0 || PROSE_TSAN_ENABLED == 1,
                  "annotate.hh must define PROSE_TSAN_ENABLED");
    int token = 0;
    PROSE_ANNOTATE_HAPPENS_BEFORE(&token);
    PROSE_ANNOTATE_HAPPENS_AFTER(&token);
    SUCCEED();
}

// PROSE_THREADS=1 must yield a pool whose results match any larger
// pool bit for bit — the env-var path goes through the same
// parseThreadsSpec shim the global pool uses.
TEST(ThreadPoolStress, ProseThreadsOneMatchesLargerPools)
{
    ASSERT_EQ(setenv("PROSE_THREADS", "1", 1), 0);
    EXPECT_EQ(ThreadPool::configuredParallelism(), 1u);
    ASSERT_EQ(setenv("PROSE_THREADS", "5", 1), 0);
    EXPECT_EQ(ThreadPool::configuredParallelism(), 5u);
    ASSERT_EQ(unsetenv("PROSE_THREADS"), 0);

    // A 1-lane pool runs everything inline; results must match an
    // 8-lane pool bitwise through the pooled matmul path.
    Matrix a(23, 31), b(31, 17);
    std::uint32_t state = 0x51eddeadu;
    auto next = [&state] {
        state = state * 1664525u + 1013904223u;
        return static_cast<float>(static_cast<int>(state >> 16) - 32768) /
               2048.0f;
    };
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            a(i, j) = next();
    for (std::size_t i = 0; i < b.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j)
            b(i, j) = next();

    ThreadPool one(1), eight(8);
    ThreadPool::setGlobalOverride(&one);
    const Matrix from_one = matmul(a, b);
    ThreadPool::setGlobalOverride(&eight);
    const Matrix from_eight = matmul(a, b);
    ThreadPool::setGlobalOverride(nullptr);
    for (std::size_t i = 0; i < from_one.rows(); ++i)
        for (std::size_t j = 0; j < from_one.cols(); ++j)
            ASSERT_TRUE(bitsEqual(from_one(i, j), from_eight(i, j)))
                << "(" << i << "," << j << ")";
}

} // namespace
} // namespace prose
