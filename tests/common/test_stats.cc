/** @file Tests for descriptive statistics and rank correlation. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "common/stats.hh"

namespace prose {
namespace {

TEST(Stats, MeanOfConstants)
{
    EXPECT_DOUBLE_EQ(mean({ 4.0, 4.0, 4.0 }), 4.0);
}

TEST(Stats, MeanSimple)
{
    EXPECT_DOUBLE_EQ(mean({ 1.0, 2.0, 3.0, 4.0 }), 2.5);
}

TEST(Stats, StddevKnownValue)
{
    // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138.
    EXPECT_NEAR(stddev({ 2, 4, 4, 4, 5, 5, 7, 9 }), 2.13809, 1e-4);
}

TEST(Stats, StddevOfSingletonIsZero)
{
    EXPECT_DOUBLE_EQ(stddev({ 42.0 }), 0.0);
}

TEST(Stats, MinMax)
{
    const std::vector<double> xs{ 3.0, -1.0, 7.5, 2.0 };
    EXPECT_DOUBLE_EQ(minOf(xs), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 7.5);
}

TEST(Stats, PercentileMedianOdd)
{
    EXPECT_DOUBLE_EQ(percentile({ 5.0, 1.0, 3.0 }, 50.0), 3.0);
}

TEST(Stats, PercentileInterpolates)
{
    EXPECT_DOUBLE_EQ(percentile({ 0.0, 10.0 }, 25.0), 2.5);
}

TEST(Stats, PercentileExtremes)
{
    const std::vector<double> xs{ 2.0, 9.0, 4.0 };
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 9.0);
}

TEST(Stats, GeomeanKnownValue)
{
    EXPECT_NEAR(geomean({ 1.0, 4.0, 16.0 }), 4.0, 1e-12);
}

TEST(Stats, PearsonPerfectPositive)
{
    EXPECT_NEAR(pearson({ 1, 2, 3, 4 }, { 2, 4, 6, 8 }), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative)
{
    EXPECT_NEAR(pearson({ 1, 2, 3, 4 }, { 8, 6, 4, 2 }), -1.0, 1e-12);
}

TEST(Stats, PearsonUncorrelatedNearZero)
{
    Rng rng(99);
    std::vector<double> xs, ys;
    for (int i = 0; i < 5000; ++i) {
        xs.push_back(rng.gaussian());
        ys.push_back(rng.gaussian());
    }
    EXPECT_NEAR(pearson(xs, ys), 0.0, 0.05);
}

TEST(Stats, PearsonDegenerateSeriesIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({ 1, 1, 1 }, { 1, 2, 3 }), 0.0);
}

TEST(Stats, AverageRanksNoTies)
{
    const auto ranks = averageRanks({ 30.0, 10.0, 20.0 });
    EXPECT_DOUBLE_EQ(ranks[0], 3.0);
    EXPECT_DOUBLE_EQ(ranks[1], 1.0);
    EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(Stats, AverageRanksTiesShareMean)
{
    const auto ranks = averageRanks({ 5.0, 5.0, 1.0 });
    EXPECT_DOUBLE_EQ(ranks[0], 2.5);
    EXPECT_DOUBLE_EQ(ranks[1], 2.5);
    EXPECT_DOUBLE_EQ(ranks[2], 1.0);
}

TEST(Stats, SpearmanMonotonicNonlinearIsOne)
{
    // Spearman sees through monotone nonlinearity; Pearson does not.
    std::vector<double> xs, ys;
    for (int i = 1; i <= 20; ++i) {
        xs.push_back(i);
        ys.push_back(std::exp(0.5 * i));
    }
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
    EXPECT_LT(pearson(xs, ys), 0.9);
}

TEST(Stats, SpearmanAntitone)
{
    EXPECT_NEAR(spearman({ 1, 2, 3, 4, 5 }, { 10, 8, 6, 4, 2 }), -1.0,
                1e-12);
}

TEST(Stats, SpearmanInvariantToMonotoneTransform)
{
    Rng rng(123);
    std::vector<double> xs, ys;
    for (int i = 0; i < 100; ++i) {
        const double v = rng.gaussian();
        xs.push_back(v);
        ys.push_back(v + 0.5 * rng.gaussian());
    }
    std::vector<double> ys_cubed;
    for (double y : ys)
        ys_cubed.push_back(y * y * y);
    EXPECT_NEAR(spearman(xs, ys), spearman(xs, ys_cubed), 1e-12);
}

TEST(RunningStats, MatchesBatchStatistics)
{
    Rng rng(7);
    std::vector<double> xs;
    RunningStats rs;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-5.0, 5.0);
        xs.push_back(v);
        rs.add(v);
    }
    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
    EXPECT_DOUBLE_EQ(rs.min(), minOf(xs));
    EXPECT_DOUBLE_EQ(rs.max(), maxOf(xs));
}

TEST(RunningStats, EmptyIsSafe)
{
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats rs;
    rs.add(3.5);
    EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
    EXPECT_DOUBLE_EQ(rs.min(), 3.5);
    EXPECT_DOUBLE_EQ(rs.max(), 3.5);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

} // namespace
} // namespace prose
