/** @file Tests for the deterministic Xoshiro256ss generator. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.hh"

namespace prose {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= (v == -2);
        saw_hi |= (v == 2);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsApproximatelyStandard)
{
    Rng rng(13);
    const int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaledMoments)
{
    Rng rng(17);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ShufflePreservesMultiset)
{
    Rng rng(21);
    std::vector<int> v{ 1, 2, 3, 4, 5, 6, 7, 8 };
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng rng(23);
    std::vector<int> v(64);
    for (int i = 0; i < 64; ++i)
        v[i] = i;
    auto original = v;
    rng.shuffle(v);
    EXPECT_NE(v, original);
}

TEST(Rng, ForkDivergesFromParent)
{
    Rng parent(31);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace prose
