/** @file Tests for string utilities. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/strutil.hh"

namespace prose {
namespace {

TEST(Strutil, SplitBasic)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strutil, SplitKeepsEmptyFields)
{
    const auto parts = split(",x,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
}

TEST(Strutil, SplitNoSeparator)
{
    const auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strutil, TrimBothEnds)
{
    EXPECT_EQ(trim("  hello\t\n"), "hello");
}

TEST(Strutil, TrimAllWhitespace)
{
    EXPECT_EQ(trim(" \t \n"), "");
}

TEST(Strutil, TrimNoop)
{
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strutil, ToUpper)
{
    EXPECT_EQ(toUpper("AcDef123"), "ACDEF123");
}

TEST(Strutil, StartsWith)
{
    EXPECT_TRUE(startsWith("prose-config", "prose"));
    EXPECT_FALSE(startsWith("prose", "prose-config"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(Strutil, Join)
{
    EXPECT_EQ(join({ "a", "b", "c" }, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({ "only" }, ", "), "only");
}

// --- checked numeric parsing (the prose-lint checked-parse helpers) ---

TEST(CheckedParse, U64AcceptsPlainDigits)
{
    std::uint64_t value = 99;
    EXPECT_TRUE(parseU64("0", value));
    EXPECT_EQ(value, 0u);
    EXPECT_TRUE(parseU64("18446744073709551615", value));
    EXPECT_EQ(value, std::numeric_limits<std::uint64_t>::max());
    EXPECT_TRUE(parseU64("007", value));
    EXPECT_EQ(value, 7u);
}

TEST(CheckedParse, U64RejectsOverflowInsteadOfWrapping)
{
    // strtoull would clamp; istream >> would sign-wrap "-1". Both are
    // how a 20-digit typo becomes an 18-quintillion-entry allocation.
    std::uint64_t value = 0;
    EXPECT_FALSE(parseU64("18446744073709551616", value));
    EXPECT_FALSE(parseU64("99999999999999999999", value));
}

TEST(CheckedParse, U64RejectsSignsWhitespaceAndJunk)
{
    std::uint64_t value = 0;
    EXPECT_FALSE(parseU64("", value));
    EXPECT_FALSE(parseU64("-1", value));
    EXPECT_FALSE(parseU64("+1", value));
    EXPECT_FALSE(parseU64(" 1", value));
    EXPECT_FALSE(parseU64("1 ", value));
    EXPECT_FALSE(parseU64("12x", value));
    EXPECT_FALSE(parseU64("0x10", value));
    EXPECT_FALSE(parseU64("1e3", value));
}

TEST(CheckedParse, U32BoundsThe32BitRange)
{
    std::uint32_t value = 0;
    EXPECT_TRUE(parseU32("4294967295", value));
    EXPECT_EQ(value, std::numeric_limits<std::uint32_t>::max());
    EXPECT_FALSE(parseU32("4294967296", value));
    EXPECT_FALSE(parseU32("-1", value));
}

TEST(CheckedParse, DoubleAcceptsUsualForms)
{
    double value = 0.0;
    EXPECT_TRUE(parseDouble("1.5", value));
    EXPECT_DOUBLE_EQ(value, 1.5);
    EXPECT_TRUE(parseDouble("-2e-3", value));
    EXPECT_DOUBLE_EQ(value, -2e-3);
    EXPECT_TRUE(parseDouble(".5", value));
    EXPECT_DOUBLE_EQ(value, 0.5);
    EXPECT_TRUE(parseDouble("0", value));
    EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(CheckedParse, DoubleRejectsPartialAndPaddedParses)
{
    double value = 0.0;
    EXPECT_FALSE(parseDouble("", value));
    EXPECT_FALSE(parseDouble("1.5x", value));
    EXPECT_FALSE(parseDouble(" 1.5", value));
    EXPECT_FALSE(parseDouble("1.5 ", value));
    EXPECT_FALSE(parseDouble("--1", value));
}

TEST(CheckedParse, DoubleRejectsOverflowKeepsUnderflow)
{
    double value = 0.0;
    EXPECT_FALSE(parseDouble("1e999", value));
    EXPECT_FALSE(parseDouble("-1e999", value));
    // Gradual underflow to zero is an acceptable representation...
    EXPECT_TRUE(parseDouble("1e-999", value));
    EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(CheckedParse, FiniteDoubleRejectsNanAndInf)
{
    // "nan" passes every (rate < 0 || rate > 1) range check, which is
    // exactly how a corrupt campaign spec used to validate.
    double value = 0.0;
    EXPECT_FALSE(parseFiniteDouble("nan", value));
    EXPECT_FALSE(parseFiniteDouble("NaN", value));
    EXPECT_FALSE(parseFiniteDouble("inf", value));
    EXPECT_FALSE(parseFiniteDouble("-inf", value));
    EXPECT_FALSE(parseFiniteDouble("infinity", value));
    EXPECT_TRUE(parseFiniteDouble("0.25", value));
    EXPECT_DOUBLE_EQ(value, 0.25);
}

TEST(CheckedParse, DoubleAllowsNanInfWhenCallerWantsThem)
{
    double value = 0.0;
    EXPECT_TRUE(parseDouble("nan", value));
    EXPECT_TRUE(std::isnan(value));
    EXPECT_TRUE(parseDouble("inf", value));
    EXPECT_TRUE(std::isinf(value));
}

} // namespace
} // namespace prose
