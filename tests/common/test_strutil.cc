/** @file Tests for string utilities. */

#include <gtest/gtest.h>

#include "common/strutil.hh"

namespace prose {
namespace {

TEST(Strutil, SplitBasic)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strutil, SplitKeepsEmptyFields)
{
    const auto parts = split(",x,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
}

TEST(Strutil, SplitNoSeparator)
{
    const auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strutil, TrimBothEnds)
{
    EXPECT_EQ(trim("  hello\t\n"), "hello");
}

TEST(Strutil, TrimAllWhitespace)
{
    EXPECT_EQ(trim(" \t \n"), "");
}

TEST(Strutil, TrimNoop)
{
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strutil, ToUpper)
{
    EXPECT_EQ(toUpper("AcDef123"), "ACDEF123");
}

TEST(Strutil, StartsWith)
{
    EXPECT_TRUE(startsWith("prose-config", "prose"));
    EXPECT_FALSE(startsWith("prose", "prose-config"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(Strutil, Join)
{
    EXPECT_EQ(join({ "a", "b", "c" }, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({ "only" }, ", "), "only");
}

} // namespace
} // namespace prose
