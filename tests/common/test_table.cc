/** @file Tests for the table/CSV emitters. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace prose {
namespace {

TEST(Table, PrintsHeaderRuleAndRows)
{
    Table table({ "name", "value" });
    table.addRow({ "alpha", "1" });
    table.addRow({ "beta", "22" });
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, ColumnsAligned)
{
    Table table({ "a", "long-header" });
    table.addRow({ "xxxxxxxx", "1" });
    std::ostringstream os;
    table.print(os);
    // Both data columns start at the same offset in each line.
    std::istringstream lines(os.str());
    std::string header, rule, row;
    std::getline(lines, header);
    std::getline(lines, rule);
    std::getline(lines, row);
    EXPECT_EQ(header.find("long-header"), row.find("1"));
}

TEST(Table, CsvEscapesCommasAndQuotes)
{
    Table table({ "k", "v" });
    table.addRow({ "a,b", "say \"hi\"" });
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
    EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted)
{
    Table table({ "k" });
    table.addRow({ "plain" });
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "k\nplain\n");
}

TEST(Table, FmtFixedDecimals)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
    EXPECT_EQ(Table::fmt(-0.5, 1), "-0.5");
}

TEST(Table, FmtIntGroupsThousands)
{
    EXPECT_EQ(Table::fmtInt(16384), "16,384");
    EXPECT_EQ(Table::fmtInt(1000000), "1,000,000");
    EXPECT_EQ(Table::fmtInt(-4096), "-4,096");
    EXPECT_EQ(Table::fmtInt(7), "7");
}

TEST(TableDeathTest, RowArityMismatchPanics)
{
    Table table({ "a", "b" });
    EXPECT_DEATH(table.addRow({ "only-one" }), "arity");
}

} // namespace
} // namespace prose
