/**
 * @file
 * One-call cross-platform comparison harness: run a workload shape on a
 * ProSE configuration and the three commodity baselines, returning
 * runtimes, throughput, power, and efficiency ratios — the computation
 * behind Figures 1, 18, and 19, packaged for library users.
 */

#ifndef PROSE_BASELINE_COMPARISON_HH
#define PROSE_BASELINE_COMPARISON_HH

#include <string>
#include <vector>

#include "accel/perf_sim.hh"
#include "platform.hh"

namespace prose {

/** One platform's results on the workload. */
struct PlatformComparison
{
    std::string name;
    double seconds = 0.0; ///< accelerated-portion runtime
    double inferencesPerSecond = 0.0;
    double watts = 0.0;
    double efficiency = 0.0; ///< inferences/s/W

    /** Relative to ProSE (speedup > 1 means ProSE is faster). */
    double proseSpeedup = 0.0;
    double proseEfficiencyGain = 0.0;
};

/** Full comparison for one workload. */
struct ComparisonReport
{
    BertShape shape;
    PlatformComparison prose;
    std::vector<PlatformComparison> baselines; ///< A100, TPUv2, TPUv3

    /** Lookup a baseline row by name; fatal if absent. */
    const PlatformComparison &baseline(const std::string &name) const;
};

/**
 * Compare a ProSE configuration against the A100/TPUv2/TPUv3 models on
 * a workload. ProSE power is the whole-system figure (arrays + duty-
 * cycled host + DRAM).
 */
ComparisonReport comparePlatforms(const ProseConfig &config,
                                  const BertShape &shape);

} // namespace prose

#endif // PROSE_BASELINE_COMPARISON_HH
