/**
 * @file
 * Analytic baseline platform models. The paper measures a real A100 and
 * real Cloud TPUs; offline we model each platform as a per-op roofline:
 * matmuls run at a shape-dependent fraction of the platform's peak
 * FLOP/s, elementwise ops stream at a fraction of memory bandwidth, and
 * every op pays a fixed dispatch overhead. Constants are calibrated so
 * the Figure 3 runtime breakdown and the Figure 18/19 speedup and
 * efficiency bands land where the paper reports them; the *shapes*
 * (matmul share falling with length, efficiency collapse at long
 * lengths, ProSE's advantage growing with length) all emerge from the op
 * mix itself.
 */

#ifndef PROSE_BASELINE_PLATFORM_HH
#define PROSE_BASELINE_PLATFORM_HH

#include <map>
#include <memory>
#include <string>

#include "trace/op_trace.hh"

namespace prose {

/** Outcome of costing one op trace on a platform. */
struct PlatformResult
{
    double totalSeconds = 0.0;
    double acceleratedSeconds = 0.0; ///< excludes the Other category
    std::map<OpCategory, double> categorySeconds;
    double watts = 0.0;

    /** Fraction of total time per category (Figure 3 rows). */
    std::map<OpCategory, double> categoryFractions() const;
};

/** Interface every baseline platform implements. */
class PlatformModel
{
  public:
    virtual ~PlatformModel() = default;

    /** Human-readable platform name. */
    virtual const std::string &name() const = 0;

    /** Platform power draw under this load (measured TDP-style). */
    virtual double watts() const = 0;

    /** Seconds to execute one op. */
    virtual double opSeconds(const Op &op) const = 0;

    /** Cost a whole trace (ops execute back-to-back, as profiled). */
    PlatformResult costTrace(const OpTrace &trace) const;
};

/** Tuning constants shared by the concrete roofline models. */
struct RooflineSpec
{
    std::string name;
    double watts = 0.0;
    /** Effective FLOP/s for large dense matmuls. */
    double matmulFlops = 0.0;
    /** Effective FLOP/s for small-k batched matmuls. */
    double bmmFlops = 0.0;
    /** Effective streaming bytes/s for elementwise ops. */
    double elemBw = 0.0;
    /** Effective streaming bytes/s for softmax (reduction-heavy). */
    double softmaxBw = 0.0;
    /** Memory passes a GELU costs (TPUs approximate GELU with a chain
     *  of 10+ MulAdds because they lack a GELU unit — Section 3.2). */
    double geluPasses = 2.0;
    /** Fixed per-op dispatch overhead (kernel launch / UB turnaround). */
    double opOverheadSeconds = 0.0;
    /** Bytes per element as materialized by the framework. */
    double elemBytes = 4.0;
};

/** Generic roofline platform driven by a RooflineSpec. */
class RooflinePlatform : public PlatformModel
{
  public:
    explicit RooflinePlatform(RooflineSpec spec);

    const std::string &name() const override { return spec_.name; }
    double watts() const override { return spec_.watts; }
    double opSeconds(const Op &op) const override;

    const RooflineSpec &spec() const { return spec_; }

  private:
    RooflineSpec spec_;
};

/** The NVIDIA A100-SXM4 platform of Table 1. */
std::unique_ptr<PlatformModel> makeA100();

/** One Cloud TPUv2 device (4 chips / 8 cores). */
std::unique_ptr<PlatformModel> makeTpuV2();

/** One Cloud TPUv3 device (4 chips / 8 cores). */
std::unique_ptr<PlatformModel> makeTpuV3();

} // namespace prose

#endif // PROSE_BASELINE_PLATFORM_HH
