#include "platform.hh"

#include <algorithm>

#include "common/logging.hh"

namespace prose {

std::map<OpCategory, double>
PlatformResult::categoryFractions() const
{
    std::map<OpCategory, double> fractions;
    if (totalSeconds <= 0.0)
        return fractions;
    for (const auto &[category, seconds] : categorySeconds)
        fractions[category] = seconds / totalSeconds;
    return fractions;
}

PlatformResult
PlatformModel::costTrace(const OpTrace &trace) const
{
    PlatformResult result;
    result.watts = watts();
    for (const auto &op : trace.ops()) {
        const double seconds = opSeconds(op);
        result.totalSeconds += seconds;
        result.categorySeconds[op.category()] += seconds;
        if (op.category() != OpCategory::Other)
            result.acceleratedSeconds += seconds;
    }
    return result;
}

RooflinePlatform::RooflinePlatform(RooflineSpec spec)
    : spec_(std::move(spec))
{
    PROSE_ASSERT(spec_.matmulFlops > 0.0 && spec_.bmmFlops > 0.0 &&
                     spec_.elemBw > 0.0 && spec_.softmaxBw > 0.0,
                 "roofline spec has a zero rate");
}

double
RooflinePlatform::opSeconds(const Op &op) const
{
    const double elems = static_cast<double>(op.outputElems());
    double seconds = spec_.opOverheadSeconds;
    switch (op.kind) {
      case OpKind::MatMul:
        seconds += op.flops() / spec_.matmulFlops;
        break;
      case OpKind::Bmm:
        seconds += op.flops() / spec_.bmmFlops;
        break;
      case OpKind::MulAdd:
        // read two operands + write one.
        seconds += 3.0 * elems * spec_.elemBytes / spec_.elemBw;
        break;
      case OpKind::MatDiv:
        seconds += 2.0 * elems * spec_.elemBytes / spec_.elemBw;
        break;
      case OpKind::Exp:
        seconds += 2.0 * elems * spec_.elemBytes / spec_.elemBw;
        break;
      case OpKind::SoftmaxHost:
        // On commodity platforms the softmax reduction+divide runs as
        // its own (unfused) kernels over the score matrix.
        seconds += 4.0 * elems * spec_.elemBytes / spec_.softmaxBw;
        break;
      case OpKind::Gelu:
        seconds +=
            spec_.geluPasses * elems * spec_.elemBytes / spec_.elemBw;
        break;
      case OpKind::LayerNorm:
        seconds += 4.0 * elems * spec_.elemBytes / spec_.elemBw;
        break;
      case OpKind::Embed:
      case OpKind::Transpose:
        seconds += 2.0 * elems * spec_.elemBytes / spec_.elemBw;
        break;
    }
    return seconds;
}

std::unique_ptr<PlatformModel>
makeA100()
{
    // Calibration notes (len 512, batch 128, the paper's operating
    // point): the paper profiles eager-mode PyTorch/HuggingFace, whose
    // effective dense-matmul rate on an A100 is fp32/TF32-class after
    // framework and layout overheads (~7 TFLOP/s sustained), with
    // small-k attention BMMs near 3 TFLOP/s; elementwise kernels reach
    // ~300 GB/s effective of the 1555 GB/s HBM2 (launch gaps + fp32
    // materialization), softmax chains ~150 GB/s. This lands the
    // Figure 3 breakdown (~35-50% matmul share falling with length),
    // Figure 1's <1 inf/s/W at 512 tokens, and the Figure 18 speedup
    // band.
    RooflineSpec spec;
    spec.name = "A100";
    spec.watts = 395.0; // nvidia-smi measurement quoted in Section 4.1
    spec.matmulFlops = 7e12;
    spec.bmmFlops = 2.8e12;
    spec.elemBw = 300e9;
    spec.softmaxBw = 150e9;
    spec.geluPasses = 2.0; // native fused GELU kernel
    spec.opOverheadSeconds = 8e-6;
    spec.elemBytes = 4.0;
    return std::make_unique<RooflinePlatform>(std::move(spec));
}

std::unique_ptr<PlatformModel>
makeTpuV2()
{
    // One Cloud TPUv2 device: 4 chips (8 cores), 180 TFLOP/s peak,
    // 2.4 TB/s aggregate HBM. The weight-stationary 128x128 MXUs are
    // poorly utilized by BERT's matrices (k=64 attention BMMs fill half
    // the depth) and every op round-trips the Unified Buffer (the
    // paper's "global dataflow"); GELU has no hardware unit and costs a
    // 10+-MulAdd approximation chain.
    RooflineSpec spec;
    spec.name = "TPUv2";
    spec.watts = 1120.0; // 280 W/chip x 4 chips (Section 4.1)
    spec.matmulFlops = 4.5e12;
    spec.bmmFlops = 1.8e12;
    spec.elemBw = 200e9;
    spec.softmaxBw = 100e9;
    spec.geluPasses = 12.0; // 10+ MulAdd approximation chain
    spec.opOverheadSeconds = 10e-6;
    spec.elemBytes = 4.0;
    return std::make_unique<RooflinePlatform>(std::move(spec));
}

std::unique_ptr<PlatformModel>
makeTpuV3()
{
    // One Cloud TPUv3 device: 4 chips (8 cores), 420 TFLOP/s peak.
    // Roughly 2.3x the v2's compute and 1.4x its memory system, with
    // the same architectural pathologies on long-input BERT.
    RooflineSpec spec;
    spec.name = "TPUv3";
    spec.watts = 1600.0; // 4 chips x ~400 W board share
    spec.matmulFlops = 10e12;
    spec.bmmFlops = 4e12;
    spec.elemBw = 350e9;
    spec.softmaxBw = 180e9;
    spec.geluPasses = 12.0;
    spec.opOverheadSeconds = 10e-6;
    spec.elemBytes = 4.0;
    return std::make_unique<RooflinePlatform>(std::move(spec));
}

} // namespace prose
