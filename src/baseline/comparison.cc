#include "comparison.hh"

#include "common/logging.hh"
#include "power/power_model.hh"

namespace prose {

const PlatformComparison &
ComparisonReport::baseline(const std::string &name) const
{
    for (const PlatformComparison &row : baselines)
        if (row.name == name)
            return row;
    fatal("no baseline named '", name, "' in the comparison");
}

ComparisonReport
comparePlatforms(const ProseConfig &config, const BertShape &shape)
{
    ComparisonReport report;
    report.shape = shape;

    // ProSE.
    PerfSim sim(config, TimingModel(config.partialInputBuffer));
    const SimReport prose_run = sim.run(shape);
    const PowerModel power;
    report.prose.name = config.name;
    report.prose.seconds = prose_run.makespan;
    report.prose.inferencesPerSecond = prose_run.inferencesPerSecond();
    report.prose.watts = power.systemPowerWatts(
        config.groups, config.partialInputBuffer, prose_run.cpuDuty);
    report.prose.efficiency =
        report.prose.inferencesPerSecond / report.prose.watts;
    report.prose.proseSpeedup = 1.0;
    report.prose.proseEfficiencyGain = 1.0;

    // Baselines over the identical op trace.
    const OpTrace trace = synthesizeBertTrace(shape);
    for (const auto &factory : { &makeA100, &makeTpuV2, &makeTpuV3 }) {
        const auto platform = factory();
        const PlatformResult result = platform->costTrace(trace);
        PlatformComparison row;
        row.name = platform->name();
        row.seconds = result.acceleratedSeconds;
        row.inferencesPerSecond =
            static_cast<double>(shape.batch) / row.seconds;
        row.watts = platform->watts();
        row.efficiency = row.inferencesPerSecond / row.watts;
        row.proseSpeedup = row.seconds / report.prose.seconds;
        row.proseEfficiencyGain =
            report.prose.efficiency / row.efficiency;
        report.baselines.push_back(row);
    }
    return report;
}

} // namespace prose
