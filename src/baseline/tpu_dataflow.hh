/**
 * @file
 * Step-level comparison of ProSE's local dataflow against the TPUv2's
 * global dataflow (Figures 11 and 12). The paper walks a MatMul and a
 * MulAdd through both microarchitectures; this module counts the
 * microarchitectural steps and, more importantly, the storage traffic
 * each primitive generates:
 *
 *  - TPUv2 (weight-stationary + Unified Buffer): weights preload from
 *    the weight FIFO; activations and every intermediate round-trip the
 *    UB ("global dataflow"). A MulAdd costs two to three full trips.
 *  - ProSE (output-stationary streaming): operands stream from the
 *    host; intermediates never leave the PE accumulators ("local
 *    dataflow"). A MulAdd is one trip.
 *
 * An illustrative energy roll-up (Horowitz-style per-access costs)
 * quantifies why eliminating the UB buys the Figure 19 efficiency gap.
 */

#ifndef PROSE_BASELINE_TPU_DATAFLOW_HH
#define PROSE_BASELINE_TPU_DATAFLOW_HH

#include <cstdint>

namespace prose {

/** Traffic and step counts of executing one primitive. */
struct DataflowTrip
{
    /** Microarchitectural operations (the circled steps). */
    std::uint64_t steps = 0;
    /** Global-dataflow trips (host->...->storage round trips). */
    std::uint64_t trips = 0;
    /** Unified Buffer read+write bytes (TPU only; 0 on ProSE). */
    std::uint64_t unifiedBufferBytes = 0;
    /** Weight FIFO / DDR bytes (TPU only). */
    std::uint64_t weightBytes = 0;
    /** Host <-> accelerator stream bytes. */
    std::uint64_t hostStreamBytes = 0;

    /**
     * Illustrative data-movement energy (joules): UB accesses at a
     * large-SRAM cost, weight-FIFO/DDR and host-link transfers at
     * off-chip costs, using Horowitz-survey per-byte figures. Intended
     * for ratio comparisons, not absolute power claims.
     */
    double movementEnergyJoules() const;
};

/** Per-byte movement energies (documented, adjustable). */
struct MovementEnergySpec
{
    double unifiedBufferJPerByte = 10e-12; ///< multi-MB on-chip SRAM
    double weightJPerByte = 40e-12;        ///< DDR/off-chip weight path
    double hostLinkJPerByte = 25e-12;      ///< NVLink-class SerDes
};

/** C = A(m x k) x B(k x n) on a TPUv2-style s x s MXU (Figure 11(a)). */
DataflowTrip tpuMatMulTrip(std::uint64_t m, std::uint64_t k,
                           std::uint64_t n, std::uint64_t s = 128);

/**
 * The same MatMul on a ProSE s x s array (Figure 11(b)/(d)).
 * @param partial_input_buffer model the Figure 11(d) A-reuse buffer
 */
DataflowTrip proseMatMulTrip(std::uint64_t m, std::uint64_t k,
                             std::uint64_t n, std::uint64_t s,
                             bool partial_input_buffer = true);

/** C = a*A + B elementwise on the TPUv2 (Figure 12(a)): two to three
 *  global trips through Normalization/Accumulation and the UB. */
DataflowTrip tpuMulAddTrip(std::uint64_t m, std::uint64_t n,
                           std::uint64_t s = 128);

/** The same MulAdd fused into ProSE's simd mode (Figure 12(b)). */
DataflowTrip proseMulAddTrip(std::uint64_t m, std::uint64_t n,
                             std::uint64_t s);

} // namespace prose

#endif // PROSE_BASELINE_TPU_DATAFLOW_HH
