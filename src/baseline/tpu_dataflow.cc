#include "tpu_dataflow.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace prose {

namespace {

const MovementEnergySpec kEnergy{};

} // namespace

double
DataflowTrip::movementEnergyJoules() const
{
    return static_cast<double>(unifiedBufferBytes) *
               kEnergy.unifiedBufferJPerByte +
           static_cast<double>(weightBytes) * kEnergy.weightJPerByte +
           static_cast<double>(hostStreamBytes) *
               kEnergy.hostLinkJPerByte;
}

DataflowTrip
tpuMatMulTrip(std::uint64_t m, std::uint64_t k, std::uint64_t n,
              std::uint64_t s)
{
    PROSE_ASSERT(m && k && n && s, "empty matmul");
    const std::uint64_t tiles_k = ceilDiv(k, s);
    const std::uint64_t tiles_n = ceilDiv(n, s);

    DataflowTrip trip;
    // Weight-stationary: every (k-tile, n-tile) weight block preloads
    // from the weight FIFO (Figure 11(a) ops 1-2).
    trip.weightBytes = k * n * kBf16Bytes;

    // Matrix A streams host -> Unified Buffer once (op 3) ...
    trip.hostStreamBytes = m * k * kBf16Bytes;
    std::uint64_t ub = m * k; // the initial UB fill (writes)
    // ... then the global dataflow: for each weight block, read the
    // matching A columns from the UB (ops 4-5), and accumulate partial
    // results through the UB across k-tiles (ops 7-8): one partial
    // write per block, one re-read per non-first k-tile.
    ub += tiles_n * m * k;                // A re-reads per n-tile pass
    ub += tiles_k * m * n;                // partial writes
    ub += (tiles_k - 1) * m * n;          // partial re-reads
    ub += m * n;                          // final result read-out
    trip.unifiedBufferBytes = ub * kBf16Bytes;
    trip.hostStreamBytes += m * n * kBf16Bytes; // result to host

    // Steps: 8 distinct operations on the first block, 5 (ops 4-8) on
    // each subsequent block of the same weight load, 8 again per new
    // weight block. Count 8 per weight block + 5 per extra m-pass.
    const std::uint64_t tiles_m = ceilDiv(m, s);
    trip.steps = tiles_k * tiles_n * 8 +
                 tiles_k * tiles_n * (tiles_m > 0 ? tiles_m - 1 : 0) * 5;
    trip.trips = tiles_k; // accumulation passes through the UB
    return trip;
}

DataflowTrip
proseMatMulTrip(std::uint64_t m, std::uint64_t k, std::uint64_t n,
                std::uint64_t s, bool partial_input_buffer)
{
    PROSE_ASSERT(m && k && n && s, "empty matmul");
    const std::uint64_t tiles_m = ceilDiv(m, s);
    const std::uint64_t tiles_n = ceilDiv(n, s);

    DataflowTrip trip;
    // Figure 11(b): four operations per output tile (stream B, stream
    // A, MAC, write back); with the partial input buffer (d) the
    // A-half re-streams are replaced by local reuse (op 2 happens once
    // per tile row).
    trip.steps = tiles_m * tiles_n * 4;
    trip.trips = 1; // one local-dataflow trip, no intermediate storage
    std::uint64_t stream = m * k + k * n * tiles_m; // A once per row; B per row
    if (partial_input_buffer) {
        // B still restreams per tile row unless the host replays it;
        // the partial buffer removes the A restream (already once) and
        // the paper's I/O buffering lets B stream once per task.
        stream = m * k + k * n;
    }
    stream += m * n; // results
    trip.hostStreamBytes = stream * kBf16Bytes;
    return trip;
}

DataflowTrip
tpuMulAddTrip(std::uint64_t m, std::uint64_t n, std::uint64_t s)
{
    PROSE_ASSERT(m && n && s, "empty muladd");
    DataflowTrip trip;
    // Figure 12(a): trip 1 pushes A through the array (identity
    // weights) and Normalization to scale, writing a*A to the UB;
    // trip 2 streams B to stage it in Accumulation; trip 3 re-reads
    // a*A, adds, and writes the result. Three global trips, each
    // costing a UB write and (after the first) a UB read.
    trip.trips = 3;
    trip.steps = 7 * trip.trips;
    const std::uint64_t elems = m * n;
    std::uint64_t ub = 0;
    ub += elems;     // write a*A
    ub += elems;     // write staged B
    ub += 2 * elems; // read both operands back
    ub += elems;     // write a*A + B
    ub += elems;     // read result for the host
    trip.unifiedBufferBytes = ub * kBf16Bytes;
    trip.weightBytes = s * s * kBf16Bytes; // the all-ones weight load
    trip.hostStreamBytes = 3 * elems * kBf16Bytes; // A in, B in, C out
    return trip;
}

DataflowTrip
proseMulAddTrip(std::uint64_t m, std::uint64_t n, std::uint64_t s)
{
    PROSE_ASSERT(m && n && s, "empty muladd");
    const std::uint64_t tiles = ceilDiv(m, s) * ceilDiv(n, s);
    DataflowTrip trip;
    // Figure 12(b): six operations, one local trip; A is already in the
    // accumulators when fused behind a MatMul — counted here standalone
    // (stream A in, rotate-MUL, stream B into the vector register,
    // rotate-ADD, write back).
    trip.trips = 1;
    trip.steps = 6 * tiles;
    trip.hostStreamBytes = 3 * m * n * kBf16Bytes;
    return trip;
}

} // namespace prose
