/**
 * @file
 * Admission control for the open-loop front end. Every arriving (or
 * retrying) request gets a decision before it touches a bucket queue:
 *
 *  - Admit: there is room and the deadline is reachable;
 *  - ShedSelf: the request is hopeless — even an immediate solo
 *    dispatch (best-case service) would finish past its deadline, so
 *    running it only burns capacity others could use;
 *  - ShedOldest: the bounded queue is full. The *newest* request is
 *    admitted and the *oldest* queued one is shed instead: under
 *    sustained overload the oldest entry is the one closest to missing
 *    its deadline anyway, so evicting it maximizes the number of
 *    requests that can still make their SLO (and keeps the queue a
 *    sliding window over fresh work rather than a museum of doomed
 *    requests).
 *
 * Decisions are pure functions of (spec, request, queue depth,
 * best-case service): no RNG, so admission is trivially deterministic
 * and unit-testable in isolation.
 */

#ifndef PROSE_SERVE_ADMISSION_HH
#define PROSE_SERVE_ADMISSION_HH

#include <cstdint>

#include "request.hh"

namespace prose {

/** Admission policy knobs. */
struct AdmissionSpec
{
    /** Bounded queue depth across all buckets; 0 = unbounded. */
    std::uint64_t maxQueueDepth = 1024;
    /** Reject requests whose deadline is unreachable at admission. */
    bool deadlineAware = true;

    /** fatal() on nonsensical values (currently none possible; kept
     *  for spec-shape symmetry and forward compatibility). */
    void validate() const {}
};

/** What to do with one arriving request. */
enum class AdmissionDecision
{
    Admit,     ///< enqueue it
    ShedSelf,  ///< drop the arriving request (hopeless deadline)
    ShedOldest,///< queue full: drop the oldest queued, admit this one
};

const char *toString(AdmissionDecision decision);

/**
 * Decide admission for `request` at time `now`.
 *
 * @param queued requests currently held across all bucket queues
 * @param best_case_service modeled service seconds of a solo dispatch
 *        of this request's bucket (the fastest it could possibly run)
 */
AdmissionDecision admit(const AdmissionSpec &spec,
                        const Request &request, double now,
                        std::uint64_t queued,
                        double best_case_service);

} // namespace prose

#endif // PROSE_SERVE_ADMISSION_HH
