#include "admission.hh"

namespace prose {

const char *
toString(AdmissionDecision decision)
{
    switch (decision) {
      case AdmissionDecision::Admit:
        return "admit";
      case AdmissionDecision::ShedSelf:
        return "shed-self";
      case AdmissionDecision::ShedOldest:
        return "shed-oldest";
    }
    return "?";
}

AdmissionDecision
admit(const AdmissionSpec &spec, const Request &request, double now,
      std::uint64_t queued, double best_case_service)
{
    if (spec.deadlineAware &&
        now + best_case_service > request.deadlineSeconds)
        return AdmissionDecision::ShedSelf;
    if (spec.maxQueueDepth > 0 && queued >= spec.maxQueueDepth)
        return AdmissionDecision::ShedOldest;
    return AdmissionDecision::Admit;
}

} // namespace prose
