/**
 * @file
 * Cached batch service-time model. The serving layer needs "how long
 * will a batch of K sequences padded to length L take on one instance"
 * at every admission / batch-close decision; answering with a full
 * PerfSim discrete-event run each time would make the front end
 * quadratic in stream length. One instance of this class memoizes the
 * PerfSim makespan per (padded length, batch size) — a few dozen
 * distinct shapes for any bucket config — so the first query per shape
 * pays the simulation and the rest are a map lookup. PerfSim itself is
 * deterministic, so the cache is too.
 */

#ifndef PROSE_SERVE_SERVICE_MODEL_HH
#define PROSE_SERVE_SERVICE_MODEL_HH

#include <cstdint>
#include <map>
#include <tuple>
#include <utility>

#include "accel/perf_sim.hh"
#include "accel/prose_config.hh"
#include "trace/dataflow.hh"

namespace prose {

/** Service time of a batch on an instance whose link is shared. */
struct SharedServiceSeconds
{
    /** Worst-tenant batch duration (conservative: every co-tenant of
     *  the host runs the same shape concurrently). */
    double seconds = 0.0;
    /** Mean per-tenant link arbitration wait inside that duration. */
    double linkWaitSeconds = 0.0;
};

/** Deterministic per-batch latency oracle for one instance type. */
class ServiceModel
{
  public:
    /**
     * @param config the instance every batch runs on
     * @param model the served model's shape (batch/seqLen overridden
     *              per query)
     * @param dispatch_overhead fixed batch-close + DMA-descriptor cost
     *        added to every batch
     */
    ServiceModel(ProseConfig config, BertShape model,
                 double dispatch_overhead_seconds = 2e-5);

    /** Service seconds for `batch` sequences padded to `padded_len`. */
    double seconds(std::uint64_t padded_len, std::uint64_t batch) const;

    /**
     * Service seconds when `tenants` identical instances contend for
     * one physical link (PerfSim::runShared under the hood; see
     * docs/LINK_MODEL.md). tenants == 1 is exactly seconds() with a
     * zero link wait. Memoized like seconds().
     */
    SharedServiceSeconds sharedSeconds(std::uint64_t padded_len,
                                       std::uint64_t batch,
                                       std::uint32_t tenants) const;

    /**
     * Steady-state capacity estimate in requests/second for a stream of
     * `padded_len`-token requests batched at `batch` across `instances`
     * healthy instances. The chaos drills use this to pin offered load
     * at a utilization fraction.
     */
    double capacityPerSecond(std::uint64_t padded_len,
                             std::uint64_t batch,
                             std::uint32_t instances) const;

    /** Distinct shapes simulated so far (test/diagnostic hook). */
    std::size_t cachedShapes() const { return cache_.size(); }

    const ProseConfig &config() const { return config_; }
    const BertShape &model() const { return model_; }

  private:
    ProseConfig config_;
    BertShape model_;
    double dispatchOverheadSeconds_;
    /** (padded length, batch) -> seconds. Ordered map: deterministic
     *  iteration if anyone ever reports the cache. */
    mutable std::map<std::pair<std::uint64_t, std::uint64_t>, double>
        cache_;
    /** (padded length, batch, tenants) -> shared service time. */
    mutable std::map<
        std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>,
        SharedServiceSeconds>
        sharedCache_;
};

} // namespace prose

#endif // PROSE_SERVE_SERVICE_MODEL_HH
