/**
 * @file
 * Intrusive FIFO / priority queues over the serving simulator's request
 * arena. Requests live in one std::vector<Request> for the whole run
 * (stable RequestIds == indices); queues are just head/tail indices
 * threaded through each request's prev/next fields, in the style of the
 * HTTP/2 stream lists — no per-enqueue allocation, O(1) removal from
 * the middle (deadline expiry, oldest-first shedding), and fully
 * deterministic iteration order (arrival order within a priority band).
 *
 * A request may sit in at most one queue at a time; enqueueing a linked
 * request or unlinking an unlinked one panics.
 */

#ifndef PROSE_SERVE_QUEUE_HH
#define PROSE_SERVE_QUEUE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "request.hh"

namespace prose {

/** The backing store every queue indexes into. */
using RequestArena = std::vector<Request>;

/** Intrusive doubly-linked FIFO of requests. */
class RequestFifo
{
  public:
    bool empty() const { return head_ == kNoRequest; }
    std::uint32_t size() const { return size_; }

    /** Oldest request, or kNoRequest when empty. */
    std::int32_t front() const { return head_; }

    void
    pushBack(RequestArena &arena, RequestId id)
    {
        Request &request = arena[id];
        PROSE_ASSERT(request.prev == kNoRequest &&
                         request.next == kNoRequest &&
                         head_ != static_cast<std::int32_t>(id),
                     "request ", id, " is already queued");
        request.prev = tail_;
        request.next = kNoRequest;
        if (tail_ != kNoRequest)
            arena[static_cast<std::size_t>(tail_)].next =
                static_cast<std::int32_t>(id);
        else
            head_ = static_cast<std::int32_t>(id);
        tail_ = static_cast<std::int32_t>(id);
        ++size_;
    }

    /** Unlink and return the oldest request. Panics when empty. */
    RequestId
    popFront(RequestArena &arena)
    {
        PROSE_ASSERT(head_ != kNoRequest, "popFront on an empty queue");
        const RequestId id = static_cast<RequestId>(head_);
        remove(arena, id);
        return id;
    }

    /** Unlink `id` from anywhere in the queue (deadline expiry,
     *  oldest-first shed). Panics if `id` is not linked here. */
    void
    remove(RequestArena &arena, RequestId id)
    {
        Request &request = arena[id];
        PROSE_ASSERT(contains(arena, id),
                     "request ", id, " is not in this queue");
        if (request.prev != kNoRequest)
            arena[static_cast<std::size_t>(request.prev)].next =
                request.next;
        else
            head_ = request.next;
        if (request.next != kNoRequest)
            arena[static_cast<std::size_t>(request.next)].prev =
                request.prev;
        else
            tail_ = request.prev;
        request.prev = request.next = kNoRequest;
        --size_;
    }

    /** Linear membership probe (cheap for the assert-on-remove path:
     *  walks from `id`'s links, not the whole list). */
    bool
    contains(const RequestArena &arena, RequestId id) const
    {
        const Request &request = arena[id];
        if (request.prev == kNoRequest &&
            head_ != static_cast<std::int32_t>(id))
            return false;
        if (request.next == kNoRequest &&
            tail_ != static_cast<std::int32_t>(id))
            return false;
        return true;
    }

  private:
    std::int32_t head_ = kNoRequest;
    std::int32_t tail_ = kNoRequest;
    std::uint32_t size_ = 0;
};

/**
 * A small fixed set of priority bands, FIFO within each. Pop serves the
 * highest band first; shedding takes the oldest request of the lowest
 * band first (bulk work pays for overload before latency-sensitive
 * work does).
 */
class PriorityRequestQueue
{
  public:
    /** Priority bands 0..kBands-1; higher values clamp to the top. */
    static constexpr std::uint32_t kBands = 4;

    static std::uint32_t
    band(std::uint32_t priority)
    {
        return priority < kBands ? priority : kBands - 1;
    }

    bool
    empty() const
    {
        for (const RequestFifo &fifo : bands_)
            if (!fifo.empty())
                return false;
        return true;
    }

    std::uint32_t
    size() const
    {
        std::uint32_t total = 0;
        for (const RequestFifo &fifo : bands_)
            total += fifo.size();
        return total;
    }

    void
    push(RequestArena &arena, RequestId id)
    {
        bands_[band(arena[id].priority)].pushBack(arena, id);
    }

    /** Oldest request of the highest non-empty band; kNoRequest when
     *  empty. */
    std::int32_t
    front() const
    {
        for (std::uint32_t b = kBands; b-- > 0;)
            if (!bands_[b].empty())
                return bands_[b].front();
        return kNoRequest;
    }

    RequestId
    pop(RequestArena &arena)
    {
        for (std::uint32_t b = kBands; b-- > 0;)
            if (!bands_[b].empty())
                return bands_[b].popFront(arena);
        panic("pop on an empty priority queue");
    }

    /** Oldest request of the lowest non-empty band (the shed victim);
     *  kNoRequest when empty. */
    std::int32_t
    shedVictim() const
    {
        for (std::uint32_t b = 0; b < kBands; ++b)
            if (!bands_[b].empty())
                return bands_[b].front();
        return kNoRequest;
    }

    void
    remove(RequestArena &arena, RequestId id)
    {
        bands_[band(arena[id].priority)].remove(arena, id);
    }

  private:
    std::array<RequestFifo, kBands> bands_{};
};

} // namespace prose

#endif // PROSE_SERVE_QUEUE_HH
