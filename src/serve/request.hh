/**
 * @file
 * Per-request lifecycle of the open-loop serving front end. A request is
 * one protein sequence submitted by a user at a wall-clock arrival time;
 * it moves through an explicit state machine
 *
 *   QUEUED -> ADMITTED -> BATCHED -> RUNNING -> { DONE, TIMED_OUT,
 *                                                 SHED, RETRIED }
 *
 * where RETRIED loops back to QUEUED (a degraded instance dropped the
 * work and the request re-enters admission after backoff). DONE,
 * TIMED_OUT and SHED are terminal; every admitted request must reach
 * exactly one of them — the serving simulator asserts this conservation
 * law, which is what "zero lost requests" means under chaos.
 *
 * Transitions are validated against an explicit legality table
 * (transition() panics on an illegal edge) and timestamped, so the
 * report layer can decompose latency into queueing / batching / service
 * time without re-deriving the schedule.
 */

#ifndef PROSE_SERVE_REQUEST_HH
#define PROSE_SERVE_REQUEST_HH

#include <cstdint>
#include <string>

namespace prose {

/** Dense request handle: an index into the serving simulator's arena. */
using RequestId = std::uint32_t;

/** Sentinel for "no request" in intrusive links. */
constexpr std::int32_t kNoRequest = -1;

/** Lifecycle states (see file header for the legal edges). */
enum class RequestState : std::uint8_t
{
    Queued,   ///< arrived, waiting for the admission decision
    Admitted, ///< accepted into a length-bucket queue
    Batched,  ///< member of a closed batch awaiting dispatch
    Running,  ///< its batch is executing on an instance
    Done,     ///< completed within its deadline (terminal)
    TimedOut, ///< missed its deadline (terminal)
    Shed,     ///< dropped by admission/overload/retry budget (terminal)
    Retried,  ///< instance died mid-batch; re-queues after backoff
};

const char *toString(RequestState state);

/** True for the three states a request can end the run in. */
bool isTerminal(RequestState state);

/** One in-flight user request. */
struct Request
{
    RequestId id = 0;
    double arrivalSeconds = 0.0;  ///< open-loop arrival time
    std::uint64_t residues = 0;   ///< protein length (pre-CLS/SEP)
    std::uint32_t priority = 0;   ///< higher serves first (0 = bulk)
    double deadlineSeconds = 0.0; ///< absolute SLO deadline

    RequestState state = RequestState::Queued;
    std::uint32_t attempts = 0;   ///< dispatch attempts so far

    /** @name Transition timestamps (-1 until reached) @{ */
    double admittedSeconds = -1.0;
    double batchedSeconds = -1.0;
    double startedSeconds = -1.0;
    double finishedSeconds = -1.0; ///< set at every terminal transition
    /** @} */

    std::int32_t instance = -1;   ///< executing instance, -1 if none

    /** @name Intrusive queue links (see serve/queue.hh) @{ */
    std::int32_t prev = kNoRequest;
    std::int32_t next = kNoRequest;
    /** @} */

    /** End-to-end latency; only meaningful once terminal. */
    double latencySeconds() const
    {
        return finishedSeconds - arrivalSeconds;
    }
};

/**
 * Move a request along one legal edge at simulated time `now`,
 * timestamping the transition. Panics on an edge outside the lifecycle
 * diagram — an illegal transition is a serving-layer bug, never user
 * input.
 */
void transition(Request &request, RequestState to, double now);

/** True if `from -> to` is a legal lifecycle edge. */
bool transitionAllowed(RequestState from, RequestState to);

} // namespace prose

#endif // PROSE_SERVE_REQUEST_HH
