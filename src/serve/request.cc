#include "request.hh"

#include "common/logging.hh"

namespace prose {

const char *
toString(RequestState state)
{
    switch (state) {
      case RequestState::Queued:
        return "QUEUED";
      case RequestState::Admitted:
        return "ADMITTED";
      case RequestState::Batched:
        return "BATCHED";
      case RequestState::Running:
        return "RUNNING";
      case RequestState::Done:
        return "DONE";
      case RequestState::TimedOut:
        return "TIMED_OUT";
      case RequestState::Shed:
        return "SHED";
      case RequestState::Retried:
        return "RETRIED";
    }
    return "?";
}

bool
isTerminal(RequestState state)
{
    return state == RequestState::Done ||
           state == RequestState::TimedOut ||
           state == RequestState::Shed;
}

bool
transitionAllowed(RequestState from, RequestState to)
{
    switch (from) {
      case RequestState::Queued:
        // Admission either accepts, sheds (bounded queue / hopeless
        // deadline), or times out a request that expired while waiting.
        return to == RequestState::Admitted ||
               to == RequestState::Shed || to == RequestState::TimedOut;
      case RequestState::Admitted:
        // From a bucket queue: joins a closing batch, is shed
        // oldest-first under overload, or expires waiting.
        return to == RequestState::Batched ||
               to == RequestState::Shed || to == RequestState::TimedOut;
      case RequestState::Batched:
        // A formed batch re-checks deadlines before dispatch.
        return to == RequestState::Running ||
               to == RequestState::TimedOut;
      case RequestState::Running:
        // Completion (in or out of SLO) or an instance death.
        return to == RequestState::Done ||
               to == RequestState::TimedOut ||
               to == RequestState::Retried;
      case RequestState::Retried:
        // Backoff elapsed -> re-enter admission; budget/deadline
        // exhausted -> shed (accounted, never silently lost).
        return to == RequestState::Queued ||
               to == RequestState::Shed || to == RequestState::TimedOut;
      case RequestState::Done:
      case RequestState::TimedOut:
      case RequestState::Shed:
        return false; // terminal
    }
    return false;
}

void
transition(Request &request, RequestState to, double now)
{
    PROSE_ASSERT(transitionAllowed(request.state, to),
                 "illegal request lifecycle edge ",
                 toString(request.state), " -> ", toString(to),
                 " (request ", request.id, " at t=", now, ")");
    request.state = to;
    switch (to) {
      case RequestState::Admitted:
        request.admittedSeconds = now;
        break;
      case RequestState::Batched:
        request.batchedSeconds = now;
        break;
      case RequestState::Running:
        request.startedSeconds = now;
        ++request.attempts;
        break;
      case RequestState::Done:
      case RequestState::TimedOut:
      case RequestState::Shed:
        request.finishedSeconds = now;
        break;
      case RequestState::Queued:
      case RequestState::Retried:
        break;
    }
}

} // namespace prose
