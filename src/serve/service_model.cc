#include "service_model.hh"

#include "common/logging.hh"

namespace prose {

ServiceModel::ServiceModel(ProseConfig config, BertShape model,
                           double dispatch_overhead_seconds)
    : config_(std::move(config)), model_(model),
      dispatchOverheadSeconds_(dispatch_overhead_seconds)
{
    config_.validate();
    PROSE_ASSERT(dispatchOverheadSeconds_ >= 0.0,
                 "negative dispatch overhead");
}

double
ServiceModel::seconds(std::uint64_t padded_len,
                      std::uint64_t batch) const
{
    PROSE_ASSERT(padded_len > 0 && batch > 0,
                 "service query for an empty batch");
    const auto key = std::make_pair(padded_len, batch);
    const auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;
    BertShape shape = model_;
    shape.seqLen = padded_len;
    shape.batch = batch;
    const double service =
        PerfSim(config_).run(shape).makespan + dispatchOverheadSeconds_;
    cache_.emplace(key, service);
    return service;
}

SharedServiceSeconds
ServiceModel::sharedSeconds(std::uint64_t padded_len,
                            std::uint64_t batch,
                            std::uint32_t tenants) const
{
    PROSE_ASSERT(tenants > 0, "shared service query with zero tenants");
    if (tenants == 1)
        return SharedServiceSeconds{ seconds(padded_len, batch), 0.0 };
    PROSE_ASSERT(padded_len > 0 && batch > 0,
                 "service query for an empty batch");
    const auto key = std::make_tuple(padded_len, batch, tenants);
    const auto it = sharedCache_.find(key);
    if (it != sharedCache_.end())
        return it->second;
    BertShape shape = model_;
    shape.seqLen = padded_len;
    shape.batch = batch;
    std::vector<SimReport> per_tenant;
    const SimReport combined = PerfSim(config_).runShared(
        std::vector<BertShape>(tenants, shape), &per_tenant);
    SharedServiceSeconds shared;
    // All tenants run the same shape, but arbitration order makes the
    // slots finish at slightly different times; charge the worst one.
    shared.seconds = combined.makespan + dispatchOverheadSeconds_;
    shared.linkWaitSeconds =
        combined.linkWaitSeconds / static_cast<double>(tenants);
    sharedCache_.emplace(key, shared);
    return shared;
}

double
ServiceModel::capacityPerSecond(std::uint64_t padded_len,
                                std::uint64_t batch,
                                std::uint32_t instances) const
{
    PROSE_ASSERT(instances > 0, "capacity of zero instances");
    return static_cast<double>(batch * instances) /
           seconds(padded_len, batch);
}

} // namespace prose
