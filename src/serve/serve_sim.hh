/**
 * @file
 * The open-loop serving simulator: an explicit-next-event loop in front
 * of the PerfSim-backed service model that turns "a batch takes X
 * seconds" into "millions of users see these tail latencies while
 * instances die".
 *
 * One run composes the whole serve stack:
 *
 *   arrivals (serve/arrival.hh, seeded)  ->  admission (bounded queue,
 *   deadline-aware, oldest-first shed)  ->  dynamic batcher
 *   (serve/serve_batcher.hh, SLO-aware close, overload degradation)
 *   ->  instance pool (per-instance busy/free/dead, lowest-free-index
 *   dispatch)  ->  completion / chaos (FaultInjector instance kills,
 *   timed or arrival-indexed; in-flight work of a dead instance retries
 *   with exponential backoff + deterministic jitter or is accounted
 *   shed/timed-out).
 *
 * Everything is simulated virtual time on one thread: a run is
 * bit-identical for any PROSE_THREADS and any host, which is what lets
 * the chaos acceptance test pin "SLO retention >= 0.9" as an equality-
 * grade regression gate rather than a flaky statistical bound.
 *
 * Conservation law: every generated request ends in exactly one of
 * DONE / TIMED_OUT / SHED. ServeReport::lost() is asserted zero at the
 * end of every run — a request the chaos machinery loses track of is a
 * simulator bug, not a statistic.
 */

#ifndef PROSE_SERVE_SERVE_SIM_HH
#define PROSE_SERVE_SERVE_SIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "accel/prose_config.hh"
#include "admission.hh"
#include "arrival.hh"
#include "fault/fault_injector.hh"
#include "request.hh"
#include "serve_batcher.hh"
#include "trace/dataflow.hh"

namespace prose {

/** Retry policy for work dropped by a dying instance. */
struct ServeRetrySpec
{
    /** Total dispatch attempts per request (1 = never retry). */
    std::uint32_t maxAttempts = 3;
    double backoffSeconds = 200e-6; ///< delay before the first retry
    double backoffFactor = 2.0;     ///< growth per subsequent retry
    /** Deterministic jitter: uniform in [0, fraction] of the delay,
     *  keyed on (seed, request id, attempt) — independent of event
     *  order, so replays stay bit-identical. */
    double jitterFraction = 0.5;

    void validate() const;

    /** Backoff + jitter before retry number `retry` (0-based) of
     *  request `id` under stream seed `seed`. */
    double delayFor(std::uint32_t retry, std::uint64_t seed,
                    RequestId id) const;
};

/** Everything one serving run needs. */
struct ServeSpec
{
    ArrivalSpec arrivals;
    ServeBatcherSpec batcher;
    AdmissionSpec admission;
    ServeRetrySpec retry;

    /** Default per-request latency SLO (deadline = arrival + slo). */
    double sloSeconds = 0.05;

    /** The serving fleet: identical instances. */
    std::uint32_t instanceCount = 4;
    ProseConfig instance = ProseConfig::bestPerf();

    /**
     * Instances whose transfers share one physical host link. 1 (the
     * default) keeps every instance on a dedicated link — the legacy
     * uniform-progress model, bit-identical to before the knob
     * existed. K > 1 prices every batch as if K tenants stream the
     * same shape concurrently through PerfSim::runShared's
     * deterministic link arbitration, and the per-request link wait
     * lands in ServeReport::linkWaitSeconds (docs/LINK_MODEL.md).
     */
    std::uint32_t linkTenantsPerHost = 1;

    /** Served model shape (batch/seqLen overridden per bucket batch). */
    BertShape model{ 2, 768, 12, 3072, 1, 128 };

    /** Batch-close + DMA-descriptor overhead per dispatch. */
    double dispatchOverheadSeconds = 2e-5;

    void validate() const;
};

/** Aggregated result of one serving run. */
struct ServeReport
{
    /** @name Request accounting (conservation: see lost()) @{ */
    std::uint64_t offered = 0;   ///< requests in the arrival stream
    std::uint64_t done = 0;      ///< completed within deadline
    std::uint64_t timedOut = 0;  ///< missed deadline (any stage)
    std::uint64_t shed = 0;      ///< dropped by policy (any stage)
    /** @} */

    /** @name Drop/miss decomposition @{ */
    std::uint64_t shedAdmission = 0;   ///< hopeless deadline at admit
    std::uint64_t shedOverflow = 0;    ///< bounded-queue oldest-first
    std::uint64_t shedRetryBudget = 0; ///< attempts exhausted
    std::uint64_t expiredAtClose = 0;  ///< timed out inside a batch
    std::uint64_t completedLate = 0;   ///< ran but finished past SLO
    std::uint64_t timedOutOnRetry = 0; ///< deadline died with instance
    /** @} */

    /** @name Chaos/retry accounting @{ */
    std::uint64_t retries = 0;         ///< re-queued dispatch attempts
    std::uint32_t instancesKilled = 0;
    /** @} */

    /** @name Batching/queueing shape @{ */
    std::uint64_t batches = 0;
    double meanBatchFill = 0.0;   ///< sequences per batch / maxBatch
    std::uint64_t maxQueueDepthSeen = 0;
    /** @} */

    /** @name Link contention (zero unless linkTenantsPerHost > 1) @{ */
    /** Summed per-batch mean link arbitration wait (the contended
     *  service model's per-tenant share, once per dispatched batch). */
    double linkWaitSeconds = 0.0;
    /** @} */

    /** @name Latency + goodput @{ */
    double p50Seconds = 0.0;   ///< over all completed requests
    double p99Seconds = 0.0;
    double p999Seconds = 0.0;
    double horizonSeconds = 0.0;    ///< last terminal event
    double goodputPerSecond = 0.0;  ///< done / horizon
    /** SLO attainment over *offered* load: done / offered. */
    double sloAttainment = 0.0;
    /** @} */

    /** Latencies of completed requests, arrival order (percentile
     *  source; kept for richer reporting downstream). */
    std::vector<double> latencies;

    /** Requests unaccounted for — asserted zero after every run. */
    std::uint64_t lost() const
    {
        return offered - done - timedOut - shed;
    }

    /** Canonical multi-line text form; bit-identical across replays of
     *  the same spec (the determinism-test comparison unit). */
    std::string describe() const;
};

/**
 * SLO-retention ratio of a chaos run against its healthy twin:
 * chaos goodput / healthy goodput. The headline "millions of users"
 * robustness metric; 1.0 means the fleet hid the failure entirely.
 */
double sloRetention(const ServeReport &healthy,
                    const ServeReport &chaos);

/** The serving front end. */
class ServeSim
{
  public:
    explicit ServeSim(ServeSpec spec);

    /** Healthy run: no chaos. */
    ServeReport run() const;

    /**
     * Run under a fault campaign. Only instance kills apply to the
     * serving layer (timed kills fire at their simulated second;
     * arrival-indexed kills fire when request #N arrives); link/array
     * faults belong to the per-batch PerfSim underneath and are out of
     * scope here. A null injector reproduces run() exactly.
     */
    ServeReport run(FaultInjector *injector) const;

    const ServeSpec &spec() const { return spec_; }

  private:
    ServeSpec spec_;
};

} // namespace prose

#endif // PROSE_SERVE_SERVE_SIM_HH
