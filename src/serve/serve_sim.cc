#include "serve_sim.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "accel/batcher.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "service_model.hh"

namespace prose {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** One serving instance's scheduling state inside the event loop. */
struct InstanceState
{
    bool dead = false;
    bool busy = false;
    double freeAt = 0.0;   ///< completion time while busy
    double killAt = kInf;  ///< resolved kill time (timed or arrival)
    ClosedBatch inFlight;
};

/** Event categories in deterministic same-time processing order. */
enum class EventKind
{
    Kill,       ///< an instance dies (chaos first: work gets dropped)
    Completion, ///< a busy instance finishes its batch
    RetryReady, ///< a backed-off request re-enters admission
    Arrival,    ///< the next open-loop request arrives
    CloseTimer, ///< a bucket's latest safe close time has come
    None,
};

} // namespace

void
ServeRetrySpec::validate() const
{
    if (maxAttempts == 0)
        fatal("serve retry: max_attempts must be at least 1");
    if (!(backoffSeconds >= 0.0) || !std::isfinite(backoffSeconds))
        fatal("serve retry: negative or non-finite backoff");
    if (!(backoffFactor >= 1.0) || !std::isfinite(backoffFactor))
        fatal("serve retry: backoff factor must be >= 1");
    if (!(jitterFraction >= 0.0) || !(jitterFraction <= 1.0))
        fatal("serve retry: jitter fraction must be in [0, 1]");
}

double
ServeRetrySpec::delayFor(std::uint32_t retry, std::uint64_t seed,
                         RequestId id) const
{
    double delay = backoffSeconds;
    for (std::uint32_t i = 0; i < retry; ++i)
        delay *= backoffFactor;
    if (jitterFraction > 0.0) {
        // Keyed on (seed, id, retry): the draw is independent of event
        // order, so replays and thread counts cannot perturb it.
        Rng rng(seed ^
                (static_cast<std::uint64_t>(id) *
                     0x9e3779b97f4a7c15ull +
                 retry));
        delay *= 1.0 + jitterFraction * rng.uniform();
    }
    return delay;
}

void
ServeSpec::validate() const
{
    arrivals.validate();
    batcher.validate();
    admission.validate();
    retry.validate();
    if (!(sloSeconds > 0.0) || !std::isfinite(sloSeconds))
        fatal("serve: SLO must be a positive number of seconds");
    if (instanceCount == 0)
        fatal("serve: zero instances");
    if (linkTenantsPerHost == 0)
        fatal("serve: zero link tenants per host");
    if (!(dispatchOverheadSeconds >= 0.0))
        fatal("serve: negative dispatch overhead");
}

std::string
ServeReport::describe() const
{
    std::ostringstream os;
    os.precision(12);
    os << "serve: offered=" << offered << " done=" << done
       << " timed_out=" << timedOut << " shed=" << shed
       << " lost=" << lost() << '\n'
       << "shed: admission=" << shedAdmission
       << " overflow=" << shedOverflow
       << " retry_budget=" << shedRetryBudget << '\n'
       << "timeout: at_close=" << expiredAtClose
       << " late=" << completedLate << " on_retry=" << timedOutOnRetry
       << '\n'
       << "chaos: retries=" << retries
       << " instances_killed=" << instancesKilled << '\n'
       << "link: wait=" << linkWaitSeconds << "s\n"
       << "batches: count=" << batches << " mean_fill=" << meanBatchFill
       << " max_queue_depth=" << maxQueueDepthSeen << '\n'
       << "latency: p50=" << p50Seconds << "s p99=" << p99Seconds
       << "s p999=" << p999Seconds << "s\n"
       << "goodput: " << goodputPerSecond
       << "/s attainment=" << sloAttainment
       << " horizon=" << horizonSeconds << "s\n";
    return os.str();
}

double
sloRetention(const ServeReport &healthy, const ServeReport &chaos)
{
    PROSE_ASSERT(healthy.goodputPerSecond > 0.0,
                 "SLO retention against a zero-goodput healthy run");
    return chaos.goodputPerSecond / healthy.goodputPerSecond;
}

ServeSim::ServeSim(ServeSpec spec) : spec_(std::move(spec))
{
    spec_.validate();
}

ServeReport
ServeSim::run() const
{
    return run(nullptr);
}

ServeReport
ServeSim::run(FaultInjector *injector) const
{
    ServeReport report;
    RequestArena arena = generateArrivals(spec_.arrivals, spec_.sloSeconds);
    report.offered = arena.size();

    const ServiceModel model(spec_.instance, spec_.model,
                             spec_.dispatchOverheadSeconds);
    ServeBatcher batcher(spec_.batcher, model);

    std::vector<InstanceState> instances(spec_.instanceCount);
    if (injector != nullptr) {
        for (std::uint32_t i = 0; i < spec_.instanceCount; ++i) {
            double kill_at = injector->instanceKillSeconds(i);
            const std::uint64_t kill_idx = injector->instanceKillArrival(i);
            if (kill_idx != FaultInjector::kNoArrivalKill &&
                kill_idx < arena.size())
                kill_at = std::min(kill_at,
                                   arena[kill_idx].arrivalSeconds);
            instances[i].killAt = kill_at;
        }
    }

    // Pending retries ordered by (ready time, request id): a std::set
    // gives the event loop a deterministic earliest-first view with
    // O(log n) insert and no heap-order ambiguity on ties.
    std::set<std::pair<double, RequestId>> retryQueue;

    double now = 0.0;
    double fill_sum = 0.0;
    std::size_t next_arrival = 0;

    const auto bucketLen = [&](const Request &request) {
        return bucketForTokens(request.residues + 2,
                               spec_.batcher.buckets);
    };

    // Admission decision for one QUEUED request (fresh arrival or a
    // retry re-entering the front door).
    const auto admitOne = [&](RequestId id, double at) {
        Request &request = arena[id];
        const double best_case = model.seconds(bucketLen(request), 1);
        const AdmissionDecision decision =
            admit(spec_.admission, request, at, batcher.queued(),
                  best_case);
        if (decision == AdmissionDecision::ShedSelf) {
            transition(request, RequestState::Shed, at);
            ++report.shedAdmission;
            ++report.shed;
            return;
        }
        if (decision == AdmissionDecision::ShedOldest) {
            const std::int32_t victim = batcher.shedVictim(arena);
            PROSE_ASSERT(victim != kNoRequest,
                         "full queue with no shed victim");
            const RequestId victim_id = static_cast<RequestId>(victim);
            batcher.remove(arena, victim_id);
            transition(arena[victim_id], RequestState::Shed, at);
            ++report.shedOverflow;
            ++report.shed;
        }
        transition(request, RequestState::Admitted, at);
        batcher.enqueue(arena, id);
        report.maxQueueDepthSeen =
            std::max(report.maxQueueDepthSeen, batcher.queued());
    };

    // A dying instance drops its in-flight batch member: schedule a
    // backed-off retry, or account the loss honestly.
    const auto dropWork = [&](RequestId id, double at) {
        Request &request = arena[id];
        transition(request, RequestState::Retried, at);
        if (request.attempts >= spec_.retry.maxAttempts) {
            transition(request, RequestState::Shed, at);
            ++report.shedRetryBudget;
            ++report.shed;
            return;
        }
        const double delay = spec_.retry.delayFor(
            request.attempts - 1, spec_.arrivals.seed, id);
        const double ready_at = at + delay;
        const double best_case = model.seconds(bucketLen(request), 1);
        if (ready_at + best_case > request.deadlineSeconds) {
            transition(request, RequestState::TimedOut, at);
            ++report.timedOutOnRetry;
            ++report.timedOut;
            return;
        }
        retryQueue.emplace(ready_at, id);
        ++report.retries;
    };

    const auto freeAliveInstance = [&]() -> std::int32_t {
        for (std::uint32_t i = 0; i < instances.size(); ++i)
            if (!instances[i].dead && !instances[i].busy)
                return static_cast<std::int32_t>(i);
        return -1;
    };

    // Close and dispatch every batch that should go out at time `at`.
    // `force` is the end-of-stream flush: no arrivals or retries remain,
    // so waiting for fuller batches can only cost deadline slack.
    const auto dispatchReady = [&](double at, bool force) {
        for (;;) {
            const std::int32_t slot = freeAliveInstance();
            if (slot < 0 || batcher.queued() == 0)
                return;
            ClosedBatch batch;
            if (!batcher.close(arena, at, batch, force))
                return;
            report.expiredAtClose += batch.expired.size();
            report.timedOut += batch.expired.size();
            if (batch.members.empty())
                continue; // every member expired; nothing to run
            InstanceState &instance =
                instances[static_cast<std::size_t>(slot)];
            for (const RequestId id : batch.members) {
                transition(arena[id], RequestState::Running, at);
                arena[id].instance = slot;
            }
            instance.busy = true;
            if (spec_.linkTenantsPerHost > 1) {
                // Price the batch under worst-case link sharing: every
                // co-tenant of this host streams the same shape
                // concurrently. The batcher's close decisions still
                // use the dedicated-link model (optimistic), so the
                // contended duration only stretches the instance
                // occupancy and the members' completion times.
                const SharedServiceSeconds shared = model.sharedSeconds(
                    batch.paddedLength, batch.members.size(),
                    spec_.linkTenantsPerHost);
                instance.freeAt = at + shared.seconds;
                report.linkWaitSeconds += shared.linkWaitSeconds;
            } else {
                instance.freeAt = at + batch.serviceSeconds;
            }
            instance.inFlight = std::move(batch);
            ++report.batches;
            fill_sum += static_cast<double>(
                            instance.inFlight.members.size()) /
                        static_cast<double>(spec_.batcher.maxBatch);
        }
    };

    for (;;) {
        // Next event: earliest time wins; at equal times the category
        // order is kills -> completions -> retries -> arrivals -> close
        // timers, so chaos lands before the work it disrupts and the
        // loop is bit-identical however the doubles tie.
        EventKind kind = EventKind::None;
        double when = kInf;
        std::int32_t which = -1;

        const auto consider = [&](EventKind k, double t,
                                  std::int32_t index) {
            if (t < when) {
                kind = k;
                when = t;
                which = index;
            }
        };

        for (std::uint32_t i = 0; i < instances.size(); ++i)
            if (!instances[i].dead)
                consider(EventKind::Kill, instances[i].killAt,
                         static_cast<std::int32_t>(i));
        for (std::uint32_t i = 0; i < instances.size(); ++i)
            if (instances[i].busy)
                consider(EventKind::Completion, instances[i].freeAt,
                         static_cast<std::int32_t>(i));
        if (!retryQueue.empty())
            consider(EventKind::RetryReady, retryQueue.begin()->first,
                     -1);
        if (next_arrival < arena.size())
            consider(EventKind::Arrival,
                     arena[next_arrival].arrivalSeconds, -1);
        const bool stream_drained =
            next_arrival >= arena.size() && retryQueue.empty();
        if (batcher.queued() > 0 && freeAliveInstance() >= 0) {
            const double close_at =
                stream_drained
                    ? now
                    : std::max(now, batcher.nextCloseSeconds(arena));
            consider(EventKind::CloseTimer, close_at, -1);
        }

        if (kind == EventKind::None) {
            // No future events. Anything still queued is unreachable
            // (every instance is dead): account it as timed out at its
            // deadline rather than losing it.
            for (Request &request : arena) {
                if (isTerminal(request.state))
                    continue;
                PROSE_ASSERT(request.state == RequestState::Admitted,
                             "drained a ", toString(request.state),
                             " request");
                batcher.remove(arena, request.id);
                transition(request, RequestState::TimedOut,
                           std::max(now, request.deadlineSeconds));
                ++report.timedOut;
            }
            break;
        }

        now = when;
        switch (kind) {
          case EventKind::Kill: {
            InstanceState &instance =
                instances[static_cast<std::size_t>(which)];
            instance.dead = true;
            instance.killAt = kInf;
            ++report.instancesKilled;
            if (instance.busy) {
                instance.busy = false;
                for (const RequestId id : instance.inFlight.members)
                    dropWork(id, now);
                instance.inFlight.members.clear();
            }
            break;
          }
          case EventKind::Completion: {
            InstanceState &instance =
                instances[static_cast<std::size_t>(which)];
            instance.busy = false;
            for (const RequestId id : instance.inFlight.members) {
                Request &request = arena[id];
                if (now <= request.deadlineSeconds) {
                    transition(request, RequestState::Done, now);
                    ++report.done;
                } else {
                    transition(request, RequestState::TimedOut, now);
                    ++report.completedLate;
                    ++report.timedOut;
                }
            }
            instance.inFlight.members.clear();
            break;
          }
          case EventKind::RetryReady: {
            const RequestId id = retryQueue.begin()->second;
            retryQueue.erase(retryQueue.begin());
            transition(arena[id], RequestState::Queued, now);
            admitOne(id, now);
            break;
          }
          case EventKind::Arrival: {
            const RequestId id =
                static_cast<RequestId>(next_arrival++);
            admitOne(id, now);
            break;
          }
          case EventKind::CloseTimer:
            break; // dispatchReady below does the work
          case EventKind::None:
            break;
        }
        dispatchReady(now, stream_drained);
    }

    // Final accounting from the arena: conservation, horizon,
    // latencies in arrival order.
    std::uint64_t done_check = 0;
    for (const Request &request : arena) {
        PROSE_ASSERT(isTerminal(request.state),
                     "request ", request.id, " ended the run ",
                     toString(request.state));
        report.horizonSeconds =
            std::max(report.horizonSeconds, request.finishedSeconds);
        if (request.state == RequestState::Done) {
            ++done_check;
            report.latencies.push_back(request.latencySeconds());
        }
    }
    PROSE_ASSERT(done_check == report.done && report.lost() == 0,
                 "request conservation violated: offered ",
                 report.offered, ", done ", report.done, ", timed out ",
                 report.timedOut, ", shed ", report.shed);

    if (!report.latencies.empty()) {
        report.p50Seconds = percentile(report.latencies, 50.0);
        report.p99Seconds = percentile(report.latencies, 99.0);
        report.p999Seconds = percentile(report.latencies, 99.9);
    }
    if (report.batches > 0)
        report.meanBatchFill =
            fill_sum / static_cast<double>(report.batches);
    if (report.horizonSeconds > 0.0)
        report.goodputPerSecond = static_cast<double>(report.done) /
                                  report.horizonSeconds;
    if (report.offered > 0)
        report.sloAttainment = static_cast<double>(report.done) /
                               static_cast<double>(report.offered);
    return report;
}

} // namespace prose
