#include "serve_batcher.hh"

#include <algorithm>
#include <limits>

#include "accel/batcher.hh"
#include "common/logging.hh"

namespace prose {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

void
ServeBatcherSpec::validate() const
{
    if (buckets.empty())
        fatal("serve batcher: no length buckets");
    for (std::size_t i = 1; i < buckets.size(); ++i)
        if (buckets[i] <= buckets[i - 1])
            fatal("serve batcher: buckets must be strictly increasing");
    if (maxBatch == 0)
        fatal("serve batcher: zero max batch");
}

ServeBatcher::ServeBatcher(ServeBatcherSpec spec,
                           const ServiceModel &model)
    : spec_(std::move(spec)), model_(model)
{
    spec_.validate();
}

void
ServeBatcher::enqueue(RequestArena &arena, RequestId id)
{
    const Request &request = arena[id];
    PROSE_ASSERT(request.state == RequestState::Admitted,
                 "batcher enqueue of a ", toString(request.state),
                 " request");
    const std::uint64_t bucket =
        bucketForTokens(request.residues + 2, spec_.buckets);
    buckets_[bucket].push(arena, id);
    ++queued_;
}

void
ServeBatcher::remove(RequestArena &arena, RequestId id)
{
    const std::uint64_t bucket =
        bucketForTokens(arena[id].residues + 2, spec_.buckets);
    const auto it = buckets_.find(bucket);
    PROSE_ASSERT(it != buckets_.end(), "remove from an absent bucket");
    it->second.remove(arena, id);
    --queued_;
}

std::uint64_t
ServeBatcher::effectiveMaxBatch() const
{
    if (spec_.overloadDepth > 0 && queued_ > spec_.overloadDepth)
        return std::max<std::uint64_t>(1, spec_.maxBatch / 2);
    return spec_.maxBatch;
}

std::int32_t
ServeBatcher::shedVictim(const RequestArena &arena) const
{
    std::int32_t victim = kNoRequest;
    std::uint32_t victim_band = PriorityRequestQueue::kBands;
    for (const auto &[len, queue] : buckets_) {
        const std::int32_t candidate = queue.shedVictim();
        if (candidate == kNoRequest)
            continue;
        const Request &request =
            arena[static_cast<std::size_t>(candidate)];
        const std::uint32_t band =
            PriorityRequestQueue::band(request.priority);
        if (victim == kNoRequest || band < victim_band ||
            (band == victim_band &&
             request.arrivalSeconds <
                 arena[static_cast<std::size_t>(victim)]
                     .arrivalSeconds)) {
            victim = candidate;
            victim_band = band;
        }
    }
    return victim;
}

double
ServeBatcher::latestSafeClose(const RequestArena &arena,
                              std::uint64_t bucket_len,
                              const PriorityRequestQueue &queue) const
{
    const std::int32_t front = queue.front();
    if (front == kNoRequest)
        return kInf;
    const std::uint64_t batch =
        std::min<std::uint64_t>(queue.size(), effectiveMaxBatch());
    const double service = model_.seconds(bucket_len, batch);
    return arena[static_cast<std::size_t>(front)].deadlineSeconds -
           service;
}

double
ServeBatcher::nextCloseSeconds(const RequestArena &arena) const
{
    double earliest = kInf;
    for (const auto &[len, queue] : buckets_)
        earliest =
            std::min(earliest, latestSafeClose(arena, len, queue));
    return earliest;
}

bool
ServeBatcher::close(RequestArena &arena, double now, ClosedBatch &out,
                    bool force)
{
    // Pick the bucket to close: full beats urgent beats forced; within
    // a class, the earliest front deadline, then the smaller bucket
    // (the map iteration order breaks the final tie deterministically).
    const std::uint64_t eff_max = effectiveMaxBatch();
    std::uint64_t chosen_len = 0;
    const PriorityRequestQueue *chosen = nullptr;
    int chosen_class = 0; // 2 = full, 1 = urgent, 0 = none/forced
    double chosen_deadline = kInf;
    for (const auto &[len, queue] : buckets_) {
        const std::int32_t front = queue.front();
        if (front == kNoRequest)
            continue;
        const double front_deadline =
            arena[static_cast<std::size_t>(front)].deadlineSeconds;
        int cls = 0;
        if (queue.size() >= eff_max)
            cls = 2;
        else if (latestSafeClose(arena, len, queue) <= now)
            cls = 1;
        else if (force)
            cls = 0;
        else
            continue;
        if (!chosen || cls > chosen_class ||
            (cls == chosen_class && front_deadline < chosen_deadline)) {
            chosen = &queue;
            chosen_len = len;
            chosen_class = cls;
            chosen_deadline = front_deadline;
        }
    }
    if (!chosen)
        return false;

    PriorityRequestQueue &queue = buckets_[chosen_len];
    out.paddedLength = chosen_len;
    out.members.clear();
    out.expired.clear();
    while (!queue.empty() && out.members.size() < eff_max) {
        const RequestId id = queue.pop(arena);
        --queued_;
        transition(arena[id], RequestState::Batched, now);
        out.members.push_back(id);
    }

    // Deadline re-check with the service time of the formed batch;
    // single pass — dropping expired members only shrinks the batch and
    // thus the service time, so survivors' checks stay conservative.
    const double service =
        model_.seconds(chosen_len, out.members.size());
    std::vector<RequestId> alive;
    alive.reserve(out.members.size());
    for (const RequestId id : out.members) {
        if (now + service > arena[id].deadlineSeconds) {
            transition(arena[id], RequestState::TimedOut, now);
            out.expired.push_back(id);
        } else {
            alive.push_back(id);
        }
    }
    out.members = std::move(alive);
    out.serviceSeconds =
        out.members.empty()
            ? 0.0
            : model_.seconds(chosen_len, out.members.size());
    return true;
}

} // namespace prose
