/**
 * @file
 * Length-bucketed *dynamic* batcher for the open-loop front end. The
 * closed-loop planner in accel/batcher.hh sees the whole workload up
 * front; here requests trickle in and every batch-close decision trades
 * throughput (wait for a fuller batch) against each member's deadline.
 *
 * Policy, per bucket (padded length from accel/bucketForTokens):
 *
 *  - a batch closes when it is full (effective max batch), or when the
 *    bucket's oldest request hits its *latest safe close time* —
 *    deadline minus the modeled service time of the batch that would
 *    close now. Deadlines propagate into the batcher; nothing waits
 *    past the point where waiting forfeits the SLO;
 *  - under overload (queued requests beyond the watermark) the
 *    effective max batch halves: smaller batches close sooner, which
 *    bounds head-of-line blocking while admission sheds the excess —
 *    the "reduced batch size" leg of graceful degradation;
 *  - at close, members whose deadline can no longer be met (now +
 *    service > deadline) are timed out *before* dispatch instead of
 *    burning accelerator time on work nobody can use.
 *
 * The batcher owns only queue structure; request state transitions go
 * through serve/request.hh so the lifecycle stays auditable.
 */

#ifndef PROSE_SERVE_SERVE_BATCHER_HH
#define PROSE_SERVE_SERVE_BATCHER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "queue.hh"
#include "request.hh"
#include "service_model.hh"

namespace prose {

/** Dynamic batching policy. */
struct ServeBatcherSpec
{
    /** Bucket boundaries (padded length, includes CLS/SEP). */
    std::vector<std::uint64_t> buckets{ 64, 128, 256, 512, 1024, 2048 };
    /** Max sequences per batch when healthy. */
    std::uint64_t maxBatch = 8;
    /**
     * Queued-request count beyond which the effective max batch halves
     * (overload degradation). 0 disables the reduction.
     */
    std::uint64_t overloadDepth = 0;

    /** fatal() on empty/non-increasing buckets or zero maxBatch. */
    void validate() const;
};

/** One closed batch ready for dispatch. */
struct ClosedBatch
{
    std::uint64_t paddedLength = 0;
    std::vector<RequestId> members;  ///< state BATCHED, arrival order
    std::vector<RequestId> expired;  ///< timed out at close (terminal)
    double serviceSeconds = 0.0;     ///< modeled duration of `members`
};

class ServeBatcher
{
  public:
    ServeBatcher(ServeBatcherSpec spec, const ServiceModel &model);

    /** Queue an ADMITTED request into its length bucket. */
    void enqueue(RequestArena &arena, RequestId id);

    /** Remove a queued request (retry-cancel, shed). */
    void remove(RequestArena &arena, RequestId id);

    /** Requests currently queued across all buckets. */
    std::uint64_t queued() const { return queued_; }

    /** Max batch after overload degradation at current queue depth. */
    std::uint64_t effectiveMaxBatch() const;

    /**
     * Oldest lowest-priority request across all buckets — the victim
     * of an oldest-first overload shed — or kNoRequest when empty.
     * The victim is *not* removed; callers shed via remove() so the
     * state transition stays theirs.
     */
    std::int32_t shedVictim(const RequestArena &arena) const;

    /**
     * Earliest future time any bucket must close to keep its oldest
     * member's SLO reachable; +infinity when nothing is queued. The
     * event loop uses this as its batch-timer event.
     */
    double nextCloseSeconds(const RequestArena &arena) const;

    /**
     * Close the most urgent dispatchable batch at time `now`: a bucket
     * that is full, or whose latest safe close time has arrived. Ties
     * break to the earliest front-request deadline, then the smaller
     * bucket. Members are popped in priority-then-arrival order,
     * transitioned to BATCHED, and deadline-checked (single pass with
     * the post-drop service estimate); drops land in `expired` as
     * TIMED_OUT. Returns false when no bucket should close yet.
     *
     * `force` closes the most urgent non-empty bucket regardless of
     * timers — the end-of-stream flush (also exercised by tests as the
     * "empty bucket flush" edge: forcing with nothing queued is a
     * clean no-op returning false). A close can come back with every
     * member expired (`members` empty, `expired` not) — callers skip
     * the dispatch but still account the drops.
     */
    bool close(RequestArena &arena, double now, ClosedBatch &out,
               bool force = false);

    const ServeBatcherSpec &spec() const { return spec_; }

  private:
    /** Latest time the bucket can close and still meet its oldest
     *  member's deadline, given current occupancy. */
    double latestSafeClose(const RequestArena &arena,
                           std::uint64_t bucket_len,
                           const PriorityRequestQueue &queue) const;

    ServeBatcherSpec spec_;
    const ServiceModel &model_;
    /** bucket padded length -> queued requests (ordered map keeps every
     *  sweep deterministic). */
    std::map<std::uint64_t, PriorityRequestQueue> buckets_;
    std::uint64_t queued_ = 0;
};

} // namespace prose

#endif // PROSE_SERVE_SERVE_BATCHER_HH
