#include "arrival.hh"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"

namespace prose {

const char *
toString(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Bursty:
        return "bursty";
      case ArrivalKind::Diurnal:
        return "diurnal";
      case ArrivalKind::Trace:
        return "trace";
    }
    return "?";
}

void
ArrivalSpec::validate() const
{
    if (kind == ArrivalKind::Trace) {
        if (trace.empty())
            fatal("arrival spec: trace kind with an empty trace");
        return; // trace records were validated by the loader
    }
    if (!std::isfinite(ratePerSecond) || ratePerSecond <= 0.0)
        fatal("arrival spec: rate must be a positive finite "
              "requests/second, got ", ratePerSecond);
    if (count == 0)
        fatal("arrival spec: zero requests to generate");
    if (minResidues == 0)
        fatal("arrival spec: zero-length requests are not a workload");
    if (maxResidues < minResidues)
        fatal("arrival spec: length bounds inverted (", minResidues,
              " > ", maxResidues, ")");
    if (kind == ArrivalKind::Bursty) {
        if (burstPeriodSeconds <= 0.0)
            fatal("arrival spec: burst period must be positive");
        if (burstFraction <= 0.0 || burstFraction >= 1.0)
            fatal("arrival spec: burst fraction must be in (0, 1), "
                  "got ", burstFraction);
        if (burstMultiplier < 1.0)
            fatal("arrival spec: burst multiplier must be >= 1");
    }
    if (kind == ArrivalKind::Diurnal) {
        if (diurnalPeriodSeconds <= 0.0)
            fatal("arrival spec: diurnal period must be positive");
        if (diurnalAmplitude < 0.0 || diurnalAmplitude >= 1.0)
            fatal("arrival spec: diurnal amplitude must be in [0, 1), "
                  "got ", diurnalAmplitude);
    }
}

namespace {

/** Instantaneous rate of the modulated processes at time `t`. */
double
rateAt(const ArrivalSpec &spec, double t)
{
    switch (spec.kind) {
      case ArrivalKind::Poisson:
        return spec.ratePerSecond;
      case ArrivalKind::Bursty: {
        const double phase =
            std::fmod(t, spec.burstPeriodSeconds) /
            spec.burstPeriodSeconds;
        // The burst occupies the head of each cycle; the base rate is
        // scaled so the long-run mean stays ratePerSecond.
        const double mean_scale = spec.burstFraction *
                                      spec.burstMultiplier +
                                  (1.0 - spec.burstFraction);
        const double base = spec.ratePerSecond / mean_scale;
        return phase < spec.burstFraction
                   ? base * spec.burstMultiplier
                   : base;
      }
      case ArrivalKind::Diurnal: {
        constexpr double kTwoPi = 6.283185307179586476925286766559;
        const double phase = kTwoPi * t / spec.diurnalPeriodSeconds;
        return spec.ratePerSecond *
               (1.0 + spec.diurnalAmplitude * std::sin(phase));
      }
      case ArrivalKind::Trace:
        break;
    }
    panic("rateAt on a trace spec");
}

/** Peak rate, the thinning envelope. */
double
peakRate(const ArrivalSpec &spec)
{
    switch (spec.kind) {
      case ArrivalKind::Poisson:
        return spec.ratePerSecond;
      case ArrivalKind::Bursty: {
        const double mean_scale = spec.burstFraction *
                                      spec.burstMultiplier +
                                  (1.0 - spec.burstFraction);
        return spec.ratePerSecond * spec.burstMultiplier / mean_scale;
      }
      case ArrivalKind::Diurnal:
        return spec.ratePerSecond * (1.0 + spec.diurnalAmplitude);
      case ArrivalKind::Trace:
        break;
    }
    panic("peakRate on a trace spec");
}

} // namespace

std::vector<Request>
generateArrivals(const ArrivalSpec &spec, double default_slo_seconds)
{
    spec.validate();
    if (!std::isfinite(default_slo_seconds) || default_slo_seconds <= 0.0)
        fatal("arrival generation: default SLO must be positive, got ",
              default_slo_seconds);

    std::vector<Request> requests;
    if (spec.kind == ArrivalKind::Trace) {
        requests.reserve(spec.trace.size());
        for (const TraceArrival &rec : spec.trace) {
            Request request;
            request.id = static_cast<RequestId>(requests.size());
            request.arrivalSeconds = rec.atSeconds;
            request.residues = rec.residues;
            request.priority = rec.priority;
            request.deadlineSeconds =
                rec.atSeconds + (rec.sloSeconds > 0.0
                                     ? rec.sloSeconds
                                     : default_slo_seconds);
            requests.push_back(request);
        }
        return requests;
    }

    // Thinning (Lewis & Shedler): candidate gaps at the peak rate,
    // accepted with probability rate(t)/peak. Every candidate consumes
    // exactly two draws (gap + acceptance) so the stream is identical
    // whichever kind modulates it.
    Rng rng(spec.seed);
    const double peak = peakRate(spec);
    double t = 0.0;
    requests.reserve(spec.count);
    while (requests.size() < spec.count) {
        const double gap_draw = rng.uniform();
        const double accept_draw = rng.uniform();
        t += -std::log(1.0 - gap_draw) / peak;
        if (accept_draw >= rateAt(spec, t) / peak)
            continue;
        Request request;
        request.id = static_cast<RequestId>(requests.size());
        request.arrivalSeconds = t;
        request.residues =
            spec.minResidues +
            rng.below(spec.maxResidues - spec.minResidues + 1);
        request.deadlineSeconds = t + default_slo_seconds;
        requests.push_back(request);
    }
    return requests;
}

namespace {

double
parseTraceNumber(const std::string &value, const char *key,
                 const std::string &origin, std::size_t line_no)
{
    double parsed = 0.0;
    if (!parseFiniteDouble(value, parsed))
        fatal(origin, ":", line_no, ": bad number for ", key, ": '",
              value, "'");
    return parsed;
}

std::uint64_t
parseTraceUint(const std::string &value, const char *key,
               const std::string &origin, std::size_t line_no)
{
    std::uint64_t parsed = 0;
    if (!parseU64(value, parsed))
        fatal(origin, ":", line_no, ": bad non-negative integer for ",
              key, ": '", value, "'");
    return parsed;
}

} // namespace

std::vector<TraceArrival>
parseArrivalTrace(std::istream &in, const std::string &origin)
{
    std::vector<TraceArrival> trace;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream tokens(line);
        std::string token;
        TraceArrival rec;
        bool have_at = false, have_len = false;
        while (tokens >> token) {
            const auto eq = token.find('=');
            if (eq == std::string::npos)
                fatal(origin, ":", line_no,
                      ": token without '=': '", token, "'");
            const std::string key = token.substr(0, eq);
            const std::string value = token.substr(eq + 1);
            if (key == "at") {
                rec.atSeconds =
                    parseTraceNumber(value, "at", origin, line_no);
                if (rec.atSeconds < 0.0)
                    fatal(origin, ":", line_no,
                          ": negative arrival time ", value);
                have_at = true;
            } else if (key == "len") {
                rec.residues =
                    parseTraceUint(value, "len", origin, line_no);
                if (rec.residues == 0)
                    fatal(origin, ":", line_no,
                          ": zero-length request (len=0) — empty "
                          "proteins are not a workload");
                have_len = true;
            } else if (key == "prio") {
                const std::uint64_t prio =
                    parseTraceUint(value, "prio", origin, line_no);
                if (prio > std::numeric_limits<std::uint32_t>::max())
                    fatal(origin, ":", line_no, ": prio=", value,
                          " does not fit 32 bits (it would silently "
                          "truncate to ", static_cast<std::uint32_t>(prio),
                          ")");
                rec.priority = static_cast<std::uint32_t>(prio);
            } else if (key == "slo") {
                rec.sloSeconds =
                    parseTraceNumber(value, "slo", origin, line_no);
                if (rec.sloSeconds <= 0.0)
                    fatal(origin, ":", line_no,
                          ": slo must be positive, got ", value);
            } else {
                fatal(origin, ":", line_no, ": unknown key '", key,
                      "' (expected at/len/prio/slo)");
            }
        }
        if (!have_at && !have_len)
            continue; // blank or comment-only line
        if (!have_at || !have_len)
            fatal(origin, ":", line_no,
                  ": a trace record needs both at= and len=");
        if (!trace.empty()) {
            const double prev = trace.back().atSeconds;
            if (rec.atSeconds < prev)
                fatal(origin, ":", line_no,
                      ": arrival times must be non-decreasing (",
                      rec.atSeconds, " after ", prev, ")");
            if (rec.atSeconds == prev)
                fatal(origin, ":", line_no,
                      ": duplicate arrival timestamp ", rec.atSeconds,
                      " — replay order would be ambiguous");
        }
        trace.push_back(rec);
    }
    if (trace.empty())
        fatal(origin, ": empty arrival trace");
    return trace;
}

std::vector<TraceArrival>
loadArrivalTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open arrival trace ", path);
    return parseArrivalTrace(in, path);
}

} // namespace prose
