/**
 * @file
 * The designated bit-level float comparison helpers.
 *
 * ProSE's determinism contract (docs/FAULT_MODEL.md, docs/PERF.md) is
 * stated in terms of bit-identical results, so the only float
 * comparisons the simulator itself is allowed to make are bit
 * comparisons — value comparison with ==/!= conflates +0/-0, loses NaN
 * payloads, and invites "close enough" drift between the fused and
 * reference paths. scripts/prose_lint.py enforces this: raw ==/!= on
 * float/double in src/numerics and src/systolic is a lint error
 * everywhere except this header and the Bfloat16 bit type.
 */

#ifndef PROSE_NUMERICS_FLOAT_BITS_HH
#define PROSE_NUMERICS_FLOAT_BITS_HH

#include <cstdint>
#include <cstring>

namespace prose {

/** Raw IEEE-754 bit pattern of a float. */
inline std::uint32_t
floatBits(float value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

/** Raw IEEE-754 bit pattern of a double. */
inline std::uint64_t
doubleBits(double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

/** Exact bit equality: distinguishes +0/-0 and compares NaN payloads. */
inline bool
bitsEqual(float a, float b)
{
    return floatBits(a) == floatBits(b);
}

/** Exact bit equality for doubles. */
inline bool
bitsEqual(double a, double b)
{
    return doubleBits(a) == doubleBits(b);
}

/** Bit equality over a contiguous range of floats. */
inline bool
bitsEqual(const float *a, const float *b, std::size_t n)
{
    return std::memcmp(a, b, n * sizeof(*a)) == 0;
}

/**
 * True for +0.0f and -0.0f, false for everything else (including NaN
 * and denormals). Bit-level equivalent of `value == 0.0f`, spelled so
 * the zero-skip gates read as the bit test they are.
 */
inline bool
isZeroValue(float value)
{
    return (floatBits(value) & 0x7fffffffu) == 0;
}

} // namespace prose

#endif // PROSE_NUMERICS_FLOAT_BITS_HH
