/**
 * @file
 * Software bfloat16 (brain floating point): 1 sign bit, 8 exponent bits,
 * 7 mantissa bits — the top half of an IEEE-754 binary32.
 *
 * ProSE's systolic arrays multiply in bfloat16 and accumulate in fp32
 * (Section 3.2 / Figure 10(b)); this type provides the exact conversion
 * semantics the hardware uses: round-to-nearest-even on fp32 -> bf16, and
 * bit-exact widening bf16 -> fp32. Arithmetic between Bfloat16 values is
 * performed in fp32 and re-rounded, which matches a MAC whose product is
 * formed exactly and then truncated to the destination format.
 */

#ifndef PROSE_NUMERICS_BFLOAT16_HH
#define PROSE_NUMERICS_BFLOAT16_HH

#include <cstdint>
#include <cstring>
#include <ostream>

namespace prose {

/** A 16-bit brain-float value. POD; safe to memcpy and stream. */
class Bfloat16
{
  public:
    /** Zero-initialized. */
    constexpr Bfloat16() = default;

    /** Round a binary32 to the nearest bfloat16 (ties to even). */
    explicit Bfloat16(float value) : bits_(roundFromFloat(value)) {}

    /** Reinterpret raw storage bits as a bfloat16. */
    static constexpr Bfloat16
    fromBits(std::uint16_t bits)
    {
        Bfloat16 v;
        v.bits_ = bits;
        return v;
    }

    /** Exact widening conversion to binary32. */
    float toFloat() const;

    /** Raw storage bits. */
    constexpr std::uint16_t bits() const { return bits_; }

    /** Sign bit (1 = negative). */
    constexpr int signBit() const { return (bits_ >> 15) & 0x1; }

    /** Biased exponent field, 0..255. */
    constexpr int biasedExponent() const { return (bits_ >> 7) & 0xff; }

    /** Unbiased exponent (biased - 127); meaningless for zero/denormal. */
    constexpr int exponent() const { return biasedExponent() - 127; }

    /** Mantissa field, 7 bits. */
    constexpr int mantissa() const { return bits_ & 0x7f; }

    /** True for +0 or -0. */
    constexpr bool isZero() const { return (bits_ & 0x7fff) == 0; }

    /** True for either infinity. */
    constexpr bool
    isInf() const
    {
        return biasedExponent() == 0xff && mantissa() == 0;
    }

    /** True for any NaN encoding. */
    constexpr bool
    isNan() const
    {
        return biasedExponent() == 0xff && mantissa() != 0;
    }

    /** fp32 -> bf16 bits with round-to-nearest-even, NaN-preserving. */
    static std::uint16_t roundFromFloat(float value);

    Bfloat16 operator-() const;
    Bfloat16 operator+(Bfloat16 other) const;
    Bfloat16 operator-(Bfloat16 other) const;
    Bfloat16 operator*(Bfloat16 other) const;
    Bfloat16 operator/(Bfloat16 other) const;

    /** Bit-pattern equality except both zeros compare equal. */
    bool operator==(Bfloat16 other) const;
    bool operator!=(Bfloat16 other) const { return !(*this == other); }
    bool operator<(Bfloat16 other) const
    {
        return toFloat() < other.toFloat();
    }

  private:
    std::uint16_t bits_ = 0;
};

// The conversions sit on the hot path of both functional-sim engines
// (every operand element is rounded at the array edge, every drained
// output is widened), so they are defined inline here.

inline float
Bfloat16::toFloat() const
{
    const std::uint32_t bits = static_cast<std::uint32_t>(bits_) << 16;
    float value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

inline std::uint16_t
Bfloat16::roundFromFloat(float value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));

    // NaN: keep the sign, force a quiet-NaN payload so the result stays
    // a NaN after truncation even if the payload's top bits were zero.
    if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu)) {
        return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
    }

    // Round to nearest even on the 16 bits we are about to drop.
    const std::uint32_t rounding_bias = 0x7fffu + ((bits >> 16) & 1u);
    bits += rounding_bias;
    return static_cast<std::uint16_t>(bits >> 16);
}

inline Bfloat16
truncateToBf16(float value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return Bfloat16::fromBits(static_cast<std::uint16_t>(bits >> 16));
}

/** Round-trip helper: quantize an fp32 value through bfloat16. */
inline float
quantizeBf16(float value)
{
    return Bfloat16(value).toFloat();
}

/**
 * Truncate an fp32 value to bfloat16 by dropping the low 16 bits — the
 * semantics of the ProSE PE OUTPUT port, which taps accumulator bits
 * [31:16] directly (Figure 10(b)). No rounding is applied.
 */
Bfloat16 truncateToBf16(float value);

/** Float-in/float-out wrapper around truncateToBf16. */
inline float
truncateBf16(float value)
{
    return truncateToBf16(value).toFloat();
}

/** @name Fault-model bit surgery
 * Single-event-upset helpers for the fault injector: flip or force one
 * storage bit of an fp32 accumulator or a bf16 word. Bit 0 is the LSB;
 * fp32 bits [31:16] are the architecturally visible (bf16) half of a
 * ProSE accumulator.
 * @{ */

/** Flip one bit (0..31) of a binary32's storage. */
float flipFloatBit(float value, std::uint32_t bit);

/** Force one bit (0..31) of a binary32's storage to 0 or 1. */
float setFloatBit(float value, std::uint32_t bit, bool high);

/** Flip one bit (0..15) of a bfloat16. */
Bfloat16 flipBf16Bit(Bfloat16 value, std::uint32_t bit);

/** @} */

std::ostream &operator<<(std::ostream &os, Bfloat16 v);

} // namespace prose

#endif // PROSE_NUMERICS_BFLOAT16_HH
