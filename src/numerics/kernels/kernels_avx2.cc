/**
 * @file
 * AVX2 kernel tier. Compiled with -mavx2 (no -mfma: the scalar
 * reference rounds the product and the sum of every MAC separately, so
 * fused contraction would change bits) and -ffp-contract=off for the
 * same reason.
 *
 * Vectorization is across independent j lanes only; each accumulator
 * still sees its fp32 operations in exactly the scalar order. The bf16
 * conversions are implemented as the same integer bit manipulations as
 * Bfloat16::roundFromFloat / truncateToBf16, eight lanes at a time:
 * round-to-nearest-even is `bits + 0x7fff + ((bits >> 16) & 1)` and the
 * NaN path forces the quiet bit, both exact for every input including
 * denormals and signed zeros.
 */

#include "kernel_tiers.hh"

#include <immintrin.h>

#include <cstring>

#include "numerics/bfloat16.hh"

namespace prose::kernels {

namespace {

inline float
widenBits(std::uint16_t bits)
{
    return Bfloat16::fromBits(bits).toFloat();
}

// Vector constants are built inside each helper (never at namespace
// scope: a static initializer would execute AVX instructions before
// main() even on CPUs the dispatcher would reject).
inline __m256i
hiMask()
{
    return _mm256_set1_epi32(static_cast<std::int32_t>(0xffff0000u));
}

/** Lanes that hold any NaN (all-ones where NaN). */
inline __m256i
nanLanes(__m256i bits)
{
    // abs(bits) <= 0x7fffffff, so the signed compare is an unsigned one.
    return _mm256_cmpgt_epi32(
        _mm256_and_si256(bits, _mm256_set1_epi32(0x7fffffff)),
        _mm256_set1_epi32(0x7f800000));
}

/** `bits + 0x7fff + ((bits >> 16) & 1)` — the RNE bias add. */
inline __m256i
rneRounded(__m256i bits)
{
    const __m256i lsb = _mm256_and_si256(_mm256_srli_epi32(bits, 16),
                                         _mm256_set1_epi32(1));
    return _mm256_add_epi32(
        bits, _mm256_add_epi32(lsb, _mm256_set1_epi32(0x7fff)));
}

/** Round-to-nearest-even fp32 -> bf16, result widened back to fp32 bits
 *  (the quantizeBf16 round trip), 8 lanes. */
inline __m256i
quantRoundtripBits(__m256i bits)
{
    const __m256i normal = _mm256_and_si256(rneRounded(bits), hiMask());
    const __m256i nan =
        _mm256_or_si256(_mm256_and_si256(bits, hiMask()),
                        _mm256_set1_epi32(0x00400000));
    return _mm256_blendv_epi8(normal, nan, nanLanes(bits));
}

inline __m256
quantRoundtrip(__m256 v)
{
    return _mm256_castsi256_ps(
        quantRoundtripBits(_mm256_castps_si256(v)));
}

/** fp32 -> bf16 bit pattern in the low 16 bits of each epi32 lane. */
inline __m256i
quantBits16(__m256i bits)
{
    const __m256i normal = _mm256_srli_epi32(rneRounded(bits), 16);
    const __m256i nan = _mm256_or_si256(_mm256_srli_epi32(bits, 16),
                                        _mm256_set1_epi32(0x0040));
    return _mm256_blendv_epi8(normal, nan, nanLanes(bits));
}

/** Pack the low u16 of 8 epi32 lanes and store them contiguously. */
inline void
storeU16x8(std::uint16_t *dst, __m256i lanes)
{
    // packus interleaves 128-bit halves; permute [0,2] restores order.
    const __m256i packed = _mm256_packus_epi32(lanes, lanes);
    const __m256i ordered = _mm256_permute4x64_epi64(packed, 0x88);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(dst),
                     _mm256_castsi256_si128(ordered));
}

/** Widen 8 bf16 bit patterns to fp32 (exact). */
inline __m256
widen8(const std::uint16_t *src)
{
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(src));
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16));
}

inline __m256
truncate8(__m256 v)
{
    return _mm256_castsi256_ps(
        _mm256_and_si256(_mm256_castps_si256(v), hiMask()));
}

void
macRowF32Avx2(float *c, const float *b, float av, std::size_t n)
{
    const __m256 avv = _mm256_set1_ps(av);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 prod = _mm256_mul_ps(avv, _mm256_loadu_ps(b + j));
        _mm256_storeu_ps(c + j,
                         _mm256_add_ps(_mm256_loadu_ps(c + j), prod));
    }
    for (; j < n; ++j)
        c[j] += av * b[j];
}

void
macRowBf16Avx2(float *acc, const std::uint16_t *b, float av,
               std::size_t n)
{
    const __m256 avv = _mm256_set1_ps(av);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 prod = _mm256_mul_ps(avv, widen8(b + j));
        _mm256_storeu_ps(
            acc + j, _mm256_add_ps(_mm256_loadu_ps(acc + j), prod));
    }
    for (; j < n; ++j)
        acc[j] += av * widenBits(b[j]);
}

void
mulAccRowF32Avx2(float *c, const float *a, const float *b,
                 std::size_t n)
{
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 prod =
            _mm256_mul_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j));
        _mm256_storeu_ps(c + j,
                         _mm256_add_ps(_mm256_loadu_ps(c + j), prod));
    }
    for (; j < n; ++j)
        c[j] += a[j] * b[j];
}

/** One row of the bf16 tile GEMM (the remainder path under the 2-row
 *  blocking): 32-wide blocks keep four accumulator vectors in
 *  registers across the whole k loop, so each accumulator's
 *  ascending-k op sequence is preserved while the acc row is loaded
 *  and stored exactly once. */
inline void
gemmRowBf16Avx2(float *crow, const std::uint16_t *arow,
                const std::uint16_t *b, std::size_t bStride,
                std::size_t cols, std::size_t depth)
{
    std::size_t jb = 0;
    for (; jb + 32 <= cols; jb += 32) {
        float *cj = crow + jb;
        __m256 c0 = _mm256_loadu_ps(cj);
        __m256 c1 = _mm256_loadu_ps(cj + 8);
        __m256 c2 = _mm256_loadu_ps(cj + 16);
        __m256 c3 = _mm256_loadu_ps(cj + 24);
        for (std::size_t k = 0; k < depth; ++k) {
            const std::uint16_t *brow = b + k * bStride + jb;
            const __m256 avv = _mm256_set1_ps(widenBits(arow[k]));
            c0 = _mm256_add_ps(c0, _mm256_mul_ps(avv, widen8(brow)));
            c1 = _mm256_add_ps(c1,
                               _mm256_mul_ps(avv, widen8(brow + 8)));
            c2 = _mm256_add_ps(c2,
                               _mm256_mul_ps(avv, widen8(brow + 16)));
            c3 = _mm256_add_ps(c3,
                               _mm256_mul_ps(avv, widen8(brow + 24)));
        }
        _mm256_storeu_ps(cj, c0);
        _mm256_storeu_ps(cj + 8, c1);
        _mm256_storeu_ps(cj + 16, c2);
        _mm256_storeu_ps(cj + 24, c3);
    }
    // 8-wide blocks for medium tails.
    for (; jb + 8 <= cols; jb += 8) {
        __m256 c0 = _mm256_loadu_ps(crow + jb);
        for (std::size_t k = 0; k < depth; ++k) {
            const __m256 avv = _mm256_set1_ps(widenBits(arow[k]));
            c0 = _mm256_add_ps(
                c0, _mm256_mul_ps(avv, widen8(b + k * bStride + jb)));
        }
        _mm256_storeu_ps(crow + jb, c0);
    }
    if (jb < cols) {
        // Sub-vector tail: keep the few remaining accumulators in a
        // local block so they stay in registers across k.
        float tail[8];
        const std::size_t w = cols - jb;
        for (std::size_t j = 0; j < w; ++j)
            tail[j] = crow[jb + j];
        for (std::size_t k = 0; k < depth; ++k) {
            const float av = widenBits(arow[k]);
            const std::uint16_t *brow = b + k * bStride + jb;
            for (std::size_t j = 0; j < w; ++j)
                tail[j] += av * widenBits(brow[j]);
        }
        for (std::size_t j = 0; j < w; ++j)
            crow[jb + j] = tail[j];
    }
}

void
gemmTileBf16Avx2(float *acc, std::size_t accStride,
                 const std::uint16_t *a, std::size_t aStride,
                 const std::uint16_t *b, std::size_t bStride,
                 std::size_t rows, std::size_t cols, std::size_t depth)
{
    // Two-row register blocking: each widened B chunk feeds both rows'
    // accumulators before the next is formed, halving the bf16->fp32
    // conversion work and the B-tile traffic (2 x 4 accumulators + the
    // B vector + 2 broadcasts stay inside the 16 ymm registers). Per
    // accumulator lane the op sequence is still exactly the scalar
    // ascending-k order.
    std::size_t i = 0;
    for (; i + 2 <= rows; i += 2) {
        const std::uint16_t *a0 = a + i * aStride;
        const std::uint16_t *a1 = a0 + aStride;
        float *c0row = acc + i * accStride;
        float *c1row = c0row + accStride;
        std::size_t jb = 0;
        for (; jb + 32 <= cols; jb += 32) {
            float *cj0 = c0row + jb;
            float *cj1 = c1row + jb;
            __m256 c00 = _mm256_loadu_ps(cj0);
            __m256 c01 = _mm256_loadu_ps(cj0 + 8);
            __m256 c02 = _mm256_loadu_ps(cj0 + 16);
            __m256 c03 = _mm256_loadu_ps(cj0 + 24);
            __m256 c10 = _mm256_loadu_ps(cj1);
            __m256 c11 = _mm256_loadu_ps(cj1 + 8);
            __m256 c12 = _mm256_loadu_ps(cj1 + 16);
            __m256 c13 = _mm256_loadu_ps(cj1 + 24);
            for (std::size_t k = 0; k < depth; ++k) {
                const std::uint16_t *brow = b + k * bStride + jb;
                const __m256 av0 = _mm256_set1_ps(widenBits(a0[k]));
                const __m256 av1 = _mm256_set1_ps(widenBits(a1[k]));
                __m256 bw = widen8(brow);
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(av0, bw));
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(av1, bw));
                bw = widen8(brow + 8);
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(av0, bw));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(av1, bw));
                bw = widen8(brow + 16);
                c02 = _mm256_add_ps(c02, _mm256_mul_ps(av0, bw));
                c12 = _mm256_add_ps(c12, _mm256_mul_ps(av1, bw));
                bw = widen8(brow + 24);
                c03 = _mm256_add_ps(c03, _mm256_mul_ps(av0, bw));
                c13 = _mm256_add_ps(c13, _mm256_mul_ps(av1, bw));
            }
            _mm256_storeu_ps(cj0, c00);
            _mm256_storeu_ps(cj0 + 8, c01);
            _mm256_storeu_ps(cj0 + 16, c02);
            _mm256_storeu_ps(cj0 + 24, c03);
            _mm256_storeu_ps(cj1, c10);
            _mm256_storeu_ps(cj1 + 8, c11);
            _mm256_storeu_ps(cj1 + 16, c12);
            _mm256_storeu_ps(cj1 + 24, c13);
        }
        for (; jb + 8 <= cols; jb += 8) {
            __m256 c00 = _mm256_loadu_ps(c0row + jb);
            __m256 c10 = _mm256_loadu_ps(c1row + jb);
            for (std::size_t k = 0; k < depth; ++k) {
                const __m256 bw = widen8(b + k * bStride + jb);
                const __m256 av0 = _mm256_set1_ps(widenBits(a0[k]));
                const __m256 av1 = _mm256_set1_ps(widenBits(a1[k]));
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(av0, bw));
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(av1, bw));
            }
            _mm256_storeu_ps(c0row + jb, c00);
            _mm256_storeu_ps(c1row + jb, c10);
        }
        if (jb < cols) {
            float tail0[8], tail1[8];
            const std::size_t w = cols - jb;
            for (std::size_t j = 0; j < w; ++j) {
                tail0[j] = c0row[jb + j];
                tail1[j] = c1row[jb + j];
            }
            for (std::size_t k = 0; k < depth; ++k) {
                const float av0 = widenBits(a0[k]);
                const float av1 = widenBits(a1[k]);
                const std::uint16_t *brow = b + k * bStride + jb;
                for (std::size_t j = 0; j < w; ++j) {
                    const float bv = widenBits(brow[j]);
                    tail0[j] += av0 * bv;
                    tail1[j] += av1 * bv;
                }
            }
            for (std::size_t j = 0; j < w; ++j) {
                c0row[jb + j] = tail0[j];
                c1row[jb + j] = tail1[j];
            }
        }
    }
    for (; i < rows; ++i)
        gemmRowBf16Avx2(acc + i * accStride, a + i * aStride, b,
                        bStride, cols, depth);
}

/** Single-row remainder of the fp32 tile GEMM. */
inline void
gemmRowF32Avx2(float *crow, const float *arow, const float *b,
               std::size_t bStride, std::size_t cols, std::size_t depth)
{
    std::size_t jb = 0;
    for (; jb + 32 <= cols; jb += 32) {
        float *cj = crow + jb;
        __m256 c0 = _mm256_loadu_ps(cj);
        __m256 c1 = _mm256_loadu_ps(cj + 8);
        __m256 c2 = _mm256_loadu_ps(cj + 16);
        __m256 c3 = _mm256_loadu_ps(cj + 24);
        for (std::size_t k = 0; k < depth; ++k) {
            const float *brow = b + k * bStride + jb;
            const __m256 avv = _mm256_set1_ps(arow[k]);
            c0 = _mm256_add_ps(
                c0, _mm256_mul_ps(avv, _mm256_loadu_ps(brow)));
            c1 = _mm256_add_ps(
                c1, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 8)));
            c2 = _mm256_add_ps(
                c2, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 16)));
            c3 = _mm256_add_ps(
                c3, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 24)));
        }
        _mm256_storeu_ps(cj, c0);
        _mm256_storeu_ps(cj + 8, c1);
        _mm256_storeu_ps(cj + 16, c2);
        _mm256_storeu_ps(cj + 24, c3);
    }
    for (; jb + 8 <= cols; jb += 8) {
        __m256 c0 = _mm256_loadu_ps(crow + jb);
        for (std::size_t k = 0; k < depth; ++k) {
            const __m256 avv = _mm256_set1_ps(arow[k]);
            c0 = _mm256_add_ps(
                c0,
                _mm256_mul_ps(avv,
                              _mm256_loadu_ps(b + k * bStride + jb)));
        }
        _mm256_storeu_ps(crow + jb, c0);
    }
    if (jb < cols) {
        float tail[8];
        const std::size_t w = cols - jb;
        for (std::size_t j = 0; j < w; ++j)
            tail[j] = crow[jb + j];
        for (std::size_t k = 0; k < depth; ++k) {
            const float av = arow[k];
            const float *brow = b + k * bStride + jb;
            for (std::size_t j = 0; j < w; ++j)
                tail[j] += av * brow[j];
        }
        for (std::size_t j = 0; j < w; ++j)
            crow[jb + j] = tail[j];
    }
}

void
gemmTileF32Avx2(float *acc, std::size_t accStride, const float *a,
                std::size_t aStride, const float *b, std::size_t bStride,
                std::size_t rows, std::size_t cols, std::size_t depth)
{
    // Same 2-row x 32-column register blocking as the bf16 tile; the
    // accumulators never round-trip memory inside the depth loop.
    std::size_t i = 0;
    for (; i + 2 <= rows; i += 2) {
        const float *a0 = a + i * aStride;
        const float *a1 = a0 + aStride;
        float *c0row = acc + i * accStride;
        float *c1row = c0row + accStride;
        std::size_t jb = 0;
        for (; jb + 32 <= cols; jb += 32) {
            float *cj0 = c0row + jb;
            float *cj1 = c1row + jb;
            __m256 c00 = _mm256_loadu_ps(cj0);
            __m256 c01 = _mm256_loadu_ps(cj0 + 8);
            __m256 c02 = _mm256_loadu_ps(cj0 + 16);
            __m256 c03 = _mm256_loadu_ps(cj0 + 24);
            __m256 c10 = _mm256_loadu_ps(cj1);
            __m256 c11 = _mm256_loadu_ps(cj1 + 8);
            __m256 c12 = _mm256_loadu_ps(cj1 + 16);
            __m256 c13 = _mm256_loadu_ps(cj1 + 24);
            for (std::size_t k = 0; k < depth; ++k) {
                const float *brow = b + k * bStride + jb;
                const __m256 av0 = _mm256_set1_ps(a0[k]);
                const __m256 av1 = _mm256_set1_ps(a1[k]);
                __m256 bv = _mm256_loadu_ps(brow);
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(av0, bv));
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(av1, bv));
                bv = _mm256_loadu_ps(brow + 8);
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(av0, bv));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(av1, bv));
                bv = _mm256_loadu_ps(brow + 16);
                c02 = _mm256_add_ps(c02, _mm256_mul_ps(av0, bv));
                c12 = _mm256_add_ps(c12, _mm256_mul_ps(av1, bv));
                bv = _mm256_loadu_ps(brow + 24);
                c03 = _mm256_add_ps(c03, _mm256_mul_ps(av0, bv));
                c13 = _mm256_add_ps(c13, _mm256_mul_ps(av1, bv));
            }
            _mm256_storeu_ps(cj0, c00);
            _mm256_storeu_ps(cj0 + 8, c01);
            _mm256_storeu_ps(cj0 + 16, c02);
            _mm256_storeu_ps(cj0 + 24, c03);
            _mm256_storeu_ps(cj1, c10);
            _mm256_storeu_ps(cj1 + 8, c11);
            _mm256_storeu_ps(cj1 + 16, c12);
            _mm256_storeu_ps(cj1 + 24, c13);
        }
        for (; jb + 8 <= cols; jb += 8) {
            __m256 c00 = _mm256_loadu_ps(c0row + jb);
            __m256 c10 = _mm256_loadu_ps(c1row + jb);
            for (std::size_t k = 0; k < depth; ++k) {
                const __m256 bv = _mm256_loadu_ps(b + k * bStride + jb);
                const __m256 av0 = _mm256_set1_ps(a0[k]);
                const __m256 av1 = _mm256_set1_ps(a1[k]);
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(av0, bv));
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(av1, bv));
            }
            _mm256_storeu_ps(c0row + jb, c00);
            _mm256_storeu_ps(c1row + jb, c10);
        }
        if (jb < cols) {
            float tail0[8], tail1[8];
            const std::size_t w = cols - jb;
            for (std::size_t j = 0; j < w; ++j) {
                tail0[j] = c0row[jb + j];
                tail1[j] = c1row[jb + j];
            }
            for (std::size_t k = 0; k < depth; ++k) {
                const float av0 = a0[k];
                const float av1 = a1[k];
                const float *brow = b + k * bStride + jb;
                for (std::size_t j = 0; j < w; ++j) {
                    tail0[j] += av0 * brow[j];
                    tail1[j] += av1 * brow[j];
                }
            }
            for (std::size_t j = 0; j < w; ++j) {
                c0row[jb + j] = tail0[j];
                c1row[jb + j] = tail1[j];
            }
        }
    }
    for (; i < rows; ++i)
        gemmRowF32Avx2(acc + i * accStride, a + i * aStride, b, bStride,
                       cols, depth);
}

void
quantizeBitsRowAvx2(std::uint16_t *dst, const float *src, std::size_t n)
{
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256i bits =
            _mm256_castps_si256(_mm256_loadu_ps(src + j));
        storeU16x8(dst + j, quantBits16(bits));
    }
    for (; j < n; ++j)
        dst[j] = Bfloat16::roundFromFloat(src[j]);
}

void
widenRowAvx2(float *dst, const std::uint16_t *src, std::size_t n)
{
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(dst + j, widen8(src + j));
    for (; j < n; ++j)
        dst[j] = widenBits(src[j]);
}

void
quantizeRoundtripRowAvx2(float *dst, const float *src, std::size_t n)
{
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(dst + j,
                         quantRoundtrip(_mm256_loadu_ps(src + j)));
    for (; j < n; ++j)
        dst[j] = quantizeBf16(src[j]);
}

void
truncateRowAvx2(float *dst, const float *src, std::size_t n)
{
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(dst + j, truncate8(_mm256_loadu_ps(src + j)));
    for (; j < n; ++j)
        dst[j] = truncateBf16(src[j]);
}

void
simdMulScalarRowAvx2(float *acc, float q, std::size_t n)
{
    const __m256 qv = _mm256_set1_ps(q);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 x = truncate8(_mm256_loadu_ps(acc + j));
        _mm256_storeu_ps(acc + j,
                         quantRoundtrip(_mm256_mul_ps(x, qv)));
    }
    for (; j < n; ++j)
        acc[j] = quantizeBf16(truncateBf16(acc[j]) * q);
}

void
simdAddScalarRowAvx2(float *acc, float q, std::size_t n)
{
    const __m256 qv = _mm256_set1_ps(q);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 x = truncate8(_mm256_loadu_ps(acc + j));
        _mm256_storeu_ps(acc + j,
                         quantRoundtrip(_mm256_add_ps(x, qv)));
    }
    for (; j < n; ++j)
        acc[j] = quantizeBf16(truncateBf16(acc[j]) + q);
}

void
simdMulVectorRowAvx2(float *acc, const float *v, std::size_t n)
{
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 x = truncate8(_mm256_loadu_ps(acc + j));
        const __m256 qv = quantRoundtrip(_mm256_loadu_ps(v + j));
        _mm256_storeu_ps(acc + j,
                         quantRoundtrip(_mm256_mul_ps(x, qv)));
    }
    for (; j < n; ++j)
        acc[j] = quantizeBf16(truncateBf16(acc[j]) * quantizeBf16(v[j]));
}

void
simdAddVectorRowAvx2(float *acc, const float *v, std::size_t n)
{
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 x = truncate8(_mm256_loadu_ps(acc + j));
        const __m256 qv = quantRoundtrip(_mm256_loadu_ps(v + j));
        _mm256_storeu_ps(acc + j,
                         quantRoundtrip(_mm256_add_ps(x, qv)));
    }
    for (; j < n; ++j)
        acc[j] = quantizeBf16(truncateBf16(acc[j]) + quantizeBf16(v[j]));
}

void
scaleQuantizeRowAvx2(float *v, float s, std::size_t n)
{
    const __m256 sv = _mm256_set1_ps(s);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 y = _mm256_mul_ps(_mm256_loadu_ps(v + j), sv);
        _mm256_storeu_ps(v + j, quantRoundtrip(y));
    }
    for (; j < n; ++j)
        v[j] = quantizeBf16(v[j] * s);
}

void
lutRowAvx2(float *acc, const std::uint32_t *table, std::size_t n)
{
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256i bits = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + j));
        const __m256i idx = _mm256_srli_epi32(bits, 16);
        const __m256i out = _mm256_i32gather_epi32(
            reinterpret_cast<const int *>(table), idx, 4);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + j), out);
    }
    for (; j < n; ++j) {
        std::uint32_t bits;
        std::memcpy(&bits, &acc[j], sizeof(bits));
        const std::uint32_t out = table[bits >> 16];
        std::memcpy(&acc[j], &out, sizeof(out));
    }
}

} // namespace

const KernelSet &
avx2KernelSet()
{
    static const KernelSet set = {
        "avx2",
        macRowF32Avx2,
        macRowBf16Avx2,
        mulAccRowF32Avx2,
        gemmTileBf16Avx2,
        gemmTileF32Avx2,
        quantizeBitsRowAvx2,
        widenRowAvx2,
        quantizeRoundtripRowAvx2,
        truncateRowAvx2,
        simdMulScalarRowAvx2,
        simdAddScalarRowAvx2,
        simdMulVectorRowAvx2,
        simdAddVectorRowAvx2,
        scaleQuantizeRowAvx2,
        lutRowAvx2,
    };
    return set;
}

} // namespace prose::kernels
