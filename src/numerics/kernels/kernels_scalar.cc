/**
 * @file
 * Scalar reference kernels. Every other tier is tested bit-for-bit
 * against this table, and this table defers to the inline Bfloat16
 * helpers in numerics/bfloat16.hh, so there is exactly one definition
 * of the numeric semantics in the codebase.
 *
 * Compiled with the baseline ISA and -ffp-contract=off: the mul and add
 * in the MAC rows must round separately (no FMA), because that is what
 * the pre-kernel scalar loops did and what the SIMD tiers replicate.
 */

#include "kernel_tiers.hh"

#include <cstring>

#include "numerics/bfloat16.hh"

namespace prose::kernels {

namespace {

inline float
widenBits(std::uint16_t bits)
{
    return Bfloat16::fromBits(bits).toFloat();
}

void
macRowF32Scalar(float *c, const float *b, float av, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        c[j] += av * b[j];
}

void
macRowBf16Scalar(float *acc, const std::uint16_t *b, float av,
                 std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        acc[j] += av * widenBits(b[j]);
}

void
mulAccRowF32Scalar(float *c, const float *a, const float *b,
                   std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        c[j] += a[j] * b[j];
}

void
gemmTileBf16Scalar(float *acc, std::size_t accStride,
                   const std::uint16_t *a, std::size_t aStride,
                   const std::uint16_t *b, std::size_t bStride,
                   std::size_t rows, std::size_t cols, std::size_t depth)
{
    for (std::size_t i = 0; i < rows; ++i) {
        const std::uint16_t *arow = a + i * aStride;
        float *crow = acc + i * accStride;
        for (std::size_t k = 0; k < depth; ++k)
            macRowBf16Scalar(crow, b + k * bStride, widenBits(arow[k]),
                             cols);
    }
}

void
gemmTileF32Scalar(float *acc, std::size_t accStride, const float *a,
                  std::size_t aStride, const float *b,
                  std::size_t bStride, std::size_t rows,
                  std::size_t cols, std::size_t depth)
{
    for (std::size_t i = 0; i < rows; ++i) {
        const float *arow = a + i * aStride;
        float *crow = acc + i * accStride;
        for (std::size_t k = 0; k < depth; ++k)
            macRowF32Scalar(crow, b + k * bStride, arow[k], cols);
    }
}

void
quantizeBitsRowScalar(std::uint16_t *dst, const float *src, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        dst[j] = Bfloat16::roundFromFloat(src[j]);
}

void
widenRowScalar(float *dst, const std::uint16_t *src, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        dst[j] = widenBits(src[j]);
}

void
quantizeRoundtripRowScalar(float *dst, const float *src, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        dst[j] = quantizeBf16(src[j]);
}

void
truncateRowScalar(float *dst, const float *src, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        dst[j] = truncateBf16(src[j]);
}

void
simdMulScalarRowScalar(float *acc, float q, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        acc[j] = quantizeBf16(truncateBf16(acc[j]) * q);
}

void
simdAddScalarRowScalar(float *acc, float q, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        acc[j] = quantizeBf16(truncateBf16(acc[j]) + q);
}

void
simdMulVectorRowScalar(float *acc, const float *v, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        acc[j] = quantizeBf16(truncateBf16(acc[j]) * quantizeBf16(v[j]));
}

void
simdAddVectorRowScalar(float *acc, const float *v, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        acc[j] = quantizeBf16(truncateBf16(acc[j]) + quantizeBf16(v[j]));
}

void
scaleQuantizeRowScalar(float *v, float s, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        v[j] = quantizeBf16(v[j] * s);
}

void
lutRowScalar(float *acc, const std::uint32_t *table, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j) {
        std::uint32_t bits;
        std::memcpy(&bits, &acc[j], sizeof(bits));
        const std::uint32_t out = table[bits >> 16];
        std::memcpy(&acc[j], &out, sizeof(out));
    }
}

} // namespace

const KernelSet &
scalarKernelSet()
{
    static const KernelSet set = {
        "scalar",
        macRowF32Scalar,
        macRowBf16Scalar,
        mulAccRowF32Scalar,
        gemmTileBf16Scalar,
        gemmTileF32Scalar,
        quantizeBitsRowScalar,
        widenRowScalar,
        quantizeRoundtripRowScalar,
        truncateRowScalar,
        simdMulScalarRowScalar,
        simdAddScalarRowScalar,
        simdMulVectorRowScalar,
        simdAddVectorRowScalar,
        scaleQuantizeRowScalar,
        lutRowScalar,
    };
    return set;
}

} // namespace prose::kernels
