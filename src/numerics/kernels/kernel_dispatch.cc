/**
 * @file
 * Tier selection: CPUID feature probing, the PROSE_SIMD override, and
 * the process-wide active-kernel pointer. This TU is compiled for the
 * baseline ISA; the per-tier TUs carry their own -m flags and are only
 * entered after the checks here say the CPU can run them.
 */

#include "kernel_dispatch.hh"

#include <atomic>
#include <cstdlib>

#include "common/logging.hh"
#include "kernel_tiers.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace prose::kernels {

namespace {

#if defined(__x86_64__) || defined(__i386__)

/** XCR0 as the OS configured it (0 when XSAVE is unavailable). */
std::uint64_t
readXcr0()
{
    unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return 0;
    constexpr unsigned int kOsxsaveBit = 1u << 27;
    if (!(ecx & kOsxsaveBit))
        return 0;
    unsigned int lo = 0, hi = 0;
    __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

struct CpuFeatures
{
    bool avx2 = false;
    bool avx512 = false;     ///< F+BW+DQ+VL, with OS zmm state enabled
    bool avx512bf16 = false; ///< VCVTNEPS2BF16 et al.
};

CpuFeatures
probeCpu()
{
    CpuFeatures features;
    unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        return features;

    const std::uint64_t xcr0 = readXcr0();
    // XCR0 bits: 1 = SSE state, 2 = AVX (ymm) state, 5..7 = opmask and
    // upper zmm state. Without OS support the instructions fault.
    const bool os_avx = (xcr0 & 0x6) == 0x6;
    const bool os_avx512 = os_avx && (xcr0 & 0xe0) == 0xe0;

    constexpr unsigned int kAvx2Bit = 1u << 5;
    features.avx2 = os_avx && (ebx & kAvx2Bit);

    constexpr unsigned int kAvx512fBit = 1u << 16;
    constexpr unsigned int kAvx512dqBit = 1u << 17;
    constexpr unsigned int kAvx512bwBit = 1u << 30;
    constexpr unsigned int kAvx512vlBit = 1u << 31;
    constexpr unsigned int kAvx512All =
        kAvx512fBit | kAvx512dqBit | kAvx512bwBit | kAvx512vlBit;
    features.avx512 = os_avx512 && (ebx & kAvx512All) == kAvx512All;

    unsigned int eax1 = 0, ebx1 = 0, ecx1 = 0, edx1 = 0;
    if (features.avx512 &&
        __get_cpuid_count(7, 1, &eax1, &ebx1, &ecx1, &edx1)) {
        constexpr unsigned int kAvx512Bf16Bit = 1u << 5;
        features.avx512bf16 = (eax1 & kAvx512Bf16Bit) != 0;
    }
    return features;
}

#else

struct CpuFeatures
{
    bool avx2 = false;
    bool avx512 = false;
    bool avx512bf16 = false;
};

CpuFeatures
probeCpu()
{
    return CpuFeatures{};
}

#endif

const CpuFeatures &
cpu()
{
    static const CpuFeatures features = probeCpu();
    return features;
}

/** The AVX-512 table with the hardware-BF16 convert spliced in when
 *  both the build and the CPU have it. */
#ifdef PROSE_KERNELS_HAVE_AVX512
const KernelSet &
resolvedAvx512KernelSet()
{
    static const KernelSet set = [] {
        KernelSet s = avx512KernelSet();
#ifdef PROSE_KERNELS_HAVE_AVX512BF16
        if (cpu().avx512bf16)
            s.quantizeBitsRow = quantizeBitsRowAvx512Bf16;
#endif
        return s;
    }();
    return set;
}
#endif

std::atomic<const KernelSet *> &
activeKernelSlot()
{
    static std::atomic<const KernelSet *> slot{ nullptr };
    return slot;
}

} // namespace

const char *
toString(SimdTier tier)
{
    switch (tier) {
      case SimdTier::Scalar:
        return "scalar";
      case SimdTier::Avx2:
        return "avx2";
      case SimdTier::Avx512:
        return "avx512";
    }
    return "?";
}

SimdTier
parseSimdTier(const std::string &name)
{
    if (name == "auto")
        return bestSimdTier();
    if (name == "scalar")
        return SimdTier::Scalar;
    if (name == "avx2")
        return SimdTier::Avx2;
    if (name == "avx512")
        return SimdTier::Avx512;
    fatal("unknown SIMD tier \"", name,
          "\"; expected auto, scalar, avx2, or avx512");
}

SimdTier
simdTierFromSpec(const char *spec)
{
    if (!spec || !*spec)
        return bestSimdTier();
    const std::string s = spec;
    SimdTier tier;
    if (s == "auto") {
        return bestSimdTier();
    } else if (s == "scalar") {
        tier = SimdTier::Scalar;
    } else if (s == "avx2") {
        tier = SimdTier::Avx2;
    } else if (s == "avx512") {
        tier = SimdTier::Avx512;
    } else {
        warn("ignoring invalid PROSE_SIMD=\"", s,
             "\"; using auto (expected auto, scalar, avx2, or avx512)");
        return bestSimdTier();
    }
    if (!simdTierAvailable(tier)) {
        const SimdTier best = bestSimdTier();
        warn("PROSE_SIMD=", s, " not available on this build/CPU; ",
             "falling back to ", toString(best));
        return best;
    }
    return tier;
}

bool
simdTierAvailable(SimdTier tier)
{
    switch (tier) {
      case SimdTier::Scalar:
        return true;
      case SimdTier::Avx2:
#ifdef PROSE_KERNELS_HAVE_AVX2
        return cpu().avx2;
#else
        return false;
#endif
      case SimdTier::Avx512:
#ifdef PROSE_KERNELS_HAVE_AVX512
        return cpu().avx512;
#else
        return false;
#endif
    }
    return false;
}

SimdTier
bestSimdTier()
{
    if (simdTierAvailable(SimdTier::Avx512))
        return SimdTier::Avx512;
    if (simdTierAvailable(SimdTier::Avx2))
        return SimdTier::Avx2;
    return SimdTier::Scalar;
}

bool
avx512Bf16InUse()
{
#if defined(PROSE_KERNELS_HAVE_AVX512) && \
    defined(PROSE_KERNELS_HAVE_AVX512BF16)
    return simdTierAvailable(SimdTier::Avx512) && cpu().avx512bf16;
#else
    return false;
#endif
}

SimdTier
defaultSimdTier()
{
    static const SimdTier tier =
        simdTierFromSpec(std::getenv("PROSE_SIMD"));
    return tier;
}

const KernelSet &
kernelsForTier(SimdTier tier)
{
    if (!simdTierAvailable(tier)) {
        fatal("SIMD tier ", toString(tier),
              " is not available on this build/CPU");
    }
    switch (tier) {
      case SimdTier::Scalar:
        return scalarKernelSet();
      case SimdTier::Avx2:
#ifdef PROSE_KERNELS_HAVE_AVX2
        return avx2KernelSet();
#else
        break;
#endif
      case SimdTier::Avx512:
#ifdef PROSE_KERNELS_HAVE_AVX512
        return resolvedAvx512KernelSet();
#else
        break;
#endif
    }
    panic("unreachable SIMD tier");
}

const KernelSet &
activeKernels()
{
    const KernelSet *set =
        activeKernelSlot().load(std::memory_order_acquire);
    if (!set) {
        set = &kernelsForTier(defaultSimdTier());
        activeKernelSlot().store(set, std::memory_order_release);
    }
    return *set;
}

SimdTier
activeSimdTier()
{
    return parseSimdTier(activeKernels().name);
}

void
setActiveSimdTier(SimdTier tier)
{
    activeKernelSlot().store(&kernelsForTier(tier),
                             std::memory_order_release);
}

std::string
describeSimdSupport()
{
    std::string out = toString(activeSimdTier());
    if (activeSimdTier() == SimdTier::Avx512 && avx512Bf16InUse())
        out += " (bf16)";
    return out;
}

} // namespace prose::kernels
