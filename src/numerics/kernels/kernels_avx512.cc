/**
 * @file
 * AVX-512 kernel tier (F+BW+DQ+VL). Compiled with its own -m flags and
 * -ffp-contract=off, never -mfma — see kernels_avx2.cc for why fused
 * contraction is forbidden.
 *
 * Everything is masked, so there are no scalar tails: a row of any
 * length runs the same vector code path with a partial mask on the last
 * chunk (masked loads/stores fault-suppress the dead lanes). The bf16
 * conversions are the same integer RNE emulation as the scalar
 * reference, 16 lanes wide.
 */

#include "kernel_tiers.hh"

#include <immintrin.h>

#include <vector>

#include "numerics/bfloat16.hh"

// GCC PR105593: _mm512_srli_epi32's merge-source is the "undefined"
// self-init idiom (__m512i __Y = __Y) and trips -Wmaybe-uninitialized
// when inlined at -O3, although every lane is overwritten under an
// all-ones mask. Header-level suppression for this TU only.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace prose::kernels {

namespace {

inline float
widenBits(std::uint16_t bits)
{
    return Bfloat16::fromBits(bits).toFloat();
}

/** Mask with the low `live` of 16 lanes set (live <= 16). */
inline __mmask16
headMask(std::size_t live)
{
    return static_cast<__mmask16>((1u << live) - 1u);
}

inline __m512i
hiMask()
{
    return _mm512_set1_epi32(static_cast<std::int32_t>(0xffff0000u));
}

/** Lanes holding NaNs. */
inline __mmask16
nanLanes(__m512i bits)
{
    return _mm512_cmpgt_epi32_mask(
        _mm512_and_si512(bits, _mm512_set1_epi32(0x7fffffff)),
        _mm512_set1_epi32(0x7f800000));
}

/** `bits + 0x7fff + ((bits >> 16) & 1)` — the RNE bias add. */
inline __m512i
rneRounded(__m512i bits)
{
    const __m512i lsb = _mm512_and_si512(_mm512_srli_epi32(bits, 16),
                                         _mm512_set1_epi32(1));
    return _mm512_add_epi32(
        bits, _mm512_add_epi32(lsb, _mm512_set1_epi32(0x7fff)));
}

/** quantizeBf16 round trip on fp32 bits, 16 lanes. */
inline __m512i
quantRoundtripBits(__m512i bits)
{
    const __m512i normal = _mm512_and_si512(rneRounded(bits), hiMask());
    const __m512i nan =
        _mm512_or_si512(_mm512_and_si512(bits, hiMask()),
                        _mm512_set1_epi32(0x00400000));
    return _mm512_mask_mov_epi32(normal, nanLanes(bits), nan);
}

inline __m512
quantRoundtrip(__m512 v)
{
    return _mm512_castsi512_ps(
        quantRoundtripBits(_mm512_castps_si512(v)));
}

/** fp32 -> bf16 bit pattern in the low 16 bits of each epi32 lane. */
inline __m512i
quantBits16(__m512i bits)
{
    const __m512i normal = _mm512_srli_epi32(rneRounded(bits), 16);
    const __m512i nan = _mm512_or_si512(_mm512_srli_epi32(bits, 16),
                                        _mm512_set1_epi32(0x0040));
    return _mm512_mask_mov_epi32(normal, nanLanes(bits), nan);
}

/** Widen 16 (masked) bf16 bit patterns to fp32; dead lanes are 0. */
inline __m512
widen16(const std::uint16_t *src, __mmask16 m)
{
    const __m256i raw = _mm256_maskz_loadu_epi16(
        m, reinterpret_cast<const __m256i *>(src));
    return _mm512_castsi512_ps(
        _mm512_slli_epi32(_mm512_cvtepu16_epi32(raw), 16));
}

inline __m512
truncate16(__m512 v)
{
    return _mm512_castsi512_ps(
        _mm512_and_si512(_mm512_castps_si512(v), hiMask()));
}

void
macRowF32Avx512(float *c, const float *b, float av, std::size_t n)
{
    const __m512 avv = _mm512_set1_ps(av);
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
        const __m512 prod = _mm512_mul_ps(avv, _mm512_loadu_ps(b + j));
        _mm512_storeu_ps(c + j,
                         _mm512_add_ps(_mm512_loadu_ps(c + j), prod));
    }
    if (j < n) {
        const __mmask16 m = headMask(n - j);
        const __m512 prod =
            _mm512_mul_ps(avv, _mm512_maskz_loadu_ps(m, b + j));
        const __m512 sum =
            _mm512_add_ps(_mm512_maskz_loadu_ps(m, c + j), prod);
        _mm512_mask_storeu_ps(c + j, m, sum);
    }
}

void
mulAccRowF32Avx512(float *c, const float *a, const float *b,
                   std::size_t n)
{
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
        const __m512 prod = _mm512_mul_ps(_mm512_loadu_ps(a + j),
                                          _mm512_loadu_ps(b + j));
        _mm512_storeu_ps(c + j,
                         _mm512_add_ps(_mm512_loadu_ps(c + j), prod));
    }
    if (j < n) {
        const __mmask16 m = headMask(n - j);
        const __m512 prod =
            _mm512_mul_ps(_mm512_maskz_loadu_ps(m, a + j),
                          _mm512_maskz_loadu_ps(m, b + j));
        const __m512 sum =
            _mm512_add_ps(_mm512_maskz_loadu_ps(m, c + j), prod);
        _mm512_mask_storeu_ps(c + j, m, sum);
    }
}

void
macRowBf16Avx512(float *acc, const std::uint16_t *b, float av,
                 std::size_t n)
{
    const __m512 avv = _mm512_set1_ps(av);
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
        const __m512 prod =
            _mm512_mul_ps(avv, widen16(b + j, 0xffff));
        _mm512_storeu_ps(
            acc + j, _mm512_add_ps(_mm512_loadu_ps(acc + j), prod));
    }
    if (j < n) {
        const __mmask16 m = headMask(n - j);
        const __m512 prod = _mm512_mul_ps(avv, widen16(b + j, m));
        const __m512 sum =
            _mm512_add_ps(_mm512_maskz_loadu_ps(m, acc + j), prod);
        _mm512_mask_storeu_ps(acc + j, m, sum);
    }
}

void widenRowAvx512(float *dst, const std::uint16_t *src, std::size_t n);

/** Every (row, column-vector) cell of the largest block shape; OP is
 *  applied to the literal pair so each accumulator is a distinct named
 *  local (see gemmRowBlockF32Avx512 for why it cannot be an array). */
#define PROSE_GEMM_CELLS(OP)                                            \
    OP(0, 0) OP(0, 1) OP(0, 2) OP(0, 3)                                 \
    OP(1, 0) OP(1, 1) OP(1, 2) OP(1, 3)                                 \
    OP(2, 0) OP(2, 1) OP(2, 2) OP(2, 3)                                 \
    OP(3, 0) OP(3, 1) OP(3, 2) OP(3, 3)                                 \
    OP(4, 0) OP(4, 1) OP(4, 2) OP(4, 3)                                 \
    OP(5, 0) OP(5, 1) OP(5, 2) OP(5, 3)

#define PROSE_GEMM_COLS(OP) OP(0) OP(1) OP(2) OP(3)

/**
 * One R-row x (NV * 16)-column block of the fp32 GEMM core, both
 * extents known at compile time so the loops fully unroll. The
 * accumulators are macro-expanded NAMED locals, not a local
 * __m512[R][NV] array: GCC never fully scalarizes the array (even
 * under a raised --param=sra-max-scalarization-size-Ospeed), so it
 * kept the array's stack home live and re-stored every accumulator on
 * every k iteration — 12+ dead 64-byte stores per iteration
 * saturating the single 512-bit store port, ~2.3x slower than the
 * named form. With named locals the dead cells (guarded out by
 * `if constexpr`) vanish and the live ones provably stay in
 * registers across the whole k loop. The A broadcasts come straight
 * from memory (vbroadcastss, no port-5 shuffle); the largest shape,
 * R = 6 x NV = 4, uses 24 accumulator + 4 B + 1 broadcast registers
 * of the 32-register file. Each accumulator lane sees its fp32 ops in
 * exactly the scalar ascending-k order; dead lanes of the last chunk
 * accumulate garbage that the masked store discards.
 */
template <int R, int NV>
inline void
gemmRowBlockF32Avx512(float *cj, std::size_t accStride,
                      const float *a, std::size_t aStride,
                      const float *bj, std::size_t bStride,
                      std::size_t depth, const __mmask16 *masks)
{
#define PROSE_GEMM_DECL(r, v)                                           \
    __m512 c##r##v = _mm512_setzero_ps();                               \
    (void)c##r##v;
    PROSE_GEMM_CELLS(PROSE_GEMM_DECL)
#undef PROSE_GEMM_DECL
#define PROSE_GEMM_LOAD(r, v)                                           \
    if constexpr (r < R && v < NV)                                      \
        c##r##v = _mm512_maskz_loadu_ps(masks[v],                       \
                                        cj + r * accStride + v * 16);
    PROSE_GEMM_CELLS(PROSE_GEMM_LOAD)
#undef PROSE_GEMM_LOAD
    for (std::size_t k = 0; k < depth; ++k) {
        const float *brow = bj + k * bStride;
#define PROSE_GEMM_BLOAD(v)                                             \
        __m512 b##v = _mm512_setzero_ps();                              \
        (void)b##v;                                                     \
        if constexpr (v < NV)                                           \
            b##v = _mm512_maskz_loadu_ps(masks[v], brow + v * 16);
        PROSE_GEMM_COLS(PROSE_GEMM_BLOAD)
#undef PROSE_GEMM_BLOAD
#define PROSE_GEMM_MAC(r, v)                                            \
        if constexpr (r < R && v < NV)                                  \
            c##r##v = _mm512_add_ps(                                    \
                c##r##v,                                                \
                _mm512_mul_ps(_mm512_set1_ps(a[r * aStride + k]),       \
                              b##v));
        PROSE_GEMM_CELLS(PROSE_GEMM_MAC)
#undef PROSE_GEMM_MAC
    }
#define PROSE_GEMM_STORE(r, v)                                          \
    if constexpr (r < R && v < NV)                                      \
        _mm512_mask_storeu_ps(cj + r * accStride + v * 16, masks[v],    \
                              c##r##v);
    PROSE_GEMM_CELLS(PROSE_GEMM_STORE)
#undef PROSE_GEMM_STORE
}

#undef PROSE_GEMM_CELLS
#undef PROSE_GEMM_COLS

/** Dispatch the compile-time column count for an R-row block. */
template <int R>
inline void
gemmRowBlockDispatchF32Avx512(float *cj, std::size_t accStride,
                              const float *a, std::size_t aStride,
                              const float *bj, std::size_t bStride,
                              std::size_t depth, std::size_t nvec,
                              const __mmask16 *masks)
{
    switch (nvec) {
      case 1:
        gemmRowBlockF32Avx512<R, 1>(cj, accStride, a, aStride, bj,
                                    bStride, depth, masks);
        break;
      case 2:
        gemmRowBlockF32Avx512<R, 2>(cj, accStride, a, aStride, bj,
                                    bStride, depth, masks);
        break;
      case 3:
        gemmRowBlockF32Avx512<R, 3>(cj, accStride, a, aStride, bj,
                                    bStride, depth, masks);
        break;
      default:
        gemmRowBlockF32Avx512<R, 4>(cj, accStride, a, aStride, bj,
                                    bStride, depth, masks);
        break;
    }
}

/** The shared fp32 GEMM core behind both tile kernels (the bf16 tier
 *  funnels here after exact operand widening into scratch). Full
 *  6-row groups take the widest block; the final 1..5-row remainder
 *  gets its own register-blocked instantiation instead of a slow
 *  row-at-a-time path, which matters for the 16-row E-array tiles. */
inline void
gemmRowsF32Avx512(float *acc, std::size_t accStride, const float *a,
                  std::size_t aStride, const float *b,
                  std::size_t bStride, std::size_t rows,
                  std::size_t cols, std::size_t depth)
{
    for (std::size_t jb = 0; jb < cols; jb += 64) {
        const std::size_t live = std::min<std::size_t>(64, cols - jb);
        const std::size_t nvec = (live + 15) / 16;
        __mmask16 masks[4] = { 0, 0, 0, 0 };
        for (std::size_t v = 0; v < nvec; ++v)
            masks[v] = headMask(std::min<std::size_t>(16, live - v * 16));

        const float *bj = b + jb;
        std::size_t i = 0;
        for (; i + 6 <= rows; i += 6)
            gemmRowBlockDispatchF32Avx512<6>(
                acc + i * accStride + jb, accStride, a + i * aStride,
                aStride, bj, bStride, depth, nvec, masks);
        float *cj = acc + i * accStride + jb;
        const float *aj = a + i * aStride;
        switch (rows - i) {
          case 1:
            gemmRowBlockDispatchF32Avx512<1>(cj, accStride, aj, aStride,
                                             bj, bStride, depth, nvec,
                                             masks);
            break;
          case 2:
            gemmRowBlockDispatchF32Avx512<2>(cj, accStride, aj, aStride,
                                             bj, bStride, depth, nvec,
                                             masks);
            break;
          case 3:
            gemmRowBlockDispatchF32Avx512<3>(cj, accStride, aj, aStride,
                                             bj, bStride, depth, nvec,
                                             masks);
            break;
          case 4:
            gemmRowBlockDispatchF32Avx512<4>(cj, accStride, aj, aStride,
                                             bj, bStride, depth, nvec,
                                             masks);
            break;
          case 5:
            gemmRowBlockDispatchF32Avx512<5>(cj, accStride, aj, aStride,
                                             bj, bStride, depth, nvec,
                                             masks);
            break;
          default:
            break;
        }
    }
}

void
gemmTileF32Avx512(float *acc, std::size_t accStride, const float *a,
                  std::size_t aStride, const float *b,
                  std::size_t bStride, std::size_t rows,
                  std::size_t cols, std::size_t depth)
{
    gemmRowsF32Avx512(acc, accStride, a, aStride, b, bStride, rows,
                      cols, depth);
}

void
gemmTileBf16Avx512(float *acc, std::size_t accStride,
                   const std::uint16_t *a, std::size_t aStride,
                   const std::uint16_t *b, std::size_t bStride,
                   std::size_t rows, std::size_t cols, std::size_t depth)
{
    // Widen both operands to fp32 scratch once, then run the shared
    // register-blocked fp32 core. Widening is exact (bits << 16), so
    // the arithmetic — and each accumulator's ascending-k op order —
    // is identical to widening inline; hoisting it out of the row
    // blocks removes the per-block repeat of the conversion work and
    // the scalar widen feeding every A broadcast, which together
    // dominate the inline formulation. Thread-local scratch: no
    // allocation churn after warmup, no sharing between pool lanes.
    static thread_local std::vector<float> a_scratch;
    static thread_local std::vector<float> b_scratch;
    a_scratch.resize(rows * depth);
    for (std::size_t i = 0; i < rows; ++i)
        widenRowAvx512(a_scratch.data() + i * depth, a + i * aStride,
                       depth);
    // Block the depth so the widened B panel (kKB * live * 4 B = 32 KiB)
    // stays L1-resident across its per-6-row-group re-reads; deep
    // tiles (e.g. 64x64x3072 FFN-down) would otherwise stream a 768 KiB
    // panel from L2/L3 once per row group. The extra C-tile round trips
    // per k-block are amortized over the whole panel. Ascending kb +
    // ascending k inside the core keeps the per-element fp32 order
    // exactly scalar.
    for (std::size_t jb = 0; jb < cols; jb += 64) {
        const std::size_t live = std::min<std::size_t>(64, cols - jb);
        const std::size_t kKB = (32 * 1024 / sizeof(float)) / live;
        b_scratch.resize(std::min(kKB, depth) * live);
        for (std::size_t kb = 0; kb < depth; kb += kKB) {
            const std::size_t kd = std::min(kKB, depth - kb);
            for (std::size_t k = 0; k < kd; ++k)
                widenRowAvx512(b_scratch.data() + k * live,
                               b + (kb + k) * bStride + jb, live);
            gemmRowsF32Avx512(acc + jb, accStride,
                              a_scratch.data() + kb, depth,
                              b_scratch.data(), live, rows, live, kd);
        }
    }
}

void
quantizeBitsRowAvx512(std::uint16_t *dst, const float *src,
                      std::size_t n)
{
    for (std::size_t j = 0; j < n; j += 16) {
        const __mmask16 m =
            headMask(std::min<std::size_t>(16, n - j));
        const __m512i bits = _mm512_castps_si512(
            _mm512_maskz_loadu_ps(m, src + j));
        const __m512i q = quantBits16(bits);
        _mm256_mask_storeu_epi16(dst + j, m,
                                 _mm512_cvtepi32_epi16(q));
    }
}

void
widenRowAvx512(float *dst, const std::uint16_t *src, std::size_t n)
{
    for (std::size_t j = 0; j < n; j += 16) {
        const __mmask16 m =
            headMask(std::min<std::size_t>(16, n - j));
        _mm512_mask_storeu_ps(dst + j, m, widen16(src + j, m));
    }
}

void
quantizeRoundtripRowAvx512(float *dst, const float *src, std::size_t n)
{
    for (std::size_t j = 0; j < n; j += 16) {
        const __mmask16 m =
            headMask(std::min<std::size_t>(16, n - j));
        const __m512 v = _mm512_maskz_loadu_ps(m, src + j);
        _mm512_mask_storeu_ps(dst + j, m, quantRoundtrip(v));
    }
}

void
truncateRowAvx512(float *dst, const float *src, std::size_t n)
{
    for (std::size_t j = 0; j < n; j += 16) {
        const __mmask16 m =
            headMask(std::min<std::size_t>(16, n - j));
        const __m512 v = _mm512_maskz_loadu_ps(m, src + j);
        _mm512_mask_storeu_ps(dst + j, m, truncate16(v));
    }
}

void
simdMulScalarRowAvx512(float *acc, float q, std::size_t n)
{
    const __m512 qv = _mm512_set1_ps(q);
    for (std::size_t j = 0; j < n; j += 16) {
        const __mmask16 m =
            headMask(std::min<std::size_t>(16, n - j));
        const __m512 x =
            truncate16(_mm512_maskz_loadu_ps(m, acc + j));
        _mm512_mask_storeu_ps(
            acc + j, m, quantRoundtrip(_mm512_mul_ps(x, qv)));
    }
}

void
simdAddScalarRowAvx512(float *acc, float q, std::size_t n)
{
    const __m512 qv = _mm512_set1_ps(q);
    for (std::size_t j = 0; j < n; j += 16) {
        const __mmask16 m =
            headMask(std::min<std::size_t>(16, n - j));
        const __m512 x =
            truncate16(_mm512_maskz_loadu_ps(m, acc + j));
        _mm512_mask_storeu_ps(
            acc + j, m, quantRoundtrip(_mm512_add_ps(x, qv)));
    }
}

void
simdMulVectorRowAvx512(float *acc, const float *v, std::size_t n)
{
    for (std::size_t j = 0; j < n; j += 16) {
        const __mmask16 m =
            headMask(std::min<std::size_t>(16, n - j));
        const __m512 x =
            truncate16(_mm512_maskz_loadu_ps(m, acc + j));
        const __m512 qv =
            quantRoundtrip(_mm512_maskz_loadu_ps(m, v + j));
        _mm512_mask_storeu_ps(
            acc + j, m, quantRoundtrip(_mm512_mul_ps(x, qv)));
    }
}

void
simdAddVectorRowAvx512(float *acc, const float *v, std::size_t n)
{
    for (std::size_t j = 0; j < n; j += 16) {
        const __mmask16 m =
            headMask(std::min<std::size_t>(16, n - j));
        const __m512 x =
            truncate16(_mm512_maskz_loadu_ps(m, acc + j));
        const __m512 qv =
            quantRoundtrip(_mm512_maskz_loadu_ps(m, v + j));
        _mm512_mask_storeu_ps(
            acc + j, m, quantRoundtrip(_mm512_add_ps(x, qv)));
    }
}

void
scaleQuantizeRowAvx512(float *v, float s, std::size_t n)
{
    const __m512 sv = _mm512_set1_ps(s);
    for (std::size_t j = 0; j < n; j += 16) {
        const __mmask16 m =
            headMask(std::min<std::size_t>(16, n - j));
        const __m512 y =
            _mm512_mul_ps(_mm512_maskz_loadu_ps(m, v + j), sv);
        _mm512_mask_storeu_ps(v + j, m, quantRoundtrip(y));
    }
}

void
lutRowAvx512(float *acc, const std::uint32_t *table, std::size_t n)
{
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
        const __m512i bits = _mm512_loadu_si512(acc + j);
        const __m512i idx = _mm512_srli_epi32(bits, 16);
        const __m512i out = _mm512_i32gather_epi32(idx, table, 4);
        _mm512_storeu_si512(acc + j, out);
    }
    if (j < n) {
        const __mmask16 m = headMask(n - j);
        const __m512i bits = _mm512_maskz_loadu_epi32(m, acc + j);
        const __m512i idx = _mm512_srli_epi32(bits, 16);
        const __m512i out = _mm512_mask_i32gather_epi32(
            _mm512_setzero_si512(), m, idx, table, 4);
        _mm512_mask_storeu_epi32(acc + j, m, out);
    }
}

} // namespace

const KernelSet &
avx512KernelSet()
{
    static const KernelSet set = {
        "avx512",
        macRowF32Avx512,
        macRowBf16Avx512,
        mulAccRowF32Avx512,
        gemmTileBf16Avx512,
        gemmTileF32Avx512,
        quantizeBitsRowAvx512,
        widenRowAvx512,
        quantizeRoundtripRowAvx512,
        truncateRowAvx512,
        simdMulScalarRowAvx512,
        simdAddScalarRowAvx512,
        simdMulVectorRowAvx512,
        simdAddVectorRowAvx512,
        scaleQuantizeRowAvx512,
        lutRowAvx512,
    };
    return set;
}

} // namespace prose::kernels
