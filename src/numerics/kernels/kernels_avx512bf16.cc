/**
 * @file
 * Hardware bf16 conversion (AVX512-BF16's VCVTNEPS2BF16) for the
 * quantize row, used in place of the integer RNE emulation when CPUID
 * says the instruction exists.
 *
 * VCVTNEPS2BF16 rounds to nearest-even and quiets NaNs exactly like
 * Bfloat16::roundFromFloat, with one documented exception: it treats
 * denormal *inputs* as zero (DAZ behaviour regardless of MXCSR), where
 * the reference rounds them like any other value. Denormal fp32 inputs
 * always produce denormal bf16 results (same exponent range), so the
 * guard below detects chunks containing any denormal input and routes
 * just those through the scalar reference. Randomized cross-tier tests
 * pin this tier to the scalar bits, denormals included.
 */

#include "kernel_tiers.hh"

#include <immintrin.h>

#include "numerics/bfloat16.hh"

namespace prose::kernels {

void
quantizeBitsRowAvx512Bf16(std::uint16_t *dst, const float *src,
                          std::size_t n)
{
    for (std::size_t j = 0; j < n; j += 16) {
        const std::size_t live = std::min<std::size_t>(16, n - j);
        const __mmask16 m =
            static_cast<__mmask16>((1u << live) - 1u);
        const __m512 v = _mm512_maskz_loadu_ps(m, src + j);
        const __m512i abs = _mm512_and_si512(
            _mm512_castps_si512(v), _mm512_set1_epi32(0x7fffffff));
        // Denormal input: 0 < abs < 2^-126. Dead lanes loaded as +0
        // can never trip this.
        const __mmask16 denormal = _mm512_mask_cmplt_epi32_mask(
            _mm512_cmpgt_epi32_mask(abs, _mm512_setzero_si512()), abs,
            _mm512_set1_epi32(0x00800000));
        if (denormal) {
            for (std::size_t l = 0; l < live; ++l)
                dst[j + l] = Bfloat16::roundFromFloat(src[j + l]);
            continue;
        }
        // GCC vector types convert with a (C-style) bit cast only.
        const __m256i h = (__m256i)_mm512_cvtneps_pbh(v);
        _mm256_mask_storeu_epi16(dst + j, m, h);
    }
}

} // namespace prose::kernels
