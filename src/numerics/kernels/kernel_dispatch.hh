/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the numerics/fsim hot loops.
 *
 * A KernelSet is a table of function pointers covering the inner loops
 * that dominate the profile: the fp32 MAC-row update behind the tiled
 * matmul, the bf16 GEMM microkernel behind the fast-forward systolic
 * engine and the cached-weight model path, the bf16<->fp32 conversion
 * sweeps, and the per-row SIMD-unit/softmax epilogues. Three tiers are
 * provided — scalar (the reference), AVX2, and AVX-512 (which picks up
 * the AVX512-BF16 convert instruction when the CPU has it) — selected
 * once at startup by CPUID and overridable with PROSE_SIMD.
 *
 * Bit-exactness contract (non-negotiable): every tier produces results
 * bit-identical to the scalar reference for every input, including
 * signed zeros, denormals, and +-Inf; wherever the reference produces
 * a NaN, every tier produces a NaN (the payload bits are outside the
 * contract — IEEE 754 leaves payload selection to the operation, x86
 * propagates the first NaN *source operand*, and the scalar tier's
 * operand order is whatever the compiler emitted). Vectorization is
 * only applied across *independent* output lanes (the j dimension); the
 * ascending-k accumulation order of each output element is preserved
 * verbatim, and no FMA contraction is permitted anywhere (the scalar
 * reference rounds the product and the sum separately). The kernels/
 * translation units are compiled with -ffp-contract=off and without
 * -mfma to make that structurally true; tests/numerics/
 * test_kernel_dispatch.cc hammers every tier against scalar on
 * randomized shapes, strides, and special values.
 *
 * Selection:
 *   - activeKernels() returns the process-wide table (CPUID best tier,
 *     or whatever PROSE_SIMD={auto,scalar,avx2,avx512} forced).
 *   - setActiveSimdTier() overrides at runtime (tests, debugging).
 *   - kernelsForTier() fetches a specific tier, fatal if this build or
 *     CPU cannot run it.
 */

#ifndef PROSE_NUMERICS_KERNELS_KERNEL_DISPATCH_HH
#define PROSE_NUMERICS_KERNELS_KERNEL_DISPATCH_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace prose::kernels {

/**
 * One tier's implementations of the hot inner loops. All pointers are
 * always non-null. Unless stated otherwise, `n` is an element count and
 * rows are contiguous; strides are in elements, not bytes.
 *
 * bf16 values travel as raw uint16_t bit patterns (the top half of the
 * IEEE-754 binary32 encoding) so tiles can be stored as compact
 * structure-of-arrays planes; widening shifts the bits left 16 and is
 * exact.
 */
struct KernelSet
{
    /** Tier name for logs ("scalar", "avx2", ...). */
    const char *name;

    /** c[j] += av * b[j] — fp32 MAC-row, product and sum each rounded
     *  (no FMA). */
    void (*macRowF32)(float *c, const float *b, float av, std::size_t n);

    /** acc[j] += av * widen(b[j]) — MAC-row against a bf16-bits row. */
    void (*macRowBf16)(float *acc, const std::uint16_t *b, float av,
                       std::size_t n);

    /**
     * c[j] += a[j] * b[j] — elementwise MAC-row, product and sum each
     * rounded (no FMA). The diagonal-batched stepped engine's wavefront
     * sweep: one call applies depth-k' operands to every PE on one
     * anti-diagonal, whose accumulators are disjoint by construction.
     */
    void (*mulAccRowF32)(float *c, const float *a, const float *b,
                         std::size_t n);

    /**
     * acc[i][j] += sum_k widen(a[i][k]) * widen(b[k][j]), accumulated
     * per output element in ascending-k order — the fast-forward
     * engine's per-PE dot product and the cached-bf16 model GEMM.
     * `acc` is rows x cols with row stride accStride; `a` is rows x
     * depth (stride aStride); `b` is depth x cols (stride bStride).
     * Every element is MAC'd — no zero skipping — matching the stepped
     * wavefront, which fires every PE with two valid operands (so
     * +-0 * Inf still produces NaN). The tiled matmul's bits path
     * funnels its cache blocks here too; both rely on `acc += ±0 ·
     * finite` being an exact no-op on accumulators that are never -0.
     */
    void (*gemmTileBf16)(float *acc, std::size_t accStride,
                         const std::uint16_t *a, std::size_t aStride,
                         const std::uint16_t *b, std::size_t bStride,
                         std::size_t rows, std::size_t cols,
                         std::size_t depth);

    /**
     * acc[i][j] += sum_k a[i][k] * b[k][j] in ascending-k order per
     * output element — the fp32 twin of gemmTileBf16, behind the tiled
     * matmul's cache blocks. Accumulators live in registers across the
     * whole depth loop (the MAC-row formulation round-trips the acc row
     * through memory on every k step, which is the dominant cost for
     * fp32 GEMM). Like the bf16 tile, every element is MAC'd; callers
     * with a zero-skip contract rely on `acc += ±0 · finite` being an
     * exact no-op on accumulators that are never -0.
     */
    void (*gemmTileF32)(float *acc, std::size_t accStride,
                        const float *a, std::size_t aStride,
                        const float *b, std::size_t bStride,
                        std::size_t rows, std::size_t cols,
                        std::size_t depth);

    /** dst[j] = bf16 bits of src[j], round-to-nearest-even,
     *  NaN-preserving (Bfloat16::roundFromFloat semantics). */
    void (*quantizeBitsRow)(std::uint16_t *dst, const float *src,
                            std::size_t n);

    /** dst[j] = widen(src[j]) — exact bf16-bits -> fp32. */
    void (*widenRow)(float *dst, const std::uint16_t *src, std::size_t n);

    /** dst[j] = quantizeBf16(src[j]) — fp32 -> bf16 -> fp32 round trip.
     *  In-place (dst == src) allowed. */
    void (*quantizeRoundtripRow)(float *dst, const float *src,
                                 std::size_t n);

    /** dst[j] = truncateBf16(src[j]) — drop the low 16 bits (the PE
     *  OUTPUT-port tap). In-place allowed. */
    void (*truncateRow)(float *dst, const float *src, std::size_t n);

    /** acc[j] = quantizeBf16(truncateBf16(acc[j]) * q); q must already
     *  be bf16-quantized (SIMD-unit MulScalar semantics). */
    void (*simdMulScalarRow)(float *acc, float q, std::size_t n);

    /** acc[j] = quantizeBf16(truncateBf16(acc[j]) + q); q pre-quantized. */
    void (*simdAddScalarRow)(float *acc, float q, std::size_t n);

    /** acc[j] = quantizeBf16(truncateBf16(acc[j]) * quantizeBf16(v[j])). */
    void (*simdMulVectorRow)(float *acc, const float *v, std::size_t n);

    /** acc[j] = quantizeBf16(truncateBf16(acc[j]) + quantizeBf16(v[j])). */
    void (*simdAddVectorRow)(float *acc, const float *v, std::size_t n);

    /** v[j] = quantizeBf16(v[j] * s) — the softmax divide epilogue. */
    void (*scaleQuantizeRow)(float *v, float s, std::size_t n);

    /**
     * acc[j] = bitcast<float>(table[bits(acc[j]) >> 16]) — the
     * special-function (GELU/Exp) sweep. `table` is a flat 65536-entry
     * map from a bf16 bit pattern (the truncated top half of the
     * accumulator) to the widened fp32 bit pattern of the LUT output;
     * TwoLevelLut::flattenToFloatBits builds it by evaluating the
     * two-level hardware lookup on every possible input, so a plain
     * table read — scalar or gathered — is bit-exact by construction,
     * NaNs and denormals included.
     */
    void (*lutRow)(float *acc, const std::uint32_t *table,
                   std::size_t n);
};

/** Dispatch tiers, ordered from reference to widest. */
enum class SimdTier
{
    Scalar,
    Avx2,
    Avx512,
};

/** Lowercase tier name ("scalar", "avx2", "avx512"). */
const char *toString(SimdTier tier);

/**
 * Strict parse of a tier name: "scalar", "avx2", "avx512", or "auto"
 * (which resolves to bestSimdTier()). Unknown names are fatal.
 * Availability is NOT checked — use simdTierAvailable / kernelsForTier.
 */
SimdTier parseSimdTier(const std::string &name);

/**
 * Forgiving PROSE_SIMD semantics for environment input: null/empty or
 * "auto" mean bestSimdTier(); an unknown name warns and falls back to
 * auto; a known but unavailable tier warns and clamps to the best
 * available one. Exposed separately from the cached default so tests
 * can exercise the parsing without touching the process environment.
 */
SimdTier simdTierFromSpec(const char *spec);

/** True when this build AND this CPU can run the tier. Scalar is
 *  always available. */
bool simdTierAvailable(SimdTier tier);

/** Widest tier available on this build+CPU. */
SimdTier bestSimdTier();

/** True when the AVX-512 tier is using the hardware BF16 convert
 *  (AVX512-BF16 present and compiled in). */
bool avx512Bf16InUse();

/** The PROSE_SIMD-resolved startup tier (read once, cached). */
SimdTier defaultSimdTier();

/** The kernel table for one tier; fatal if unavailable. */
const KernelSet &kernelsForTier(SimdTier tier);

/** The process-wide active kernel table (lazy-initialized from
 *  defaultSimdTier()). Safe to call concurrently. */
const KernelSet &activeKernels();

/** Tier behind activeKernels(). */
SimdTier activeSimdTier();

/**
 * Force the active tier (fatal if unavailable). For tests and
 * debugging; call before spinning up concurrent work — switching tiers
 * mid-parallel-region is a race on the dispatch pointer.
 */
void setActiveSimdTier(SimdTier tier);

/** One-line human summary, e.g. "avx512 (bf16)" — for startup logs. */
std::string describeSimdSupport();

} // namespace prose::kernels

#endif // PROSE_NUMERICS_KERNELS_KERNEL_DISPATCH_HH
