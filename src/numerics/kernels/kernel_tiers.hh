/**
 * @file
 * Internal wiring between the per-tier kernel translation units and the
 * dispatcher. Each SIMD TU is compiled with its own -m flags, so only
 * kernel_dispatch.cc (compiled for the baseline ISA) may look at CPUID
 * and decide which of these tables is safe to run.
 */

#ifndef PROSE_NUMERICS_KERNELS_KERNEL_TIERS_HH
#define PROSE_NUMERICS_KERNELS_KERNEL_TIERS_HH

#include "kernel_dispatch.hh"

namespace prose::kernels {

/** The scalar reference table (always compiled). */
const KernelSet &scalarKernelSet();

#ifdef PROSE_KERNELS_HAVE_AVX2
const KernelSet &avx2KernelSet();
#endif

#ifdef PROSE_KERNELS_HAVE_AVX512
const KernelSet &avx512KernelSet();
#endif

#ifdef PROSE_KERNELS_HAVE_AVX512BF16
/** Hardware VCVTNEPS2BF16 quantize row (with a denormal-input guard);
 *  spliced into the AVX-512 table when CPUID reports AVX512-BF16. */
void quantizeBitsRowAvx512Bf16(std::uint16_t *dst, const float *src,
                               std::size_t n);
#endif

} // namespace prose::kernels

#endif // PROSE_NUMERICS_KERNELS_KERNEL_TIERS_HH
