#include "lut.hh"

#include <cmath>
#include <cstring>

#include "activations.hh"
#include "common/logging.hh"

namespace prose {

TwoLevelLut::TwoLevelLut(std::string name, std::function<float(float)> fn,
                         int exp_lo, int exp_hi, BoundaryPolicy policy)
    : name_(std::move(name)), fn_(std::move(fn)), expLo_(exp_lo),
      expHi_(exp_hi), policy_(policy)
{
    PROSE_ASSERT(expLo_ <= expHi_, "LUT exponent window inverted");
    const int window = expHi_ - expLo_ + 1;
    segments_.resize(static_cast<std::size_t>(window) * 2);

    // Precompute: for every (sign, exponent, mantissa) in the window,
    // evaluate the reference function on the exact bf16 input value and
    // round the output back to bf16 — exactly what tablegen for the
    // hardware LUT would produce.
    for (int sign = 0; sign <= 1; ++sign) {
        for (int e = expLo_; e <= expHi_; ++e) {
            Segment &seg = segments_[segmentIndex(sign, e)];
            seg.entries.resize(128);
            const int biased = e + 127;
            for (int m = 0; m < 128; ++m) {
                const std::uint16_t bits = static_cast<std::uint16_t>(
                    (sign << 15) | (biased << 7) | m);
                const float x = Bfloat16::fromBits(bits).toFloat();
                seg.entries[static_cast<std::size_t>(m)] =
                    Bfloat16(fn_(x)).bits();
            }
        }
    }
}

std::size_t
TwoLevelLut::segmentIndex(int sign_bit, int exponent) const
{
    const auto offset = static_cast<std::size_t>(exponent - expLo_);
    const auto span = static_cast<std::size_t>(expHi_ - expLo_ + 1);
    return static_cast<std::size_t>(sign_bit) * span + offset;
}

Bfloat16
TwoLevelLut::boundaryValue(Bfloat16 x, bool below_window) const
{
    switch (policy_) {
      case BoundaryPolicy::GeluLike:
        if (below_window) {
            // Tiny |x|: the paper approximates the output as 0.
            return Bfloat16(0.0f);
        }
        // Huge |x|: GELU(x) ~ x for x > 0 and ~ 0 for x < 0.
        return x.signBit() ? Bfloat16(0.0f) : x;
      case BoundaryPolicy::ExpLike:
        if (below_window) {
            // exp(x) ~ 1 for tiny |x|.
            return Bfloat16(1.0f);
        }
        // Saturate: exp of a large positive input clamps to the largest
        // finite bfloat16; a large negative input flushes to 0.
        if (x.signBit())
            return Bfloat16(0.0f);
        return Bfloat16::fromBits(0x7f7f); // largest finite bf16
    }
    panic("unreachable boundary policy");
}

Bfloat16
TwoLevelLut::lookup(Bfloat16 x) const
{
    if (x.isNan())
        return x;
    // Zeros and denormals (biased exponent 0) sit below any window we
    // support, as do small normals; infinities sit above.
    if (x.isZero() || x.biasedExponent() == 0)
        return boundaryValue(x, true);
    if (x.isInf())
        return boundaryValue(x, false);

    const int e = x.exponent();
    if (e < expLo_)
        return boundaryValue(x, true);
    if (e > expHi_)
        return boundaryValue(x, false);

    const Segment &seg = segments_[segmentIndex(x.signBit(), e)];
    return Bfloat16::fromBits(
        seg.entries[static_cast<std::size_t>(x.mantissa())]);
}

float
TwoLevelLut::lookupFloat(float x) const
{
    return lookup(Bfloat16(x)).toFloat();
}

std::vector<std::uint32_t>
TwoLevelLut::flattenToFloatBits() const
{
    std::vector<std::uint32_t> flat(65536);
    for (std::uint32_t bits = 0; bits < 65536; ++bits) {
        const float out =
            lookup(Bfloat16::fromBits(static_cast<std::uint16_t>(bits)))
                .toFloat();
        std::uint32_t out_bits;
        std::memcpy(&out_bits, &out, sizeof(out_bits));
        flat[bits] = out_bits;
    }
    return flat;
}

std::size_t
TwoLevelLut::storageBytes() const
{
    std::size_t total = 0;
    for (const auto &seg : segments_)
        total += seg.entries.size() * sizeof(std::uint16_t);
    return total;
}

TwoLevelLut
TwoLevelLut::makeGelu()
{
    return TwoLevelLut("GELU", &geluTanh, -4, 3,
                       BoundaryPolicy::GeluLike);
}

TwoLevelLut
TwoLevelLut::makeExp()
{
    return TwoLevelLut("Exp", &expRef, -6, 5, BoundaryPolicy::ExpLike);
}

} // namespace prose
