/**
 * @file
 * Real host-side kernels — the CPU half of the co-designed system. The
 * HostModel *times* the host work; these kernels *perform* it, so the
 * functional path (FunctionalSimulator + BertModel) runs the same
 * softmax sum/divide and LayerNorm the deployed host would, optionally
 * parallelized across the shared ThreadPool the way the paper's Xeon
 * streams softmax batches.
 */

#ifndef PROSE_NUMERICS_HOST_KERNELS_HH
#define PROSE_NUMERICS_HOST_KERNELS_HH

#include <cstdint>
#include <functional>

#include "matrix.hh"

namespace prose {

/**
 * Softmax sum/divide over accelerator-produced exp values: per row,
 * sum in fp64 and multiply by the reciprocal, re-quantizing each
 * probability to bfloat16 before it streams back to the accelerator
 * (Dataflow 3's host trip).
 *
 * @param exp_values rows of exp(score) values (modified in place)
 * @param workers host threads to split the rows across (>= 1)
 */
void hostSoftmaxDivide(Matrix &exp_values, unsigned workers = 1);

/**
 * Host LayerNorm over bf16 activations: per-row mean/variance in fp64,
 * affine gain/bias, result re-quantized to bfloat16.
 */
void hostLayerNorm(Matrix &activations, const std::vector<float> &gamma,
                   const std::vector<float> &beta, float eps,
                   unsigned workers = 1);

/**
 * Row-parallel driver used by both kernels: runs fn(row_index) over
 * [0, rows) on the shared ThreadPool, with concurrency capped at
 * `workers` lanes. Exposed for other row-wise host work.
 */
void parallelRows(std::size_t rows, unsigned workers,
                  const std::function<void(std::size_t)> &fn);

} // namespace prose

#endif // PROSE_NUMERICS_HOST_KERNELS_HH
