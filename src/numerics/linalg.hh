/**
 * @file
 * Dense linear-algebra kernels supporting the downstream protein task:
 * a Cholesky factorization/solve and the regularized (ridge) linear
 * regression used in the paper's Section 2.2 binding-affinity experiment.
 */

#ifndef PROSE_NUMERICS_LINALG_HH
#define PROSE_NUMERICS_LINALG_HH

#include <vector>

#include "matrix.hh"

namespace prose {

/**
 * In-place lower-Cholesky factorization of a symmetric positive-definite
 * matrix. Returns false (leaving `a` partially modified) if a non-positive
 * pivot is encountered.
 */
bool choleskyFactor(Matrix &a);

/**
 * Solve L L^T x = b given the lower factor from choleskyFactor().
 * Forward then backward substitution.
 */
std::vector<double> choleskySolve(const Matrix &l,
                                  const std::vector<double> &b);

/** Fitted ridge-regression model: y ~ x . weights + intercept. */
struct RidgeModel
{
    std::vector<double> weights;
    double intercept = 0.0;

    /** Predict one sample (feature arity must match weights). */
    double predict(const std::vector<double> &features) const;

    /** Predict each row of a feature matrix. */
    std::vector<double> predictRows(const Matrix &x) const;
};

/**
 * Fit ridge regression: minimize |y - Xw - b|^2 + lambda |w|^2 over w, b.
 * Features are centered internally so the intercept is unpenalized.
 *
 * @param x n_samples x n_features design matrix
 * @param y n_samples targets
 * @param lambda L2 penalty (> 0 keeps the normal equations SPD)
 */
RidgeModel ridgeFit(const Matrix &x, const std::vector<double> &y,
                    double lambda);

} // namespace prose

#endif // PROSE_NUMERICS_LINALG_HH
