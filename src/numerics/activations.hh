/**
 * @file
 * Scalar reference implementations of the special functions ProSE
 * accelerates. The hardware LUTs (lut.hh) are validated against these.
 */

#ifndef PROSE_NUMERICS_ACTIVATIONS_HH
#define PROSE_NUMERICS_ACTIVATIONS_HH

namespace prose {

/**
 * GELU via the tanh approximation the paper quotes:
 * 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
 */
float geluTanh(float x);

/** Exact GELU, x * Phi(x), via erf. */
float geluErf(float x);

/** Natural exponential (reference for the Exp LUT). */
float expRef(float x);

/** Numerically-stable scalar sigmoid (used by downstream-task heads). */
float sigmoid(float x);

} // namespace prose

#endif // PROSE_NUMERICS_ACTIVATIONS_HH
