/**
 * @file
 * Two-level indexed lookup tables for the ProSE special-function units.
 *
 * Section 3.2 / Figures 13-14: GELU and Exp are evaluated in one cycle by
 * a two-level LUT attached to each SIMD ALU. The first level is indexed by
 * the bfloat16 (sign, exponent) pair and selects a 128-entry second-level
 * table indexed by the 7-bit mantissa. The table only stores outputs for a
 * window of exponents; inputs outside the window are handled by cheap
 * boundary policies:
 *
 *  - GELU window [-4, 3]: below the window the output is approximated as
 *    0; above it, GELU(x) ~ x for positive x and ~ 0 for negative x.
 *    8 exponents x 2 signs x 128 mantissas x 2 bytes = 4 KiB.
 *  - Exp window [-6, 5]: below the window exp(x) ~ 1; above it the output
 *    saturates (largest-finite bfloat16 for positive inputs, 0 for
 *    negative). 12 x 2 x 128 x 2 bytes = 6 KiB.
 *
 * These sizes match the paper's "4 KB and 6 KB respectively".
 */

#ifndef PROSE_NUMERICS_LUT_HH
#define PROSE_NUMERICS_LUT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bfloat16.hh"

namespace prose {

/**
 * A hardware-faithful two-level special-function LUT over bfloat16.
 * Construction precomputes every in-window entry by rounding the reference
 * function; lookup() touches exactly one first-level and one second-level
 * entry, modelling the single-cycle indexed read.
 */
class TwoLevelLut
{
  public:
    /** What to produce for inputs whose exponent is outside the window. */
    enum class BoundaryPolicy
    {
        GeluLike, ///< below window -> 0; above -> x if x>0 else 0
        ExpLike,  ///< below window -> 1; above -> saturate (+max / 0)
    };

    /**
     * Build a table for `fn` covering unbiased exponents
     * [exp_lo, exp_hi] for both signs.
     *
     * @param name human-readable unit name ("GELU", "Exp")
     * @param fn reference function the table approximates
     * @param exp_lo lowest unbiased exponent stored
     * @param exp_hi highest unbiased exponent stored
     * @param policy out-of-window behaviour
     */
    TwoLevelLut(std::string name, std::function<float(float)> fn,
                int exp_lo, int exp_hi, BoundaryPolicy policy);

    /** Single-cycle lookup. Denormals and zeros take the below-window
     *  path; NaN propagates. */
    Bfloat16 lookup(Bfloat16 x) const;

    /** Convenience float-in/float-out wrapper (quantizes the input). */
    float lookupFloat(float x) const;

    /** Total second-level storage in bytes (the paper's 4 KB / 6 KB). */
    std::size_t storageBytes() const;

    /**
     * Flatten the two-level lookup into a 65536-entry table mapping
     * every bf16 bit pattern to the fp32 bit pattern of
     * lookup(pattern).toFloat(). Built by evaluating lookup() on each
     * input, so a flat read is bit-exact with the two-level read by
     * construction — including NaNs, denormals, and the boundary
     * policies. This is the fast-forward engine's representation
     * (kernels::KernelSet::lutRow gathers from it); the stepped
     * wavefront keeps the hardware-faithful two-level lookup().
     */
    std::vector<std::uint32_t> flattenToFloatBits() const;

    /** Number of second-level tables (sign x exponent combinations). */
    std::size_t segmentCount() const { return segments_.size(); }

    const std::string &name() const { return name_; }
    int exponentLow() const { return expLo_; }
    int exponentHigh() const { return expHi_; }

    /** Factory for the paper's GELU unit (window [-4, 3]). */
    static TwoLevelLut makeGelu();

    /** Factory for the paper's Exp unit (window [-6, 5]). */
    static TwoLevelLut makeExp();

  private:
    /** One second-level table: 128 bf16 outputs for a (sign, exp) pair. */
    struct Segment
    {
        std::vector<std::uint16_t> entries; // 128 bf16 bit patterns
    };

    /** First-level index for a (sign, unbiased exponent) pair. */
    std::size_t segmentIndex(int sign_bit, int exponent) const;

    /** Out-of-window result per the boundary policy. */
    Bfloat16 boundaryValue(Bfloat16 x, bool below_window) const;

    std::string name_;
    std::function<float(float)> fn_;
    int expLo_;
    int expHi_;
    BoundaryPolicy policy_;
    std::vector<Segment> segments_;
};

} // namespace prose

#endif // PROSE_NUMERICS_LUT_HH
