#include "host_kernels.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "bfloat16.hh"
#include "kernels/kernel_dispatch.hh"

namespace prose {

void
parallelRows(std::size_t rows, unsigned workers,
             const std::function<void(std::size_t)> &fn)
{
    PROSE_ASSERT(workers >= 1, "need at least one host worker");
    if (workers == 1 || rows < 2 * workers) {
        for (std::size_t row = 0; row < rows; ++row)
            fn(row);
        return;
    }
    // Submit to the shared pool instead of spawning threads per call;
    // capping the chunk count models a host CPU with `workers` lanes.
    ThreadPool::global().parallelFor(
        rows, workers, [&](std::size_t begin, std::size_t end) {
            for (std::size_t row = begin; row < end; ++row)
                fn(row);
        });
}

void
hostSoftmaxDivide(Matrix &exp_values, unsigned workers)
{
    parallelRows(exp_values.rows(), workers, [&](std::size_t row) {
        double denom = 0.0;
        float *values = exp_values.row(row);
        for (std::size_t j = 0; j < exp_values.cols(); ++j)
            denom += values[j];
        PROSE_ASSERT(denom > 0.0, "softmax row summed to zero");
        const float inv = static_cast<float>(1.0 / denom);
        // Scale+quantize epilogue on the dispatched SIMD kernel; the
        // fp64 denominator sum above stays scalar (it is a sequential
        // reduction, not independent lanes).
        kernels::activeKernels().scaleQuantizeRow(values, inv,
                                                  exp_values.cols());
    });
}

void
hostLayerNorm(Matrix &activations, const std::vector<float> &gamma,
              const std::vector<float> &beta, float eps, unsigned workers)
{
    PROSE_ASSERT(gamma.size() == activations.cols() &&
                     beta.size() == activations.cols(),
                 "layer-norm gain/bias arity mismatch");
    const std::size_t cols = activations.cols();
    parallelRows(activations.rows(), workers, [&](std::size_t row) {
        float *values = activations.row(row);
        double sum = 0.0;
        for (std::size_t j = 0; j < cols; ++j)
            sum += values[j];
        const double mu = sum / static_cast<double>(cols);
        double var = 0.0;
        for (std::size_t j = 0; j < cols; ++j) {
            const double d = values[j] - mu;
            var += d * d;
        }
        var /= static_cast<double>(cols);
        const double inv = 1.0 / std::sqrt(var + eps);
        for (std::size_t j = 0; j < cols; ++j) {
            values[j] = quantizeBf16(static_cast<float>(
                gamma[j] * (values[j] - mu) * inv + beta[j]));
        }
    });
}

} // namespace prose
