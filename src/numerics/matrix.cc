#include "matrix.hh"

#include <cmath>

#include "bfloat16.hh"
#include "common/arena.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "float_bits.hh"
#include "kernels/kernel_dispatch.hh"

namespace prose {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

float &
Matrix::at(std::size_t r, std::size_t c)
{
    PROSE_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

float
Matrix::at(std::size_t r, std::size_t c) const
{
    PROSE_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

void
Matrix::fillGaussian(Rng &rng, float mean, float stddev)
{
    for (float &x : data_)
        x = static_cast<float>(rng.gaussian(mean, stddev));
}

void
Matrix::fillUniform(Rng &rng, float lo, float hi)
{
    for (float &x : data_)
        x = static_cast<float>(rng.uniform(lo, hi));
}

void
Matrix::quantizeBf16InPlace()
{
    kernels::activeKernels().quantizeRoundtripRow(
        data_.data(), data_.data(), data_.size());
}

float
Matrix::maxAbsDiff(const Matrix &a, const Matrix &b)
{
    PROSE_ASSERT(a.sameShape(b), "maxAbsDiff shape mismatch");
    float worst = 0.0f;
    for (std::size_t i = 0; i < a.data_.size(); ++i)
        worst = std::max(worst, std::fabs(a.data_[i] - b.data_[i]));
    return worst;
}

float
Matrix::frobeniusNorm() const
{
    double acc = 0.0;
    for (float x : data_)
        acc += static_cast<double>(x) * x;
    return static_cast<float>(std::sqrt(acc));
}

namespace {

/** B-block of the cache-blocked kernel: kKBlock x kJBlock floats
 *  (32 KiB) stays L1-resident while a chunk's row blocks stream over
 *  it — the register-tiled GEMM core re-reads the B block once per
 *  6-row group, so it must sit in the nearest cache, not L2. */
constexpr std::size_t kKBlock = 128;
constexpr std::size_t kJBlock = 64;

/**
 * Minimum MACs *per pool lane* before parallel dispatch pays for
 * itself. The floor is not about wakeup latency (that is microseconds)
 * but about the shared memory system: every lane re-streams the whole
 * B operand, so small and mid-size pooled GEMMs contend for the same
 * cache/bandwidth that one lane would have to itself. The committed
 * bench/perf_regression matmul_cutoff_* crossover record bears that
 * out — the pooled side's only win (n256, 2^22 MACs/lane on the fixed
 * 4-lane pool) is a ~5% edge inside runner noise, while
 * matmul_fp32_pooled_len128_b1 (128x768x768, ~18.9M MACs/lane on four
 * lanes) recorded an outright loss to its serial twin. The floor
 * therefore sits above that losing shape: 2^25 MACs/lane (~2.5 ms of
 * single-lane SIMD work) keeps b1/len128-class GEMMs inline and only
 * fans out work large enough for the split to survive the contention.
 */
constexpr std::size_t kMinMacsPerLane = std::size_t{ 1 } << 25;

/** True when `macs` of matmul work should fan out to the pool. */
bool
shouldPool(std::size_t macs)
{
    const unsigned lanes = ThreadPool::global().parallelism();
    if (lanes <= 1)
        return false;
    return macs >= kMinMacsPerLane * lanes;
}

/** Finiteness of a bf16-bits plane (exponent field not all-ones). */
bool
allFiniteBits(const std::uint16_t *bits, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if ((bits[i] & 0x7f80u) == 0x7f80u)
            return false;
    return true;
}

/**
 * Rows [r0, r1) of C += A x B, blocked over k and j for cache reuse and
 * handed to the dispatched register-tiled GEMM kernel per (k, j) block.
 * Every output element accumulates its k terms in ascending k order —
 * the same sequence as the classic serial i-k-j kernel — so the result
 * is bit-identical regardless of blocking or which thread owns the
 * rows. The kernel MACs every term unconditionally; that is exact even
 * for zero A entries against finite B (C accumulators are never -0 —
 * they start at +0 and +0 + -0 == +0 — so adding a +-0 product is a
 * bitwise no-op), and for non-finite B it is exactly what the
 * unskipped reference loop did (0 * Inf must make NaN). SIMD applies
 * across independent output lanes only; the per-element op sequence is
 * untouched.
 */
void
matmulRows(const Matrix &a, const Matrix &b, Matrix &c, std::size_t r0,
           std::size_t r1)
{
    const kernels::KernelSet &ks = kernels::activeKernels();
    const std::size_t depth = a.cols();
    const std::size_t n = b.cols();
    for (std::size_t kb = 0; kb < depth; kb += kKBlock) {
        const std::size_t k_end = std::min(depth, kb + kKBlock);
        for (std::size_t jb = 0; jb < n; jb += kJBlock) {
            const std::size_t j_end = std::min(n, jb + kJBlock);
            ks.gemmTileF32(c.row(r0) + jb, n, a.row(r0) + kb, depth,
                           b.row(kb) + jb, n, r1 - r0, j_end - jb,
                           k_end - kb);
        }
    }
}

/**
 * The bits twin of matmulRows: same blocking, same ascending-k order,
 * but A and B are bf16 bit planes and the (exact) widening to fp32
 * happens inside the GEMM tile kernel. Bit-identical to running
 * matmulRows on the widened operands, including the unconditional MAC
 * of +-0 A entries (see matmulRows).
 */
void
matmulRowsBits(const std::uint16_t *a_bits, const std::uint16_t *b_bits,
               Matrix &c, std::size_t r0, std::size_t r1,
               std::size_t depth)
{
    const kernels::KernelSet &ks = kernels::activeKernels();
    const std::size_t n = c.cols();
    for (std::size_t kb = 0; kb < depth; kb += kKBlock) {
        const std::size_t k_end = std::min(depth, kb + kKBlock);
        for (std::size_t jb = 0; jb < n; jb += kJBlock) {
            const std::size_t j_end = std::min(n, jb + kJBlock);
            ks.gemmTileBf16(c.row(r0) + jb, n,
                            a_bits + r0 * depth + kb, depth,
                            b_bits + kb * n + jb, n, r1 - r0,
                            j_end - jb, k_end - kb);
        }
    }
}

/** C = widen(A) x widen(B) over bf16 bit planes, pooled when big. */
Matrix
matmulBits(const std::uint16_t *a_bits, std::size_t m, std::size_t depth,
           const std::uint16_t *b_bits, std::size_t n)
{
    Matrix c(m, n);
    if (!shouldPool(m * depth * n)) {
        matmulRowsBits(a_bits, b_bits, c, 0, m, depth);
        return c;
    }
    ThreadPool::global().parallelFor(
        m, [&](std::size_t r0, std::size_t r1) {
            matmulRowsBits(a_bits, b_bits, c, r0, r1, depth);
        });
    return c;
}

} // namespace

void
QuantizedOperand::update(const Matrix &source)
{
    const kernels::KernelSet &ks = kernels::activeKernels();
    bits_.resize(source.size());
    ks.quantizeBitsRow(bits_.data(), source.data(), source.size());
    bf16_ = Matrix(source.rows(), source.cols());
    ks.widenRow(bf16_.data(), bits_.data(), bits_.size());
    allFinite_ = allFiniteBits(bits_.data(), bits_.size());
    ++version_;
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    PROSE_ASSERT(a.cols() == b.rows(), "matmul inner-dim mismatch: ",
                 a.cols(), " vs ", b.rows());
    Matrix c(a.rows(), b.cols());
    if (!shouldPool(a.rows() * a.cols() * b.cols())) {
        matmulRows(a, b, c, 0, a.rows());
        return c;
    }
    ThreadPool::global().parallelFor(
        a.rows(), [&](std::size_t r0, std::size_t r1) {
            matmulRows(a, b, c, r0, r1);
        });
    return c;
}

Matrix
matmulBf16(const Matrix &a, const Matrix &b)
{
    PROSE_ASSERT(a.cols() == b.rows(), "matmulBf16 inner-dim mismatch");
    // Quantize both operands once up front (what streaming bf16 inputs
    // see) into per-thread arena scratch — compact bit planes, no heap
    // churn — then accumulate in fp32 like the 32-bit PE accumulators.
    const kernels::KernelSet &ks = kernels::activeKernels();
    Arena &arena = Arena::threadLocal();
    Arena::Scope scope(arena);
    std::uint16_t *qa = arena.alloc<std::uint16_t>(a.size());
    ks.quantizeBitsRow(qa, a.data(), a.size());
    std::uint16_t *qb = arena.alloc<std::uint16_t>(b.size());
    ks.quantizeBitsRow(qb, b.data(), b.size());
    return matmulBits(qa, a.rows(), a.cols(), qb, b.cols());
}

Matrix
matmulBf16(const Matrix &a, const QuantizedOperand &b)
{
    PROSE_ASSERT(!b.empty(), "matmulBf16 against an empty cached operand");
    PROSE_ASSERT(a.cols() == b.bf16().rows(),
                 "matmulBf16 inner-dim mismatch");
    const kernels::KernelSet &ks = kernels::activeKernels();
    Arena &arena = Arena::threadLocal();
    Arena::Scope scope(arena);
    std::uint16_t *qa = arena.alloc<std::uint16_t>(a.size());
    ks.quantizeBitsRow(qa, a.data(), a.size());
    return matmulBits(qa, a.rows(), a.cols(), b.bits().data(),
                      b.bf16().cols());
}

Matrix
mulAdd(float alpha, const Matrix &a, float beta, const Matrix &b)
{
    PROSE_ASSERT(a.sameShape(b), "mulAdd shape mismatch");
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            c(i, j) = alpha * a(i, j) + beta * b(i, j);
    return c;
}

Matrix
matDiv(const Matrix &a, float alpha)
{
    PROSE_ASSERT(!isZeroValue(alpha), "matDiv by zero");
    return scale(a, 1.0f / alpha);
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    return mulAdd(1.0f, a, 1.0f, b);
}

Matrix
scale(const Matrix &a, float s)
{
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            c(i, j) = a(i, j) * s;
    return c;
}

Matrix
transpose(const Matrix &a)
{
    Matrix t(a.cols(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            t(j, i) = a(i, j);
    return t;
}

Matrix
map(const Matrix &a, float (*f)(float))
{
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            c(i, j) = f(a(i, j));
    return c;
}

Matrix
rowSoftmax(const Matrix &a)
{
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        // Subtract the row max for numerical stability.
        float row_max = a(i, 0);
        for (std::size_t j = 1; j < a.cols(); ++j)
            row_max = std::max(row_max, a(i, j));
        double denom = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j) {
            const float e = std::exp(a(i, j) - row_max);
            c(i, j) = e;
            denom += e;
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (std::size_t j = 0; j < a.cols(); ++j)
            c(i, j) *= inv;
    }
    return c;
}

Matrix
layerNorm(const Matrix &a, const std::vector<float> &gamma,
          const std::vector<float> &beta, float eps)
{
    PROSE_ASSERT(gamma.size() == a.cols() && beta.size() == a.cols(),
                 "layerNorm gain/bias arity mismatch");
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j)
            sum += a(i, j);
        const double mu = sum / static_cast<double>(a.cols());
        double var = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j) {
            const double d = a(i, j) - mu;
            var += d * d;
        }
        var /= static_cast<double>(a.cols());
        const double inv = 1.0 / std::sqrt(var + eps);
        for (std::size_t j = 0; j < a.cols(); ++j) {
            c(i, j) = static_cast<float>(
                gamma[j] * (a(i, j) - mu) * inv + beta[j]);
        }
    }
    return c;
}

std::vector<Matrix>
bmm(const std::vector<Matrix> &a, const std::vector<Matrix> &b)
{
    PROSE_ASSERT(a.size() == b.size(), "bmm batch mismatch");
    std::vector<Matrix> c(a.size());
    std::size_t total_macs = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total_macs += a[i].rows() * a[i].cols() * b[i].cols();
    if (!shouldPool(total_macs)) {
        for (std::size_t i = 0; i < a.size(); ++i)
            c[i] = matmul(a[i], b[i]);
        return c;
    }
    // Batch elements are independent; the per-element matmuls run
    // inline inside this parallel region (nested calls never re-enter
    // the pool).
    ThreadPool::global().parallelFor(
        a.size(), [&](std::size_t b0, std::size_t b1) {
            for (std::size_t i = b0; i < b1; ++i)
                c[i] = matmul(a[i], b[i]);
        });
    return c;
}

Matrix
hconcat(const std::vector<Matrix> &parts)
{
    PROSE_ASSERT(!parts.empty(), "hconcat of nothing");
    std::size_t total_cols = 0;
    for (const auto &p : parts) {
        PROSE_ASSERT(p.rows() == parts[0].rows(), "hconcat row mismatch");
        total_cols += p.cols();
    }
    Matrix out(parts[0].rows(), total_cols);
    std::size_t col_base = 0;
    for (const auto &p : parts) {
        for (std::size_t i = 0; i < p.rows(); ++i)
            for (std::size_t j = 0; j < p.cols(); ++j)
                out(i, col_base + j) = p(i, j);
        col_base += p.cols();
    }
    return out;
}

Matrix
sliceCols(const Matrix &a, std::size_t begin, std::size_t count)
{
    PROSE_ASSERT(begin + count <= a.cols(), "sliceCols out of range");
    Matrix out(a.rows(), count);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < count; ++j)
            out(i, j) = a(i, begin + j);
    return out;
}

Matrix
sliceRows(const Matrix &a, std::size_t begin, std::size_t count)
{
    PROSE_ASSERT(begin + count <= a.rows(), "sliceRows out of range");
    Matrix out(count, a.cols());
    for (std::size_t i = 0; i < count; ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            out(i, j) = a(begin + i, j);
    return out;
}

} // namespace prose
