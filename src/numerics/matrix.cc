#include "matrix.hh"

#include <cmath>

#include "bfloat16.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "float_bits.hh"

namespace prose {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

float &
Matrix::at(std::size_t r, std::size_t c)
{
    PROSE_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

float
Matrix::at(std::size_t r, std::size_t c) const
{
    PROSE_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

void
Matrix::fillGaussian(Rng &rng, float mean, float stddev)
{
    for (float &x : data_)
        x = static_cast<float>(rng.gaussian(mean, stddev));
}

void
Matrix::fillUniform(Rng &rng, float lo, float hi)
{
    for (float &x : data_)
        x = static_cast<float>(rng.uniform(lo, hi));
}

void
Matrix::quantizeBf16InPlace()
{
    for (float &x : data_)
        x = quantizeBf16(x);
}

float
Matrix::maxAbsDiff(const Matrix &a, const Matrix &b)
{
    PROSE_ASSERT(a.sameShape(b), "maxAbsDiff shape mismatch");
    float worst = 0.0f;
    for (std::size_t i = 0; i < a.data_.size(); ++i)
        worst = std::max(worst, std::fabs(a.data_[i] - b.data_[i]));
    return worst;
}

float
Matrix::frobeniusNorm() const
{
    double acc = 0.0;
    for (float x : data_)
        acc += static_cast<double>(x) * x;
    return static_cast<float>(std::sqrt(acc));
}

namespace {

/** B-block of the cache-blocked kernel: kKBlock x kJBlock floats
 *  (128 KiB) stays resident while a chunk's rows stream over it. */
constexpr std::size_t kKBlock = 128;
constexpr std::size_t kJBlock = 256;

/** Below this many MACs pool dispatch costs more than it saves. */
constexpr std::size_t kParallelMacThreshold = std::size_t{ 1 } << 15;

bool
allFinite(const Matrix &m)
{
    const float *p = m.data();
    for (std::size_t i = 0, e = m.size(); i < e; ++i)
        if (!std::isfinite(p[i]))
            return false;
    return true;
}

/**
 * Rows [r0, r1) of C += A x B, blocked over k and j. Every output
 * element accumulates its k terms in ascending k order — the same
 * sequence as the classic serial i-k-j kernel — so the result is
 * bit-identical regardless of blocking or which thread owns the rows.
 * skip_zeros must only be set when B is entirely finite (0 * Inf/NaN
 * must not be skipped); with finite B, skipping a zero A entry is
 * exact because C rows can never hold -0 here (accumulators start at
 * +0 and +0 + -0 == +0).
 */
void
matmulRows(const Matrix &a, const Matrix &b, Matrix &c, std::size_t r0,
           std::size_t r1, bool skip_zeros)
{
    const std::size_t depth = a.cols();
    const std::size_t n = b.cols();
    for (std::size_t kb = 0; kb < depth; kb += kKBlock) {
        const std::size_t k_end = std::min(depth, kb + kKBlock);
        for (std::size_t i = r0; i < r1; ++i) {
            const float *arow = a.row(i);
            float *crow = c.row(i);
            for (std::size_t jb = 0; jb < n; jb += kJBlock) {
                const std::size_t j_end = std::min(n, jb + kJBlock);
                for (std::size_t k = kb; k < k_end; ++k) {
                    const float aik = arow[k];
                    if (skip_zeros && isZeroValue(aik))
                        continue;
                    const float *brow = b.row(k);
                    for (std::size_t j = jb; j < j_end; ++j)
                        crow[j] += aik * brow[j];
                }
            }
        }
    }
}

} // namespace

void
QuantizedOperand::update(const Matrix &source)
{
    bf16_ = source;
    bf16_.quantizeBf16InPlace();
    ++version_;
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    PROSE_ASSERT(a.cols() == b.rows(), "matmul inner-dim mismatch: ",
                 a.cols(), " vs ", b.rows());
    Matrix c(a.rows(), b.cols());
    const bool skip_zeros = allFinite(b);
    const std::size_t macs = a.rows() * a.cols() * b.cols();
    if (macs < kParallelMacThreshold) {
        matmulRows(a, b, c, 0, a.rows(), skip_zeros);
        return c;
    }
    ThreadPool::global().parallelFor(
        a.rows(), [&](std::size_t r0, std::size_t r1) {
            matmulRows(a, b, c, r0, r1, skip_zeros);
        });
    return c;
}

Matrix
matmulBf16(const Matrix &a, const Matrix &b)
{
    PROSE_ASSERT(a.cols() == b.rows(), "matmulBf16 inner-dim mismatch");
    // Quantize operands once up front (what streaming bf16 inputs see).
    Matrix aq = a;
    Matrix bq = b;
    aq.quantizeBf16InPlace();
    bq.quantizeBf16InPlace();
    // Accumulate in fp32 like the 32-bit PE accumulators.
    return matmul(aq, bq);
}

Matrix
matmulBf16(const Matrix &a, const QuantizedOperand &b)
{
    PROSE_ASSERT(!b.empty(), "matmulBf16 against an empty cached operand");
    PROSE_ASSERT(a.cols() == b.bf16().rows(),
                 "matmulBf16 inner-dim mismatch");
    Matrix aq = a;
    aq.quantizeBf16InPlace();
    return matmul(aq, b.bf16());
}

Matrix
mulAdd(float alpha, const Matrix &a, float beta, const Matrix &b)
{
    PROSE_ASSERT(a.sameShape(b), "mulAdd shape mismatch");
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            c(i, j) = alpha * a(i, j) + beta * b(i, j);
    return c;
}

Matrix
matDiv(const Matrix &a, float alpha)
{
    PROSE_ASSERT(!isZeroValue(alpha), "matDiv by zero");
    return scale(a, 1.0f / alpha);
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    return mulAdd(1.0f, a, 1.0f, b);
}

Matrix
scale(const Matrix &a, float s)
{
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            c(i, j) = a(i, j) * s;
    return c;
}

Matrix
transpose(const Matrix &a)
{
    Matrix t(a.cols(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            t(j, i) = a(i, j);
    return t;
}

Matrix
map(const Matrix &a, float (*f)(float))
{
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            c(i, j) = f(a(i, j));
    return c;
}

Matrix
rowSoftmax(const Matrix &a)
{
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        // Subtract the row max for numerical stability.
        float row_max = a(i, 0);
        for (std::size_t j = 1; j < a.cols(); ++j)
            row_max = std::max(row_max, a(i, j));
        double denom = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j) {
            const float e = std::exp(a(i, j) - row_max);
            c(i, j) = e;
            denom += e;
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (std::size_t j = 0; j < a.cols(); ++j)
            c(i, j) *= inv;
    }
    return c;
}

Matrix
layerNorm(const Matrix &a, const std::vector<float> &gamma,
          const std::vector<float> &beta, float eps)
{
    PROSE_ASSERT(gamma.size() == a.cols() && beta.size() == a.cols(),
                 "layerNorm gain/bias arity mismatch");
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j)
            sum += a(i, j);
        const double mu = sum / static_cast<double>(a.cols());
        double var = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j) {
            const double d = a(i, j) - mu;
            var += d * d;
        }
        var /= static_cast<double>(a.cols());
        const double inv = 1.0 / std::sqrt(var + eps);
        for (std::size_t j = 0; j < a.cols(); ++j) {
            c(i, j) = static_cast<float>(
                gamma[j] * (a(i, j) - mu) * inv + beta[j]);
        }
    }
    return c;
}

std::vector<Matrix>
bmm(const std::vector<Matrix> &a, const std::vector<Matrix> &b)
{
    PROSE_ASSERT(a.size() == b.size(), "bmm batch mismatch");
    std::vector<Matrix> c(a.size());
    // Batch elements are independent; the per-element matmuls run
    // inline inside this parallel region (nested calls never re-enter
    // the pool).
    ThreadPool::global().parallelFor(
        a.size(), [&](std::size_t b0, std::size_t b1) {
            for (std::size_t i = b0; i < b1; ++i)
                c[i] = matmul(a[i], b[i]);
        });
    return c;
}

Matrix
hconcat(const std::vector<Matrix> &parts)
{
    PROSE_ASSERT(!parts.empty(), "hconcat of nothing");
    std::size_t total_cols = 0;
    for (const auto &p : parts) {
        PROSE_ASSERT(p.rows() == parts[0].rows(), "hconcat row mismatch");
        total_cols += p.cols();
    }
    Matrix out(parts[0].rows(), total_cols);
    std::size_t col_base = 0;
    for (const auto &p : parts) {
        for (std::size_t i = 0; i < p.rows(); ++i)
            for (std::size_t j = 0; j < p.cols(); ++j)
                out(i, col_base + j) = p(i, j);
        col_base += p.cols();
    }
    return out;
}

Matrix
sliceCols(const Matrix &a, std::size_t begin, std::size_t count)
{
    PROSE_ASSERT(begin + count <= a.cols(), "sliceCols out of range");
    Matrix out(a.rows(), count);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < count; ++j)
            out(i, j) = a(i, begin + j);
    return out;
}

Matrix
sliceRows(const Matrix &a, std::size_t begin, std::size_t count)
{
    PROSE_ASSERT(begin + count <= a.rows(), "sliceRows out of range");
    Matrix out(count, a.cols());
    for (std::size_t i = 0; i < count; ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            out(i, j) = a(begin + i, j);
    return out;
}

} // namespace prose
