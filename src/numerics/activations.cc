#include "activations.hh"

#include <cmath>

namespace prose {

float
geluTanh(float x)
{
    const float kSqrt2OverPi = 0.7978845608028654f;
    const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

float
geluErf(float x)
{
    const float kInvSqrt2 = 0.7071067811865476f;
    return 0.5f * x * (1.0f + std::erf(x * kInvSqrt2));
}

float
expRef(float x)
{
    return std::exp(x);
}

float
sigmoid(float x)
{
    if (x >= 0.0f) {
        const float z = std::exp(-x);
        return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
}

} // namespace prose
