#include "bfloat16.hh"

#include <cstring>

namespace prose {

namespace {

std::uint32_t
floatBits(float value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

float
bitsToFloat(std::uint32_t bits)
{
    float value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

} // namespace

std::uint16_t
Bfloat16::roundFromFloat(float value)
{
    std::uint32_t bits = floatBits(value);

    // NaN: keep the sign, force a quiet-NaN payload so the result stays
    // a NaN after truncation even if the payload's top bits were zero.
    if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu)) {
        return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
    }

    // Round to nearest even on the 16 bits we are about to drop.
    const std::uint32_t rounding_bias = 0x7fffu + ((bits >> 16) & 1u);
    bits += rounding_bias;
    return static_cast<std::uint16_t>(bits >> 16);
}

float
Bfloat16::toFloat() const
{
    return bitsToFloat(static_cast<std::uint32_t>(bits_) << 16);
}

Bfloat16
truncateToBf16(float value)
{
    return Bfloat16::fromBits(
        static_cast<std::uint16_t>(floatBits(value) >> 16));
}

Bfloat16
Bfloat16::operator-() const
{
    return fromBits(static_cast<std::uint16_t>(bits_ ^ 0x8000u));
}

Bfloat16
Bfloat16::operator+(Bfloat16 other) const
{
    return Bfloat16(toFloat() + other.toFloat());
}

Bfloat16
Bfloat16::operator-(Bfloat16 other) const
{
    return Bfloat16(toFloat() - other.toFloat());
}

Bfloat16
Bfloat16::operator*(Bfloat16 other) const
{
    return Bfloat16(toFloat() * other.toFloat());
}

Bfloat16
Bfloat16::operator/(Bfloat16 other) const
{
    return Bfloat16(toFloat() / other.toFloat());
}

bool
Bfloat16::operator==(Bfloat16 other) const
{
    if (isZero() && other.isZero())
        return true;
    if (isNan() || other.isNan())
        return false;
    return bits_ == other.bits_;
}

std::ostream &
operator<<(std::ostream &os, Bfloat16 v)
{
    return os << v.toFloat();
}

float
flipFloatBit(float value, std::uint32_t bit)
{
    return bitsToFloat(floatBits(value) ^ (1u << (bit & 31u)));
}

float
setFloatBit(float value, std::uint32_t bit, bool high)
{
    const std::uint32_t mask = 1u << (bit & 31u);
    const std::uint32_t bits = floatBits(value);
    return bitsToFloat(high ? bits | mask : bits & ~mask);
}

Bfloat16
flipBf16Bit(Bfloat16 value, std::uint32_t bit)
{
    return Bfloat16::fromBits(static_cast<std::uint16_t>(
        value.bits() ^ (1u << (bit & 15u))));
}

} // namespace prose
