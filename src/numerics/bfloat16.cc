#include "bfloat16.hh"

#include <cstring>

namespace prose {

// roundFromFloat / toFloat / truncateToBf16 are inline in the header:
// they dominate the functional-sim hot paths.

namespace {

std::uint32_t
floatBits(float value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

float
bitsToFloat(std::uint32_t bits)
{
    float value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

} // namespace

Bfloat16
Bfloat16::operator-() const
{
    return fromBits(static_cast<std::uint16_t>(bits_ ^ 0x8000u));
}

Bfloat16
Bfloat16::operator+(Bfloat16 other) const
{
    return Bfloat16(toFloat() + other.toFloat());
}

Bfloat16
Bfloat16::operator-(Bfloat16 other) const
{
    return Bfloat16(toFloat() - other.toFloat());
}

Bfloat16
Bfloat16::operator*(Bfloat16 other) const
{
    return Bfloat16(toFloat() * other.toFloat());
}

Bfloat16
Bfloat16::operator/(Bfloat16 other) const
{
    return Bfloat16(toFloat() / other.toFloat());
}

bool
Bfloat16::operator==(Bfloat16 other) const
{
    if (isZero() && other.isZero())
        return true;
    if (isNan() || other.isNan())
        return false;
    return bits_ == other.bits_;
}

std::ostream &
operator<<(std::ostream &os, Bfloat16 v)
{
    return os << v.toFloat();
}

float
flipFloatBit(float value, std::uint32_t bit)
{
    return bitsToFloat(floatBits(value) ^ (1u << (bit & 31u)));
}

float
setFloatBit(float value, std::uint32_t bit, bool high)
{
    const std::uint32_t mask = 1u << (bit & 31u);
    const std::uint32_t bits = floatBits(value);
    return bitsToFloat(high ? bits | mask : bits & ~mask);
}

Bfloat16
flipBf16Bit(Bfloat16 value, std::uint32_t bit)
{
    return Bfloat16::fromBits(static_cast<std::uint16_t>(
        value.bits() ^ (1u << (bit & 15u))));
}

} // namespace prose
