#include "linalg.hh"

#include <cmath>

#include "common/logging.hh"

namespace prose {

bool
choleskyFactor(Matrix &a)
{
    PROSE_ASSERT(a.rows() == a.cols(), "cholesky needs a square matrix");
    const std::size_t n = a.rows();
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= static_cast<double>(a(j, k)) * a(j, k);
        if (diag <= 0.0)
            return false;
        const double ljj = std::sqrt(diag);
        a(j, j) = static_cast<float>(ljj);
        for (std::size_t i = j + 1; i < n; ++i) {
            double v = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                v -= static_cast<double>(a(i, k)) * a(j, k);
            a(i, j) = static_cast<float>(v / ljj);
        }
        // Zero the strictly-upper triangle so `a` is exactly L.
        for (std::size_t i = 0; i < j; ++i)
            a(i, j) = 0.0f;
    }
    return true;
}

std::vector<double>
choleskySolve(const Matrix &l, const std::vector<double> &b)
{
    const std::size_t n = l.rows();
    PROSE_ASSERT(l.cols() == n && b.size() == n,
                 "choleskySolve dimension mismatch");
    // Forward: L z = b.
    std::vector<double> z(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double v = b[i];
        for (std::size_t k = 0; k < i; ++k)
            v -= static_cast<double>(l(i, k)) * z[k];
        z[i] = v / l(i, i);
    }
    // Backward: L^T x = z.
    std::vector<double> x(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double v = z[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            v -= static_cast<double>(l(k, ii)) * x[k];
        x[ii] = v / l(ii, ii);
    }
    return x;
}

double
RidgeModel::predict(const std::vector<double> &features) const
{
    PROSE_ASSERT(features.size() == weights.size(),
                 "ridge predict feature arity mismatch");
    double acc = intercept;
    for (std::size_t i = 0; i < features.size(); ++i)
        acc += features[i] * weights[i];
    return acc;
}

std::vector<double>
RidgeModel::predictRows(const Matrix &x) const
{
    std::vector<double> out;
    out.reserve(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) {
        double acc = intercept;
        for (std::size_t j = 0; j < x.cols(); ++j)
            acc += static_cast<double>(x(i, j)) * weights[j];
        out.push_back(acc);
    }
    return out;
}

RidgeModel
ridgeFit(const Matrix &x, const std::vector<double> &y, double lambda)
{
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    PROSE_ASSERT(y.size() == n, "ridgeFit target arity mismatch");
    PROSE_ASSERT(n >= 2, "ridgeFit needs at least two samples");
    PROSE_ASSERT(lambda > 0.0, "ridgeFit needs a positive penalty");

    // Center features and targets; the intercept absorbs the means.
    std::vector<double> x_mean(d, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < d; ++j)
            x_mean[j] += x(i, j);
    for (double &m : x_mean)
        m /= static_cast<double>(n);
    double y_mean = 0.0;
    for (double v : y)
        y_mean += v;
    y_mean /= static_cast<double>(n);

    // Normal equations: (Xc^T Xc + lambda I) w = Xc^T yc. The Gram
    // matrix accumulates in a local double buffer — running the sums
    // through float Matrix storage loses ~n*eps relative precision,
    // which visibly degrades conditioning on ill-scaled features — and
    // narrows to float exactly once, after the ridge penalty is added.
    std::vector<double> gram_acc(d * d, 0.0);
    std::vector<double> rhs(d, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            const double xij = x(i, j) - x_mean[j];
            rhs[j] += xij * (y[i] - y_mean);
            for (std::size_t k = j; k < d; ++k) {
                const double xik = x(i, k) - x_mean[k];
                gram_acc[j * d + k] += xij * xik;
            }
        }
    }
    Matrix gram(d, d);
    for (std::size_t j = 0; j < d; ++j) {
        gram_acc[j * d + j] += lambda;
        for (std::size_t k = j; k < d; ++k) {
            const float narrowed =
                static_cast<float>(gram_acc[j * d + k]);
            gram(j, k) = narrowed;
            gram(k, j) = narrowed;
        }
    }

    const bool ok = choleskyFactor(gram);
    PROSE_ASSERT(ok, "ridge normal equations not SPD despite penalty");
    RidgeModel model;
    model.weights = choleskySolve(gram, rhs);
    model.intercept = y_mean;
    for (std::size_t j = 0; j < d; ++j)
        model.intercept -= model.weights[j] * x_mean[j];
    return model;
}

} // namespace prose
