/**
 * @file
 * Dense row-major matrix over float, plus the tensor-op vocabulary the
 * Protein BERT workload needs (matmul, batched matmul, MulAdd, MatDiv,
 * softmax, GELU, LayerNorm). The bf16 variants mirror the accelerator
 * datapath exactly: operands quantized to bfloat16, products accumulated
 * in fp32.
 */

#ifndef PROSE_NUMERICS_MATRIX_HH
#define PROSE_NUMERICS_MATRIX_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.hh"

namespace prose {

/** Dense row-major float matrix. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix, zero-filled. */
    Matrix(std::size_t rows, std::size_t cols);

    /** rows x cols matrix filled with `fill`. */
    Matrix(std::size_t rows, std::size_t cols, float fill);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    float &at(std::size_t r, std::size_t c);
    float at(std::size_t r, std::size_t c) const;

    float &operator()(std::size_t r, std::size_t c) { return at(r, c); }
    float operator()(std::size_t r, std::size_t c) const { return at(r, c); }

    const float *data() const { return data_.data(); }
    float *data() { return data_.data(); }

    /** Pointer to the start of row r. */
    const float *row(std::size_t r) const { return data_.data() + r * cols_; }
    float *row(std::size_t r) { return data_.data() + r * cols_; }

    /** Fill with i.i.d. N(mean, stddev) draws. */
    void fillGaussian(Rng &rng, float mean, float stddev);

    /** Fill with uniform draws in [lo, hi). */
    void fillUniform(Rng &rng, float lo, float hi);

    /** In-place quantization of every element through bfloat16. */
    void quantizeBf16InPlace();

    /** Largest |a - b| over all elements; matrices must be same shape. */
    static float maxAbsDiff(const Matrix &a, const Matrix &b);

    /** Frobenius norm. */
    float frobeniusNorm() const;

    bool sameShape(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_;
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/**
 * A constant operand pre-quantized to bfloat16 — the weight-cache entry
 * of the bf16 matmul path. Quantizing a weight matrix costs one pass
 * over the data; model weights are constant across forward passes, so
 * callers quantize once per weight load (via the constructor or
 * update()) instead of once per matmul call. update() bumps version(),
 * which is how cache-invalidation tests observe a reload.
 *
 * Storage is structure-of-arrays: the primary plane is the compact
 * bf16 bit pattern (half the fp32 footprint, what the SIMD GEMM
 * kernels stream), with a widened fp32 mirror kept for callers that
 * want the values as a Matrix.
 */
class QuantizedOperand
{
  public:
    /** Empty cache entry; must be update()d before use. */
    QuantizedOperand() = default;

    /** Quantize `source` once. */
    explicit QuantizedOperand(const Matrix &source) { update(source); }

    /** Re-quantize from a (possibly mutated) source matrix. */
    void update(const Matrix &source);

    bool empty() const { return bits_.empty(); }

    /** The bf16-quantized operand (values widened back to float). */
    const Matrix &bf16() const { return bf16_; }

    /** The operand as raw bf16 bit patterns, row-major. */
    const std::vector<std::uint16_t> &bits() const { return bits_; }

    /** True when no element quantized to +-Inf or NaN (the zero-skip
     *  gate of the bits GEMM path). */
    bool allFinite() const { return allFinite_; }

    /** Incremented by every update(); 0 while empty. */
    std::uint64_t version() const { return version_; }

  private:
    Matrix bf16_;
    std::vector<std::uint16_t> bits_;
    bool allFinite_ = true;
    std::uint64_t version_ = 0;
};

/**
 * C = A x B in fp32, cache-blocked and parallelized over row chunks on
 * the shared ThreadPool. Per output element the k-accumulation order is
 * exactly the classic serial i-k-j kernel's, so the result is
 * bit-identical for any tiling or thread count. A zero-skip fast path
 * is taken only when B is entirely finite, so Inf/NaN in B propagate
 * through zero entries of A as IEEE demands.
 */
Matrix matmul(const Matrix &a, const Matrix &b);

/**
 * C = A x B with the accelerator's numerics: A and B quantized to bf16,
 * products accumulated in fp32 (no intermediate rounding), and the result
 * left in fp32 exactly as the 32-bit accumulators hold it.
 */
Matrix matmulBf16(const Matrix &a, const Matrix &b);

/**
 * matmulBf16 against a pre-quantized (cached) right-hand operand.
 * Bit-identical to matmulBf16(a, b) when `b` was built from the same
 * source matrix; skips the per-call copy + quantization of the weights.
 */
Matrix matmulBf16(const Matrix &a, const QuantizedOperand &b);

/** C = alpha*A + beta*B elementwise (the paper's MulAdd primitive). */
Matrix mulAdd(float alpha, const Matrix &a, float beta, const Matrix &b);

/** C = A * (1/alpha) elementwise (the paper's MatDiv primitive). */
Matrix matDiv(const Matrix &a, float alpha);

/** C = A + B. */
Matrix add(const Matrix &a, const Matrix &b);

/** C = A * s. */
Matrix scale(const Matrix &a, float s);

/** Transpose. */
Matrix transpose(const Matrix &a);

/** Apply f to every element. */
Matrix map(const Matrix &a, float (*f)(float));

/** Row-wise softmax (each row sums to 1). */
Matrix rowSoftmax(const Matrix &a);

/**
 * Row-wise LayerNorm with per-column gain/bias:
 * out[r][c] = gamma[c] * (a[r][c] - mu_r) / sqrt(var_r + eps) + beta[c].
 */
Matrix layerNorm(const Matrix &a, const std::vector<float> &gamma,
                 const std::vector<float> &beta, float eps = 1e-12f);

/** Batched matmul: C[i] = A[i] x B[i], batch-parallel on the pool. */
std::vector<Matrix> bmm(const std::vector<Matrix> &a,
                        const std::vector<Matrix> &b);

/** Concatenate matrices left-to-right (same row count). */
Matrix hconcat(const std::vector<Matrix> &parts);

/** Slice columns [begin, begin+count). */
Matrix sliceCols(const Matrix &a, std::size_t begin, std::size_t count);

/** Slice rows [begin, begin+count). */
Matrix sliceRows(const Matrix &a, std::size_t begin, std::size_t count);

} // namespace prose

#endif // PROSE_NUMERICS_MATRIX_HH
