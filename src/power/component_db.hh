/**
 * @file
 * Physical-design component library — the paper's Table 2. Each entry is
 * one systolic-array flavour (size x LUT complement), synthesized in
 * FreePDK 15 nm (OpenRAM 45 nm for the input buffers) and conservatively
 * scaled to 7 nm, reported as frequency, power (with and without the
 * input buffer), and area (likewise), plus the fraction of an A100's
 * 400 W TDP and 826 mm^2 die these represent.
 */

#ifndef PROSE_POWER_COMPONENT_DB_HH
#define PROSE_POWER_COMPONENT_DB_HH

#include <cstdint>
#include <vector>

#include "systolic/array_config.hh"

namespace prose {

/** Reference A100 numbers the paper normalizes against. */
constexpr double kA100PowerWatts = 400.0;
constexpr double kA100AreaMm2 = 826.0;

/** One Table 2 row. */
struct ComponentSpec
{
    std::uint32_t dim;      ///< array size (n x n)
    bool hasGelu;           ///< GELU LUT complement
    bool hasExp;            ///< Exp LUT complement
    double frequencyMhz;    ///< post-layout clock
    double powerMw;         ///< array power, no input buffer
    double powerInBufMw;    ///< array power including the input buffer
    double areaMm2;         ///< array area, no input buffer
    double areaInBufMm2;    ///< array area including the input buffer

    double percentA100Power(bool with_buffer) const;
    double percentA100Area(bool with_buffer) const;
};

/** Lookup access to the Table 2 library. */
class ComponentDb
{
  public:
    /** The singleton library (static data, thread-safe to read). */
    static const ComponentDb &instance();

    /** All rows, in the paper's table order. */
    const std::vector<ComponentSpec> &components() const
    {
        return specs_;
    }

    /**
     * The row matching an array geometry. dim must be 16/32/64 and the
     * LUT complement must exist in the library; anything else is a
     * configuration error.
     */
    const ComponentSpec &lookup(const ArrayGeometry &geometry) const;
    const ComponentSpec &lookup(std::uint32_t dim, bool has_gelu,
                                bool has_exp) const;

    /** Power of one array in watts. */
    double arrayPowerWatts(const ArrayGeometry &geometry,
                           bool with_buffer) const;

    /** Area of one array in mm^2. */
    double arrayAreaMm2(const ArrayGeometry &geometry,
                        bool with_buffer) const;

  private:
    ComponentDb();
    std::vector<ComponentSpec> specs_;
};

} // namespace prose

#endif // PROSE_POWER_COMPONENT_DB_HH
