#include "component_db.hh"

#include "common/logging.hh"

namespace prose {

double
ComponentSpec::percentA100Power(bool with_buffer) const
{
    const double mw = with_buffer ? powerInBufMw : powerMw;
    return mw / 1000.0 / kA100PowerWatts * 100.0;
}

double
ComponentSpec::percentA100Area(bool with_buffer) const
{
    const double mm2 = with_buffer ? areaInBufMm2 : areaMm2;
    return mm2 / kA100AreaMm2 * 100.0;
}

ComponentDb::ComponentDb()
{
    // Table 2 of the paper, verbatim: {dim, gelu, exp, MHz, mW, mW+buf,
    // mm2, mm2+buf}.
    specs_ = {
        { 16, false, false, 1977.1, 249.3, 268.6, 0.183, 0.213 },
        { 16, false, true, 925.2, 260.2, 279.5, 0.190, 0.221 },
        { 16, true, false, 887.1, 255.1, 274.4, 0.187, 0.217 },
        { 32, false, false, 1707.1, 802.6, 841.2, 0.706, 0.766 },
        { 32, false, true, 886.8, 830.0, 868.5, 0.725, 0.786 },
        { 32, true, false, 870.3, 808.4, 847.0, 0.719, 0.779 },
        { 64, false, false, 1626.1, 2552.1, 2629.1, 2.788, 2.908 },
        { 64, false, true, 858.1, 2578.2, 2655.2, 2.829, 2.949 },
        { 64, true, false, 860.4, 2514.8, 2591.8, 2.816, 2.936 },
        { 64, true, true, 858.1, 2585.8, 2662.9, 2.863, 2.983 },
    };
}

const ComponentDb &
ComponentDb::instance()
{
    static const ComponentDb db;
    return db;
}

const ComponentSpec &
ComponentDb::lookup(std::uint32_t dim, bool has_gelu, bool has_exp) const
{
    for (const auto &spec : specs_) {
        if (spec.dim == dim && spec.hasGelu == has_gelu &&
            spec.hasExp == has_exp) {
            return spec;
        }
    }
    fatal("no Table 2 component for a ", dim, "x", dim, " array",
          has_gelu ? " +GELU" : "", has_exp ? " +Exp" : "");
}

const ComponentSpec &
ComponentDb::lookup(const ArrayGeometry &geometry) const
{
    return lookup(geometry.dim, geometry.hasGelu, geometry.hasExp);
}

double
ComponentDb::arrayPowerWatts(const ArrayGeometry &geometry,
                             bool with_buffer) const
{
    const ComponentSpec &spec = lookup(geometry);
    return (with_buffer ? spec.powerInBufMw : spec.powerMw) / 1000.0;
}

double
ComponentDb::arrayAreaMm2(const ArrayGeometry &geometry,
                          bool with_buffer) const
{
    const ComponentSpec &spec = lookup(geometry);
    return with_buffer ? spec.areaInBufMm2 : spec.areaMm2;
}

} // namespace prose
