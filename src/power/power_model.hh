/**
 * @file
 * Aggregate power/area/energy model for a ProSE instance, following the
 * paper's methodology (Section 4.1): array power from the Table 2
 * component library; host CPU power measured-style as a duty-cycled
 * 50.21 W under-ProSE-load figure; DRAM at 6.23 W (cold-miss traffic
 * only, since intermediates live in the host L3).
 */

#ifndef PROSE_POWER_POWER_MODEL_HH
#define PROSE_POWER_POWER_MODEL_HH

#include <cstdint>
#include <vector>

#include "component_db.hh"

namespace prose {

/** One homogeneous slice of a heterogeneous configuration. */
struct ArrayGroupSpec
{
    ArrayGeometry geometry;
    std::uint32_t count = 0;
};

/** Host-side power constants from the paper's RAPL measurements. */
struct HostPowerSpec
{
    double cpuActiveWatts = 50.21; ///< package power while serving ProSE
    double dramWatts = 6.23;       ///< DRAM power under ProSE load
};

/** Power/area roll-up of one configuration. */
class PowerModel
{
  public:
    explicit PowerModel(HostPowerSpec host = HostPowerSpec{});

    /** Sum of array powers (watts). */
    double arrayPowerWatts(const std::vector<ArrayGroupSpec> &groups,
                           bool with_buffer) const;

    /** Sum of array areas (mm^2). */
    double arrayAreaMm2(const std::vector<ArrayGroupSpec> &groups,
                        bool with_buffer) const;

    /**
     * Whole-system power: arrays + duty-cycled CPU + DRAM.
     * @param cpu_duty fraction of wall-clock the host CPU spends serving
     *        ProSE (the paper measured 21.4%)
     */
    double systemPowerWatts(const std::vector<ArrayGroupSpec> &groups,
                            bool with_buffer, double cpu_duty) const;

    /** Energy in joules for a run of the given duration. */
    double energyJoules(const std::vector<ArrayGroupSpec> &groups,
                        bool with_buffer, double cpu_duty,
                        double seconds) const;

    /** Inferences per second per watt. */
    static double efficiency(double inferences_per_second, double watts);

    const HostPowerSpec &host() const { return host_; }

  private:
    HostPowerSpec host_;
};

} // namespace prose

#endif // PROSE_POWER_POWER_MODEL_HH
