#include "power_model.hh"

#include "common/logging.hh"

namespace prose {

PowerModel::PowerModel(HostPowerSpec host)
    : host_(host)
{
}

double
PowerModel::arrayPowerWatts(const std::vector<ArrayGroupSpec> &groups,
                            bool with_buffer) const
{
    const ComponentDb &db = ComponentDb::instance();
    double watts = 0.0;
    for (const auto &group : groups)
        watts += group.count * db.arrayPowerWatts(group.geometry,
                                                  with_buffer);
    return watts;
}

double
PowerModel::arrayAreaMm2(const std::vector<ArrayGroupSpec> &groups,
                         bool with_buffer) const
{
    const ComponentDb &db = ComponentDb::instance();
    double mm2 = 0.0;
    for (const auto &group : groups)
        mm2 += group.count * db.arrayAreaMm2(group.geometry, with_buffer);
    return mm2;
}

double
PowerModel::systemPowerWatts(const std::vector<ArrayGroupSpec> &groups,
                             bool with_buffer, double cpu_duty) const
{
    PROSE_ASSERT(cpu_duty >= 0.0 && cpu_duty <= 1.0,
                 "cpu duty cycle out of [0, 1]");
    return arrayPowerWatts(groups, with_buffer) +
           cpu_duty * host_.cpuActiveWatts + host_.dramWatts;
}

double
PowerModel::energyJoules(const std::vector<ArrayGroupSpec> &groups,
                         bool with_buffer, double cpu_duty,
                         double seconds) const
{
    PROSE_ASSERT(seconds >= 0.0, "negative duration");
    return systemPowerWatts(groups, with_buffer, cpu_duty) * seconds;
}

double
PowerModel::efficiency(double inferences_per_second, double watts)
{
    PROSE_ASSERT(watts > 0.0, "efficiency with non-positive power");
    return inferences_per_second / watts;
}

} // namespace prose
