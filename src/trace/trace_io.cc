#include "trace_io.hh"

#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace prose {

namespace {

const OpKind kAllKinds[] = {
    OpKind::MatMul, OpKind::Bmm, OpKind::MulAdd, OpKind::MatDiv,
    OpKind::Exp, OpKind::SoftmaxHost, OpKind::Gelu, OpKind::LayerNorm,
    OpKind::Embed, OpKind::Transpose,
};

const Sublayer kAllSublayers[] = {
    Sublayer::Embedding, Sublayer::Attention, Sublayer::Intermediate,
    Sublayer::Output, Sublayer::Downstream,
};

} // namespace

OpKind
opKindFromString(const std::string &name)
{
    for (OpKind kind : kAllKinds)
        if (name == toString(kind))
            return kind;
    fatal("unknown op kind in trace: '", name, "'");
}

Sublayer
sublayerFromString(const std::string &name)
{
    for (Sublayer sublayer : kAllSublayers)
        if (name == toString(sublayer))
            return sublayer;
    fatal("unknown sublayer in trace: '", name, "'");
}

void
writeTrace(std::ostream &out, const OpTrace &trace)
{
    out << "# prose op trace v1: kind sublayer layer batch m k n "
           "broadcast\n";
    for (const Op &op : trace.ops()) {
        out << toString(op.kind) << ' ' << toString(op.sublayer) << ' '
            << op.layer << ' ' << op.batch << ' ' << op.m << ' ' << op.k
            << ' ' << op.n << ' ' << (op.broadcast ? 1 : 0) << '\n';
    }
}

void
writeTraceFile(const std::string &path, const OpTrace &trace)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace file for writing: ", path);
    writeTrace(out, trace);
}

namespace {

/**
 * Dimension fields are parsed with the checked strutil conversions
 * instead of istream >>: num_get happily reads "-1" into a uint64_t as
 * 2^64-1 (sign-wrapped, no failbit), and a trace claiming an
 * 18-quintillion-row matmul would only die later, inside whichever
 * consumer tried to allocate it. Anything beyond 2^32 per dimension is
 * malformed input here, with a line number.
 */
constexpr std::uint64_t kMaxTraceDim = 1ull << 32;

std::uint64_t
parseTraceDim(const std::string &text, const char *what,
              std::size_t line_no, const std::string &line)
{
    std::uint64_t value = 0;
    if (!parseU64(text, value))
        fatal("bad ", what, " '", text, "' on trace line ", line_no,
              ": '", line, "'");
    if (value > kMaxTraceDim)
        fatal(what, " ", value, " on trace line ", line_no,
              " exceeds the ", kMaxTraceDim, " sanity bound");
    return value;
}

} // namespace

OpTrace
readTrace(std::istream &in)
{
    OpTrace trace;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::vector<std::string> tokens;
        std::string token;
        while (fields >> token)
            tokens.push_back(token);
        if (tokens.size() != 8)
            fatal("malformed trace line ", line_no, " (want 8 fields, "
                  "got ", tokens.size(), "): '", line, "'");

        // layer is the one signed field: -1 marks embedding/downstream
        // ops that belong to no encoder layer.
        int layer = -1;
        if (tokens[2] != "-1") {
            std::uint32_t layer_parsed = 0;
            if (!parseU32(tokens[2], layer_parsed) ||
                layer_parsed > static_cast<std::uint32_t>(
                                   std::numeric_limits<int>::max()))
                fatal("bad layer '", tokens[2], "' on trace line ",
                      line_no, ": '", line, "'");
            layer = static_cast<int>(layer_parsed);
        }
        const std::uint64_t batch =
            parseTraceDim(tokens[3], "batch", line_no, line);
        const std::uint64_t m = parseTraceDim(tokens[4], "m", line_no,
                                              line);
        const std::uint64_t k = parseTraceDim(tokens[5], "k", line_no,
                                              line);
        const std::uint64_t n = parseTraceDim(tokens[6], "n", line_no,
                                              line);
        if (tokens[7] != "0" && tokens[7] != "1")
            fatal("bad broadcast flag '", tokens[7], "' on trace line ",
                  line_no, ": '", line, "'");
        trace.record(opKindFromString(tokens[0]),
                     sublayerFromString(tokens[1]), layer, batch, m, k,
                     n, tokens[7] == "1");
    }
    if (in.bad())
        fatal("I/O error while reading trace input");
    return trace;
}

OpTrace
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file: ", path);
    return readTrace(in);
}

} // namespace prose
