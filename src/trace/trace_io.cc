#include "trace_io.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace prose {

namespace {

const OpKind kAllKinds[] = {
    OpKind::MatMul, OpKind::Bmm, OpKind::MulAdd, OpKind::MatDiv,
    OpKind::Exp, OpKind::SoftmaxHost, OpKind::Gelu, OpKind::LayerNorm,
    OpKind::Embed, OpKind::Transpose,
};

const Sublayer kAllSublayers[] = {
    Sublayer::Embedding, Sublayer::Attention, Sublayer::Intermediate,
    Sublayer::Output, Sublayer::Downstream,
};

} // namespace

OpKind
opKindFromString(const std::string &name)
{
    for (OpKind kind : kAllKinds)
        if (name == toString(kind))
            return kind;
    fatal("unknown op kind in trace: '", name, "'");
}

Sublayer
sublayerFromString(const std::string &name)
{
    for (Sublayer sublayer : kAllSublayers)
        if (name == toString(sublayer))
            return sublayer;
    fatal("unknown sublayer in trace: '", name, "'");
}

void
writeTrace(std::ostream &out, const OpTrace &trace)
{
    out << "# prose op trace v1: kind sublayer layer batch m k n "
           "broadcast\n";
    for (const Op &op : trace.ops()) {
        out << toString(op.kind) << ' ' << toString(op.sublayer) << ' '
            << op.layer << ' ' << op.batch << ' ' << op.m << ' ' << op.k
            << ' ' << op.n << ' ' << (op.broadcast ? 1 : 0) << '\n';
    }
}

void
writeTraceFile(const std::string &path, const OpTrace &trace)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace file for writing: ", path);
    writeTrace(out, trace);
}

OpTrace
readTrace(std::istream &in)
{
    OpTrace trace;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string kind, sublayer;
        int layer = -1;
        std::uint64_t batch = 0, m = 0, k = 0, n = 0;
        int broadcast = 0;
        if (!(fields >> kind >> sublayer >> layer >> batch >> m >> k >>
              n >> broadcast)) {
            fatal("malformed trace line ", line_no, ": '", line, "'");
        }
        std::string excess;
        if (fields >> excess)
            fatal("trailing fields on trace line ", line_no, ": '", line,
                  "'");
        trace.record(opKindFromString(kind),
                     sublayerFromString(sublayer), layer, batch, m, k, n,
                     broadcast != 0);
    }
    if (in.bad())
        fatal("I/O error while reading trace input");
    return trace;
}

OpTrace
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file: ", path);
    return readTrace(in);
}

} // namespace prose
