/**
 * @file
 * Tensor-operation records — the repo's analogue of the ATen call stream
 * the paper captures through the PyTorch JIT (Figure 15). The instrumented
 * BERT forward appends one Op per backend call; the DataflowBuilder then
 * groups them into the paper's Dataflows 1/2/3, and the baseline models
 * cost them per-op.
 */

#ifndef PROSE_TRACE_OP_HH
#define PROSE_TRACE_OP_HH

#include <cstdint>
#include <string>

namespace prose {

/** The op vocabulary observed in the Protein BERT profile (Figure 3). */
enum class OpKind
{
    MatMul,      ///< dense C = A x B, shapes m x k x n
    Bmm,         ///< batched matmul, `batch` independent m x k x n
    MulAdd,      ///< elementwise alpha*A + beta*B (bias adds, residuals)
    MatDiv,      ///< elementwise multiply by a reciprocal constant
    Exp,         ///< elementwise exponential (softmax numerator)
    SoftmaxHost, ///< softmax row-sum + divide executed on the host CPU
    Gelu,        ///< elementwise GELU activation
    LayerNorm,   ///< row mean/variance normalize + affine (host / Other)
    Embed,       ///< embedding gather (host / Other)
    Transpose,   ///< data-movement-only reshape (host / Other)
};

/** Which model sublayer produced an op (Figure 7). */
enum class Sublayer
{
    Embedding,
    Attention,
    Intermediate,
    Output,
    Downstream,
};

/** Reporting categories used by the Figure 3 runtime breakdown. */
enum class OpCategory
{
    MatMul,
    BatchedMatMul,
    Softmax,
    Gelu,
    MatAdd,
    MatDiv,
    Other,
};

/** One recorded tensor operation. */
struct Op
{
    OpKind kind = OpKind::MatMul;
    Sublayer sublayer = Sublayer::Embedding;
    int layer = -1; ///< encoder layer index, -1 for embedding/downstream

    /**
     * Shape fields. MatMul: m x k x n (batch == 1). Bmm: `batch`
     * independent m x k x n products. Elementwise ops: rows=m, cols=n,
     * k unused (0).
     */
    std::uint64_t batch = 1;
    std::uint64_t m = 0;
    std::uint64_t k = 0;
    std::uint64_t n = 0;

    /**
     * For MulAdd: true when the second operand is a length-n row vector
     * broadcast over the rows (a bias add) rather than a full m x n
     * matrix (a residual add). Broadcast operands cost n elements of
     * stream traffic instead of m * n.
     */
    bool broadcast = false;

    /** Floating-point operations this op performs. */
    double flops() const;

    /** Bytes of operand traffic in the given element width. */
    std::uint64_t bytesIn(std::uint64_t elem_bytes) const;

    /** Bytes of result traffic in the given element width. */
    std::uint64_t bytesOut(std::uint64_t elem_bytes) const;

    /** Output element count (batch * m * n for matmuls, m * n else). */
    std::uint64_t outputElems() const;

    /** Figure 3 reporting bucket for this op. */
    OpCategory category() const;

    /** Short human-readable description for logs and dumps. */
    std::string describe() const;
};

/** Enum-to-string helpers for reports. */
const char *toString(OpKind kind);
const char *toString(Sublayer sublayer);
const char *toString(OpCategory category);

} // namespace prose

#endif // PROSE_TRACE_OP_HH
