#include "op_trace.hh"

namespace prose {

void
OpTrace::record(OpKind kind, Sublayer sublayer, int layer,
                std::uint64_t batch, std::uint64_t m, std::uint64_t k,
                std::uint64_t n, bool broadcast)
{
    Op op;
    op.kind = kind;
    op.sublayer = sublayer;
    op.layer = layer;
    op.batch = batch;
    op.m = m;
    op.k = k;
    op.n = n;
    op.broadcast = broadcast;
    ops_.push_back(op);
}

double
OpTrace::totalFlops() const
{
    double total = 0.0;
    for (const auto &op : ops_)
        total += op.flops();
    return total;
}

std::map<OpCategory, double>
OpTrace::flopsByCategory() const
{
    std::map<OpCategory, double> by_cat;
    for (const auto &op : ops_)
        by_cat[op.category()] += op.flops();
    return by_cat;
}

std::map<OpKind, std::size_t>
OpTrace::countByKind() const
{
    std::map<OpKind, std::size_t> by_kind;
    for (const auto &op : ops_)
        ++by_kind[op.kind];
    return by_kind;
}

std::vector<Op>
OpTrace::layerOps(int layer) const
{
    std::vector<Op> out;
    for (const auto &op : ops_)
        if (op.layer == layer)
            out.push_back(op);
    return out;
}

} // namespace prose
