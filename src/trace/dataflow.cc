#include "dataflow.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/units.hh"

namespace prose {

const char *
toString(DataflowKind kind)
{
    switch (kind) {
      case DataflowKind::Dataflow1:
        return "Dataflow1";
      case DataflowKind::Dataflow2:
        return "Dataflow2";
      case DataflowKind::Dataflow3:
        return "Dataflow3";
      case DataflowKind::Host:
        return "Host";
    }
    return "?";
}

double
DataflowTask::flops() const
{
    double total = 0.0;
    for (const auto &op : ops)
        total += op.flops();
    return total;
}

std::uint64_t
DataflowTask::streamBytesIn() const
{
    std::uint64_t bytes = 0;
    for (const auto &op : ops) {
        switch (op.kind) {
          case OpKind::MatMul:
          case OpKind::Bmm:
            // Both operand matrices stream in; the product stays in the
            // accumulators for the rest of the dataflow.
            bytes += op.bytesIn(kBf16Bytes);
            break;
          case OpKind::MulAdd:
            // Only the second operand streams (the first is already in
            // the accumulators from the preceding matmul). A broadcast
            // bias operand is a single length-n row vector.
            if (op.broadcast)
                bytes += op.batch * op.n * kBf16Bytes;
            else
                bytes += op.batch * op.m * op.n * kBf16Bytes;
            break;
          case OpKind::MatDiv:
          case OpKind::Exp:
          case OpKind::Gelu:
            // Pure in-place SIMD passes over the accumulators.
            break;
          case OpKind::SoftmaxHost:
            // Exp results already stream out as the task's output; the
            // host-side pass is not extra accelerator input.
            break;
          default:
            bytes += op.bytesIn(kBf16Bytes);
            break;
        }
    }
    return bytes;
}

std::uint64_t
DataflowTask::streamBytesOut() const
{
    if (ops.empty())
        return 0;
    std::uint64_t bytes = ops.back().bytesOut(kBf16Bytes);
    if (kind == DataflowKind::Dataflow3) {
        // The Exp results also travel to the host for the softmax
        // sum/divide before the final BMM streams back in.
        for (const auto &op : ops)
            if (op.kind == OpKind::Exp)
                bytes += op.bytesOut(kBf16Bytes);
    }
    return bytes;
}

std::string
DataflowTask::describe() const
{
    std::ostringstream os;
    os << toString(kind) << "[" << toString(sublayer);
    if (layer >= 0)
        os << " L" << layer;
    os << "]";
    for (const auto &op : ops)
        os << " " << toString(op.kind);
    return os.str();
}

std::vector<DataflowTask>
DataflowBuilder::build(const OpTrace &trace) const
{
    std::vector<DataflowTask> tasks;
    const auto &ops = trace.ops();
    std::size_t i = 0;

    auto peek_kind = [&](std::size_t off) -> OpKind {
        PROSE_ASSERT(i + off < ops.size(),
                     "dataflow grammar ran off the end of the trace");
        return ops[i + off].kind;
    };

    while (i < ops.size()) {
        const Op &head = ops[i];
        DataflowTask task;
        task.sublayer = head.sublayer;
        task.layer = head.layer;

        switch (head.kind) {
          case OpKind::Bmm: {
            // Dataflow 3: BMM, MatDiv, Exp, SoftmaxHost, BMM.
            task.kind = DataflowKind::Dataflow3;
            PROSE_ASSERT(peek_kind(1) == OpKind::MatDiv &&
                             peek_kind(2) == OpKind::Exp &&
                             peek_kind(3) == OpKind::SoftmaxHost &&
                             peek_kind(4) == OpKind::Bmm,
                         "BMM not followed by the Dataflow 3 sequence at ",
                         head.describe());
            for (std::size_t j = 0; j < 5; ++j)
                task.ops.push_back(ops[i + j]);
            i += 5;
            break;
          }
          case OpKind::MatMul: {
            // Dataflow 1 or 2: MatMul, then MulAdds, then optional GELU.
            task.ops.push_back(head);
            ++i;
            while (i < ops.size() && ops[i].kind == OpKind::MulAdd) {
                task.ops.push_back(ops[i]);
                ++i;
            }
            PROSE_ASSERT(task.ops.size() >= 2,
                         "MatMul without a fused MulAdd at ",
                         head.describe());
            if (i < ops.size() && ops[i].kind == OpKind::Gelu) {
                task.ops.push_back(ops[i]);
                ++i;
                task.kind = DataflowKind::Dataflow2;
            } else {
                task.kind = DataflowKind::Dataflow1;
            }
            break;
          }
          case OpKind::LayerNorm:
          case OpKind::Embed:
          case OpKind::Transpose: {
            task.kind = DataflowKind::Host;
            task.ops.push_back(head);
            ++i;
            break;
          }
          default:
            panic("op outside the dataflow grammar: ", head.describe());
        }
        tasks.push_back(std::move(task));
    }
    return tasks;
}

double
DataflowBuilder::acceleratedFraction(const std::vector<DataflowTask> &tasks)
{
    double total = 0.0;
    double accel = 0.0;
    for (const auto &task : tasks) {
        const double f = task.flops();
        total += f;
        if (task.kind != DataflowKind::Host)
            accel += f;
    }
    return total > 0.0 ? accel / total : 0.0;
}

namespace {

/**
 * Record one attention block: Q from the target activations, K/V from
 * `memory_len`-long activations (== target for self-attention), the
 * Dataflow 3 core, the output projection with bias + residual, and the
 * closing LayerNorm.
 */
void
recordAttentionBlock(OpTrace &trace, int layer, std::uint64_t bl,
                     std::uint64_t memory_tokens, std::uint64_t h,
                     std::uint64_t heads, std::uint64_t bh,
                     std::uint64_t q_len, std::uint64_t kv_len)
{
    const std::uint64_t dk = h / heads;
    // Q projection from the target stream.
    trace.record(OpKind::MatMul, Sublayer::Attention, layer, 1, bl, h, h);
    trace.record(OpKind::MulAdd, Sublayer::Attention, layer, 1, bl, 0, h,
                 true);
    trace.record(OpKind::Transpose, Sublayer::Attention, layer, 1, bl, 0,
                 h);
    // K and V projections from the memory stream.
    for (int proj = 0; proj < 2; ++proj) {
        trace.record(OpKind::MatMul, Sublayer::Attention, layer, 1,
                     memory_tokens, h, h);
        trace.record(OpKind::MulAdd, Sublayer::Attention, layer, 1,
                     memory_tokens, 0, h, true);
        trace.record(OpKind::Transpose, Sublayer::Attention, layer, 1,
                     memory_tokens, 0, h);
    }
    // Scores / softmax / context (Dataflow 3).
    trace.record(OpKind::Bmm, Sublayer::Attention, layer, bh, q_len, dk,
                 kv_len);
    trace.record(OpKind::MatDiv, Sublayer::Attention, layer, bh, q_len,
                 0, kv_len);
    trace.record(OpKind::Exp, Sublayer::Attention, layer, bh, q_len, 0,
                 kv_len);
    trace.record(OpKind::SoftmaxHost, Sublayer::Attention, layer, bh,
                 q_len, 0, kv_len);
    trace.record(OpKind::Bmm, Sublayer::Attention, layer, bh, q_len,
                 kv_len, dk);
    // Concat + output projection + residual + LayerNorm.
    trace.record(OpKind::Transpose, Sublayer::Attention, layer, 1, bl, 0,
                 h);
    trace.record(OpKind::MatMul, Sublayer::Attention, layer, 1, bl, h, h);
    trace.record(OpKind::MulAdd, Sublayer::Attention, layer, 1, bl, 0, h,
                 true);
    trace.record(OpKind::MulAdd, Sublayer::Attention, layer, 1, bl, 0, h);
    trace.record(OpKind::LayerNorm, Sublayer::Attention, layer, 1, bl, 0,
                 h);
}

} // namespace

OpTrace
synthesizeDecoderTrace(const DecoderShape &shape)
{
    OpTrace trace;
    const std::uint64_t bl = shape.batch * shape.targetLen;
    const std::uint64_t memory_tokens = shape.batch * shape.sourceLen;
    const std::uint64_t h = shape.hidden;
    const std::uint64_t bh = shape.batch * shape.heads;
    const std::uint64_t ffn = shape.intermediate;

    trace.record(OpKind::Embed, Sublayer::Embedding, -1, 1, bl, 0, h);
    trace.record(OpKind::LayerNorm, Sublayer::Embedding, -1, 1, bl, 0, h);

    for (std::uint64_t layer = 0; layer < shape.layers; ++layer) {
        const int li = static_cast<int>(layer);
        // Causal self-attention over the target sequence.
        recordAttentionBlock(trace, li, bl, bl, h, shape.heads, bh,
                             shape.targetLen, shape.targetLen);
        // Cross-attention against the encoder memory.
        recordAttentionBlock(trace, li, bl, memory_tokens, h,
                             shape.heads, bh, shape.targetLen,
                             shape.sourceLen);
        // Feed-forward (Dataflow 2 + Dataflow 1), as in the encoder.
        trace.record(OpKind::MatMul, Sublayer::Intermediate, li, 1, bl,
                     h, ffn);
        trace.record(OpKind::MulAdd, Sublayer::Intermediate, li, 1, bl,
                     0, ffn, true);
        trace.record(OpKind::Gelu, Sublayer::Intermediate, li, 1, bl, 0,
                     ffn);
        trace.record(OpKind::MatMul, Sublayer::Output, li, 1, bl, ffn,
                     h);
        trace.record(OpKind::MulAdd, Sublayer::Output, li, 1, bl, 0, h,
                     true);
        trace.record(OpKind::MulAdd, Sublayer::Output, li, 1, bl, 0, h);
        trace.record(OpKind::LayerNorm, Sublayer::Output, li, 1, bl, 0,
                     h);
    }
    return trace;
}

OpTrace
synthesizeBertTrace(const BertShape &shape)
{
    OpTrace trace;
    const std::uint64_t bl = shape.batch * shape.seqLen;
    const std::uint64_t h = shape.hidden;
    const std::uint64_t dk = shape.hidden / shape.heads;
    const std::uint64_t bh = shape.batch * shape.heads;
    const std::uint64_t l = shape.seqLen;
    const std::uint64_t ffn = shape.intermediate;

    // Embedding lookup + LayerNorm.
    trace.record(OpKind::Embed, Sublayer::Embedding, -1, 1, bl, 0, h);
    trace.record(OpKind::LayerNorm, Sublayer::Embedding, -1, 1, bl, 0, h);

    for (std::uint64_t layer = 0; layer < shape.layers; ++layer) {
        const int li = static_cast<int>(layer);

        // Q/K/V projections: MatMul + bias MulAdd each, plus the head
        // split reshape.
        for (int proj = 0; proj < 3; ++proj) {
            trace.record(OpKind::MatMul, Sublayer::Attention, li,
                         1, bl, h, h);
            trace.record(OpKind::MulAdd, Sublayer::Attention, li,
                         1, bl, 0, h, true);
            trace.record(OpKind::Transpose, Sublayer::Attention, li,
                         1, bl, 0, h);
        }

        // Attention scores and probabilities (Dataflow 3).
        trace.record(OpKind::Bmm, Sublayer::Attention, li, bh, l, dk, l);
        trace.record(OpKind::MatDiv, Sublayer::Attention, li, bh, l, 0, l);
        trace.record(OpKind::Exp, Sublayer::Attention, li, bh, l, 0, l);
        trace.record(OpKind::SoftmaxHost, Sublayer::Attention, li,
                     bh, l, 0, l);
        trace.record(OpKind::Bmm, Sublayer::Attention, li, bh, l, l, dk);

        // Concatenate heads, output projection, residual, LayerNorm.
        trace.record(OpKind::Transpose, Sublayer::Attention, li,
                     1, bl, 0, h);
        trace.record(OpKind::MatMul, Sublayer::Attention, li, 1, bl, h, h);
        trace.record(OpKind::MulAdd, Sublayer::Attention, li, 1, bl, 0, h,
                     true);
        trace.record(OpKind::MulAdd, Sublayer::Attention, li, 1, bl, 0, h);
        trace.record(OpKind::LayerNorm, Sublayer::Attention, li,
                     1, bl, 0, h);

        // Intermediate (feed-forward up-projection + GELU): Dataflow 2.
        trace.record(OpKind::MatMul, Sublayer::Intermediate, li,
                     1, bl, h, ffn);
        trace.record(OpKind::MulAdd, Sublayer::Intermediate, li,
                     1, bl, 0, ffn, true);
        trace.record(OpKind::Gelu, Sublayer::Intermediate, li,
                     1, bl, 0, ffn);

        // Output (down-projection + residual + LayerNorm): Dataflow 1.
        trace.record(OpKind::MatMul, Sublayer::Output, li, 1, bl, ffn, h);
        trace.record(OpKind::MulAdd, Sublayer::Output, li, 1, bl, 0, h,
                     true);
        trace.record(OpKind::MulAdd, Sublayer::Output, li, 1, bl, 0, h);
        trace.record(OpKind::LayerNorm, Sublayer::Output, li, 1, bl, 0, h);
    }
    return trace;
}

} // namespace prose
