/**
 * @file
 * Text serialization of op traces — the equivalent of dumping the ATen
 * call stream the paper's PyTorch JIT instrumentation produces, so
 * traces can be captured once (e.g. from a slow real-math forward) and
 * replayed into the dataflow builder / performance simulator later or
 * on another machine.
 *
 * Format: one op per line,
 *   kind sublayer layer batch m k n broadcast
 * with '#' comment lines and blank lines ignored.
 */

#ifndef PROSE_TRACE_TRACE_IO_HH
#define PROSE_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "op_trace.hh"

namespace prose {

/** Serialize a trace to a stream. */
void writeTrace(std::ostream &out, const OpTrace &trace);

/** Serialize to a file path (fatal on I/O failure). */
void writeTraceFile(const std::string &path, const OpTrace &trace);

/** Parse a trace from a stream; malformed input is a user error. */
OpTrace readTrace(std::istream &in);

/** Parse a trace file (fatal on I/O failure). */
OpTrace readTraceFile(const std::string &path);

/** Enum parse helpers (fatal on unknown names). */
OpKind opKindFromString(const std::string &name);
Sublayer sublayerFromString(const std::string &name);

} // namespace prose

#endif // PROSE_TRACE_TRACE_IO_HH
