/**
 * @file
 * A recorded sequence of tensor ops plus aggregate queries over it.
 */

#ifndef PROSE_TRACE_OP_TRACE_HH
#define PROSE_TRACE_OP_TRACE_HH

#include <map>
#include <vector>

#include "op.hh"

namespace prose {

/**
 * Append-only op recorder. The instrumented model forward fills one of
 * these; the dataflow builder and the baseline cost models consume it.
 */
class OpTrace
{
  public:
    /** Record one op. */
    void record(const Op &op) { ops_.push_back(op); }

    /** Convenience builder used by the model's instrumentation points. */
    void record(OpKind kind, Sublayer sublayer, int layer,
                std::uint64_t batch, std::uint64_t m, std::uint64_t k,
                std::uint64_t n, bool broadcast = false);

    const std::vector<Op> &ops() const { return ops_; }
    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }
    const Op &at(std::size_t i) const { return ops_.at(i); }

    /** Total floating-point work in the trace. */
    double totalFlops() const;

    /** FLOPs per reporting category (Figure 3 numerators). */
    std::map<OpCategory, double> flopsByCategory() const;

    /** Op count per kind. */
    std::map<OpKind, std::size_t> countByKind() const;

    /** Ops belonging to one encoder layer (layer index match). */
    std::vector<Op> layerOps(int layer) const;

  private:
    std::vector<Op> ops_;
};

} // namespace prose

#endif // PROSE_TRACE_OP_TRACE_HH
