/**
 * @file
 * Dataflow construction (Figure 6/7). Around 90% of Protein BERT ops fall
 * into three operation sequences that ProSE executes as single pipelined
 * dataflows on one systolic array:
 *
 *   Dataflow 1: MatMul -> MulAdd            (M-Type arrays)
 *   Dataflow 2: MatMul -> MulAdd -> GELU    (G-Type arrays)
 *   Dataflow 3: BMM -> MatDiv -> Exp -> host softmax -> BMM (E-Type)
 *
 * Ops that stay on the host (LayerNorm, embedding, transposes) become Host
 * tasks. The builder pattern-matches the deterministic op order the model
 * emits; any unexpected sequence is an internal error, which keeps the
 * builder honest against model changes.
 */

#ifndef PROSE_TRACE_DATAFLOW_HH
#define PROSE_TRACE_DATAFLOW_HH

#include <vector>

#include "op_trace.hh"

namespace prose {

/** Task classes the scheduler dispatches. */
enum class DataflowKind
{
    Dataflow1, ///< MatMul + MulAdd(s)
    Dataflow2, ///< MatMul + MulAdd + GELU
    Dataflow3, ///< BMM + MatDiv + Exp + host softmax + BMM
    Host,      ///< CPU-only op (LayerNorm / Embed / Transpose)
};

const char *toString(DataflowKind kind);

/** One schedulable task: a dataflow instance over concrete shapes. */
struct DataflowTask
{
    DataflowKind kind = DataflowKind::Host;
    Sublayer sublayer = Sublayer::Embedding;
    int layer = -1;

    /** The ops fused into this task, in execution order. */
    std::vector<Op> ops;

    /** Total floating-point work of the fused ops. */
    double flops() const;

    /**
     * Bytes that must stream host->accelerator for this task in bf16,
     * assuming operands are streamed once (no partial-input buffer).
     */
    std::uint64_t streamBytesIn() const;

    /** Bytes of results streaming accelerator->host in bf16. */
    std::uint64_t streamBytesOut() const;

    /** Human-readable one-line summary. */
    std::string describe() const;
};

/**
 * Group a model op trace into dataflow tasks. Tasks appear in program
 * order; data dependencies are the sequential order within one inference
 * thread (Figure 8).
 */
class DataflowBuilder
{
  public:
    /** Parse the trace; panics on an op sequence outside the grammar. */
    std::vector<DataflowTask> build(const OpTrace &trace) const;

    /** Fraction of trace FLOPs covered by Dataflows 1-3 (paper: ~90%). */
    static double acceleratedFraction(const std::vector<DataflowTask> &tasks);
};

/**
 * Shape parameters for synthesizing a Protein BERT op trace without
 * running the math — used by the performance simulator at sizes where a
 * real forward would be needlessly slow. Kept in plain integers so this
 * module does not depend on the model library; BertModel has an equality
 * test that its real instrumented forward produces the same op stream.
 */
struct BertShape
{
    std::uint64_t layers = 12;
    std::uint64_t hidden = 768;
    std::uint64_t heads = 12;
    std::uint64_t intermediate = 3072;
    std::uint64_t batch = 1;
    std::uint64_t seqLen = 512;
};

/** Emit the op sequence of one Protein BERT forward pass, shapes only. */
OpTrace synthesizeBertTrace(const BertShape &shape);

/**
 * Shape parameters of a transformer *decoder* stack — the paper's
 * conclusion points at "adding decoder layers for language translation"
 * as the way ProSE generalizes beyond encoder-only BERT. A decoder
 * layer is: causal self-attention over the target sequence, cross
 * attention against the encoder's source-length memory, then the same
 * feed-forward block. All of it maps onto the existing Dataflows 1/2/3.
 */
struct DecoderShape
{
    std::uint64_t layers = 6;
    std::uint64_t hidden = 768;
    std::uint64_t heads = 12;
    std::uint64_t intermediate = 3072;
    std::uint64_t batch = 1;
    std::uint64_t targetLen = 128; ///< decoder (output) sequence length
    std::uint64_t sourceLen = 512; ///< encoder memory length
};

/**
 * Emit the op sequence of one decoder forward pass (teacher-forced /
 * training-style full-sequence execution, the throughput-relevant
 * regime). Causality masks zeros within the score matrices but does not
 * change their shapes, so the causal self-attention records the same
 * ops as bidirectional attention.
 */
OpTrace synthesizeDecoderTrace(const DecoderShape &shape);

} // namespace prose

#endif // PROSE_TRACE_DATAFLOW_HH
