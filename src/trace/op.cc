#include "op.hh"

#include <sstream>

namespace prose {

double
Op::flops() const
{
    const double b = static_cast<double>(batch);
    const double dm = static_cast<double>(m);
    const double dk = static_cast<double>(k);
    const double dn = static_cast<double>(n);
    switch (kind) {
      case OpKind::MatMul:
      case OpKind::Bmm:
        return b * 2.0 * dm * dk * dn;
      case OpKind::MulAdd:
        // Two multiplies and one add per element.
        return b * 3.0 * dm * dn;
      case OpKind::MatDiv:
        return b * dm * dn;
      case OpKind::Exp:
      case OpKind::Gelu:
        // Count the activation as one "op" per element; the hardware
        // cost is carried by the LUT model, not this figure.
        return b * dm * dn;
      case OpKind::SoftmaxHost:
        // Row sum (n-1 adds) + n divides per row ~ 2 flops/element.
        return b * 2.0 * dm * dn;
      case OpKind::LayerNorm:
        // mean + variance + normalize + affine ~ 5 flops/element.
        return b * 5.0 * dm * dn;
      case OpKind::Embed:
      case OpKind::Transpose:
        return 0.0;
    }
    return 0.0;
}

std::uint64_t
Op::bytesIn(std::uint64_t elem_bytes) const
{
    switch (kind) {
      case OpKind::MatMul:
      case OpKind::Bmm:
        return batch * (m * k + k * n) * elem_bytes;
      case OpKind::MulAdd:
        return batch * 2 * m * n * elem_bytes;
      case OpKind::MatDiv:
      case OpKind::Exp:
      case OpKind::Gelu:
      case OpKind::SoftmaxHost:
      case OpKind::LayerNorm:
      case OpKind::Transpose:
        return batch * m * n * elem_bytes;
      case OpKind::Embed:
        // One embedding row gathered per token.
        return batch * m * n * elem_bytes;
    }
    return 0;
}

std::uint64_t
Op::bytesOut(std::uint64_t elem_bytes) const
{
    return outputElems() * elem_bytes;
}

std::uint64_t
Op::outputElems() const
{
    return batch * m * n;
}

OpCategory
Op::category() const
{
    switch (kind) {
      case OpKind::MatMul:
        return OpCategory::MatMul;
      case OpKind::Bmm:
        return OpCategory::BatchedMatMul;
      case OpKind::Exp:
      case OpKind::SoftmaxHost:
        return OpCategory::Softmax;
      case OpKind::Gelu:
        return OpCategory::Gelu;
      case OpKind::MulAdd:
        return OpCategory::MatAdd;
      case OpKind::MatDiv:
        return OpCategory::MatDiv;
      case OpKind::LayerNorm:
      case OpKind::Embed:
      case OpKind::Transpose:
        return OpCategory::Other;
    }
    return OpCategory::Other;
}

std::string
Op::describe() const
{
    std::ostringstream os;
    os << toString(kind) << "[" << toString(sublayer);
    if (layer >= 0)
        os << " L" << layer;
    os << "]";
    if (kind == OpKind::MatMul || kind == OpKind::Bmm) {
        if (batch > 1)
            os << " b=" << batch;
        os << " " << m << "x" << k << "x" << n;
    } else {
        if (batch > 1)
            os << " b=" << batch;
        os << " " << m << "x" << n;
    }
    return os.str();
}

const char *
toString(OpKind kind)
{
    switch (kind) {
      case OpKind::MatMul:
        return "MatMul";
      case OpKind::Bmm:
        return "BMM";
      case OpKind::MulAdd:
        return "MulAdd";
      case OpKind::MatDiv:
        return "MatDiv";
      case OpKind::Exp:
        return "Exp";
      case OpKind::SoftmaxHost:
        return "SoftmaxHost";
      case OpKind::Gelu:
        return "GELU";
      case OpKind::LayerNorm:
        return "LayerNorm";
      case OpKind::Embed:
        return "Embed";
      case OpKind::Transpose:
        return "Transpose";
    }
    return "?";
}

const char *
toString(Sublayer sublayer)
{
    switch (sublayer) {
      case Sublayer::Embedding:
        return "Embedding";
      case Sublayer::Attention:
        return "Attention";
      case Sublayer::Intermediate:
        return "Intermediate";
      case Sublayer::Output:
        return "Output";
      case Sublayer::Downstream:
        return "Downstream";
    }
    return "?";
}

const char *
toString(OpCategory category)
{
    switch (category) {
      case OpCategory::MatMul:
        return "Matrix Multiply";
      case OpCategory::BatchedMatMul:
        return "Batched Mat Mul";
      case OpCategory::Softmax:
        return "Softmax";
      case OpCategory::Gelu:
        return "GELU";
      case OpCategory::MatAdd:
        return "Matrix Add";
      case OpCategory::MatDiv:
        return "Matrix Div";
      case OpCategory::Other:
        return "Other";
    }
    return "?";
}

} // namespace prose
