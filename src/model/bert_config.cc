#include "bert_config.hh"

#include "common/logging.hh"

namespace prose {

BertConfig
BertConfig::proteinBertBase()
{
    return BertConfig{};
}

BertConfig
BertConfig::tiny()
{
    BertConfig config;
    config.hidden = 64;
    config.layers = 2;
    config.heads = 4;
    config.intermediate = 256;
    config.maxSeqLen = 256;
    return config;
}

BertShape
BertConfig::shape(std::uint64_t batch, std::uint64_t seq_len) const
{
    PROSE_ASSERT(seq_len <= maxSeqLen, "sequence longer than maxSeqLen");
    BertShape shape;
    shape.layers = layers;
    shape.hidden = hidden;
    shape.heads = heads;
    shape.intermediate = intermediate;
    shape.batch = batch;
    shape.seqLen = seq_len;
    return shape;
}

void
BertConfig::validate() const
{
    PROSE_ASSERT(hidden > 0 && layers > 0 && heads > 0 && intermediate > 0,
                 "BertConfig has a zero dimension");
    PROSE_ASSERT(hidden % heads == 0, "heads must divide hidden");
    PROSE_ASSERT(vocabSize > 5, "vocab must cover specials + alphabet");
}

} // namespace prose
