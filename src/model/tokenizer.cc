#include "tokenizer.hh"

#include <cctype>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace prose {

namespace {

/** 20 canonical amino acids then the extended/ambiguity codes. */
const char *kResidues = "ACDEFGHIKLMNPQRSTVWYBJOUXZ";

/** Number of special tokens preceding the alphabet. */
constexpr std::uint32_t kNumSpecials = 5;

} // namespace

AminoTokenizer::AminoTokenizer()
{
    setAlphabet(kResidues);
}

void
AminoTokenizer::setAlphabet(const std::string &alphabet)
{
    alphabet_ = alphabet;
    for (auto &entry : charToId_)
        entry = -1;
    for (std::size_t i = 0; i < alphabet_.size(); ++i) {
        const auto id = static_cast<std::int32_t>(kNumSpecials + i);
        charToId_[static_cast<unsigned char>(alphabet_[i])] = id;
        charToId_[static_cast<unsigned char>(
            std::tolower(alphabet_[i]))] = id;
    }
}

AminoTokenizer
AminoTokenizer::fromVocabText(const std::string &text)
{
    static const char *kSpecialNames[kNumSpecials] = {
        "[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]",
    };
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    std::size_t specials_seen = 0;
    std::string alphabet;
    bool seen[256] = {};
    while (std::getline(in, line)) {
        ++line_no;
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        if (specials_seen < kNumSpecials) {
            if (line != kSpecialNames[specials_seen])
                fatal("vocab line ", line_no, ": expected special "
                      "token ", kSpecialNames[specials_seen], ", got '",
                      line, "'");
            ++specials_seen;
            continue;
        }
        if (line.size() != 1 ||
            !std::isalpha(static_cast<unsigned char>(line[0])))
            fatal("vocab line ", line_no, ": residue entries are "
                  "single letters, got '", line, "'");
        const char residue = static_cast<char>(
            std::toupper(static_cast<unsigned char>(line[0])));
        if (seen[static_cast<unsigned char>(residue)])
            fatal("vocab line ", line_no, ": duplicate residue '",
                  std::string(1, residue), "'");
        seen[static_cast<unsigned char>(residue)] = true;
        alphabet.push_back(residue);
    }
    if (specials_seen < kNumSpecials)
        fatal("vocab text ends before the five special tokens");
    if (alphabet.empty())
        fatal("vocab text has no residue entries");
    AminoTokenizer tokenizer;
    tokenizer.setAlphabet(alphabet);
    return tokenizer;
}

std::string
AminoTokenizer::vocabText() const
{
    std::string out = "[PAD]\n[UNK]\n[CLS]\n[SEP]\n[MASK]\n";
    for (char residue : alphabet_) {
        out.push_back(residue);
        out.push_back('\n');
    }
    return out;
}

std::uint32_t
AminoTokenizer::vocabSize() const
{
    return kNumSpecials + static_cast<std::uint32_t>(alphabet_.size());
}

std::uint32_t
AminoTokenizer::residueId(char residue) const
{
    const std::int32_t id = charToId_[static_cast<unsigned char>(residue)];
    return id < 0 ? kUnkToken : static_cast<std::uint32_t>(id);
}

bool
AminoTokenizer::isResidue(char residue) const
{
    return charToId_[static_cast<unsigned char>(residue)] >= 0;
}

std::vector<std::uint32_t>
AminoTokenizer::encode(const std::string &sequence,
                       std::size_t target_len) const
{
    std::vector<std::uint32_t> tokens;
    tokens.reserve(sequence.size() + 2);
    tokens.push_back(kClsToken);
    for (char residue : sequence)
        tokens.push_back(residueId(residue));
    tokens.push_back(kSepToken);

    if (target_len == 0)
        return tokens;

    PROSE_ASSERT(target_len >= 2, "target_len must fit [CLS] and [SEP]");
    if (tokens.size() > target_len) {
        // Truncate residues but keep the trailing [SEP].
        tokens.resize(target_len);
        tokens.back() = kSepToken;
    } else {
        tokens.resize(target_len, kPadToken);
    }
    return tokens;
}

std::string
AminoTokenizer::decode(const std::vector<std::uint32_t> &tokens) const
{
    std::string out;
    out.reserve(tokens.size());
    for (std::uint32_t id : tokens) {
        if (id < kNumSpecials) {
            out.push_back('.');
        } else {
            const std::size_t idx = id - kNumSpecials;
            out.push_back(idx < alphabet_.size() ? alphabet_[idx] : 'X');
        }
    }
    return out;
}

} // namespace prose
