#include "downstream.hh"

#include <cmath>

#include "common/logging.hh"
#include "numerics/activations.hh"

namespace prose {

void
RegressionHead::fit(const Matrix &features,
                    const std::vector<double> &targets, double lambda)
{
    model_ = ridgeFit(features, targets, lambda);
    fitted_ = true;
}

std::vector<double>
RegressionHead::predict(const Matrix &features) const
{
    PROSE_ASSERT(fitted_, "RegressionHead used before fit()");
    return model_.predictRows(features);
}

const RidgeModel &
RegressionHead::model() const
{
    PROSE_ASSERT(fitted_, "RegressionHead used before fit()");
    return model_;
}

void
LogisticHead::fit(const Matrix &features, const std::vector<int> &labels,
                  FitOptions options)
{
    const std::size_t n = features.rows();
    const std::size_t d = features.cols();
    PROSE_ASSERT(labels.size() == n, "label arity mismatch");
    PROSE_ASSERT(n >= 2 && d >= 1, "logistic fit needs data");
    for (int label : labels)
        PROSE_ASSERT(label == 0 || label == 1, "labels must be 0/1");

    // Standardization moments.
    mean_.assign(d, 0.0);
    stddev_.assign(d, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < d; ++j)
            mean_[j] += features(i, j);
    for (double &m : mean_)
        m /= static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < d; ++j) {
            const double delta = features(i, j) - mean_[j];
            stddev_[j] += delta * delta;
        }
    for (double &sd : stddev_) {
        sd = std::sqrt(sd / static_cast<double>(n));
        if (sd < 1e-12)
            sd = 1.0; // constant feature: leave centered at zero
    }

    weights_.assign(d, 0.0);
    bias_ = 0.0;
    fitted_ = true; // standardize() is usable from here on

    std::vector<double> grad(d, 0.0);
    for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
        std::fill(grad.begin(), grad.end(), 0.0);
        double grad_bias = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::vector<double> x = standardize(features, i);
            double z = bias_;
            for (std::size_t j = 0; j < d; ++j)
                z += weights_[j] * x[j];
            const double p = sigmoid(static_cast<float>(z));
            const double err = p - labels[i];
            for (std::size_t j = 0; j < d; ++j)
                grad[j] += err * x[j];
            grad_bias += err;
        }
        const double scale =
            options.learningRate / static_cast<double>(n);
        for (std::size_t j = 0; j < d; ++j) {
            weights_[j] -=
                scale * (grad[j] +
                         options.l2 * weights_[j] *
                             static_cast<double>(n));
        }
        bias_ -= scale * grad_bias;
    }
}

std::vector<double>
LogisticHead::standardize(const Matrix &features, std::size_t row) const
{
    std::vector<double> x(features.cols());
    for (std::size_t j = 0; j < features.cols(); ++j)
        x[j] = (features(row, j) - mean_[j]) / stddev_[j];
    return x;
}

std::vector<double>
LogisticHead::predictProbability(const Matrix &features) const
{
    PROSE_ASSERT(fitted_, "LogisticHead used before fit()");
    PROSE_ASSERT(features.cols() == weights_.size(),
                 "feature arity mismatch");
    std::vector<double> out;
    out.reserve(features.rows());
    for (std::size_t i = 0; i < features.rows(); ++i) {
        const std::vector<double> x = standardize(features, i);
        double z = bias_;
        for (std::size_t j = 0; j < x.size(); ++j)
            z += weights_[j] * x[j];
        out.push_back(sigmoid(static_cast<float>(z)));
    }
    return out;
}

std::vector<int>
LogisticHead::predict(const Matrix &features) const
{
    std::vector<int> labels;
    for (double p : predictProbability(features))
        labels.push_back(p >= 0.5 ? 1 : 0);
    return labels;
}

double
LogisticHead::accuracy(const Matrix &features,
                       const std::vector<int> &labels) const
{
    PROSE_ASSERT(labels.size() == features.rows(),
                 "label arity mismatch");
    const std::vector<int> predicted = predict(features);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < labels.size(); ++i)
        hits += predicted[i] == labels[i];
    return static_cast<double>(hits) /
           static_cast<double>(labels.size());
}

} // namespace prose
