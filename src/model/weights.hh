/**
 * @file
 * Parameter containers for the BERT encoder, plus deterministic
 * initialization. Real TAPE/ESM checkpoints are unavailable offline; the
 * accelerator-side evaluation only depends on shapes and op mix, and the
 * downstream-task experiment uses these randomly-initialized encoders as
 * fixed feature extractors (the "frozen random features" regime).
 */

#ifndef PROSE_MODEL_WEIGHTS_HH
#define PROSE_MODEL_WEIGHTS_HH

#include <vector>

#include "bert_config.hh"
#include "numerics/matrix.hh"

namespace prose {

/** Parameters of one encoder layer. */
struct LayerWeights
{
    Matrix wq, wk, wv; ///< H x H projection matrices
    std::vector<float> bq, bk, bv;
    Matrix wo; ///< H x H attention output projection
    std::vector<float> bo;
    std::vector<float> lnAttnGamma, lnAttnBeta;
    Matrix w1; ///< H x intermediate
    std::vector<float> b1;
    Matrix w2; ///< intermediate x H
    std::vector<float> b2;
    std::vector<float> lnOutGamma, lnOutBeta;
};

/** Full encoder parameters. */
struct BertWeights
{
    Matrix tokenEmbedding;    ///< vocab x H
    Matrix positionEmbedding; ///< maxSeqLen x H
    std::vector<float> lnEmbGamma, lnEmbBeta;
    std::vector<LayerWeights> layers;

    /** Pooler (CLS head): H x H with tanh, standard BERT. */
    Matrix poolerW;
    std::vector<float> poolerB;

    /** Total parameter count. */
    std::size_t parameterCount() const;

    /** Allocate and deterministically initialize all parameters. */
    static BertWeights initialize(const BertConfig &config,
                                  std::uint64_t seed);
};

} // namespace prose

#endif // PROSE_MODEL_WEIGHTS_HH
