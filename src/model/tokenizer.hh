/**
 * @file
 * Amino-acid tokenizer. A protein is a string over the amino-acid
 * alphabet; each residue is one token (Figure 2(b)). The vocabulary holds
 * five special tokens followed by the 20 canonical amino acids and the 6
 * extended/ambiguity codes (B J O U X Z).
 */

#ifndef PROSE_MODEL_TOKENIZER_HH
#define PROSE_MODEL_TOKENIZER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace prose {

/** Token ids for the special vocabulary entries. */
enum SpecialToken : std::uint32_t
{
    kPadToken = 0,
    kUnkToken = 1,
    kClsToken = 2,
    kSepToken = 3,
    kMaskToken = 4,
};

/** Character-level tokenizer over the amino-acid alphabet. */
class AminoTokenizer
{
  public:
    AminoTokenizer();

    /**
     * Build a tokenizer from vocabulary text: one token per line, the
     * five specials "[PAD] [UNK] [CLS] [SEP] [MASK]" in exactly that
     * order, then one residue letter per line (id order). Blank lines
     * and '#' comments are skipped; residues are upcased. Fatal on
     * out-of-order specials, multi-character or non-letter residues,
     * duplicates, or an empty alphabet.
     */
    static AminoTokenizer fromVocabText(const std::string &text);

    /** Canonical vocab text; fromVocabText(vocabText()) round-trips. */
    std::string vocabText() const;

    /** Total vocabulary size (specials + alphabet). */
    std::uint32_t vocabSize() const;

    /**
     * Encode a protein sequence: [CLS] residues... [SEP], padded with
     * [PAD] (or truncated, keeping the trailing [SEP]) to `target_len`.
     * Unknown characters map to [UNK]. target_len == 0 means no padding.
     */
    std::vector<std::uint32_t> encode(const std::string &sequence,
                                      std::size_t target_len = 0) const;

    /** Decode ids back to characters; specials render as '.', unknown
     *  as 'X'. */
    std::string decode(const std::vector<std::uint32_t> &tokens) const;

    /** Token id of one residue character, or kUnkToken. */
    std::uint32_t residueId(char residue) const;

    /** True if the character is a known residue code. */
    bool isResidue(char residue) const;

    /** The residue alphabet in id order. */
    const std::string &alphabet() const { return alphabet_; }

  private:
    /** Install a residue alphabet and rebuild the char→id table. */
    void setAlphabet(const std::string &alphabet);

    std::string alphabet_;
    std::int32_t charToId_[256];
};

} // namespace prose

#endif // PROSE_MODEL_TOKENIZER_HH
