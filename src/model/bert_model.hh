/**
 * @file
 * The Protein BERT encoder: a from-scratch BERT-base-style transformer
 * executing real math, with three numerics modes and optional op tracing.
 *
 * Modes:
 *  - Fp32: reference fp32 forward (the "GPU" numerics).
 *  - Bf16: operands quantized to bfloat16, products accumulated in fp32 —
 *    the ProSE MAC datapath.
 *  - Bf16Lut: Bf16 plus GELU/Exp evaluated through the two-level lookup
 *    tables of the special-function units, i.e. the full accelerator
 *    numerics. The paper notes model accuracy is sensitive to GELU /
 *    softmax precision; tests compare these modes.
 *
 * When a trace is supplied, the forward records exactly the op stream
 * synthesizeBertTrace() predicts (a unit test enforces equality), which is
 * how the performance simulator can run from synthetic traces at sizes
 * where real math would be wastefully slow.
 */

#ifndef PROSE_MODEL_BERT_MODEL_HH
#define PROSE_MODEL_BERT_MODEL_HH

#include <cstdint>
#include <vector>

#include "bert_config.hh"
#include "numerics/lut.hh"
#include "numerics/matrix.hh"
#include "trace/op_trace.hh"
#include "weights.hh"

namespace prose {

/** Numeric fidelity of a forward pass. */
enum class NumericsMode
{
    Fp32,
    Bf16,
    Bf16Lut,
};

/** A BERT encoder with concrete weights. */
class BertModel
{
  public:
    /** Build with deterministic random init. */
    BertModel(const BertConfig &config, std::uint64_t seed);

    /** Build around externally-prepared weights. */
    BertModel(const BertConfig &config, BertWeights weights);

    /** Result of a forward pass. */
    struct Output
    {
        /** Final hidden states, (batch * seq_len) x hidden, row-major by
         *  sequence then position. */
        Matrix hidden;
        /** Pooled [CLS] representation after the tanh pooler,
         *  batch x hidden. */
        Matrix pooled;
    };

    /**
     * Run the encoder over a batch of equal-length token sequences.
     *
     * @param tokens batch of sequences; all must share one length
     * @param mode numeric fidelity (see NumericsMode)
     * @param trace if non-null, receives the op stream
     */
    Output forward(const std::vector<std::vector<std::uint32_t>> &tokens,
                   NumericsMode mode = NumericsMode::Fp32,
                   OpTrace *trace = nullptr) const;

    /**
     * Run a single encoder layer over flattened hidden states — the
     * layer-wise execution mode used to validate the accelerator's
     * functional simulator against the model, and by pipelined
     * deployments that interleave layers with other work.
     *
     * @param x (batch * seq_len) x hidden input activations
     * @param layer encoder layer index
     */
    Matrix runEncoderLayer(const Matrix &x, std::size_t layer,
                           std::uint64_t batch, std::uint64_t seq_len,
                           NumericsMode mode = NumericsMode::Fp32,
                           OpTrace *trace = nullptr) const;

    /**
     * Mean-pooled final hidden state per sequence (the TAPE-style feature
     * vector used by the Section 2.2 downstream regression). PAD
     * positions are excluded from the mean.
     */
    Matrix extractFeatures(
        const std::vector<std::vector<std::uint32_t>> &tokens,
        NumericsMode mode = NumericsMode::Fp32) const;

    /**
     * Replace the special-function lookup tables used by Bf16Lut mode —
     * the knob behind the Figures 13/14 window-size ablation ("we have
     * validated that these truncation policies do not affect the
     * accuracy of the models we study").
     */
    void setSpecialFunctionLuts(TwoLevelLut gelu, TwoLevelLut exp);

    /**
     * Replace all encoder weights (the checkpoint-reload path, mirroring
     * setSpecialFunctionLuts). Rebuilds the cached bf16-quantized weight
     * operands the Bf16/Bf16Lut matmuls consume, so stale quantized
     * weights can never survive a reload.
     */
    void setWeights(BertWeights weights);

    const BertConfig &config() const { return config_; }
    const BertWeights &weights() const { return weights_; }

    /**
     * Version of the bf16 weight cache; bumps on every weight (re)load.
     * Exposed so tests can assert the cache is invalidated.
     */
    std::uint64_t weightCacheVersion() const;

  private:
    /** Embedding lookup + position add + LayerNorm. */
    Matrix embed(const std::vector<std::vector<std::uint32_t>> &tokens,
                 NumericsMode mode, OpTrace *trace) const;

    /**
     * One encoder layer over flattened hidden states.
     * @param pad_mask per-token PAD flags (batch * seq_len), or nullptr
     *        when nothing is padded
     */
    Matrix encoderLayer(const Matrix &x, const LayerWeights &lw,
                        int layer, std::uint64_t batch,
                        std::uint64_t seq_len, NumericsMode mode,
                        OpTrace *trace,
                        const std::vector<std::uint8_t> *pad_mask) const;

    /** MatMul respecting the numerics mode. */
    Matrix modalMatmul(const Matrix &a, const Matrix &b,
                       NumericsMode mode) const;

    /**
     * MatMul against a constant weight operand: fp32 uses `w`, the bf16
     * modes use the cached pre-quantized copy `wq` (quantized once per
     * weight load instead of once per call).
     */
    Matrix modalMatmul(const Matrix &a, const Matrix &w,
                       const QuantizedOperand &wq,
                       NumericsMode mode) const;

    /** Elementwise quantization when the mode is a bf16 mode. */
    void modalQuantize(Matrix &m, NumericsMode mode) const;

    /** bf16-quantized copies of one layer's weight matrices. */
    struct QuantizedLayerWeights
    {
        QuantizedOperand wq, wk, wv, wo, w1, w2;
    };

    /** Re-quantize every weight matrix into the bf16 cache. */
    void rebuildWeightCache();

    BertConfig config_;
    BertWeights weights_;
    TwoLevelLut geluLut_;
    TwoLevelLut expLut_;
    /**
     * Flat 65536-entry gather tables of the two LUTs (bf16 bit pattern
     * -> fp32 bit pattern), rebuilt whenever the LUTs change. The
     * Bf16Lut GELU/Exp sweeps run through kernels::lutRow against
     * these; flattenToFloatBits makes a flat read bit-exact with the
     * two-level read by construction, so the vectorized sweeps match
     * the scalar lookupFloat path on every SIMD tier.
     */
    std::vector<std::uint32_t> geluFlatBits_;
    std::vector<std::uint32_t> expFlatBits_;
    std::vector<QuantizedLayerWeights> bf16Weights_;
    QuantizedOperand poolerWBf16_;
};

} // namespace prose

#endif // PROSE_MODEL_BERT_MODEL_HH
