/**
 * @file
 * Protein BERT model hyperparameters. The paper's models are structurally
 * identical to BERT-base (12 layers, hidden 768, 12 heads, intermediate
 * 3072) — only the pre-trained weights and input domain differ.
 */

#ifndef PROSE_MODEL_BERT_CONFIG_HH
#define PROSE_MODEL_BERT_CONFIG_HH

#include <cstdint>

#include "trace/dataflow.hh"

namespace prose {

/** Hyperparameters of one BERT-style encoder. */
struct BertConfig
{
    std::uint64_t vocabSize = 31;      ///< amino-acid alphabet + specials
    std::uint64_t hidden = 768;        ///< model width H
    std::uint64_t layers = 12;         ///< encoder layer count
    std::uint64_t heads = 12;          ///< attention heads (H % heads == 0)
    std::uint64_t intermediate = 3072; ///< feed-forward width, 4H
    std::uint64_t maxSeqLen = 2048;    ///< position-embedding capacity
    float layerNormEps = 1e-12f;       ///< LayerNorm epsilon
    float initStddev = 0.02f;          ///< weight-init standard deviation

    /** Per-head dimension (64 for BERT-base). */
    std::uint64_t headDim() const { return hidden / heads; }

    /** The paper's Protein BERT (BERT-base shape). */
    static BertConfig proteinBertBase();

    /**
     * A laptop-friendly shrunken config with the same structure, for
     * functional tests and examples that execute the real math.
     */
    static BertConfig tiny();

    /** Shape view used by the trace synthesizer / perf simulator. */
    BertShape shape(std::uint64_t batch, std::uint64_t seq_len) const;

    /** Sanity-check invariants (heads divide hidden, non-zero dims). */
    void validate() const;
};

} // namespace prose

#endif // PROSE_MODEL_BERT_CONFIG_HH
