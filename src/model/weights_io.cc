#include "weights_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace prose {

namespace {

constexpr char kMagic[4] = { 'P', 'R', 'S', 'W' };
constexpr std::uint32_t kVersion = 1;

void
writeU32(std::ostream &out, std::uint32_t value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

std::uint32_t
readU32(std::istream &in)
{
    std::uint32_t value = 0;
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    if (!in)
        fatal("truncated weights checkpoint");
    return value;
}

void
writeMatrix(std::ostream &out, const Matrix &m)
{
    out.write(reinterpret_cast<const char *>(m.data()),
              static_cast<std::streamsize>(m.size() * sizeof(float)));
}

void
readMatrix(std::istream &in, Matrix &m)
{
    in.read(reinterpret_cast<char *>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
    if (!in)
        fatal("truncated weights checkpoint (tensor data)");
}

void
writeVector(std::ostream &out, const std::vector<float> &v)
{
    out.write(reinterpret_cast<const char *>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void
readVector(std::istream &in, std::vector<float> &v)
{
    in.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
    if (!in)
        fatal("truncated weights checkpoint (vector data)");
}

/** Visit every tensor in a fixed, versioned order. */
template <typename MatrixFn, typename VectorFn>
void
visitTensors(BertWeights &w, MatrixFn &&on_matrix, VectorFn &&on_vector)
{
    on_matrix(w.tokenEmbedding);
    on_matrix(w.positionEmbedding);
    on_vector(w.lnEmbGamma);
    on_vector(w.lnEmbBeta);
    for (LayerWeights &layer : w.layers) {
        on_matrix(layer.wq);
        on_vector(layer.bq);
        on_matrix(layer.wk);
        on_vector(layer.bk);
        on_matrix(layer.wv);
        on_vector(layer.bv);
        on_matrix(layer.wo);
        on_vector(layer.bo);
        on_vector(layer.lnAttnGamma);
        on_vector(layer.lnAttnBeta);
        on_matrix(layer.w1);
        on_vector(layer.b1);
        on_matrix(layer.w2);
        on_vector(layer.b2);
        on_vector(layer.lnOutGamma);
        on_vector(layer.lnOutBeta);
    }
    on_matrix(w.poolerW);
    on_vector(w.poolerB);
}

} // namespace

void
writeWeights(std::ostream &out, const BertConfig &config,
             const BertWeights &weights)
{
    out.write(kMagic, sizeof(kMagic));
    writeU32(out, kVersion);
    writeU32(out, static_cast<std::uint32_t>(config.vocabSize));
    writeU32(out, static_cast<std::uint32_t>(config.hidden));
    writeU32(out, static_cast<std::uint32_t>(config.layers));
    writeU32(out, static_cast<std::uint32_t>(config.heads));
    writeU32(out, static_cast<std::uint32_t>(config.intermediate));
    writeU32(out, static_cast<std::uint32_t>(config.maxSeqLen));

    // visitTensors mutates in the read direction only; const_cast is
    // confined to this serializer.
    auto &mutable_weights = const_cast<BertWeights &>(weights);
    visitTensors(
        mutable_weights, [&](Matrix &m) { writeMatrix(out, m); },
        [&](std::vector<float> &v) { writeVector(out, v); });
    if (!out)
        fatal("failed writing weights checkpoint");
}

BertWeights
readWeights(std::istream &in, const BertConfig &config)
{
    char magic[4] = {};
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("not a ProSE weights checkpoint");
    const std::uint32_t version = readU32(in);
    if (version != kVersion)
        fatal("unsupported weights checkpoint version ", version);

    auto expect = [&](std::uint64_t want, const char *what) {
        const std::uint32_t got = readU32(in);
        if (got != want)
            fatal("checkpoint ", what, " (", got,
                  ") does not match the config (", want, ")");
    };
    expect(config.vocabSize, "vocab size");
    expect(config.hidden, "hidden size");
    expect(config.layers, "layer count");
    expect(config.heads, "head count");
    expect(config.intermediate, "intermediate size");
    expect(config.maxSeqLen, "max sequence length");

    // Allocate the right shapes, then overwrite with the stream.
    BertWeights weights = BertWeights::initialize(config, 0);
    visitTensors(
        weights, [&](Matrix &m) { readMatrix(in, m); },
        [&](std::vector<float> &v) { readVector(in, v); });
    return weights;
}

BertWeights
readWeightsBuffer(const std::string &bytes, const BertConfig &config)
{
    std::istringstream in(bytes);
    BertWeights weights = readWeights(in, config);
    if (in.peek() != std::char_traits<char>::eof())
        fatal("trailing bytes after weights checkpoint buffer");
    return weights;
}

void
writeWeightsFile(const std::string &path, const BertConfig &config,
                 const BertWeights &weights)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open weights file for writing: ", path);
    writeWeights(out, config, weights);
}

BertWeights
readWeightsFile(const std::string &path, const BertConfig &config)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open weights file: ", path);
    BertWeights weights = readWeights(in, config);
    if (in.peek() != std::char_traits<char>::eof())
        fatal("trailing bytes after weights checkpoint: ", path);
    return weights;
}

} // namespace prose
