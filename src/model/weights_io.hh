/**
 * @file
 * Binary checkpointing for BertWeights. A deployed engine trains or
 * downloads an encoder once and serves it from every tool (screening,
 * scanning, evolution); this format round-trips the full parameter set
 * bit-exactly.
 *
 * Layout: magic "PRSW", u32 version, the config dims, then each tensor
 * as raw little-endian fp32 in a fixed order. Guarded by dimension
 * checks on load — a checkpoint only loads into a matching config.
 */

#ifndef PROSE_MODEL_WEIGHTS_IO_HH
#define PROSE_MODEL_WEIGHTS_IO_HH

#include <iosfwd>
#include <string>

#include "weights.hh"

namespace prose {

/** Serialize weights (with their config dims) to a stream. */
void writeWeights(std::ostream &out, const BertConfig &config,
                  const BertWeights &weights);

/** Serialize to a file path (fatal on I/O failure). */
void writeWeightsFile(const std::string &path, const BertConfig &config,
                      const BertWeights &weights);

/**
 * Load weights for `config` from a stream. Fatal if the stream is not a
 * checkpoint or its dimensions disagree with `config`.
 */
BertWeights readWeights(std::istream &in, const BertConfig &config);

/**
 * Load from an in-memory byte buffer, with the same trailing-junk
 * check the file loader applies. This is the fuzzing/testing entry
 * point: untrusted bytes in, a checkpoint or a fatal() out.
 */
BertWeights readWeightsBuffer(const std::string &bytes,
                              const BertConfig &config);

/** Load from a file path (fatal on I/O failure). */
BertWeights readWeightsFile(const std::string &path,
                            const BertConfig &config);

} // namespace prose

#endif // PROSE_MODEL_WEIGHTS_IO_HH
