#include "weights.hh"

namespace prose {

namespace {

/** Gaussian matrix of the given shape. */
Matrix
gaussianMatrix(Rng &rng, std::size_t rows, std::size_t cols, float stddev)
{
    Matrix m(rows, cols);
    m.fillGaussian(rng, 0.0f, stddev);
    return m;
}

/** Gaussian bias vector. */
std::vector<float>
gaussianVector(Rng &rng, std::size_t n, float stddev)
{
    std::vector<float> v(n);
    for (float &x : v)
        x = static_cast<float>(rng.gaussian(0.0, stddev));
    return v;
}

} // namespace

std::size_t
BertWeights::parameterCount() const
{
    std::size_t total = tokenEmbedding.size() + positionEmbedding.size() +
                        lnEmbGamma.size() + lnEmbBeta.size() +
                        poolerW.size() + poolerB.size();
    for (const auto &layer : layers) {
        total += layer.wq.size() + layer.wk.size() + layer.wv.size() +
                 layer.wo.size() + layer.w1.size() + layer.w2.size();
        total += layer.bq.size() + layer.bk.size() + layer.bv.size() +
                 layer.bo.size() + layer.b1.size() + layer.b2.size();
        total += layer.lnAttnGamma.size() + layer.lnAttnBeta.size() +
                 layer.lnOutGamma.size() + layer.lnOutBeta.size();
    }
    return total;
}

BertWeights
BertWeights::initialize(const BertConfig &config, std::uint64_t seed)
{
    config.validate();
    Rng rng(seed);
    const float sd = config.initStddev;
    const std::size_t h = config.hidden;
    const std::size_t ffn = config.intermediate;

    BertWeights w;
    w.tokenEmbedding = gaussianMatrix(rng, config.vocabSize, h, sd);
    w.positionEmbedding = gaussianMatrix(rng, config.maxSeqLen, h, sd);
    w.lnEmbGamma.assign(h, 1.0f);
    w.lnEmbBeta.assign(h, 0.0f);

    w.layers.resize(config.layers);
    for (auto &layer : w.layers) {
        layer.wq = gaussianMatrix(rng, h, h, sd);
        layer.wk = gaussianMatrix(rng, h, h, sd);
        layer.wv = gaussianMatrix(rng, h, h, sd);
        layer.wo = gaussianMatrix(rng, h, h, sd);
        layer.bq = gaussianVector(rng, h, sd);
        layer.bk = gaussianVector(rng, h, sd);
        layer.bv = gaussianVector(rng, h, sd);
        layer.bo = gaussianVector(rng, h, sd);
        layer.lnAttnGamma.assign(h, 1.0f);
        layer.lnAttnBeta.assign(h, 0.0f);
        layer.w1 = gaussianMatrix(rng, h, ffn, sd);
        layer.b1 = gaussianVector(rng, ffn, sd);
        layer.w2 = gaussianMatrix(rng, ffn, h, sd);
        layer.b2 = gaussianVector(rng, h, sd);
        layer.lnOutGamma.assign(h, 1.0f);
        layer.lnOutBeta.assign(h, 0.0f);
    }

    w.poolerW = gaussianMatrix(rng, h, h, sd);
    w.poolerB = gaussianVector(rng, h, sd);
    return w;
}

} // namespace prose
