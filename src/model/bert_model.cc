#include "bert_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "numerics/activations.hh"
#include "numerics/kernels/kernel_dispatch.hh"
#include "tokenizer.hh"

namespace prose {

namespace {

/**
 * Score written into masked (PAD-key) attention positions. Large
 * enough that exp() is exactly 0 in fp32 and saturates the Exp LUT's
 * above-window negative path to 0 in hardware.
 */
constexpr float kMaskScore = -1e9f;

/** c(i,j) = a(i,j) + bias[j] (row-broadcast bias add). */
Matrix
addBias(const Matrix &a, const std::vector<float> &bias)
{
    PROSE_ASSERT(bias.size() == a.cols(), "bias arity mismatch");
    Matrix c(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            c(i, j) = a(i, j) + bias[j];
    return c;
}

} // namespace

BertModel::BertModel(const BertConfig &config, std::uint64_t seed)
    : BertModel(config, BertWeights::initialize(config, seed))
{
}

BertModel::BertModel(const BertConfig &config, BertWeights weights)
    : config_(config), weights_(std::move(weights)),
      geluLut_(TwoLevelLut::makeGelu()), expLut_(TwoLevelLut::makeExp())
{
    config_.validate();
    PROSE_ASSERT(weights_.layers.size() == config_.layers,
                 "weights/config layer-count mismatch");
    rebuildWeightCache();
    geluFlatBits_ = geluLut_.flattenToFloatBits();
    expFlatBits_ = expLut_.flattenToFloatBits();
}

void
BertModel::setSpecialFunctionLuts(TwoLevelLut gelu, TwoLevelLut exp)
{
    geluLut_ = std::move(gelu);
    expLut_ = std::move(exp);
    geluFlatBits_ = geluLut_.flattenToFloatBits();
    expFlatBits_ = expLut_.flattenToFloatBits();
}

void
BertModel::setWeights(BertWeights weights)
{
    PROSE_ASSERT(weights.layers.size() == config_.layers,
                 "weights/config layer-count mismatch");
    weights_ = std::move(weights);
    rebuildWeightCache();
}

void
BertModel::rebuildWeightCache()
{
    bf16Weights_.resize(weights_.layers.size());
    for (std::size_t l = 0; l < weights_.layers.size(); ++l) {
        const LayerWeights &lw = weights_.layers[l];
        QuantizedLayerWeights &cache = bf16Weights_[l];
        cache.wq.update(lw.wq);
        cache.wk.update(lw.wk);
        cache.wv.update(lw.wv);
        cache.wo.update(lw.wo);
        cache.w1.update(lw.w1);
        cache.w2.update(lw.w2);
    }
    poolerWBf16_.update(weights_.poolerW);
}

std::uint64_t
BertModel::weightCacheVersion() const
{
    return poolerWBf16_.version();
}

Matrix
BertModel::modalMatmul(const Matrix &a, const Matrix &b,
                       NumericsMode mode) const
{
    if (mode == NumericsMode::Fp32)
        return matmul(a, b);
    return matmulBf16(a, b);
}

Matrix
BertModel::modalMatmul(const Matrix &a, const Matrix &w,
                       const QuantizedOperand &wq, NumericsMode mode) const
{
    if (mode == NumericsMode::Fp32)
        return matmul(a, w);
    return matmulBf16(a, wq);
}

void
BertModel::modalQuantize(Matrix &m, NumericsMode mode) const
{
    if (mode != NumericsMode::Fp32)
        m.quantizeBf16InPlace();
}

Matrix
BertModel::embed(const std::vector<std::vector<std::uint32_t>> &tokens,
                 NumericsMode mode, OpTrace *trace) const
{
    const std::uint64_t batch = tokens.size();
    PROSE_ASSERT(batch > 0, "empty batch");
    const std::uint64_t seq_len = tokens[0].size();
    const std::uint64_t h = config_.hidden;
    PROSE_ASSERT(seq_len > 0 && seq_len <= config_.maxSeqLen,
                 "bad sequence length ", seq_len);

    Matrix x(batch * seq_len, h);
    for (std::uint64_t b = 0; b < batch; ++b) {
        PROSE_ASSERT(tokens[b].size() == seq_len,
                     "ragged batch: all sequences must share a length");
        for (std::uint64_t t = 0; t < seq_len; ++t) {
            const std::uint32_t id = tokens[b][t];
            PROSE_ASSERT(id < config_.vocabSize, "token id out of vocab");
            float *row = x.row(b * seq_len + t);
            const float *tok = weights_.tokenEmbedding.row(id);
            const float *pos = weights_.positionEmbedding.row(t);
            for (std::uint64_t j = 0; j < h; ++j)
                row[j] = tok[j] + pos[j];
        }
    }
    if (trace)
        trace->record(OpKind::Embed, Sublayer::Embedding, -1,
                      1, batch * seq_len, 0, h);

    x = layerNorm(x, weights_.lnEmbGamma, weights_.lnEmbBeta,
                  config_.layerNormEps);
    modalQuantize(x, mode);
    if (trace)
        trace->record(OpKind::LayerNorm, Sublayer::Embedding, -1,
                      1, batch * seq_len, 0, h);
    return x;
}

Matrix
BertModel::encoderLayer(const Matrix &x, const LayerWeights &lw, int layer,
                        std::uint64_t batch, std::uint64_t seq_len,
                        NumericsMode mode, OpTrace *trace,
                        const std::vector<std::uint8_t> *pad_mask) const
{
    const std::uint64_t h = config_.hidden;
    const std::uint64_t heads = config_.heads;
    const std::uint64_t dk = config_.headDim();
    const std::uint64_t bl = batch * seq_len;
    const std::uint64_t bh = batch * heads;

    auto record = [&](OpKind kind, Sublayer sub, std::uint64_t bt,
                      std::uint64_t m, std::uint64_t k, std::uint64_t n,
                      bool broadcast = false) {
        if (trace)
            trace->record(kind, sub, layer, bt, m, k, n, broadcast);
    };

    PROSE_ASSERT(layer >= 0 &&
                     static_cast<std::size_t>(layer) < bf16Weights_.size(),
                 "encoder layer index outside the weight cache");
    const QuantizedLayerWeights &qw =
        bf16Weights_[static_cast<std::size_t>(layer)];

    // --- Attention sublayer -------------------------------------------
    // Q/K/V projections: MatMul + bias MulAdd (Dataflow 1) + head split.
    Matrix qkv[3];
    const Matrix *proj_w[3] = { &lw.wq, &lw.wk, &lw.wv };
    const QuantizedOperand *proj_wq[3] = { &qw.wq, &qw.wk, &qw.wv };
    const std::vector<float> *proj_b[3] = { &lw.bq, &lw.bk, &lw.bv };
    for (int p = 0; p < 3; ++p) {
        qkv[p] = modalMatmul(x, *proj_w[p], *proj_wq[p], mode);
        record(OpKind::MatMul, Sublayer::Attention, 1, bl, h, h);
        qkv[p] = addBias(qkv[p], *proj_b[p]);
        modalQuantize(qkv[p], mode);
        record(OpKind::MulAdd, Sublayer::Attention, 1, bl, 0, h, true);
        record(OpKind::Transpose, Sublayer::Attention, 1, bl, 0, h);
    }

    // Attention scores / probabilities / context (Dataflow 3).
    record(OpKind::Bmm, Sublayer::Attention, bh, seq_len, dk, seq_len);
    record(OpKind::MatDiv, Sublayer::Attention, bh, seq_len, 0, seq_len);
    record(OpKind::Exp, Sublayer::Attention, bh, seq_len, 0, seq_len);
    record(OpKind::SoftmaxHost, Sublayer::Attention, bh, seq_len, 0,
           seq_len);
    record(OpKind::Bmm, Sublayer::Attention, bh, seq_len, seq_len, dk);

    const float inv_sqrt_dk = 1.0f / std::sqrt(static_cast<float>(dk));
    Matrix context(bl, h);
    // The (batch, head) pairs are independent and write disjoint column
    // bands of `context`, so they fan out across the shared pool; each
    // pair's math is untouched, keeping results bit-identical to the
    // serial sweep.
    ThreadPool::global().parallelFor(
        batch * heads, [&](std::size_t p0, std::size_t p1) {
        for (std::size_t pair = p0; pair < p1; ++pair) {
            const std::uint64_t b = pair / heads;
            const std::uint64_t hd = pair % heads;
            // Slice this (batch, head) Q/K/V: seq_len x dk.
            Matrix qh(seq_len, dk), kh(seq_len, dk), vh(seq_len, dk);
            for (std::uint64_t t = 0; t < seq_len; ++t) {
                const std::size_t row = b * seq_len + t;
                for (std::uint64_t j = 0; j < dk; ++j) {
                    qh(t, j) = qkv[0](row, hd * dk + j);
                    kh(t, j) = qkv[1](row, hd * dk + j);
                    vh(t, j) = qkv[2](row, hd * dk + j);
                }
            }
            Matrix scores = modalMatmul(qh, transpose(kh), mode);
            scores = scale(scores, inv_sqrt_dk);
            modalQuantize(scores, mode);

            // Padding mask: PAD keys receive a score so negative that
            // the exponential flushes to exactly zero — on the
            // accelerator this is the Exp LUT's above-window saturate
            // path (Figure 14), so masking costs no extra hardware.
            if (pad_mask) {
                for (std::uint64_t j = 0; j < seq_len; ++j) {
                    if (!(*pad_mask)[b * seq_len + j])
                        continue;
                    for (std::uint64_t i = 0; i < seq_len; ++i)
                        scores(i, j) = kMaskScore;
                }
            }

            Matrix probs(seq_len, seq_len);
            if (mode == NumericsMode::Fp32) {
                probs = rowSoftmax(scores);
            } else {
                // Accelerator path: Exp on-array (optionally via LUT),
                // row sum + divide on the host CPU in fp32. The LUT
                // sweep and the divide epilogue run through the SIMD
                // kernel layer; both kernels are bit-exact with the
                // scalar forms on every tier.
                const auto &kernels = kernels::activeKernels();
                for (std::uint64_t i = 0; i < seq_len; ++i) {
                    float *prow = probs.row(i);
                    if (mode == NumericsMode::Bf16Lut) {
                        std::copy(scores.row(i), scores.row(i) + seq_len,
                                  prow);
                        kernels.lutRow(prow, expFlatBits_.data(),
                                       seq_len);
                    } else {
                        for (std::uint64_t j = 0; j < seq_len; ++j)
                            prow[j] =
                                quantizeBf16(std::exp(scores(i, j)));
                    }
                    double denom = 0.0;
                    for (std::uint64_t j = 0; j < seq_len; ++j)
                        denom += prow[j];
                    const float inv = static_cast<float>(1.0 / denom);
                    kernels.scaleQuantizeRow(prow, inv, seq_len);
                }
            }

            Matrix ctx = modalMatmul(probs, vh, mode);
            for (std::uint64_t t = 0; t < seq_len; ++t)
                for (std::uint64_t j = 0; j < dk; ++j)
                    context(b * seq_len + t, hd * dk + j) = ctx(t, j);
        }
    });
    record(OpKind::Transpose, Sublayer::Attention, 1, bl, 0, h);

    // Attention output projection + residual (Dataflow 1) + LayerNorm.
    Matrix attn_out = modalMatmul(context, lw.wo, qw.wo, mode);
    record(OpKind::MatMul, Sublayer::Attention, 1, bl, h, h);
    attn_out = addBias(attn_out, lw.bo);
    record(OpKind::MulAdd, Sublayer::Attention, 1, bl, 0, h, true);
    attn_out = add(attn_out, x);
    modalQuantize(attn_out, mode);
    record(OpKind::MulAdd, Sublayer::Attention, 1, bl, 0, h);
    Matrix normed = layerNorm(attn_out, lw.lnAttnGamma, lw.lnAttnBeta,
                              config_.layerNormEps);
    modalQuantize(normed, mode);
    record(OpKind::LayerNorm, Sublayer::Attention, 1, bl, 0, h);

    // --- Intermediate sublayer (Dataflow 2) ----------------------------
    Matrix inter = modalMatmul(normed, lw.w1, qw.w1, mode);
    record(OpKind::MatMul, Sublayer::Intermediate, 1, bl, h,
           config_.intermediate);
    inter = addBias(inter, lw.b1);
    modalQuantize(inter, mode);
    record(OpKind::MulAdd, Sublayer::Intermediate, 1, bl, 0,
           config_.intermediate, true);
    if (mode == NumericsMode::Bf16Lut) {
        // GELU LUT sweep through the SIMD gather kernel (bit-exact
        // with the scalar two-level lookup on every tier).
        for (std::size_t i = 0; i < inter.rows(); ++i)
            kernels::activeKernels().lutRow(
                inter.row(i), geluFlatBits_.data(), inter.cols());
    } else {
        for (std::size_t i = 0; i < inter.rows(); ++i) {
            for (std::size_t j = 0; j < inter.cols(); ++j) {
                if (mode == NumericsMode::Bf16)
                    inter(i, j) = quantizeBf16(geluTanh(inter(i, j)));
                else
                    inter(i, j) = geluTanh(inter(i, j));
            }
        }
    }
    record(OpKind::Gelu, Sublayer::Intermediate, 1, bl, 0,
           config_.intermediate);

    // --- Output sublayer (Dataflow 1) -----------------------------------
    Matrix out = modalMatmul(inter, lw.w2, qw.w2, mode);
    record(OpKind::MatMul, Sublayer::Output, 1, bl, config_.intermediate,
           h);
    out = addBias(out, lw.b2);
    record(OpKind::MulAdd, Sublayer::Output, 1, bl, 0, h, true);
    out = add(out, normed);
    modalQuantize(out, mode);
    record(OpKind::MulAdd, Sublayer::Output, 1, bl, 0, h);
    Matrix result = layerNorm(out, lw.lnOutGamma, lw.lnOutBeta,
                              config_.layerNormEps);
    modalQuantize(result, mode);
    record(OpKind::LayerNorm, Sublayer::Output, 1, bl, 0, h);
    return result;
}

Matrix
BertModel::runEncoderLayer(const Matrix &x, std::size_t layer,
                           std::uint64_t batch, std::uint64_t seq_len,
                           NumericsMode mode, OpTrace *trace) const
{
    PROSE_ASSERT(layer < config_.layers, "layer index out of range");
    PROSE_ASSERT(x.rows() == batch * seq_len &&
                     x.cols() == config_.hidden,
                 "activation shape mismatch");
    return encoderLayer(x, weights_.layers[layer],
                        static_cast<int>(layer), batch, seq_len, mode,
                        trace, nullptr);
}

BertModel::Output
BertModel::forward(const std::vector<std::vector<std::uint32_t>> &tokens,
                   NumericsMode mode, OpTrace *trace) const
{
    const std::uint64_t batch = tokens.size();
    PROSE_ASSERT(batch > 0, "forward over an empty batch");
    const std::uint64_t seq_len = tokens[0].size();

    // PAD positions must not receive attention from real tokens.
    std::vector<std::uint8_t> pad_mask(batch * seq_len, 0);
    bool any_pad = false;
    for (std::uint64_t b = 0; b < batch; ++b) {
        for (std::uint64_t t = 0; t < seq_len; ++t) {
            if (tokens[b][t] == kPadToken) {
                pad_mask[b * seq_len + t] = 1;
                any_pad = true;
            }
        }
    }

    Matrix x = embed(tokens, mode, trace);
    for (std::uint64_t layer = 0; layer < config_.layers; ++layer) {
        x = encoderLayer(x, weights_.layers[layer],
                         static_cast<int>(layer), batch, seq_len, mode,
                         trace, any_pad ? &pad_mask : nullptr);
    }

    // Pooler: tanh(CLS . Wp + bp), one row per sequence. Downstream-only;
    // not part of the accelerated trace.
    Matrix cls(batch, config_.hidden);
    for (std::uint64_t b = 0; b < batch; ++b)
        for (std::uint64_t j = 0; j < config_.hidden; ++j)
            cls(b, j) = x(b * seq_len, j);
    Matrix pooled = modalMatmul(cls, weights_.poolerW, poolerWBf16_, mode);
    pooled = addBias(pooled, weights_.poolerB);
    for (std::size_t i = 0; i < pooled.rows(); ++i)
        for (std::size_t j = 0; j < pooled.cols(); ++j)
            pooled(i, j) = std::tanh(pooled(i, j));
    modalQuantize(pooled, mode);

    return Output{ std::move(x), std::move(pooled) };
}

Matrix
BertModel::extractFeatures(
    const std::vector<std::vector<std::uint32_t>> &tokens,
    NumericsMode mode) const
{
    const Output out = forward(tokens, mode, nullptr);
    const std::uint64_t batch = tokens.size();
    const std::uint64_t seq_len = tokens[0].size();
    Matrix features(batch, config_.hidden);
    for (std::uint64_t b = 0; b < batch; ++b) {
        std::uint64_t counted = 0;
        for (std::uint64_t t = 0; t < seq_len; ++t) {
            if (tokens[b][t] == kPadToken)
                continue;
            ++counted;
            for (std::uint64_t j = 0; j < config_.hidden; ++j)
                features(b, j) += out.hidden(b * seq_len + t, j);
        }
        PROSE_ASSERT(counted > 0, "sequence with only PAD tokens");
        const float inv = 1.0f / static_cast<float>(counted);
        for (std::uint64_t j = 0; j < config_.hidden; ++j)
            features(b, j) *= inv;
    }
    return features;
}

} // namespace prose
