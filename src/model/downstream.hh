/**
 * @file
 * Downstream task heads (Figure 2(b)): small models fit on top of
 * frozen Protein BERT features for fluorescence, stability, and binding
 * prediction. The paper's own experiment uses regularized linear
 * regression; a logistic head covers the classification-style tasks
 * (e.g. "does this protein stay folded?").
 */

#ifndef PROSE_MODEL_DOWNSTREAM_HH
#define PROSE_MODEL_DOWNSTREAM_HH

#include <cstdint>
#include <vector>

#include "numerics/linalg.hh"
#include "numerics/matrix.hh"

namespace prose {

/** Ridge-regression head over extracted features. */
class RegressionHead
{
  public:
    /** Fit on a feature matrix (n_samples x dim) and targets. */
    void fit(const Matrix &features, const std::vector<double> &targets,
             double lambda = 10.0);

    /** Predict each feature row; panics if not fitted. */
    std::vector<double> predict(const Matrix &features) const;

    bool fitted() const { return fitted_; }
    const RidgeModel &model() const;

  private:
    RidgeModel model_;
    bool fitted_ = false;
};

/** Binary logistic-regression head trained by batch gradient descent. */
class LogisticHead
{
  public:
    /** Training hyperparameters. */
    struct FitOptions
    {
        std::size_t epochs = 500;
        double learningRate = 0.1;
        double l2 = 1e-3;
    };

    /**
     * Fit on features (n_samples x dim) and 0/1 labels.
     * Features are standardized internally for conditioning.
     */
    void fit(const Matrix &features, const std::vector<int> &labels,
             FitOptions options);

    /** fit() with default hyperparameters. */
    void
    fit(const Matrix &features, const std::vector<int> &labels)
    {
        fit(features, labels, FitOptions{});
    }

    /** P(label == 1) per feature row. */
    std::vector<double> predictProbability(const Matrix &features) const;

    /** 0/1 predictions at a 0.5 threshold. */
    std::vector<int> predict(const Matrix &features) const;

    /** Fraction of labels matched. */
    double accuracy(const Matrix &features,
                    const std::vector<int> &labels) const;

    bool fitted() const { return fitted_; }

  private:
    /** Standardize one row into z-scores using the training moments. */
    std::vector<double> standardize(const Matrix &features,
                                    std::size_t row) const;

    std::vector<double> weights_;
    double bias_ = 0.0;
    std::vector<double> mean_;
    std::vector<double> stddev_;
    bool fitted_ = false;
};

} // namespace prose

#endif // PROSE_MODEL_DOWNSTREAM_HH
