#include "mlm_head.hh"

#include <cmath>

#include "common/logging.hh"
#include "tokenizer.hh"

namespace prose {

MlmHead::MlmHead(const BertModel &model)
    : model_(model)
{
}

std::vector<double>
MlmHead::logProbabilities(const std::vector<std::uint32_t> &tokens,
                          std::size_t position, NumericsMode mode) const
{
    PROSE_ASSERT(position < tokens.size(), "position out of range");

    // Mask the queried position and run the encoder.
    std::vector<std::uint32_t> masked = tokens;
    masked[position] = kMaskToken;
    const BertModel::Output out = model_.forward({ masked }, mode);

    // Tied decoder: logits = hidden . tokenEmbedding^T.
    const Matrix &embedding = model_.weights().tokenEmbedding;
    const std::size_t vocab = embedding.rows();
    std::vector<double> logits(vocab, 0.0);
    for (std::size_t v = 0; v < vocab; ++v) {
        double dot = 0.0;
        for (std::size_t j = 0; j < model_.config().hidden; ++j)
            dot += static_cast<double>(out.hidden(position, j)) *
                   embedding(v, j);
        logits[v] = dot;
    }

    // Log-softmax over the vocabulary.
    double max_logit = logits[0];
    for (double logit : logits)
        max_logit = std::max(max_logit, logit);
    double denom = 0.0;
    for (double logit : logits)
        denom += std::exp(logit - max_logit);
    const double log_denom = std::log(denom) + max_logit;
    for (double &logit : logits)
        logit -= log_denom;
    return logits;
}

double
MlmHead::zeroShotScore(const std::string &protein, std::size_t position,
                       char to, NumericsMode mode) const
{
    PROSE_ASSERT(position < protein.size(),
                 "residue position out of range");
    const AminoTokenizer tokenizer;
    const std::vector<std::uint32_t> tokens = tokenizer.encode(protein);
    // +1 skips [CLS].
    const std::vector<double> log_probs =
        logProbabilities(tokens, position + 1, mode);
    const std::uint32_t from_id = tokenizer.residueId(protein[position]);
    const std::uint32_t to_id = tokenizer.residueId(to);
    return log_probs[to_id] - log_probs[from_id];
}

double
MlmHead::pseudoLogLikelihood(const std::string &protein,
                             NumericsMode mode) const
{
    PROSE_ASSERT(!protein.empty(), "empty protein");
    const AminoTokenizer tokenizer;
    const std::vector<std::uint32_t> tokens = tokenizer.encode(protein);
    double total = 0.0;
    for (std::size_t pos = 0; pos < protein.size(); ++pos) {
        const std::vector<double> log_probs =
            logProbabilities(tokens, pos + 1, mode);
        total += log_probs[tokenizer.residueId(protein[pos])];
    }
    return total;
}

} // namespace prose
