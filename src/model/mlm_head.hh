/**
 * @file
 * Masked-language-model head — the pretraining objective of every
 * BERT-style protein model, and the engine behind *zero-shot* mutation
 * effect prediction (Meier et al., the paper's zero-shot citation):
 * mask a position, read the model's probability distribution over
 * residues there, and score a substitution as
 *
 *     log p(mutant residue | context) - log p(wild residue | context)
 *
 * with no downstream training at all. Logits tie to the token-embedding
 * matrix, as in standard BERT.
 */

#ifndef PROSE_MODEL_MLM_HEAD_HH
#define PROSE_MODEL_MLM_HEAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bert_model.hh"

namespace prose {

/** Vocabulary distribution reader over encoder hidden states. */
class MlmHead
{
  public:
    /** Bind to a model (borrows; the model must outlive the head). */
    explicit MlmHead(const BertModel &model);

    /**
     * Log-probabilities over the vocabulary for one position of a
     * tokenized sequence, computed by masking that position and running
     * the encoder (one forward per query).
     */
    std::vector<double> logProbabilities(
        const std::vector<std::uint32_t> &tokens, std::size_t position,
        NumericsMode mode = NumericsMode::Fp32) const;

    /**
     * Zero-shot single-substitution score at a residue position of a
     * raw protein (0-based, excluding CLS):
     * log p(to) - log p(from) under the masked distribution.
     */
    double zeroShotScore(const std::string &protein,
                         std::size_t position, char to,
                         NumericsMode mode = NumericsMode::Fp32) const;

    /**
     * Pseudo-log-likelihood of a whole protein: sum over positions of
     * log p(true residue | rest). O(L) forwards — use short sequences.
     */
    double pseudoLogLikelihood(const std::string &protein,
                               NumericsMode mode =
                                   NumericsMode::Fp32) const;

  private:
    const BertModel &model_;
};

} // namespace prose

#endif // PROSE_MODEL_MLM_HEAD_HH
