#include "abft.hh"

#include <cmath>

#include "common/logging.hh"
#include "numerics/bfloat16.hh"

namespace prose {

AbftChecker::AbftChecker(AbftOptions options) : options_(options) {}

AbftTileResult
AbftChecker::checkTile(const Matrix &a, const Matrix &b, Matrix &acc)
{
    const std::size_t rows = acc.rows();
    const std::size_t cols = acc.cols();
    const std::size_t k = a.cols();
    PROSE_ASSERT(a.rows() == rows && b.cols() == cols && b.rows() == k,
                 "ABFT operand/accumulator shape mismatch");

    AbftTileResult result;
    ++stats_.tilesChecked;

    // Checksum vectors over the bf16-quantized operands the array saw,
    // accumulated in double so checksum rounding stays far below the
    // array's own fp32 rounding.
    std::vector<double> col_sum_b(k, 0.0), abs_col_sum_b(k, 0.0);
    for (std::size_t kk = 0; kk < k; ++kk) {
        for (std::size_t j = 0; j < cols; ++j) {
            const double v = quantizeBf16(b(kk, j));
            col_sum_b[kk] += v;
            abs_col_sum_b[kk] += std::fabs(v);
        }
    }
    std::vector<double> row_sum_a(k, 0.0), abs_row_sum_a(k, 0.0);
    for (std::size_t kk = 0; kk < k; ++kk) {
        for (std::size_t i = 0; i < rows; ++i) {
            const double v = quantizeBf16(a(i, kk));
            row_sum_a[kk] += v;
            abs_row_sum_a[kk] += std::fabs(v);
        }
    }

    // Row residuals: actual row sums of C vs a(r,:) . colsum(B).
    std::vector<double> row_residual(rows, 0.0), row_mass(rows, 0.0);
    for (std::size_t r = 0; r < rows; ++r) {
        double expected = 0.0, mass = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const double v = quantizeBf16(a(r, kk));
            expected += v * col_sum_b[kk];
            mass += std::fabs(v) * abs_col_sum_b[kk];
        }
        double actual = 0.0;
        for (std::size_t j = 0; j < cols; ++j)
            actual += acc(r, j);
        row_residual[r] = expected - actual;
        row_mass[r] = mass;
        const double thresh = options_.relTolerance * mass;
        if (!(std::fabs(row_residual[r]) <= thresh))
            result.suspectRows.push_back(r);
    }

    // Column residuals: actual column sums vs rowsum(A) . b(:,c).
    std::vector<double> col_residual(cols, 0.0), col_mass(cols, 0.0);
    for (std::size_t c = 0; c < cols; ++c) {
        double expected = 0.0, mass = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const double v = quantizeBf16(b(kk, c));
            expected += row_sum_a[kk] * v;
            mass += abs_row_sum_a[kk] * std::fabs(v);
        }
        double actual = 0.0;
        for (std::size_t i = 0; i < rows; ++i)
            actual += acc(i, c);
        col_residual[c] = expected - actual;
        col_mass[c] = mass;
        const double thresh = options_.relTolerance * mass;
        if (!(std::fabs(col_residual[c]) <= thresh))
            result.suspectCols.push_back(c);
    }

    result.flagged =
        !result.suspectRows.empty() || !result.suspectCols.empty();
    if (!result.flagged)
        return result;
    ++stats_.tilesFlagged;

    // Locate: a corrupted accumulator leaves the *same* residual in its
    // row and its column, which disambiguates multi-error tiles.
    bool any_unlocated = result.suspectRows.empty();
    std::uint64_t exact = 0, ambiguous = 0;
    for (const std::size_t r : result.suspectRows) {
        std::vector<std::size_t> candidates;
        for (const std::size_t c : result.suspectCols) {
            const double skew =
                std::fabs(row_residual[r] - col_residual[c]);
            const double tol =
                options_.relTolerance * (row_mass[r] + col_mass[c]);
            if (skew <= tol)
                candidates.push_back(c);
        }
        // A NaN/Inf residual never residual-matches; with a single
        // suspect column the assignment is still unambiguous.
        if (candidates.empty() && result.suspectCols.size() == 1)
            candidates = result.suspectCols;

        if (candidates.size() == 1) {
            const std::size_t c = candidates.front();
            result.located.emplace_back(r, c);
            ++exact;
            if (options_.correct) {
                // Rebuild the cell from its row checksum and the
                // healthy cells (robust even when the cell is Inf/NaN).
                double expected = 0.0;
                for (std::size_t kk = 0; kk < k; ++kk)
                    expected += static_cast<double>(quantizeBf16(a(r, kk))) *
                                col_sum_b[kk];
                double others = 0.0;
                for (std::size_t j = 0; j < cols; ++j)
                    if (j != c)
                        others += acc(r, j);
                acc(r, c) = static_cast<float>(expected - others);
                result.corrected.emplace_back(r, c);
            }
        } else if (!candidates.empty()) {
            for (const std::size_t c : candidates) {
                result.located.emplace_back(r, c);
                ++ambiguous;
            }
        } else if (!result.suspectCols.empty()) {
            for (const std::size_t c : result.suspectCols) {
                result.located.emplace_back(r, c);
                ++ambiguous;
            }
        } else {
            any_unlocated = true;
        }
    }
    if (any_unlocated)
        ++stats_.unlocatedTiles;
    stats_.locatedElements += exact;
    stats_.ambiguousElements += ambiguous;
    stats_.correctedElements += result.corrected.size();
    return result;
}

} // namespace prose
