/**
 * @file
 * Fault-campaign description for the ProSE resilience stack. A campaign
 * is a seeded, fully deterministic specification of which faults to
 * inject where: stuck-at / transient bit flips in PE accumulators,
 * transfer errors and timeouts on the host link, and scheduled kills of
 * whole arrays or whole ProSE instances.
 *
 * The spec has a canonical text form (space-separated key=value tokens,
 * see CampaignSpec::parse) so campaigns can be passed on a command line,
 * stored next to results, and replayed bit-identically. describe() emits
 * that canonical form; parse(describe()) round-trips.
 */

#ifndef PROSE_FAULT_CAMPAIGN_HH
#define PROSE_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace prose {

/** Every fault class the injector can produce. */
enum class FaultKind
{
    AccTransientFlip, ///< one-shot bit flip in a PE accumulator
    AccStuckBit,      ///< permanent stuck-at-0/1 accumulator bit
    LinkTransferError,///< corrupted host-link transfer (retryable)
    LinkTimeout,      ///< hung host-link transfer (detected by timeout)
    ArrayKill,        ///< an entire systolic array goes dark
    InstanceKill,     ///< an entire ProSE instance goes dark
};

const char *toString(FaultKind kind);

/** One entry of the deterministic fault/recovery event log. */
struct FaultEvent
{
    std::uint64_t seq = 0;   ///< injector-assigned sequence number
    FaultKind kind = FaultKind::AccTransientFlip;
    std::string site;        ///< e.g. "M0", "link:E", "instance:2"
    std::uint32_t row = 0;   ///< accumulator row (accumulator faults)
    std::uint32_t col = 0;   ///< accumulator column
    std::uint32_t bit = 0;   ///< flipped/stuck bit, 0 = fp32 LSB
    double atSeconds = -1.0; ///< scheduled time (kills); -1 if n/a

    /** One canonical log line (the replay-comparison unit). */
    std::string describe() const;
};

/** A permanently stuck accumulator bit at one PE of one array. */
struct StuckBitFault
{
    std::string site;        ///< array site id, e.g. "M0"
    std::uint32_t row = 0;
    std::uint32_t col = 0;
    std::uint32_t bit = 0;   ///< fp32 accumulator bit, 0..31
    bool stuckHigh = false;  ///< stuck-at-1 vs stuck-at-0
};

/** Scheduled death of one array instance of a type pool. */
struct ArrayKill
{
    char typeCode = 'M';     ///< 'M', 'G' or 'E'
    std::uint32_t index = 0; ///< instance index within the type pool
    double atSeconds = 0.0;  ///< simulated time of death
};

/**
 * Scheduled death of one ProSE instance of a system. Two addressing
 * modes: a simulated-time kill (`atSeconds >= 0`, the classic form) or
 * an arrival-indexed kill (`atArrival >= 0`): the instance dies the
 * moment the Nth request of an open-loop stream arrives, which lets a
 * chaos campaign pin "die mid-stream" to a workload position instead
 * of a wall-clock guess. Exactly one of the two must be set; the
 * serving layer resolves arrival indices to seconds against its
 * arrival stream (closed-loop simulators ignore arrival-indexed
 * kills — they have no arrival stream to index).
 */
struct InstanceKill
{
    std::uint32_t instance = 0;
    double atSeconds = -1.0;
    std::int64_t atArrival = -1; ///< request-arrival index, -1 = unset
};

/** The full, seeded description of one fault campaign. */
struct CampaignSpec
{
    std::uint64_t seed = 1;

    /** Transient-flip probability per live accumulator per tile op. */
    double accFlipRate = 0.0;
    /**
     * Inclusive fp32 bit window for transient flips. Defaults to the
     * architecturally visible half [16, 31]: every accumulator read
     * (SIMD input or OUTPUT port) taps bits [31:16], so flips below
     * bit 16 are masked by the truncation and undetectable by design.
     */
    std::uint32_t flipBitLow = 16;
    std::uint32_t flipBitHigh = 31;

    std::vector<StuckBitFault> stuckBits;

    /** Fault probabilities per link transfer attempt. */
    double linkErrorRate = 0.0;
    double linkTimeoutRate = 0.0;

    std::vector<ArrayKill> arrayKills;
    std::vector<InstanceKill> instanceKills;

    /**
     * Parse the canonical text form. Tokens (whitespace-separated):
     *
     *   seed=42
     *   acc_flip_rate=1e-4
     *   flip_bits=16:31
     *   stuck=M0:3:5:30:1          (site:row:col:bit:value)
     *   link_error_rate=1e-3
     *   link_timeout_rate=1e-4
     *   kill_array=E:0@2e-3        (type:index@seconds)
     *   kill_instance=1@5e-3       (instance@seconds)
     *   kill_instance=1@#500       (instance@arrival-index)
     *
     * Unknown keys or malformed values are fatal().
     */
    static CampaignSpec parse(const std::string &text);

    /** Canonical text form; parse(describe()) round-trips. */
    std::string describe() const;

    /** fatal() on out-of-range rates or bit windows. */
    void validate() const;
};

} // namespace prose

#endif // PROSE_FAULT_CAMPAIGN_HH
