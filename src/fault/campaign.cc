#include "campaign.hh"

#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace prose {

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::AccTransientFlip:
        return "AccTransientFlip";
      case FaultKind::AccStuckBit:
        return "AccStuckBit";
      case FaultKind::LinkTransferError:
        return "LinkTransferError";
      case FaultKind::LinkTimeout:
        return "LinkTimeout";
      case FaultKind::ArrayKill:
        return "ArrayKill";
      case FaultKind::InstanceKill:
        return "InstanceKill";
    }
    return "?";
}

std::string
FaultEvent::describe() const
{
    std::ostringstream os;
    os << seq << ' ' << toString(kind) << ' ' << site;
    switch (kind) {
      case FaultKind::AccTransientFlip:
      case FaultKind::AccStuckBit:
        os << " pe=" << row << ',' << col << " bit=" << bit;
        break;
      case FaultKind::LinkTransferError:
      case FaultKind::LinkTimeout:
        break;
      case FaultKind::ArrayKill:
      case FaultKind::InstanceKill:
        os << " at=" << atSeconds;
        break;
    }
    return os.str();
}

namespace {

/**
 * Rates and times must be finite: strtod-style parsing accepts "nan"
 * and "inf", and a NaN rate slides straight through the
 * `rate < 0 || rate > 1` validation (both comparisons are false), so
 * the finiteness check belongs to the parse, not the validator.
 */
double
parseRate(const std::string &value, const std::string &key)
{
    double rate = 0.0;
    if (!parseFiniteDouble(value, rate))
        fatal("campaign spec: bad number for ", key, ": '", value, "'");
    return rate;
}

std::uint64_t
parseUint(const std::string &value, const std::string &key)
{
    std::uint64_t parsed = 0;
    if (!parseU64(value, parsed))
        fatal("campaign spec: bad unsigned integer for ", key, ": '",
              value, "'");
    return parsed;
}

/** 32-bit fields reject large values instead of truncating: a stuck
 *  bit at row 2^32+3 must not silently become row 3. */
std::uint32_t
parseUint32(const std::string &value, const std::string &key)
{
    std::uint32_t parsed = 0;
    if (!parseU32(value, parsed))
        fatal("campaign spec: bad 32-bit unsigned integer for ", key,
              ": '", value, "'");
    return parsed;
}

/** Split "payload@seconds" into its two halves. */
std::pair<std::string, double>
parseAt(const std::string &value, const std::string &key)
{
    const auto at = value.find('@');
    if (at == std::string::npos)
        fatal("campaign spec: ", key, " needs an @seconds suffix: '",
              value, "'");
    return { value.substr(0, at),
             parseRate(value.substr(at + 1), key) };
}

} // namespace

CampaignSpec
CampaignSpec::parse(const std::string &text)
{
    CampaignSpec spec;
    std::istringstream tokens(text);
    std::string token;
    while (tokens >> token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos)
            fatal("campaign spec: token without '=': '", token, "'");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "seed") {
            spec.seed = parseUint(value, key);
        } else if (key == "acc_flip_rate") {
            spec.accFlipRate = parseRate(value, key);
        } else if (key == "flip_bits") {
            const auto parts = split(value, ':');
            if (parts.size() != 2)
                fatal("campaign spec: flip_bits wants low:high, got '",
                      value, "'");
            spec.flipBitLow = parseUint32(parts[0], key);
            spec.flipBitHigh = parseUint32(parts[1], key);
        } else if (key == "stuck") {
            const auto parts = split(value, ':');
            if (parts.size() != 5)
                fatal("campaign spec: stuck wants "
                      "site:row:col:bit:value, got '", value, "'");
            StuckBitFault stuck;
            stuck.site = parts[0];
            stuck.row = parseUint32(parts[1], key);
            stuck.col = parseUint32(parts[2], key);
            stuck.bit = parseUint32(parts[3], key);
            stuck.stuckHigh = parseUint(parts[4], key) != 0;
            spec.stuckBits.push_back(std::move(stuck));
        } else if (key == "link_error_rate") {
            spec.linkErrorRate = parseRate(value, key);
        } else if (key == "link_timeout_rate") {
            spec.linkTimeoutRate = parseRate(value, key);
        } else if (key == "kill_array") {
            const auto [payload, at] = parseAt(value, key);
            const auto parts = split(payload, ':');
            if (parts.size() != 2 || parts[0].size() != 1)
                fatal("campaign spec: kill_array wants "
                      "type:index@seconds, got '", value, "'");
            ArrayKill kill;
            kill.typeCode = parts[0][0];
            kill.index = parseUint32(parts[1], key);
            kill.atSeconds = at;
            spec.arrayKills.push_back(kill);
        } else if (key == "kill_instance") {
            const auto at_pos = value.find('@');
            if (at_pos == std::string::npos)
                fatal("campaign spec: kill_instance needs an @seconds "
                      "or @#arrival suffix: '", value, "'");
            InstanceKill kill;
            kill.instance = parseUint32(value.substr(0, at_pos), key);
            const std::string when = value.substr(at_pos + 1);
            if (!when.empty() && when[0] == '#') {
                // Arrival-indexed: the instance dies when request #N
                // of the open-loop stream arrives. Bounded so the
                // int64 sentinel encoding (-1 = unset) stays exact.
                const std::uint64_t arrival =
                    parseUint(when.substr(1), key);
                if (arrival > static_cast<std::uint64_t>(
                                  std::numeric_limits<std::int64_t>::max()))
                    fatal("campaign spec: kill_instance arrival index ",
                          arrival, " is out of range");
                kill.atArrival = static_cast<std::int64_t>(arrival);
            } else {
                kill.atSeconds = parseRate(when, key);
            }
            spec.instanceKills.push_back(kill);
        } else {
            fatal("campaign spec: unknown key '", key, "'");
        }
    }
    spec.validate();
    return spec;
}

std::string
CampaignSpec::describe() const
{
    std::ostringstream os;
    os << "seed=" << seed;
    if (accFlipRate > 0.0) {
        os << " acc_flip_rate=" << accFlipRate << " flip_bits="
           << flipBitLow << ':' << flipBitHigh;
    }
    for (const StuckBitFault &stuck : stuckBits) {
        os << " stuck=" << stuck.site << ':' << stuck.row << ':'
           << stuck.col << ':' << stuck.bit << ':'
           << (stuck.stuckHigh ? 1 : 0);
    }
    if (linkErrorRate > 0.0)
        os << " link_error_rate=" << linkErrorRate;
    if (linkTimeoutRate > 0.0)
        os << " link_timeout_rate=" << linkTimeoutRate;
    for (const ArrayKill &kill : arrayKills) {
        os << " kill_array=" << kill.typeCode << ':' << kill.index << '@'
           << kill.atSeconds;
    }
    for (const InstanceKill &kill : instanceKills) {
        os << " kill_instance=" << kill.instance << '@';
        if (kill.atArrival >= 0)
            os << '#' << kill.atArrival;
        else
            os << kill.atSeconds;
    }
    return os.str();
}

void
CampaignSpec::validate() const
{
    auto checkRate = [](double rate, const char *what) {
        // The negated form catches NaN, which passes both `rate < 0`
        // and `rate > 1` and would otherwise arm the injector with a
        // rate every comparison answers "false" about.
        if (!(rate >= 0.0 && rate <= 1.0))
            fatal("campaign spec: ", what, " must be in [0, 1], got ",
                  rate);
    };
    checkRate(accFlipRate, "acc_flip_rate");
    checkRate(linkErrorRate, "link_error_rate");
    checkRate(linkTimeoutRate, "link_timeout_rate");
    if (flipBitLow > flipBitHigh || flipBitHigh > 31)
        fatal("campaign spec: flip_bits window ", flipBitLow, ":",
              flipBitHigh, " is not a subrange of 0:31");
    for (const StuckBitFault &stuck : stuckBits) {
        if (stuck.bit > 31)
            fatal("campaign spec: stuck bit ", stuck.bit,
                  " exceeds an fp32 accumulator");
        if (stuck.site.empty())
            fatal("campaign spec: stuck fault with empty site");
    }
    for (const ArrayKill &kill : arrayKills) {
        if (kill.typeCode != 'M' && kill.typeCode != 'G' &&
            kill.typeCode != 'E')
            fatal("campaign spec: kill_array type '",
                  std::string(1, kill.typeCode), "' is not M/G/E");
        if (!(kill.atSeconds >= 0.0))
            fatal("campaign spec: kill_array time must be >= 0");
    }
    for (const InstanceKill &kill : instanceKills) {
        const bool timed = kill.atSeconds >= 0.0;
        const bool indexed = kill.atArrival >= 0;
        if (timed == indexed)
            fatal("campaign spec: kill_instance needs exactly one of "
                  "@seconds (>= 0) or @#arrival-index, got seconds=",
                  kill.atSeconds, " arrival=", kill.atArrival);
    }
}

} // namespace prose
