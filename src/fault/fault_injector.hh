/**
 * @file
 * Seeded, deterministic fault injector. One injector carries out one
 * CampaignSpec: the systolic layer asks it to corrupt accumulator
 * regions after each tile matmul, the performance simulator asks it
 * whether a link transfer attempt faulted, and the schedulers query its
 * array/instance kill schedule. Every fault it produces is appended to
 * an event log whose text form is bit-identical across runs with the
 * same spec — the replay guarantee the campaign tests rely on.
 *
 * The injector deliberately knows nothing about SystolicArray, PerfSim
 * or ProseSystem; call sites identify themselves with small site ids
 * ("M0", 'E', instance numbers), which keeps this library at the bottom
 * of the dependency stack (common + numerics only).
 */

#ifndef PROSE_FAULT_FAULT_INJECTOR_HH
#define PROSE_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign.hh"
#include "common/random.hh"

namespace prose {

class FaultInjector
{
  public:
    /** Validates the spec and records its scheduled kill events. */
    explicit FaultInjector(CampaignSpec spec);

    const CampaignSpec &spec() const { return spec_; }

    /**
     * Apply the campaign's accumulator faults to one live tile region:
     * transient single-bit flips at acc_flip_rate per cell, then any
     * stuck bits whose site matches. Called by SystolicArray after each
     * matmulTile; a null injector means the hot loop is untouched.
     *
     * @param site array site id (e.g. "M0")
     * @param acc the n x n accumulator backing store
     * @param stride row stride of `acc` (the array dimension n)
     * @param rows live rows
     * @param cols live columns
     * @return corrupted cells (flips plus value-changing stuck bits)
     */
    std::size_t corruptAccumulators(const std::string &site, float *acc,
                                    std::size_t stride, std::size_t rows,
                                    std::size_t cols);

    /**
     * True when corruptAccumulators(site, ...) could draw from the RNG
     * or corrupt a cell at this site: the campaign sets a transient
     * accumulator flip rate (site-independent) or schedules a stuck bit
     * whose site matches. Const and RNG-free, so the systolic layer can
     * consult it per tile: an unarmed site keeps the diagonal-batched
     * stepped path, an armed one falls back to the scalar PE walk
     * (docs/FAULT_MODEL.md replay contract).
     */
    bool armsAccumulators(const std::string &site) const;

    /** Outcome of one link transfer attempt. */
    struct LinkOutcome
    {
        bool error = false;   ///< corrupted transfer, retry immediately
        bool timeout = false; ///< hung transfer, retry after timeout
        bool faulty() const { return error || timeout; }
    };

    /**
     * Sample one transfer attempt on the lane share of one array type
     * ('M'/'G'/'E'). Always consumes the same number of RNG draws so
     * the stream stays aligned across fault-free and faulty runs.
     */
    LinkOutcome sampleLinkTransfer(char type_code);

    /** Arrays of one type dead at simulated time `now`. */
    std::uint32_t deadArrays(char type_code, double now) const;

    /** Earliest *time-scheduled* kill of an instance, or +infinity if
     *  never. Arrival-indexed kills are not included — resolve them
     *  against an arrival stream via instanceKillArrival(). */
    double instanceKillSeconds(std::uint32_t instance) const;

    /** No arrival-indexed kill scheduled for the instance. */
    static constexpr std::uint64_t kNoArrivalKill =
        ~static_cast<std::uint64_t>(0);

    /**
     * Earliest arrival-indexed kill of an instance: the request-stream
     * index at which it dies, or kNoArrivalKill. The serving layer maps
     * the index to that request's arrival time (an index past the end
     * of the stream never fires).
     */
    std::uint64_t instanceKillArrival(std::uint32_t instance) const;

    /** The deterministic fault/recovery event log. */
    const std::vector<FaultEvent> &events() const { return events_; }

    /** Full log, one FaultEvent::describe() line per event. */
    std::string eventLogText() const;

    /** Re-seed from the spec and clear the log (fresh campaign run). */
    void reset();

  private:
    void record(FaultKind kind, std::string site, std::uint32_t row,
                std::uint32_t col, std::uint32_t bit, double at_seconds);

    CampaignSpec spec_;
    Rng rng_;
    std::vector<FaultEvent> events_;
};

} // namespace prose

#endif // PROSE_FAULT_FAULT_INJECTOR_HH
