#include "fault_injector.hh"

#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "numerics/bfloat16.hh"

namespace prose {

FaultInjector::FaultInjector(CampaignSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed)
{
    spec_.validate();
    reset();
}

void
FaultInjector::reset()
{
    rng_ = Rng(spec_.seed);
    events_.clear();
    // Kills are scheduled, not sampled; log them up front so the event
    // log carries the full campaign timeline.
    for (const ArrayKill &kill : spec_.arrayKills) {
        record(FaultKind::ArrayKill,
               std::string(1, kill.typeCode) + std::to_string(kill.index),
               0, 0, 0, kill.atSeconds);
    }
    for (const InstanceKill &kill : spec_.instanceKills) {
        // Arrival-indexed kills carry the index in the site id (their
        // concrete time is only known to the serving layer).
        std::string site = "instance:";
        site += std::to_string(kill.instance);
        if (kill.atArrival >= 0) {
            site += '#';
            site += std::to_string(kill.atArrival);
        }
        record(FaultKind::InstanceKill, std::move(site), 0, 0, 0,
               kill.atSeconds);
    }
}

void
FaultInjector::record(FaultKind kind, std::string site, std::uint32_t row,
                      std::uint32_t col, std::uint32_t bit,
                      double at_seconds)
{
    FaultEvent event;
    event.seq = events_.size();
    event.kind = kind;
    event.site = std::move(site);
    event.row = row;
    event.col = col;
    event.bit = bit;
    event.atSeconds = at_seconds;
    events_.push_back(std::move(event));
}

std::size_t
FaultInjector::corruptAccumulators(const std::string &site, float *acc,
                                   std::size_t stride, std::size_t rows,
                                   std::size_t cols)
{
    PROSE_ASSERT(rows <= stride && cols <= stride,
                 "fault injection region exceeds the accumulator array");
    std::size_t corrupted = 0;

    if (spec_.accFlipRate > 0.0) {
        const std::uint32_t bit_span =
            spec_.flipBitHigh - spec_.flipBitLow + 1;
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
                if (rng_.uniform() >= spec_.accFlipRate)
                    continue;
                const std::uint32_t bit =
                    spec_.flipBitLow +
                    static_cast<std::uint32_t>(rng_.below(bit_span));
                float &cell = acc[r * stride + c];
                cell = flipFloatBit(cell, bit);
                record(FaultKind::AccTransientFlip, site,
                       static_cast<std::uint32_t>(r),
                       static_cast<std::uint32_t>(c), bit, -1.0);
                ++corrupted;
            }
        }
    }

    for (const StuckBitFault &stuck : spec_.stuckBits) {
        if (stuck.site != site || stuck.row >= rows || stuck.col >= cols)
            continue;
        float &cell = acc[stuck.row * stride + stuck.col];
        const float forced = setFloatBit(cell, stuck.bit, stuck.stuckHigh);
        if (forced != cell ||
            Bfloat16(forced).bits() != Bfloat16(cell).bits()) {
            cell = forced;
            record(FaultKind::AccStuckBit, site, stuck.row, stuck.col,
                   stuck.bit, -1.0);
            ++corrupted;
        }
    }
    return corrupted;
}

bool
FaultInjector::armsAccumulators(const std::string &site) const
{
    if (spec_.accFlipRate > 0.0)
        return true;
    for (const StuckBitFault &stuck : spec_.stuckBits) {
        if (stuck.site == site)
            return true;
    }
    return false;
}

FaultInjector::LinkOutcome
FaultInjector::sampleLinkTransfer(char type_code)
{
    // Two draws per attempt, unconditionally, to keep the RNG stream
    // aligned no matter which faults are enabled.
    const double error_draw = rng_.uniform();
    const double timeout_draw = rng_.uniform();
    LinkOutcome outcome;
    outcome.error = error_draw < spec_.linkErrorRate;
    outcome.timeout = !outcome.error &&
                      timeout_draw < spec_.linkTimeoutRate;
    if (outcome.error) {
        record(FaultKind::LinkTransferError,
               std::string("link:") + type_code, 0, 0, 0, -1.0);
    } else if (outcome.timeout) {
        record(FaultKind::LinkTimeout, std::string("link:") + type_code,
               0, 0, 0, -1.0);
    }
    return outcome;
}

std::uint32_t
FaultInjector::deadArrays(char type_code, double now) const
{
    std::uint32_t dead = 0;
    for (const ArrayKill &kill : spec_.arrayKills) {
        if (kill.typeCode == type_code && kill.atSeconds <= now)
            ++dead;
    }
    return dead;
}

double
FaultInjector::instanceKillSeconds(std::uint32_t instance) const
{
    double earliest = std::numeric_limits<double>::infinity();
    for (const InstanceKill &kill : spec_.instanceKills) {
        if (kill.instance == instance && kill.atArrival < 0)
            earliest = std::min(earliest, kill.atSeconds);
    }
    return earliest;
}

std::uint64_t
FaultInjector::instanceKillArrival(std::uint32_t instance) const
{
    std::uint64_t earliest = kNoArrivalKill;
    for (const InstanceKill &kill : spec_.instanceKills) {
        if (kill.instance == instance && kill.atArrival >= 0)
            earliest = std::min(
                earliest, static_cast<std::uint64_t>(kill.atArrival));
    }
    return earliest;
}

std::string
FaultInjector::eventLogText() const
{
    std::ostringstream os;
    for (const FaultEvent &event : events_)
        os << event.describe() << '\n';
    return os.str();
}

} // namespace prose
