/**
 * @file
 * Algorithm-based fault tolerance (ABFT) for the output-stationary
 * matmul, after Huang & Abraham (1984). For a tile product C = A x B the
 * checker recomputes, in double precision over the same bf16-quantized
 * operands the array saw, the row checksums (each row of C must sum to
 * a(r,:) . colsum(B)) and column checksums (each column must sum to
 * rowsum(A) . b(:,c)). A corrupted accumulator shows up as one bad row
 * sum and one bad column sum, whose intersection *locates* the faulty
 * PE; the row checksum residual then *corrects* the cell.
 *
 * Floating-point checksums need a tolerance: the array accumulates in
 * fp32 while the checksums use double, so residuals up to about
 * k * eps_f32 of the row/column absolute mass are legitimate rounding.
 * The threshold scales with that absolute mass, leaving orders of
 * magnitude between rounding noise (~1e-7 relative) and the smallest
 * architecturally visible flip (bf16-mantissa LSB, 2^-7 relative to one
 * term). Flips below accumulator bit 16 are masked by the truncating
 * reads of the real hardware and are out of scope by design.
 */

#ifndef PROSE_FAULT_ABFT_HH
#define PROSE_FAULT_ABFT_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "numerics/matrix.hh"

namespace prose {

/** ABFT configuration. */
struct AbftOptions
{
    bool enabled = false;
    /** Repair located cells from the checksum residual. */
    bool correct = true;
    /**
     * Detection threshold as a fraction of the row/col absolute mass.
     * bf16 x bf16 products are exact in fp32, so the only legitimate
     * residual is fp32 accumulation rounding — a random walk of order
     * sqrt(k) * eps_f32 relative to the absolute mass, which stays well
     * under 1e-8 of the mass for practical depths while the smallest
     * architecturally visible flip (fp32 bit 16) is 2^-7 of its cell.
     * 2e-7 keeps ~20x margin against false positives and catches flips
     * on all but vanishingly small cells.
     */
    double relTolerance = 2e-7;
};

/** Verdict for one checked tile. */
struct AbftTileResult
{
    bool flagged = false; ///< any checksum mismatch
    std::vector<std::size_t> suspectRows;
    std::vector<std::size_t> suspectCols;
    /** Row x column intersection: the located accumulators. */
    std::vector<std::pair<std::size_t, std::size_t>> located;
    /** Cells repaired in-place (subset of `located`). */
    std::vector<std::pair<std::size_t, std::size_t>> corrected;
};

/** Detection-coverage accounting across a whole run. */
struct AbftStats
{
    std::uint64_t tilesChecked = 0;
    std::uint64_t tilesFlagged = 0;
    /** Accumulators pinpointed to a unique (row, col). */
    std::uint64_t locatedElements = 0;
    /** Candidate cells in tiles whose evidence stayed ambiguous. */
    std::uint64_t ambiguousElements = 0;
    std::uint64_t correctedElements = 0;
    /** Flagged tiles where row/col evidence did not intersect. */
    std::uint64_t unlocatedTiles = 0;

    /** Located faults per flagged tile-error; 1.0 when every flagged
     *  tile pinpointed its faulty accumulators. */
    double locateRate() const
    {
        return tilesFlagged > 0
                   ? static_cast<double>(tilesFlagged - unlocatedTiles) /
                         static_cast<double>(tilesFlagged)
                   : 1.0;
    }
};

/** Stateful checker: per-tile verdicts plus run-level coverage stats. */
class AbftChecker
{
  public:
    explicit AbftChecker(AbftOptions options = AbftOptions{});

    const AbftOptions &options() const { return options_; }
    const AbftStats &stats() const { return stats_; }
    void resetStats() { stats_ = AbftStats{}; }

    /**
     * Check (and optionally repair) one tile. `acc` is the live
     * accumulator region (rows x cols fp32) produced by streaming the
     * full k depth of `a` (rows x k) against `b` (k x cols); repaired
     * values are written back into `acc`.
     */
    AbftTileResult checkTile(const Matrix &a, const Matrix &b,
                             Matrix &acc);

  private:
    AbftOptions options_;
    AbftStats stats_;
};

} // namespace prose

#endif // PROSE_FAULT_ABFT_HH
