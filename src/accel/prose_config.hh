/**
 * @file
 * A complete ProSE instance configuration: the heterogeneous array mix,
 * the link and its lane partition, the partial-input-buffer option, and
 * the software thread count. Includes the six named configurations of
 * Table 4.
 */

#ifndef PROSE_ACCEL_PROSE_CONFIG_HH
#define PROSE_ACCEL_PROSE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "link_model.hh"
#include "power/power_model.hh"
#include "systolic/array_config.hh"

namespace prose {

/** One ProSE accelerator card plus its software knobs. */
struct ProseConfig
{
    std::string name = "prose";
    std::vector<ArrayGroupSpec> groups;
    LinkSpec link = LinkSpec::nvlink2At90();
    LanePartition lanes;
    /** DMA streaming model (overlap mode + prefetch depth). */
    StreamSpec streaming;
    bool partialInputBuffer = true;
    std::uint32_t threads = 32;

    /** Total processing elements across all arrays. */
    std::uint64_t totalPes() const;

    /** Number of array instances of one type. */
    std::uint32_t arrayCount(ArrayType type) const;

    /** Flattened list of per-instance geometries (scheduler view). */
    std::vector<ArrayGeometry> instances() const;

    /** Panics unless at least one array of each type exists and the
     *  lane partition covers the link. */
    void validate() const;

    std::string describe() const;

    /** @name Table 4 configurations @{ */
    /** BestPerf: 2x 64 M, 10x 16 G, 22x 16 E (16K PEs). */
    static ProseConfig bestPerf();
    /** MostEfficient: 2x 64 M, 3x 32 G, 20x 16 E (16K PEs). */
    static ProseConfig mostEfficient();
    /** Homogeneous: 2x 64 M, 1x 64 G, 1x 64 E (16K PEs). */
    static ProseConfig homogeneous();
    /** BestPerf+: 2x 64 M, 5x 32 G, 7x 32 E (20K PEs). */
    static ProseConfig bestPerfPlus();
    /** MostEfficient+: same mix as BestPerf+ (the DSE coincided). */
    static ProseConfig mostEfficientPlus();
    /** Homogeneous+: 2x 64 M, 1x 64 G, 2x 64 E (20K PEs). */
    static ProseConfig homogeneousPlus();
    /** The Figure 4 strawman: four 64x64 arrays (one TPU-core worth). */
    static ProseConfig fourBy64Homogeneous();
    /** @} */
};

} // namespace prose

#endif // PROSE_ACCEL_PROSE_CONFIG_HH
