/**
 * @file
 * Multi-instance ProSE system model. Section 3.2: "we envision a host
 * CPU that is capable of supporting four NVLinks similar to what the
 * latest NVIDIA Grace CPU is capable of, with each NVLink connecting to
 * one ProSE instance, totaling four ProSE instances per system."
 *
 * Instances are independent accelerator cards on independent links; the
 * system shards an inference batch across them and the host CPU serves
 * all of their softmax/Other work. This is the deployment-scale view on
 * top of the single-instance PerfSim.
 */

#ifndef PROSE_ACCEL_SYSTEM_HH
#define PROSE_ACCEL_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "perf_sim.hh"
#include "power/power_model.hh"

namespace prose {

/** A host with several ProSE instances on dedicated links. */
struct SystemConfig
{
    ProseConfig instance = ProseConfig::bestPerf();
    std::uint32_t instanceCount = 4; ///< Grace-class hosts carry four

    /**
     * Host CPU capacity multiplier: softmax/Other work from all
     * instances lands on one host, so per-instance host throughput is
     * the single-host spec divided by the active instance count.
     */
    HostSpec hostSpec = HostSpec{};
};

/** Aggregated result of a system-level run. */
struct SystemReport
{
    double makespan = 0.0;          ///< slowest instance's makespan
    std::uint64_t inferences = 0;
    double systemWatts = 0.0;       ///< all instances + shared host
    double hostDuty = 0.0;          ///< combined host capacity fraction
    std::vector<SimReport> perInstance;

    /** @name Degraded-mode accounting (defaults when fault-free) @{ */
    std::uint32_t failedInstances = 0;  ///< instances killed mid-run
    std::uint64_t reshardedInferences = 0; ///< work moved to survivors
    double reshardSeconds = 0.0;    ///< recovery-wave tail duration
    /**
     * Throughput kept relative to the same campaign without instance
     * deaths: healthy makespan / degraded makespan. 1.0 when no
     * instance died.
     */
    double throughputRetention = 1.0;
    /** Link-fault counters summed over instances and recovery wave. */
    std::uint64_t linkTransferErrors = 0;
    std::uint64_t linkTimeouts = 0;
    std::uint64_t taskRetries = 0;
    /**
     * Per-inference completion times (size == inferences), instance-
     * major: surviving shards report their simulated per-thread finish
     * times; a killed shard contributes its pre-death completions under
     * the same uniform-progress model that sizes the re-shard; re-
     * sharded inferences land at wave start + wave completion time. The
     * maximum entry equals the makespan — the resharded-tail regression
     * test pins both that and the count.
     */
    std::vector<double> completionSeconds;
    /** @} */

    double inferencesPerSecond() const;
    double efficiency() const; ///< inferences/s/W
};

/** Batch-sharding system simulator. */
class ProseSystem
{
  public:
    explicit ProseSystem(SystemConfig config = SystemConfig{});

    /**
     * Shard `shape.batch` as evenly as possible across the instances
     * and simulate each; the system finishes when the slowest instance
     * does. Host softmax throughput is divided among active instances.
     */
    SystemReport run(const BertShape &shape) const;

    /**
     * Same sharded run under a fault campaign. Each instance's
     * simulator samples the campaign's link faults and array kills;
     * instances the campaign kills mid-run lose their incomplete
     * inferences, which are re-sharded across the surviving instances
     * as a recovery wave once the death is detected. The report's
     * throughputRetention quantifies the loss. A null injector
     * reproduces run(shape) exactly.
     */
    SystemReport run(const BertShape &shape, FaultInjector *injector,
                     const RetryPolicy &retry = RetryPolicy{}) const;

    const SystemConfig &config() const { return config_; }

  private:
    SystemConfig config_;
};

} // namespace prose

#endif // PROSE_ACCEL_SYSTEM_HH
