#include "prose_config.hh"

#include <sstream>
#include <tuple>

#include "common/logging.hh"

namespace prose {

namespace {

/** Build a config from (type, dim, count) triples. */
ProseConfig
makeConfig(std::string name,
           std::vector<std::tuple<ArrayType, std::uint32_t,
                                  std::uint32_t>> mix,
           LanePartition lanes)
{
    ProseConfig config;
    config.name = std::move(name);
    config.lanes = lanes;
    for (const auto &[type, dim, count] : mix) {
        ArrayGroupSpec group;
        switch (type) {
          case ArrayType::M:
            group.geometry = ArrayGeometry::mType(dim);
            break;
          case ArrayType::G:
            group.geometry = ArrayGeometry::gType(dim);
            break;
          case ArrayType::E:
            group.geometry = ArrayGeometry::eType(dim);
            break;
        }
        group.count = count;
        config.groups.push_back(group);
    }
    config.validate();
    return config;
}

} // namespace

std::uint64_t
ProseConfig::totalPes() const
{
    std::uint64_t total = 0;
    for (const auto &group : groups)
        total += group.count * group.geometry.peCount();
    return total;
}

std::uint32_t
ProseConfig::arrayCount(ArrayType type) const
{
    std::uint32_t count = 0;
    for (const auto &group : groups)
        if (group.geometry.type == type)
            count += group.count;
    return count;
}

std::vector<ArrayGeometry>
ProseConfig::instances() const
{
    std::vector<ArrayGeometry> out;
    for (const auto &group : groups)
        for (std::uint32_t i = 0; i < group.count; ++i)
            out.push_back(group.geometry);
    return out;
}

void
ProseConfig::validate() const
{
    PROSE_ASSERT(arrayCount(ArrayType::M) > 0 &&
                     arrayCount(ArrayType::G) > 0 &&
                     arrayCount(ArrayType::E) > 0,
                 "every array type is needed for functionality (", name,
                 ")");
    PROSE_ASSERT(lanes.total() == link.lanes,
                 "lane partition does not cover the link in ", name);
    link.validate();
    streaming.validate();
    PROSE_ASSERT(threads > 0, "need at least one software thread");
}

std::string
ProseConfig::describe() const
{
    std::ostringstream os;
    os << name << " [";
    for (std::size_t i = 0; i < groups.size(); ++i) {
        if (i)
            os << ", ";
        os << groups[i].count << "x " << groups[i].geometry.describe();
    }
    os << "] " << totalPes() << " PEs, " << link.name << " ("
       << lanes.describe() << ", " << streaming.describe() << "), "
       << threads << " threads"
       << (partialInputBuffer ? ", +InBuf" : "");
    return os.str();
}

ProseConfig
ProseConfig::bestPerf()
{
    return makeConfig("BestPerf",
                      { { ArrayType::M, 64, 2 },
                        { ArrayType::G, 16, 10 },
                        { ArrayType::E, 16, 22 } },
                      LanePartition{ 3, 1, 2 });
}

ProseConfig
ProseConfig::mostEfficient()
{
    return makeConfig("MostEfficient",
                      { { ArrayType::M, 64, 2 },
                        { ArrayType::G, 32, 3 },
                        { ArrayType::E, 16, 20 } },
                      LanePartition{ 3, 1, 2 });
}

ProseConfig
ProseConfig::homogeneous()
{
    return makeConfig("Homogeneous",
                      { { ArrayType::M, 64, 2 },
                        { ArrayType::G, 64, 1 },
                        { ArrayType::E, 64, 1 } },
                      LanePartition{ 3, 1, 2 });
}

ProseConfig
ProseConfig::bestPerfPlus()
{
    ProseConfig config =
        makeConfig("BestPerf+",
                   { { ArrayType::M, 64, 2 },
                     { ArrayType::G, 32, 5 },
                     { ArrayType::E, 32, 7 } },
                   LanePartition{ 3, 1, 2 });
    return config;
}

ProseConfig
ProseConfig::mostEfficientPlus()
{
    ProseConfig config = bestPerfPlus();
    config.name = "MostEfficient+";
    return config;
}

ProseConfig
ProseConfig::homogeneousPlus()
{
    return makeConfig("Homogeneous+",
                      { { ArrayType::M, 64, 2 },
                        { ArrayType::G, 64, 1 },
                        { ArrayType::E, 64, 2 } },
                      LanePartition{ 3, 1, 2 });
}

ProseConfig
ProseConfig::fourBy64Homogeneous()
{
    return makeConfig("4x64x64-Homogeneous",
                      { { ArrayType::M, 64, 2 },
                        { ArrayType::G, 64, 1 },
                        { ArrayType::E, 64, 1 } },
                      LanePartition{ 2, 2, 2 });
}

} // namespace prose
