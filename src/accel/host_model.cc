#include "host_model.hh"

#include "common/logging.hh"

namespace prose {

HostModel::HostModel(HostSpec spec)
    : spec_(spec)
{
    PROSE_ASSERT(spec_.elemThroughput > 0.0 && spec_.slots > 0,
                 "host spec needs positive throughput and slots");
}

double
HostModel::softmaxSeconds(std::uint64_t elems) const
{
    // Two streaming passes (sum, then divide) over the exp results,
    // ganged across several worker slots.
    const double rate = spec_.slotThroughput() * spec_.softmaxGang;
    return spec_.taskOverheadSeconds +
           2.0 * static_cast<double>(elems) / rate;
}

double
HostModel::hostOpSeconds(const Op &op) const
{
    const double elems = static_cast<double>(op.outputElems());
    double passes = 1.0;
    switch (op.kind) {
      case OpKind::LayerNorm:
        // mean, variance, normalize+affine.
        passes = 3.0;
        break;
      case OpKind::Embed:
        // Gather: one read + one write pass.
        passes = 2.0;
        break;
      case OpKind::Transpose:
        // Strided copy; charge two passes for the poor locality.
        passes = 2.0;
        break;
      case OpKind::SoftmaxHost:
        passes = 2.0;
        break;
      default:
        // Any op can fall back to the host at one pass per element;
        // the scheduler only routes Other-class ops here in practice.
        passes = 2.0;
        break;
    }
    return spec_.taskOverheadSeconds +
           passes * elems / spec_.slotThroughput();
}

} // namespace prose
