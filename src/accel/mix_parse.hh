/**
 * @file
 * Text parsing of ProSE configuration mixes and lane partitions, so the
 * CLI tools can drive arbitrary designs:
 *
 *   mix:   "M64x2,G16x10,E16x22"   (type, array dim, count; ',' sep)
 *   lanes: "3,1,2"                 (M, G, E lane counts)
 */

#ifndef PROSE_ACCEL_MIX_PARSE_HH
#define PROSE_ACCEL_MIX_PARSE_HH

#include <string>

#include "prose_config.hh"

namespace prose {

/**
 * Parse a mix specification into array groups. Fatal on malformed
 * input (user error). Every type may appear at most once; missing
 * types fail ProseConfig::validate() later, with a clear message.
 */
std::vector<ArrayGroupSpec> parseMixSpec(const std::string &spec);

/** Parse an "M,G,E" lane partition. Fatal on malformed input. */
LanePartition parseLaneSpec(const std::string &spec);

/**
 * Build a full ProseConfig from mix/lane strings on a link. The name
 * is the mix spec itself.
 */
ProseConfig configFromSpec(const std::string &mix_spec,
                           const std::string &lane_spec,
                           const LinkSpec &link);

} // namespace prose

#endif // PROSE_ACCEL_MIX_PARSE_HH
