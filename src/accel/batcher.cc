#include "batcher.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace prose {

double
BatchPlan::paddingOverhead() const
{
    return paddedTokens > 0
               ? 1.0 - static_cast<double>(realTokens) /
                           static_cast<double>(paddedTokens)
               : 0.0;
}

std::uint64_t
bucketForTokens(std::uint64_t tokens,
                const std::vector<std::uint64_t> &buckets)
{
    PROSE_ASSERT(!buckets.empty(), "batcher needs buckets");
    for (std::size_t i = 1; i < buckets.size(); ++i)
        PROSE_ASSERT(buckets[i] > buckets[i - 1],
                     "buckets must be strictly increasing");
    for (std::uint64_t candidate : buckets)
        if (tokens <= candidate)
            return candidate;
    // Overlong sequences truncate to the last bucket (the tokenizer's
    // behavior).
    return buckets.back();
}

BatchPlan
planBatches(const std::vector<std::size_t> &residue_lengths,
            const BatcherSpec &spec)
{
    PROSE_ASSERT(!spec.buckets.empty(), "batcher needs buckets");
    PROSE_ASSERT(spec.maxBatch > 0, "batcher needs a positive maxBatch");

    // Group token lengths (residues + CLS + SEP) per bucket.
    std::map<std::uint64_t, std::vector<std::uint64_t>> per_bucket;
    for (std::size_t residues : residue_lengths) {
        std::uint64_t tokens = static_cast<std::uint64_t>(residues) + 2;
        const std::uint64_t bucket =
            bucketForTokens(tokens, spec.buckets);
        tokens = std::min(tokens, bucket);
        per_bucket[bucket].push_back(tokens);
    }

    BatchPlan plan;
    plan.totalSequences = residue_lengths.size();
    for (auto &[bucket, lengths] : per_bucket) {
        for (std::size_t begin = 0; begin < lengths.size();
             begin += spec.maxBatch) {
            const std::size_t end =
                std::min(lengths.size(), begin + spec.maxBatch);
            LengthBatch batch;
            batch.paddedLength = bucket;
            batch.sequences = end - begin;
            for (std::size_t i = begin; i < end; ++i)
                batch.realTokens += lengths[i];
            plan.realTokens += batch.realTokens;
            plan.paddedTokens += batch.paddedLength * batch.sequences;
            plan.batches.push_back(batch);
        }
    }
    return plan;
}

double
simulateBatchPlan(const BatchPlan &plan, const ProseConfig &config,
                  const BertShape &model_shape)
{
    double total = 0.0;
    PerfSim sim(config);
    for (const LengthBatch &batch : plan.batches) {
        BertShape shape = model_shape;
        shape.batch = batch.sequences;
        shape.seqLen = batch.paddedLength;
        total += sim.run(shape).makespan;
    }
    return total;
}

} // namespace prose
