/**
 * @file
 * Host-accelerator interconnect model. ProSE streams everything over an
 * NVLink-class link whose lanes are statically partitioned among the
 * three systolic-array types (Section 4.2: 6 x 45 GB/s NVLink 2.0 lanes
 * at a conservative 90% of peak). The evaluation sweeps NVLink 2.0/3.0
 * at 80% / 90% achievable rates plus an infinite-bandwidth limit
 * (Figures 18-20).
 */

#ifndef PROSE_ACCEL_LINK_MODEL_HH
#define PROSE_ACCEL_LINK_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "systolic/array_config.hh"

namespace prose {

/**
 * How a task's transfers overlap with its compute (docs/LINK_MODEL.md).
 */
enum class StreamMode : std::uint8_t
{
    /** Pessimistic bound: stream-in, compute, stream-out in series. */
    Serialized,
    /**
     * Per-array-type prefetch queues stream the next tile while the
     * current one computes: steady state runs at the slowest stage,
     * plus a fill/drain ramp of one chunk per non-bounding stage.
     */
    DoubleBuffered,
    /** Infinite buffering reference: max(compute, in, out) exactly. */
    Ideal,
};

const char *toString(StreamMode mode);

/** Streaming/DMA knobs of one ProSE instance (docs/LINK_MODEL.md). */
struct StreamSpec
{
    StreamMode mode = StreamMode::DoubleBuffered;

    /**
     * Chunks resident per direction in the per-type prefetch queue.
     * Depth does not change an uncontended task's duration (steady
     * state is stage-bound either way); it bounds how much shared-link
     * arbitration jitter the prefetcher can hide before the array
     * stalls: up to (depth - 1) chunk-compute times.
     */
    std::uint32_t bufferDepth = 2;

    /** Panics on inconsistent knobs (depth 0, double-buffer depth 1). */
    void validate() const;

    std::string describe() const;
};

/**
 * On-link payload encoding. Both schemes are modeled (closed-form wire
 * bytes), never functional: the simulated values are untouched, only
 * the modeled transfer time shrinks. See docs/LINK_MODEL.md for the
 * byte model and LinkSpec::zeroFraction / deltaHitFraction for the
 * workload statistics that parameterize it.
 */
enum class LinkCompression : std::uint8_t
{
    None,    ///< raw bf16 words
    ZeroRun, ///< zero words collapse into run tokens (zero-skip reuse)
    Delta,   ///< words sharing the predecessor's high byte send 1 byte
};

const char *toString(LinkCompression compression);

/** One host-accelerator link. */
struct LinkSpec
{
    std::string name = "NVLink2-90";
    double totalBytesPerSecond = gbps(270.0);
    std::uint32_t lanes = 6;

    /**
     * Time for the link layer to declare a hung transfer dead and hand
     * it back for retry (watchdog granularity). Charged once per
     * injected timeout fault by the performance simulator.
     */
    double timeoutDetectSeconds = 50e-6;

    /** @name On-link compression model @{ */
    LinkCompression compression = LinkCompression::None;
    /** Share of streamed bf16 words that quantize to +-0 (ZeroRun) —
     *  the sparsity the matmul zero-skip fast path exploits, showing
     *  up again on the wire. A workload statistic, swept by the DSE;
     *  the default is a conservative quarter. */
    double zeroFraction = 0.25;
    /** Share of words whose high byte (sign + exponent + mantissa MSB)
     *  matches their predecessor's (Delta). */
    double deltaHitFraction = 0.5;
    /** @} */

    /** Bandwidth of one lane. */
    double laneBytesPerSecond() const
    {
        return totalBytesPerSecond / lanes;
    }

    /**
     * The compute-bound limit: stream times are treated as exactly
     * zero, which is what keeps the infinite-link point bit-identical
     * across every StreamMode (docs/LINK_MODEL.md).
     */
    bool isInfinite() const { return totalBytesPerSecond >= 1e17; }

    /**
     * Modeled wire bytes for a logical payload under this link's
     * compression. Deterministic closed form; never exceeds the
     * logical size (encoders fall back to passthrough framing).
     */
    std::uint64_t wireBytes(std::uint64_t logical_bytes) const;

    /** wire/logical ratio of the closed-form model (1.0 for None). */
    double compressionRatio() const;

    /** Panics on out-of-range compression statistics. */
    void validate() const;

    /** One-line human-readable summary. */
    std::string describe() const;

    /** NVLink 2.0 at 80% achievable: 240 GB/s over 6 lanes. */
    static LinkSpec nvlink2At80();
    /** NVLink 2.0 at 90% achievable: 270 GB/s over 6 lanes. */
    static LinkSpec nvlink2At90();
    /** NVLink 3.0 at 80% achievable: 480 GB/s over 12 lanes. */
    static LinkSpec nvlink3At80();
    /** NVLink 3.0 at 90% achievable: 540 GB/s over 12 lanes. */
    static LinkSpec nvlink3At90();
    /** Idealized infinite link (compute-bound limit). */
    static LinkSpec infinite();

    /** An arbitrary bandwidth with the NVLink 2.0 lane count. */
    static LinkSpec custom(double gigabytes_per_second);

    /** The five link points of Figures 18/19, in paper order. */
    static std::vector<LinkSpec> paperSweep();
};

/** Static split of link lanes across the three array types. */
struct LanePartition
{
    std::uint32_t mLanes = 2;
    std::uint32_t gLanes = 1;
    std::uint32_t eLanes = 3;

    std::uint32_t total() const { return mLanes + gLanes + eLanes; }

    /** Lanes feeding one array type. */
    std::uint32_t lanesFor(ArrayType type) const;

    /** Aggregate bandwidth available to one array type. */
    double bandwidthFor(ArrayType type, const LinkSpec &link) const;

    std::string describe() const;

    /**
     * Every partition of `lanes` into three positive shares (each type
     * must be fed), for the DSE sweep.
     */
    static std::vector<LanePartition> enumerate(std::uint32_t lanes);
};

} // namespace prose

#endif // PROSE_ACCEL_LINK_MODEL_HH
