/**
 * @file
 * Host-accelerator interconnect model. ProSE streams everything over an
 * NVLink-class link whose lanes are statically partitioned among the
 * three systolic-array types (Section 4.2: 6 x 45 GB/s NVLink 2.0 lanes
 * at a conservative 90% of peak). The evaluation sweeps NVLink 2.0/3.0
 * at 80% / 90% achievable rates plus an infinite-bandwidth limit
 * (Figures 18-20).
 */

#ifndef PROSE_ACCEL_LINK_MODEL_HH
#define PROSE_ACCEL_LINK_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "systolic/array_config.hh"

namespace prose {

/** One host-accelerator link. */
struct LinkSpec
{
    std::string name = "NVLink2-90";
    double totalBytesPerSecond = gbps(270.0);
    std::uint32_t lanes = 6;

    /**
     * Time for the link layer to declare a hung transfer dead and hand
     * it back for retry (watchdog granularity). Charged once per
     * injected timeout fault by the performance simulator.
     */
    double timeoutDetectSeconds = 50e-6;

    /** Bandwidth of one lane. */
    double laneBytesPerSecond() const
    {
        return totalBytesPerSecond / lanes;
    }

    /** One-line human-readable summary. */
    std::string describe() const;

    /** NVLink 2.0 at 80% achievable: 240 GB/s over 6 lanes. */
    static LinkSpec nvlink2At80();
    /** NVLink 2.0 at 90% achievable: 270 GB/s over 6 lanes. */
    static LinkSpec nvlink2At90();
    /** NVLink 3.0 at 80% achievable: 480 GB/s over 12 lanes. */
    static LinkSpec nvlink3At80();
    /** NVLink 3.0 at 90% achievable: 540 GB/s over 12 lanes. */
    static LinkSpec nvlink3At90();
    /** Idealized infinite link (compute-bound limit). */
    static LinkSpec infinite();

    /** An arbitrary bandwidth with the NVLink 2.0 lane count. */
    static LinkSpec custom(double gigabytes_per_second);

    /** The five link points of Figures 18/19, in paper order. */
    static std::vector<LinkSpec> paperSweep();
};

/** Static split of link lanes across the three array types. */
struct LanePartition
{
    std::uint32_t mLanes = 2;
    std::uint32_t gLanes = 1;
    std::uint32_t eLanes = 3;

    std::uint32_t total() const { return mLanes + gLanes + eLanes; }

    /** Lanes feeding one array type. */
    std::uint32_t lanesFor(ArrayType type) const;

    /** Aggregate bandwidth available to one array type. */
    double bandwidthFor(ArrayType type, const LinkSpec &link) const;

    std::string describe() const;

    /**
     * Every partition of `lanes` into three positive shares (each type
     * must be fed), for the DSE sweep.
     */
    static std::vector<LanePartition> enumerate(std::uint32_t lanes);
};

} // namespace prose

#endif // PROSE_ACCEL_LINK_MODEL_HH
