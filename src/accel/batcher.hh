/**
 * @file
 * Length-bucketed batching of variable-length proteins. The paper
 * evaluates fixed-length batches, but a deployed discovery engine
 * ingests whole proteomes whose lengths span 30–2000+ residues; padding
 * every sequence to the longest one wastes most of the accelerator.
 * The batcher groups sequences into power-of-two-ish length buckets,
 * pads within the bucket, and reports the padding overhead — then the
 * per-bucket batches run through the performance simulator like any
 * fixed-length workload.
 */

#ifndef PROSE_ACCEL_BATCHER_HH
#define PROSE_ACCEL_BATCHER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "perf_sim.hh"

namespace prose {

/** Batching policy. */
struct BatcherSpec
{
    /** Bucket boundaries (padded sequence length includes CLS/SEP).
     *  Sequences longer than the last bucket are truncated to it. */
    std::vector<std::uint64_t> buckets{ 64, 128, 256, 512, 1024, 2048 };
    /** Max sequences per simulated batch within one bucket. */
    std::uint64_t maxBatch = 128;
};

/** One bucketed batch ready for simulation. */
struct LengthBatch
{
    std::uint64_t paddedLength = 0; ///< bucket length (tokens)
    std::uint64_t sequences = 0;    ///< sequences in the batch
    std::uint64_t realTokens = 0;   ///< non-pad tokens (incl. CLS/SEP)

    /** Tokens of padding introduced by the bucket. */
    std::uint64_t padTokens() const
    {
        return paddedLength * sequences - realTokens;
    }
};

/** Result of batching one workload. */
struct BatchPlan
{
    std::vector<LengthBatch> batches;
    std::uint64_t totalSequences = 0;
    std::uint64_t realTokens = 0;
    std::uint64_t paddedTokens = 0;

    /** Fraction of streamed tokens that are padding. */
    double paddingOverhead() const;
};

/**
 * Padded length of the bucket that serves a `tokens`-token sequence:
 * the smallest bucket >= tokens, or the last bucket for overlong
 * sequences (which truncate, matching the tokenizer). Shared by the
 * closed-loop planner below and the open-loop dynamic batcher in
 * src/serve. Buckets must be non-empty and strictly increasing.
 */
std::uint64_t bucketForTokens(std::uint64_t tokens,
                              const std::vector<std::uint64_t> &buckets);

/** Bucket a list of raw protein lengths (residues, pre-CLS/SEP). */
BatchPlan planBatches(const std::vector<std::size_t> &residue_lengths,
                      const BatcherSpec &spec = BatcherSpec{});

/**
 * Simulate a batch plan on a ProSE configuration: each batch runs as a
 * fixed-length workload; batches execute back to back (the engine is
 * saturated by one plan at a time).
 *
 * @return total seconds for the whole plan
 */
double simulateBatchPlan(const BatchPlan &plan, const ProseConfig &config,
                         const BertShape &model_shape);

} // namespace prose

#endif // PROSE_ACCEL_BATCHER_HH
