#include "mix_parse.hh"

#include <cctype>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace prose {

namespace {

/** Parse a non-negative integer; fatal with context otherwise (a
 *  digit string too large for 32 bits is malformed input, not an
 *  exception escaping to std::terminate). */
std::uint32_t
parseCount(const std::string &text, const std::string &context)
{
    std::uint32_t value = 0;
    if (!parseU32(text, value))
        fatal("'", text, "' is not an in-range number in ", context);
    return value;
}

/**
 * An array dimension or group count beyond any plausible hardware is
 * malformed input: downstream consumers size dim^2 accumulator files
 * and per-instance vectors from these fields, so a fuzzer (or a typo)
 * writing "M999999999x1" must die here with a message, not inside an
 * allocator.
 */
constexpr std::uint32_t kMaxArrayDim = 4096;
constexpr std::uint32_t kMaxGroupCount = 65536;

} // namespace

std::vector<ArrayGroupSpec>
parseMixSpec(const std::string &spec)
{
    std::vector<ArrayGroupSpec> groups;
    for (const std::string &raw : split(spec, ',')) {
        const std::string part = trim(raw);
        if (part.empty())
            fatal("empty group in mix spec '", spec, "'");
        const char type_char =
            static_cast<char>(std::toupper(part.front()));
        const auto x_pos = part.find_first_of("xX", 1);
        if (x_pos == std::string::npos)
            fatal("group '", part, "' must look like M64x2");
        const std::uint32_t dim =
            parseCount(part.substr(1, x_pos - 1), "mix group dim");
        const std::uint32_t count =
            parseCount(part.substr(x_pos + 1), "mix group count");
        if (dim == 0)
            fatal("group '", part, "' has a zero array dimension");
        if (count == 0)
            fatal("group '", part, "' has a zero count");
        if (dim > kMaxArrayDim)
            fatal("group '", part, "' array dimension ", dim,
                  " exceeds the ", kMaxArrayDim, " sanity bound");
        if (count > kMaxGroupCount)
            fatal("group '", part, "' count ", count, " exceeds the ",
                  kMaxGroupCount, " sanity bound");

        ArrayGroupSpec group;
        switch (type_char) {
          case 'M':
            group.geometry = ArrayGeometry::mType(dim);
            break;
          case 'G':
            group.geometry = ArrayGeometry::gType(dim);
            break;
          case 'E':
            group.geometry = ArrayGeometry::eType(dim);
            break;
          default:
            fatal("unknown array type '", type_char,
                  "' in mix group '", part, "' (use M, G, or E)");
        }
        group.count = count;
        for (const ArrayGroupSpec &existing : groups)
            if (existing.geometry.type == group.geometry.type)
                fatal("type ", toString(group.geometry.type),
                      " appears twice in mix spec '", spec, "'");
        groups.push_back(group);
    }
    if (groups.empty())
        fatal("empty mix spec");
    return groups;
}

LanePartition
parseLaneSpec(const std::string &spec)
{
    const auto parts = split(spec, ',');
    if (parts.size() != 3)
        fatal("lane spec '", spec, "' must be three numbers M,G,E");
    LanePartition lanes;
    lanes.mLanes = parseCount(trim(parts[0]), "lane spec");
    lanes.gLanes = parseCount(trim(parts[1]), "lane spec");
    lanes.eLanes = parseCount(trim(parts[2]), "lane spec");
    if (lanes.mLanes == 0 || lanes.gLanes == 0 || lanes.eLanes == 0)
        fatal("every type needs at least one lane in '", spec, "'");
    return lanes;
}

ProseConfig
configFromSpec(const std::string &mix_spec, const std::string &lane_spec,
               const LinkSpec &link)
{
    ProseConfig config;
    config.name = mix_spec;
    config.groups = parseMixSpec(mix_spec);
    config.link = link;
    config.lanes = parseLaneSpec(lane_spec);
    // Semantic errors a user can spell in the two strings must be
    // user-error fatal()s with a parse-level message; validate()'s
    // PROSE_ASSERTs abort(), which is reserved for simulator bugs.
    if (config.arrayCount(ArrayType::M) == 0 ||
        config.arrayCount(ArrayType::G) == 0 ||
        config.arrayCount(ArrayType::E) == 0)
        fatal("mix spec '", mix_spec, "' needs at least one array of "
              "each type M, G, and E");
    if (config.lanes.total() != link.lanes)
        fatal("lane spec '", lane_spec, "' partitions ",
              config.lanes.total(), " lanes but the ", link.name,
              " link has ", link.lanes);
    config.validate();
    return config;
}

} // namespace prose
