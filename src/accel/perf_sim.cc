#include "perf_sim.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "common/logging.hh"

namespace prose {

namespace {

/** Campaign site code of an array type ('M', 'G', 'E'). */
char
typeCode(ArrayType type)
{
    return toString(type)[0];
}

/** Expand per-thread finish times into per-inference completion times:
 *  every sequence of a thread's slice finishes when the thread drains. */
void
expandInferenceEnds(SimReport &report,
                    const std::vector<std::uint64_t> &shares)
{
    PROSE_ASSERT(shares.size() == report.threadFinishSeconds.size(),
                 "thread share/finish mismatch");
    report.inferenceEndSeconds.clear();
    report.inferenceEndSeconds.reserve(report.inferences);
    for (std::size_t t = 0; t < shares.size(); ++t)
        report.inferenceEndSeconds.insert(
            report.inferenceEndSeconds.end(), shares[t],
            report.threadFinishSeconds[t]);
    PROSE_ASSERT(report.inferenceEndSeconds.size() == report.inferences,
                 "inference completion times do not cover the batch");
}

} // namespace

double
RetryPolicy::delayFor(std::uint32_t retry) const
{
    return backoffSeconds * std::pow(backoffFactor, retry);
}

ArrayType
arrayTypeFor(DataflowKind kind)
{
    switch (kind) {
      case DataflowKind::Dataflow1:
        return ArrayType::M;
      case DataflowKind::Dataflow2:
        return ArrayType::G;
      case DataflowKind::Dataflow3:
        return ArrayType::E;
      case DataflowKind::Host:
        break;
    }
    panic("host task has no array type");
}

std::size_t
typeIndex(ArrayType type)
{
    switch (type) {
      case ArrayType::M:
        return 0;
      case ArrayType::G:
        return 1;
      case ArrayType::E:
        return 2;
    }
    return 0;
}

double
SimReport::inferencesPerSecond() const
{
    return makespan > 0.0 ? static_cast<double>(inferences) / makespan
                          : 0.0;
}

double
SimReport::utilization(ArrayType type) const
{
    const std::size_t idx = typeIndex(type);
    if (makespan <= 0.0 || typeCounts[idx] == 0)
        return 0.0;
    return typeBusySeconds[idx] / (makespan * typeCounts[idx]);
}

double
SimReport::achievedFlops() const
{
    return makespan > 0.0 ? totalFlops / makespan : 0.0;
}

PerfSim::PerfSim(ProseConfig config)
    : PerfSim(std::move(config), TimingModel{})
{
    timing_ = TimingModel(config_.partialInputBuffer);
}

PerfSim::PerfSim(ProseConfig config, TimingModel timing, HostModel host,
                 SimOptions options)
    : config_(std::move(config)), timing_(timing), host_(host),
      options_(options)
{
    config_.validate();
}

PerfSim::TaskSeconds
PerfSim::accelTaskSeconds(const DataflowTask &task,
                          const ArrayGeometry &geometry,
                          std::uint32_t pool_count, double bandwidth,
                          TaskCost &cost_out) const
{
    cost_out = timing_.costTask(task, geometry);
    TaskSeconds seconds;
    // Output tiles are independent, so the pool's arrays split them
    // evenly; compute time divides by the pool size while the stream
    // times see the pool's aggregate lane share.
    seconds.computeSeconds =
        cost_out.computeSeconds(geometry) / pool_count;
    seconds.wireBytesIn = config_.link.wireBytes(cost_out.bytesIn);
    seconds.wireBytesOut = config_.link.wireBytes(cost_out.bytesOut);
    // The infinite link is the compute-bound limit: its stream stages
    // are exactly zero, which collapses every StreamMode to the same
    // bit-identical duration (docs/LINK_MODEL.md).
    if (!config_.link.isInfinite()) {
        seconds.streamInSeconds =
            static_cast<double>(seconds.wireBytesIn) / bandwidth;
        seconds.streamOutSeconds =
            static_cast<double>(seconds.wireBytesOut) / bandwidth;
    }
    const double compute = seconds.computeSeconds;
    const double stream_in = seconds.streamInSeconds;
    const double stream_out = seconds.streamOutSeconds;
    const double bound = std::max({ compute, stream_in, stream_out });
    switch (config_.streaming.mode) {
      case StreamMode::Serialized:
        seconds.arraySeconds = stream_in + compute + stream_out;
        break;
      case StreamMode::Ideal:
        seconds.arraySeconds = bound;
        seconds.prefetchSlackSeconds = compute;
        break;
      case StreamMode::DoubleBuffered: {
        // Transfers pipeline with compute at output-tile granularity:
        // steady state runs at the slowest stage; each non-bounding
        // stage contributes one chunk of fill/drain ramp. With zero
        // stream stages the ramp term is exactly 0.0, so the infinite
        // link reproduces the ideal duration bit-for-bit.
        const double chunks = static_cast<double>(
            std::max<std::uint64_t>(1, cost_out.tiles));
        seconds.fillSeconds = stream_in / chunks;
        seconds.drainSeconds = stream_out / chunks;
        seconds.arraySeconds =
            bound + (stream_in + compute + stream_out - bound) / chunks;
        seconds.prefetchSlackSeconds = std::min(
            compute,
            static_cast<double>(config_.streaming.bufferDepth - 1) *
                (compute / chunks));
        break;
      }
    }
    if (cost_out.hostSoftmaxElems > 0) {
        // Dataflow 3 serializes the issuing thread through the host
        // softmax between its two BMMs, but no accumulator state is
        // live during the trip, so the array itself can serve other
        // threads meanwhile.
        seconds.threadExtraSeconds =
            host_.softmaxSeconds(cost_out.hostSoftmaxElems);
    }
    return seconds;
}

PerfSim::TenantLoad
PerfSim::sliceShape(const BertShape &shape) const
{
    PROSE_ASSERT(shape.batch > 0, "empty batch");
    // Slice the batch across threads as evenly as possible; threads
    // beyond the batch size stay idle.
    TenantLoad load;
    load.inferences = shape.batch;
    const std::uint64_t used_threads =
        std::min<std::uint64_t>(config_.threads, shape.batch);
    DataflowBuilder builder;
    for (std::uint64_t t = 0; t < used_threads; ++t) {
        BertShape slice = shape;
        slice.batch = shape.batch / used_threads +
                      (t < shape.batch % used_threads ? 1 : 0);
        if (slice.batch == 0)
            continue;
        load.shares.push_back(slice.batch);
        load.threadTasks.push_back(
            builder.build(synthesizeBertTrace(slice)));
    }
    return load;
}

SimReport
PerfSim::run(const BertShape &shape) const
{
    std::vector<TenantLoad> tenants;
    tenants.push_back(sliceShape(shape));
    SimReport report = runTasksShared(tenants, nullptr);
    report.inferences = shape.batch;
    expandInferenceEnds(report, tenants[0].shares);
    return report;
}

SimReport
PerfSim::runShared(const std::vector<BertShape> &tenant_shapes,
                   std::vector<SimReport> *per_tenant) const
{
    PROSE_ASSERT(!tenant_shapes.empty(), "no tenants to simulate");
    std::vector<TenantLoad> tenants;
    tenants.reserve(tenant_shapes.size());
    for (const BertShape &shape : tenant_shapes)
        tenants.push_back(sliceShape(shape));
    std::vector<SimReport> locals;
    SimReport report = runTasksShared(tenants, &locals);
    report.inferences = 0;
    report.inferenceEndSeconds.clear();
    for (std::size_t t = 0; t < tenants.size(); ++t) {
        locals[t].inferences = tenants[t].inferences;
        expandInferenceEnds(locals[t], tenants[t].shares);
        report.inferences += tenants[t].inferences;
        report.inferenceEndSeconds.insert(
            report.inferenceEndSeconds.end(),
            locals[t].inferenceEndSeconds.begin(),
            locals[t].inferenceEndSeconds.end());
    }
    if (per_tenant)
        *per_tenant = std::move(locals);
    return report;
}

SimReport
PerfSim::runDecoder(const DecoderShape &shape) const
{
    PROSE_ASSERT(shape.batch > 0, "empty batch");
    const std::uint64_t used_threads =
        std::min<std::uint64_t>(config_.threads, shape.batch);
    std::vector<std::vector<DataflowTask>> thread_tasks;
    std::vector<std::uint64_t> shares;
    DataflowBuilder builder;
    for (std::uint64_t t = 0; t < used_threads; ++t) {
        DecoderShape slice = shape;
        slice.batch = shape.batch / used_threads +
                      (t < shape.batch % used_threads ? 1 : 0);
        if (slice.batch == 0)
            continue;
        shares.push_back(slice.batch);
        thread_tasks.push_back(
            builder.build(synthesizeDecoderTrace(slice)));
    }
    SimReport report = runTasks(thread_tasks);
    report.inferences = shape.batch;
    expandInferenceEnds(report, shares);
    return report;
}

SimReport
PerfSim::runTasks(
    const std::vector<std::vector<DataflowTask>> &thread_tasks) const
{
    std::vector<TenantLoad> tenants(1);
    tenants[0].threadTasks = thread_tasks;
    return runTasksShared(tenants, nullptr);
}

SimReport
PerfSim::runTasksShared(const std::vector<TenantLoad> &tenants,
                        std::vector<SimReport> *per_tenant) const
{
    PROSE_ASSERT(!tenants.empty(), "no tenants to schedule");
    const std::uint32_t tenant_count =
        static_cast<std::uint32_t>(tenants.size());

    SimReport report;
    report.tenantCount = tenant_count;
    std::vector<SimReport> locals(tenant_count);

    // Group the array instances into the three type pools. Within a
    // pool all arrays share one geometry (the configs we model never
    // mix sizes within a type), so the pool is characterized by its
    // geometry, its count, and its aggregate lane share. Every tenant
    // owns a private copy of the pools; only the link is shared.
    const std::vector<ArrayGeometry> instances = config_.instances();
    std::array<const ArrayGeometry *, 3> pool_geometry{};
    std::array<std::uint32_t, 3> pool_counts{};
    for (const auto &geom : instances) {
        const std::size_t idx = typeIndex(geom.type);
        ++pool_counts[idx];
        if (!pool_geometry[idx]) {
            pool_geometry[idx] = &geom;
        } else {
            PROSE_ASSERT(pool_geometry[idx]->dim == geom.dim,
                         "mixed array sizes within one type are not "
                         "supported by the pooled scheduler");
        }
    }
    for (std::size_t idx = 0; idx < 3; ++idx) {
        report.typeCounts[idx] = pool_counts[idx] * tenant_count;
        for (SimReport &local : locals)
            local.typeCounts[idx] = pool_counts[idx];
    }
    for (SimReport &local : locals)
        local.tenantCount = tenant_count;

    std::array<double, 3> pool_bw{};
    for (std::size_t idx = 0; idx < 3; ++idx) {
        const ArrayType type = idx == 0 ? ArrayType::M
                               : idx == 1 ? ArrayType::G
                                          : ArrayType::E;
        if (pool_counts[idx] > 0)
            pool_bw[idx] =
                config_.lanes.bandwidthFor(type, config_.link);
    }

    // Per-tenant pool availability, per-type I/O buffer mutexes, and
    // host slots; shared full-duplex per-type link channels. Channel
    // holds are placed so that within one tenant they always end by
    // the owning pool's free time — a single-tenant run never waits on
    // its own channels, which is what keeps runShared({x}) bit-exact
    // against run(x) (docs/LINK_MODEL.md).
    struct TenantResources
    {
        std::array<double, 3> poolFree{ { 0.0, 0.0, 0.0 } };
        std::array<double, 3> ioFree{ { 0.0, 0.0, 0.0 } };
        std::vector<double> hostFree;
    };
    std::vector<TenantResources> resources(tenant_count);
    for (TenantResources &r : resources)
        r.hostFree.assign(host_.spec().slots, 0.0);
    std::array<double, 3> link_in_free{ { 0.0, 0.0, 0.0 } };
    std::array<double, 3> link_out_free{ { 0.0, 0.0, 0.0 } };

    // Flat thread list, tenant-major: with one tenant the global index
    // equals the legacy thread index, so both schedulers reproduce the
    // single-tenant dispatch order exactly.
    struct ThreadRef
    {
        std::uint32_t tenant = 0;
        std::uint32_t local = 0;
    };
    std::vector<ThreadRef> flat;
    for (std::uint32_t ten = 0; ten < tenant_count; ++ten)
        for (std::size_t th = 0;
             th < tenants[ten].threadTasks.size(); ++th)
            flat.push_back({ ten, static_cast<std::uint32_t>(th) });

    struct ThreadState
    {
        std::size_t next = 0;
        double readyAt = 0.0;
    };
    std::vector<ThreadState> threads(flat.size());

    auto taskFor = [&](std::size_t g) -> const DataflowTask & {
        const ThreadRef &ref = flat[g];
        return tenants[ref.tenant].threadTasks[ref.local]
                                  [threads[g].next];
    };

    /** Earliest dispatch for a thread's next task under current
     *  resource state. */
    struct Candidate
    {
        double start = 0.0;
        int arrayIndex = -1;
        std::size_t hostSlot = 0;
    };
    auto candidateFor = [&](std::size_t g) {
        const ThreadState &ts = threads[g];
        const TenantResources &res = resources[flat[g].tenant];
        const DataflowTask &task = taskFor(g);
        Candidate c;
        if (task.kind == DataflowKind::Host) {
            const auto slot_it = std::min_element(res.hostFree.begin(),
                                                  res.hostFree.end());
            c.hostSlot = static_cast<std::size_t>(
                slot_it - res.hostFree.begin());
            c.start = std::max(ts.readyAt, *slot_it);
        } else {
            const ArrayType type = arrayTypeFor(task.kind);
            const std::size_t idx = typeIndex(type);
            PROSE_ASSERT(pool_counts[idx] > 0,
                         "no array provisioned for ",
                         toString(task.kind));
            c.arrayIndex = static_cast<int>(idx);
            c.start = std::max({ ts.readyAt, res.poolFree[idx],
                                 res.ioFree[idx] });
        }
        return c;
    };

    auto dispatch = [&](std::size_t g, const Candidate &c) {
        const double best_start = c.start;
        const int best_array = c.arrayIndex;
        const ThreadRef &ref = flat[g];
        ThreadState &ts = threads[g];
        TenantResources &res = resources[ref.tenant];
        SimReport &local = locals[ref.tenant];
        const DataflowTask &task = taskFor(g);
        double duration;
        double pool_end = 0.0;
        if (task.kind == DataflowKind::Host) {
            duration = host_.hostOpSeconds(task.ops.front());
            res.hostFree[c.hostSlot] = best_start + duration;
            report.hostBusySeconds += duration;
            local.hostBusySeconds += duration;
        } else {
            const std::size_t idx = static_cast<std::size_t>(best_array);
            const ArrayType type = pool_geometry[idx]->type;
            // Failover: tasks only ever map onto surviving pool
            // members, so a killed array degrades the pool's aggregate
            // compute rate instead of wedging the schedule.
            std::uint32_t alive = pool_counts[idx];
            if (options_.injector) {
                const std::uint32_t dead =
                    options_.injector->deadArrays(typeCode(type),
                                                  best_start);
                if (dead >= alive)
                    fatal("fault campaign killed every ",
                          toString(type), "-type array by t=",
                          best_start, "s; nothing left to fail over to");
                alive -= dead;
            }
            TaskCost cost;
            const TaskSeconds seconds = accelTaskSeconds(
                task, *pool_geometry[idx], alive, pool_bw[idx], cost);
            // Link-fault recovery: every faulted attempt charges its
            // detection cost (timeouts) plus exponential backoff and a
            // full re-stream/re-run of the task.
            double fault_extra = 0.0;
            if (options_.injector) {
                for (std::uint32_t attempt = 0;; ++attempt) {
                    const FaultInjector::LinkOutcome outcome =
                        options_.injector->sampleLinkTransfer(
                            typeCode(type));
                    if (!outcome.faulty())
                        break;
                    if (outcome.timeout) {
                        ++report.linkTimeouts;
                        fault_extra +=
                            config_.link.timeoutDetectSeconds;
                    } else {
                        ++report.linkTransferErrors;
                    }
                    if (attempt + 1 >= options_.retry.maxAttempts) {
                        ++report.abandonedTransfers;
                        break;
                    }
                    ++report.taskRetries;
                    fault_extra += options_.retry.delayFor(attempt) +
                                   seconds.arraySeconds;
                }
            }
            // Shared-link arbitration. The stream-in hold occupies its
            // channel from the task start; waiting on another tenant's
            // transfer only stalls the array once the prefetch queue's
            // slack — (depth - 1) chunk-compute times — is exhausted.
            double wait_in = 0.0;
            double stall_in = 0.0;
            if (seconds.streamInSeconds > 0.0) {
                const double in_start =
                    std::max(best_start, link_in_free[idx]);
                wait_in = in_start - best_start;
                link_in_free[idx] = in_start + seconds.streamInSeconds;
                stall_in = std::max(
                    0.0, wait_in - seconds.prefetchSlackSeconds);
            }
            const double occupancy =
                seconds.arraySeconds + fault_extra + stall_in;
            // The stream-out hold is the occupancy's tail: results
            // drain as the last chunks complete, and a busy out
            // channel extends the pool occupancy by the wait.
            double wait_out = 0.0;
            if (seconds.streamOutSeconds > 0.0) {
                const double nominal = best_start + occupancy -
                                       seconds.streamOutSeconds;
                const double out_start =
                    std::max(nominal, link_out_free[idx]);
                wait_out = out_start - nominal;
                link_out_free[idx] =
                    out_start + seconds.streamOutSeconds;
            }
            const double total_occupancy = occupancy + wait_out;
            duration = total_occupancy + seconds.threadExtraSeconds;
            // The dispatching thread holds the type's I/O buffer mutex
            // while it sets up the transfer; the pool is released as
            // soon as its occupancy ends (the host-softmax tail of a
            // Dataflow 3 only blocks the issuing thread).
            res.ioFree[idx] = best_start + options_.ioLockSeconds;
            res.poolFree[idx] = best_start + total_occupancy;
            pool_end = res.poolFree[idx];

            const double busy = total_occupancy * alive;
            report.typeBusySeconds[idx] += busy;
            local.typeBusySeconds[idx] += busy;
            report.retrySeconds += fault_extra;
            local.retrySeconds += fault_extra;
            report.bytesIn += cost.bytesIn;
            report.bytesOut += cost.bytesOut;
            local.bytesIn += cost.bytesIn;
            local.bytesOut += cost.bytesOut;
            report.wireBytesIn += seconds.wireBytesIn;
            report.wireBytesOut += seconds.wireBytesOut;
            local.wireBytesIn += seconds.wireBytesIn;
            local.wireBytesOut += seconds.wireBytesOut;
            report.fillSeconds += seconds.fillSeconds;
            report.drainSeconds += seconds.drainSeconds;
            local.fillSeconds += seconds.fillSeconds;
            local.drainSeconds += seconds.drainSeconds;
            report.linkWaitSeconds += wait_in + wait_out;
            local.linkWaitSeconds += wait_in + wait_out;
            report.prefetchStallSeconds += stall_in;
            local.prefetchStallSeconds += stall_in;
            report.hostBusySeconds += seconds.threadExtraSeconds;
            local.hostBusySeconds += seconds.threadExtraSeconds;
        }
        report.totalFlops += task.flops();
        local.totalFlops += task.flops();
        ++report.taskCount;
        ++local.taskCount;
        const double end = best_start + duration;
        ts.readyAt = end;
        ++ts.next;
        report.makespan = std::max(report.makespan, end);
        local.makespan = std::max(local.makespan, end);

        if (options_.recordSchedule) {
            ScheduledItem item;
            item.tenant = ref.tenant;
            item.thread = ref.local;
            item.kind = task.kind;
            item.sublayer = task.sublayer;
            item.layer = task.layer;
            item.arrayIndex = best_array;
            item.start = best_start;
            item.end = end;
            item.poolEnd = best_array >= 0 ? pool_end : end;
            report.schedule.push_back(item);
        }
    };

    auto tasksRemaining = [&](std::size_t g) {
        return threads[g].next <
               tenants[flat[g].tenant].threadTasks[flat[g].local].size();
    };

    if (options_.referenceScheduler) {
        // Reference next-event selection: O(threads) scan per dispatch,
        // kept as the differential baseline for the event queue below.
        const double inf = std::numeric_limits<double>::infinity();
        while (true) {
            double best_start = inf;
            std::size_t best_thread = 0;
            Candidate best;
            for (std::size_t g = 0; g < threads.size(); ++g) {
                if (!tasksRemaining(g))
                    continue;
                const Candidate c = candidateFor(g);
                if (c.start < best_start) {
                    best_start = c.start;
                    best_thread = g;
                    best = c;
                }
            }
            if (best_start == inf)
                break; // all threads drained
            dispatch(best_thread, best);
        }
    } else {
        // Lazy min-heap event queue keyed by (start, thread). Every
        // resource-free time (pool, I/O mutex, host slot, thread ready)
        // only moves forward, so a queued key is a lower bound on the
        // thread's true start: pop the minimum, recompute under current
        // state, re-queue if it moved, dispatch if it did not. The
        // (start, thread) lexicographic order reproduces the reference
        // scan's earliest-start / lowest-thread-index dispatch order
        // exactly, so both schedulers yield identical timestamps.
        using HeapEntry = std::pair<double, std::size_t>;
        std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                            std::greater<HeapEntry>>
            queue;
        for (std::size_t g = 0; g < threads.size(); ++g) {
            if (tasksRemaining(g))
                queue.emplace(candidateFor(g).start, g);
        }
        while (!queue.empty()) {
            const auto [bound, g] = queue.top();
            queue.pop();
            const Candidate c = candidateFor(g);
            if (c.start > bound) {
                queue.emplace(c.start, g); // stale lower bound
                continue;
            }
            dispatch(g, c);
            if (tasksRemaining(g))
                queue.emplace(candidateFor(g).start, g);
        }
    }

    report.threadFinishSeconds.reserve(threads.size());
    for (std::size_t g = 0; g < threads.size(); ++g) {
        report.threadFinishSeconds.push_back(threads[g].readyAt);
        locals[flat[g].tenant].threadFinishSeconds.push_back(
            threads[g].readyAt);
    }

    const double host_capacity =
        static_cast<double>(host_.spec().slots) * tenant_count;
    if (report.makespan > 0.0) {
        report.cpuDuty =
            std::min(1.0, report.hostBusySeconds /
                              (report.makespan * host_capacity));
    }
    for (SimReport &local : locals) {
        if (local.makespan > 0.0)
            local.cpuDuty = std::min(
                1.0, local.hostBusySeconds /
                         (local.makespan * host_.spec().slots));
    }
    if (options_.injector) {
        for (std::size_t idx = 0; idx < 3; ++idx) {
            if (report.typeCounts[idx] == 0)
                continue;
            const ArrayType type = idx == 0   ? ArrayType::M
                                   : idx == 1 ? ArrayType::G
                                              : ArrayType::E;
            report.deadArrays[idx] = std::min(
                report.typeCounts[idx],
                options_.injector->deadArrays(typeCode(type),
                                              report.makespan));
        }
    }
    if (per_tenant)
        *per_tenant = std::move(locals);
    return report;
}

} // namespace prose
