#include "perf_sim.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "common/logging.hh"

namespace prose {

namespace {

/** Campaign site code of an array type ('M', 'G', 'E'). */
char
typeCode(ArrayType type)
{
    return toString(type)[0];
}

/** Expand per-thread finish times into per-inference completion times:
 *  every sequence of a thread's slice finishes when the thread drains. */
void
expandInferenceEnds(SimReport &report,
                    const std::vector<std::uint64_t> &shares)
{
    PROSE_ASSERT(shares.size() == report.threadFinishSeconds.size(),
                 "thread share/finish mismatch");
    report.inferenceEndSeconds.clear();
    report.inferenceEndSeconds.reserve(report.inferences);
    for (std::size_t t = 0; t < shares.size(); ++t)
        report.inferenceEndSeconds.insert(
            report.inferenceEndSeconds.end(), shares[t],
            report.threadFinishSeconds[t]);
    PROSE_ASSERT(report.inferenceEndSeconds.size() == report.inferences,
                 "inference completion times do not cover the batch");
}

} // namespace

double
RetryPolicy::delayFor(std::uint32_t retry) const
{
    return backoffSeconds * std::pow(backoffFactor, retry);
}

ArrayType
arrayTypeFor(DataflowKind kind)
{
    switch (kind) {
      case DataflowKind::Dataflow1:
        return ArrayType::M;
      case DataflowKind::Dataflow2:
        return ArrayType::G;
      case DataflowKind::Dataflow3:
        return ArrayType::E;
      case DataflowKind::Host:
        break;
    }
    panic("host task has no array type");
}

std::size_t
typeIndex(ArrayType type)
{
    switch (type) {
      case ArrayType::M:
        return 0;
      case ArrayType::G:
        return 1;
      case ArrayType::E:
        return 2;
    }
    return 0;
}

double
SimReport::inferencesPerSecond() const
{
    return makespan > 0.0 ? static_cast<double>(inferences) / makespan
                          : 0.0;
}

double
SimReport::utilization(ArrayType type) const
{
    const std::size_t idx = typeIndex(type);
    if (makespan <= 0.0 || typeCounts[idx] == 0)
        return 0.0;
    return typeBusySeconds[idx] / (makespan * typeCounts[idx]);
}

double
SimReport::achievedFlops() const
{
    return makespan > 0.0 ? totalFlops / makespan : 0.0;
}

PerfSim::PerfSim(ProseConfig config)
    : PerfSim(std::move(config), TimingModel{})
{
    timing_ = TimingModel(config_.partialInputBuffer);
}

PerfSim::PerfSim(ProseConfig config, TimingModel timing, HostModel host,
                 SimOptions options)
    : config_(std::move(config)), timing_(timing), host_(host),
      options_(options)
{
    config_.validate();
}

PerfSim::TaskSeconds
PerfSim::accelTaskSeconds(const DataflowTask &task,
                          const ArrayGeometry &geometry,
                          std::uint32_t pool_count, double bandwidth,
                          TaskCost &cost_out) const
{
    cost_out = timing_.costTask(task, geometry);
    // Output tiles are independent, so the pool's arrays split them
    // evenly; compute time divides by the pool size while the stream
    // times see the pool's aggregate lane share.
    const double compute =
        cost_out.computeSeconds(geometry) / pool_count;
    const double stream_in =
        static_cast<double>(cost_out.bytesIn) / bandwidth;
    const double stream_out =
        static_cast<double>(cost_out.bytesOut) / bandwidth;
    TaskSeconds seconds;
    seconds.arraySeconds = std::max({ compute, stream_in, stream_out });
    if (cost_out.hostSoftmaxElems > 0) {
        // Dataflow 3 serializes the issuing thread through the host
        // softmax between its two BMMs, but no accumulator state is
        // live during the trip, so the array itself can serve other
        // threads meanwhile.
        seconds.threadExtraSeconds =
            host_.softmaxSeconds(cost_out.hostSoftmaxElems);
    }
    return seconds;
}

SimReport
PerfSim::run(const BertShape &shape) const
{
    PROSE_ASSERT(shape.batch > 0, "empty batch");
    // Slice the batch across threads as evenly as possible; threads
    // beyond the batch size stay idle.
    const std::uint64_t used_threads =
        std::min<std::uint64_t>(config_.threads, shape.batch);
    std::vector<std::vector<DataflowTask>> thread_tasks;
    std::vector<std::uint64_t> shares;
    DataflowBuilder builder;
    for (std::uint64_t t = 0; t < used_threads; ++t) {
        BertShape slice = shape;
        slice.batch = shape.batch / used_threads +
                      (t < shape.batch % used_threads ? 1 : 0);
        if (slice.batch == 0)
            continue;
        shares.push_back(slice.batch);
        thread_tasks.push_back(builder.build(synthesizeBertTrace(slice)));
    }
    SimReport report = runTasks(thread_tasks);
    report.inferences = shape.batch;
    expandInferenceEnds(report, shares);
    return report;
}

SimReport
PerfSim::runDecoder(const DecoderShape &shape) const
{
    PROSE_ASSERT(shape.batch > 0, "empty batch");
    const std::uint64_t used_threads =
        std::min<std::uint64_t>(config_.threads, shape.batch);
    std::vector<std::vector<DataflowTask>> thread_tasks;
    std::vector<std::uint64_t> shares;
    DataflowBuilder builder;
    for (std::uint64_t t = 0; t < used_threads; ++t) {
        DecoderShape slice = shape;
        slice.batch = shape.batch / used_threads +
                      (t < shape.batch % used_threads ? 1 : 0);
        if (slice.batch == 0)
            continue;
        shares.push_back(slice.batch);
        thread_tasks.push_back(
            builder.build(synthesizeDecoderTrace(slice)));
    }
    SimReport report = runTasks(thread_tasks);
    report.inferences = shape.batch;
    expandInferenceEnds(report, shares);
    return report;
}

SimReport
PerfSim::runTasks(
    const std::vector<std::vector<DataflowTask>> &thread_tasks) const
{
    SimReport report;

    // Group the array instances into the three type pools. Within a
    // pool all arrays share one geometry (the configs we model never
    // mix sizes within a type), so the pool is characterized by its
    // geometry, its count, and its aggregate lane share.
    const std::vector<ArrayGeometry> instances = config_.instances();
    std::array<const ArrayGeometry *, 3> pool_geometry{};
    for (const auto &geom : instances) {
        const std::size_t idx = typeIndex(geom.type);
        ++report.typeCounts[idx];
        if (!pool_geometry[idx]) {
            pool_geometry[idx] = &geom;
        } else {
            PROSE_ASSERT(pool_geometry[idx]->dim == geom.dim,
                         "mixed array sizes within one type are not "
                         "supported by the pooled scheduler");
        }
    }

    std::array<double, 3> pool_bw{};
    for (std::size_t idx = 0; idx < 3; ++idx) {
        const ArrayType type = idx == 0 ? ArrayType::M
                               : idx == 1 ? ArrayType::G
                                          : ArrayType::E;
        if (report.typeCounts[idx] > 0)
            pool_bw[idx] =
                config_.lanes.bandwidthFor(type, config_.link);
    }

    // Pool availability, per-type I/O buffer mutexes, host slots.
    std::array<double, 3> pool_free{ { 0.0, 0.0, 0.0 } };
    std::array<double, 3> io_free{ { 0.0, 0.0, 0.0 } };
    std::vector<double> host_free(host_.spec().slots, 0.0);

    // Thread cursors.
    struct ThreadState
    {
        std::size_t next = 0;
        double readyAt = 0.0;
    };
    std::vector<ThreadState> threads(thread_tasks.size());

    /** Earliest dispatch for a thread's next task under current
     *  resource state. */
    struct Candidate
    {
        double start = 0.0;
        int arrayIndex = -1;
        std::size_t hostSlot = 0;
    };
    auto candidateFor = [&](std::size_t t) {
        const ThreadState &ts = threads[t];
        const DataflowTask &task = thread_tasks[t][ts.next];
        Candidate c;
        if (task.kind == DataflowKind::Host) {
            const auto slot_it =
                std::min_element(host_free.begin(), host_free.end());
            c.hostSlot =
                static_cast<std::size_t>(slot_it - host_free.begin());
            c.start = std::max(ts.readyAt, *slot_it);
        } else {
            const ArrayType type = arrayTypeFor(task.kind);
            const std::size_t idx = typeIndex(type);
            PROSE_ASSERT(report.typeCounts[idx] > 0,
                         "no array provisioned for ",
                         toString(task.kind));
            c.arrayIndex = static_cast<int>(idx);
            c.start = std::max({ ts.readyAt, pool_free[idx],
                                 io_free[idx] });
        }
        return c;
    };

    auto dispatch = [&](std::size_t best_thread, const Candidate &c) {
        const double best_start = c.start;
        const int best_array = c.arrayIndex;
        ThreadState &ts = threads[best_thread];
        const DataflowTask &task = thread_tasks[best_thread][ts.next];
        double duration;
        if (task.kind == DataflowKind::Host) {
            duration = host_.hostOpSeconds(task.ops.front());
            host_free[c.hostSlot] = best_start + duration;
            report.hostBusySeconds += duration;
        } else {
            const std::size_t idx = static_cast<std::size_t>(best_array);
            const ArrayType type = pool_geometry[idx]->type;
            // Failover: tasks only ever map onto surviving pool
            // members, so a killed array degrades the pool's aggregate
            // compute rate instead of wedging the schedule.
            std::uint32_t alive = report.typeCounts[idx];
            if (options_.injector) {
                const std::uint32_t dead =
                    options_.injector->deadArrays(typeCode(type),
                                                  best_start);
                if (dead >= alive)
                    fatal("fault campaign killed every ",
                          toString(type), "-type array by t=",
                          best_start, "s; nothing left to fail over to");
                alive -= dead;
            }
            TaskCost cost;
            const TaskSeconds seconds = accelTaskSeconds(
                task, *pool_geometry[idx], alive, pool_bw[idx], cost);
            // Link-fault recovery: every faulted attempt charges its
            // detection cost (timeouts) plus exponential backoff and a
            // full re-stream/re-run of the task.
            double fault_extra = 0.0;
            if (options_.injector) {
                for (std::uint32_t attempt = 0;; ++attempt) {
                    const FaultInjector::LinkOutcome outcome =
                        options_.injector->sampleLinkTransfer(
                            typeCode(type));
                    if (!outcome.faulty())
                        break;
                    if (outcome.timeout) {
                        ++report.linkTimeouts;
                        fault_extra +=
                            config_.link.timeoutDetectSeconds;
                    } else {
                        ++report.linkTransferErrors;
                    }
                    if (attempt + 1 >= options_.retry.maxAttempts) {
                        ++report.abandonedTransfers;
                        break;
                    }
                    ++report.taskRetries;
                    fault_extra += options_.retry.delayFor(attempt) +
                                   seconds.arraySeconds;
                }
            }
            duration = seconds.arraySeconds + fault_extra +
                       seconds.threadExtraSeconds;
            // The dispatching thread holds the type's I/O buffer mutex
            // while it sets up the transfer; the pool is released as
            // soon as its occupancy ends (the host-softmax tail of a
            // Dataflow 3 only blocks the issuing thread).
            io_free[idx] = best_start + options_.ioLockSeconds;
            pool_free[idx] =
                best_start + seconds.arraySeconds + fault_extra;
            report.typeBusySeconds[idx] +=
                (seconds.arraySeconds + fault_extra) * alive;
            report.retrySeconds += fault_extra;
            report.bytesIn += cost.bytesIn;
            report.bytesOut += cost.bytesOut;
            report.hostBusySeconds += seconds.threadExtraSeconds;
        }
        report.totalFlops += task.flops();
        ++report.taskCount;
        const double end = best_start + duration;
        ts.readyAt = end;
        ++ts.next;
        report.makespan = std::max(report.makespan, end);

        if (options_.recordSchedule) {
            ScheduledItem item;
            item.thread = static_cast<std::uint32_t>(best_thread);
            item.kind = task.kind;
            item.sublayer = task.sublayer;
            item.layer = task.layer;
            item.arrayIndex = best_array;
            item.start = best_start;
            item.end = end;
            item.poolEnd = best_array >= 0
                               ? pool_free[static_cast<std::size_t>(
                                     best_array)]
                               : end;
            report.schedule.push_back(item);
        }
    };

    if (options_.referenceScheduler) {
        // Reference next-event selection: O(threads) scan per dispatch,
        // kept as the differential baseline for the event queue below.
        const double inf = std::numeric_limits<double>::infinity();
        while (true) {
            double best_start = inf;
            std::size_t best_thread = 0;
            Candidate best;
            for (std::size_t t = 0; t < threads.size(); ++t) {
                if (threads[t].next >= thread_tasks[t].size())
                    continue;
                const Candidate c = candidateFor(t);
                if (c.start < best_start) {
                    best_start = c.start;
                    best_thread = t;
                    best = c;
                }
            }
            if (best_start == inf)
                break; // all threads drained
            dispatch(best_thread, best);
        }
    } else {
        // Lazy min-heap event queue keyed by (start, thread). Every
        // resource-free time (pool, I/O mutex, host slot, thread ready)
        // only moves forward, so a queued key is a lower bound on the
        // thread's true start: pop the minimum, recompute under current
        // state, re-queue if it moved, dispatch if it did not. The
        // (start, thread) lexicographic order reproduces the reference
        // scan's earliest-start / lowest-thread-index dispatch order
        // exactly, so both schedulers yield identical timestamps.
        using HeapEntry = std::pair<double, std::size_t>;
        std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                            std::greater<HeapEntry>>
            queue;
        for (std::size_t t = 0; t < threads.size(); ++t) {
            if (!thread_tasks[t].empty())
                queue.emplace(candidateFor(t).start, t);
        }
        while (!queue.empty()) {
            const auto [bound, t] = queue.top();
            queue.pop();
            const Candidate c = candidateFor(t);
            if (c.start > bound) {
                queue.emplace(c.start, t); // stale lower bound
                continue;
            }
            dispatch(t, c);
            if (threads[t].next < thread_tasks[t].size())
                queue.emplace(candidateFor(t).start, t);
        }
    }

    report.threadFinishSeconds.reserve(threads.size());
    for (const ThreadState &ts : threads)
        report.threadFinishSeconds.push_back(ts.readyAt);

    if (report.makespan > 0.0) {
        report.cpuDuty = std::min(
            1.0, report.hostBusySeconds /
                     (report.makespan * host_.spec().slots));
    }
    if (options_.injector) {
        for (std::size_t idx = 0; idx < 3; ++idx) {
            if (report.typeCounts[idx] == 0)
                continue;
            const ArrayType type = idx == 0   ? ArrayType::M
                                   : idx == 1 ? ArrayType::G
                                              : ArrayType::E;
            report.deadArrays[idx] = std::min(
                report.typeCounts[idx],
                options_.injector->deadArrays(typeCode(type),
                                              report.makespan));
        }
    }
    return report;
}

} // namespace prose
