/**
 * @file
 * Post-mortem analysis of a recorded simulation schedule: per-pool
 * busy/idle accounting, per-thread bubble (dependency-wait) time, and
 * dataflow-kind time breakdowns. Backs the Figure 8 discussion — where
 * the single-thread schedule's bubbles come from and what contention
 * costs at 32 threads.
 */

#ifndef PROSE_ACCEL_SCHEDULE_ANALYSIS_HH
#define PROSE_ACCEL_SCHEDULE_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "perf_sim.hh"

namespace prose {

/** Aggregated timing facts mined from a schedule. */
struct ScheduleAnalysis
{
    double makespan = 0.0;

    /** Busy seconds of each array-type pool (M, G, E). */
    std::array<double, 3> poolBusySeconds{ { 0.0, 0.0, 0.0 } };
    /** Idle (gap) seconds of each pool inside the makespan. */
    std::array<double, 3> poolIdleSeconds{ { 0.0, 0.0, 0.0 } };

    /** Seconds each thread spent waiting between its tasks. */
    std::vector<double> threadBubbleSeconds;

    /** Total seconds per dataflow kind (thread-view durations). */
    std::map<DataflowKind, double> kindSeconds;

    /** Task count per dataflow kind. */
    std::map<DataflowKind, std::size_t> kindCounts;

    /** Longest chain of back-to-back task executions (critical path
     *  approximation: the thread with the largest busy+bubble span). */
    double criticalPathSeconds = 0.0;

    /** Mean bubble fraction across threads (the Figure 8 bubbles). */
    double meanBubbleFraction() const;

    /** Pool idle fraction (0 = perfectly packed). */
    double poolIdleFraction(ArrayType type) const;
};

/**
 * Analyze a schedule recorded with SimOptions::recordSchedule. The
 * items may arrive in any order; they are grouped internally.
 */
ScheduleAnalysis analyzeSchedule(const SimReport &report);

} // namespace prose

#endif // PROSE_ACCEL_SCHEDULE_ANALYSIS_HH
