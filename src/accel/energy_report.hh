/**
 * @file
 * Per-run energy breakdown: turns a SimReport and its configuration
 * into joules per component — busy/idle array energy by type, the
 * duty-cycled host CPU, DRAM, and link SerDes energy per byte — plus
 * per-inference figures. This grounds the Figure 19 efficiency claims
 * in an explicit energy ledger instead of a single power scalar.
 */

#ifndef PROSE_ACCEL_ENERGY_REPORT_HH
#define PROSE_ACCEL_ENERGY_REPORT_HH

#include <array>

#include "perf_sim.hh"
#include "power/power_model.hh"

namespace prose {

/** Energy accounting knobs. */
struct EnergySpec
{
    /**
     * Fraction of an array's Table 2 power it burns while idle (clock
     * gating leaves leakage + clock tree). Synthesized SRAM-free
     * arrays idle low.
     */
    double idlePowerFraction = 0.3;

    /** Link SerDes energy per byte moved (NVLink-class). */
    double linkJoulesPerByte = 25e-12;

    HostPowerSpec host = HostPowerSpec{};
};

/** The ledger. */
struct EnergyReport
{
    /** Busy + idle energy per array type (M, G, E), joules. */
    std::array<double, 3> arrayBusyJoules{ { 0.0, 0.0, 0.0 } };
    std::array<double, 3> arrayIdleJoules{ { 0.0, 0.0, 0.0 } };
    double cpuJoules = 0.0;
    double dramJoules = 0.0;
    double linkJoules = 0.0;

    double totalJoules() const;
    /** Joules per inference of the run. */
    double joulesPerInference(const SimReport &report) const;
    /** Mean power over the run (totalJoules / makespan). */
    double meanWatts(const SimReport &report) const;
};

/**
 * Build the ledger for a finished run. Array busy seconds come from the
 * report's per-type tallies; idle = (makespan - busy/count) per array.
 */
EnergyReport buildEnergyReport(const ProseConfig &config,
                               const SimReport &report,
                               const EnergySpec &spec = EnergySpec{});

} // namespace prose

#endif // PROSE_ACCEL_ENERGY_REPORT_HH
