/**
 * @file
 * Model of the host-CPU side of a ProSE system: the dual-socket Xeon
 * Gold 6140M the paper uses (36C/72T @ 2.3 GHz, 128 GiB DDR4). The host
 * executes the softmax row-sum/divide of Dataflow 3 plus the "Other" ops
 * (LayerNorm, embedding gather, transposes), all of which are
 * memory-bandwidth-bound streaming passes over intermediate data that
 * mostly lives in the L3.
 */

#ifndef PROSE_ACCEL_HOST_MODEL_HH
#define PROSE_ACCEL_HOST_MODEL_HH

#include <cstdint>

#include "trace/op.hh"

namespace prose {

/** Throughput/parallelism parameters of the host CPU. */
struct HostSpec
{
    /**
     * Aggregate elementwise throughput (elements/s) for streaming passes
     * such as softmax sum/divide. A dual-socket Skylake sustains roughly
     * 200 GB/s out of L3; a softmax pass touches each bf16 element a few
     * times, giving ~2.5e10 elements/s in aggregate.
     */
    double elemThroughput = 2.5e10;

    /**
     * Concurrent streaming tasks the memory system sustains before
     * bandwidth saturates (NUMA nodes x memory channels, coarsely).
     */
    std::uint32_t slots = 16;

    /**
     * Cores ganged onto one Dataflow 3 softmax batch. The exp results
     * of a whole per-thread attention batch arrive as one large
     * streaming region, which the runtime splits across several
     * workers ("batches CPU-essential operations like softmax
     * efficiently via streaming", Section 3.2).
     */
    std::uint32_t softmaxGang = 8;

    /** Per-task fixed overhead: kernel launch / thread wakeup. */
    double taskOverheadSeconds = 2e-6;

    /** Per-slot throughput (elements/s). */
    double slotThroughput() const
    {
        return elemThroughput / slots;
    }
};

/** Time model for host-executed work. */
class HostModel
{
  public:
    explicit HostModel(HostSpec spec = HostSpec{});

    /** Seconds one host slot needs for a softmax sum/divide pass. */
    double softmaxSeconds(std::uint64_t elems) const;

    /** Seconds one host slot needs for a host op (LayerNorm etc.). */
    double hostOpSeconds(const Op &op) const;

    const HostSpec &spec() const { return spec_; }

  private:
    HostSpec spec_;
};

} // namespace prose

#endif // PROSE_ACCEL_HOST_MODEL_HH
